// Package nshd is the public API of this repository: a from-scratch Go
// implementation of NSHD ("Comprehensive Integration of Hyperdimensional
// Computing with Deep Learning towards Neuro-Symbolic AI", DAC 2023).
//
// NSHD symbolizes images through a cut, pretrained CNN, a learned manifold
// compression layer and a binary random-projection HD encoder, then
// classifies with class hypervectors retrained via MASS extended with
// knowledge distillation from the full CNN (Algorithm 1).
//
// Quickstart:
//
//	train, test := nshd.SynthCIFAR(nshd.DefaultSynthConfig())
//	means, stds := train.Normalize()
//	test.ApplyNormalization(means, stds)
//
//	zoo, _ := nshd.BuildModel("mobilenetv2", 1, train.Classes)
//	nshd.Pretrain(zoo, train, nshd.DefaultPretrainConfig(), nshd.NewRNG(7))
//
//	cfg := nshd.DefaultConfig(17, train.Classes) // cut at layer 17
//	model, _ := nshd.New(zoo, cfg)
//	model.Train(train, os.Stderr)
//	fmt.Println("accuracy:", model.Accuracy(test))
//
// The internal packages expose the substrates (tensor/NN library, HD
// algebra, hardware models, t-SNE); this package re-exports the surface a
// downstream user needs.
package nshd

import (
	"time"

	"nshd/internal/baseline"
	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/hdc"
	"nshd/internal/hwsim"
	"nshd/internal/metrics"
	"nshd/internal/serve"
	"nshd/internal/tensor"
	"nshd/internal/tsne"
)

// --- core pipeline ---

// Config parameterizes an NSHD pipeline (dimension D, manifold width F̂,
// distillation α and T, retraining schedule).
type Config = core.Config

// Pipeline is a fully assembled NSHD model.
type Pipeline = core.Pipeline

// TrainReport records the outcome of Pipeline.Train.
type TrainReport = core.TrainReport

// CostReport breaks down inference MACs and model bytes (Table II / Fig. 5).
type CostReport = core.CostReport

// DefaultConfig mirrors the paper's setup (D=3000, F̂=100, KD enabled).
func DefaultConfig(cutLayer, classes int) Config { return core.DefaultConfig(cutLayer, classes) }

// New assembles an NSHD pipeline over a (pretrained) zoo model.
func New(zoo *Model, cfg Config) (*Pipeline, error) { return core.New(zoo, cfg) }

// NewBaselineHD assembles the prior-work comparison: same cut extractor, no
// manifold layer, no knowledge distillation.
func NewBaselineHD(zoo *Model, cfg Config) (*Pipeline, error) { return core.NewBaselineHD(zoo, cfg) }

// LoadPipeline restores a pipeline saved with Pipeline.Save.
func LoadPipeline(path string) (*Pipeline, error) { return core.Load(path) }

// --- serving ---

// Engine is a frozen, zero-allocation inference engine compiled from a
// trained pipeline: the classifier is snapshotted, per-worker scratch arenas
// are sized once at compile time, and steady-state batches run without
// touching the heap. Safe for concurrent use. Pipeline.Predict/Accuracy/
// QueryHVs already serve through a cached Engine transparently; compile one
// explicitly for a serving process, for streaming, or to pin a model version:
//
//	eng, _ := nshd.Compile(model)
//	preds, _ := eng.Predict(test.Images)
type Engine = engine.Engine

// StreamResult is one batch's outcome on Engine.PredictStream.
type StreamResult = engine.StreamResult

// Precision selects the numeric datapath a compiled engine runs: Float32
// (the default) or Int8 — per-channel symmetric weights, u8 activations and
// VNNI-accelerated quantized GEMM through the extractor and manifold, with
// per-layer float fallback. Pass it as a Compile option.
type Precision = engine.Precision

// Float32 and Int8 are the engine precision modes.
const (
	Float32 = engine.Float32
	Int8    = engine.Int8
)

// Option is a Compile option (a Precision, or WithCalibration).
type Option = engine.Option

// WithCalibration supplies images whose activation ranges calibrate the
// int8 engine's quantization parameters. Strongly recommended with Int8:
// without it a synthetic N(0,1) batch stands in, with real accuracy risk.
func WithCalibration(images *Tensor) Option { return engine.WithCalibration(images) }

// WithStagedTail compiles the legacy separate project/classify stages
// instead of the default fused linear tail — the reference path the fused
// tail is benchmarked against.
func WithStagedTail() Option { return engine.WithStagedTail() }

// WithRemat rematerializes the projection matrix from its 8-byte seed
// inside the fused tail's GEMM, collapsing the encoder's serving bytes from
// O(F̂·D) to the seed with bit-identical output.
func WithRemat() Option { return engine.WithRemat() }

// WithFoldedTail forces the algebraic manifold-FC→projection fold (one GEMM
// against G = Wᵀ·P); predictions are argmax-identical to staged.
func WithFoldedTail() Option { return engine.WithFoldedTail() }

// WithFusedExtract forces the cache-resident fused extraction blocks on:
// conv→BN→activation→pool chains execute per output tile so inter-layer
// feature maps stay in cache, bit-identical to the layer-by-layer extractor.
// The default (no option) fuses automatically when a chain is large enough
// to pay for the tiling bookkeeping.
func WithFusedExtract() Option { return engine.WithFusedExtract() }

// WithUnfusedExtract disables extractor fusion, keeping the layer-by-layer
// reference path — the baseline fused engines are benchmarked against.
func WithUnfusedExtract() Option { return engine.WithUnfusedExtract() }

// StageBytes is one itemized component of an engine's resident serving
// weights (see Engine.BytesBreakdown).
type StageBytes = engine.StageBytes

// StageTime is one pipeline stage's measured wall time for a batch, with
// per-layer / per-fused-block sub-steps where the stage can attribute them
// (see Engine.TimeStages).
type StageTime = engine.StageTime

// Compile freezes a trained pipeline into a serving Engine.
func Compile(p *Pipeline, opts ...Option) (*Engine, error) { return engine.Compile(p, opts...) }

// Batcher is the concurrent serving front end: it coalesces single-sample
// (or small) requests from many goroutines into engine-sized micro-batches,
// flushing on a size threshold or a max-queue-delay deadline, with a bounded
// admission queue (ErrOverloaded on saturation), per-request context
// cancellation, graceful drain via Close, and atomic engine hot-swap:
//
//	b, _ := nshd.NewBatcher(eng, nshd.BatcherOptions{})
//	class, _ := b.Predict(ctx, sample) // rides a shared micro-batch
type Batcher = serve.Batcher

// BatcherOptions tune the micro-batching policy; the zero value derives
// everything from the engine (MaxBatch = chunk size, MaxDelay = 1ms,
// QueueCap = 4×MaxBatch).
type BatcherOptions = serve.Options

// ServeSnapshot is one point-in-time view of a Batcher's metrics.
type ServeSnapshot = serve.Snapshot

// PredictServer exposes a Batcher over HTTP (POST /predict JSON or binary,
// GET /healthz, GET /metrics); cmd/nshd-serve is the standalone binary.
type PredictServer = serve.Server

// ErrOverloaded is returned when the batcher's admission queue is full.
var ErrOverloaded = serve.ErrOverloaded

// ErrServeClosed is returned by batcher predictions after Close.
var ErrServeClosed = serve.ErrClosed

// NewBatcher wraps a compiled engine in a micro-batching front end and
// starts its flush loop; Close drains and stops it.
func NewBatcher(e *Engine, opts BatcherOptions) (*Batcher, error) { return serve.New(e, opts) }

// NewPredictServer wraps a batcher in the HTTP front end; timeout ≤ 0
// disables the per-request deadline.
func NewPredictServer(b *Batcher, timeout time.Duration) *PredictServer {
	return serve.NewServer(b, timeout)
}

// --- post-training compression ---

// CompressTarget configures Engine.Compress: a calibration set (mandatory),
// an accuracy budget, and optionally pinned keep-ratio / scorer precision.
type CompressTarget = engine.CompressTarget

// CompressReport itemizes what Compress chose: kept blocks, precision, rank,
// per-stage bytes before/after and the measured calibration accuracy delta.
type CompressReport = engine.CompressReport

// CompressPlan is a reproducible compression recipe (kept 256-column blocks,
// scorer precision, manifold rank) that Compile applies via WithCompression.
type CompressPlan = engine.CompressPlan

// NewCompressPlan builds a compression plan by hand; Engine.Compress derives
// one automatically from a calibration set.
func NewCompressPlan(origD int, keepBlocks []int, prec ScorerPrecision, rank int) *CompressPlan {
	return engine.NewCompressPlan(origD, keepBlocks, prec, rank)
}

// ScorerPrecision selects the compressed engine's class-scoring datapath:
// keep the source scorer, or requantize class hypervectors to packed int4 or
// ternary words.
type ScorerPrecision = engine.ScorerPrecision

// Scorer precisions for CompressTarget / NewCompressPlan.
const (
	PrecisionAuto    = engine.PrecisionAuto
	PrecisionKeep    = engine.PrecisionKeep
	PrecisionInt4    = engine.PrecisionInt4
	PrecisionTernary = engine.PrecisionTernary
)

// WithCompression applies a compression plan at Compile time. Plans are
// whole-engine transforms: combining a non-identity plan with CompileShard
// tiling fails with ErrCompressedTiling.
func WithCompression(plan *CompressPlan) Option { return engine.WithCompression(plan) }

// ErrCompressedTiling marks the compression/sharding exclusion: a pruned or
// requantized engine no longer tiles [0, D) exactly, so it cannot shard, and
// a shard cannot compress.
var ErrCompressedTiling = engine.ErrCompressedTiling

// --- dimension-sharded serving ---

// PartialScores holds one shard's raw per-class partial scores over its
// D-slice — the exact addends of the full dot product ⟨h, M_k⟩, int32 for
// the packed kernel or per-block float32 for the float kernel.
type PartialScores = engine.PartialScores

// CompileShard freezes shard i of S: an engine identical to Compile's but
// scoring only D columns [lo,hi) (256-aligned bounds from ShardBounds).
// Merging all S shards' partials reproduces the unsharded engine's scores
// bit for bit; CompileShard(p, 0, 1, ...) is exactly Compile.
func CompileShard(p *Pipeline, shard, shards int, opts ...Option) (*Engine, error) {
	return engine.CompileShard(p, shard, shards, opts...)
}

// ShardBounds returns the packed-block-aligned [lo,hi) D-slices that
// CompileShard uses for shards 0..S-1 of dimension d.
func ShardBounds(d, shards int) ([][2]int, error) { return engine.ShardBounds(d, shards) }

// MergeScores add-reduces a complete set of shard partials (any order) into
// final scores and argmax predictions, bit-identical to the unsharded
// engine; it errors unless the shards tile [0,D) exactly.
func MergeScores(preds []int, scores []float64, parts []*PartialScores) error {
	return engine.MergeScores(preds, scores, parts)
}

// Router is the reduce tier of a sharded cluster: it fans each predict
// batch to one replica of every shard slot over the binary /partial
// protocol, add-reduces the partial scores, and serves the same client
// surface as a single process. cmd/nshd-router is the standalone binary.
type Router = serve.Router

// RouterOptions tune fan-out timeouts, health/version polling, replica
// ejection and hedging; the zero value is serviceable.
type RouterOptions = serve.RouterOptions

// ErrShardUnavailable wraps any fan-out failure: some D-slice had no
// answering replica, so the (exact) reduce was impossible.
var ErrShardUnavailable = serve.ErrShardUnavailable

// NewRouter connects to the shard fleet (slots[i] lists the replicas of one
// shard), verifies the slots tile the full dimension, and starts the
// health/version poller.
func NewRouter(slots [][]string, opts RouterOptions) (*Router, error) {
	return serve.NewRouter(slots, opts)
}

// --- model zoo ---

// Model is a zoo CNN with paper-style layer indexing and a Cut operation.
type Model = cnn.Model

// PretrainConfig controls teacher pretraining.
type PretrainConfig = cnn.PretrainConfig

// BuildModel constructs a zoo model ("vgg16", "mobilenetv2", "effnetb0",
// "effnetb7") with seeded initialization.
func BuildModel(name string, seed int64, classes int) (*Model, error) {
	return cnn.Build(name, tensor.NewRNG(seed), classes)
}

// ModelNames lists the registered zoo models.
func ModelNames() []string { return cnn.Names() }

// PaperLayers returns the cut layers the paper evaluates for a model.
func PaperLayers(name string) []int { return cnn.PaperLayers(name) }

// DefaultPretrainConfig returns the harness's pretraining schedule.
func DefaultPretrainConfig() PretrainConfig { return cnn.DefaultPretrainConfig() }

// Pretrain trains (or restores from cache) the full CNN on the training
// split, returning (train accuracy, restored-from-cache).
func Pretrain(m *Model, train *Dataset, cfg PretrainConfig, rng *RNG) (float64, bool, error) {
	return cnn.Pretrain(m, train, cfg, rng)
}

// --- datasets ---

// Dataset is a labelled image set in [N, C, H, W] layout.
type Dataset = dataset.Dataset

// SynthConfig parameterizes the SynthCIFAR generator.
type SynthConfig = dataset.SynthConfig

// DefaultSynthConfig mirrors the CIFAR-10 geometry at reproduction scale.
func DefaultSynthConfig() SynthConfig { return dataset.DefaultSynthConfig() }

// SynthCIFAR generates seeded train/test splits of the synthetic
// image-classification workload.
func SynthCIFAR(cfg SynthConfig) (train, test *Dataset) { return dataset.SynthCIFAR(cfg) }

// LoadCIFAR10 reads real CIFAR-10 binary batches when available on disk.
func LoadCIFAR10(paths ...string) (*Dataset, error) { return dataset.LoadCIFAR10(paths...) }

// LoadCIFAR100 reads real CIFAR-100 binary files when available on disk.
func LoadCIFAR100(paths ...string) (*Dataset, error) { return dataset.LoadCIFAR100(paths...) }

// --- baselines ---

// VanillaHD is the standalone HD classifier over raw pixels (non-linear
// encoding), the paper's motivating baseline.
type VanillaHD = baseline.VanillaHD

// VanillaConfig parameterizes VanillaHD.
type VanillaConfig = baseline.VanillaConfig

// DefaultVanillaConfig mirrors the paper's standalone-HD setup.
func DefaultVanillaConfig() VanillaConfig { return baseline.DefaultVanillaConfig() }

// NewVanillaHD constructs a VanillaHD model for a dataset's geometry.
func NewVanillaHD(d *Dataset, cfg VanillaConfig) (*VanillaHD, error) {
	return baseline.NewVanillaHD(d, cfg)
}

// --- hyperdimensional primitives ---

// Hypervector is a dense hypervector; see internal/hdc for the full algebra.
type Hypervector = hdc.Hypervector

// RandomBipolar samples a uniform ±1 hypervector.
func RandomBipolar(rng *RNG, d int) Hypervector { return hdc.RandomBipolar(rng, d) }

// Bind returns the elementwise product a ⊗ b (self-inverse for bipolar
// inputs, quasi-orthogonal to both operands).
func Bind(a, b Hypervector) Hypervector { return hdc.Bind(a, b) }

// Bundle returns the elementwise sum of hypervectors (similar to each
// input); call Sign on the result for a bipolar composite.
func Bundle(hs ...Hypervector) Hypervector { return hdc.Bundle(hs...) }

// Dot returns the dot-product similarity δ(a, b).
func Dot(a, b Hypervector) float64 { return hdc.Dot(a, b) }

// --- hardware models ---

// EnergyModel is the Xavier-class per-operation energy model (Fig. 4).
type EnergyModel = hwsim.EnergyModel

// DPUConfig is the ZCU104 DPU accelerator model (Table I, Figs. 6/10).
type DPUConfig = hwsim.DPUConfig

// XavierModel returns the default edge-GPGPU energy model.
func XavierModel() EnergyModel { return hwsim.XavierModel() }

// DefaultDPU returns the accelerator configuration reproducing Table I.
func DefaultDPU() DPUConfig { return hwsim.DefaultDPU() }

// --- explainability ---

// TSNEConfig controls the t-SNE embedding of Fig. 11.
type TSNEConfig = tsne.Config

// TSNEEmbed computes a 2-D embedding of [N, F] data.
func TSNEEmbed(data *Tensor, cfg TSNEConfig) (*Tensor, error) { return tsne.Embed(data, cfg) }

// KNNPurity quantifies cluster formation in an embedding.
func KNNPurity(y *Tensor, labels []int, k int) float64 { return tsne.KNNPurity(y, labels, k) }

// DefaultTSNEConfig returns sklearn-like defaults.
func DefaultTSNEConfig() TSNEConfig { return tsne.DefaultConfig() }

// --- utilities ---

// Tensor is the dense float32 tensor underlying all data flow.
type Tensor = tensor.Tensor

// RNG is the seeded random source used throughout the repository.
type RNG = tensor.RNG

// NewRNG returns a deterministic RNG.
func NewRNG(seed int64) *RNG { return tensor.NewRNG(seed) }

// NewTensor allocates a zeroed tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// --- symbolic sequence encoding (HD fundamentals, refs [12][13]) ---

// SequenceEncoder encodes symbol sequences with the classic rotate-and-bind
// n-gram scheme used by HD language/speech recognition.
type SequenceEncoder = hdc.SequenceEncoder

// SequenceClassifier bundles sequence encodings into class centroids.
type SequenceClassifier = hdc.SequenceClassifier

// NewSequenceEncoder constructs an n-gram encoder of dimension d.
func NewSequenceEncoder(rng *RNG, d, n int) *SequenceEncoder {
	return hdc.NewSequenceEncoder(rng, d, n)
}

// NewSequenceClassifier wraps a sequence encoder in a bundling classifier.
func NewSequenceClassifier(enc *SequenceEncoder) *SequenceClassifier {
	return hdc.NewSequenceClassifier(enc)
}

// --- evaluation metrics ---

// Confusion is a K×K confusion matrix with accuracy/precision/recall/F1
// derivations; see Pipeline.Confusion.
type Confusion = metrics.Confusion

// NewConfusion builds a confusion matrix from predictions and labels.
func NewConfusion(k int, preds, labels []int) (*Confusion, error) {
	return metrics.NewConfusion(k, preds, labels)
}

// TopKAccuracy scores [N, K] class scores against labels at rank k.
func TopKAccuracy(scores *Tensor, labels []int, k int) (float64, error) {
	return metrics.TopKAccuracy(scores, labels, k)
}
