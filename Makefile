GO ?= go

.PHONY: check vet build test race bench perf

# The full gate: what CI (and any PR) must keep green.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with hand-rolled parallelism.
race:
	$(GO) test -race ./internal/parallel/... ./internal/tensor/... ./internal/nn/... ./internal/hdc/... ./internal/hdlearn/...

# Kernel microbenchmarks (tensor package) with allocation counts.
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/tensor/ ./internal/parallel/

# Regenerate the machine-readable compute-core perf report.
perf:
	$(GO) run ./cmd/nshd-bench -perf BENCH_PR1.json
