GO ?= go

.PHONY: check vet build test race alloc staticcheck bench perf bench-train bench-serve perf-serve bench-quant perf-quant bench-tail perf-tail bench-router perf-router bench-compress perf-compress bench-latency perf-latency bench-fuse perf-fuse

# The full gate: what CI (and any PR) must keep green.
check: vet staticcheck build test race alloc

# Static analysis beyond go vet. The toolchain is not vendored and CI
# containers install nothing, so the target degrades to a skip notice when
# the binary is absent; developers with it on PATH get the full run. Pin
# honnef.co/go/tools/cmd/staticcheck@2025.1 when installing locally so
# finding sets are reproducible.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: binary not on PATH; skipping (pin honnef.co/go/tools/cmd/staticcheck@2025.1 to enable)"; \
	fi

# Allocation-regression gate: the serving engine must stay heap-free in
# steady state (AllocsPerRun == 0 for both classifier kernels and for every
# tail strategy — fused, remat, folded and staged; see
# TestEngineZeroAlloc / TestEngineZeroAllocTailModes — and for the compressed
# int4/ternary predict path, TestEngineZeroAllocCompressed, plus the batch-1
# latency shape across every tail mode × kernel and the implicit-GEMM conv
# path, TestEngineZeroAllocBatch1*; all ride the
# same -run prefix), and so must the
# router's fan-out hot path (frame encode, partial decode, score merge; see
# TestRouterZeroAlloc).
alloc:
	$(GO) test -run TestEngineZeroAlloc -count 1 ./internal/engine/
	$(GO) test -run TestRouterZeroAlloc -count 1 ./internal/serve/

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with hand-rolled parallelism (the serving front
# end's hammer test lives in internal/serve).
race:
	$(GO) test -race ./internal/parallel/... ./internal/tensor/... ./internal/nn/... ./internal/quant/... ./internal/hdc/... ./internal/hdlearn/... ./internal/engine/... ./internal/serve/...

# Kernel microbenchmarks (tensor package) with allocation counts.
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/tensor/ ./internal/parallel/

# Regenerate the machine-readable perf report (end-to-end serving + kernels
# + training path).
perf:
	$(GO) run ./cmd/nshd-bench -perf BENCH_PR3.json

# Re-run only the training-path benchmarks and diff them against the
# committed BENCH_PR3.json baseline (writes the fresh rows to a scratch file).
bench-train:
	$(GO) run ./cmd/nshd-bench -perf-train /tmp/nshd_bench_train.json -perf-baseline BENCH_PR3.json

# Re-run the serving load generator (micro-batched Batcher vs per-request
# Engine.Predict at concurrency 1/8/64) and diff against the committed
# BENCH_PR4.json baseline.
bench-serve:
	$(GO) run ./cmd/nshd-bench -perf-serve /tmp/nshd_bench_serve.json -perf-serve-baseline BENCH_PR4.json

# Regenerate the committed serving baseline.
perf-serve:
	$(GO) run ./cmd/nshd-bench -perf-serve BENCH_PR4.json

# Re-run the int8-vs-float engine benchmarks (quantized GEMM kernels,
# per-stage and end-to-end engine timings) and diff against the committed
# BENCH_PR5.json baseline.
bench-quant:
	$(GO) run ./cmd/nshd-bench -perf-quant /tmp/nshd_bench_quant.json -perf-quant-baseline BENCH_PR5.json

# Regenerate the committed quantization baseline.
perf-quant:
	$(GO) run ./cmd/nshd-bench -perf-quant BENCH_PR5.json

# Re-run the staged-vs-fused serving-tail benchmarks (end-to-end and
# tail-only timings, remat footprints) and diff against the committed
# BENCH_PR6.json baseline.
bench-tail:
	$(GO) run ./cmd/nshd-bench -perf-tail /tmp/nshd_bench_tail.json -perf-tail-baseline BENCH_PR6.json

# Regenerate the committed fused-tail baseline.
perf-tail:
	$(GO) run ./cmd/nshd-bench -perf-tail BENCH_PR6.json

# Re-run the dimension-sharded router scaling benchmarks (S shard worker
# processes behind serve.Router, each duty-cycle-capped to emulate a
# fixed-capacity host) and diff against the committed BENCH_PR7.json
# baseline.
bench-router:
	$(GO) run ./cmd/nshd-bench -perf-router /tmp/nshd_bench_router.json -perf-router-baseline BENCH_PR7.json

# Regenerate the committed sharded-router baseline.
perf-router:
	$(GO) run ./cmd/nshd-bench -perf-router BENCH_PR7.json

# Re-run the post-training compression tradeoff benchmarks (bytes / tail
# latency / accuracy at keep ∈ {100,75,50,25}% × {int4, ternary}, the 1-point
# auto search and its remat composition) and diff against the committed
# BENCH_PR8.json baseline.
bench-compress:
	$(GO) run ./cmd/nshd-bench -perf-compress /tmp/nshd_bench_compress.json -perf-compress-baseline BENCH_PR8.json

# Regenerate the committed compression baseline.
perf-compress:
	$(GO) run ./cmd/nshd-bench -perf-compress BENCH_PR8.json

# Re-run the batch-1 serving-latency benchmarks (implicit-GEMM conv,
# prepacked projection strips, vectorized popcount scoring; p50/p99 per tail
# mode × classifier kernel plus per-stage rows) and diff against the
# committed BENCH_PR9.json baseline.
bench-latency:
	$(GO) run ./cmd/nshd-bench -perf-latency /tmp/nshd_bench_latency.json -perf-latency-baseline BENCH_PR9.json

# Regenerate the committed batch-1 latency baseline.
perf-latency:
	$(GO) run ./cmd/nshd-bench -perf-latency BENCH_PR9.json

# Re-run the fused-vs-unfused extraction benchmarks (cache-resident fused
# conv→BN→ReLU→pool blocks; batch-1 e2e and extract-stage p50, float/packed/
# int8) and diff against the committed pre-fusion BENCH_PR9.json numbers.
bench-fuse:
	$(GO) run ./cmd/nshd-bench -perf-fuse /tmp/nshd_bench_fuse.json -perf-fuse-baseline BENCH_PR9.json

# Regenerate the committed fused-extraction baseline (diffed against the
# PR9 pre-fusion rows so the speedup is recorded in the file).
perf-fuse:
	$(GO) run ./cmd/nshd-bench -perf-fuse BENCH_PR10.json -perf-fuse-baseline BENCH_PR9.json
