// Package nshd_test hosts the benchmark harness: one benchmark per paper
// table/figure (regenerating its rows via internal/experiments at bench
// scale and reporting the headline quantity as a custom metric) plus
// microbenchmarks for the kernels the paper's hardware story rests on.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The trained-figure benchmarks share one session, so teachers are
// pretrained once per `go test` invocation regardless of -benchtime.
package nshd_test

import (
	"sync"
	"testing"

	"nshd"
	"nshd/internal/cnn"
	"nshd/internal/dataset"
	"nshd/internal/experiments"
	"nshd/internal/hdc"
	"nshd/internal/hdlearn"
	"nshd/internal/quant"
	"nshd/internal/tensor"
)

// benchEnv is the reduced-scale environment for trained-figure benches.
func benchEnv() experiments.Env {
	e := experiments.Quick()
	// One well-trained teacher keeps the suite fast while producing
	// meaningful accuracy metrics (a 6-epoch teacher stays at chance and
	// tells nothing).
	e.Models = []string{"effnetb0"}
	e.TrainN, e.TestN = 192, 96
	e.PretrainEpochs = 14
	e.HDEpochs = 6
	e.D = 1000
	e.FHat = 64
	e.CacheDir = ".cache"
	return e
}

var (
	sessOnce sync.Once
	sess     *experiments.Session
)

func session() *experiments.Session {
	sessOnce.Do(func() { sess = experiments.NewSession(benchEnv()) })
	return sess
}

// --- one benchmark per table/figure ---

func BenchmarkTable1(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rep, _ := s.Table1()
		b.ReportMetric(rep.Watts, "watts")
		b.ReportMetric(rep.Rows[0].Utilization, "lut-util-%")
	}
}

func BenchmarkFig4(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.ImprovementPct > best {
				best = r.ImprovementPct
			}
		}
		b.ReportMetric(best, "max-energy-saving-%")
	}
}

func BenchmarkFig5(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.SavingsPct
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-mac-saving-%")
	}
}

func BenchmarkFig6(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.ImprovementPct
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-fps-gain-%")
	}
}

func BenchmarkTable2(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		var saving float64
		for _, r := range rows {
			saving += 100 * (1 - float64(r.NSHDBytes)/float64(r.BaselineBytes))
		}
		b.ReportMetric(saving/float64(len(rows)), "mean-size-saving-vs-baseline-%")
	}
}

func BenchmarkFig7(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		var nshdSum, cnnSum float64
		for _, r := range rows {
			nshdSum += r.NSHDAcc
			cnnSum += r.CNNAcc
		}
		b.ReportMetric(nshdSum/float64(len(rows)), "mean-nshd-acc")
		b.ReportMetric(cnnSum/float64(len(rows)), "mean-cnn-acc")
		b.ReportMetric(rows[0].VanillaAcc, "vanilla-acc")
	}
}

func BenchmarkFig8(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		var gain float64
		for _, r := range rows {
			gain += r.GainPct
		}
		b.ReportMetric(gain/float64(len(rows)), "mean-kd-gain-pp")
	}
}

func BenchmarkFig9(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		cells, _, err := s.Fig9("effnetb0", 7)
		if err != nil {
			b.Fatal(err)
		}
		base, best := 0.0, 0.0
		for _, c := range cells {
			if c.Alpha == 0 {
				base = c.Accuracy
			}
			if c.Accuracy > best {
				best = c.Accuracy
			}
		}
		b.ReportMetric(100*(best-base), "kd-grid-boost-pp")
	}
}

func BenchmarkFig10(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.Fig10("effnetb0")
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.D == 3000 {
				b.ReportMetric(r.Accuracy, "acc-d3000")
				b.ReportMetric(r.QuantAcc, "int8-acc-d3000")
			}
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		res, _, err := s.Fig11("effnetb0", 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PurityBefore, "purity-before")
		b.ReportMetric(res.PurityAfter, "purity-after")
	}
}

// --- ablation benches (DESIGN.md design choices) ---

func BenchmarkAblationRetrain(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.AblationRetrain("effnetb0", 7)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "MASS" {
				b.ReportMetric(r.Accuracy, "mass-acc")
			}
			if r.Method == "perceptron" {
				b.ReportMetric(r.Accuracy, "perceptron-acc")
			}
		}
	}
}

func BenchmarkAblationSTE(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.AblationSTE("effnetb0", 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Accuracy, "trained-manifold-acc")
		b.ReportMetric(rows[1].Accuracy, "frozen-manifold-acc")
	}
}

// --- kernel microbenchmarks ---

func BenchmarkEncodeProjection(b *testing.B) {
	rng := tensor.NewRNG(1)
	pr := hdc.NewProjection(rng, 100, 3000)
	feats := tensor.New(64, 100)
	rng.FillNormal(feats, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.EncodeBatch(feats)
	}
	b.ReportMetric(float64(64*pr.EncodeMACs())/1e6, "Mmacs/op")
}

func BenchmarkSimilarityDense(b *testing.B) {
	rng := tensor.NewRNG(2)
	m := hdlearn.NewModel(10, 3000)
	rng.FillNormal(m.M, 0, 1)
	q := tensor.New(64, 3000)
	rng.FillBipolar(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SimilarityBatch(q)
	}
}

func BenchmarkSimilarityPacked(b *testing.B) {
	// The binary-kernel ablation: packed XOR+popcount similarity vs the
	// dense float path above.
	rng := tensor.NewRNG(3)
	classes := make([]*hdc.PackedHV, 10)
	for i := range classes {
		classes[i] = hdc.RandomPacked(rng, 3000)
	}
	queries := make([]*hdc.PackedHV, 64)
	for i := range queries {
		queries[i] = hdc.RandomPacked(rng, 3000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			best, bestK := -1<<62, 0
			for k, c := range classes {
				if d := hdc.PackedDot(q, c); d > best {
					best, bestK = d, k
				}
			}
			_ = bestK
		}
	}
}

func BenchmarkQuantizedHDPredict(b *testing.B) {
	rng := tensor.NewRNG(4)
	m := hdlearn.NewModel(10, 3000)
	rng.FillNormal(m.M, 0, 1)
	q := quant.QuantizeHD(m)
	queries := tensor.New(64, 3000)
	rng.FillBipolar(queries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.PredictBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCNNForward(b *testing.B) {
	zoo, err := cnn.Build("mobilenetv2", tensor.NewRNG(5), 10)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(8, 3, 32, 32)
	tensor.NewRNG(6).FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zoo.Full().Forward(x, false)
	}
	b.ReportMetric(float64(8*zoo.FullStats().MACs)/1e6, "Mmacs/op")
}

func BenchmarkMASSEpoch(b *testing.B) {
	rng := tensor.NewRNG(7)
	hvs := tensor.New(256, 1000)
	rng.FillBipolar(hvs)
	labels := make([]int, 256)
	for i := range labels {
		labels[i] = i % 10
	}
	m := hdlearn.NewModel(10, 1000)
	m.InitBundle(hvs, labels)
	cfg := hdlearn.MASSConfig{Epochs: 1, LR: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainMASS(hvs, labels, cfg, nil)
	}
}

func BenchmarkSynthCIFARGenerate(b *testing.B) {
	cfg := nshd.DefaultSynthConfig()
	cfg.Train, cfg.Test = 64, 1
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		nshd.SynthCIFAR(cfg)
	}
}

func BenchmarkTSNEEmbed(b *testing.B) {
	rng := tensor.NewRNG(8)
	data := tensor.New(100, 64)
	rng.FillNormal(data, 0, 1)
	cfg := nshd.DefaultTSNEConfig()
	cfg.Perplexity = 10
	cfg.Iters = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nshd.TSNEEmbed(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShiftAugment(b *testing.B) {
	aug := dataset.ShiftAugment(4)
	sample := make([]float32, 3*32*32)
	rng := tensor.NewRNG(9)
	for i := 0; i < b.N; i++ {
		aug(sample, []int{3, 32, 32}, rng)
	}
}

// BenchmarkPredictFloatVsPacked measures the deployment win of the packed
// binary inference path at paper-scale D, asserting first that both paths
// predict identically on the sign-quantized model (the packed kernel is a
// representation change, not an approximation).
func BenchmarkPredictFloatVsPacked(b *testing.B) {
	const k, d, n = 10, 10000, 64
	rng := tensor.NewRNG(11)
	m := hdlearn.NewModel(k, d)
	rng.FillNormal(m.M, 0, 1)
	quantized := m.SignQuantized()
	pm := hdlearn.PackModel(m)
	q := tensor.New(n, d)
	rng.FillBipolar(q)
	want := quantized.PredictBatch(q)
	got := pm.PredictBatch(q)
	for i := range want {
		if got[i] != want[i] {
			b.Fatalf("sample %d: packed=%d float=%d — packed path must agree bit-exactly", i, got[i], want[i])
		}
	}
	b.Run("float32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			quantized.PredictBatch(q)
		}
		b.ReportMetric(float64(n), "queries/op")
	})
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pm.PredictBatch(q)
		}
		b.ReportMetric(float64(n), "queries/op")
	})
}
