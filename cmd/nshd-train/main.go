// Command nshd-train trains an NSHD model end to end — synthetic (or real
// CIFAR) data, teacher pretraining, HD distillation — and saves the trained
// pipeline.
//
//	nshd-train -model mobilenetv2 -layer 17 -out model.gob -cache .cache
//	nshd-train -model effnetb0 -layer 7 -cifar10 data_batch_1.bin -test-cifar10 test_batch.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"nshd"
	"nshd/internal/nn"
)

func main() {
	log.SetFlags(0)
	var (
		model      = flag.String("model", "mobilenetv2", "zoo model: "+strings.Join(nshd.ModelNames(), ", "))
		layer      = flag.Int("layer", -1, "cut layer (-1 = deepest paper layer)")
		classes    = flag.Int("classes", 10, "synthetic class count")
		trainN     = flag.Int("train", 384, "synthetic training samples")
		testN      = flag.Int("test", 192, "synthetic test samples")
		noise      = flag.Float64("noise", 0.3, "synthetic pixel noise")
		cifar10    = flag.String("cifar10", "", "comma-separated real CIFAR-10 train batches (overrides synthetic)")
		cifarTest  = flag.String("test-cifar10", "", "real CIFAR-10 test batch")
		d          = flag.Int("d", 3000, "hypervector dimension")
		fhat       = flag.Int("fhat", 100, "manifold output features")
		alpha      = flag.Float64("alpha", 0.7, "distillation alpha")
		temp       = flag.Float64("temp", 15, "distillation temperature")
		hdEpochs   = flag.Int("hd-epochs", 10, "HD retraining epochs")
		batch      = flag.Int("batch", 0, "training batch size (0 = config default)")
		preEpochs  = flag.Int("pretrain-epochs", 12, "teacher pretraining epochs")
		seed       = flag.Int64("seed", 1, "seed")
		cache      = flag.String("cache", ".cache", "teacher cache directory")
		out        = flag.String("out", "", "path to save the trained pipeline (gob)")
		baselineHD = flag.Bool("baseline", false, "train the BaselineHD variant instead (no manifold/KD)")
	)
	flag.Parse()

	var train, test *nshd.Dataset
	var err error
	if *cifar10 != "" {
		train, err = nshd.LoadCIFAR10(strings.Split(*cifar10, ",")...)
		if err != nil {
			log.Fatal(err)
		}
		if *cifarTest == "" {
			log.Fatal("-test-cifar10 required with -cifar10")
		}
		test, err = nshd.LoadCIFAR10(*cifarTest)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := nshd.SynthConfig{
			Classes: *classes, Train: *trainN, Test: *testN,
			Size: 32, Noise: *noise, Seed: *seed,
		}
		train, test = nshd.SynthCIFAR(cfg)
	}
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)

	zoo, err := nshd.BuildModel(*model, *seed, train.Classes)
	if err != nil {
		log.Fatal(err)
	}
	cut := *layer
	if cut < 0 {
		layers := nshd.PaperLayers(*model)
		cut = layers[len(layers)-1]
	}

	pcfg := nshd.DefaultPretrainConfig()
	pcfg.Epochs = *preEpochs
	pcfg.CacheDir = *cache
	pcfg.Log = os.Stderr
	fmt.Fprintf(os.Stderr, "pretraining %s teacher...\n", *model)
	trainAcc, cached, err := nshd.Pretrain(zoo, train, pcfg, nshd.NewRNG(*seed+7))
	if err != nil {
		log.Fatal(err)
	}
	cnnAcc := nn.Evaluate(zoo.Full(), test.Images, test.Labels, 32)
	fmt.Printf("teacher: train %.3f test %.3f (cached=%v)\n", trainAcc, cnnAcc, cached)

	cfg := nshd.DefaultConfig(cut, train.Classes)
	cfg.D = *d
	cfg.FHat = *fhat
	cfg.Alpha = *alpha
	cfg.Temp = *temp
	cfg.Epochs = *hdEpochs
	cfg.Seed = *seed
	if *batch > 0 {
		cfg.BatchSize = *batch
	}

	var p *nshd.Pipeline
	if *baselineHD {
		p, err = nshd.NewBaselineHD(zoo, cfg)
	} else {
		p, err = nshd.New(zoo, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.Train(train, os.Stderr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NSHD@%d: test accuracy %.3f (CNN %.3f)\n", cut, p.Accuracy(test), cnnAcc)
	costs := p.Costs()
	cnnMACs, _ := p.CNNCosts()
	fmt.Printf("inference: %d MACs vs CNN %d (%.1f%% saved), model %d bytes\n",
		costs.TotalMACs(), cnnMACs,
		100*(1-float64(costs.TotalMACs())/float64(cnnMACs)), costs.TotalBytes())

	if *out != "" {
		if err := p.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved pipeline to %s\n", *out)
	}
}
