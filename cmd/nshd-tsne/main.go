// Command nshd-tsne exports the Fig. 11 explainability data: it trains an
// NSHD model, embeds the test queries' hypervectors with t-SNE before and
// after training, and writes both embeddings as CSV (x, y, label, stage) for
// external plotting.
//
//	nshd-tsne -model effnetb0 -layer 7 -out fig11.csv -cache .cache
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"nshd/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		model = flag.String("model", "effnetb0", "zoo model")
		layer = flag.Int("layer", 7, "cut layer")
		out   = flag.String("out", "fig11.csv", "output CSV path")
		cache = flag.String("cache", ".cache", "teacher cache directory")
		v     = flag.Bool("v", false, "verbose")
	)
	flag.Parse()

	env := experiments.Quick()
	env.CacheDir = *cache
	if *v {
		env.Log = os.Stderr
	}
	s := experiments.NewSession(env)
	res, table, err := s.Fig11(*model, *layer)
	if err != nil {
		log.Fatal(err)
	}
	table.Render(os.Stdout)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"x", "y", "label", "stage"}); err != nil {
		log.Fatal(err)
	}
	dump := func(emb interface{ At(...int) float32 }, stage string) {
		for i, lbl := range res.Labels {
			rec := []string{
				strconv.FormatFloat(float64(emb.At(i, 0)), 'g', 6, 64),
				strconv.FormatFloat(float64(emb.At(i, 1)), 'g', 6, 64),
				strconv.Itoa(lbl),
				stage,
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
	}
	dump(res.Before, "before")
	dump(res.After, "after")
	fmt.Printf("wrote %d points to %s\n", 2*len(res.Labels), *out)
}
