// Command nshd-router is the reduce tier of a dimension-sharded NSHD
// cluster: it fans each predict batch out to one replica of every shard
// process (nshd-serve -shard i/S), add-reduces their raw partial scores, and
// answers with predictions bit-identical to a single unsharded engine.
//
//	nshd-serve -model m.gob -shard 0/4 -addr :9000 &
//	nshd-serve -model m.gob -shard 1/4 -addr :9001 &
//	nshd-serve -model m.gob -shard 2/4 -addr :9002 &
//	nshd-serve -model m.gob -shard 3/4 -addr :9003 &
//	nshd-router -addr :8080 \
//	    -shards http://127.0.0.1:9000,http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//
// -shards lists one slot per shard, comma-separated; replicas of the same
// shard are separated by '|' inside a slot (e.g. "http://a:9000|http://b:9000").
// The router polls every replica's /healthz to drive failover and
// version-gated rollout: after retraining, SIGHUP the shard processes one at
// a time — the router keeps pinning the old model version (which swapped
// shards still serve from their retained engine) until the whole fleet
// advertises the new one, then flips. No request is dropped and no reduce
// ever mixes model versions.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers debug handlers on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nshd/internal/serve"
)

func main() {
	log.SetFlags(0)
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		shards  = flag.String("shards", "", "shard slots, comma-separated; '|' separates replicas within a slot")
		timeout = flag.Duration("timeout", 5*time.Second, "per fan-out request timeout")
		poll    = flag.Duration("poll", 500*time.Millisecond, "replica health/version poll interval")
		eject   = flag.Int("eject-after", 3, "consecutive failures before a replica is ejected")
		cooloff = flag.Duration("eject-cooloff", 2*time.Second, "how long an ejected replica is deprioritized")
		hedge   = flag.Duration("hedge", 0, "hedge a slow shard attempt onto another replica after this delay (0 disables)")
		pprofA  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); disabled when empty")
	)
	flag.Parse()
	if *pprofA != "" {
		go func(addr string) {
			log.Printf("pprof: listening on %s", addr)
			if err := http.ListenAndServe(addr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}(*pprofA)
	}
	if *shards == "" {
		log.Fatal("-shards is required, e.g. -shards http://127.0.0.1:9000,http://127.0.0.1:9001")
	}
	var slots [][]string
	for _, slot := range strings.Split(*shards, ",") {
		var reps []string
		for _, a := range strings.Split(slot, "|") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, strings.TrimSuffix(a, "/"))
			}
		}
		if len(reps) > 0 {
			slots = append(slots, reps)
		}
	}

	r, err := serve.NewRouter(slots, serve.RouterOptions{
		Timeout:      *timeout,
		PollInterval: *poll,
		EjectAfter:   *eject,
		EjectCooloff: *cooloff,
		Hedge:        *hedge,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	log.Printf("routing %d shard slots over D=%d (%d classes), model version %016x",
		len(r.Shards()), r.FullDim(), r.Classes(), r.Version())
	for _, s := range r.Shards() {
		log.Printf("  slot [%d,%d)", s[0], s[1])
	}

	httpSrv := &http.Server{Addr: *addr, Handler: serve.NewRouterServer(r).Handler()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		log.Print("shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		close(done)
	}()

	log.Printf("listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	st := r.Stats()
	log.Printf("routed %d requests (%d samples), %d errors, %d retries, %d hedges, %d ejects, %d version flips",
		st["requests"], st["samples"], st["errors"], st["retries"], st["hedges"], st["ejects"], st["flips"])
}
