// Command nshd-serve exposes a trained NSHD pipeline as an HTTP prediction
// service, micro-batching concurrent requests through the frozen inference
// engine (internal/serve).
//
//	nshd-serve -model model.gob -addr :8080
//	nshd-serve -demo                          # self-contained demo model
//
// Endpoints: POST /predict (JSON {"inputs": [[...]]} or length-prefixed
// binary float32 frames), GET /healthz, GET /metrics. SIGHUP reloads -model
// from disk and hot-swaps the engine with zero downtime; SIGINT/SIGTERM
// drain gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers debug handlers on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/serve"
	"nshd/internal/tensor"
)

func main() {
	log.SetFlags(0)
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		model    = flag.String("model", "", "trained pipeline snapshot (nshd-train -out)")
		demo     = flag.Bool("demo", false, "serve a small self-contained demo model (no snapshot needed)")
		packed   = flag.Bool("packed", true, "serve with the packed popcount classifier")
		maxBatch = flag.Int("max-batch", 0, "micro-batch size threshold (0 = engine chunk size)")
		maxDelay = flag.Duration("max-delay", time.Millisecond, "max queue delay before flushing a partial batch (<0 = greedy)")
		queueCap = flag.Int("queue", 0, "admission queue capacity in requests (0 = 4×max-batch)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout (0 disables)")
		shardArg = flag.String("shard", "", "serve dimension shard i of S as \"i/S\" (e.g. 0/4); empty serves the full model")
		pprofArg = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); disabled when empty")
	)
	flag.Parse()
	startPprof(*pprofArg)

	if (*model == "") == !*demo {
		log.Fatal("exactly one of -model or -demo is required")
	}
	shard, shards, err := parseShard(*shardArg)
	if err != nil {
		log.Fatal(err)
	}

	compile := func() (*engine.Engine, error) {
		var p *core.Pipeline
		var err error
		if *demo {
			p, err = demoPipeline()
		} else {
			p, err = core.Load(*model)
		}
		if err != nil {
			return nil, err
		}
		p.Cfg.PackedInference = *packed
		// The shard arguments survive SIGHUP reloads: a rolling model swap
		// keeps each process on its D-slice, only the weights change.
		return engine.CompileShard(p, shard, shards)
	}

	eng, err := compile()
	if err != nil {
		log.Fatal(err)
	}
	b, err := serve.New(eng, serve.Options{
		MaxBatch: *maxBatch,
		MaxDelay: *maxDelay,
		QueueCap: *queueCap,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := b.Options()
	lo, hi := eng.Shard()
	log.Printf("serving %v → D-slice [%d,%d) of %d, %d classes, version %016x | chunk=%d max-batch=%d max-delay=%s queue=%d | model %d bytes, arena %d bytes/worker",
		eng.InShape(), lo, hi, eng.FullDim(), eng.Classes(), eng.ModelVersion(), eng.ChunkSize(),
		opts.MaxBatch, opts.MaxDelay, opts.QueueCap, eng.ModelBytes(), eng.ArenaBytes())

	httpSrv := &http.Server{Addr: *addr, Handler: serve.NewServer(b, *timeout).Handler()}

	// SIGHUP: recompile from disk and hot-swap; serving never pauses.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			e2, err := compile()
			if err != nil {
				log.Printf("reload failed, keeping current engine: %v", err)
				continue
			}
			if err := b.Swap(e2); err != nil {
				log.Printf("swap refused: %v", err)
				continue
			}
			src := *model
			if *demo {
				src = "demo pipeline"
			}
			log.Printf("engine hot-swapped from %s", src)
		}
	}()

	// SIGINT/SIGTERM: stop accepting connections, drain the batcher, exit.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		log.Print("draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		b.Close()
		close(done)
	}()

	log.Printf("listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	st := b.Stats()
	log.Printf("served %d samples in %d batches (mean batch %.1f, p99 %.1fms)",
		st.Served, st.Batches, st.MeanBatch, st.LatencyP99Ms)
}

// parseShard parses the -shard "i/S" argument; empty means the full model
// (shard 0 of 1 — the identical code path, just the whole column range).
func parseShard(s string) (shard, shards int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &shard, &shards); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/S, e.g. 0/4", s)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("-shard %q: shard index out of range", s)
	}
	return shard, shards, nil
}

// demoPipeline assembles a small synthetic-data pipeline with single-pass
// bundled class hypervectors — untrained beyond bundling, but enough for
// `curl` smoke tests without a snapshot file.
func demoPipeline() (*core.Pipeline, error) {
	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 64, Test: 8, Size: 32, Noise: 0.2, Seed: 21,
	})
	zoo, err := cnn.Build("mobilenetv2", tensor.NewRNG(22), train.Classes)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(1, train.Classes)
	cfg.Seed = 23
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, err
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	fmt.Fprintln(os.Stderr, "demo model: mobilenetv2 cut=1, bundled class hypervectors (not retrained)")
	return p, nil
}

// startPprof serves net/http/pprof's DefaultServeMux handlers on a separate
// listener, keeping the debug surface off the service port. No-op when addr
// is empty (the default).
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("pprof: listening on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("pprof: %v", err)
		}
	}()
}
