package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// compressEntry is one row of BENCH_PR8.json: a point on the post-training
// compression tradeoff curve (serving bytes, fused-tail latency, test
// accuracy), or the auto-search / acceptance-criteria summary rows.
type compressEntry struct {
	Name        string  `json:"name"`
	KeepPct     int     `json:"keep_pct,omitempty"`
	Precision   string  `json:"precision,omitempty"`
	Rank        int     `json:"rank,omitempty"`
	D           int     `json:"d,omitempty"`
	Bytes       int64   `json:"model_bytes,omitempty"`
	TailUs      float64 `json:"tail_us,omitempty"`
	AccPct      float64 `json:"acc_pct,omitempty"`
	DropPt      float64 `json:"drop_pt,omitempty"`  // test-accuracy points lost vs the float fused source
	AgreePct    float64 `json:"agree_pct,omitempty"`
	SizeRatio   float64 `json:"size_ratio,omitempty"`   // source bytes / this config's bytes
	TailSpeedup float64 `json:"tail_speedup,omitempty"` // source tail µs / this config's tail µs
	Pass        bool    `json:"pass,omitempty"`
}

// runPerfCompress measures engine.Compress on the PR 6 serving config (vgg16
// cut8, D=3000, float fused tail — the committed BENCH_PR6 baseline): a
// pinned tradeoff curve at keep ∈ {100,75,50,25}% × {int4, ternary}, the
// 1-point auto search, its remat composition (seed-regenerated pruned
// projection), and one acceptance row checking ≥2× smaller + faster tail at
// ≤1 accuracy point dropped.
func runPerfCompress(path, baselinePath string) error {
	train, test := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 64, Test: 128, Size: 32, Noise: 0.2, Seed: 71,
	})
	zoo, err := cnn.Build("vgg16", tensor.NewRNG(72), 10)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(8, 10)
	cfg.Seed = 73
	cfg.D = 3000
	cfg.FHat = 100
	cfg.BatchSize = 32
	cfg.PackedInference = false // the PR 6 float fused baseline
	p, err := core.New(zoo, cfg)
	if err != nil {
		return err
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)

	src, err := engine.Compile(p)
	if err != nil {
		return err
	}
	srcPreds, err := src.Predict(test.Images)
	if err != nil {
		return err
	}
	srcAcc := accPct(srcPreds, test.Labels)
	n := src.ChunkSize()
	if n > test.Len() {
		n = test.Len()
	}
	sample := test.Images.Len() / test.Len()
	timeImgs := tensor.FromSlice(test.Images.Data[:n*sample], n,
		test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
	srcTail, err := tailOnlyUs(src, timeImgs)
	if err != nil {
		return err
	}
	entries := []compressEntry{{
		Name: "compress/source/float-fused", KeepPct: 100, Precision: "keep",
		D: src.Dim(), Bytes: src.ModelBytes(), TailUs: srcTail, AccPct: srcAcc, AgreePct: 100,
	}}
	fmt.Fprintf(os.Stderr, "%-40s %9d B   tail %8.1fµs   acc %5.1f%%\n",
		entries[0].Name, entries[0].Bytes, srcTail, srcAcc)

	target := engine.CompressTarget{Calib: test.Images, Labels: test.Labels}
	measure := func(name string, e *engine.Engine, rep engine.CompressReport) (compressEntry, error) {
		preds, err := e.Predict(test.Images)
		if err != nil {
			return compressEntry{}, err
		}
		tail, err := tailOnlyUs(e, timeImgs)
		if err != nil {
			return compressEntry{}, err
		}
		acc := accPct(preds, test.Labels)
		ce := compressEntry{
			Name: name, KeepPct: int(math.Round(rep.KeepRatio * 100)), Precision: rep.Precision,
			Rank: rep.Rank, D: e.Dim(), Bytes: e.ModelBytes(), TailUs: tail,
			AccPct: acc, DropPt: srcAcc - acc, AgreePct: accPct(preds, srcPreds),
			SizeRatio: float64(src.ModelBytes()) / float64(e.ModelBytes()), TailSpeedup: srcTail / tail,
		}
		fmt.Fprintf(os.Stderr, "%-40s %9d B   tail %8.1fµs   acc %5.1f%% (drop %+.1f)   ×%.2f smaller ×%.2f faster\n",
			ce.Name, ce.Bytes, ce.TailUs, ce.AccPct, ce.DropPt, ce.SizeRatio, ce.TailSpeedup)
		return ce, nil
	}

	// The pinned tradeoff curve: no search, exactly the requested point.
	for _, keep := range []float64{1.0, 0.75, 0.5, 0.25} {
		for _, prec := range []engine.ScorerPrecision{engine.PrecisionInt4, engine.PrecisionTernary} {
			t := target
			t.KeepRatio, t.Precision, t.NoLowRank, t.MaxAccuracyDrop = keep, prec, true, 100
			ce, rep, err := src.Compress(t)
			if err != nil {
				return err
			}
			name := fmt.Sprintf("compress/curve/keep%d/%s", int(keep*100), prec.String())
			row, err := measure(name, ce, rep)
			if err != nil {
				return err
			}
			entries = append(entries, row)
		}
	}

	// The auto search: smallest engine within a 1-point calibration budget.
	t := target
	t.MaxAccuracyDrop = 1
	auto, rep, err := src.Compress(t)
	if err != nil {
		return err
	}
	autoRow, err := measure("compress/auto/1pt", auto, rep)
	if err != nil {
		return err
	}
	entries = append(entries, autoRow)

	// Remat composition: the same plan with the pruned projection
	// rematerialized from its seed — bit-identical predictions, the encoder's
	// serving bytes collapse to the seed + block list.
	remat, err := engine.Compile(p, engine.WithRemat(), engine.WithCompression(auto.Plan()))
	if err != nil {
		return err
	}
	rematRow, err := measure("compress/auto/1pt+remat", remat, rep)
	if err != nil {
		return err
	}
	entries = append(entries, rematRow)

	// Acceptance: a compressed config that is ≥2× smaller than the float
	// fused source with a faster tail at ≤1 point of test accuracy dropped.
	// Prefer the smaller remat composition when its tail still wins.
	best := rematRow
	if best.TailSpeedup <= 1 {
		best = autoRow
	}
	crit := compressEntry{
		Name: "compress/criteria/" + best.Name[len("compress/"):], KeepPct: best.KeepPct,
		Precision: best.Precision, Rank: best.Rank, D: best.D, Bytes: best.Bytes,
		TailUs: best.TailUs, AccPct: best.AccPct, DropPt: best.DropPt,
		SizeRatio: best.SizeRatio, TailSpeedup: best.TailSpeedup,
		Pass: best.SizeRatio >= 2 && best.TailSpeedup > 1 && best.DropPt <= 1,
	}
	entries = append(entries, crit)
	fmt.Fprintf(os.Stderr, "%-40s ×%.2f smaller, ×%.2f faster tail, %.1f pt drop  pass=%v\n",
		crit.Name, crit.SizeRatio, crit.TailSpeedup, crit.DropPt, crit.Pass)

	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(entries), path)
	if baselinePath != "" {
		return diffCompressBaseline(entries, baselinePath)
	}
	return nil
}

// tailOnlyUs times the engine's stages and returns the serving tail's (final
// fused stage's) best-of-reps microseconds.
func tailOnlyUs(e *engine.Engine, imgs *tensor.Tensor) (float64, error) {
	rows, err := e.TimeStages(imgs, tailReps)
	if err != nil {
		return 0, err
	}
	return rows[len(rows)-1].Seconds * 1e6, nil
}

func accPct(preds, labels []int) float64 {
	hit := 0
	for i := range preds {
		if preds[i] == labels[i] {
			hit++
		}
	}
	return 100 * float64(hit) / float64(len(preds))
}

// diffCompressBaseline prints per-row byte and tail ratios of a fresh run
// against the committed BENCH_PR8.json.
func diffCompressBaseline(entries []compressEntry, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf-compress baseline: %w", err)
	}
	var base []compressEntry
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perf-compress baseline: %w", err)
	}
	byName := make(map[string]compressEntry, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	fmt.Fprintf(os.Stderr, "\nvs %s:\n", baselinePath)
	worst := math.Inf(1)
	for _, e := range entries {
		b, ok := byName[e.Name]
		if !ok || b.TailUs <= 0 || e.TailUs <= 0 {
			continue
		}
		ratio := b.TailUs / e.TailUs // >1: fresh tail is faster than committed
		if ratio < worst {
			worst = ratio
		}
		fmt.Fprintf(os.Stderr, "%-40s tail %8.1fµs vs %8.1fµs  ratio %.2f   bytes %d vs %d\n",
			e.Name, e.TailUs, b.TailUs, ratio, e.Bytes, b.Bytes)
	}
	if !math.IsInf(worst, 1) {
		fmt.Fprintf(os.Stderr, "worst tail ratio vs baseline: %.2f (>1 means faster than committed)\n", worst)
	}
	return nil
}
