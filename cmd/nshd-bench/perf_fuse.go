package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// runPerfFuse measures what the cache-resident fused extraction blocks buy on
// the committed serving config (vgg16 cut 8, D=3000): batch-1 end-to-end
// latency and the extract-stage share, fused vs the layer-by-layer extractor,
// on both classifier kernels and both numeric precisions. The `latency/...`
// rows reuse the BENCH_PR9 naming so -perf-fuse-baseline diffs directly
// against the committed pre-fusion numbers; the `fuse/...` rows carry the
// same-build fused-vs-unfused extract comparison with its speedup.
func runPerfFuse(path, baselinePath string) error {
	train, test := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 64, Test: 128, Size: 32, Noise: 0.2, Seed: 71,
	})
	var entries []latEntry
	for _, c := range []struct {
		packed bool
		int8   bool
	}{
		{false, false},
		{true, false},
		{false, true},
	} {
		rows, err := perfFuseEngine("vgg16", 8, c.packed, c.int8, train, test)
		if err != nil {
			return err
		}
		entries = append(entries, rows...)
	}
	if baselinePath != "" {
		if err := embedLatencyBaseline(entries, baselinePath); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(entries), path)
	return nil
}

// fuseStage is the TimeStages rep count (min-of): higher than latStage
// because the fused-vs-unfused margin is a few percent and the shared CPU's
// scheduler noise needs more samples to cut through.
const fuseStage = 256

func perfFuseEngine(model string, cut int, packed, asInt8 bool, train, test *dataset.Dataset) ([]latEntry, error) {
	p, err := benchPipeline(model, cut, packed, train)
	if err != nil {
		return nil, err
	}
	kernel := "float"
	if packed {
		kernel = "packed"
	}
	prec := ""
	var common []engine.Option
	if asInt8 {
		prec = "int8/"
		common = append(common, engine.Int8, engine.WithCalibration(train.Images))
	}

	fusedE, err := engine.Compile(p, common...)
	if err != nil {
		return nil, err
	}
	unfusedE, err := engine.Compile(p, append(append([]engine.Option{}, common...), engine.WithUnfusedExtract())...)
	if err != nil {
		return nil, err
	}

	// Same-run agreement guard: fused and unfused must compute the same
	// function before their latencies mean anything (the engine tests pin
	// this bit-exactly; this re-checks the benchmarked build).
	pf, err := fusedE.Predict(test.Images)
	if err != nil {
		return nil, err
	}
	pu, err := unfusedE.Predict(test.Images)
	if err != nil {
		return nil, err
	}
	for i := range pf {
		if pf[i] != pu[i] {
			return nil, fmt.Errorf("perf-fuse: %s%s fused disagrees with unfused at sample %d", prec, kernel, i)
		}
	}

	sample := test.Images.Len() / test.Len()
	img := tensor.FromSlice(test.Images.Data[:sample], 1,
		test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
	preds := make([]int, 1)
	measure := func(e *engine.Engine) (p50, p99, extract float64, err error) {
		lats := make([]float64, 0, latReps)
		for r := 0; r < latWarmup+latReps; r++ {
			i := r % test.Len()
			img.Data = test.Images.Data[i*sample : (i+1)*sample]
			t0 := time.Now()
			if err := e.PredictInto(img, preds); err != nil {
				return 0, 0, 0, err
			}
			if r >= latWarmup {
				lats = append(lats, float64(time.Since(t0).Nanoseconds())/1e3)
			}
		}
		sort.Float64s(lats)
		rows, err := e.TimeStages(img, fuseStage)
		if err != nil {
			return 0, 0, 0, err
		}
		for _, st := range rows {
			if st.Name == "extract" {
				extract = st.Seconds * 1e6
			}
		}
		return lats[len(lats)/2], lats[len(lats)*99/100], extract, nil
	}

	fp50, fp99, fext, err := measure(fusedE)
	if err != nil {
		return nil, err
	}
	up50, up99, uext, err := measure(unfusedE)
	if err != nil {
		return nil, err
	}

	var entries []latEntry
	add := func(e latEntry) {
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-56s p50 %9.1fµs", e.Name, e.P50Us)
		if e.P99Us > 0 {
			fmt.Fprintf(os.Stderr, "   p99 %9.1fµs", e.P99Us)
		}
		if e.Speedup > 0 {
			fmt.Fprintf(os.Stderr, "   ×%.2f", e.Speedup)
		}
		fmt.Fprintln(os.Stderr)
	}
	if !asInt8 {
		// Float rows keep the BENCH_PR9 names (default compile = fused tail,
		// now with fused extract) so the baseline diff lines up.
		add(latEntry{Name: fmt.Sprintf("latency/%s/cut%d/%s/fused/batch1", model, cut, kernel),
			P50Us: fp50, P99Us: fp99, AgreeExact: true})
		add(latEntry{Name: fmt.Sprintf("latency/%s/cut%d/%s/fused/stage/extract", model, cut, kernel),
			P50Us: fext})
	} else {
		add(latEntry{Name: fmt.Sprintf("fuse/%s/cut%d/%s%s/fused/batch1", model, cut, prec, kernel),
			P50Us: fp50, P99Us: fp99, AgreeExact: true})
		add(latEntry{Name: fmt.Sprintf("fuse/%s/cut%d/%s%s/fused/stage/extract", model, cut, prec, kernel),
			P50Us: fext})
	}
	add(latEntry{Name: fmt.Sprintf("fuse/%s/cut%d/%s%s/unfused/batch1", model, cut, prec, kernel),
		P50Us: up50, P99Us: up99, AgreeExact: true})
	add(latEntry{Name: fmt.Sprintf("fuse/%s/cut%d/%s%s/unfused/stage/extract", model, cut, prec, kernel),
		P50Us: uext})
	add(latEntry{Name: fmt.Sprintf("fuse/%s/cut%d/%s%s/extract-fused-vs-unfused", model, cut, prec, kernel),
		P50Us: fext, BaseP50Us: uext, Speedup: uext / fext})
	return entries, nil
}
