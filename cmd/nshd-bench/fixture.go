package main

import (
	"fmt"
	"os"
	"path/filepath"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/tensor"
)

// benchPipeline builds (or restores) the committed serving bench fixture: a
// zoo model cut at the given layer over the BENCH_PR6 shapes (D=3000,
// F̂=100, seed 73) with bundled class hypervectors from the 10-class
// synthetic training split. Bundling alone — no retraining loop — already
// gives every class a distinct hypervector, which is all a latency benchmark
// needs.
//
// The assembled pipeline is cached as a gob under a shape-keyed temp path,
// so back-to-back -perf-* runs (fuse, latency) skip the teacher extraction
// pass and start measuring immediately. The cache key carries every input
// that changes the serialized weights; kernel choice (packed) is a compile
// flag, not a weight, and is applied after load.
func benchPipeline(model string, cut int, packed bool, train *dataset.Dataset) (*core.Pipeline, error) {
	key := fmt.Sprintf("nshd-bench-%s-cut%d-d3000-fhat100-seed73-data%d.gob", model, cut, train.Len())
	path := filepath.Join(os.TempDir(), key)
	if p, err := core.Load(path); err == nil {
		p.Cfg.PackedInference = packed
		return p, nil
	}
	zoo, err := cnn.Build(model, tensor.NewRNG(72), 10)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(cut, 10)
	cfg.Seed = 73
	cfg.D = 3000
	cfg.FHat = 100
	cfg.BatchSize = 32
	cfg.PackedInference = packed
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, err
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	if err := p.Save(path); err != nil {
		// Cache writes are best effort: a read-only temp dir only costs the
		// next run a rebuild.
		fmt.Fprintf(os.Stderr, "bench fixture cache write failed: %v\n", err)
	}
	return p, nil
}
