package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// tailEntry is one row of BENCH_PR6.json: a staged-vs-fused paired
// measurement of the serving tail, plus the serving-footprint rows that
// document the rematerialization trade.
type tailEntry struct {
	Name       string  `json:"name"`
	Batch      int     `json:"batch,omitempty"`
	StagedUs   float64 `json:"staged_us,omitempty"`
	FusedUs    float64 `json:"fused_us,omitempty"`
	RematUs    float64 `json:"remat_us,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"` // staged / fused
	StagedB    int64   `json:"staged_bytes,omitempty"`
	FusedB     int64   `json:"fused_bytes,omitempty"`
	RematB     int64   `json:"remat_bytes,omitempty"`
	ArenaStgB  int64   `json:"arena_staged_bytes,omitempty"`
	ArenaFusB  int64   `json:"arena_fused_bytes,omitempty"`
	AgreeExact bool    `json:"agree_exact,omitempty"`
}

const tailReps = 11

// runPerfTail measures the fused linear tail (project+classify in one
// blocked GEMM, no full-width intermediates) against the staged chain, on
// the committed serving configs. Each config contributes end-to-end
// PredictInto rows at batch 1 (the latency case micro-batching cares about)
// and one engine chunk (the throughput case), a remat row documenting the
// seed-regenerated projection's cost, and a footprint row.
func runPerfTail(path, baselinePath string) error {
	// Both kernels ride the same cheap extractor: the rows compare tail
	// strategies, and a deep extractor would bury the tail delta in
	// hundreds of milliseconds of identical convolution jitter.
	configs := []struct {
		model  string
		cut    int
		packed bool
	}{
		{"vgg16", 8, true},
		{"vgg16", 8, false},
	}
	train, test := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 64, Test: 128, Size: 32, Noise: 0.2, Seed: 71,
	})
	var entries []tailEntry
	for _, c := range configs {
		rows, err := perfTailEngine(c.model, c.cut, c.packed, train, test)
		if err != nil {
			return err
		}
		entries = append(entries, rows...)
	}
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(entries), path)
	if baselinePath != "" {
		return diffTailBaseline(entries, baselinePath)
	}
	return nil
}

func perfTailEngine(model string, cut int, packed bool, train, test *dataset.Dataset) ([]tailEntry, error) {
	zoo, err := cnn.Build(model, tensor.NewRNG(72), 10)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(cut, 10)
	cfg.Seed = 73
	cfg.D = 3000 // the paper's serving dimension: the tail dominates here
	cfg.FHat = 100
	cfg.BatchSize = 32
	cfg.PackedInference = packed
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, err
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)

	staged, err := engine.Compile(p, engine.WithStagedTail())
	if err != nil {
		return nil, err
	}
	fused, err := engine.Compile(p)
	if err != nil {
		return nil, err
	}
	remat, err := engine.Compile(p, engine.WithRemat())
	if err != nil {
		return nil, err
	}

	// Agreement check: the benchmark only counts if all three engines
	// compute the same function (the engine tests pin this bit-exactly;
	// this is the same-run sanity signal).
	ps, err := staged.Predict(test.Images)
	if err != nil {
		return nil, err
	}
	pf, err := fused.Predict(test.Images)
	if err != nil {
		return nil, err
	}
	pr, err := remat.Predict(test.Images)
	if err != nil {
		return nil, err
	}
	exact := true
	for i := range ps {
		if pf[i] != ps[i] || pr[i] != ps[i] {
			exact = false
		}
	}
	if !exact {
		return nil, fmt.Errorf("perf-tail: %s/cut%d staged, fused and remat engines disagree", model, cut)
	}

	kernel := "float"
	if packed {
		kernel = "packed"
	}
	var entries []tailEntry
	sample := test.Images.Len() / test.Len()
	for _, batch := range []int{1, fused.ChunkSize()} {
		n := batch
		if n > test.Len() {
			n = test.Len()
		}
		imgs := tensor.FromSlice(test.Images.Data[:n*sample], n,
			test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
		preds := make([]int, n)
		run := func(e *engine.Engine) func() {
			return func() {
				if err := e.PredictInto(imgs, preds); err != nil {
					panic(err)
				}
			}
		}
		sNs, fNs := pairedMin(run(staged), run(fused), tailReps)
		_, rNs := pairedMin(run(staged), run(remat), tailReps)
		e := tailEntry{
			Name:  fmt.Sprintf("tail/%s/cut%d/%s/batch%d", model, cut, kernel, n),
			Batch: n, StagedUs: float64(sNs) / 1e3, FusedUs: float64(fNs) / 1e3,
			RematUs: float64(rNs) / 1e3, Speedup: float64(sNs) / float64(fNs),
			AgreeExact: true,
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-36s staged %9.1fµs   fused %9.1fµs   remat %9.1fµs   ×%.2f\n",
			e.Name, e.StagedUs, e.FusedUs, e.RematUs, e.Speedup)
	}

	// Tail-only rows: the staged chain's project+classify stage times versus
	// the fused tail's single row, isolating the fusion win from the
	// (identical) extractor/manifold prefix.
	n := fused.ChunkSize()
	if n > test.Len() {
		n = test.Len()
	}
	timeImgs := tensor.FromSlice(test.Images.Data[:n*sample], n,
		test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
	sRows, err := staged.TimeStages(timeImgs, tailReps)
	if err != nil {
		return nil, err
	}
	fRows, err := fused.TimeStages(timeImgs, tailReps)
	if err != nil {
		return nil, err
	}
	var stagedTailUs, fusedTailUs float64
	for _, r := range sRows {
		if r.Name == "project" || r.Name == "classify" {
			stagedTailUs += r.Seconds * 1e6
		}
	}
	fusedTailUs = fRows[len(fRows)-1].Seconds * 1e6
	to := tailEntry{
		Name:  fmt.Sprintf("tail/%s/cut%d/%s/tail-only/batch%d", model, cut, kernel, n),
		Batch: n, StagedUs: stagedTailUs, FusedUs: fusedTailUs,
		Speedup: stagedTailUs / fusedTailUs, AgreeExact: true,
	}
	entries = append(entries, to)
	fmt.Fprintf(os.Stderr, "%-36s staged %9.1fµs   fused %9.1fµs   %21s ×%.2f\n",
		to.Name, to.StagedUs, to.FusedUs, "", to.Speedup)

	foot := tailEntry{
		Name:    fmt.Sprintf("tail/%s/cut%d/%s/bytes", model, cut, kernel),
		StagedB: staged.ModelBytes(), FusedB: fused.ModelBytes(), RematB: remat.ModelBytes(),
		ArenaStgB: staged.ArenaBytes(), ArenaFusB: fused.ArenaBytes(),
	}
	entries = append(entries, foot)
	fmt.Fprintf(os.Stderr, "%-36s staged %dB   fused %dB   remat %dB   arena %d→%dB\n",
		foot.Name, foot.StagedB, foot.FusedB, foot.RematB, foot.ArenaStgB, foot.ArenaFusB)
	return entries, nil
}

// diffTailBaseline prints per-row fused-time ratios of a fresh run against
// the committed BENCH_PR6.json.
func diffTailBaseline(entries []tailEntry, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf-tail baseline: %w", err)
	}
	var base []tailEntry
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perf-tail baseline: %w", err)
	}
	byName := make(map[string]tailEntry, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	fmt.Fprintf(os.Stderr, "\nvs %s:\n", baselinePath)
	worst := math.Inf(1)
	for _, e := range entries {
		b, ok := byName[e.Name]
		if !ok || b.FusedUs <= 0 {
			continue
		}
		ratio := b.FusedUs / e.FusedUs // >1: fresh fused tail is faster than committed
		if ratio < worst {
			worst = ratio
		}
		fmt.Fprintf(os.Stderr, "%-36s fused %9.1fµs vs %9.1fµs  ratio %.2f\n",
			e.Name, e.FusedUs, b.FusedUs, ratio)
	}
	if !math.IsInf(worst, 1) {
		fmt.Fprintf(os.Stderr, "worst fused ratio vs baseline: %.2f (>1 means faster than committed)\n", worst)
	}
	return nil
}
