package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"nshd/internal/hdc"
	"nshd/internal/hdlearn"
	"nshd/internal/tensor"
)

// perfEntry is one microbenchmark row of the machine-readable perf report.
type perfEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	GFlops      float64 `json:"gflops,omitempty"`
}

// runPerf benchmarks the compute-core kernels (each "before" variant is the
// seed implementation, kept callable precisely for this comparison) and
// writes the results as JSON, one entry per op.
func runPerf(path string) error {
	var entries []perfEntry
	add := func(name string, flops, bytes int64, fn func(b *testing.B)) {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		ns := float64(res.NsPerOp())
		e := perfEntry{Name: name, NsPerOp: ns, AllocsPerOp: res.AllocsPerOp()}
		if bytes > 0 && ns > 0 {
			e.MBPerSec = float64(bytes) / ns * 1e3 // bytes/ns → MB/s
		}
		if flops > 0 && ns > 0 {
			e.GFlops = float64(flops) / ns
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op\n", name, ns)
	}

	rng := tensor.NewRNG(1)
	for _, s := range []struct {
		name    string
		m, n, k int
	}{
		{"conv_32x1024x27", 32, 1024, 27},
		{"proj_64x3000x100", 64, 3000, 100},
		{"square_256", 256, 256, 256},
	} {
		a := tensor.New(s.m, s.k)
		bb := tensor.New(s.k, s.n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(bb, 0, 1)
		dst := tensor.New(s.m, s.n)
		flops := int64(2 * s.m * s.n * s.k)
		bytes := int64(4 * (s.m*s.k + s.k*s.n + s.m*s.n))
		add("gemm/"+s.name+"/naive", flops, bytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulNaiveInto(dst, a, bb)
			}
		})
		add("gemm/"+s.name+"/blocked", flops, bytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(dst, a, bb)
			}
		})
	}

	// Similarity-layout product: [64,3000] @ [10,3000]ᵀ.
	{
		a := tensor.New(64, 3000)
		bt := tensor.New(10, 3000)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(bt, 0, 1)
		add("matmult/sim_64x10x3000", 2*64*10*3000, 4*(64*3000+10*3000+64*10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulT(a, bt)
			}
		})
	}

	// Transpose: seed elementwise loop vs blocked-tile implementation.
	{
		const n = 1024
		a := tensor.New(n, n)
		rng.FillNormal(a, 0, 1)
		bytes := int64(n * n * 4 * 2)
		add("transpose/1024x1024/naive", 0, bytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := tensor.New(n, n)
				for r := 0; r < n; r++ {
					for c := 0; c < n; c++ {
						out.Data[c*n+r] = a.Data[r*n+c]
					}
				}
			}
		})
		add("transpose/1024x1024/blocked", 0, bytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.Transpose(a)
			}
		})
	}

	// HD encoding: the projection Φ_P over a 64-sample batch.
	{
		pr := hdc.NewProjection(rng.Fork(), 100, 3000)
		feats := tensor.New(64, 100)
		rng.FillNormal(feats, 0, 1)
		add("encode/proj_64x100_to_3000", 2*64*100*3000, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr.EncodeBatch(feats)
			}
		})
	}

	// Inference: float32 cosine scoring vs packed popcount scoring of the
	// sign-quantized model at paper-scale D.
	{
		const k, d, n = 10, 10000, 64
		m := hdlearn.NewModel(k, d)
		rng.FillNormal(m.M, 0, 1)
		quantized := m.SignQuantized()
		pm := hdlearn.PackModel(m)
		q := tensor.New(n, d)
		rng.FillBipolar(q)
		flops := int64(2 * k * d * n)
		add("predict/float32_d10000_k10_n64", flops, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				quantized.PredictBatch(q)
			}
		})
		add("predict/packed_d10000_k10_n64", flops, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pm.PredictBatch(q)
			}
		})
		row := q.Row(0)
		words := make([]uint64, (d+63)/64)
		add("pack_signs/d10000", 0, int64(d*4), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.PackSignsInto(words, row)
			}
		})
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
