package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/hdc"
	"nshd/internal/hdlearn"
	"nshd/internal/tensor"
)

// perfEntry is one microbenchmark row of the machine-readable perf report.
type perfEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	GFlops      float64 `json:"gflops,omitempty"`
}

// runPerf benchmarks the compute-core kernels (each "before" variant is the
// seed implementation, kept callable precisely for this comparison) and
// writes the results as JSON, one entry per op.
func runPerf(path string) error {
	var entries []perfEntry
	addRes := func(name string, flops, bytes int64, res testing.BenchmarkResult) {
		ns := float64(res.NsPerOp())
		e := perfEntry{Name: name, NsPerOp: ns, AllocsPerOp: res.AllocsPerOp()}
		if bytes > 0 && ns > 0 {
			e.MBPerSec = float64(bytes) / ns * 1e3 // bytes/ns → MB/s
		}
		if flops > 0 && ns > 0 {
			e.GFlops = float64(flops) / ns
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op\n", name, ns)
	}
	add := func(name string, flops, bytes int64, fn func(b *testing.B)) {
		addRes(name, flops, bytes, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		}))
	}

	// End-to-end serving: the compiled Engine against the seed Pipeline
	// predict path (all-N feature materialization, per-batch allocation,
	// per-call model packing — reconstructed below exactly as the pre-engine
	// code ran it). Measured first, on a near-fresh heap: the engine's arena
	// slabs are large contiguous allocations whose layout degrades measurably
	// when carved out of a heap already churned by the microbenchmarks.
	if err := perfServing(addRes); err != nil {
		return err
	}

	rng := tensor.NewRNG(1)
	for _, s := range []struct {
		name    string
		m, n, k int
	}{
		{"conv_32x1024x27", 32, 1024, 27},
		{"proj_64x3000x100", 64, 3000, 100},
		{"square_256", 256, 256, 256},
	} {
		a := tensor.New(s.m, s.k)
		bb := tensor.New(s.k, s.n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(bb, 0, 1)
		dst := tensor.New(s.m, s.n)
		flops := int64(2 * s.m * s.n * s.k)
		bytes := int64(4 * (s.m*s.k + s.k*s.n + s.m*s.n))
		add("gemm/"+s.name+"/naive", flops, bytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulNaiveInto(dst, a, bb)
			}
		})
		add("gemm/"+s.name+"/blocked", flops, bytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(dst, a, bb)
			}
		})
	}

	// Similarity-layout product: [64,3000] @ [10,3000]ᵀ.
	{
		a := tensor.New(64, 3000)
		bt := tensor.New(10, 3000)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(bt, 0, 1)
		add("matmult/sim_64x10x3000", 2*64*10*3000, 4*(64*3000+10*3000+64*10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulT(a, bt)
			}
		})
	}

	// Transpose: seed elementwise loop vs blocked-tile implementation.
	{
		const n = 1024
		a := tensor.New(n, n)
		rng.FillNormal(a, 0, 1)
		bytes := int64(n * n * 4 * 2)
		add("transpose/1024x1024/naive", 0, bytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := tensor.New(n, n)
				for r := 0; r < n; r++ {
					for c := 0; c < n; c++ {
						out.Data[c*n+r] = a.Data[r*n+c]
					}
				}
			}
		})
		add("transpose/1024x1024/blocked", 0, bytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.Transpose(a)
			}
		})
	}

	// HD encoding: the projection Φ_P over a 64-sample batch.
	{
		pr := hdc.NewProjection(rng.Fork(), 100, 3000)
		feats := tensor.New(64, 100)
		rng.FillNormal(feats, 0, 1)
		add("encode/proj_64x100_to_3000", 2*64*100*3000, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr.EncodeBatch(feats)
			}
		})
	}

	// Inference: float32 cosine scoring vs packed popcount scoring of the
	// sign-quantized model at paper-scale D.
	{
		const k, d, n = 10, 10000, 64
		m := hdlearn.NewModel(k, d)
		rng.FillNormal(m.M, 0, 1)
		quantized := m.SignQuantized()
		pm := hdlearn.PackModel(m)
		q := tensor.New(n, d)
		rng.FillBipolar(q)
		flops := int64(2 * k * d * n)
		add("predict/float32_d10000_k10_n64", flops, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				quantized.PredictBatch(q)
			}
		})
		add("predict/packed_d10000_k10_n64", flops, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pm.PredictBatch(q)
			}
		})
		row := q.Row(0)
		words := make([]uint64, (d+63)/64)
		add("pack_signs/d10000", 0, int64(d*4), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.PackSignsInto(words, row)
			}
		})
	}

	// Training path: GEMM-ified backward passes and batched MASS retraining
	// against their kept per-sample/scalar references.
	if err := perfTraining(addRes); err != nil {
		return err
	}

	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// seedPredict reproduces the pre-engine Pipeline.Predict byte-for-byte: the
// batched training-side forward, full feature materialization, and — under
// PackedInference — a fresh PackModel per call.
func seedPredict(p *core.Pipeline, images *tensor.Tensor) []int {
	feats := p.ExtractFeatures(images)
	_, _, signed := p.Symbolize(feats, false)
	if p.Cfg.PackedInference {
		return hdlearn.PackModel(p.HD).PredictBatch(signed)
	}
	return p.HD.PredictBatch(signed)
}

// perfServing benchmarks end-to-end prediction throughput on a
// mobilenetv2-prefix pipeline at paper dimensionality (D=3000, F̂=100), both
// classifier kernels, engine vs seed path. The two paths are measured in
// alternating rounds and each reports its best round: on a shared/throttled
// host, machine-wide drift between two back-to-back one-shot benchmarks
// easily exceeds the effect being measured.
func perfServing(addRes func(name string, flops, bytes int64, res testing.BenchmarkResult)) error {
	const n = 128
	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: n, Test: 8, Size: 32, Noise: 0.2, Seed: 21,
	})
	zoo, err := cnn.Build("mobilenetv2", tensor.NewRNG(22), 10)
	if err != nil {
		return err
	}
	for _, packed := range []bool{false, true} {
		cfg := core.DefaultConfig(5, 10)
		cfg.Seed = 23
		cfg.PackedInference = packed
		p, err := core.New(zoo, cfg)
		if err != nil {
			return err
		}
		feats := p.ExtractFeatures(train.Images)
		_, _, signed := p.Symbolize(feats, false)
		p.HD.InitBundle(signed, train.Labels)

		e, err := engine.Compile(p)
		if err != nil {
			return err
		}
		// Parity check before timing: benchmarking two paths that disagree
		// would be meaningless.
		want := seedPredict(p, train.Images)
		got, err := e.Predict(train.Images)
		if err != nil {
			return err
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("perf: engine and seed predictions disagree at %d", i)
			}
		}

		kernel := "float"
		if packed {
			kernel = "packed"
		}
		bytes := int64(train.Images.Len() * 4)
		preds := make([]int, n)
		engineOp := func() {
			if err := e.PredictInto(train.Images, preds); err != nil {
				panic(err)
			}
		}
		seedOp := func() { seedPredict(p, train.Images) }
		// Interleave the two paths op-by-op and take each path's minimum:
		// on a shared/throttled host the machine speed drifts on a scale of
		// seconds to minutes, so paired back-to-back ops sample the same
		// machine state and the min-of-reps estimates each path's uncontended
		// cost. Coarser schemes (alternating multi-second benchmark rounds)
		// were observed to swing the ratio by ±20% run to run.
		seedNs, engineNs := int64(1)<<62, int64(1)<<62
		const reps = 10
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			seedOp()
			if d := time.Since(t0).Nanoseconds(); d < seedNs {
				seedNs = d
			}
			t1 := time.Now()
			engineOp()
			if d := time.Since(t1).Nanoseconds(); d < engineNs {
				engineNs = d
			}
		}
		addRes("e2e_predict/pipeline_seed/"+kernel, 0, bytes, benchResult(seedNs, countAllocs(seedOp)))
		addRes("e2e_predict/engine/"+kernel, 0, bytes, benchResult(engineNs, countAllocs(engineOp)))
		fmt.Fprintf(os.Stderr, "%-40s %12.2fx\n", "e2e_predict/speedup/"+kernel,
			float64(seedNs)/float64(engineNs))
	}
	return nil
}

// benchResult adapts a hand-timed measurement to testing.BenchmarkResult so
// the e2e rows flow through the same report plumbing as the microbenchmarks.
func benchResult(ns, allocs int64) testing.BenchmarkResult {
	return testing.BenchmarkResult{N: 1, T: time.Duration(ns), MemAllocs: uint64(allocs)}
}

// countAllocs reports the heap allocations performed by one call of op.
func countAllocs(op func()) int64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	op()
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs - before.Mallocs)
}
