package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// quantEntry is one row of BENCH_PR5.json: a float-vs-int8 paired
// measurement, either of a raw GEMM shape or of one engine stage.
type quantEntry struct {
	Name    string  `json:"name"`
	M       int     `json:"m,omitempty"`
	N       int     `json:"n,omitempty"`
	K       int     `json:"k,omitempty"`
	FloatUs float64 `json:"float_us"`
	Int8Us  float64 `json:"int8_us"`
	Speedup float64 `json:"speedup"`
	Covered int     `json:"covered,omitempty"`
	Total   int     `json:"total,omitempty"`
	Agree   float64 `json:"agree_pct,omitempty"`
}

const quantReps = 11

// runPerfQuant measures the int8 inference datapath against the float one:
// raw GEMM kernels at convolution-typical shapes, then per-stage and
// end-to-end engine timings on two committed configs — vgg16 (conv+ReLU+pool
// only, so the whole extract→manifold chain quantizes) and mobilenetv2
// (residual blocks fall back to float, exercising the mixed-precision
// segments). Rows are written as JSON to path; when baselinePath is
// non-empty, deltas against that committed baseline are printed.
func runPerfQuant(path, baselinePath string) error {
	var entries []quantEntry

	// Raw kernel rows: float AVX2 GEMM vs int8 VNNI GEMM, both strictly
	// serial (the engine parallelizes across batch chunks, not inside the
	// GEMM). Shapes are im2col shapes from the engine configs below:
	// M=OutC, N=outH·outW, K=InC·KH·KW with K quad-padded the way
	// Int8Conv2D issues it (the 3→32 first conv's K=27 runs as 28).
	for _, s := range [][3]int{{64, 1024, 576}, {32, 4096, 28}, {16, 256, 1152}} {
		m, n, k := s[0], s[1], s[2]
		rng := tensor.NewRNG(int64(41 + m))
		af := tensor.New(m, k)
		bf := tensor.New(k, n)
		rng.FillNormal(af, 0, 1)
		rng.FillNormal(bf, 0, 1)
		cf := tensor.New(m, n)
		fscratch := make([]float32, tensor.GemmScratch())

		ai := make([]int8, m*k)
		bi := make([]uint8, k*n)
		for i := range ai {
			ai[i] = int8(rng.Intn(255) - 127)
		}
		for i := range bi {
			bi[i] = uint8(rng.Intn(256))
		}
		ci := make([]int32, m*n)
		iscratch := make([]uint8, tensor.Int8GemmScratch())

		fNs, iNs := pairedMin(
			func() { tensor.MatMulSerialInto(cf, af, bf, fscratch) },
			func() { tensor.MatMulInt8SerialInto(ci, ai, bi, m, n, k, iscratch) },
			quantReps)
		e := quantEntry{
			Name: fmt.Sprintf("gemm/%dx%dx%d", m, n, k), M: m, N: n, K: k,
			FloatUs: float64(fNs) / 1e3, Int8Us: float64(iNs) / 1e3,
			Speedup: float64(fNs) / float64(iNs),
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-28s float %9.1fµs   int8 %9.1fµs   ×%.2f\n",
			e.Name, e.FloatUs, e.Int8Us, e.Speedup)
	}

	// Engine rows. vgg16 cut=8 is the all-quantizable config the ≥1.5×
	// acceptance bar is committed on; mobilenetv2 cut=1 keeps its residual
	// blocks in float and demonstrates the fallback segments.
	configs := []struct {
		model string
		cut   int
	}{
		{"vgg16", 8},
		{"mobilenetv2", 1},
	}
	train, test := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 64, Test: 128, Size: 32, Noise: 0.2, Seed: 51,
	})
	for _, c := range configs {
		rows, err := perfQuantEngine(c.model, c.cut, train, test)
		if err != nil {
			return err
		}
		entries = append(entries, rows...)
	}

	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(entries), path)
	if baselinePath != "" {
		return diffQuantBaseline(entries, baselinePath)
	}
	return nil
}

// perfQuantEngine compiles one model twice — float and int8 — and returns
// per-stage plus end-to-end paired timings.
func perfQuantEngine(model string, cut int, train, test *dataset.Dataset) ([]quantEntry, error) {
	zoo, err := cnn.Build(model, tensor.NewRNG(52), 10)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(cut, 10)
	cfg.Seed = 53
	cfg.D = 2000
	cfg.FHat = 64
	cfg.BatchSize = 32
	cfg.PackedInference = true
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, err
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)

	ef, err := engine.Compile(p)
	if err != nil {
		return nil, err
	}
	eq, err := engine.Compile(p, engine.Int8, engine.WithCalibration(train.Images))
	if err != nil {
		return nil, err
	}
	covered, total := eq.Int8Coverage()

	// Prediction agreement on held-out images: a sanity signal that the
	// speedup rows compare two engines computing the same function (the
	// hard accuracy gate lives in the engine tests).
	pf, err := ef.Predict(test.Images)
	if err != nil {
		return nil, err
	}
	pq, err := eq.Predict(test.Images)
	if err != nil {
		return nil, err
	}
	same := 0
	for i := range pf {
		if pf[i] == pq[i] {
			same++
		}
	}
	agree := 100 * float64(same) / float64(len(pf))

	// Per-stage paired timing over one engine chunk.
	fRows, err := ef.TimeStages(test.Images, quantReps)
	if err != nil {
		return nil, err
	}
	qRows, err := eq.TimeStages(test.Images, quantReps)
	if err != nil {
		return nil, err
	}
	if len(fRows) != len(qRows) {
		return nil, fmt.Errorf("perf-quant: %s stage count mismatch: float %d, int8 %d", model, len(fRows), len(qRows))
	}
	var entries []quantEntry
	var qFloat, qInt8 float64 // summed extract+manifold — the quantized span
	for i, fr := range fRows {
		qr := qRows[i]
		if fr.Name != qr.Name {
			return nil, fmt.Errorf("perf-quant: %s stage %d name mismatch: %q vs %q", model, i, fr.Name, qr.Name)
		}
		e := quantEntry{
			Name:    fmt.Sprintf("engine/%s/cut%d/%s", model, cut, fr.Name),
			FloatUs: fr.Seconds * 1e6, Int8Us: qr.Seconds * 1e6,
			Speedup: fr.Seconds / qr.Seconds,
		}
		if fr.Name == "extract" || fr.Name == "manifold" {
			qFloat += e.FloatUs
			qInt8 += e.Int8Us
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-34s float %9.1fµs   int8 %9.1fµs   ×%.2f\n",
			e.Name, e.FloatUs, e.Int8Us, e.Speedup)
	}
	if qInt8 > 0 {
		e := quantEntry{
			Name:    fmt.Sprintf("engine/%s/cut%d/extract+manifold", model, cut),
			FloatUs: qFloat, Int8Us: qInt8, Speedup: qFloat / qInt8,
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-34s float %9.1fµs   int8 %9.1fµs   ×%.2f\n",
			e.Name, e.FloatUs, e.Int8Us, e.Speedup)
	}

	// End-to-end chunk prediction, including the shared classify tail.
	n := ef.ChunkSize()
	if n > test.Len() {
		n = test.Len()
	}
	sample := test.Images.Len() / test.Len()
	imgs := tensor.FromSlice(test.Images.Data[:n*sample], n, test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
	preds := make([]int, n)
	fNs, iNs := pairedMin(
		func() {
			if err := ef.PredictInto(imgs, preds); err != nil {
				panic(err)
			}
		},
		func() {
			if err := eq.PredictInto(imgs, preds); err != nil {
				panic(err)
			}
		},
		quantReps)
	e2e := quantEntry{
		Name:    fmt.Sprintf("engine/%s/cut%d/e2e", model, cut),
		FloatUs: float64(fNs) / 1e3, Int8Us: float64(iNs) / 1e3,
		Speedup: float64(fNs) / float64(iNs),
		Covered: covered, Total: total, Agree: agree,
	}
	entries = append(entries, e2e)
	fmt.Fprintf(os.Stderr, "%-34s float %9.1fµs   int8 %9.1fµs   ×%.2f  (int8 layers %d/%d, agree %.1f%%)\n",
		e2e.Name, e2e.FloatUs, e2e.Int8Us, e2e.Speedup, covered, total, agree)
	return entries, nil
}

// diffQuantBaseline prints per-row speedup ratios of the fresh run against
// the committed BENCH_PR5.json, mirroring diffServeBaseline.
func diffQuantBaseline(entries []quantEntry, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf-quant baseline: %w", err)
	}
	var base []quantEntry
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perf-quant baseline: %w", err)
	}
	byName := make(map[string]quantEntry, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	fmt.Fprintf(os.Stderr, "\nvs %s:\n", baselinePath)
	worst := math.Inf(1)
	for _, e := range entries {
		b, ok := byName[e.Name]
		if !ok || b.Int8Us <= 0 {
			fmt.Fprintf(os.Stderr, "%-34s (no baseline row)\n", e.Name)
			continue
		}
		ratio := b.Int8Us / e.Int8Us // >1: fresh int8 path is faster than committed
		if ratio < worst {
			worst = ratio
		}
		fmt.Fprintf(os.Stderr, "%-34s int8 %9.1fµs vs %9.1fµs  ratio %.2f\n",
			e.Name, e.Int8Us, b.Int8Us, ratio)
	}
	if !math.IsInf(worst, 1) {
		fmt.Fprintf(os.Stderr, "worst int8 ratio vs baseline: %.2f (>1 means faster than committed)\n", worst)
	}
	return nil
}
