package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// latEntry is one row of BENCH_PR9.json: the batch-1 Engine.Predict latency
// distribution of one tail mode (or one stage's share of it). BaseP50Us /
// BaseP99Us carry the committed before-numbers when a baseline file is given,
// so the row documents the before/after pair the low-latency datapath PR is
// judged on.
type latEntry struct {
	Name       string  `json:"name"`
	P50Us      float64 `json:"p50_us,omitempty"`
	P99Us      float64 `json:"p99_us,omitempty"`
	BaseP50Us  float64 `json:"base_p50_us,omitempty"`
	BaseP99Us  float64 `json:"base_p99_us,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"` // base p50 / fresh p50
	AgreeExact bool    `json:"agree_exact,omitempty"`
}

const (
	latWarmup = 24
	latReps   = 400
	latStage  = 48 // TimeStages reps (min-of, per stage)
)

// runPerfLatency measures single-request (batch-1) Engine.Predict latency on
// the committed serving config (the BENCH_PR6 shapes: vgg16 cut 8, D=3000),
// float and packed kernels, across the fused / staged / remat tail modes,
// plus each mode's per-stage split. This is the p50/p99 a single user sees
// ahead of any micro-batching; the Batcher and Router amortize throughput,
// but nothing amortizes the first request's unfused extract path.
func runPerfLatency(path, baselinePath string) error {
	configs := []struct {
		model  string
		cut    int
		packed bool
	}{
		{"vgg16", 8, false},
		{"vgg16", 8, true},
	}
	train, test := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 64, Test: 128, Size: 32, Noise: 0.2, Seed: 71,
	})
	var entries []latEntry
	for _, c := range configs {
		rows, err := perfLatencyEngine(c.model, c.cut, c.packed, train, test)
		if err != nil {
			return err
		}
		entries = append(entries, rows...)
	}
	if baselinePath != "" {
		if err := embedLatencyBaseline(entries, baselinePath); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(entries), path)
	return nil
}

func perfLatencyEngine(model string, cut int, packed bool, train, test *dataset.Dataset) ([]latEntry, error) {
	p, err := benchPipeline(model, cut, packed, train)
	if err != nil {
		return nil, err
	}

	modes := []struct {
		name string
		opts []engine.Option
	}{
		{"fused", nil},
		{"staged", []engine.Option{engine.WithStagedTail()}},
		{"remat", []engine.Option{engine.WithRemat()}},
	}
	kernel := "float"
	if packed {
		kernel = "packed"
	}

	// Agreement: every mode must compute the same function before its
	// latency counts (the engine tests pin this bit-exactly; this is the
	// same-run sanity signal on the benchmarked build).
	var ref []int
	engines := make([]*engine.Engine, len(modes))
	for mi, m := range modes {
		e, err := engine.Compile(p, m.opts...)
		if err != nil {
			return nil, err
		}
		engines[mi] = e
		preds, err := e.Predict(test.Images)
		if err != nil {
			return nil, err
		}
		if ref == nil {
			ref = preds
		} else {
			for i := range preds {
				if preds[i] != ref[i] {
					return nil, fmt.Errorf("perf-latency: %s/%s disagrees with %s at sample %d",
						m.name, kernel, modes[0].name, i)
				}
			}
		}
	}

	sample := test.Images.Len() / test.Len()
	var entries []latEntry
	for mi, m := range modes {
		e := engines[mi]
		img := tensor.FromSlice(test.Images.Data[:sample], 1,
			test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
		preds := make([]int, 1)
		lats := make([]float64, 0, latReps)
		for r := 0; r < latWarmup+latReps; r++ {
			// Rotate through the test set so the measurement is not one
			// image's cache residency.
			i := r % test.Len()
			img.Data = test.Images.Data[i*sample : (i+1)*sample]
			t0 := time.Now()
			if err := e.PredictInto(img, preds); err != nil {
				return nil, err
			}
			if r >= latWarmup {
				lats = append(lats, float64(time.Since(t0).Nanoseconds())/1e3)
			}
		}
		sort.Float64s(lats)
		en := latEntry{
			Name:       fmt.Sprintf("latency/%s/cut%d/%s/%s/batch1", model, cut, kernel, m.name),
			P50Us:      lats[len(lats)/2],
			P99Us:      lats[len(lats)*99/100],
			AgreeExact: true,
		}
		entries = append(entries, en)
		fmt.Fprintf(os.Stderr, "%-44s p50 %9.1fµs   p99 %9.1fµs\n", en.Name, en.P50Us, en.P99Us)

		rows, err := e.TimeStages(img, latStage)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			se := latEntry{
				Name:  fmt.Sprintf("latency/%s/cut%d/%s/%s/stage/%s", model, cut, kernel, m.name, r.Name),
				P50Us: r.Seconds * 1e6,
			}
			entries = append(entries, se)
			fmt.Fprintf(os.Stderr, "%-60s %9.1fµs\n", "  "+se.Name, se.P50Us)
		}
	}
	return entries, nil
}

// embedLatencyBaseline copies the baseline file's p50/p99 into matching rows
// (the before-numbers the committed JSON documents) and prints the ratios.
func embedLatencyBaseline(entries []latEntry, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf-latency baseline: %w", err)
	}
	var base []latEntry
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perf-latency baseline: %w", err)
	}
	byName := make(map[string]latEntry, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	fmt.Fprintf(os.Stderr, "\nvs %s:\n", baselinePath)
	worst := math.Inf(1)
	for i := range entries {
		b, ok := byName[entries[i].Name]
		if !ok || b.P50Us <= 0 {
			continue
		}
		entries[i].BaseP50Us = b.P50Us
		entries[i].BaseP99Us = b.P99Us
		entries[i].Speedup = b.P50Us / entries[i].P50Us
		if entries[i].P99Us > 0 && entries[i].Speedup < worst {
			worst = entries[i].Speedup
		}
		fmt.Fprintf(os.Stderr, "%-44s p50 %9.1fµs vs %9.1fµs  ×%.2f\n",
			entries[i].Name, entries[i].P50Us, b.P50Us, entries[i].Speedup)
	}
	if !math.IsInf(worst, 1) {
		fmt.Fprintf(os.Stderr, "worst end-to-end p50 speedup vs baseline: ×%.2f\n", worst)
	}
	return nil
}
