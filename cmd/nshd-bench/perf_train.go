package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"nshd/internal/hdlearn"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// pairedMin interleaves two operations op-by-op and returns each one's
// minimum over reps rounds — the same drift-robust scheme perfServing uses:
// paired ops sample the same machine state, and the min estimates the
// uncontended cost of each path.
func pairedMin(a, b func(), reps int) (aNs, bNs int64) {
	aNs, bNs = int64(1)<<62, int64(1)<<62
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		a()
		if d := time.Since(t0).Nanoseconds(); d < aNs {
			aNs = d
		}
		t1 := time.Now()
		b()
		if d := time.Since(t1).Nanoseconds(); d < bNs {
			bNs = d
		}
	}
	return aNs, bNs
}

// perfTraining benchmarks the training path: the GEMM-ified Conv2D backward
// against the seed scalar kernel (kept as BackwardReference for exactly this
// same-run comparison), a full CNN training step, and a MASS retraining epoch
// per-sample vs batched.
func perfTraining(addRes func(name string, flops, bytes int64, res testing.BenchmarkResult)) error {
	rng := tensor.NewRNG(31)

	// Conv2D backward: seed per-element Dot loops vs GEMM-ified rewrite.
	{
		const n, inC, outC, k, hw = 32, 16, 32, 3, 16
		conv := nn.NewConv2D(rng, inC, outC, k, 1, 1, true)
		x := tensor.New(n, inC, hw, hw)
		rng.FillNormal(x, 0, 1)
		y := conv.Forward(x, true)
		grad := tensor.New(y.Shape...)
		rng.FillNormal(grad, 0, 1)
		seedOp := func() {
			conv.Weight.ZeroGrad()
			conv.Bias.ZeroGrad()
			conv.BackwardReference(grad)
		}
		gemmOp := func() {
			conv.Weight.ZeroGrad()
			conv.Bias.ZeroGrad()
			conv.Backward(grad)
		}
		seedNs, gemmNs := pairedMin(seedOp, gemmOp, 12)
		// Two GEMM-shaped products per sample: dW += g@colsᵀ and dcols = Wᵀ@g.
		outHW := y.Shape[2] * y.Shape[3]
		flops := int64(4 * n * outC * inC * k * k * outHW)
		addRes("train/conv_backward/seed", flops, 0, benchResult(seedNs, countAllocs(seedOp)))
		addRes("train/conv_backward/gemm", flops, 0, benchResult(gemmNs, countAllocs(gemmOp)))
		fmt.Fprintf(os.Stderr, "%-40s %12.2fx\n", "train/conv_backward/speedup",
			float64(seedNs)/float64(gemmNs))
	}

	// Full CNN training step (forward + loss + backward + SGD) on a small
	// conv-bn-relu-pool-linear stack — the end-to-end cost Trainer.Fit pays
	// per minibatch.
	{
		const n = 32
		model := nn.NewSequential("bench-step",
			nn.NewConv2D(rng, 3, 16, 3, 1, 1, true),
			nn.NewBatchNorm2D(16),
			nn.NewReLU(),
			nn.NewMaxPool2D(2),
			nn.NewConv2D(rng, 16, 32, 3, 1, 1, true),
			nn.NewReLU(),
			nn.NewMaxPool2D(2),
			nn.NewFlatten(),
			nn.NewLinear(rng, 32*8*8, 10, true),
		)
		x := tensor.New(n, 3, 32, 32)
		rng.FillNormal(x, 0, 1)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i % 10
		}
		opt := nn.NewSGD(0.05, 0.9, 0)
		stepOp := func() {
			model.ZeroGrad()
			logits := model.Forward(x, true)
			_, g := nn.CrossEntropy(logits, labels)
			model.Backward(g)
			opt.Step(model.Params())
		}
		best := int64(1) << 62
		for r := 0; r < 8; r++ {
			t0 := time.Now()
			stepOp()
			if d := time.Since(t0).Nanoseconds(); d < best {
				best = d
			}
		}
		addRes("train/cnn_step/b32_cifar_shape", 0, int64(x.Len()*4), benchResult(best, countAllocs(stepOp)))
	}

	// MASS retraining epoch at paper scale (K=10, D=3000, N=512): per-sample
	// similarity + bundling vs one GEMM per batch + rank-B update. Each rep
	// retrains a clone so both paths always start from the same model.
	{
		const k, d, n = 10, 3000, 512
		base := hdlearn.NewModel(k, d)
		rng.FillNormal(base.M, 0, 1)
		hvs := tensor.New(n, d)
		rng.FillBipolar(hvs)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i % k
		}
		cfg := hdlearn.MASSConfig{Epochs: 1, LR: 0.05}
		bcfg := cfg
		bcfg.Batch = 64
		perSampleOp := func() { base.Clone().TrainMASS(hvs, labels, cfg, nil) }
		batchedOp := func() { base.Clone().TrainMASSBatch(hvs, labels, bcfg, nil) }
		perNs, batchNs := pairedMin(perSampleOp, batchedOp, 12)
		flops := int64(2 * 2 * k * d * n) // similarity + update per sample
		addRes("train/mass_epoch/persample", flops, 0, benchResult(perNs, countAllocs(perSampleOp)))
		addRes("train/mass_epoch/batched", flops, 0, benchResult(batchNs, countAllocs(batchedOp)))
		fmt.Fprintf(os.Stderr, "%-40s %12.2fx\n", "train/mass_epoch/speedup",
			float64(perNs)/float64(batchNs))
	}
	return nil
}

// runPerfTrain runs only the training-path benchmarks, writes them as JSON,
// and — when baseline names an existing report — prints a per-row comparison
// against the matching rows of that baseline (make bench-train).
func runPerfTrain(path, baseline string) error {
	var entries []perfEntry
	addRes := func(name string, flops, bytes int64, res testing.BenchmarkResult) {
		ns := float64(res.NsPerOp())
		e := perfEntry{Name: name, NsPerOp: ns, AllocsPerOp: res.AllocsPerOp()}
		if bytes > 0 && ns > 0 {
			e.MBPerSec = float64(bytes) / ns * 1e3
		}
		if flops > 0 && ns > 0 {
			e.GFlops = float64(flops) / ns
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op\n", name, ns)
	}
	if err := perfTraining(addRes); err != nil {
		return err
	}
	if baseline != "" {
		if err := diffPerf(baseline, entries); err != nil {
			return err
		}
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// diffPerf prints new-vs-baseline deltas for every row present in both
// reports.
func diffPerf(baselinePath string, entries []perfEntry) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf baseline: %w", err)
	}
	var base []perfEntry
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perf baseline %s: %w", baselinePath, err)
	}
	byName := make(map[string]perfEntry, len(base))
	for _, e := range base {
		byName[e.Name] = e
	}
	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "baseline ns", "current ns", "delta")
	for _, e := range entries {
		b, ok := byName[e.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("%-40s %14s %14.0f %8s\n", e.Name, "-", e.NsPerOp, "new")
			continue
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%%\n", e.Name, b.NsPerOp, e.NsPerOp,
			100*(e.NsPerOp-b.NsPerOp)/b.NsPerOp)
	}
	return nil
}
