package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/serve"
	"nshd/internal/tensor"
)

// serveEntry is one load-generator row of BENCH_PR4.json.
type serveEntry struct {
	Name        string  `json:"name"`
	D           int     `json:"d"`
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	QPS         float64 `json:"qps"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	MeanBatch   float64 `json:"mean_batch,omitempty"`
	MaxDelayUs  int64   `json:"max_delay_us,omitempty"`
	OfferedQPS  float64 `json:"offered_qps,omitempty"`
}

// serveRunSecs is how long each load-generator configuration runs. Long
// enough that hundreds of batches amortize timer noise, short enough that the
// whole matrix stays under a minute.
const serveRunSecs = 1.2

// runPerfServe measures the serving front end: closed-loop clients at
// concurrency 1/8/64 issuing single-sample predictions through the
// micro-batching Batcher vs directly through per-request Engine.Predict, plus
// one open-loop (fixed offered rate) row showing latency when the server is
// not saturated. Rows are written as JSON to path; when baselinePath is
// non-empty, deltas against that committed baseline are printed.
//
// Config: mobilenetv2 cut=1 with the packed classifier, D ∈ {3000, 10000}
// (the span of the paper's Fig. 10 dimension sweep). At cut=1 the projection
// GEMM dominates end-to-end cost, which is exactly the regime micro-batching
// exists for: a single-sample call repacks the [F̂×D] projection B-panel
// every call, a 64-sample flush repays it once.
func runPerfServe(path, baselinePath string) error {
	var entries []serveEntry

	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 128, Test: 64, Size: 32, Noise: 0.2, Seed: 21,
	})
	zoo, err := cnn.Build("mobilenetv2", tensor.NewRNG(22), 10)
	if err != nil {
		return err
	}
	sampleLen := train.Images.Len() / train.Len()
	sampleAt := func(i int) []float32 {
		return train.Images.Data[i*sampleLen : (i+1)*sampleLen]
	}

	for _, d := range []int{3000, 10000} {
		cfg := core.DefaultConfig(1, 10)
		cfg.Seed = 23
		cfg.D = d
		cfg.BatchSize = 64 // engine chunk = batcher MaxBatch
		cfg.PackedInference = true
		p, err := core.New(zoo, cfg)
		if err != nil {
			return err
		}
		feats := p.ExtractFeatures(train.Images)
		_, _, signed := p.Symbolize(feats, false)
		p.HD.InitBundle(signed, train.Labels)

		e, err := engine.Compile(p)
		if err != nil {
			return err
		}
		const maxDelay = time.Millisecond
		b, err := serve.New(e, serve.Options{MaxBatch: 64, MaxDelay: maxDelay, QueueCap: 256})
		if err != nil {
			return err
		}
		meanBatch := batchMeter(b)

		// Parity check before timing: the batched path must agree with the
		// engine sample-for-sample or the comparison is meaningless.
		direct, err := e.Predict(train.Images)
		if err != nil {
			return err
		}
		for i := 0; i < train.Len(); i++ {
			got, err := b.Predict(context.Background(), sampleAt(i))
			if err != nil {
				return err
			}
			if got != direct[i] {
				return fmt.Errorf("perf-serve: parity failure at sample %d: batched %d, engine %d", i, got, direct[i])
			}
		}
		meanBatch() // discard the parity-check traffic from the meter

		for _, conc := range []int{1, 8, 64} {
			naive := closedLoop(conc, func(w int) error {
				img := tensor.FromSlice(sampleAt(w%train.Len()), 1, 3, 32, 32)
				_, err := e.Predict(img)
				return err
			})
			naive.Name = fmt.Sprintf("serve/closed/naive/D%d/c%d", d, conc)
			naive.D = d
			entries = append(entries, naive)

			batched := closedLoop(conc, func(w int) error {
				_, err := b.Predict(context.Background(), sampleAt(w%train.Len()))
				return err
			})
			batched.Name = fmt.Sprintf("serve/closed/batched/D%d/c%d", d, conc)
			batched.D = d
			batched.MaxDelayUs = maxDelay.Microseconds()
			batched.MeanBatch = meanBatch()
			entries = append(entries, batched)

			fmt.Fprintf(os.Stderr, "%-34s %8.0f qps   p50 %7.0fµs  p99 %7.0fµs\n",
				naive.Name, naive.QPS, naive.P50Us, naive.P99Us)
			fmt.Fprintf(os.Stderr, "%-34s %8.0f qps   p50 %7.0fµs  p99 %7.0fµs  (×%.2f, mean batch %.1f)\n",
				batched.Name, batched.QPS, batched.P50Us, batched.P99Us,
				batched.QPS/naive.QPS, batched.MeanBatch)
		}

		// Open-loop: a fixed offered rate well below capacity. Queue delay is
		// then bounded by MaxDelay plus at most one in-flight batch, so the
		// recorded p50/p99 show the latency a non-saturating client sees.
		last := entries[len(entries)-1] // batched c=64 row for this D
		open := openLoop(last.QPS*0.25, func(w int) error {
			_, err := b.Predict(context.Background(), sampleAt(w%train.Len()))
			return err
		})
		open.Name = fmt.Sprintf("serve/open/batched/D%d", d)
		open.D = d
		open.MaxDelayUs = maxDelay.Microseconds()
		open.MeanBatch = meanBatch()
		entries = append(entries, open)
		fmt.Fprintf(os.Stderr, "%-34s %8.0f qps   p50 %7.0fµs  p99 %7.0fµs  (offered %.0f)\n",
			open.Name, open.QPS, open.P50Us, open.P99Us, open.OfferedQPS)

		b.Close()
	}

	// Headline check: the acceptance bar is ≥3× batched vs naive at c=64.
	byName := map[string]serveEntry{}
	for _, en := range entries {
		byName[en.Name] = en
	}
	for _, d := range []int{3000, 10000} {
		n := byName[fmt.Sprintf("serve/closed/naive/D%d/c64", d)]
		bt := byName[fmt.Sprintf("serve/closed/batched/D%d/c64", d)]
		fmt.Fprintf(os.Stderr, "D=%d c=64 speedup: %.2fx (batched %.0f qps vs naive %.0f qps)\n",
			d, bt.QPS/n.QPS, bt.QPS, n.QPS)
	}

	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(entries), path)

	if baselinePath != "" {
		return diffServeBaseline(entries, baselinePath)
	}
	return nil
}

// closedLoop runs conc workers that each issue requests back-to-back for
// serveRunSecs and reports aggregate throughput plus exact latency quantiles
// from the full per-request sample set.
func closedLoop(conc int, fn func(worker int) error) serveEntry {
	lats := make([][]float64, conc)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(time.Duration(serveRunSecs * float64(time.Second)))
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if err := fn(w); err != nil {
					panic(err) // load generator bug, not a measurement
				}
				lats[w] = append(lats[w], float64(time.Since(t0).Microseconds()))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	all := flatten(lats)
	return serveEntry{
		Concurrency: conc,
		Requests:    int64(len(all)),
		QPS:         float64(len(all)) / elapsed,
		P50Us:       quantileUs(all, 0.50),
		P99Us:       quantileUs(all, 0.99),
	}
}

// openLoop offers requests at a fixed rate (one goroutine per request, fired
// off a ticker) so recorded latency reflects server-side queueing rather than
// client-side pacing.
func openLoop(rate float64, fn func(worker int) error) serveEntry {
	if rate < 50 {
		rate = 50
	}
	interval := time.Duration(float64(time.Second) / rate)
	n := int(serveRunSecs * rate)
	lats := make([][]float64, n)
	var wg sync.WaitGroup
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < n; i++ {
		<-tick.C
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			if err := fn(i); err != nil {
				panic(err)
			}
			lats[i] = []float64{float64(time.Since(t0).Microseconds())}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	all := flatten(lats)
	return serveEntry{
		Concurrency: 0, // open loop: unbounded client concurrency
		Requests:    int64(len(all)),
		QPS:         float64(len(all)) / elapsed,
		OfferedQPS:  rate,
		P50Us:       quantileUs(all, 0.50),
		P99Us:       quantileUs(all, 0.99),
	}
}

func flatten(lats [][]float64) []float64 {
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	return all
}

// quantileUs reads an exact quantile from sorted per-request latencies.
func quantileUs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// batchMeter reports the mean flush size since its previous call by
// differencing one batcher's cumulative counters.
func batchMeter(b *serve.Batcher) func() float64 {
	var lastServed, lastBatches int64
	return func() float64 {
		st := b.Stats()
		served, batches := st.Served-lastServed, st.Batches-lastBatches
		lastServed, lastBatches = st.Served, st.Batches
		if batches == 0 {
			return 0
		}
		return float64(served) / float64(batches)
	}
}

// diffServeBaseline prints current-vs-committed throughput ratios so
// `make bench-serve` can flag regressions at a glance.
func diffServeBaseline(entries []serveEntry, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base []serveEntry
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	byName := map[string]serveEntry{}
	for _, e := range base {
		byName[e.Name] = e
	}
	fmt.Fprintf(os.Stderr, "\nvs baseline %s:\n", baselinePath)
	for _, e := range entries {
		b, ok := byName[e.Name]
		if !ok || b.QPS <= 0 {
			fmt.Fprintf(os.Stderr, "%-34s (no baseline row)\n", e.Name)
			continue
		}
		fmt.Fprintf(os.Stderr, "%-34s qps %8.0f vs %8.0f  (%+.1f%%)\n",
			e.Name, e.QPS, b.QPS, 100*(e.QPS-b.QPS)/b.QPS)
	}
	return nil
}
