// Command nshd-bench regenerates the paper's tables and figures from this
// repository's implementation.
//
// Usage:
//
//	nshd-bench -exp table1,fig4,fig5,fig6,table2          # analytic (fast)
//	nshd-bench -exp fig7 -cache .cache                    # trained (slow first run)
//	nshd-bench -exp all -preset full -cache .cache
//
// Experiments: table1 fig4 fig5 fig6 table2 fig7 fig8 fig9 fig10 fig11
// ablation-retrain ablation-ste vanilla-claim; "analytic" and "all" expand
// to groups.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nshd/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "analytic", "comma-separated experiment ids, or 'analytic'/'trained'/'all'")
		preset    = flag.String("preset", "quick", "environment preset: quick or full")
		cacheDir  = flag.String("cache", "", "teacher snapshot cache directory ('' disables)")
		models    = flag.String("models", "", "override comma-separated zoo models")
		trainN    = flag.Int("train", 0, "override 10-class training samples")
		testN     = flag.Int("test", 0, "override 10-class test samples")
		hdEpochs  = flag.Int("hd-epochs", 0, "override HD retraining epochs")
		preEpochs = flag.Int("pretrain-epochs", 0, "override teacher pretraining epochs")
		dim       = flag.Int("d", 0, "override hypervector dimension")
		seed      = flag.Int64("seed", 0, "override seed")
		verbose   = flag.Bool("v", false, "log progress to stderr")
		gridModel = flag.String("fig9-model", "effnetb7", "model for the fig9 grid")
		gridLayer = flag.Int("fig9-layer", 7, "cut layer for the fig9 grid")
		f10Model  = flag.String("fig10-model", "effnetb0", "model for the fig10 tradeoff")
		f11Model  = flag.String("fig11-model", "effnetb0", "model for the fig11 t-SNE")
		f11Layer  = flag.Int("fig11-layer", 7, "cut layer for the fig11 t-SNE")
		svgDir    = flag.String("svg", "", "also write figure SVGs into this directory")
		perfOut   = flag.String("perf", "", "run compute-kernel microbenchmarks, write JSON to this file, and exit")
		perfTrain = flag.String("perf-train", "", "run only the training-path benchmarks, write JSON to this file, and exit")
		perfBase  = flag.String("perf-baseline", "", "with -perf-train: print deltas against this committed baseline JSON")
		perfServe = flag.String("perf-serve", "", "run the serving load generator, write JSON to this file, and exit")
		serveBase = flag.String("perf-serve-baseline", "", "with -perf-serve: print deltas against this committed baseline JSON")
		perfQuant = flag.String("perf-quant", "", "run the int8-vs-float engine benchmarks, write JSON to this file, and exit")
		quantBase = flag.String("perf-quant-baseline", "", "with -perf-quant: print deltas against this committed baseline JSON")
		perfTail  = flag.String("perf-tail", "", "run the staged-vs-fused serving-tail benchmarks, write JSON to this file, and exit")
		tailBase  = flag.String("perf-tail-baseline", "", "with -perf-tail: print deltas against this committed baseline JSON")
		perfCmp   = flag.String("perf-compress", "", "run the post-training compression tradeoff benchmarks, write JSON to this file, and exit")
		cmpBase   = flag.String("perf-compress-baseline", "", "with -perf-compress: print deltas against this committed baseline JSON")
		perfLat   = flag.String("perf-latency", "", "run the batch-1 serving-latency benchmarks, write JSON to this file, and exit")
		latBase   = flag.String("perf-latency-baseline", "", "with -perf-latency: embed and print deltas against this baseline JSON")
		perfFuse  = flag.String("perf-fuse", "", "run the fused-vs-unfused extraction benchmarks, write JSON to this file, and exit")
		fuseBase  = flag.String("perf-fuse-baseline", "", "with -perf-fuse: embed and print deltas against this baseline JSON")
		perfRtr   = flag.String("perf-router", "", "run the sharded-router scaling benchmarks, write JSON to this file, and exit")
		rtrBase   = flag.String("perf-router-baseline", "", "with -perf-router: print deltas against this committed baseline JSON")
		rtrWorker = flag.String("router-worker", "", "internal: run as a perf-router shard worker (\"i/S\")")
		rtrDuty   = flag.Float64("router-duty", 0.22, "internal: shard worker CPU duty-cycle cap")
	)
	flag.Parse()

	if *rtrWorker != "" {
		if err := runRouterWorker(*rtrWorker, *rtrDuty); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfRtr != "" {
		if err := runPerfRouter(*perfRtr, *rtrBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfOut != "" {
		if err := runPerf(*perfOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfTrain != "" {
		if err := runPerfTrain(*perfTrain, *perfBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfServe != "" {
		if err := runPerfServe(*perfServe, *serveBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfQuant != "" {
		if err := runPerfQuant(*perfQuant, *quantBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfCmp != "" {
		if err := runPerfCompress(*perfCmp, *cmpBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfLat != "" {
		if err := runPerfLatency(*perfLat, *latBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfFuse != "" {
		if err := runPerfFuse(*perfFuse, *fuseBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfTail != "" {
		if err := runPerfTail(*perfTail, *tailBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var env experiments.Env
	switch *preset {
	case "quick":
		env = experiments.Quick()
	case "full":
		env = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}
	env.CacheDir = *cacheDir
	if *models != "" {
		env.Models = strings.Split(*models, ",")
	}
	if *trainN > 0 {
		env.TrainN = *trainN
	}
	if *testN > 0 {
		env.TestN = *testN
	}
	if *hdEpochs > 0 {
		env.HDEpochs = *hdEpochs
	}
	if *preEpochs > 0 {
		env.PretrainEpochs = *preEpochs
	}
	if *dim > 0 {
		env.D = *dim
	}
	if *seed != 0 {
		env.Seed = *seed
	}
	if *verbose {
		env.Log = os.Stderr
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	ids := expandIDs(*expFlag)
	s := experiments.NewSession(env)
	for _, id := range ids {
		if err := runOne(s, id, *gridModel, *gridLayer, *f10Model, *f11Model, *f11Layer, *svgDir); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func expandIDs(spec string) []string {
	analytic := []string{"table1", "fig4", "fig5", "fig6", "table2"}
	trained := []string{"fig7", "fig8", "fig9", "fig10", "fig11", "ablation-retrain", "ablation-ste"}
	var ids []string
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(tok) {
		case "analytic":
			ids = append(ids, analytic...)
		case "trained":
			ids = append(ids, trained...)
		case "all":
			ids = append(ids, analytic...)
			ids = append(ids, trained...)
		case "":
		default:
			ids = append(ids, strings.TrimSpace(tok))
		}
	}
	return ids
}

func writeSVG(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

func runOne(s *experiments.Session, id, gridModel string, gridLayer int, f10Model, f11Model string, f11Layer int, svgDir string) error {
	switch id {
	case "table1":
		_, t := s.Table1()
		t.Render(os.Stdout)
	case "fig4":
		rows, t, err := s.Fig4()
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		if err := writeSVG(svgDir, "fig4.svg", experiments.Fig4SVG(rows)); err != nil {
			return err
		}
	case "fig5":
		rows, t, err := s.Fig5()
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		if err := writeSVG(svgDir, "fig5.svg", experiments.Fig5SVG(rows)); err != nil {
			return err
		}
	case "fig6":
		rows, t, err := s.Fig6()
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		if err := writeSVG(svgDir, "fig6.svg", experiments.Fig6SVG(rows)); err != nil {
			return err
		}
	case "table2":
		_, t, err := s.Table2()
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "fig7":
		rows, t, err := s.Fig7()
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		if err := writeSVG(svgDir, "fig7.svg", experiments.Fig7SVG(rows)); err != nil {
			return err
		}
	case "fig8":
		rows, t, err := s.Fig8()
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		if err := writeSVG(svgDir, "fig8.svg", experiments.Fig8SVG(rows)); err != nil {
			return err
		}
	case "fig9":
		_, t, err := s.Fig9(gridModel, gridLayer)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "fig10":
		rows, t, err := s.Fig10(f10Model)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		if err := writeSVG(svgDir, "fig10.svg", experiments.Fig10SVG(rows)); err != nil {
			return err
		}
	case "fig11":
		res, t, err := s.Fig11(f11Model, f11Layer)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		before, after := experiments.Fig11SVG(res)
		if err := writeSVG(svgDir, "fig11a.svg", before); err != nil {
			return err
		}
		if err := writeSVG(svgDir, "fig11b.svg", after); err != nil {
			return err
		}
	case "ablation-retrain":
		_, t, err := s.AblationRetrain("effnetb0", 7)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "ablation-ste":
		_, t, err := s.AblationSTE("effnetb0", 7)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "robustness":
		_, t, err := s.Robustness("effnetb0", 7)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	case "vanilla-claim":
		t, err := s.VanillaClaim()
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment (have: table1 fig4 fig5 fig6 table2 fig7 fig8 fig9 fig10 fig11 ablation-retrain ablation-ste robustness vanilla-claim)")
	}
	return nil
}
