package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"syscall"
	"time"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/nn"
	"nshd/internal/serve"
	"nshd/internal/tensor"
)

// routerEntry is one row of BENCH_PR7.json.
type routerEntry struct {
	Name        string  `json:"name"`
	D           int     `json:"d"`
	Shards      int     `json:"shards"`
	Concurrency int     `json:"concurrency"`
	Batch       int     `json:"batch"`
	Requests    int64   `json:"requests"`
	QPS         float64 `json:"qps"` // samples per second through the router
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Speedup     float64 `json:"speedup_vs_1shard,omitempty"`
	DutyCycle   float64 `json:"worker_duty_cycle"`
	Note        string  `json:"note,omitempty"`
}

// routerDutyCycle is each shard worker's CPU duty-cycle cap. The point of
// the bench is "does adding shard PROCESSES scale when each process has
// fixed host capacity" — on a many-core box that capacity is a core
// (GOMAXPROCS=1); on a small CI box the governor emulates it by
// sleep-injecting so each worker consumes at most this fraction of one CPU.
// S=1 gets one such capped machine, S=4 gets four; the measured ratio is
// then the router's real fan-out/reduce efficiency against an ideal 4×.
const routerDutyCycle = 0.2

// routerBenchD is deliberately huge: dimension sharding splits the HD tail
// (projection + scoring, cost ∝ D) while every shard still runs the full
// feature extractor, so the bench uses a tiny CNN and a large D to make the
// shardable tail dominate per-sample cost — the regime the sharded tier is
// for. (At mobilenetv2-scale CNNs the extractor is ~85% of per-sample cost
// and D-sharding cannot pay; that trade-off is documented in DESIGN.md.)
const routerBenchD = 200_000

const routerBenchSecs = 3.0

// routerBenchPipeline builds the deterministic benchmark model; every shard
// worker process and the parent build the identical pipeline from the same
// seeds, so CompileShard slices one agreed-upon model.
func routerBenchPipeline() (*core.Pipeline, *dataset.Dataset, error) {
	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 64, Test: 16, Size: 16, Noise: 0.2, Seed: 21,
	})
	rng := tensor.NewRNG(22)
	zoo := &cnn.Model{Name: "tinycnn", InShape: []int{3, 16, 16}, Classes: 10}
	zoo.Units = append(zoo.Units,
		cnn.Unit{Index: 0, Label: "conv", Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, 8, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
		cnn.Unit{Index: 1, Label: "conv", Layers: []nn.Layer{
			nn.NewConv2D(rng, 8, 16, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
	)
	zoo.Head = []nn.Layer{nn.NewFlatten(), nn.NewLinear(rng, 16*4*4, 10, true)}
	zoo.Finish()
	cfg := core.DefaultConfig(1, 10)
	cfg.Seed = 23
	cfg.D = routerBenchD
	cfg.BatchSize = 64
	cfg.PackedInference = true
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, nil, err
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	return p, train, nil
}

// dutyGovernor keeps the process's cumulative CPU/wall ratio at or below
// duty by sleeping before request handling. Accounting starts at the first
// throttled request, so model build and engine compile are not billed.
type dutyGovernor struct {
	duty  float64
	once  sync.Once
	start time.Time
	cpu0  time.Duration
}

func processCPU() time.Duration {
	var ru syscall.Rusage
	syscall.Getrusage(syscall.RUSAGE_SELF, &ru)
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

func (g *dutyGovernor) throttle() {
	g.once.Do(func() {
		g.start = time.Now()
		g.cpu0 = processCPU()
	})
	for {
		cpu := processCPU() - g.cpu0
		wall := time.Since(g.start)
		target := time.Duration(float64(cpu) / g.duty)
		if target <= wall {
			return
		}
		d := target - wall
		if d > 50*time.Millisecond {
			d = 50 * time.Millisecond
		}
		time.Sleep(d)
	}
}

// runRouterWorker is the hidden shard-worker mode: the bench binary
// re-executes itself once per shard. The worker builds the shared model,
// freezes its D-slice with the seed-rematerialized tail (each shard
// regenerates only its own projection columns from the common 8-byte seed —
// no shard ever holds the full [F̂×D] matrix), and serves /partial until the
// parent kills it. It prints "LISTENING <url>" once ready.
func runRouterWorker(spec string, duty float64) error {
	runtime.GOMAXPROCS(1)
	var shard, shards int
	if _, err := fmt.Sscanf(spec, "%d/%d", &shard, &shards); err != nil {
		return fmt.Errorf("-router-worker %q: want i/S", spec)
	}
	p, _, err := routerBenchPipeline()
	if err != nil {
		return err
	}
	e, err := engine.CompileShard(p, shard, shards, engine.WithRemat())
	if err != nil {
		return err
	}
	b, err := serve.New(e, serve.Options{MaxBatch: 64, MaxDelay: 200 * time.Microsecond, QueueCap: 256})
	if err != nil {
		return err
	}
	handler := serve.NewServer(b, 30*time.Second).Handler()
	gov := &dutyGovernor{duty: duty}
	throttled := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/partial" || r.URL.Path == "/predict" {
			gov.throttle()
		}
		handler.ServeHTTP(w, r)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("LISTENING http://%s\n", ln.Addr())
	os.Stdout.Sync()
	return (&http.Server{Handler: throttled}).Serve(ln)
}

// spawnRouterWorkers launches S shard-worker processes and waits for their
// addresses.
func spawnRouterWorkers(S int) ([][]string, []*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	addrs := make([][]string, S)
	cmds := make([]*exec.Cmd, S)
	kill := func() {
		for _, c := range cmds {
			if c != nil && c.Process != nil {
				c.Process.Kill()
			}
		}
	}
	for s := 0; s < S; s++ {
		cmd := exec.Command(exe,
			"-router-worker", fmt.Sprintf("%d/%d", s, S),
			"-router-duty", fmt.Sprintf("%g", routerDutyCycle))
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			kill()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			kill()
			return nil, nil, err
		}
		cmds[s] = cmd
		sc := bufio.NewScanner(out)
		got := false
		for sc.Scan() {
			var url string
			if _, err := fmt.Sscanf(sc.Text(), "LISTENING %s", &url); err == nil {
				addrs[s] = []string{url}
				got = true
				break
			}
		}
		if !got {
			kill()
			return nil, nil, fmt.Errorf("shard worker %d/%d exited before listening", s, S)
		}
		// Keep draining stdout in the background so the worker never blocks.
		go func() {
			for sc.Scan() {
			}
		}()
	}
	return addrs, cmds, nil
}

// runPerfRouter measures the sharded serving tier end to end: S shard
// worker PROCESSES (each duty-cycle-capped to emulate a fixed-capacity
// host; see routerDutyCycle) behind an in-process serve.Router, closed-loop
// clients at equal concurrency for every S. Exactness is asserted before
// any timing: the routed predictions must equal the local unsharded
// engine's bit for bit.
func runPerfRouter(path, baselinePath string) error {
	const (
		conc  = 8
		batch = 64
	)
	p, train, err := routerBenchPipeline()
	if err != nil {
		return err
	}
	full, err := engine.Compile(p)
	if err != nil {
		return err
	}
	want, err := full.Predict(train.Images)
	if err != nil {
		return err
	}
	sampleLen := train.Images.Len() / train.Len()
	batchAt := func(i int) []float32 {
		off := (i * batch) % (train.Len() - batch + 1)
		return train.Images.Data[off*sampleLen : (off+batch)*sampleLen]
	}

	var entries []routerEntry
	var base1 float64
	for _, S := range []int{1, 2, 4} {
		fmt.Fprintf(os.Stderr, "spawning %d shard worker(s)...\n", S)
		addrs, cmds, err := spawnRouterWorkers(S)
		if err != nil {
			return err
		}
		r, err := serve.NewRouter(addrs, serve.RouterOptions{
			Timeout:      30 * time.Second,
			PollInterval: 250 * time.Millisecond,
		})
		if err != nil {
			return err
		}

		// Parity gate: routed == unsharded, sample for sample.
		got, err := r.Predict(context.Background(), batchAt(0), batch)
		if err != nil {
			return err
		}
		for i := 0; i < batch; i++ {
			if got[i] != want[i] {
				return fmt.Errorf("perf-router S=%d: parity failure at sample %d: routed %d, engine %d", S, i, got[i], want[i])
			}
		}

		lats := make([][]float64, conc)
		var wg sync.WaitGroup
		start := time.Now()
		deadline := start.Add(time.Duration(routerBenchSecs * float64(time.Second)))
		preds := make([][]int, conc)
		for w := 0; w < conc; w++ {
			preds[w] = make([]int, batch)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; time.Now().Before(deadline); i++ {
					t0 := time.Now()
					if err := r.PredictInto(context.Background(), batchAt(w+i), batch, preds[w]); err != nil {
						panic(err)
					}
					lats[w] = append(lats[w], float64(time.Since(t0).Microseconds()))
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		all := flatten(lats)
		en := routerEntry{
			Name:        fmt.Sprintf("router/closed/S%d/c%d/b%d", S, conc, batch),
			D:           routerBenchD,
			Shards:      S,
			Concurrency: conc,
			Batch:       batch,
			Requests:    int64(len(all)),
			QPS:         float64(len(all)*batch) / elapsed,
			P50Ms:       quantileUs(all, 0.50) / 1e3,
			P99Ms:       quantileUs(all, 0.99) / 1e3,
			DutyCycle:   routerDutyCycle,
			Note:        "shard capacity emulated: each worker process duty-cycle-capped, so the S-axis measures router fan-out/reduce efficiency against ideal linear scaling",
		}
		if S == 1 {
			base1 = en.QPS
		} else if base1 > 0 {
			en.Speedup = en.QPS / base1
		}
		entries = append(entries, en)
		fmt.Fprintf(os.Stderr, "%-28s %8.0f samples/s   p50 %6.1fms  p99 %6.1fms", en.Name, en.QPS, en.P50Ms, en.P99Ms)
		if en.Speedup > 0 {
			fmt.Fprintf(os.Stderr, "  (×%.2f vs S=1)", en.Speedup)
		}
		fmt.Fprintln(os.Stderr)

		r.Close()
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	}

	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(entries), path)

	if baselinePath != "" {
		return diffRouterBaseline(entries, baselinePath)
	}
	return nil
}

// diffRouterBaseline prints current-vs-committed throughput ratios for
// `make bench-router`.
func diffRouterBaseline(entries []routerEntry, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base []routerEntry
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	byName := map[string]routerEntry{}
	for _, e := range base {
		byName[e.Name] = e
	}
	fmt.Fprintf(os.Stderr, "\nvs baseline %s:\n", baselinePath)
	for _, e := range entries {
		b, ok := byName[e.Name]
		if !ok || b.QPS <= 0 {
			fmt.Fprintf(os.Stderr, "%-28s (no baseline row)\n", e.Name)
			continue
		}
		fmt.Fprintf(os.Stderr, "%-28s qps %8.0f vs %8.0f  (%+.1f%%)\n",
			e.Name, e.QPS, b.QPS, 100*(e.QPS-b.QPS)/b.QPS)
	}
	return nil
}
