// Command nshd-info inspects the model zoo: per-model unit indices, the
// feature dimension and inference cost of every possible cut point, and the
// paper's chosen cut layers.
//
//	nshd-info                 # summary of all models
//	nshd-info -model vgg16    # per-layer detail
package main

import (
	"flag"
	"fmt"
	"os"

	"nshd"
)

func main() {
	model := flag.String("model", "", "show per-layer detail for one model")
	classes := flag.Int("classes", 10, "class count (affects head size)")
	flag.Parse()

	if *model != "" {
		if err := detail(*model, *classes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%-12s %8s %12s %12s %s\n", "model", "units", "params", "MACs", "paper cut layers")
	for _, name := range nshd.ModelNames() {
		m, err := nshd.BuildModel(name, 1, *classes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s := m.FullStats()
		fmt.Printf("%-12s %8d %12d %12d %v\n", name, len(m.Units), s.Params, s.MACs, nshd.PaperLayers(name))
	}
}

func detail(name string, classes int) error {
	m, err := nshd.BuildModel(name, 1, classes)
	if err != nil {
		return err
	}
	paper := map[int]bool{}
	for _, l := range nshd.PaperLayers(name) {
		paper[l] = true
	}
	fmt.Printf("%s (input %v, %d classes)\n", name, m.InShape, classes)
	fmt.Printf("%6s  %-26s %10s %12s %12s %6s\n", "index", "unit", "features", "cut params", "cut MACs", "paper")
	for _, u := range m.Units {
		f, err := m.FeatureDim(u.Index)
		if err != nil {
			return err
		}
		cs, err := m.CutStats(u.Index)
		if err != nil {
			return err
		}
		mark := ""
		if paper[u.Index] {
			mark = "*"
		}
		fmt.Printf("%6d  %-26s %10d %12d %12d %6s\n", u.Index, u.Label, f, cs.Params, cs.MACs, mark)
	}
	full := m.FullStats()
	fmt.Printf("%6s  %-26s %10s %12d %12d\n", "", "full model (teacher)", "-", full.Params, full.MACs)
	return nil
}
