// Command nshd-info inspects the model zoo: per-model unit indices, the
// feature dimension and inference cost of every possible cut point, and the
// paper's chosen cut layers.
//
//	nshd-info                       # summary of all models
//	nshd-info -model vgg16          # per-layer detail
//	nshd-info -pipeline model.gob   # serving facts for a trained snapshot
package main

import (
	"flag"
	"fmt"
	"os"

	"nshd"
)

func main() {
	model := flag.String("model", "", "show per-layer detail for one model")
	classes := flag.Int("classes", 10, "class count (affects head size)")
	pipeline := flag.String("pipeline", "", "print serving facts for a trained pipeline snapshot (nshd-train -out)")
	packed := flag.Bool("packed", true, "with -pipeline: compile the packed popcount classifier")
	precision := flag.String("precision", "float32", "with -pipeline: engine precision mode (float32 or int8)")
	remat := flag.Bool("remat", false, "with -pipeline: rematerialize the projection from its seed (O(1) encoder bytes)")
	fuse := flag.String("fuse", "auto", "with -pipeline: extractor fusion mode (auto, on, off)")
	compress := flag.Float64("compress", 0, "with -pipeline: run the post-training compression search with this max accuracy drop (points) and report the chosen plan")
	calib := flag.Int("calib", 128, "with -compress: synthetic calibration sample count")
	flag.Parse()

	if *pipeline != "" {
		if err := servingFacts(*pipeline, *packed, *precision, *remat, *fuse, *compress, *calib); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *model != "" {
		if err := detail(*model, *classes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%-12s %8s %12s %12s %s\n", "model", "units", "params", "MACs", "paper cut layers")
	for _, name := range nshd.ModelNames() {
		m, err := nshd.BuildModel(name, 1, *classes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s := m.FullStats()
		fmt.Printf("%-12s %8d %12d %12d %v\n", name, len(m.Units), s.Params, s.MACs, nshd.PaperLayers(name))
	}
}

// servingFacts compiles a snapshot into a frozen engine and prints what an
// operator needs to deploy it behind nshd-serve: input/batch shape, memory
// per replica, precision mode with quantized-layer coverage, and batcher
// sizing derived from the compiled chunk size.
func servingFacts(path string, packed bool, precision string, remat bool, fuse string, compress float64, calib int) error {
	p, err := nshd.LoadPipeline(path)
	if err != nil {
		return err
	}
	p.Cfg.PackedInference = packed
	var opts []nshd.Option
	switch precision {
	case "float32":
	case "int8":
		// No calibration images at inspection time: the synthetic batch
		// stands in. Layer coverage and footprints are unaffected.
		opts = append(opts, nshd.Int8)
	default:
		return fmt.Errorf("unknown precision %q (have: float32, int8)", precision)
	}
	if remat {
		opts = append(opts, nshd.WithRemat())
	}
	switch fuse {
	case "auto":
	case "on":
		opts = append(opts, nshd.WithFusedExtract())
	case "off":
		opts = append(opts, nshd.WithUnfusedExtract())
	default:
		return fmt.Errorf("unknown fuse mode %q (have: auto, on, off)", fuse)
	}
	eng, err := nshd.Compile(p, opts...)
	if err != nil {
		return err
	}
	kernel := "float32 dot-product"
	if packed {
		kernel = "packed popcount"
	}
	in := eng.InShape()
	fmt.Printf("serving facts for %s\n", path)
	fmt.Printf("  %-22s [C H W] = %v  (%d float32/sample)\n", "input shape", in, eng.SampleLen())
	fmt.Printf("  %-22s [%d %d %d %d]  (engine chunk %d)\n", "expected batch shape",
		eng.ChunkSize(), in[0], in[1], in[2], eng.ChunkSize())
	fmt.Printf("  %-22s D=%d, %d classes\n", "hypervector space", eng.Dim(), eng.Classes())
	fmt.Printf("  %-22s %d (HD model mutation counter)\n", "engine version", p.HD.Version())
	fmt.Printf("  %-22s %s\n", "classifier kernel", kernel)
	fmt.Printf("  %-22s %d bytes resident, per stage:\n", "serving weights", eng.ModelBytes())
	for _, b := range eng.BytesBreakdown() {
		fmt.Printf("  %-22s %12d  %s\n", "", b.Bytes, b.Name)
	}
	fmt.Printf("  %-22s %d bytes/worker\n", "arena footprint", eng.ArenaBytes())
	fmt.Printf("  %-22s %v\n", "stages", eng.Stages())
	// Measured batch-1 stage latency with per-layer / per-fused-block detail:
	// one synthetic zero sample (compute cost is pixel-independent), min of 5
	// repetitions per stage.
	if times, err := eng.TimeStages(nshd.NewTensor(1, in[0], in[1], in[2]), 5); err == nil {
		fmt.Printf("  %-22s batch-1, min of 5 reps:\n", "stage latency")
		for _, st := range times {
			fmt.Printf("  %-22s %10.1fus  %s\n", "", st.Seconds*1e6, st.Name)
			for _, sub := range st.Sub {
				fmt.Printf("  %-22s %10.1fus      %s\n", "", sub.Seconds*1e6, sub.Name)
			}
		}
	}
	fmt.Printf("  %-22s %v\n", "precision", eng.Precision())
	if covered, total := eng.Int8Coverage(); total > 0 {
		fmt.Printf("  %-22s %d/%d quantizable layer groups in int8\n", "int8 coverage", covered, total)
		for _, name := range eng.Int8Layers() {
			fmt.Printf("  %-22s %s\n", "", name)
		}
	}
	fmt.Printf("  %-22s MaxBatch=%d MaxDelay=1ms QueueCap=%d  (nshd-serve defaults)\n",
		"batcher sizing", eng.ChunkSize(), 4*eng.ChunkSize())
	if compress > 0 {
		return compressReport(eng, compress, calib)
	}
	return nil
}

// compressReport runs the post-training compression search against a
// synthetic calibration batch (no labels, so the budget is measured as
// prediction agreement with the uncompressed engine) and prints the chosen
// plan with its per-stage byte ledger.
func compressReport(eng *nshd.Engine, maxDrop float64, calib int) error {
	if calib < 2 {
		return fmt.Errorf("-calib must be at least 2, got %d", calib)
	}
	in := eng.InShape()
	if in[0] != 3 || in[1] != in[2] {
		return fmt.Errorf("-compress needs a square 3-channel input to synthesize calibration data, got %v", in)
	}
	_, cal := nshd.SynthCIFAR(nshd.SynthConfig{
		Classes: eng.Classes(), Train: 1, Test: calib, Size: in[1], Noise: 0.25, Seed: 17,
	})
	ceng, rep, err := eng.Compress(nshd.CompressTarget{Calib: cal.Images, MaxAccuracyDrop: maxDrop})
	if err != nil {
		return err
	}
	fmt.Printf("\ncompression search (budget %.2f pt agreement drop, %d calibration samples)\n", maxDrop, calib)
	fmt.Printf("  %-22s D=%d -> D=%d  (keep %d/%d blocks, ratio %.2f)\n", "dimension pruning",
		rep.OrigD, rep.D, len(rep.KeepBlocks), (rep.OrigD+255)/256, rep.KeepRatio)
	fmt.Printf("  %-22s blocks %v\n", "", rep.KeepBlocks)
	fmt.Printf("  %-22s %s (rank %d)\n", "scorer precision", rep.Precision, rep.Rank)
	fmt.Printf("  %-22s %.2f%% -> %.2f%% agreement (drop %.2f pt, holdout %d, %d candidates)\n",
		"calibration", rep.CalibBefore, rep.CalibAfter, rep.CalibDrop, rep.Holdout, rep.Candidates)
	fmt.Printf("  %-22s %d -> %d bytes (%.2fx smaller)\n", "serving weights",
		rep.BytesBefore, rep.BytesAfter, float64(rep.BytesBefore)/float64(rep.BytesAfter))
	fmt.Printf("  %-22s before:\n", "per stage")
	for _, b := range rep.StagesBefore {
		fmt.Printf("  %-22s %12d  %s\n", "", b.Bytes, b.Name)
	}
	fmt.Printf("  %-22s after:\n", "")
	for _, b := range rep.StagesAfter {
		fmt.Printf("  %-22s %12d  %s\n", "", b.Bytes, b.Name)
	}
	fmt.Printf("  %-22s %v\n", "compressed stages", ceng.Stages())
	return nil
}

func detail(name string, classes int) error {
	m, err := nshd.BuildModel(name, 1, classes)
	if err != nil {
		return err
	}
	paper := map[int]bool{}
	for _, l := range nshd.PaperLayers(name) {
		paper[l] = true
	}
	fmt.Printf("%s (input %v, %d classes)\n", name, m.InShape, classes)
	fmt.Printf("%6s  %-26s %10s %12s %12s %6s\n", "index", "unit", "features", "cut params", "cut MACs", "paper")
	for _, u := range m.Units {
		f, err := m.FeatureDim(u.Index)
		if err != nil {
			return err
		}
		cs, err := m.CutStats(u.Index)
		if err != nil {
			return err
		}
		mark := ""
		if paper[u.Index] {
			mark = "*"
		}
		fmt.Printf("%6d  %-26s %10d %12d %12d %6s\n", u.Index, u.Label, f, cs.Params, cs.MACs, mark)
	}
	full := m.FullStats()
	fmt.Printf("%6s  %-26s %10s %12d %12d\n", "", "full model (teacher)", "-", full.Params, full.MACs)
	return nil
}
