// Package plot is a minimal, dependency-free SVG chart writer used to
// regenerate the paper's figures as graphics: grouped bar charts (Figs. 4-6,
// 8), line charts (Fig. 10) and scatter plots (Fig. 11). It favors
// predictable output over configurability: fixed margins, automatic ranges,
// a small categorical palette.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// palette holds the categorical series colors.
var palette = []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f"}

const (
	width   = 640
	height  = 400
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 70
)

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

type svgBuilder struct {
	b strings.Builder
}

func newSVG(title string) *svgBuilder {
	s := &svgBuilder{}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&s.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&s.b, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n", width/2, esc(title))
	return s
}

func (s *svgBuilder) finish() string {
	s.b.WriteString("</svg>\n")
	return s.b.String()
}

func (s *svgBuilder) rect(x, y, w, h float64, color string) {
	fmt.Fprintf(&s.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, color)
}

func (s *svgBuilder) text(x, y float64, size int, anchor, msg string) {
	fmt.Fprintf(&s.b, `<text x="%.1f" y="%.1f" font-size="%d" text-anchor="%s">%s</text>`+"\n", x, y, size, anchor, esc(msg))
}

func (s *svgBuilder) line(x1, y1, x2, y2 float64, color string, w float64) {
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n", x1, y1, x2, y2, color, w)
}

func (s *svgBuilder) circle(x, y, r float64, color string) {
	fmt.Fprintf(&s.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
}

// axisRange returns a padded [lo, hi] covering the values (always including
// zero for bar charts when asked).
func axisRange(values []float64, includeZero bool) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if includeZero {
		lo = math.Min(lo, 0)
		hi = math.Max(hi, 0)
	}
	if lo == hi {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.08
	return lo - pad, hi + pad
}

// BarGroup is one labelled cluster of bars.
type BarGroup struct {
	Label  string
	Values []float64
}

// GroupedBars renders a grouped bar chart (the Fig. 4/5/6/8 layout):
// groups along the x-axis, one bar per series within each group.
func GroupedBars(title string, series []string, groups []BarGroup, yLabel string) string {
	s := newSVG(title)
	var all []float64
	for _, g := range groups {
		all = append(all, g.Values...)
	}
	lo, hi := axisRange(all, true)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	yOf := func(v float64) float64 {
		return marginT + plotH*(1-(v-lo)/(hi-lo))
	}
	// y axis + gridlines.
	s.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	for i := 0; i <= 4; i++ {
		v := lo + (hi-lo)*float64(i)/4
		y := yOf(v)
		s.line(marginL, y, marginL+plotW, y, "#ddd", 0.5)
		s.text(marginL-6, y+4, 10, "end", fmt.Sprintf("%.3g", v))
	}
	s.text(14, marginT-10, 11, "start", yLabel)
	zeroY := yOf(math.Max(lo, math.Min(0, hi)))

	groupW := plotW / float64(len(groups))
	barW := groupW * 0.8 / float64(len(series))
	for gi, g := range groups {
		gx := marginL + groupW*float64(gi) + groupW*0.1
		for si, v := range g.Values {
			x := gx + barW*float64(si)
			y := yOf(v)
			top, h := y, zeroY-y
			if v < 0 {
				top, h = zeroY, y-zeroY
			}
			s.rect(x, top, barW*0.92, h, palette[si%len(palette)])
		}
		s.text(gx+groupW*0.4, float64(height-marginB)+16, 10, "middle", g.Label)
	}
	// Legend.
	lx := float64(marginL)
	for si, name := range series {
		s.rect(lx, float64(height)-28, 10, 10, palette[si%len(palette)])
		s.text(lx+14, float64(height)-19, 10, "start", name)
		lx += float64(20 + 7*len(name))
	}
	return s.finish()
}

// Series is one named line of a line chart.
type Series struct {
	Name string
	X, Y []float64
}

// Lines renders a multi-series line chart (the Fig. 10 layout).
func Lines(title string, series []Series, xLabel, yLabel string) string {
	s := newSVG(title)
	var xs, ys []float64
	for _, sr := range series {
		xs = append(xs, sr.X...)
		ys = append(ys, sr.Y...)
	}
	xlo, xhi := axisRange(xs, false)
	ylo, yhi := axisRange(ys, false)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	xOf := func(v float64) float64 { return marginL + plotW*(v-xlo)/(xhi-xlo) }
	yOf := func(v float64) float64 { return marginT + plotH*(1-(v-ylo)/(yhi-ylo)) }

	s.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	s.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	for i := 0; i <= 4; i++ {
		v := ylo + (yhi-ylo)*float64(i)/4
		s.text(marginL-6, yOf(v)+4, 10, "end", fmt.Sprintf("%.3g", v))
		s.line(marginL, yOf(v), marginL+plotW, yOf(v), "#ddd", 0.5)
		xv := xlo + (xhi-xlo)*float64(i)/4
		s.text(xOf(xv), marginT+plotH+16, 10, "middle", fmt.Sprintf("%.3g", xv))
	}
	s.text(float64(width)/2, float64(height)-34, 11, "middle", xLabel)
	s.text(14, marginT-10, 11, "start", yLabel)

	for si, sr := range series {
		color := palette[si%len(palette)]
		order := make([]int, len(sr.X))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return sr.X[order[a]] < sr.X[order[b]] })
		for i := 1; i < len(order); i++ {
			a, b := order[i-1], order[i]
			s.line(xOf(sr.X[a]), yOf(sr.Y[a]), xOf(sr.X[b]), yOf(sr.Y[b]), color, 2)
		}
		for _, i := range order {
			s.circle(xOf(sr.X[i]), yOf(sr.Y[i]), 3, color)
		}
		s.text(float64(marginL)+8, marginT+12+float64(14*si), 10, "start", sr.Name)
		s.rect(float64(marginL)-2, marginT+4+float64(14*si), 8, 8, color)
	}
	return s.finish()
}

// Scatter renders labelled 2-D points (the Fig. 11 layout); color follows
// the integer label.
func Scatter(title string, x, y []float64, labels []int) string {
	s := newSVG(title)
	xlo, xhi := axisRange(x, false)
	ylo, yhi := axisRange(y, false)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	for i := range x {
		px := marginL + plotW*(x[i]-xlo)/(xhi-xlo)
		py := marginT + plotH*(1-(y[i]-ylo)/(yhi-ylo))
		s.circle(px, py, 3.5, palette[labels[i]%len(palette)])
	}
	return s.finish()
}
