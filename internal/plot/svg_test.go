package plot

import (
	"strings"
	"testing"
)

func TestGroupedBarsStructure(t *testing.T) {
	svg := GroupedBars("Energy", []string{"layer A", "layer B"}, []BarGroup{
		{Label: "vgg16", Values: []float64{33.3, 28.5}},
		{Label: "mbv2", Values: []float64{22.3, 0.3}},
	}, "improvement %")
	for _, want := range []string{"<svg", "</svg>", "Energy", "vgg16", "mbv2", "layer A", "#4e79a7"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
	// Two groups × two series = four bars plus legend swatches and the
	// background rect.
	if n := strings.Count(svg, "<rect"); n < 7 {
		t.Fatalf("bar count too low: %d rects", n)
	}
}

func TestGroupedBarsNegativeValues(t *testing.T) {
	svg := GroupedBars("t", []string{"s"}, []BarGroup{
		{Label: "g", Values: []float64{-5}},
	}, "y")
	if !strings.Contains(svg, "<rect") {
		t.Fatal("negative bars must still render")
	}
	if strings.Contains(svg, `height="-`) {
		t.Fatal("negative heights are invalid SVG")
	}
}

func TestLinesStructure(t *testing.T) {
	svg := Lines("Tradeoff", []Series{
		{Name: "accuracy", X: []float64{1000, 3000, 10000}, Y: []float64{0.8, 0.9, 0.91}},
		{Name: "fps", X: []float64{1000, 3000, 10000}, Y: []float64{40000, 39000, 35000}},
	}, "D", "value")
	for _, want := range []string{"Tradeoff", "accuracy", "fps", "<line", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// 3 points per series → at least 2 segments each plus axes/grid.
	if strings.Count(svg, "<circle") != 6 {
		t.Fatalf("expected 6 markers, got %d", strings.Count(svg, "<circle"))
	}
}

func TestLinesUnsortedInput(t *testing.T) {
	// X values out of order must be connected in sorted order (no zigzag).
	svg := Lines("t", []Series{{Name: "s", X: []float64{3, 1, 2}, Y: []float64{3, 1, 2}}}, "x", "y")
	if !strings.Contains(svg, "<line") {
		t.Fatal("no lines rendered")
	}
}

func TestScatterStructure(t *testing.T) {
	svg := Scatter("Embedding", []float64{0, 1, 2}, []float64{0, 1, 2}, []int{0, 1, 0})
	if strings.Count(svg, "<circle") != 3 {
		t.Fatalf("expected 3 points, got %d", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, palette[1]) {
		t.Fatal("second label color missing")
	}
}

func TestEscaping(t *testing.T) {
	svg := GroupedBars(`a<b&"c"`, []string{"s"}, []BarGroup{{Label: "g", Values: []float64{1}}}, "y")
	if strings.Contains(svg, `a<b&"c"`) {
		t.Fatal("title must be escaped")
	}
	if !strings.Contains(svg, "a&lt;b&amp;&quot;c&quot;") {
		t.Fatal("escaped title missing")
	}
}

func TestDegenerateRange(t *testing.T) {
	// Constant values must not divide by zero.
	svg := Lines("t", []Series{{Name: "s", X: []float64{1, 1}, Y: []float64{5, 5}}}, "x", "y")
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate ranges produced NaN/Inf coordinates")
	}
}
