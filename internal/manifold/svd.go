package manifold

import (
	"fmt"
	"math"

	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// Truncated-SVD factorization of the FC regressor for the engine's
// post-training compression pass (DPQ-HD's decomposition stage): W ≈ U·V with
// U = U_r ([F̂, r], the top-r left singular vectors) and V = U_rᵀ·W
// ([r, PooledF]). The factors are found by a cyclic Jacobi eigendecomposition
// of the small symmetric W·Wᵀ ([F̂, F̂]) — deterministic (fixed sweep order,
// pure float64), dependency-free, and exact enough at these shapes that the
// r = F̂ factorization reproduces W to float32 round-off.
//
// A factorized learner serves pool → flatten → V → U(+bias); it is
// inference-only (Backward panics) — compression happens after training.

// svdEnergyKeep is the spectral-energy fraction AutoRank must retain:
// the smallest r with Σ_{top r} λ_i ≥ svdEnergyKeep·Σ λ_i.
const svdEnergyKeep = 0.995

// jacobiEigSym diagonalizes the symmetric n×n row-major matrix a in place by
// cyclic Jacobi rotations, returning eigenvalues sorted descending and the
// matching eigenvectors as COLUMNS of vecs (vecs[i*n+j] = component i of
// eigenvector j).
func jacobiEigSym(a []float64, n int) (vals []float64, vecs []float64) {
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	for sweep := 0; sweep < 64; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i*n+j] * a[i*n+j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (a[q*n+q] - a[p*n+p]) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < n; i++ {
					aip, aiq := a[i*n+p], a[i*n+q]
					a[i*n+p] = c*aip - s*aiq
					a[i*n+q] = s*aip + c*aiq
				}
				for j := 0; j < n; j++ {
					apj, aqj := a[p*n+j], a[q*n+j]
					a[p*n+j] = c*apj - s*aqj
					a[q*n+j] = s*apj + c*aqj
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i*n+p], v[i*n+q]
					v[i*n+p] = c*vip - s*viq
					v[i*n+q] = s*vip + c*viq
				}
			}
		}
	}
	// Sort eigenpairs by descending eigenvalue, stable in original column
	// order on exact ties, so the factorization is a pure function of W.
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && a[ord[j]*n+ord[j]] > a[ord[j-1]*n+ord[j-1]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	vals = make([]float64, n)
	vecs = make([]float64, n*n)
	for j, o := range ord {
		vals[j] = a[o*n+o]
		for i := 0; i < n; i++ {
			vecs[i*n+j] = v[i*n+o]
		}
	}
	return vals, vecs
}

// spectrum returns the descending eigenvalues of W·Wᵀ (the squared singular
// values of W) and the eigenvector matrix.
func (l *Learner) spectrum() (vals []float64, vecs []float64, n int) {
	w := l.fc.Weight.W // [F̂, PooledF]
	n = l.FHat
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		ri := w.Row(i)
		for j := i; j < n; j++ {
			rj := w.Row(j)
			var s float64
			for t := range ri {
				s += float64(ri[t]) * float64(rj[t])
			}
			a[i*n+j] = s
			a[j*n+i] = s
		}
	}
	vals, vecs = jacobiEigSym(a, n)
	return vals, vecs, n
}

// AutoRank picks the truncation rank for Factorize: the smallest r retaining
// svdEnergyKeep of the spectral energy of W, gated by the MAC/byte test
// r·(PooledF+F̂) < PooledF·F̂ — the factorized pair must actually be smaller
// than the dense FC. Returns 0 when no rank passes the gate (keep the dense
// FC).
func (l *Learner) AutoRank() int {
	if l == nil || l.fc == nil || l.fcDown != nil {
		return 0
	}
	vals, _, n := l.spectrum()
	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	var acc float64
	r := n
	for i, v := range vals {
		if v > 0 {
			acc += v
		}
		if acc >= svdEnergyKeep*total {
			r = i + 1
			break
		}
	}
	if int64(r)*int64(l.PooledF+l.FHat) >= int64(l.PooledF)*int64(l.FHat) {
		return 0
	}
	return r
}

// Factorize returns a new inference-only learner whose FC is replaced by the
// truncated pair V = U_rᵀ·W ([rank, PooledF], no bias) followed by U_r
// ([F̂, rank]) with the original bias. The source learner is untouched.
func (l *Learner) Factorize(rank int) (*Learner, error) {
	if l == nil || l.fc == nil {
		return nil, fmt.Errorf("manifold: Factorize on a nil/empty manifold")
	}
	if l.fcDown != nil {
		return nil, fmt.Errorf("manifold: Factorize on an already-factorized manifold")
	}
	if rank < 1 || rank > l.FHat {
		return nil, fmt.Errorf("manifold: Factorize rank %d out of [1, %d]", rank, l.FHat)
	}
	_, vecs, n := l.spectrum()
	w := l.fc.Weight.W // [F̂, PooledF]

	rng := tensor.NewRNG(0) // weights are overwritten below
	up := nn.NewLinear(rng, rank, l.FHat, l.fc.Bias != nil)
	for i := 0; i < l.FHat; i++ {
		row := up.Weight.W.Row(i)
		for j := 0; j < rank; j++ {
			row[j] = float32(vecs[i*n+j])
		}
	}
	if l.fc.Bias != nil {
		copy(up.Bias.W.Data, l.fc.Bias.W.Data)
	}
	down := nn.NewLinear(rng, l.PooledF, rank, false)
	for j := 0; j < rank; j++ {
		row := down.Weight.W.Row(j) // [PooledF]
		for t := 0; t < l.PooledF; t++ {
			var s float64
			for i := 0; i < l.FHat; i++ {
				s += vecs[i*n+j] * float64(w.Row(i)[t])
			}
			row[t] = float32(s)
		}
	}
	return &Learner{
		InShape: append([]int(nil), l.InShape...),
		FHat:    l.FHat,
		PooledF: l.PooledF,
		pool:    l.pool,
		flatten: l.flatten,
		fc:      up,
		fcDown:  down,
	}, nil
}

// Down exposes the factorized down-projection V ([rank, PooledF]), nil on an
// unfactorized learner.
func (l *Learner) Down() *nn.Linear { return l.fcDown }

// Rank reports the factorization rank, 0 when the FC is dense.
func (l *Learner) Rank() int {
	if l.fcDown == nil {
		return 0
	}
	return l.fcDown.Out
}
