package manifold

import (
	"math"
	"testing"

	"nshd/internal/tensor"
)

func TestForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	l, err := New(rng, []int{8, 4, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.PooledF != 8*2*2 {
		t.Fatalf("PooledF = %d, want 32", l.PooledF)
	}
	x := tensor.New(3, 8, 4, 4)
	rng.FillNormal(x, 0, 1)
	y := l.Forward(x, false)
	if y.Rank() != 2 || y.Shape[0] != 3 || y.Shape[1] != 10 {
		t.Fatalf("output shape %v", y.Shape)
	}
}

func TestSmallSpatialSkipsPool(t *testing.T) {
	rng := tensor.NewRNG(2)
	l, err := New(rng, []int{16, 1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l.PooledF != 16 {
		t.Fatalf("PooledF = %d, want 16 (no pooling possible)", l.PooledF)
	}
	x := tensor.New(2, 16, 1, 1)
	rng.FillNormal(x, 0, 1)
	if y := l.Forward(x, false); y.Shape[1] != 5 {
		t.Fatalf("output shape %v", y.Shape)
	}
}

func TestValidation(t *testing.T) {
	rng := tensor.NewRNG(3)
	if _, err := New(rng, []int{4, 4}, 10); err == nil {
		t.Fatal("expected error for non-3D shape")
	}
	if _, err := New(rng, []int{4, 4, 4}, 0); err == nil {
		t.Fatal("expected error for F̂=0")
	}
	l, _ := New(rng, []int{4, 4, 4}, 8)
	if err := l.CheckClasses(10); err == nil {
		t.Fatal("expected F̂ < classes violation")
	}
	if err := l.CheckClasses(8); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardGradCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	l, _ := New(rng, []int{2, 4, 4}, 3)
	x := tensor.New(2, 2, 4, 4)
	tensor.NewRNG(5).FillNormal(x, 0, 1)

	loss := func() float64 {
		y := l.Forward(x, true)
		var s float64
		for i, v := range y.Data {
			s += float64(v) * float64(1+i%4)
		}
		return s
	}
	l.ZeroGrad()
	y := l.Forward(x, true)
	gout := tensor.New(y.Shape...)
	for i := range gout.Data {
		gout.Data[i] = float32(1 + i%4)
	}
	l.Backward(gout)

	const eps = 1e-2
	w := l.Params()[0]
	for idx := 0; idx < w.W.Len(); idx += w.W.Len()/7 + 1 {
		orig := w.W.Data[idx]
		w.W.Data[idx] = orig + eps
		lp := loss()
		w.W.Data[idx] = orig - eps
		lm := loss()
		w.W.Data[idx] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(w.Grad.Data[idx])
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("FC grad[%d] = %v, finite diff %v", idx, got, want)
		}
	}
}

func TestStatsMACs(t *testing.T) {
	rng := tensor.NewRNG(6)
	l, _ := New(rng, []int{8, 4, 4}, 10)
	s := l.Stats()
	if s.MACs != int64(8*2*2)*10 {
		t.Fatalf("MACs = %d, want %d", s.MACs, 8*2*2*10)
	}
	if s.Params != int64(32*10+10) {
		t.Fatalf("Params = %d", s.Params)
	}
}

func TestCompressionReducesEncodingCost(t *testing.T) {
	// The whole point of the manifold layer (Fig. 5): encoding F̂ features
	// into D dims costs far less than encoding the raw flattened features.
	rng := tensor.NewRNG(7)
	inShape := []int{64, 8, 8} // F = 4096
	l, _ := New(rng, inShape, 100)
	d := int64(3000)
	rawF := int64(64 * 8 * 8)
	withManifold := int64(l.Stats().MACs) + int64(l.FHat)*d
	without := rawF * d
	if withManifold >= without {
		t.Fatalf("manifold must reduce encoding cost: %d vs %d", withManifold, without)
	}
}

func TestForwardInferMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(21)
	for _, shape := range [][]int{{4, 8, 8}, {3, 1, 5}} { // pooled and pool-skipped
		l, err := New(rng, shape, 10)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(append([]int{6}, shape...)...)
		rng.FillNormal(x, 0, 1)
		want := l.Forward(x, false)

		ar := tensor.NewArena()
		in := ar.Alloc(x.Shape...)
		copy(in.Data, x.Data)
		got := l.ForwardInfer(in, ar)
		if !got.SameShape(want) {
			t.Fatalf("shape %v, want %v", got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: ForwardInfer[%d]=%v, Forward=%v", shape, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestFoldProjection: folding FC→projection into (G, c) reproduces the
// staged (x Wᵀ + b) P product to float tolerance, and the nil/empty guards
// return errors instead of panicking.
func TestFoldProjection(t *testing.T) {
	rng := tensor.NewRNG(3)
	l, err := New(rng, []int{4, 6, 6}, 10)
	if err != nil {
		t.Fatal(err)
	}
	const d = 70
	p := tensor.New(10, d)
	tensor.NewRNG(4).FillBipolar(p)
	g, c, err := l.FoldProjection(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shape[0] != l.PooledF || g.Shape[1] != d || len(c) != d {
		t.Fatalf("fold shapes G=%v c=%d, want [%d %d] and %d", g.Shape, len(c), l.PooledF, d, d)
	}

	x := tensor.New(3, 4, 6, 6)
	tensor.NewRNG(5).FillNormal(x, 0, 1)
	staged := tensor.MatMul(l.Forward(x, false), p) // [3, d]

	ar := tensor.NewArena()
	pl, _ := l.InferLayers()
	y := pl.ForwardInfer(ar.Wrap(x.Data, x.Shape...), ar)
	flat := ar.Wrap(y.Data, 3, l.PooledF)
	folded := tensor.MatMul(flat, g)
	for i := range folded.Data {
		folded.Data[i] += c[i%d]
	}
	for i := range staged.Data {
		diff := float64(staged.Data[i] - folded.Data[i])
		if diff < 0 {
			diff = -diff
		}
		scale := float64(staged.Data[i])
		if scale < 0 {
			scale = -scale
		}
		if diff > 1e-4*(1+scale) {
			t.Fatalf("folded product differs at %d: staged %v folded %v", i, staged.Data[i], folded.Data[i])
		}
	}

	var nilL *Learner
	if _, _, err := nilL.FoldProjection(p); err == nil {
		t.Fatal("nil learner folded without error")
	}
	if _, _, err := l.FoldProjection(tensor.New(11, d)); err == nil {
		t.Fatal("shape-mismatched projection folded without error")
	}
}
