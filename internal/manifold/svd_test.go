package manifold

import (
	"math"
	"math/rand"
	"testing"

	"nshd/internal/tensor"
)

func testLearner(t *testing.T, seed int64, fhat int) *Learner {
	t.Helper()
	rng := tensor.NewRNG(seed)
	l, err := New(rng, []int{4, 8, 8}, fhat) // PooledF = 4·4·4 = 64
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestFactorizeFullRankReconstructs: at rank = F̂ the factorization must
// reproduce the dense FC output to float32 round-off.
func TestFactorizeFullRankReconstructs(t *testing.T) {
	l := testLearner(t, 5, 16)
	f, err := l.Factorize(16)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rank() != 16 || f.Down() == nil {
		t.Fatalf("rank %d, down %v", f.Rank(), f.Down())
	}
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(3, 4, 8, 8)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	want := l.Forward(x, false)
	got := f.Forward(x, false)
	var scale float64
	for _, v := range want.Data {
		if a := math.Abs(float64(v)); a > scale {
			scale = a
		}
	}
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 1e-4*scale {
			t.Fatalf("flat %d: factorized %v vs dense %v (tol %v)", i, got.Data[i], want.Data[i], 1e-4*scale)
		}
	}
}

// TestFactorizeTruncationError: truncated rank reconstructs approximately,
// and more rank means no worse Frobenius error.
func TestFactorizeTruncationError(t *testing.T) {
	l := testLearner(t, 7, 16)
	w := l.fc.Weight.W
	frob := func(rank int) float64 {
		f, err := l.Factorize(rank)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct W' = U·V and measure ‖W' − W‖².
		u, v := f.fc.Weight.W, f.fcDown.Weight.W
		var sum float64
		for i := 0; i < l.FHat; i++ {
			for tt := 0; tt < l.PooledF; tt++ {
				var r float64
				for j := 0; j < rank; j++ {
					r += float64(u.Row(i)[j]) * float64(v.Row(j)[tt])
				}
				d := r - float64(w.Row(i)[tt])
				sum += d * d
			}
		}
		return sum
	}
	e4, e8, e16 := frob(4), frob(8), frob(16)
	if !(e16 <= e8 && e8 <= e4) {
		t.Fatalf("errors not monotone: r4=%v r8=%v r16=%v", e4, e8, e16)
	}
	if e16 > 1e-6 {
		t.Fatalf("full-rank error %v", e16)
	}
}

// TestFactorizeDeterminism: two factorizations of the same learner are
// byte-identical.
func TestFactorizeDeterminism(t *testing.T) {
	l := testLearner(t, 9, 12)
	a, err := l.Factorize(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Factorize(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.fc.Weight.W.Data {
		if a.fc.Weight.W.Data[i] != b.fc.Weight.W.Data[i] {
			t.Fatalf("up factor differs at %d", i)
		}
	}
	for i := range a.fcDown.Weight.W.Data {
		if a.fcDown.Weight.W.Data[i] != b.fcDown.Weight.W.Data[i] {
			t.Fatalf("down factor differs at %d", i)
		}
	}
}

func TestAutoRankGate(t *testing.T) {
	// Xavier-initialized W is full-spectrum: AutoRank should either return 0
	// or a rank that actually shrinks the parameter count.
	l := testLearner(t, 11, 16)
	if r := l.AutoRank(); r != 0 {
		if int64(r)*int64(l.PooledF+l.FHat) >= int64(l.PooledF)*int64(l.FHat) {
			t.Fatalf("AutoRank %d fails its own size gate", r)
		}
	}
	// A rank-1 FC must auto-detect a tiny rank.
	l2 := testLearner(t, 12, 16)
	w := l2.fc.Weight.W
	for i := 0; i < l2.FHat; i++ {
		for j := 0; j < l2.PooledF; j++ {
			w.Row(i)[j] = float32(i+1) * 0.01 * float32(j%7-3)
		}
	}
	if r := l2.AutoRank(); r != 1 {
		t.Fatalf("rank-1 matrix: AutoRank = %d", r)
	}
	// Factorized learners are frozen.
	f, err := l2.Factorize(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Factorize(1); err == nil {
		t.Fatal("re-factorize did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on factorized learner did not panic")
		}
	}()
	f.Backward(tensor.New(1, 16))
}
