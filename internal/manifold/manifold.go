// Package manifold implements NSHD's learning-driven feature compression
// (Sec. IV-C / V-C): a max-pool with window 2 followed by a fully-connected
// regressor Ψ: R^F → R^F̂ that maps convolution-extracted features with
// extreme dimensionality into a small, information-preserving feature vector
// before HD encoding.
//
// The layer is trained without touching the CNN: class-hypervector errors
// are decoded through the HD encoder (binding with the projection
// hypervectors P, a straight-through estimator standing in for sign) into
// the manifold output space, and ordinary backpropagation updates the FC
// weights (see core.Pipeline).
package manifold

import (
	"fmt"

	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// Learner is the manifold layer Ψ.
type Learner struct {
	// InShape is the per-sample output shape [C, H, W] of the feature
	// extractor the learner compresses.
	InShape []int
	// FHat is the compressed feature dimension (the paper sets 100 and
	// notes it should be at least the number of classes).
	FHat int
	// PooledF is the flattened dimension after max pooling.
	PooledF int

	pool    *nn.MaxPool2D // nil when the input is too small to pool
	flatten *nn.Flatten
	fc      *nn.Linear
	// fcDown is the truncated-SVD down-projection of a factorized learner
	// (see Factorize); nil on an ordinary learner. When set, inference runs
	// fcDown then fc and the learner is frozen (Backward panics).
	fcDown *nn.Linear
}

// New constructs a manifold learner for features of the given shape.
func New(rng *tensor.RNG, inShape []int, fhat int) (*Learner, error) {
	if len(inShape) != 3 {
		return nil, fmt.Errorf("manifold: input shape %v, want [C H W]", inShape)
	}
	if fhat < 1 {
		return nil, fmt.Errorf("manifold: F̂ = %d must be positive", fhat)
	}
	l := &Learner{InShape: append([]int(nil), inShape...), FHat: fhat, flatten: nn.NewFlatten()}
	c, h, w := inShape[0], inShape[1], inShape[2]
	ph, pw := h, w
	if h >= 2 && w >= 2 {
		l.pool = nn.NewMaxPool2D(2)
		ph, pw = h/2, w/2
	}
	l.PooledF = c * ph * pw
	l.fc = nn.NewLinear(rng, l.PooledF, fhat, true)
	return l, nil
}

// CheckClasses warns (by error) when F̂ violates the paper's guidance of
// being at least the class count (Sec. VII-A).
func (l *Learner) CheckClasses(classes int) error {
	if l.FHat < classes {
		return fmt.Errorf("manifold: F̂=%d smaller than %d classes; the paper requires F̂ ≥ classes", l.FHat, classes)
	}
	return nil
}

// Forward compresses a [N, C, H, W] feature batch to [N, F̂].
func (l *Learner) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("manifold: Forward expects [N C H W], got %v", x.Shape))
	}
	y := x
	if l.pool != nil {
		y = l.pool.Forward(y, train)
	}
	y = l.flatten.Forward(y, train)
	if l.fcDown != nil {
		y = l.fcDown.Forward(y, false)
	}
	return l.fc.Forward(y, train)
}

// ForwardInfer is the serving-side Forward: state-free, serial, and
// allocating only from the caller's arena (see nn.InferenceLayer). It
// matches Forward(train=false) bit-for-bit.
func (l *Learner) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("manifold: ForwardInfer expects [N C H W], got %v", x.Shape))
	}
	y := x
	if l.pool != nil {
		y = l.pool.ForwardInfer(y, ar)
	}
	y = l.flatten.ForwardInfer(y, ar)
	if l.fcDown != nil {
		y = l.fcDown.ForwardInfer(y, ar)
	}
	return l.fc.ForwardInfer(y, ar)
}

// InferLayers exposes the inference sublayers — the pool (nil when the
// feature map is too small to pool) and the FC regressor — for compilers
// that rebuild the learner in another numeric format (the engine's int8
// precision mode).
func (l *Learner) InferLayers() (pool *nn.MaxPool2D, fc *nn.Linear) { return l.pool, l.fc }

// FoldProjection algebraically folds the FC regressor into a following
// random projection P ([F̂, D]): since both maps are linear,
//
//	(x Wᵀ + b) P  =  x (Wᵀ P) + b P  =  x G + c,
//
// so a compiler can collapse manifold-FC → projection into one GEMM against
// G = Wᵀ·P ([PooledF, D]) plus the row vector c = b·P ([D]). The pool and
// flatten stay (max-pool is nonlinear), as does the sign AFTER the
// projection — the fold stops exactly at the first nonlinearity. Note the
// re-association: x(WᵀP) accumulates in a different order than (xWᵀ)P, so
// folded outputs are numerically close but not bit-identical; downstream
// argmax stability is the engine's documented contract for folded tails.
func (l *Learner) FoldProjection(p *tensor.Tensor) (g *tensor.Tensor, c []float32, err error) {
	if l == nil || l.fc == nil {
		return nil, nil, fmt.Errorf("manifold: FoldProjection on a nil/empty manifold")
	}
	if p == nil || p.Rank() != 2 || p.Shape[0] != l.FHat {
		return nil, nil, fmt.Errorf("manifold: FoldProjection projection shape mismatch (F̂=%d)", l.FHat)
	}
	w := l.fc.Weight.W // [F̂, PooledF]; [F̂, rank] when factorized
	g = tensor.TransposeMatMul(w, p)
	c = make([]float32, p.Shape[1])
	if l.fc.Bias != nil {
		bias := tensor.FromSlice(l.fc.Bias.W.Data, 1, l.FHat)
		tensor.MatMulInto(tensor.FromSlice(c, 1, len(c)), bias, p)
	}
	return g, c, nil
}

// Backward propagates dL/d(output) ([N, F̂]) into the FC parameters,
// returning the gradient w.r.t. the (pre-pool) feature input. Callers that
// freeze the CNN discard the return value.
func (l *Learner) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.fcDown != nil {
		panic("manifold: Backward on a factorized (inference-only) learner")
	}
	g := l.fc.Backward(grad)
	g = l.flatten.Backward(g)
	if l.pool != nil {
		g = l.pool.Backward(g)
	}
	return g
}

// Params exposes the learnable parameters (the FC weights and bias; both
// factors of a factorized learner, for byte accounting).
func (l *Learner) Params() []*nn.Param {
	if l.fcDown != nil {
		return append(l.fcDown.Params(), l.fc.Params()...)
	}
	return l.fc.Params()
}

// ZeroGrad clears parameter gradients.
func (l *Learner) ZeroGrad() {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// Stats reports per-sample inference cost: pooling is free under the MAC
// convention; the FC contributes PooledF·F̂ MACs. This saving is the subject
// of Fig. 5.
func (l *Learner) Stats() nn.Stats {
	if l.fcDown != nil {
		s := l.fcDown.Stats([]int{l.PooledF})
		s.Add(l.fc.Stats([]int{l.fcDown.Out}))
		s.ActBytes += int64(l.PooledF) * 4
		return s
	}
	s := l.fc.Stats([]int{l.PooledF})
	s.ActBytes += int64(l.PooledF) * 4
	return s
}

// OutDim returns F̂.
func (l *Learner) OutDim() int { return l.FHat }
