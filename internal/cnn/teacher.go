package cnn

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nshd/internal/dataset"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// PretrainConfig controls teacher pretraining. The paper uses off-the-shelf
// pretrained CNNs; in this reproduction we pretrain once on the synthetic
// workload and cache the weights on disk, so every experiment afterwards
// consumes the teacher exactly as the paper does — forward-only.
type PretrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// CacheDir, when non-empty, enables snapshot reuse keyed by model,
	// dataset and schedule.
	CacheDir string
	Log      io.Writer
}

// DefaultPretrainConfig returns the schedule used by the experiment harness.
func DefaultPretrainConfig() PretrainConfig {
	return PretrainConfig{Epochs: 12, BatchSize: 32, LR: 0.05, Momentum: 0.9}
}

// cachePath derives a deterministic snapshot name for the configuration.
func (c PretrainConfig) cachePath(m *Model, d *dataset.Dataset) string {
	return filepath.Join(c.CacheDir,
		fmt.Sprintf("%s_%s_%dc_%dn_%de.gob", m.Name, sanitize(d.Name), m.Classes, d.Len(), c.Epochs))
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Pretrain trains (or restores from cache) the full CNN on the training
// split, returning the final training accuracy. After Pretrain the model is
// ready to serve both as the distillation teacher and, through Cut, as the
// NSHD feature extractor.
func Pretrain(m *Model, train *dataset.Dataset, cfg PretrainConfig, rng *tensor.RNG) (float64, bool, error) {
	if cfg.CacheDir != "" {
		path := cfg.cachePath(m, train)
		if _, err := os.Stat(path); err == nil {
			if err := nn.LoadModel(m.Full(), path); err != nil {
				return 0, false, fmt.Errorf("cnn: restore cached teacher: %w", err)
			}
			acc := nn.Evaluate(m.Full(), train.Images, train.Labels, cfg.BatchSize)
			return acc, true, nil
		}
	}
	tr := &nn.Trainer{
		Epochs:     cfg.Epochs,
		BatchSize:  cfg.BatchSize,
		Opt:        nn.NewSGD(cfg.LR, cfg.Momentum, 1e-4),
		ClipNorm:   5,
		Log:        cfg.Log,
		Augment:    dataset.ShiftAugment(4),
		LRSchedule: nn.StepDecay(cfg.LR, 0.5, cfg.Epochs/3+1),
	}
	hist := tr.Fit(m.Full(), train.Images, train.Labels, rng)
	acc := hist[len(hist)-1].Accuracy
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			return acc, false, fmt.Errorf("cnn: create cache dir: %w", err)
		}
		if err := nn.SaveModel(m.Full(), cfg.cachePath(m, train)); err != nil {
			return acc, false, fmt.Errorf("cnn: cache teacher: %w", err)
		}
	}
	return acc, false, nil
}
