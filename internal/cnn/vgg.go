package cnn

import (
	"fmt"

	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// vggWidth scales the torchvision VGG16 channel plan down to CIFAR/CPU
// scale. Topology and layer indexing are preserved exactly: the features
// section has indices 0..30 where every convolution, ReLU and max-pool is
// its own index, so the paper's cut layers 27 and 29 land on the activations
// after the 12th and 13th convolutions, just as in torchvision.
const vggWidth = 4 // divide torchvision widths by this

// NewVGG16 builds the CIFAR-scaled VGG16. The configuration is torchvision
// "D": 64,64,M,128,128,M,256,256,256,M,512,512,512,M,512,512,512,M.
func NewVGG16(rng *tensor.RNG, classes int) *Model {
	plan := []int{64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1, 512, 512, 512, -1}
	m := &Model{Name: "vgg16", InShape: []int{3, 32, 32}, Classes: classes}
	idx := 0
	inC := 3
	for _, p := range plan {
		if p == -1 {
			m.Units = append(m.Units, Unit{
				Index: idx, Label: "maxpool", Layers: []nn.Layer{nn.NewMaxPool2D(2)},
			})
			idx++
			continue
		}
		outC := p / vggWidth
		m.Units = append(m.Units,
			Unit{Index: idx, Label: fmt.Sprintf("conv3x3(%d)", outC),
				Layers: []nn.Layer{nn.NewConv2D(rng, inC, outC, 3, 1, 1, true)}},
			Unit{Index: idx + 1, Label: "relu", Layers: []nn.Layer{nn.NewReLU()}},
		)
		idx += 2
		inC = outC
	}
	// Head: 32/2^5 = 1, so features flatten to inC values. The classifier
	// mirrors VGG's two 4096-wide FC layers at 4096/vggWidth — VGG's
	// parameter mass lives here, which is exactly what NSHD skips when it
	// cuts at layer 27/29 (the source of the paper's 64% energy saving).
	hidden := 4096 / vggWidth
	m.Head = []nn.Layer{
		nn.NewFlatten(),
		nn.NewLinear(rng, inC, hidden, true),
		nn.NewReLU(),
		nn.NewLinear(rng, hidden, hidden, true),
		nn.NewReLU(),
		nn.NewLinear(rng, hidden, classes, true),
	}
	return m.Finish()
}
