package cnn

import (
	"testing"

	"nshd/internal/dataset"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

func buildAll(t *testing.T) map[string]*Model {
	t.Helper()
	out := make(map[string]*Model)
	for _, name := range Names() {
		m, err := Build(name, tensor.NewRNG(1), 10)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = m
	}
	return out
}

func TestZooForwardShapes(t *testing.T) {
	x := tensor.New(2, 3, 32, 32)
	tensor.NewRNG(2).FillNormal(x, 0, 1)
	for name, m := range buildAll(t) {
		logits := m.Full().Forward(x, false)
		if logits.Rank() != 2 || logits.Shape[0] != 2 || logits.Shape[1] != 10 {
			t.Fatalf("%s: logits shape %v", name, logits.Shape)
		}
		// Shape inference agrees with execution.
		want := m.Full().OutShape(m.InShape)
		if len(want) != 1 || want[0] != 10 {
			t.Fatalf("%s: OutShape %v", name, want)
		}
	}
}

func TestUnitIndexing(t *testing.T) {
	zoo := buildAll(t)
	// VGG16 follows the torchvision features indexing 0..30.
	vgg := zoo["vgg16"]
	if vgg.MaxIndex() != 30 {
		t.Fatalf("vgg16 max index %d, want 30", vgg.MaxIndex())
	}
	// MobileNetV2 has operators 0..18.
	if zoo["mobilenetv2"].MaxIndex() != 18 {
		t.Fatalf("mobilenetv2 max index %d, want 18", zoo["mobilenetv2"].MaxIndex())
	}
	// EfficientNets have stem + 7 stages + head = indices 0..8.
	for _, n := range []string{"effnetb0", "effnetb7"} {
		if zoo[n].MaxIndex() != 8 {
			t.Fatalf("%s max index %d, want 8", n, zoo[n].MaxIndex())
		}
	}
	// All paper layers must exist on each model.
	for name, m := range zoo {
		for _, l := range PaperLayers(name) {
			if _, err := m.Cut(l); err != nil {
				t.Fatalf("%s: paper layer %d not cuttable: %v", name, l, err)
			}
		}
	}
}

func TestCutInvalidIndex(t *testing.T) {
	m, _ := Build("effnetb0", tensor.NewRNG(3), 10)
	if _, err := m.Cut(99); err == nil {
		t.Fatal("expected error for out-of-range cut")
	}
}

func TestCutSharesParameters(t *testing.T) {
	m, _ := Build("vgg16", tensor.NewRNG(4), 10)
	fe, err := m.Cut(27)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate a full-model conv weight; the cut view must see it.
	conv := m.Units[0].Layers[0].(*nn.Conv2D)
	conv.Weight.W.Data[0] = 1234
	cutConv := fe.Layers[0].(*nn.Conv2D)
	if cutConv.Weight.W.Data[0] != 1234 {
		t.Fatal("Cut must share parameters with the full model")
	}
}

func TestCutForwardMatchesPrefixOfFull(t *testing.T) {
	m, _ := Build("mobilenetv2", tensor.NewRNG(5), 10)
	fe, err := m.Cut(3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 32, 32)
	tensor.NewRNG(6).FillNormal(x, 0, 1)
	// Running the cut, then the remaining units + head, must equal the full
	// network output.
	mid := fe.Forward(x, false)
	var rest []nn.Layer
	for _, u := range m.Units {
		if u.Index > 3 {
			rest = append(rest, u.Layers...)
		}
	}
	rest = append(rest, m.Head...)
	tail := nn.NewSequential("tail", rest...)
	got := tail.Forward(mid, false)
	want := m.Full().Forward(x, false)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("cut+tail must reproduce the full forward pass")
		}
	}
}

func TestFeatureDimsDecreaseTowardHead(t *testing.T) {
	// For EfficientNet, deeper cuts should not increase the flattened
	// feature count once spatial downsampling dominates (and the paper's
	// largest F comes from VGG16's late conv layers).
	m, _ := Build("effnetb0", tensor.NewRNG(7), 10)
	f5, _ := m.FeatureDim(5)
	f7, _ := m.FeatureDim(7)
	if f5 <= 0 || f7 <= 0 {
		t.Fatal("feature dims must be positive")
	}
	vgg, _ := Build("vgg16", tensor.NewRNG(8), 10)
	f27, err := vgg.FeatureDim(27)
	if err != nil {
		t.Fatal(err)
	}
	f29, _ := vgg.FeatureDim(29)
	if f27 != f29 {
		// Layers 27 and 29 are both 512/vggWidth-channel activations at the
		// same spatial size (2×2): the feature dim must match.
		t.Fatalf("vgg16 layer 27/29 dims differ: %d vs %d", f27, f29)
	}
}

func TestCostOrderingAcrossModels(t *testing.T) {
	zoo := buildAll(t)
	macs := map[string]int64{}
	params := map[string]int64{}
	for name, m := range zoo {
		s := m.FullStats()
		macs[name] = s.MACs
		params[name] = s.Params
		if s.MACs <= 0 || s.Params <= 0 {
			t.Fatalf("%s: degenerate stats %+v", name, s)
		}
	}
	// Paper ordering: VGG16 has by far the most parameters; EfficientNet-B7
	// ≫ EfficientNet-B0; MobileNetV2 is the smallest-parameter model family
	// member alongside B0.
	if params["vgg16"] <= params["effnetb7"] {
		t.Fatalf("vgg16 params %d should exceed effnetb7 %d", params["vgg16"], params["effnetb7"])
	}
	if params["effnetb7"] <= params["effnetb0"] {
		t.Fatalf("effnetb7 params %d should exceed effnetb0 %d", params["effnetb7"], params["effnetb0"])
	}
	if macs["effnetb7"] <= macs["effnetb0"] {
		t.Fatalf("effnetb7 MACs %d should exceed effnetb0 %d", macs["effnetb7"], macs["effnetb0"])
	}
}

func TestEarlierCutsCostLess(t *testing.T) {
	for name, m := range buildAll(t) {
		layers := PaperLayers(name)
		var prev int64 = -1
		for _, l := range layers {
			s, err := m.CutStats(l)
			if err != nil {
				t.Fatal(err)
			}
			if s.MACs <= prev {
				t.Fatalf("%s: cut MACs not increasing with depth: layer %d has %d (prev %d)",
					name, l, s.MACs, prev)
			}
			prev = s.MACs
		}
		full := m.FullStats().MACs
		if prev > full {
			t.Fatalf("%s: deepest cut MACs %d exceed full model %d", name, prev, full)
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("resnet50", tensor.NewRNG(9), 10); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestPretrainCacheRoundTrip(t *testing.T) {
	cfg := dataset.SynthConfig{Classes: 4, Train: 160, Test: 16, Size: 16, Noise: 0.2, Seed: 21}
	train, _ := dataset.SynthCIFAR(cfg)
	train.Normalize()

	// A small custom model keeps this test fast: reuse the zoo machinery
	// with effnetb0's builder but trimmed input; instead, use mobilenetv2 on
	// 16x16 by overriding InShape? Zoo models assume 32x32, so wrap a tiny
	// ad-hoc model in the Model struct directly.
	rng := tensor.NewRNG(22)
	m := &Model{Name: "tinycnn", InShape: []int{3, 16, 16}, Classes: 4}
	m.Units = append(m.Units,
		Unit{Index: 0, Label: "conv", Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, 8, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
		Unit{Index: 1, Label: "conv", Layers: []nn.Layer{
			nn.NewConv2D(rng, 8, 16, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
	)
	m.Head = []nn.Layer{nn.NewFlatten(), nn.NewLinear(rng, 16*4*4, 4, true)}
	m.Finish()

	cacheDir := t.TempDir()
	pcfg := PretrainConfig{Epochs: 12, BatchSize: 16, LR: 0.1, Momentum: 0.9, CacheDir: cacheDir}
	acc1, cached1, err := Pretrain(m, train, pcfg, tensor.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	if cached1 {
		t.Fatal("first pretrain must not hit cache")
	}
	if acc1 < 0.5 {
		t.Fatalf("pretrain accuracy %v too low", acc1)
	}
	// Second call restores from cache into a fresh model with identical
	// topology.
	rng2 := tensor.NewRNG(22)
	m2 := &Model{Name: "tinycnn", InShape: []int{3, 16, 16}, Classes: 4}
	m2.Units = append(m2.Units,
		Unit{Index: 0, Label: "conv", Layers: []nn.Layer{
			nn.NewConv2D(rng2, 3, 8, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
		Unit{Index: 1, Label: "conv", Layers: []nn.Layer{
			nn.NewConv2D(rng2, 8, 16, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
	)
	m2.Head = []nn.Layer{nn.NewFlatten(), nn.NewLinear(rng2, 16*4*4, 4, true)}
	m2.Finish()
	acc2, cached2, err := Pretrain(m2, train, pcfg, tensor.NewRNG(24))
	if err != nil {
		t.Fatal(err)
	}
	if !cached2 {
		t.Fatal("second pretrain must hit cache")
	}
	if acc2 < 0.5 {
		t.Fatalf("cached accuracy %v", acc2)
	}
}
