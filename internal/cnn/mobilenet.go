package cnn

import (
	"fmt"

	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// invertedResidual builds one MobileNetV2 block: 1×1 expansion (ratio t) →
// 3×3 depthwise (stride s) → 1×1 linear projection, each with BatchNorm,
// ReLU6 on the non-linear stages, and an identity skip when the block
// preserves shape.
func invertedResidual(rng *tensor.RNG, inC, outC, stride, expand int) nn.Layer {
	var layers []nn.Layer
	hidden := inC * expand
	if expand != 1 {
		layers = append(layers,
			nn.NewConv2D(rng, inC, hidden, 1, 1, 0, false),
			nn.NewBatchNorm2D(hidden),
			nn.NewReLU6(),
		)
	}
	layers = append(layers,
		nn.NewDepthwiseConv2D(rng, hidden, 3, stride, 1),
		nn.NewBatchNorm2D(hidden),
		nn.NewReLU6(),
		nn.NewConv2D(rng, hidden, outC, 1, 1, 0, false),
		nn.NewBatchNorm2D(outC),
	)
	body := nn.NewSequential(fmt.Sprintf("invres(%d→%d,s%d,t%d)", inC, outC, stride, expand), layers...)
	if stride == 1 && inC == outC {
		return nn.NewResidual(body, nil)
	}
	return body
}

// NewMobileNetV2 builds the CIFAR-scaled MobileNetV2. Units are indexed "by
// operators" as in torchvision: index 0 is the stem convolution, 1..17 the
// seventeen inverted-residual blocks, 18 the final 1×1 convolution — so the
// paper's cut layers 14 and 17 select the same operators as in the original.
func NewMobileNetV2(rng *tensor.RNG, classes int) *Model {
	m := &Model{Name: "mobilenetv2", InShape: []int{3, 32, 32}, Classes: classes}
	// (expand, outC, repeats, stride) — torchvision plan with widths halved
	// and the stem/early strides set to 1 for 32×32 inputs.
	type stage struct{ t, c, n, s int }
	plan := []stage{
		{1, 4, 1, 1},
		{6, 6, 2, 1},
		{6, 8, 3, 2},
		{6, 16, 4, 2},
		{6, 24, 3, 1},
		{6, 40, 3, 2},
		{6, 80, 1, 1},
	}
	stem := 8
	m.Units = append(m.Units, Unit{
		Index: 0, Label: fmt.Sprintf("stem conv3x3(%d)", stem),
		Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, stem, 3, 1, 1, false),
			nn.NewBatchNorm2D(stem),
			nn.NewReLU6(),
		},
	})
	idx := 1
	inC := stem
	for _, st := range plan {
		for rep := 0; rep < st.n; rep++ {
			stride := st.s
			if rep > 0 {
				stride = 1
			}
			m.Units = append(m.Units, Unit{
				Index: idx, Label: fmt.Sprintf("invres(%d→%d,s%d)", inC, st.c, stride),
				Layers: []nn.Layer{invertedResidual(rng, inC, st.c, stride, st.t)},
			})
			inC = st.c
			idx++
		}
	}
	lastC := 320 // 4x the last stage width, matching the original 320->1280 ratio
	m.Units = append(m.Units, Unit{
		Index: idx, Label: fmt.Sprintf("conv1x1(%d)", lastC),
		Layers: []nn.Layer{
			nn.NewConv2D(rng, inC, lastC, 1, 1, 0, false),
			nn.NewBatchNorm2D(lastC),
			nn.NewReLU6(),
		},
	})
	m.Head = []nn.Layer{
		nn.NewGlobalAvgPool2D(),
		nn.NewLinear(rng, lastC, classes, true),
	}
	return m.Finish()
}
