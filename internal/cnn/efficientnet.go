package cnn

import (
	"fmt"

	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// mbconv builds one EfficientNet MBConv block: 1×1 expansion → k×k depthwise
// (stride s) → squeeze-and-excitation → 1×1 linear projection, with
// BatchNorm everywhere and SiLU on the non-linear stages; identity skip when
// shape is preserved.
func mbconv(rng *tensor.RNG, inC, outC, k, stride, expand int) nn.Layer {
	var layers []nn.Layer
	hidden := inC * expand
	if expand != 1 {
		layers = append(layers,
			nn.NewConv2D(rng, inC, hidden, 1, 1, 0, false),
			nn.NewBatchNorm2D(hidden),
			nn.NewSiLU(),
		)
	}
	layers = append(layers,
		nn.NewDepthwiseConv2D(rng, hidden, k, stride, k/2),
		nn.NewBatchNorm2D(hidden),
		nn.NewSiLU(),
		nn.NewSEBlock(rng, hidden, 4*expand),
		nn.NewConv2D(rng, hidden, outC, 1, 1, 0, false),
		nn.NewBatchNorm2D(outC),
	)
	body := nn.NewSequential(fmt.Sprintf("mbconv%d(%d→%d,s%d,t%d)", k, inC, outC, stride, expand), layers...)
	if stride == 1 && inC == outC {
		return nn.NewResidual(body, nil)
	}
	return body
}

// effStage describes one EfficientNet stage: expansion ratio, output
// channels, repeats, first-block stride, depthwise kernel.
type effStage struct{ t, c, n, s, k int }

// buildEfficientNet assembles an EfficientNet variant. Units are indexed "by
// blocks" as the paper describes: index 0 is the stem, 1..7 the seven MBConv
// stages, 8 the head convolution — so the paper's cut layers 5..8 select
// stages 5..7 and the head.
func buildEfficientNet(name string, rng *tensor.RNG, classes, stem, headC int, plan []effStage) *Model {
	m := &Model{Name: name, InShape: []int{3, 32, 32}, Classes: classes}
	m.Units = append(m.Units, Unit{
		Index: 0, Label: fmt.Sprintf("stem conv3x3(%d)", stem),
		Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, stem, 3, 1, 1, false),
			nn.NewBatchNorm2D(stem),
			nn.NewSiLU(),
		},
	})
	inC := stem
	for si, st := range plan {
		var layers []nn.Layer
		for rep := 0; rep < st.n; rep++ {
			stride := st.s
			if rep > 0 {
				stride = 1
			}
			layers = append(layers, mbconv(rng, inC, st.c, st.k, stride, st.t))
			inC = st.c
		}
		m.Units = append(m.Units, Unit{
			Index: si + 1, Label: fmt.Sprintf("stage%d(%d,×%d)", si+1, st.c, st.n),
			Layers: layers,
		})
	}
	m.Units = append(m.Units, Unit{
		Index: len(plan) + 1, Label: fmt.Sprintf("head conv1x1(%d)", headC),
		Layers: []nn.Layer{
			nn.NewConv2D(rng, inC, headC, 1, 1, 0, false),
			nn.NewBatchNorm2D(headC),
			nn.NewSiLU(),
		},
	})
	m.Head = []nn.Layer{
		nn.NewGlobalAvgPool2D(),
		nn.NewLinear(rng, headC, classes, true),
	}
	return m.Finish()
}

// NewEfficientNetB0 builds the CIFAR-scaled EfficientNet-B0: the original's
// seven stages with widths halved and early strides flattened for 32×32.
func NewEfficientNetB0(rng *tensor.RNG, classes int) *Model {
	plan := []effStage{
		{1, 4, 1, 1, 3},
		{6, 6, 2, 1, 3},
		{6, 10, 2, 2, 5},
		{6, 20, 3, 2, 3},
		{6, 28, 3, 1, 5},
		{6, 48, 4, 2, 5},
		{6, 80, 1, 1, 3},
	}
	return buildEfficientNet("effnetb0", rng, classes, 8, 320, plan)
}

// NewEfficientNetB7 builds the CIFAR-scaled EfficientNet-B7: wider and
// deeper than B0 with the same stage structure (the compound-scaling ratio is
// reduced to stay CPU-trainable, but the B7 ≫ B0 cost ordering holds).
func NewEfficientNetB7(rng *tensor.RNG, classes int) *Model {
	plan := []effStage{
		{1, 6, 2, 1, 3},
		{6, 10, 2, 1, 3},
		{6, 16, 3, 2, 5},
		{6, 32, 3, 2, 3},
		{6, 44, 3, 1, 5},
		{6, 72, 4, 2, 5},
		{6, 120, 1, 1, 3},
	}
	return buildEfficientNet("effnetb7", rng, classes, 12, 480, plan)
}
