// Package cnn provides the model zoo NSHD draws feature extractors from:
// CIFAR-scaled VGG16, MobileNetV2, EfficientNet-B0 and EfficientNet-B7, each
// carrying the per-layer indexing scheme the paper uses ("Efficientnet is
// divided by their blocks, Mobilenetv2 by operators, and VGG16 by each
// convolution, pooling, and activation layers"), plus a Cut operation that
// slices a pretrained model into a feature extractor while keeping the full
// network as the distillation teacher.
package cnn

import (
	"fmt"
	"sort"

	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// Unit is one indexable stage of a zoo model: the granularity at which the
// paper cuts feature extractors.
type Unit struct {
	// Index is the paper-style layer index.
	Index int
	// Label describes the unit ("conv3x3(64)", "invres(24,s2)", "stage3").
	Label string
	// Layers are the nn layers the unit comprises, in order.
	Layers []nn.Layer
}

// Model is a zoo CNN: indexed feature units followed by a classification
// head. The flattened Full network is the distillation teacher; Cut yields
// the student's feature extractor sharing the same parameters.
type Model struct {
	Name    string
	InShape []int // per-sample input shape [C, H, W]
	Classes int
	Units   []Unit
	Head    []nn.Layer

	full *nn.Sequential
}

// Finish assembles the flattened network from units and head; every
// constructor (and any ad-hoc model built from Units directly) must call it
// before use.
func (m *Model) Finish() *Model {
	var layers []nn.Layer
	for _, u := range m.Units {
		layers = append(layers, u.Layers...)
	}
	layers = append(layers, m.Head...)
	m.full = nn.NewSequential(m.Name, layers...)
	return m
}

// Full returns the complete network (feature units + head), used as the
// teacher and as the CNN baseline.
func (m *Model) Full() *nn.Sequential { return m.full }

// MaxIndex returns the largest unit index.
func (m *Model) MaxIndex() int { return m.Units[len(m.Units)-1].Index }

// Indices returns all unit indices in ascending order.
func (m *Model) Indices() []int {
	out := make([]int, len(m.Units))
	for i, u := range m.Units {
		out[i] = u.Index
	}
	sort.Ints(out)
	return out
}

// Cut returns the feature extractor consisting of every unit with
// Index <= layer. The returned Sequential SHARES parameters with the full
// model, so a pretrained teacher automatically yields a pretrained extractor.
func (m *Model) Cut(layer int) (*nn.Sequential, error) {
	var layers []nn.Layer
	found := false
	for _, u := range m.Units {
		if u.Index <= layer {
			layers = append(layers, u.Layers...)
			if u.Index == layer {
				found = true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("cnn: %s has no unit with index %d (valid: %v)", m.Name, layer, m.Indices())
	}
	return nn.NewSequential(fmt.Sprintf("%s@%d", m.Name, layer), layers...), nil
}

// FeatureDim returns the flattened feature count produced by cutting at the
// given layer — the F fed into NSHD's manifold learner.
func (m *Model) FeatureDim(layer int) (int, error) {
	fe, err := m.Cut(layer)
	if err != nil {
		return 0, err
	}
	shape := fe.OutShape(m.InShape)
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n, nil
}

// CutStats returns the per-sample inference cost of the feature extractor
// cut at the given layer.
func (m *Model) CutStats(layer int) (nn.Stats, error) {
	fe, err := m.Cut(layer)
	if err != nil {
		return nn.Stats{}, err
	}
	return fe.Stats(m.InShape), nil
}

// FullStats returns the per-sample inference cost of the entire CNN.
func (m *Model) FullStats() nn.Stats { return m.full.Stats(m.InShape) }

// Builder constructs a zoo model for a class count with a seeded RNG.
type Builder func(rng *tensor.RNG, classes int) *Model

// registry of zoo models, keyed by the names used throughout the paper.
var registry = map[string]Builder{
	"vgg16":       NewVGG16,
	"mobilenetv2": NewMobileNetV2,
	"effnetb0":    NewEfficientNetB0,
	"effnetb7":    NewEfficientNetB7,
}

// Names returns the registered model names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs a registered model by name.
func Build(name string, rng *tensor.RNG, classes int) (*Model, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cnn: unknown model %q (have %v)", name, Names())
	}
	return b(rng, classes), nil
}

// PaperLayers returns the cut-layer indices the paper evaluates per model
// (Figs. 4-8, Table II).
func PaperLayers(name string) []int {
	switch name {
	case "vgg16":
		return []int{27, 29}
	case "mobilenetv2":
		return []int{14, 17}
	case "effnetb0":
		return []int{5, 6, 7, 8}
	case "effnetb7":
		return []int{6, 7, 8}
	default:
		return nil
	}
}
