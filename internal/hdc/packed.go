package hdc

import (
	"fmt"
	"math/bits"

	"nshd/internal/tensor"
)

// PackedHV stores a bipolar hypervector one bit per dimension (+1 → 0 bit,
// -1 → 1 bit) in uint64 words. For bipolar vectors,
//
//	dot(a, b) = D - 2·hamming(a, b)
//
// so similarity reduces to XOR + popcount, the binary kernel the paper runs
// in GPU constant memory and on the FPGA DPU.
type PackedHV struct {
	D     int
	Words []uint64
}

// NewPackedHV allocates an all-(+1) packed hypervector of dimension d.
func NewPackedHV(d int) *PackedHV {
	return &PackedHV{D: d, Words: make([]uint64, (d+63)/64)}
}

// PackHV packs a dense hypervector (components interpreted through sign,
// with sign(0) = +1) into bit form.
func PackHV(h Hypervector) *PackedHV {
	p := NewPackedHV(len(h))
	PackRowInto(p.Words, h)
	return p
}

// PackRowInto sign-packs a dense row into words (bit i set iff row[i] < 0,
// so sign(0) = +1 as everywhere else). words must hold (len(row)+63)/64
// entries; the tail bits of the last word are left zero, which keeps Hamming
// and PackedDot exact for any D. This is the fast path for packing whole
// query batches — on amd64 it extracts sign bits 8 floats at a time.
func PackRowInto(words []uint64, row []float32) {
	tensor.PackSignsInto(words, row)
}

// RandomPacked samples a uniform packed bipolar hypervector.
func RandomPacked(rng *tensor.RNG, d int) *PackedHV {
	p := NewPackedHV(d)
	for i := range p.Words {
		p.Words[i] = rng.Uint64()
	}
	// Mask tail bits beyond D so Hamming never counts them.
	if tail := d % 64; tail != 0 {
		p.Words[len(p.Words)-1] &= (1 << tail) - 1
	}
	return p
}

// Unpack expands the packed form back to a dense bipolar hypervector.
func (p *PackedHV) Unpack() Hypervector {
	h := NewHypervector(p.D)
	for i := 0; i < p.D; i++ {
		if p.Words[i/64]>>(i%64)&1 == 1 {
			h[i] = -1
		} else {
			h[i] = 1
		}
	}
	return h
}

// Bit returns the dense value (+1 or -1) of dimension i.
func (p *PackedHV) Bit(i int) float32 {
	if p.Words[i/64]>>(i%64)&1 == 1 {
		return -1
	}
	return 1
}

// Hamming returns the number of differing dimensions between a and b.
func Hamming(a, b *PackedHV) int {
	if a.D != b.D {
		panic(fmt.Sprintf("hdc: Hamming dimension mismatch %d vs %d", a.D, b.D))
	}
	n := 0
	for i, w := range a.Words {
		n += bits.OnesCount64(w ^ b.Words[i])
	}
	return n
}

// PackedDot returns the bipolar dot product via popcount: D - 2·hamming.
func PackedDot(a, b *PackedHV) int {
	return a.D - 2*Hamming(a, b)
}

// XorBind returns the packed binding a ⊗ b. For bipolar vectors elementwise
// multiplication is exactly XOR in sign-bit space.
func XorBind(a, b *PackedHV) *PackedHV {
	if a.D != b.D {
		panic("hdc: XorBind dimension mismatch")
	}
	out := NewPackedHV(a.D)
	for i := range out.Words {
		out.Words[i] = a.Words[i] ^ b.Words[i]
	}
	return out
}

// PackedAccumulate adds the bipolar expansion of p into acc (a dense
// accumulator), optionally scaled: acc += s·unpack(p). This is the
// "no multiplication, only add/sub by sign bit" kernel from Sec. VI-A.
func PackedAccumulate(acc Hypervector, s float32, p *PackedHV) {
	if len(acc) != p.D {
		panic("hdc: PackedAccumulate dimension mismatch")
	}
	for w, word := range p.Words {
		base := w * 64
		limit := p.D - base
		if limit > 64 {
			limit = 64
		}
		for b := 0; b < limit; b++ {
			if word>>(b)&1 == 1 {
				acc[base+b] -= s
			} else {
				acc[base+b] += s
			}
		}
	}
}

// PackedMatrix is a row-major matrix of packed hypervectors, used for the
// binary random projection P ([F rows][D bits]) and for class hypervector
// sets in the quantized inference path.
type PackedMatrix struct {
	Rows, D int
	HVs     []*PackedHV
}

// NewPackedMatrix packs each row of a dense [rows, d] tensor.
func NewPackedMatrix(m *tensor.Tensor) *PackedMatrix {
	if m.Rank() != 2 {
		panic("hdc: NewPackedMatrix requires rank-2 tensor")
	}
	rows, d := m.Shape[0], m.Shape[1]
	pm := &PackedMatrix{Rows: rows, D: d, HVs: make([]*PackedHV, rows)}
	for r := 0; r < rows; r++ {
		pm.HVs[r] = PackHV(Hypervector(m.Row(r)))
	}
	return pm
}

// Row returns packed row r.
func (pm *PackedMatrix) Row(r int) *PackedHV { return pm.HVs[r] }

// MemoryBytes returns the storage footprint of the packed matrix.
func (pm *PackedMatrix) MemoryBytes() int64 {
	return int64(pm.Rows) * int64((pm.D+63)/64) * 8
}
