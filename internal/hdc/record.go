package hdc

import (
	"fmt"

	"nshd/internal/tensor"
)

// RecordEncoder implements the classic ID-level ("record-based") encoding
// used by VoiceHD and the early HD learning systems the paper cites
// (Sec. II, ref [12]): each feature position gets a random ID hypervector,
// each feature value is quantized onto a correlated level hypervector, and
// the sample is the sign-bundle of position⊗level bindings:
//
//	H = sign( Σ_f ID_f ⊗ L(v_f) )
//
// Compared to random projection it is value-quantized and hardware-trivial,
// but loses fine-grained magnitude information — one reason the field moved
// to projection/non-linear encodings for dense features.
type RecordEncoder struct {
	F, D   int
	Levels *LevelMemory
	ids    []Hypervector
}

// NewRecordEncoder constructs an encoder for F features over [lo, hi] with
// the given number of quantization levels.
func NewRecordEncoder(rng *tensor.RNG, f, d, levels int, lo, hi float64) *RecordEncoder {
	if f < 1 {
		panic(fmt.Sprintf("hdc: RecordEncoder with %d features", f))
	}
	re := &RecordEncoder{
		F: f, D: d,
		Levels: NewLevelMemory(rng, d, levels, lo, hi),
		ids:    make([]Hypervector, f),
	}
	for i := range re.ids {
		re.ids[i] = RandomBipolar(rng, d)
	}
	return re
}

// Encode maps one feature vector to a bipolar hypervector.
func (re *RecordEncoder) Encode(v []float32) Hypervector {
	if len(v) != re.F {
		panic(fmt.Sprintf("hdc: record Encode got %d features, want %d", len(v), re.F))
	}
	acc := NewHypervector(re.D)
	for f, val := range v {
		lvl := re.Levels.Encode(float64(val))
		id := re.ids[f]
		for i := range acc {
			acc[i] += id[i] * lvl[i]
		}
	}
	acc.Sign()
	return acc
}

// EncodeBatch encodes a [N, F] feature matrix into [N, D].
func (re *RecordEncoder) EncodeBatch(features *tensor.Tensor) *tensor.Tensor {
	if features.Rank() != 2 || features.Shape[1] != re.F {
		panic(fmt.Sprintf("hdc: record EncodeBatch expects [N %d], got %v", re.F, features.Shape))
	}
	n := features.Shape[0]
	out := tensor.New(n, re.D)
	tensor.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), re.Encode(features.Row(i)))
		}
	})
	return out
}

// EncodeMACs reports the per-sample cost under the paper's convention: the
// F·D binding multiplies (level lookup is free).
func (re *RecordEncoder) EncodeMACs() int64 { return int64(re.F) * int64(re.D) }
