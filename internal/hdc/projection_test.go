package hdc

import (
	"testing"

	"nshd/internal/tensor"
)

// awkward (F, D, N) triples: dimensions off the GEMM's 256-wide blocks and
// 16-wide strips, single samples, empty batches.
var encodeShapes = []struct{ f, d, n int }{
	{33, 70, 5},   // D below one strip's word, ragged
	{100, 257, 1}, // one column past the NC block, single sample
	{100, 256, 4}, // exactly one NC block
	{17, 100, 0},  // empty batch
	{257, 530, 3}, // F spans two K blocks with remainder
	{5, 15, 2},    // D below one strip: pure Go tail
	{100, 3000, 1}, // paper shape, single-sample serving case
}

// TestEncodeBatchIntoAgreesAtAwkwardShapes: the serial serving encode and
// the parallel training encode produce bit-identical raw and signed outputs
// at shapes that exercise every kernel tail.
func TestEncodeBatchIntoAgreesAtAwkwardShapes(t *testing.T) {
	for _, s := range encodeShapes {
		pr := NewSeededProjection(int64(s.f+s.d), s.f, s.d)
		features := tensor.New(s.n, s.f)
		tensor.NewRNG(11).FillNormal(features, 0, 1)

		wantRaw, wantSigned := pr.EncodeBatch(features)

		raw := tensor.New(s.n, s.d)
		signed := tensor.New(s.n, s.d)
		scratch := make([]float32, tensor.GemmScratch())
		pr.EncodeBatchInto(features, raw, signed, scratch)
		for i := range wantRaw.Data {
			if raw.Data[i] != wantRaw.Data[i] {
				t.Fatalf("F=%d D=%d N=%d: raw differs at %d", s.f, s.d, s.n, i)
			}
			if signed.Data[i] != wantSigned.Data[i] {
				t.Fatalf("F=%d D=%d N=%d: signed differs at %d", s.f, s.d, s.n, i)
			}
		}

		// Aliased form: signed overwrites raw in place.
		aliased := tensor.New(s.n, s.d)
		pr.EncodeBatchInto(features, aliased, aliased, scratch)
		for i := range wantSigned.Data {
			if aliased.Data[i] != wantSigned.Data[i] {
				t.Fatalf("F=%d D=%d N=%d: aliased signed differs at %d", s.f, s.d, s.n, i)
			}
		}
	}
}

// TestEncodeBatchRematMatchesStored: encoding through rematerialized panels
// (the stored P never read) is bit-identical to the stored-matrix encode at
// every awkward shape.
func TestEncodeBatchRematMatchesStored(t *testing.T) {
	for _, s := range encodeShapes {
		pr := NewSeededProjection(int64(3*s.f+s.d), s.f, s.d)
		features := tensor.New(s.n, s.f)
		tensor.NewRNG(7).FillNormal(features, 0, 1)

		wantRaw := tensor.New(s.n, s.d)
		wantSigned := tensor.New(s.n, s.d)
		pr.EncodeBatchInto(features, wantRaw, wantSigned, make([]float32, tensor.GemmScratch()))

		raw := tensor.New(s.n, s.d)
		signed := tensor.New(s.n, s.d)
		pr.EncodeBatchRematInto(features, raw, signed, make([]float32, tensor.PanelScratch()))
		for i := range wantRaw.Data {
			if raw.Data[i] != wantRaw.Data[i] {
				t.Fatalf("F=%d D=%d N=%d: remat raw differs at %d", s.f, s.d, s.n, i)
			}
			if signed.Data[i] != wantSigned.Data[i] {
				t.Fatalf("F=%d D=%d N=%d: remat signed differs at %d", s.f, s.d, s.n, i)
			}
		}
	}
}

// TestSeededProjectionDeterminism: the seed fully defines the matrix, the
// generator regenerates it exactly, and serving bytes collapse to the seed.
func TestSeededProjectionDeterminism(t *testing.T) {
	a := NewSeededProjection(123, 40, 333)
	b := NewSeededProjection(123, 40, 333)
	for i := range a.P.Data {
		if a.P.Data[i] != b.P.Data[i] {
			t.Fatalf("same seed, different matrices at %d", i)
		}
	}
	regen := tensor.New(40, 333)
	a.Gen().FillInto(regen)
	for i := range a.P.Data {
		if regen.Data[i] != a.P.Data[i] {
			t.Fatalf("generator disagrees with stored P at %d", i)
		}
	}
	if got := a.ServingBytes(true); got != 8 {
		t.Fatalf("seeded ServingBytes(remat) = %d, want 8", got)
	}
	if got := a.ServingBytes(false); got != 40*333*4 {
		t.Fatalf("ServingBytes(stored) = %d, want %d", got, 40*333*4)
	}
	rng := tensor.NewRNG(9)
	unseeded := NewProjection(rng, 10, 64)
	if unseeded.Gen() != nil {
		t.Fatal("unseeded projection returned a generator")
	}
	if got := unseeded.ServingBytes(true); got != 10*64*4 {
		t.Fatalf("unseeded ServingBytes(remat) = %d, want dense %d", got, 10*64*4)
	}
}
