package hdc

import (
	"fmt"
	"math"

	"nshd/internal/tensor"
)

// NonlinearEncoder implements the state-of-the-art non-linear encoding the
// paper benchmarks VanillaHD with (Sec. I, citing Imani et al.): a random
// Fourier-feature map
//
//	H_i = sign(cos(V·W_i + b_i))
//
// with Gaussian W and uniform phase b. Unlike random projection it captures
// non-linear feature interactions, yet still fails on raw image pixels —
// which is exactly the motivating observation of the paper.
type NonlinearEncoder struct {
	F, D  int
	W     *tensor.Tensor // [F, D] Gaussian
	Phase []float32      // [D] uniform in [0, 2π)
	Sigma float64
}

// NewNonlinearEncoder samples a seeded non-linear encoder. sigma scales the
// Gaussian bandwidth; 1.0 is the customary default.
func NewNonlinearEncoder(rng *tensor.RNG, f, d int, sigma float64) *NonlinearEncoder {
	if sigma <= 0 {
		panic("hdc: NewNonlinearEncoder requires positive sigma")
	}
	w := tensor.New(f, d)
	rng.FillNormal(w, 0, float32(sigma))
	phase := make([]float32, d)
	for i := range phase {
		phase[i] = float32(rng.Float64() * 2 * math.Pi)
	}
	return &NonlinearEncoder{F: f, D: d, W: w, Phase: phase, Sigma: sigma}
}

// Encode maps one feature vector to a bipolar hypervector.
func (ne *NonlinearEncoder) Encode(v []float32) Hypervector {
	if len(v) != ne.F {
		panic(fmt.Sprintf("hdc: nonlinear Encode got %d features, want %d", len(v), ne.F))
	}
	h := NewHypervector(ne.D)
	for f, val := range v {
		if val == 0 {
			continue
		}
		row := ne.W.Row(f)
		for i, w := range row {
			h[i] += val * w
		}
	}
	for i := range h {
		c := math.Cos(float64(h[i] + ne.Phase[i]))
		if c < 0 {
			h[i] = -1
		} else {
			h[i] = 1
		}
	}
	return h
}

// EncodeBatch encodes a [N, F] feature matrix into a [N, D] bipolar tensor.
func (ne *NonlinearEncoder) EncodeBatch(features *tensor.Tensor) *tensor.Tensor {
	if features.Rank() != 2 || features.Shape[1] != ne.F {
		panic(fmt.Sprintf("hdc: nonlinear EncodeBatch expects [N %d], got %v", ne.F, features.Shape))
	}
	z := tensor.MatMul(features, ne.W) // [N, D]
	for i := range z.Data {
		idx := i % ne.D
		c := math.Cos(float64(z.Data[i] + ne.Phase[idx]))
		if c < 0 {
			z.Data[i] = -1
		} else {
			z.Data[i] = 1
		}
	}
	return z
}

// EncodeMACs returns per-sample encoding cost: the F·D projection product
// (the cos/sign post-processing is not a MAC).
func (ne *NonlinearEncoder) EncodeMACs() int64 { return int64(ne.F) * int64(ne.D) }
