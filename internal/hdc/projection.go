package hdc

import (
	"fmt"

	"nshd/internal/tensor"
)

// Projection is the binary random-projection encoder Φ_P of Sec. IV-B:
// F bipolar base hypervectors of dimension D stacked as a [F, D] matrix.
//
//	Φ_P(V) = sign(V₁⊗P₁ ⊕ ... ⊕ V_F⊗P_F) = sign(Vᵀ P)
//
// Because each feature value scalar-binds (scales) its base hypervector and
// bundling is addition, the whole encoding is one matrix product against a
// ±1 matrix — which hardware realizes as additions/subtractions only.
type Projection struct {
	F, D int
	// P is the dense [F, D] bipolar matrix.
	P *tensor.Tensor
	// Packed holds the same rows bit-packed for binary kernels.
	Packed *PackedMatrix
	// Seeded marks a projection whose matrix is DEFINED by Seed through
	// tensor.BipolarGen: any row, tile or GEMM panel of P can be
	// regenerated on demand, bit-identical to the stored matrix, so a
	// serving engine needs only the seed (see EncodeBatchRematInto).
	Seeded bool
	Seed   int64
	// ColOff and FullD describe a dimension shard: this projection holds
	// hypervector columns [ColOff, ColOff+D) of a full [F, FullD] projection.
	// Both are zero on an unsliced projection (FullD == 0 means "D is the
	// full dimension"), which keeps gob-encoded models from earlier versions
	// loading unchanged.
	ColOff int
	FullD  int
	// KeepBlocks, KeepBlock and KeepFullD describe a dimension-pruned
	// projection built by GatherBlocks: this projection's columns are the
	// concatenation of the listed KeepBlock-wide column blocks of the
	// original [F, KeepFullD] matrix. KeepBlocks is nil on an unpruned
	// projection.
	KeepBlocks []int
	KeepBlock  int
	KeepFullD  int
}

// FullDim returns the dimension of the full (unsliced) projection this one
// was cut from — D itself when unsliced.
func (pr *Projection) FullDim() int {
	if pr.FullD == 0 {
		return pr.D
	}
	return pr.FullD
}

// Slice returns the dimension shard holding hypervector columns [lo, hi):
// a [F, hi−lo] projection whose matrix is exactly those columns of pr.P,
// with the seed preserved so a seeded shard can rematerialize its own
// columns from the shared 8 bytes (Gen returns the sliced generator).
// Slicing a slice composes; offsets are tracked relative to the original
// full projection.
func (pr *Projection) Slice(lo, hi int) *Projection {
	if pr.KeepBlocks != nil && !(lo == 0 && hi == pr.D) {
		panic("hdc: Projection.Slice on a pruned projection")
	}
	if lo < 0 || hi > pr.D || lo >= hi {
		panic(fmt.Sprintf("hdc: Projection.Slice [%d, %d) out of [0, %d)", lo, hi, pr.D))
	}
	if lo == 0 && hi == pr.D {
		return pr
	}
	p := tensor.SliceCols(pr.P, lo, hi)
	return &Projection{
		F: pr.F, D: hi - lo,
		P:      p,
		Packed: NewPackedMatrix(p),
		Seeded: pr.Seeded,
		Seed:   pr.Seed,
		ColOff: pr.ColOff + lo,
		FullD:  pr.FullDim(),
	}
}

// NewProjection samples a seeded random projection for F features into
// dimension D.
func NewProjection(rng *tensor.RNG, f, d int) *Projection {
	if f <= 0 || d <= 0 {
		panic(fmt.Sprintf("hdc: NewProjection with F=%d D=%d", f, d))
	}
	p := tensor.New(f, d)
	rng.FillBipolar(p)
	return &Projection{F: f, D: d, P: p, Packed: NewPackedMatrix(p)}
}

// NewSeededProjection constructs the projection whose matrix is the seeded
// bipolar generator's [F, D] matrix. The dense P and packed forms are
// materialized for the training-side kernels (decode, packed binding);
// serving paths can instead rematerialize panels from the seed alone, which
// collapses the encoder's model bytes from O(F·D) to the 8-byte seed.
func NewSeededProjection(seed int64, f, d int) *Projection {
	if f <= 0 || d <= 0 {
		panic(fmt.Sprintf("hdc: NewSeededProjection with F=%d D=%d", f, d))
	}
	p := tensor.New(f, d)
	tensor.NewBipolarGen(seed, f, d).FillInto(p)
	return &Projection{F: f, D: d, P: p, Packed: NewPackedMatrix(p), Seeded: true, Seed: seed}
}

// Gen returns the defining generator of a seeded projection, nil otherwise.
// For a dimension shard the generator is the matching column slice of the
// full matrix's generator, and for a pruned projection the matching block
// gather, so rematerialized panels reproduce exactly this projection's
// columns.
func (pr *Projection) Gen() *tensor.BipolarGen {
	if !pr.Seeded {
		return nil
	}
	if pr.KeepBlocks != nil {
		g := tensor.NewBipolarGen(pr.Seed, pr.F, pr.KeepFullD)
		return g.GatherBlocks(pr.KeepBlocks, pr.KeepBlock)
	}
	g := tensor.NewBipolarGen(pr.Seed, pr.F, pr.FullDim())
	if pr.FullD != 0 {
		g = g.SliceCols(pr.ColOff, pr.ColOff+pr.D)
	}
	return g
}

// GatherBlocks returns the dimension-pruned projection keeping the listed
// ascending `block`-wide column blocks of pr (see
// tensor.BipolarGen.GatherBlocks for the alignment contract). The dense and
// packed forms are gathered copies; a seeded projection stays seeded, with
// Gen() returning the gathered generator, so a pruned engine can still
// rematerialize its surviving columns from the original seed. Pruning a
// shard or an already-pruned projection is not supported — pruned engines
// opt out of dimension sharding (the kept set breaks the contiguous [0, D)
// tiling MergeScores validates).
func (pr *Projection) GatherBlocks(keep []int, block int) *Projection {
	if pr.FullD != 0 || pr.ColOff != 0 || pr.KeepBlocks != nil {
		panic("hdc: Projection.GatherBlocks on a sharded or pruned projection")
	}
	p := tensor.GatherColBlocks(pr.P, keep, block)
	return &Projection{
		F: pr.F, D: p.Shape[1],
		P:          p,
		Packed:     NewPackedMatrix(p),
		Seeded:     pr.Seeded,
		Seed:       pr.Seed,
		KeepBlocks: append([]int(nil), keep...),
		KeepBlock:  block,
		KeepFullD:  pr.D,
	}
}

// Encode maps one feature vector to its hypervector. It returns both the
// raw (pre-sign) bundle — needed by training procedures that backpropagate
// through the encoder — and the bipolar quantization.
func (pr *Projection) Encode(v []float32) (raw, signed Hypervector) {
	if len(v) != pr.F {
		panic(fmt.Sprintf("hdc: Encode got %d features, projection has F=%d", len(v), pr.F))
	}
	raw = NewHypervector(pr.D)
	for f, val := range v {
		if val == 0 {
			continue
		}
		row := pr.P.Row(f)
		for i, b := range row {
			raw[i] += val * b
		}
	}
	signed = raw.Clone()
	signed.Sign()
	return raw, signed
}

// EncodeBatch encodes a [N, F] feature matrix, returning raw [N, D] and
// signed [N, D] tensors. The heavy product is parallelized across samples.
func (pr *Projection) EncodeBatch(features *tensor.Tensor) (raw, signed *tensor.Tensor) {
	if features.Rank() != 2 || features.Shape[1] != pr.F {
		panic(fmt.Sprintf("hdc: EncodeBatch expects [N %d], got %v", pr.F, features.Shape))
	}
	raw = tensor.MatMul(features, pr.P)
	signed = tensor.Sign(raw)
	return raw, signed
}

// EncodeBatchInto is the serving form of EncodeBatch: strictly serial,
// writing the pre-sign bundle into raw and the bipolar quantization into
// signed (both [N, D]; signed may alias raw for callers that only need the
// bipolar form). scratch is the GEMM panel buffer (length ≥
// tensor.GemmScratch()). Results are bit-identical to EncodeBatch.
func (pr *Projection) EncodeBatchInto(features, raw, signed *tensor.Tensor, scratch []float32) {
	if features.Rank() != 2 || features.Shape[1] != pr.F {
		panic(fmt.Sprintf("hdc: EncodeBatchInto expects [N %d], got %v", pr.F, features.Shape))
	}
	tensor.MatMulSerialInto(raw, features, pr.P, scratch)
	tensor.SignInto(signed, raw)
}

// PrepackedPanels returns P converted once into the blocked GEMM's panel
// form. Products against the result skip the per-call panel packing pass —
// at batch 1 that pass dominates the whole projection GEMM — and need no
// scratch. Results are bit-identical to EncodeBatchInto (the panel kernel
// runs the serial GEMM's exact schedule).
func (pr *Projection) PrepackedPanels() *tensor.ProjPanels {
	return tensor.PrepackPanels(pr.P)
}

// EncodeBatchPanelsInto is EncodeBatchInto against panels prepacked from
// this projection's P (see PrepackedPanels). Strictly serial, zero
// allocations, zero scratch; bit-identical to EncodeBatchInto.
func (pr *Projection) EncodeBatchPanelsInto(features, raw, signed *tensor.Tensor, pp *tensor.ProjPanels) {
	if features.Rank() != 2 || features.Shape[1] != pr.F {
		panic(fmt.Sprintf("hdc: EncodeBatchPanelsInto expects [N %d], got %v", pr.F, features.Shape))
	}
	tensor.MatMulPanelsInto(raw, features, pp, nil)
	tensor.SignInto(signed, raw)
}

// EncodeBatchRematInto is EncodeBatchInto with the projection matrix
// rematerialized from the seed inside the GEMM's panel step: P is never
// read (or needed). Results are bit-identical to EncodeBatchInto — the
// panel kernel reproduces the serial GEMM's exact accumulation schedule.
// Only valid on a seeded projection. scratch needs tensor.PanelScratch()
// floats.
func (pr *Projection) EncodeBatchRematInto(features, raw, signed *tensor.Tensor, scratch []float32) {
	if !pr.Seeded {
		panic("hdc: EncodeBatchRematInto on an unseeded projection")
	}
	if features.Rank() != 2 || features.Shape[1] != pr.F {
		panic(fmt.Sprintf("hdc: EncodeBatchRematInto expects [N %d], got %v", pr.F, features.Shape))
	}
	tensor.MatMulPanelsInto(raw, features, tensor.RematPanels(pr.Gen()), scratch)
	tensor.SignInto(signed, raw)
}

// Decode estimates the feature-space preimage of a hypervector: since the
// rows of P are quasi-orthogonal with ⟨P_f, P_f⟩ = D, the least-squares
// estimate of V from H ≈ Vᵀ P is (1/D)·P·H. This is the HD decoding used to
// backpropagate class-hypervector errors into the manifold layer (Sec. V-C).
// It routes through DecodeBatch on a one-row view, so single-vector decoding
// runs the same blocked-GEMM kernel as the batch path.
func (pr *Projection) Decode(h Hypervector) []float32 {
	if len(h) != pr.D {
		panic(fmt.Sprintf("hdc: Decode got dimension %d, projection has D=%d", len(h), pr.D))
	}
	return pr.DecodeBatch(tensor.FromSlice(h, 1, pr.D)).Data
}

// DecodeBatch decodes a [K, D] matrix of hypervectors into [K, F] feature-
// space estimates: (1/D)·E·Pᵀ.
func (pr *Projection) DecodeBatch(e *tensor.Tensor) *tensor.Tensor {
	if e.Rank() != 2 || e.Shape[1] != pr.D {
		panic(fmt.Sprintf("hdc: DecodeBatch expects [K %d], got %v", pr.D, e.Shape))
	}
	out := tensor.MatMulT(e, pr.P) // [K, F]
	out.Scale(1 / float32(pr.D))
	return out
}

// EncodeMACs returns the multiply-accumulate count of one encoding under the
// paper's convention (binding = elementwise multiply, bundling = add):
// F·D MACs per sample.
func (pr *Projection) EncodeMACs() int64 { return int64(pr.F) * int64(pr.D) }

// MemoryBytes reports the projection's storage in the given representation.
func (pr *Projection) MemoryBytes(packed bool) int64 {
	if packed {
		return pr.Packed.MemoryBytes()
	}
	return int64(pr.F) * int64(pr.D) * 4
}

// ServingBytes reports what a serving engine must keep resident for the
// encoder: the 8-byte seed when rematerializing from a seeded projection,
// the dense matrix otherwise.
func (pr *Projection) ServingBytes(remat bool) int64 {
	if remat && pr.Seeded {
		return 8
	}
	return int64(pr.F) * int64(pr.D) * 4
}
