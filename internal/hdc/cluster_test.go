package hdc

import (
	"testing"

	"nshd/internal/tensor"
)

// clusterBlobs builds k groups of hypervectors around random prototypes.
func clusterBlobs(seed int64, k, perCluster, d int, flip float64) (*tensor.Tensor, []int) {
	rng := tensor.NewRNG(seed)
	protos := make([]Hypervector, k)
	for i := range protos {
		protos[i] = RandomBipolar(rng, d)
	}
	n := k * perCluster
	hvs := tensor.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		y := i % k
		labels[i] = y
		row := hvs.Row(i)
		copy(row, protos[y])
		for j := range row {
			if rng.Float64() < flip {
				row[j] = -row[j]
			}
		}
	}
	return hvs, labels
}

func TestKMeansRecoversClusters(t *testing.T) {
	hvs, labels := clusterBlobs(1, 4, 30, 2048, 0.2)
	km, err := NewKMeans(tensor.NewRNG(2), hvs, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := km.Fit(hvs, 20)
	if res.Moved != 0 {
		t.Fatalf("did not converge in 20 iters (moved %d)", res.Moved)
	}
	if purity := Purity(res.Assignments, labels, 4); purity < 0.95 {
		t.Fatalf("cluster purity %v on well-separated blobs", purity)
	}
}

func TestKMeansValidation(t *testing.T) {
	hvs := tensor.New(5, 64)
	if _, err := NewKMeans(tensor.NewRNG(3), hvs, 1); err == nil {
		t.Fatal("expected k<2 rejection")
	}
	if _, err := NewKMeans(tensor.NewRNG(3), hvs, 9); err == nil {
		t.Fatal("expected k>n rejection")
	}
	if _, err := NewKMeans(tensor.NewRNG(3), tensor.New(8), 2); err == nil {
		t.Fatal("expected rank rejection")
	}
}

func TestPurityBounds(t *testing.T) {
	// Perfect assignment.
	if p := Purity([]int{0, 0, 1, 1}, []int{3, 3, 5, 5}, 2); p != 1 {
		t.Fatalf("perfect purity = %v", p)
	}
	// Everything in one cluster: purity = majority fraction.
	if p := Purity([]int{0, 0, 0, 0}, []int{1, 1, 2, 3}, 2); p != 0.5 {
		t.Fatalf("degenerate purity = %v", p)
	}
	if Purity(nil, nil, 2) != 0 {
		t.Fatal("empty inputs must yield 0")
	}
}
