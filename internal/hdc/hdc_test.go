package hdc

import (
	"math"
	"testing"
	"testing/quick"

	"nshd/internal/tensor"
)

const testD = 2048

func TestRandomBipolarIsBipolar(t *testing.T) {
	h := RandomBipolar(tensor.NewRNG(1), testD)
	if !h.IsBipolar() {
		t.Fatal("RandomBipolar must produce ±1 components")
	}
	// Roughly balanced.
	var s float64
	for _, v := range h {
		s += float64(v)
	}
	if math.Abs(s)/testD > 0.1 {
		t.Fatalf("random hypervector unbalanced: mean %v", s/testD)
	}
}

func TestQuasiOrthogonality(t *testing.T) {
	// Independent random hypervectors must have |normalized dot| ≈ 0 with
	// std 1/sqrt(D); allow 5 sigma.
	rng := tensor.NewRNG(2)
	bound := 5.0 / math.Sqrt(testD)
	for trial := 0; trial < 20; trial++ {
		a, b := RandomBipolar(rng, testD), RandomBipolar(rng, testD)
		if sim := NormalizedDot(a, b); math.Abs(sim) > bound {
			t.Fatalf("trial %d: unrelated hypervectors too similar: %v", trial, sim)
		}
	}
}

func TestBindSelfInverse(t *testing.T) {
	rng := tensor.NewRNG(3)
	a, b := RandomBipolar(rng, testD), RandomBipolar(rng, testD)
	got := Bind(a, Bind(a, b))
	for i := range b {
		if got[i] != b[i] {
			t.Fatal("a ⊗ (a ⊗ b) must equal b for bipolar vectors")
		}
	}
}

func TestBindQuasiOrthogonalToInputs(t *testing.T) {
	rng := tensor.NewRNG(4)
	a, b := RandomBipolar(rng, testD), RandomBipolar(rng, testD)
	bound := 5.0 / math.Sqrt(testD)
	ab := Bind(a, b)
	if s := math.Abs(NormalizedDot(ab, a)); s > bound {
		t.Fatalf("binding not orthogonal to operand: %v", s)
	}
}

func TestBindPreservesSimilarity(t *testing.T) {
	// δ(a⊗c, b⊗c) == δ(a, b) exactly for bipolar c.
	rng := tensor.NewRNG(5)
	a, b, c := RandomBipolar(rng, testD), RandomBipolar(rng, testD), RandomBipolar(rng, testD)
	if Dot(Bind(a, c), Bind(b, c)) != Dot(a, b) {
		t.Fatal("binding with a common vector must preserve dot products")
	}
}

func TestBundleSimilarToInputs(t *testing.T) {
	rng := tensor.NewRNG(6)
	hvs := make([]Hypervector, 5)
	for i := range hvs {
		hvs[i] = RandomBipolar(rng, testD)
	}
	sum := Bundle(hvs...)
	sum.Sign()
	for i, h := range hvs {
		sim := NormalizedDot(sum, h)
		// Expected similarity of a sign-bundle of 5 to each input ≈ 0.37.
		if sim < 0.2 {
			t.Fatalf("bundle not similar to input %d: %v", i, sim)
		}
	}
	// And dissimilar to an unrelated vector.
	other := RandomBipolar(rng, testD)
	if s := math.Abs(NormalizedDot(sum, other)); s > 0.12 {
		t.Fatalf("bundle similar to unrelated vector: %v", s)
	}
}

func TestWeightedBundleInto(t *testing.T) {
	acc := NewHypervector(4)
	src := Hypervector{1, -1, 1, -1}
	WeightedBundleInto(acc, 0.5, src)
	WeightedBundleInto(acc, -1.5, src)
	for i := range acc {
		want := float32(-1.0) * src[i]
		if acc[i] != want {
			t.Fatalf("acc[%d] = %v, want %v", i, acc[i], want)
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(7)
	h := RandomBipolar(rng, 257) // prime-ish length, exercises wrap
	for _, k := range []int{0, 1, 100, 257, 300, -3} {
		back := Permute(Permute(h, k), -k)
		for i := range h {
			if back[i] != h[i] {
				t.Fatalf("permute round-trip failed for k=%d", k)
			}
		}
	}
}

func TestPermutePreservesPairwiseDot(t *testing.T) {
	rng := tensor.NewRNG(8)
	a, b := RandomBipolar(rng, testD), RandomBipolar(rng, testD)
	if Dot(Permute(a, 17), Permute(b, 17)) != Dot(a, b) {
		t.Fatal("permutation must preserve pairwise similarity")
	}
	// And decorrelate against the unpermuted self.
	if s := math.Abs(NormalizedDot(Permute(a, 17), a)); s > 5.0/math.Sqrt(testD) {
		t.Fatalf("permuted vector still similar to original: %v", s)
	}
}

func TestSignZeroConvention(t *testing.T) {
	h := Hypervector{0, -0.5, 0.5}
	h.Sign()
	if h[0] != 1 || h[1] != -1 || h[2] != 1 {
		t.Fatalf("Sign convention violated: %v", h)
	}
}

func TestCosineBounds(t *testing.T) {
	rng := tensor.NewRNG(9)
	a := RandomBipolar(rng, testD)
	if c := Cosine(a, a); math.Abs(c-1) > 1e-6 {
		t.Fatalf("self-cosine = %v", c)
	}
	neg := a.Clone()
	neg.Scale(-1)
	if c := Cosine(a, neg); math.Abs(c+1) > 1e-6 {
		t.Fatalf("anti-cosine = %v", c)
	}
	if c := Cosine(a, NewHypervector(testD)); c != 0 {
		t.Fatalf("cosine with zero vector = %v", c)
	}
}

// --- packed representation ---

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(10)
	for _, d := range []int{1, 63, 64, 65, 1000, testD} {
		h := RandomBipolar(rng, d)
		got := PackHV(h).Unpack()
		for i := range h {
			if got[i] != h[i] {
				t.Fatalf("pack/unpack mismatch at d=%d i=%d", d, i)
			}
		}
	}
}

func TestPackedDotMatchesDense(t *testing.T) {
	rng := tensor.NewRNG(11)
	for _, d := range []int{64, 100, 1001, testD} {
		a, b := RandomBipolar(rng, d), RandomBipolar(rng, d)
		dense := int(Dot(a, b))
		packed := PackedDot(PackHV(a), PackHV(b))
		if dense != packed {
			t.Fatalf("d=%d: packed dot %d != dense %d", d, packed, dense)
		}
	}
}

func TestHammingDotIdentity(t *testing.T) {
	rng := tensor.NewRNG(12)
	a, b := RandomPacked(rng, 777), RandomPacked(rng, 777)
	if got := PackedDot(a, b); got != 777-2*Hamming(a, b) {
		t.Fatal("dot = D - 2·hamming identity violated")
	}
}

func TestRandomPackedTailMasked(t *testing.T) {
	rng := tensor.NewRNG(13)
	p := RandomPacked(rng, 70) // 6 tail bits must stay clear
	if p.Words[1]>>(70-64) != 0 {
		t.Fatal("tail bits beyond D must be zero")
	}
	q := NewPackedHV(70)
	if h := Hamming(p, q); h > 70 {
		t.Fatalf("hamming %d exceeds dimension 70", h)
	}
}

func TestXorBindMatchesDenseBind(t *testing.T) {
	rng := tensor.NewRNG(14)
	a, b := RandomBipolar(rng, 200), RandomBipolar(rng, 200)
	want := Bind(a, b)
	got := XorBind(PackHV(a), PackHV(b)).Unpack()
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("XOR binding must equal elementwise product in sign space")
		}
	}
}

func TestPackedAccumulate(t *testing.T) {
	rng := tensor.NewRNG(15)
	h := RandomBipolar(rng, 130)
	acc := NewHypervector(130)
	PackedAccumulate(acc, 2.5, PackHV(h))
	for i := range h {
		if acc[i] != 2.5*h[i] {
			t.Fatalf("PackedAccumulate mismatch at %d: %v vs %v", i, acc[i], 2.5*h[i])
		}
	}
}

func TestPackedMatrixMemory(t *testing.T) {
	m := tensor.New(10, 128)
	m.Fill(1)
	pm := NewPackedMatrix(m)
	if pm.MemoryBytes() != 10*2*8 {
		t.Fatalf("MemoryBytes = %d", pm.MemoryBytes())
	}
	if pm.Row(3).Bit(5) != 1 {
		t.Fatal("all-ones matrix packs to +1 bits")
	}
}

// --- projection encoder ---

func TestProjectionEncodeMatchesDefinition(t *testing.T) {
	rng := tensor.NewRNG(16)
	pr := NewProjection(rng, 5, 64)
	v := []float32{0.3, -1.2, 0, 2, 0.7}
	raw, signed := pr.Encode(v)
	for i := 0; i < 64; i++ {
		var want float32
		for f := 0; f < 5; f++ {
			want += v[f] * pr.P.At(f, i)
		}
		if math.Abs(float64(raw[i]-want)) > 1e-5 {
			t.Fatalf("raw[%d] = %v, want %v", i, raw[i], want)
		}
		wantSign := float32(1)
		if want < 0 {
			wantSign = -1
		}
		if signed[i] != wantSign {
			t.Fatalf("signed[%d] = %v, want %v", i, signed[i], wantSign)
		}
	}
}

func TestProjectionBatchMatchesSingle(t *testing.T) {
	rng := tensor.NewRNG(17)
	pr := NewProjection(rng, 8, 256)
	feats := tensor.New(3, 8)
	tensor.NewRNG(18).FillNormal(feats, 0, 1)
	raw, signed := pr.EncodeBatch(feats)
	for i := 0; i < 3; i++ {
		r1, s1 := pr.Encode(feats.Row(i))
		for j := 0; j < 256; j++ {
			if math.Abs(float64(raw.At(i, j)-r1[j])) > 1e-4 {
				t.Fatalf("batch raw mismatch sample %d dim %d", i, j)
			}
			if signed.At(i, j) != s1[j] {
				t.Fatalf("batch sign mismatch sample %d dim %d", i, j)
			}
		}
	}
}

func TestProjectionDecodeApproximatesInverse(t *testing.T) {
	// decode(raw_encode(v)) = (1/D)·P·Pᵀ·v ≈ v because P Pᵀ ≈ D·I.
	rng := tensor.NewRNG(19)
	pr := NewProjection(rng, 10, 8192)
	v := make([]float32, 10)
	tensor.NewRNG(20).FillNormal(tensor.FromSlice(v, 10), 0, 1)
	raw, _ := pr.Encode(v)
	got := pr.Decode(raw)
	for f := range v {
		if math.Abs(float64(got[f]-v[f])) > 0.25 {
			t.Fatalf("decode[%d] = %v, want ≈ %v", f, got[f], v[f])
		}
	}
}

func TestProjectionDecodeBatchMatchesSingle(t *testing.T) {
	rng := tensor.NewRNG(21)
	pr := NewProjection(rng, 6, 128)
	e := tensor.New(2, 128)
	tensor.NewRNG(22).FillNormal(e, 0, 1)
	batch := pr.DecodeBatch(e)
	for i := 0; i < 2; i++ {
		single := pr.Decode(Hypervector(e.Row(i)))
		for f := 0; f < 6; f++ {
			if math.Abs(float64(batch.At(i, f)-single[f])) > 1e-4 {
				t.Fatalf("decode batch mismatch at %d,%d", i, f)
			}
		}
	}
}

func TestProjectionDeterministicBySeed(t *testing.T) {
	a := NewProjection(tensor.NewRNG(42), 4, 100)
	b := NewProjection(tensor.NewRNG(42), 4, 100)
	for i := range a.P.Data {
		if a.P.Data[i] != b.P.Data[i] {
			t.Fatal("same seed must give same projection")
		}
	}
}

func TestProjectionCosts(t *testing.T) {
	pr := NewProjection(tensor.NewRNG(23), 100, 3000)
	if pr.EncodeMACs() != 300000 {
		t.Fatalf("EncodeMACs = %d", pr.EncodeMACs())
	}
	if pr.MemoryBytes(false) != 100*3000*4 {
		t.Fatalf("dense bytes = %d", pr.MemoryBytes(false))
	}
	if pr.MemoryBytes(true) >= pr.MemoryBytes(false)/30 {
		t.Fatalf("packed bytes %d not ~32x smaller than %d", pr.MemoryBytes(true), pr.MemoryBytes(false))
	}
}

// Property: encoding preserves similarity ordering — nearby feature vectors
// produce more similar hypervectors than far ones.
func TestProjectionLocalityProperty(t *testing.T) {
	rng := tensor.NewRNG(24)
	pr := NewProjection(rng, 16, 4096)
	vrng := tensor.NewRNG(25)
	for trial := 0; trial < 10; trial++ {
		v := make([]float32, 16)
		vrng.FillNormal(tensor.FromSlice(v, 16), 0, 1)
		near := make([]float32, 16)
		far := make([]float32, 16)
		for i := range v {
			near[i] = v[i] + 0.05*float32(vrng.NormFloat64())
			far[i] = float32(vrng.NormFloat64())
		}
		_, hv := pr.Encode(v)
		_, hn := pr.Encode(near)
		_, hf := pr.Encode(far)
		if NormalizedDot(hv, hn) <= NormalizedDot(hv, hf) {
			t.Fatalf("trial %d: encoding does not preserve locality", trial)
		}
	}
}

// --- nonlinear encoder ---

func TestNonlinearEncoderBipolar(t *testing.T) {
	ne := NewNonlinearEncoder(tensor.NewRNG(26), 8, 512, 1)
	v := make([]float32, 8)
	tensor.NewRNG(27).FillNormal(tensor.FromSlice(v, 8), 0, 1)
	h := ne.Encode(v)
	if !h.IsBipolar() {
		t.Fatal("nonlinear encoding must be bipolar")
	}
}

func TestNonlinearBatchMatchesSingle(t *testing.T) {
	ne := NewNonlinearEncoder(tensor.NewRNG(28), 6, 256, 1)
	feats := tensor.New(4, 6)
	tensor.NewRNG(29).FillNormal(feats, 0, 1)
	batch := ne.EncodeBatch(feats)
	for i := 0; i < 4; i++ {
		single := ne.Encode(feats.Row(i))
		for j := 0; j < 256; j++ {
			if batch.At(i, j) != single[j] {
				t.Fatalf("nonlinear batch mismatch sample %d dim %d", i, j)
			}
		}
	}
}

func TestNonlinearLocality(t *testing.T) {
	ne := NewNonlinearEncoder(tensor.NewRNG(30), 16, 4096, 0.5)
	vrng := tensor.NewRNG(31)
	v := make([]float32, 16)
	vrng.FillNormal(tensor.FromSlice(v, 16), 0, 1)
	near := make([]float32, 16)
	far := make([]float32, 16)
	for i := range v {
		near[i] = v[i] + 0.02*float32(vrng.NormFloat64())
		far[i] = float32(vrng.NormFloat64())
	}
	hv, hn, hf := ne.Encode(v), ne.Encode(near), ne.Encode(far)
	if NormalizedDot(hv, hn) <= NormalizedDot(hv, hf) {
		t.Fatal("nonlinear encoding must preserve locality")
	}
}

// --- item and level memories ---

func TestItemMemoryStableAndCleanup(t *testing.T) {
	im := NewItemMemory(tensor.NewRNG(32), testD)
	a := im.Get("apple")
	if got := im.Get("apple"); &got[0] != &a[0] {
		t.Fatal("Get must return the same hypervector for the same name")
	}
	im.Get("banana")
	im.Get("cherry")
	// Corrupt 20% of apple's components; cleanup must still find it.
	noisy := a.Clone()
	rng := tensor.NewRNG(33)
	for i := 0; i < testD/5; i++ {
		idx := rng.Intn(testD)
		noisy[idx] = -noisy[idx]
	}
	name, sim := im.Cleanup(noisy)
	if name != "apple" {
		t.Fatalf("Cleanup = %q, want apple", name)
	}
	if sim < float64(testD)/3 {
		t.Fatalf("cleanup similarity too low: %v", sim)
	}
	if im.Len() != 3 || !im.Has("banana") {
		t.Fatal("memory bookkeeping wrong")
	}
}

func TestLevelMemoryMonotoneDecay(t *testing.T) {
	lm := NewLevelMemory(tensor.NewRNG(34), testD, 8, 0, 1)
	base := lm.Level(0)
	prev := math.Inf(1)
	for i := 1; i < 8; i++ {
		sim := Dot(base, lm.Level(i))
		if sim >= prev {
			t.Fatalf("level similarity must strictly decay: level %d sim %v >= %v", i, sim, prev)
		}
		prev = sim
	}
	// Extremes roughly orthogonal (≈half the dimensions flipped).
	endSim := NormalizedDot(base, lm.Level(7))
	if endSim > 0.3 {
		t.Fatalf("extreme levels too similar: %v", endSim)
	}
}

func TestLevelMemoryQuantize(t *testing.T) {
	lm := NewLevelMemory(tensor.NewRNG(35), 64, 4, 0, 1)
	cases := []struct {
		v    float64
		want int
	}{{-1, 0}, {0, 0}, {0.1, 0}, {0.3, 1}, {0.6, 2}, {0.9, 3}, {1, 3}, {2, 3}}
	for _, c := range cases {
		if got := lm.Quantize(c.v); got != c.want {
			t.Fatalf("Quantize(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Property: bind distributivity over bundle — a ⊗ (b ⊕ c) == (a⊗b) ⊕ (a⊗c).
func TestBindDistributesOverBundleProperty(t *testing.T) {
	rng := tensor.NewRNG(36)
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		a, b, c := RandomBipolar(r, 128), RandomBipolar(r, 128), RandomBipolar(r, 128)
		lhs := Bind(a, Bundle(b, c))
		rhs := Bundle(Bind(a, b), Bind(a, c))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

// Property: permutation distributes over binding — ρ(a ⊗ b) == ρ(a) ⊗ ρ(b).
func TestPermuteDistributesOverBindProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		r := tensor.NewRNG(seed)
		k := int(kRaw % 97)
		a, b := RandomBipolar(r, 97), RandomBipolar(r, 97)
		lhs := Permute(Bind(a, b), k)
		rhs := Bind(Permute(a, k), Permute(b, k))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: packed dot product is symmetric and bounded by ±D.
func TestPackedDotSymmetricBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		d := 65 + int(r.Intn(200))
		a, b := RandomPacked(r, d), RandomPacked(r, d)
		ab, ba := PackedDot(a, b), PackedDot(b, a)
		if ab != ba {
			return false
		}
		if ab < -d || ab > d {
			return false
		}
		// Parity: dot ≡ D (mod 2).
		return (ab-d)%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: bundle similarity is invariant under a common binding key —
// δ(sign(Σhᵢ)⊗k, h₀⊗k) == δ(sign(Σhᵢ), h₀).
func TestBundleBindInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		const d = 256
		h0, h1, h2 := RandomBipolar(r, d), RandomBipolar(r, d), RandomBipolar(r, d)
		key := RandomBipolar(r, d)
		b := Bundle(h0, h1, h2)
		b.Sign()
		lhs := Dot(Bind(b, key), Bind(h0, key))
		rhs := Dot(b, h0)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeBatchIntoMatchesEncodeBatch(t *testing.T) {
	rng := tensor.NewRNG(31)
	pr := NewProjection(rng, 24, 70) // D not divisible by 64
	features := tensor.New(9, 24)
	rng.FillNormal(features, 0, 1)
	wantRaw, wantSigned := pr.EncodeBatch(features)

	raw := tensor.New(9, 70)
	signed := tensor.New(9, 70)
	scratch := make([]float32, tensor.GemmScratch())
	pr.EncodeBatchInto(features, raw, signed, scratch)
	for i := range wantRaw.Data {
		if raw.Data[i] != wantRaw.Data[i] {
			t.Fatalf("raw[%d]=%v, want %v", i, raw.Data[i], wantRaw.Data[i])
		}
		if signed.Data[i] != wantSigned.Data[i] {
			t.Fatalf("signed[%d]=%v, want %v", i, signed.Data[i], wantSigned.Data[i])
		}
	}

	// Aliased form: signed == raw for callers that only keep the bipolar HVs.
	alias := tensor.New(9, 70)
	pr.EncodeBatchInto(features, alias, alias, scratch)
	for i := range wantSigned.Data {
		if alias.Data[i] != wantSigned.Data[i] {
			t.Fatalf("aliased signed[%d]=%v, want %v", i, alias.Data[i], wantSigned.Data[i])
		}
	}

	if a := testing.AllocsPerRun(20, func() {
		pr.EncodeBatchInto(features, raw, signed, scratch)
	}); a != 0 {
		t.Fatalf("EncodeBatchInto allocated %.1f times per run", a)
	}
}
