package hdc

import (
	"fmt"

	"nshd/internal/tensor"
)

// KMeans clusters hypervectors with similarity-based k-means, the HD
// clustering formulation of DUAL (ref [6], the paper's source for the
// non-linear encoder): centroids live in hyperspace, assignment is by
// cosine similarity, and the update re-bundles each cluster's members.
// It demonstrates Sec. III's claim that the symbolic representation serves
// "diverse learning tasks" beyond classification.
type KMeans struct {
	K, D      int
	Centroids *tensor.Tensor // [K, D]
}

// KMeansResult reports one clustering run.
type KMeansResult struct {
	Assignments []int
	Iterations  int
	// Moved is the number of points that changed cluster in the final
	// iteration (0 = converged).
	Moved int
}

// NewKMeans seeds k centroids greedily (k-means++-style for similarity
// spaces): the first seed is a random row, each subsequent seed the point
// least similar to its nearest already-chosen seed — spreading seeds across
// blobs and avoiding the merged-cluster local optimum of uniform seeding.
func NewKMeans(rng *tensor.RNG, hvs *tensor.Tensor, k int) (*KMeans, error) {
	if hvs.Rank() != 2 {
		return nil, fmt.Errorf("hdc: KMeans expects [N D] hypervectors, got %v", hvs.Shape)
	}
	n, d := hvs.Shape[0], hvs.Shape[1]
	if k < 2 || k > n {
		return nil, fmt.Errorf("hdc: k=%d for %d points", k, n)
	}
	km := &KMeans{K: k, D: d, Centroids: tensor.New(k, d)}
	copy(km.Centroids.Row(0), hvs.Row(rng.Intn(n)))
	// maxSim[i] tracks each point's similarity to its closest chosen seed.
	maxSim := make([]float64, n)
	for i := range maxSim {
		maxSim[i] = Cosine(Hypervector(km.Centroids.Row(0)), Hypervector(hvs.Row(i)))
	}
	for c := 1; c < k; c++ {
		farthest, farSim := 0, 2.0
		for i := 0; i < n; i++ {
			if maxSim[i] < farSim {
				farthest, farSim = i, maxSim[i]
			}
		}
		copy(km.Centroids.Row(c), hvs.Row(farthest))
		for i := 0; i < n; i++ {
			if s := Cosine(Hypervector(km.Centroids.Row(c)), Hypervector(hvs.Row(i))); s > maxSim[i] {
				maxSim[i] = s
			}
		}
	}
	return km, nil
}

// Fit runs at most maxIters assignment/update rounds, stopping at
// convergence. Empty clusters are reseeded from the least-similar point.
func (km *KMeans) Fit(hvs *tensor.Tensor, maxIters int) KMeansResult {
	n := hvs.Shape[0]
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := KMeansResult{Assignments: assign}
	for iter := 1; iter <= maxIters; iter++ {
		res.Iterations = iter
		// Assignment step.
		moved := 0
		worstSim, worstIdx := 2.0, 0
		for i := 0; i < n; i++ {
			h := Hypervector(hvs.Row(i))
			best, bestSim := 0, -2.0
			for c := 0; c < km.K; c++ {
				if sim := Cosine(Hypervector(km.Centroids.Row(c)), h); sim > bestSim {
					best, bestSim = c, sim
				}
			}
			if assign[i] != best {
				moved++
				assign[i] = best
			}
			if bestSim < worstSim {
				worstSim, worstIdx = bestSim, i
			}
		}
		res.Moved = moved
		if moved == 0 {
			return res
		}
		// Update step: re-bundle members.
		km.Centroids.Zero()
		counts := make([]int, km.K)
		for i := 0; i < n; i++ {
			BundleInto(Hypervector(km.Centroids.Row(assign[i])), Hypervector(hvs.Row(i)))
			counts[assign[i]]++
		}
		for c := 0; c < km.K; c++ {
			if counts[c] == 0 {
				copy(km.Centroids.Row(c), hvs.Row(worstIdx))
			}
		}
	}
	return res
}

// Purity scores a clustering against ground-truth labels: each cluster votes
// its majority label; purity is the fraction of points matching their
// cluster's vote.
func Purity(assignments, labels []int, k int) float64 {
	if len(assignments) != len(labels) || len(labels) == 0 {
		return 0
	}
	maxLabel := 0
	for _, y := range labels {
		if y > maxLabel {
			maxLabel = y
		}
	}
	votes := make([][]int, k)
	for i := range votes {
		votes[i] = make([]int, maxLabel+1)
	}
	for i, c := range assignments {
		votes[c][labels[i]]++
	}
	correct := 0
	for _, v := range votes {
		best := 0
		for _, cnt := range v {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(labels))
}
