package hdc

import (
	"math"

	"nshd/internal/tensor"
)

// Capacity analysis utilities grounded in Kanerva's hyperdimensional
// arithmetic (Sec. II): two random bipolar D-vectors overlap in D/2 ± √(D/4)
// positions, and a sign-bundle of m vectors stays recoverable while the
// expected per-item similarity √(2/(πm)) clears the noise floor z/√D for a
// chosen confidence z.

// ExpectedBundleSimilarity returns the expected normalized dot product
// between sign(Σ of m random bipolar vectors) and one of its members:
// √(2/(πm)) for odd/large m.
func ExpectedBundleSimilarity(m int) float64 {
	if m <= 0 {
		return 0
	}
	if m == 1 {
		return 1
	}
	return math.Sqrt(2 / (math.Pi * float64(m)))
}

// NoiseFloor returns the z-sigma band of the normalized dot product between
// unrelated random bipolar vectors of dimension d: z/√d.
func NoiseFloor(d int, z float64) float64 {
	return z / math.Sqrt(float64(d))
}

// BundleCapacity estimates how many random hypervectors a dimension-d
// sign-bundle can hold while member similarity exceeds the z-sigma noise
// floor: the largest m with √(2/(πm)) > z/√d, i.e. m < 2d/(πz²).
func BundleCapacity(d int, z float64) int {
	if z <= 0 {
		return math.MaxInt32
	}
	return int(2 * float64(d) / (math.Pi * z * z))
}

// MeasureBundleRecall empirically verifies the capacity model: bundle m
// random items, then check what fraction of members is closer to the bundle
// than the most similar of m unrelated distractors. Returns the recall rate.
func MeasureBundleRecall(rng *tensor.RNG, d, m int) float64 {
	members := make([]Hypervector, m)
	for i := range members {
		members[i] = RandomBipolar(rng, d)
	}
	bundle := Bundle(members...)
	bundle.Sign()
	hits := 0
	for _, mem := range members {
		memSim := Dot(bundle, mem)
		best := math.Inf(-1)
		for j := 0; j < m; j++ {
			if s := Dot(bundle, RandomBipolar(rng, d)); s > best {
				best = s
			}
		}
		if memSim > best {
			hits++
		}
	}
	return float64(hits) / float64(m)
}
