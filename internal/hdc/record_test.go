package hdc

import (
	"math"
	"testing"

	"nshd/internal/tensor"
)

func TestRecordEncoderBipolarAndDeterministic(t *testing.T) {
	re := NewRecordEncoder(tensor.NewRNG(1), 8, 1024, 16, -2, 2)
	v := []float32{0.1, -1.5, 2, -2, 0, 0.7, 1.9, -0.3}
	h1 := re.Encode(v)
	h2 := re.Encode(v)
	if !h1.IsBipolar() {
		t.Fatal("record encoding must be bipolar")
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("record encoding must be deterministic")
		}
	}
}

func TestRecordEncoderLocality(t *testing.T) {
	re := NewRecordEncoder(tensor.NewRNG(2), 16, 4096, 32, -3, 3)
	rng := tensor.NewRNG(3)
	v := make([]float32, 16)
	near := make([]float32, 16)
	far := make([]float32, 16)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
		near[i] = v[i] + 0.05*float32(rng.NormFloat64())
		far[i] = float32(rng.NormFloat64())
	}
	hv, hn, hf := re.Encode(v), re.Encode(near), re.Encode(far)
	if NormalizedDot(hv, hn) <= NormalizedDot(hv, hf) {
		t.Fatal("record encoding must preserve locality")
	}
}

func TestRecordEncodeBatchMatchesSingle(t *testing.T) {
	re := NewRecordEncoder(tensor.NewRNG(4), 6, 512, 8, -1, 1)
	feats := tensor.New(5, 6)
	tensor.NewRNG(5).FillUniform(feats, -1, 1)
	batch := re.EncodeBatch(feats)
	for i := 0; i < 5; i++ {
		single := re.Encode(feats.Row(i))
		for j := range single {
			if batch.At(i, j) != single[j] {
				t.Fatalf("batch mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestRecordEncoderCosts(t *testing.T) {
	re := NewRecordEncoder(tensor.NewRNG(6), 100, 3000, 16, 0, 1)
	if re.EncodeMACs() != 300000 {
		t.Fatalf("EncodeMACs = %d", re.EncodeMACs())
	}
}

func TestRecordQuantizationInvariance(t *testing.T) {
	// Values inside the same quantization bucket must encode identically.
	re := NewRecordEncoder(tensor.NewRNG(7), 2, 256, 4, 0, 4)
	a := re.Encode([]float32{0.1, 3.9})
	b := re.Encode([]float32{0.3, 3.7}) // same buckets (0 and 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-bucket values must encode identically")
		}
	}
	c := re.Encode([]float32{1.5, 3.9}) // first feature moves to bucket 1
	if same := NormalizedDot(a, c); math.Abs(same-1) < 1e-9 {
		t.Fatal("different buckets must change the encoding")
	}
}
