package hdc

import (
	"fmt"

	"nshd/internal/tensor"
)

// SequenceEncoder implements the classic HD n-gram encoding used by the
// language- and speech-recognition systems the paper builds on (Sec. II,
// refs [12][13]): each symbol gets a random item hypervector, an n-gram is
// the binding of its symbols rotated by position,
//
//	G(s₁..s_n) = ρ⁰(I(s₁)) ⊗ ρ¹(I(s₂)) ⊗ ... ⊗ ρⁿ⁻¹(I(s_n))
//
// and a sequence is the sign-bundle of all its n-grams. Rotation (ρ, cyclic
// permutation) injects order: "ab" and "ba" encode to quasi-orthogonal
// hypervectors.
type SequenceEncoder struct {
	D, N  int
	Items *ItemMemory
}

// NewSequenceEncoder constructs an encoder with n-gram size n.
func NewSequenceEncoder(rng *tensor.RNG, d, n int) *SequenceEncoder {
	if n < 1 {
		panic(fmt.Sprintf("hdc: n-gram size %d", n))
	}
	return &SequenceEncoder{D: d, N: n, Items: NewItemMemory(rng, d)}
}

// EncodeNGram binds one n-gram of symbols.
func (se *SequenceEncoder) EncodeNGram(symbols []string) Hypervector {
	if len(symbols) != se.N {
		panic(fmt.Sprintf("hdc: n-gram has %d symbols, encoder wants %d", len(symbols), se.N))
	}
	out := Permute(se.Items.Get(symbols[0]), 0)
	for i := 1; i < se.N; i++ {
		out = Bind(out, Permute(se.Items.Get(symbols[i]), i))
	}
	return out
}

// Encode bundles all n-grams of the symbol sequence and sign-quantizes.
// Sequences shorter than N yield the zero-information all-(+1) vector.
func (se *SequenceEncoder) Encode(symbols []string) Hypervector {
	acc := NewHypervector(se.D)
	for i := 0; i+se.N <= len(symbols); i++ {
		BundleInto(acc, se.EncodeNGram(symbols[i:i+se.N]))
	}
	acc.Sign()
	return acc
}

// EncodeText is a convenience wrapper treating each byte of s as a symbol,
// the usual setup for HD language identification.
func (se *SequenceEncoder) EncodeText(s string) Hypervector {
	symbols := make([]string, len(s))
	for i := 0; i < len(s); i++ {
		symbols[i] = string(s[i])
	}
	return se.Encode(symbols)
}

// SequenceClassifier is the bundling classifier over sequence encodings —
// the same centroid scheme as image HD learning, reused to show the symbolic
// substrate is task-agnostic.
type SequenceClassifier struct {
	Encoder *SequenceEncoder
	classes map[string]Hypervector
	names   []string
}

// NewSequenceClassifier wraps an encoder.
func NewSequenceClassifier(enc *SequenceEncoder) *SequenceClassifier {
	return &SequenceClassifier{Encoder: enc, classes: make(map[string]Hypervector)}
}

// Learn bundles a labelled example into its class centroid.
func (sc *SequenceClassifier) Learn(label, text string) {
	h := sc.Encoder.EncodeText(text)
	if c, ok := sc.classes[label]; ok {
		BundleInto(c, h)
		return
	}
	sc.classes[label] = h.Clone()
	sc.names = append(sc.names, label)
}

// Classify returns the most similar class label and its cosine similarity.
func (sc *SequenceClassifier) Classify(text string) (string, float64) {
	if len(sc.classes) == 0 {
		panic("hdc: Classify on empty SequenceClassifier")
	}
	q := sc.Encoder.EncodeText(text)
	best, bestSim := "", -2.0
	for _, name := range sc.names {
		if sim := Cosine(sc.classes[name], q); sim > bestSim {
			best, bestSim = name, sim
		}
	}
	return best, bestSim
}

// Labels returns the learned class labels in insertion order.
func (sc *SequenceClassifier) Labels() []string {
	return append([]string(nil), sc.names...)
}
