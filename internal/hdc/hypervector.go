// Package hdc implements the hyperdimensional-computing substrate of NSHD:
// bipolar hypervectors, the bind/bundle/permute algebra, similarity metrics,
// random-projection encoding and decoding, item/level memories, and a packed
// 1-bit representation with popcount similarity that mirrors the paper's
// binary-centric GPGPU kernels.
//
// Two representations coexist:
//
//   - dense hypervectors ([]float32), used wherever values accumulate
//     (class hypervectors, bundling, pre-sign encoder output);
//   - PackedHV (uint64 words, one bit per dimension), used for binary
//     query/projection hypervectors where XOR+popcount replaces
//     multiply-accumulate.
//
// The bipolar convention is {-1, +1} with sign(0) = +1.
package hdc

import (
	"fmt"
	"math"

	"nshd/internal/tensor"
)

// Hypervector is a dense hypervector of dimension len(h). Components are
// float32 so the same type serves bipolar vectors and integer accumulators.
type Hypervector []float32

// NewHypervector allocates a zero hypervector of dimension d.
func NewHypervector(d int) Hypervector { return make(Hypervector, d) }

// RandomBipolar samples a uniform bipolar hypervector of dimension d.
func RandomBipolar(rng *tensor.RNG, d int) Hypervector {
	h := NewHypervector(d)
	for i := range h {
		if rng.Uint64()&1 == 0 {
			h[i] = 1
		} else {
			h[i] = -1
		}
	}
	return h
}

// Dim returns the dimensionality.
func (h Hypervector) Dim() int { return len(h) }

// Clone returns a copy of h.
func (h Hypervector) Clone() Hypervector {
	c := NewHypervector(len(h))
	copy(c, h)
	return c
}

// IsBipolar reports whether every component is exactly ±1.
func (h Hypervector) IsBipolar() bool {
	for _, v := range h {
		if v != 1 && v != -1 {
			return false
		}
	}
	return true
}

// Sign maps h to its bipolar quantization in place (sign(0) = +1).
func (h Hypervector) Sign() {
	for i, v := range h {
		if v < 0 {
			h[i] = -1
		} else {
			h[i] = 1
		}
	}
}

// Scale multiplies every component by s.
func (h Hypervector) Scale(s float32) {
	for i := range h {
		h[i] *= s
	}
}

// Norm returns the Euclidean norm.
func (h Hypervector) Norm() float64 {
	var s float64
	for _, v := range h {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Bind returns the elementwise product a ⊗ b: associative, self-inverse for
// bipolar inputs, and quasi-orthogonal to both operands.
func Bind(a, b Hypervector) Hypervector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdc: Bind dimension mismatch %d vs %d", len(a), len(b)))
	}
	out := NewHypervector(len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// BindInto computes dst = a ⊗ b without allocating.
func BindInto(dst, a, b Hypervector) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("hdc: BindInto dimension mismatch")
	}
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// Bundle returns the elementwise sum of hvs (⊕): the composite remains
// similar to each input. The result is NOT sign-quantized; call Sign for a
// bipolar composite.
func Bundle(hvs ...Hypervector) Hypervector {
	if len(hvs) == 0 {
		panic("hdc: Bundle of no hypervectors")
	}
	out := NewHypervector(len(hvs[0]))
	for _, h := range hvs {
		if len(h) != len(out) {
			panic("hdc: Bundle dimension mismatch")
		}
		for i, v := range h {
			out[i] += v
		}
	}
	return out
}

// BundleInto accumulates src into dst (dst ⊕= src).
func BundleInto(dst, src Hypervector) {
	if len(dst) != len(src) {
		panic("hdc: BundleInto dimension mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// WeightedBundleInto accumulates dst += w·src, the primitive behind MASS
// retraining updates (M += λ Uᵀ H).
func WeightedBundleInto(dst Hypervector, w float32, src Hypervector) {
	if len(dst) != len(src) {
		panic("hdc: WeightedBundleInto dimension mismatch")
	}
	for i, v := range src {
		dst[i] += w * v
	}
}

// Permute returns h cyclically rotated by k positions (ρ operator). Permute
// preserves similarity structure while producing a vector quasi-orthogonal
// to the original, which encodes sequence/position information.
func Permute(h Hypervector, k int) Hypervector {
	d := len(h)
	if d == 0 {
		return nil
	}
	k = ((k % d) + d) % d
	out := NewHypervector(d)
	copy(out[k:], h[:d-k])
	copy(out[:k], h[d-k:])
	return out
}

// Dot returns the dot-product similarity δ(a, b).
func Dot(a, b Hypervector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdc: Dot dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// Cosine returns the cosine similarity of a and b (0 when either is zero).
func Cosine(a, b Hypervector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// NormalizedDot returns δ(a,b)/D, the per-dimension similarity in [-1, 1]
// for bipolar inputs. This is the scale MASS retraining operates on.
func NormalizedDot(a, b Hypervector) float64 {
	return Dot(a, b) / float64(len(a))
}
