package hdc

import (
	"fmt"
	"sort"

	"nshd/internal/tensor"
)

// ItemMemory is an associative memory of named hypervectors with
// similarity-based cleanup, the classic HD structure for symbol lookup.
type ItemMemory struct {
	D     int
	names []string
	hvs   map[string]Hypervector
	rng   *tensor.RNG
}

// NewItemMemory constructs an empty item memory of dimension d.
func NewItemMemory(rng *tensor.RNG, d int) *ItemMemory {
	return &ItemMemory{D: d, hvs: make(map[string]Hypervector), rng: rng}
}

// Get returns the hypervector for name, sampling and remembering a fresh
// random bipolar hypervector on first use.
func (im *ItemMemory) Get(name string) Hypervector {
	if h, ok := im.hvs[name]; ok {
		return h
	}
	h := RandomBipolar(im.rng, im.D)
	im.hvs[name] = h
	im.names = append(im.names, name)
	sort.Strings(im.names)
	return h
}

// Has reports whether name is stored.
func (im *ItemMemory) Has(name string) bool {
	_, ok := im.hvs[name]
	return ok
}

// Len returns the number of stored items.
func (im *ItemMemory) Len() int { return len(im.hvs) }

// Names returns the stored names in sorted order.
func (im *ItemMemory) Names() []string { return append([]string(nil), im.names...) }

// Cleanup returns the stored name whose hypervector is most similar to q
// (dot product) along with the similarity. It panics on an empty memory.
func (im *ItemMemory) Cleanup(q Hypervector) (string, float64) {
	if len(im.hvs) == 0 {
		panic("hdc: Cleanup on empty ItemMemory")
	}
	bestName := ""
	bestSim := 0.0
	first := true
	for _, name := range im.names {
		sim := Dot(im.hvs[name], q)
		if first || sim > bestSim {
			bestName, bestSim, first = name, sim, false
		}
	}
	return bestName, bestSim
}

// LevelMemory maps scalar values in [Lo, Hi] onto L correlated hypervectors:
// adjacent levels share most dimensions, while the extremes are
// quasi-orthogonal. Used by ID-level encodings and by explainability probes.
type LevelMemory struct {
	D, L   int
	Lo, Hi float64
	levels []Hypervector
}

// NewLevelMemory builds L levels over [lo, hi] by starting from a random
// hypervector and flipping a disjoint random subset of D/(2(L-1)) positions
// per step, so that level 0 and level L-1 differ in about half their
// dimensions.
func NewLevelMemory(rng *tensor.RNG, d, l int, lo, hi float64) *LevelMemory {
	if l < 2 {
		panic("hdc: LevelMemory needs at least 2 levels")
	}
	if hi <= lo {
		panic(fmt.Sprintf("hdc: LevelMemory range [%v, %v] invalid", lo, hi))
	}
	lm := &LevelMemory{D: d, L: l, Lo: lo, Hi: hi, levels: make([]Hypervector, l)}
	lm.levels[0] = RandomBipolar(rng, d)
	perm := rng.Perm(d)
	flipPerStep := d / (2 * (l - 1))
	if flipPerStep < 1 {
		flipPerStep = 1
	}
	pos := 0
	for i := 1; i < l; i++ {
		h := lm.levels[i-1].Clone()
		for j := 0; j < flipPerStep && pos < d; j++ {
			h[perm[pos]] = -h[perm[pos]]
			pos++
		}
		lm.levels[i] = h
	}
	return lm
}

// Level returns the hypervector of level index i.
func (lm *LevelMemory) Level(i int) Hypervector {
	if i < 0 || i >= lm.L {
		panic(fmt.Sprintf("hdc: level %d out of range [0,%d)", i, lm.L))
	}
	return lm.levels[i]
}

// Quantize maps a scalar to its level index, clamping out-of-range values.
func (lm *LevelMemory) Quantize(v float64) int {
	if v <= lm.Lo {
		return 0
	}
	if v >= lm.Hi {
		return lm.L - 1
	}
	idx := int(float64(lm.L) * (v - lm.Lo) / (lm.Hi - lm.Lo))
	if idx >= lm.L {
		idx = lm.L - 1
	}
	return idx
}

// Encode returns the level hypervector for a scalar value.
func (lm *LevelMemory) Encode(v float64) Hypervector {
	return lm.levels[lm.Quantize(v)]
}
