package hdc

import (
	"math"
	"strings"
	"testing"

	"nshd/internal/tensor"
)

func TestNGramOrderSensitivity(t *testing.T) {
	se := NewSequenceEncoder(tensor.NewRNG(1), 2048, 2)
	ab := se.EncodeNGram([]string{"a", "b"})
	ba := se.EncodeNGram([]string{"b", "a"})
	if s := math.Abs(NormalizedDot(ab, ba)); s > 0.15 {
		t.Fatalf("reversed n-grams must be quasi-orthogonal, got %v", s)
	}
	// Same n-gram encodes identically.
	ab2 := se.EncodeNGram([]string{"a", "b"})
	for i := range ab {
		if ab[i] != ab2[i] {
			t.Fatal("n-gram encoding must be deterministic")
		}
	}
}

func TestSequenceEncodeSimilarity(t *testing.T) {
	se := NewSequenceEncoder(tensor.NewRNG(2), 4096, 3)
	a := se.EncodeText("the quick brown fox jumps over the lazy dog")
	b := se.EncodeText("the quick brown fox jumps over the lazy cat")
	c := se.EncodeText("zzzzqqqqxxxxwwwwvvvvkkkkjjjjhhhhggggffff")
	simAB := NormalizedDot(a, b)
	simAC := NormalizedDot(a, c)
	if simAB <= simAC {
		t.Fatalf("near-identical texts must be more similar (%v) than unrelated (%v)", simAB, simAC)
	}
}

func TestSequenceShorterThanN(t *testing.T) {
	se := NewSequenceEncoder(tensor.NewRNG(3), 256, 4)
	h := se.EncodeText("ab")
	for _, v := range h {
		if v != 1 {
			t.Fatal("sequence shorter than N must encode to the neutral +1 vector")
		}
	}
}

func TestLanguageIdentification(t *testing.T) {
	// Miniature language ID per [13]: character trigram profiles separate
	// pseudo-languages with distinct letter statistics.
	se := NewSequenceEncoder(tensor.NewRNG(4), 4096, 3)
	sc := NewSequenceClassifier(se)

	english := []string{
		"the cat sat on the mat and watched the birds",
		"a quick brown fox jumps over the lazy dog",
		"she sells sea shells by the sea shore",
		"all that glitters is not gold they say",
	}
	fakeFinnish := []string{
		"kaunis aamu ja jarvi on tyyni kuin peili",
		"talvella lumi peittaa metsat ja pellot",
		"kissa istuu ikkunalla ja katselee lintuja",
		"jokainen paiva tuo uuden mahdollisuuden",
	}
	for _, s := range english {
		sc.Learn("en", s)
	}
	for _, s := range fakeFinnish {
		sc.Learn("fi", s)
	}
	if got := len(sc.Labels()); got != 2 {
		t.Fatalf("labels = %d", got)
	}
	tests := []struct {
		text, want string
	}{
		{"the dog barks at the moon in the night", "en"},
		{"there is nothing better than a warm fire", "en"},
		{"aurinko paistaa ja linnut laulavat puissa", "fi"},
		{"metsassa kasvaa paljon suuria kuusia", "fi"},
	}
	for _, tc := range tests {
		got, sim := sc.Classify(tc.text)
		if got != tc.want {
			t.Errorf("Classify(%q) = %s (sim %.3f), want %s", tc.text, got, sim, tc.want)
		}
	}
}

func TestSequenceClassifierEmptyPanics(t *testing.T) {
	sc := NewSequenceClassifier(NewSequenceEncoder(tensor.NewRNG(5), 128, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty classifier")
		}
	}()
	sc.Classify("x")
}

func TestEncodeTextMatchesEncode(t *testing.T) {
	se := NewSequenceEncoder(tensor.NewRNG(6), 512, 2)
	text := "abc"
	symbols := strings.Split(text, "")
	a := se.EncodeText(text)
	b := se.Encode(symbols)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("EncodeText must equal Encode over split symbols")
		}
	}
}
