package hdc

import (
	"testing"

	"nshd/internal/tensor"
)

// TestProjectionSlice: a dimension shard's encodings are exactly the
// corresponding columns of the full projection's encodings, its packed rows
// match, and a seeded shard's generator rematerializes its own columns
// bit-identically.
func TestProjectionSlice(t *testing.T) {
	const f, d, n = 17, 300, 5
	pr := NewSeededProjection(42, f, d)

	feats := tensor.New(n, f)
	tensor.NewRNG(7).FillNormal(feats, 0, 1)
	fullRaw, fullSigned := pr.EncodeBatch(feats)

	for _, rng := range [][2]int{{0, 300}, {0, 128}, {128, 300}, {64, 192}, {299, 300}} {
		lo, hi := rng[0], rng[1]
		s := pr.Slice(lo, hi)
		w := hi - lo
		if s.F != f || s.D != w || s.FullDim() != d {
			t.Fatalf("slice [%d,%d): F=%d D=%d FullDim=%d", lo, hi, s.F, s.D, s.FullDim())
		}
		// Dense matrix is the column range.
		for r := 0; r < f; r++ {
			for c := 0; c < w; c++ {
				if s.P.Data[r*w+c] != pr.P.Data[r*d+lo+c] {
					t.Fatalf("slice [%d,%d) P mismatch at (%d,%d)", lo, hi, r, c)
				}
			}
		}
		// Batch encode matches the full encode's columns.
		raw, signed := s.EncodeBatch(feats)
		for i := 0; i < n; i++ {
			for c := 0; c < w; c++ {
				if raw.Data[i*w+c] != fullRaw.Data[i*d+lo+c] {
					t.Fatalf("slice [%d,%d) raw mismatch at (%d,%d)", lo, hi, i, c)
				}
				if signed.Data[i*w+c] != fullSigned.Data[i*d+lo+c] {
					t.Fatalf("slice [%d,%d) signed mismatch at (%d,%d)", lo, hi, i, c)
				}
			}
		}
		// Seeded shard: generator reproduces the slice's dense matrix.
		if !s.Seeded {
			t.Fatalf("slice [%d,%d) lost seededness", lo, hi)
		}
		mat := tensor.New(f, w)
		s.Gen().FillInto(mat)
		for i := range mat.Data {
			if mat.Data[i] != s.P.Data[i] {
				t.Fatalf("slice [%d,%d) generator disagrees with dense matrix at %d", lo, hi, i)
			}
		}
	}

	// Full-range slice is the identity (no copy).
	if pr.Slice(0, d) != pr {
		t.Fatal("full-range slice should return the projection itself")
	}

	// Slices compose with absolute offsets.
	s2 := pr.Slice(64, 256).Slice(32, 96)
	if s2.ColOff != 96 || s2.D != 64 || s2.FullDim() != d {
		t.Fatalf("slice-of-slice ColOff=%d D=%d FullDim=%d", s2.ColOff, s2.D, s2.FullDim())
	}
}
