package hdc

import (
	"math"
	"testing"

	"nshd/internal/tensor"
)

func TestExpectedBundleSimilarity(t *testing.T) {
	if ExpectedBundleSimilarity(1) != 1 {
		t.Fatal("single-item bundle is the item itself")
	}
	if ExpectedBundleSimilarity(0) != 0 {
		t.Fatal("empty bundle has no similarity")
	}
	// Monotone decreasing in m.
	prev := 2.0
	for _, m := range []int{1, 3, 10, 30, 100} {
		s := ExpectedBundleSimilarity(m)
		if s >= prev {
			t.Fatalf("similarity must fall with m: %v at %d", s, m)
		}
		prev = s
	}
}

func TestExpectedSimilarityMatchesMeasurement(t *testing.T) {
	// Empirically check √(2/πm) against real bundles.
	rng := tensor.NewRNG(1)
	const d, m, trials = 4096, 9, 6
	var meanSim float64
	for trial := 0; trial < trials; trial++ {
		members := make([]Hypervector, m)
		for i := range members {
			members[i] = RandomBipolar(rng, d)
		}
		b := Bundle(members...)
		b.Sign()
		for _, mem := range members {
			meanSim += NormalizedDot(b, mem)
		}
	}
	meanSim /= float64(m * trials)
	want := ExpectedBundleSimilarity(m)
	if math.Abs(meanSim-want) > 0.03 {
		t.Fatalf("measured member similarity %v, theory %v", meanSim, want)
	}
}

func TestNoiseFloorAndCapacity(t *testing.T) {
	if NoiseFloor(10000, 3) >= NoiseFloor(1000, 3) {
		t.Fatal("noise floor must shrink with dimension")
	}
	// Capacity grows linearly with D.
	c1 := BundleCapacity(1000, 3)
	c10 := BundleCapacity(10000, 3)
	if c10 < 9*c1 || c10 > 11*c1 {
		t.Fatalf("capacity must scale ~linearly with D: %d vs %d", c1, c10)
	}
	// Within capacity, member similarity clears the floor.
	m := BundleCapacity(2048, 4) / 4
	if ExpectedBundleSimilarity(m) <= NoiseFloor(2048, 4) {
		t.Fatal("well within capacity the signal must clear the floor")
	}
}

func TestMeasureBundleRecallHighWithinCapacity(t *testing.T) {
	rng := tensor.NewRNG(2)
	const d = 2048
	m := BundleCapacity(d, 4) / 8 // comfortably within capacity
	if m < 4 {
		m = 4
	}
	if recall := MeasureBundleRecall(rng, d, m); recall < 0.95 {
		t.Fatalf("recall %v within capacity", recall)
	}
}
