package metrics

import (
	"math"
	"strings"
	"testing"

	"nshd/internal/tensor"
)

func TestConfusionBasics(t *testing.T) {
	preds := []int{0, 0, 1, 1, 2, 0}
	labels := []int{0, 0, 1, 2, 2, 1}
	c, err := NewConfusion(3, preds, labels)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 6 {
		t.Fatalf("Total = %d", c.Total())
	}
	// Correct: samples 0,1,2,4 → 4/6.
	if got := c.Accuracy(); math.Abs(got-4.0/6) > 1e-9 {
		t.Fatalf("Accuracy = %v", got)
	}
	if c.Counts[1][0] != 1 || c.Counts[2][1] != 1 {
		t.Fatalf("off-diagonal wrong: %v", c.Counts)
	}
	per := c.PerClassAccuracy()
	if per[0] != 1 || math.Abs(per[1]-0.5) > 1e-9 || math.Abs(per[2]-0.5) > 1e-9 {
		t.Fatalf("PerClassAccuracy = %v", per)
	}
}

func TestConfusionValidation(t *testing.T) {
	if _, err := NewConfusion(2, []int{0}, []int{0, 1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := NewConfusion(2, []int{5}, []int{0}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestPrecisionRecallF1Perfect(t *testing.T) {
	c, _ := NewConfusion(3, []int{0, 1, 2}, []int{0, 1, 2})
	p, r, f := c.PrecisionRecallF1()
	if p != 1 || r != 1 || f != 1 {
		t.Fatalf("perfect predictions: p=%v r=%v f=%v", p, r, f)
	}
}

func TestPrecisionRecallF1Known(t *testing.T) {
	// Class 0: tp=1 fp=1 fn=0 → p=0.5 r=1 f=2/3. Class 1: tp=0 → all 0.
	c, _ := NewConfusion(2, []int{0, 0}, []int{0, 1})
	p, r, f := c.PrecisionRecallF1()
	if math.Abs(p-0.25) > 1e-9 || math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("p=%v r=%v", p, r)
	}
	if math.Abs(f-(2.0/3)/2) > 1e-9 {
		t.Fatalf("f=%v", f)
	}
}

func TestMostConfused(t *testing.T) {
	preds := []int{1, 1, 1, 2, 0, 0}
	labels := []int{0, 0, 0, 0, 0, 0}
	c, _ := NewConfusion(3, preds, labels)
	top := c.MostConfused(2)
	if len(top) != 2 {
		t.Fatalf("cells = %v", top)
	}
	if top[0] != [3]int{0, 1, 3} {
		t.Fatalf("top cell = %v", top[0])
	}
	if top[1] != [3]int{0, 2, 1} {
		t.Fatalf("second cell = %v", top[1])
	}
}

func TestConfusionString(t *testing.T) {
	c, _ := NewConfusion(2, []int{0, 1}, []int{0, 1})
	s := c.String()
	if !strings.Contains(s, "2 classes") {
		t.Fatalf("String = %q", s)
	}
}

func TestTopKAccuracy(t *testing.T) {
	scores := tensor.FromSlice([]float32{
		0.5, 0.3, 0.2, // label 1: top-1 wrong, top-2 right
		0.1, 0.7, 0.2, // label 1: top-1 right
		0.3, 0.3, 0.4, // label 0: top-1 wrong, top-2 ambiguous-sorted stable
	}, 3, 3)
	labels := []int{1, 1, 0}
	top1, err := TopKAccuracy(scores, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(top1-1.0/3) > 1e-9 {
		t.Fatalf("top-1 = %v", top1)
	}
	top3, _ := TopKAccuracy(scores, labels, 3)
	if top3 != 1 {
		t.Fatalf("top-3 = %v", top3)
	}
	top2, _ := TopKAccuracy(scores, labels, 2)
	if top2 < 2.0/3-1e-9 {
		t.Fatalf("top-2 = %v", top2)
	}
	if _, err := TopKAccuracy(scores, labels, 9); err == nil {
		t.Fatal("expected k-range error")
	}
	if _, err := TopKAccuracy(scores, []int{0}, 1); err == nil {
		t.Fatal("expected label-length error")
	}
}

func TestTopKMonotone(t *testing.T) {
	rng := tensor.NewRNG(1)
	scores := tensor.New(50, 8)
	rng.FillNormal(scores, 0, 1)
	labels := make([]int, 50)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	prev := 0.0
	for k := 1; k <= 8; k++ {
		acc, err := TopKAccuracy(scores, labels, k)
		if err != nil {
			t.Fatal(err)
		}
		if acc < prev {
			t.Fatalf("top-k accuracy must be monotone in k: %v < %v at k=%d", acc, prev, k)
		}
		prev = acc
	}
	if prev != 1 {
		t.Fatalf("top-K (K=classes) must be 1, got %v", prev)
	}
}
