// Package metrics provides the classification metrics the experiment
// harness and examples report: confusion matrices, per-class and top-k
// accuracy, and macro-averaged precision/recall/F1.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"nshd/internal/tensor"
)

// Confusion is a K×K confusion matrix: rows index the true class, columns
// the predicted class.
type Confusion struct {
	K      int
	Counts [][]int
}

// NewConfusion builds a confusion matrix from predictions and labels.
func NewConfusion(k int, preds, labels []int) (*Confusion, error) {
	if len(preds) != len(labels) {
		return nil, fmt.Errorf("metrics: %d predictions for %d labels", len(preds), len(labels))
	}
	c := &Confusion{K: k, Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	for i, p := range preds {
		y := labels[i]
		if y < 0 || y >= k || p < 0 || p >= k {
			return nil, fmt.Errorf("metrics: sample %d has label %d / prediction %d outside [0,%d)", i, y, p, k)
		}
		c.Counts[y][p]++
	}
	return c, nil
}

// Total returns the number of samples.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy is the trace fraction.
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.K; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(n)
}

// PerClassAccuracy returns recall per class (NaN-free: classes with no
// samples report 0).
func (c *Confusion) PerClassAccuracy() []float64 {
	out := make([]float64, c.K)
	for i := 0; i < c.K; i++ {
		var row int
		for _, v := range c.Counts[i] {
			row += v
		}
		if row > 0 {
			out[i] = float64(c.Counts[i][i]) / float64(row)
		}
	}
	return out
}

// PrecisionRecallF1 returns macro-averaged precision, recall and F1.
func (c *Confusion) PrecisionRecallF1() (precision, recall, f1 float64) {
	var pSum, rSum, fSum float64
	for i := 0; i < c.K; i++ {
		tp := float64(c.Counts[i][i])
		var colSum, rowSum float64
		for j := 0; j < c.K; j++ {
			colSum += float64(c.Counts[j][i])
			rowSum += float64(c.Counts[i][j])
		}
		var p, r float64
		if colSum > 0 {
			p = tp / colSum
		}
		if rowSum > 0 {
			r = tp / rowSum
		}
		var f float64
		if p+r > 0 {
			f = 2 * p * r / (p + r)
		}
		pSum += p
		rSum += r
		fSum += f
	}
	k := float64(c.K)
	return pSum / k, rSum / k, fSum / k
}

// MostConfused returns the n largest off-diagonal cells as (true, pred,
// count) triples, sorted descending — the error-analysis view.
func (c *Confusion) MostConfused(n int) [][3]int {
	var cells [][3]int
	for i := 0; i < c.K; i++ {
		for j := 0; j < c.K; j++ {
			if i != j && c.Counts[i][j] > 0 {
				cells = append(cells, [3]int{i, j, c.Counts[i][j]})
			}
		}
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a][2] != cells[b][2] {
			return cells[a][2] > cells[b][2]
		}
		if cells[a][0] != cells[b][0] {
			return cells[a][0] < cells[b][0]
		}
		return cells[a][1] < cells[b][1]
	})
	if n < len(cells) {
		cells = cells[:n]
	}
	return cells
}

// String renders the matrix compactly for small K.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, %d samples):\n", c.K, c.Total())
	for i := 0; i < c.K; i++ {
		for j := 0; j < c.K; j++ {
			fmt.Fprintf(&b, "%5d", c.Counts[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TopKAccuracy scores [N, K] prediction scores against labels: a sample
// counts as correct when its label is among the k highest-scoring classes.
func TopKAccuracy(scores *tensor.Tensor, labels []int, k int) (float64, error) {
	if scores.Rank() != 2 {
		return 0, fmt.Errorf("metrics: scores rank %d", scores.Rank())
	}
	n, classes := scores.Shape[0], scores.Shape[1]
	if len(labels) != n {
		return 0, fmt.Errorf("metrics: %d labels for %d rows", len(labels), n)
	}
	if k < 1 || k > classes {
		return 0, fmt.Errorf("metrics: top-%d of %d classes", k, classes)
	}
	correct := 0
	idx := make([]int, classes)
	for i := 0; i < n; i++ {
		row := scores.Row(i)
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		for _, j := range idx[:k] {
			if j == labels[i] {
				correct++
				break
			}
		}
	}
	return float64(correct) / float64(n), nil
}
