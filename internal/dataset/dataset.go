// Package dataset provides the image classification workloads NSHD is
// evaluated on. The paper uses CIFAR-10/CIFAR-100; offline reproduction uses
// SynthCIFAR, a seeded generative dataset with the same tensor geometry
// (3×32×32, 10 or 100 classes) whose class structure is learnable by a CNN
// but not by linear models on raw pixels. A loader for the real CIFAR binary
// format is included for runs where the data is available on disk.
package dataset

import (
	"fmt"
	"math"

	"nshd/internal/tensor"
)

// Dataset is a labelled image set with images in [N, C, H, W] layout.
type Dataset struct {
	Name    string
	Images  *tensor.Tensor
	Labels  []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.Images.Shape[0] }

// SampleShape returns the per-sample shape [C, H, W].
func (d *Dataset) SampleShape() []int { return d.Images.Shape[1:] }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.Images.Rank() != 4 {
		return fmt.Errorf("dataset %s: images rank %d, want 4", d.Name, d.Images.Rank())
	}
	if d.Images.Shape[0] != len(d.Labels) {
		return fmt.Errorf("dataset %s: %d images but %d labels", d.Name, d.Images.Shape[0], len(d.Labels))
	}
	for i, y := range d.Labels {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("dataset %s: label[%d]=%d outside [0,%d)", d.Name, i, y, d.Classes)
		}
	}
	return nil
}

// Subset returns the first n samples (sharing storage); useful for scaling
// experiments down.
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	sampleLen := tensorSampleLen(d.Images)
	return &Dataset{
		Name:    fmt.Sprintf("%s[:%d]", d.Name, n),
		Images:  tensor.FromSlice(d.Images.Data[:n*sampleLen], append([]int{n}, d.Images.Shape[1:]...)...),
		Labels:  d.Labels[:n],
		Classes: d.Classes,
	}
}

// Shuffled returns a copy of the dataset in a seeded random order.
func (d *Dataset) Shuffled(rng *tensor.RNG) *Dataset {
	n := d.Len()
	sampleLen := tensorSampleLen(d.Images)
	perm := rng.Perm(n)
	images := tensor.New(d.Images.Shape...)
	labels := make([]int, n)
	for dst, src := range perm {
		copy(images.Data[dst*sampleLen:(dst+1)*sampleLen], d.Images.Data[src*sampleLen:(src+1)*sampleLen])
		labels[dst] = d.Labels[src]
	}
	return &Dataset{Name: d.Name, Images: images, Labels: labels, Classes: d.Classes}
}

// Normalize shifts and scales every channel to zero mean / unit variance
// in place, returning the per-channel means and stds applied.
func (d *Dataset) Normalize() (means, stds []float64) {
	c := d.Images.Shape[1]
	hw := d.Images.Shape[2] * d.Images.Shape[3]
	n := d.Len()
	means = make([]float64, c)
	stds = make([]float64, c)
	for ch := 0; ch < c; ch++ {
		var s, sq float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				v := float64(d.Images.Data[base+j])
				s += v
				sq += v * v
			}
		}
		cnt := float64(n * hw)
		mean := s / cnt
		variance := sq/cnt - mean*mean
		if variance < 1e-12 {
			variance = 1e-12
		}
		std := math.Sqrt(variance)
		means[ch], stds[ch] = mean, std
		for i := 0; i < n; i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				d.Images.Data[base+j] = float32((float64(d.Images.Data[base+j]) - mean) / std)
			}
		}
	}
	return means, stds
}

// ApplyNormalization applies externally computed channel statistics (from
// the training split) to this dataset.
func (d *Dataset) ApplyNormalization(means, stds []float64) {
	c := d.Images.Shape[1]
	hw := d.Images.Shape[2] * d.Images.Shape[3]
	for ch := 0; ch < c; ch++ {
		for i := 0; i < d.Len(); i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				d.Images.Data[base+j] = float32((float64(d.Images.Data[base+j]) - means[ch]) / stds[ch])
			}
		}
	}
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Labels {
		counts[y]++
	}
	return counts
}

func tensorSampleLen(t *tensor.Tensor) int {
	return t.Len() / t.Shape[0]
}

// ShiftAugment returns a training-time augmentation that translates a
// [C, H, W] sample by up to maxShift pixels in each direction, zero-filling
// the exposed border. Translation is the natural invariance of image
// workloads and multiplies the effective sample count of small splits.
func ShiftAugment(maxShift int) func(sample []float32, shape []int, rng *tensor.RNG) {
	return func(sample []float32, shape []int, rng *tensor.RNG) {
		if len(shape) != 3 || maxShift <= 0 {
			return
		}
		c, h, w := shape[0], shape[1], shape[2]
		dx := rng.Intn(2*maxShift+1) - maxShift
		dy := rng.Intn(2*maxShift+1) - maxShift
		if dx == 0 && dy == 0 {
			return
		}
		tmp := make([]float32, h*w)
		for ch := 0; ch < c; ch++ {
			plane := sample[ch*h*w : (ch+1)*h*w]
			copy(tmp, plane)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					sy, sx := y-dy, x-dx
					if sy < 0 || sy >= h || sx < 0 || sx >= w {
						plane[y*w+x] = 0
					} else {
						plane[y*w+x] = tmp[sy*w+sx]
					}
				}
			}
		}
	}
}
