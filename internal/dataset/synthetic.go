package dataset

import (
	"fmt"
	"math"

	"nshd/internal/tensor"
)

// SynthConfig parameterizes the SynthCIFAR generator.
type SynthConfig struct {
	Classes int // 10 or 100 in the paper's evaluations
	Train   int // training samples
	Test    int // test samples
	Size    int // spatial extent (32 matches CIFAR)
	Noise   float64
	Seed    int64
}

// DefaultSynthConfig mirrors the CIFAR-10 geometry at a CPU-friendly sample
// count.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Classes: 10, Train: 512, Test: 256, Size: 32, Noise: 0.3, Seed: 1}
}

// classTemplate holds the generative parameters of one class: a small
// multi-channel motif patch.
//
// Class identity is carried ONLY by a localized motif stamped at a random
// position over a per-sample random background:
//
//   - the background is a sum of gratings whose frequency, orientation,
//     phase and channel mixing are redrawn for every sample, so background
//     statistics (including global channel and spatial covariances) are
//     class-independent;
//   - the motif is a fixed class-specific texture patch (two crossed
//     mini-gratings with per-channel polarities under a Gaussian window)
//     whose position is uniform over the image.
//
// Recognizing the class therefore requires detecting a local pattern
// invariantly to translation — precisely what convolution + pooling
// provides and what raw-pixel encodings (linear, or non-linear global
// kernels like VanillaHD's random Fourier features) lack. This reproduces
// the qualitative gap that motivates the paper (Sec. I): VanillaHD ≪ CNN.
type classTemplate struct {
	m     int       // motif side length
	patch []float32 // [3][m][m]
}

// SynthCIFAR generates seeded train/test datasets with disjoint instance
// randomness but shared class templates.
func SynthCIFAR(cfg SynthConfig) (train, test *Dataset) {
	if cfg.Classes < 2 {
		panic(fmt.Sprintf("dataset: SynthCIFAR with %d classes", cfg.Classes))
	}
	if cfg.Size <= 0 {
		cfg.Size = 32
	}
	rng := tensor.NewRNG(cfg.Seed)
	templates := make([]classTemplate, cfg.Classes)
	const golden = 0.618033988749895
	m := cfg.Size * 2 / 5 // motif covers ~40% of each side (~16% of area)
	if m < 4 {
		m = 4
	}
	for k := range templates {
		// Two crossed mini-gratings: angles spread evenly with jitter,
		// frequencies on a low-discrepancy sequence, per-channel polarity
		// signs — a rich, well-separated template space even at 100 classes.
		a1 := math.Pi * (float64(k) + 0.3*rng.Float64()) / float64(cfg.Classes)
		a2 := a1 + math.Pi/2 + 0.5*(rng.Float64()-0.5)
		f1 := 1.5 + 2.5*math.Mod(float64(k)*golden+0.05*rng.Float64(), 1)
		f2 := 1.5 + 2.5*math.Mod(float64(k)*golden*golden+0.05*rng.Float64(), 1)
		var pol [3][2]float64
		for c := 0; c < 3; c++ {
			pol[c] = [2]float64{float64(1 - 2*rng.Intn(2)), float64(1 - 2*rng.Intn(2))}
		}
		patch := make([]float32, 3*m*m)
		half := float64(m-1) / 2
		for py := 0; py < m; py++ {
			for px := 0; px < m; px++ {
				x := (float64(px) - half) / half // [-1, 1]
				y := (float64(py) - half) / half
				window := math.Exp(-(x*x + y*y) / 0.5)
				g1 := math.Sin(2 * math.Pi * f1 * (x*math.Cos(a1) + y*math.Sin(a1)))
				g2 := math.Sin(2 * math.Pi * f2 * (x*math.Cos(a2) + y*math.Sin(a2)))
				for c := 0; c < 3; c++ {
					v := window * (pol[c][0]*g1 + pol[c][1]*g2)
					patch[c*m*m+py*m+px] = float32(v)
				}
			}
		}
		templates[k] = classTemplate{m: m, patch: patch}
	}
	trainRNG := rng.Fork()
	testRNG := rng.Fork()
	train = renderSplit(fmt.Sprintf("synthcifar%d-train", cfg.Classes), cfg, templates, cfg.Train, trainRNG)
	test = renderSplit(fmt.Sprintf("synthcifar%d-test", cfg.Classes), cfg, templates, cfg.Test, testRNG)
	return train, test
}

func renderSplit(name string, cfg SynthConfig, templates []classTemplate, n int, rng *tensor.RNG) *Dataset {
	s := cfg.Size
	images := tensor.New(n, 3, s, s)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		y := i % cfg.Classes
		labels[i] = y
		renderSample(images.Data[i*3*s*s:(i+1)*3*s*s], templates[y], cfg, rng)
	}
	return &Dataset{Name: name, Images: images, Labels: labels, Classes: cfg.Classes}
}

// renderSample draws one instance: per-sample random background gratings,
// the class motif at a uniform random position, and pixel noise.
func renderSample(dst []float32, t classTemplate, cfg SynthConfig, rng *tensor.RNG) {
	s := cfg.Size
	// Background: two gratings with fully random parameters per sample.
	type grating struct {
		f, cos, sin, phase float64
		mix                [3]float64
	}
	bg := make([]grating, 2)
	for i := range bg {
		theta := rng.Float64() * math.Pi
		bg[i] = grating{
			f:     2 + 5*rng.Float64(),
			cos:   math.Cos(theta),
			sin:   math.Sin(theta),
			phase: rng.Float64() * 2 * math.Pi,
		}
		for c := 0; c < 3; c++ {
			bg[i].mix[c] = 0.4 * rng.NormFloat64()
		}
	}
	for py := 0; py < s; py++ {
		fy := float64(py) / float64(s)
		for px := 0; px < s; px++ {
			fx := float64(px) / float64(s)
			var g [2]float64
			for i, b := range bg {
				g[i] = math.Sin(2*math.Pi*b.f*(fx*b.cos+fy*b.sin) + b.phase)
			}
			for c := 0; c < 3; c++ {
				v := bg[0].mix[c]*g[0] + bg[1].mix[c]*g[1] + cfg.Noise*rng.NormFloat64()
				dst[c*s*s+py*s+px] = float32(v)
			}
		}
	}
	// Stamp the motif at a random position (fully inside the image).
	m := t.m
	ox := rng.Intn(s - m + 1)
	oy := rng.Intn(s - m + 1)
	const motifAmp = 2.4
	for c := 0; c < 3; c++ {
		for py := 0; py < m; py++ {
			for px := 0; px < m; px++ {
				dst[c*s*s+(oy+py)*s+(ox+px)] += motifAmp * t.patch[c*m*m+py*m+px]
			}
		}
	}
}
