package dataset

import (
	"fmt"
	"io"
	"os"

	"nshd/internal/tensor"
)

// CIFAR binary record layout: CIFAR-10 records are 1 label byte + 3072 pixel
// bytes; CIFAR-100 records carry a coarse and a fine label byte before the
// pixels. Pixels are channel-major (R plane, G plane, B plane), row-major
// within a plane — identical to our [C, H, W] layout.
const (
	cifarPixels    = 3 * 32 * 32
	cifar10Record  = 1 + cifarPixels
	cifar100Record = 2 + cifarPixels
)

// LoadCIFAR10 reads one or more CIFAR-10 binary batch files (data_batch_*.bin
// / test_batch.bin) and returns them as a single dataset with pixel values
// scaled to [0, 1].
func LoadCIFAR10(paths ...string) (*Dataset, error) {
	return loadCIFAR("cifar10", 10, cifar10Record, 0, paths)
}

// LoadCIFAR100 reads CIFAR-100 binary files (train.bin / test.bin) using the
// fine label.
func LoadCIFAR100(paths ...string) (*Dataset, error) {
	return loadCIFAR("cifar100", 100, cifar100Record, 1, paths)
}

func loadCIFAR(name string, classes, recordLen, labelOffset int, paths []string) (*Dataset, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dataset: no %s files given", name)
	}
	var raw []byte
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("dataset: read %s: %w", p, err)
		}
		raw = append(raw, b...)
	}
	if len(raw)%recordLen != 0 {
		return nil, fmt.Errorf("dataset: %s data length %d not a multiple of record size %d", name, len(raw), recordLen)
	}
	n := len(raw) / recordLen
	if n == 0 {
		return nil, fmt.Errorf("dataset: %s files contain no records", name)
	}
	images := tensor.New(n, 3, 32, 32)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		rec := raw[i*recordLen : (i+1)*recordLen]
		y := int(rec[labelOffset])
		if y >= classes {
			return nil, fmt.Errorf("dataset: %s record %d has label %d >= %d", name, i, y, classes)
		}
		labels[i] = y
		pixels := rec[recordLen-cifarPixels:]
		base := i * cifarPixels
		for j, b := range pixels {
			images.Data[base+j] = float32(b) / 255
		}
	}
	d := &Dataset{Name: name, Images: images, Labels: labels, Classes: classes}
	return d, d.Validate()
}

// WriteCIFAR10 serializes a dataset into CIFAR-10 binary format (used by
// round-trip tests and for exporting synthetic data to CIFAR-compatible
// tooling). Pixel values are clamped to [0, 1] and quantized to bytes.
func WriteCIFAR10(d *Dataset, w io.Writer) error {
	if d.Classes > 256 {
		return fmt.Errorf("dataset: cannot serialize %d classes in CIFAR-10 format", d.Classes)
	}
	if got := d.SampleShape(); len(got) != 3 || got[0] != 3 || got[1] != 32 || got[2] != 32 {
		return fmt.Errorf("dataset: CIFAR-10 format requires 3x32x32 samples, got %v", got)
	}
	rec := make([]byte, cifar10Record)
	for i := 0; i < d.Len(); i++ {
		rec[0] = byte(d.Labels[i])
		base := i * cifarPixels
		for j := 0; j < cifarPixels; j++ {
			v := d.Images.Data[base+j]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			rec[1+j] = byte(v*255 + 0.5)
		}
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("dataset: write record %d: %w", i, err)
		}
	}
	return nil
}
