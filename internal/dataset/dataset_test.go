package dataset

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"nshd/internal/nn"
	"nshd/internal/tensor"
)

func TestSynthCIFARShapesAndBalance(t *testing.T) {
	cfg := SynthConfig{Classes: 10, Train: 100, Test: 50, Size: 32, Noise: 0.2, Seed: 7}
	train, test := SynthCIFAR(cfg)
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
	if train.Len() != 100 || test.Len() != 50 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	if got := train.SampleShape(); got[0] != 3 || got[1] != 32 || got[2] != 32 {
		t.Fatalf("sample shape %v", got)
	}
	for _, c := range train.ClassCounts() {
		if c != 10 {
			t.Fatalf("class imbalance: %v", train.ClassCounts())
		}
	}
}

func TestSynthCIFARDeterministicBySeed(t *testing.T) {
	cfg := SynthConfig{Classes: 4, Train: 16, Test: 8, Size: 16, Noise: 0.2, Seed: 11}
	a, _ := SynthCIFAR(cfg)
	b, _ := SynthCIFAR(cfg)
	for i := range a.Images.Data {
		if a.Images.Data[i] != b.Images.Data[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
	cfg.Seed = 12
	c, _ := SynthCIFAR(cfg)
	same := true
	for i := range a.Images.Data {
		if a.Images.Data[i] != c.Images.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestSynthCIFARTrainTestShareTemplates(t *testing.T) {
	// A CNN trained on the train split must beat chance on the *test* split,
	// proving both splits draw from the same class-conditional distribution.
	cfg := SynthConfig{Classes: 4, Train: 160, Test: 80, Size: 16, Noise: 0.15, Seed: 3}
	train, test := SynthCIFAR(cfg)
	train.Normalize()
	test.Normalize()

	rng := tensor.NewRNG(5)
	model := nn.NewSequential("probe",
		nn.NewConv2D(rng, 3, 8, 3, 1, 1, true),
		nn.NewReLU(),
		nn.NewMaxPool2D(2),
		nn.NewConv2D(rng, 8, 16, 3, 1, 1, true),
		nn.NewReLU(),
		nn.NewMaxPool2D(2),
		nn.NewFlatten(),
		nn.NewLinear(rng, 16*4*4, 4, true),
	)
	tr := &nn.Trainer{Epochs: 10, BatchSize: 32, Opt: nn.NewSGD(0.05, 0.9, 1e-4)}
	tr.Fit(model, train.Images, train.Labels, rng)
	acc := nn.Evaluate(model, test.Images, test.Labels, 32)
	if acc < 0.6 {
		t.Fatalf("CNN test accuracy %v; synthetic classes not learnable", acc)
	}
}

func TestNormalize(t *testing.T) {
	cfg := SynthConfig{Classes: 2, Train: 40, Test: 4, Size: 8, Noise: 0.3, Seed: 9}
	train, _ := SynthCIFAR(cfg)
	means, stds := train.Normalize()
	if len(means) != 3 || len(stds) != 3 {
		t.Fatalf("stats lengths %d/%d", len(means), len(stds))
	}
	// After normalization each channel is ~N(0,1).
	c, hw := 3, 64
	for ch := 0; ch < c; ch++ {
		var s, sq float64
		for i := 0; i < train.Len(); i++ {
			base := (i*c + ch) * hw
			for j := 0; j < hw; j++ {
				v := float64(train.Images.Data[base+j])
				s += v
				sq += v * v
			}
		}
		cnt := float64(train.Len() * hw)
		mean := s / cnt
		std := math.Sqrt(sq/cnt - mean*mean)
		if math.Abs(mean) > 1e-4 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("channel %d after normalize: mean=%v std=%v", ch, mean, std)
		}
	}
}

func TestApplyNormalization(t *testing.T) {
	cfg := SynthConfig{Classes: 2, Train: 20, Test: 20, Size: 8, Noise: 0.3, Seed: 10}
	train, test := SynthCIFAR(cfg)
	orig := test.Images.Clone()
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)
	// Spot-check the transform.
	hw := 64
	idx := 5
	ch := 1
	base := (idx*3 + ch) * hw
	want := (float64(orig.Data[base]) - means[ch]) / stds[ch]
	if math.Abs(float64(test.Images.Data[base])-want) > 1e-5 {
		t.Fatalf("ApplyNormalization mismatch: %v vs %v", test.Images.Data[base], want)
	}
}

func TestSubsetAndShuffle(t *testing.T) {
	cfg := SynthConfig{Classes: 5, Train: 50, Test: 5, Size: 8, Noise: 0.2, Seed: 13}
	train, _ := SynthCIFAR(cfg)
	sub := train.Subset(20)
	if sub.Len() != 20 {
		t.Fatalf("Subset len %d", sub.Len())
	}
	if sub.Images.Data[0] != train.Images.Data[0] {
		t.Fatal("Subset must share storage")
	}
	// Oversized subset clamps.
	if train.Subset(999).Len() != 50 {
		t.Fatal("oversized Subset must clamp")
	}
	shuf := train.Shuffled(tensor.NewRNG(14))
	if err := shuf.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same multiset of labels.
	a, b := train.ClassCounts(), shuf.ClassCounts()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffled must preserve label counts")
		}
	}
	// Order actually changed (overwhelmingly likely).
	sameOrder := true
	for i := range train.Labels {
		if train.Labels[i] != shuf.Labels[i] {
			sameOrder = false
			break
		}
	}
	if sameOrder {
		t.Fatal("Shuffled did not change order")
	}
}

func TestCIFAR10RoundTrip(t *testing.T) {
	cfg := SynthConfig{Classes: 10, Train: 12, Test: 2, Size: 32, Noise: 0.2, Seed: 15}
	train, _ := SynthCIFAR(cfg)
	// Rescale into [0,1] for byte quantization.
	_, max := train.Images.Max()
	min, _ := train.Images.Min()
	span := train.Images.Data[max] - min
	train.Images.Apply(func(v float32) float32 { return (v - min) / span })

	var buf bytes.Buffer
	if err := WriteCIFAR10(train, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCIFAR10(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 12 || got.Classes != 10 {
		t.Fatalf("loaded %d samples, %d classes", got.Len(), got.Classes)
	}
	for i := range got.Labels {
		if got.Labels[i] != train.Labels[i] {
			t.Fatal("labels corrupted in round trip")
		}
	}
	// Pixels match within quantization error.
	for i := 0; i < got.Images.Len(); i += 997 {
		if math.Abs(float64(got.Images.Data[i]-train.Images.Data[i])) > 1.0/255+1e-4 {
			t.Fatalf("pixel %d: %v vs %v", i, got.Images.Data[i], train.Images.Data[i])
		}
	}
}

func TestLoadCIFARErrors(t *testing.T) {
	if _, err := LoadCIFAR10(); err == nil {
		t.Fatal("expected error for no paths")
	}
	if _, err := LoadCIFAR10(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("expected error for missing file")
	}
	// Truncated file.
	path := filepath.Join(t.TempDir(), "trunc.bin")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCIFAR10(path); err == nil {
		t.Fatal("expected error for truncated record")
	}
	// Out-of-range label.
	bad := make([]byte, 3073)
	bad[0] = 200
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCIFAR10(path); err == nil {
		t.Fatal("expected error for label out of range")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cfg := SynthConfig{Classes: 3, Train: 9, Test: 3, Size: 8, Noise: 0.2, Seed: 16}
	train, _ := SynthCIFAR(cfg)
	train.Labels[0] = 99
	if err := train.Validate(); err == nil {
		t.Fatal("expected validation error for bad label")
	}
}
