package experiments

import (
	"fmt"

	"nshd/internal/core"
	"nshd/internal/tensor"
	"nshd/internal/tsne"
)

// Fig11Result captures the explainability analysis: 2-D t-SNE embeddings of
// the test queries' hypervectors before and after NSHD training, with kNN
// label purity quantifying cluster formation.
type Fig11Result struct {
	Model        string
	Layer        int
	Before       *tensor.Tensor // [N, 2] embedding at iteration 0
	After        *tensor.Tensor // [N, 2] embedding after training
	Labels       []int
	PurityBefore float64
	PurityAfter  float64
}

// Fig11 reproduces Fig. 11: hypervectors of the samples embedded with t-SNE
// at the first iteration (untrained manifold, bundled classes only) versus
// after the full NSHD training, on EfficientNet-B0 at layer 7 as in the
// paper.
func (s *Session) Fig11(model string, layer int) (*Fig11Result, Table, error) {
	classes := 10
	zoo, err := s.Teacher(model, classes)
	if err != nil {
		return nil, Table{}, err
	}
	train, test := s.Data(classes)
	// Cap the embedded point count: exact t-SNE is O(n²).
	probe := test
	if probe.Len() > 150 {
		probe = probe.Subset(150)
	}

	cfg := s.pipelineConfig(layer, classes)
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, Table{}, err
	}
	// "First iteration": symbolization with the untrained manifold.
	hvBefore := p.QueryHVs(probe.Images)
	if _, err := p.Train(train, s.Env.Log); err != nil {
		return nil, Table{}, err
	}
	hvAfter := p.QueryHVs(probe.Images)

	tcfg := tsne.DefaultConfig()
	tcfg.Perplexity = 15
	tcfg.Iters = 250
	before, err := tsne.Embed(hvBefore, tcfg)
	if err != nil {
		return nil, Table{}, err
	}
	after, err := tsne.Embed(hvAfter, tcfg)
	if err != nil {
		return nil, Table{}, err
	}
	res := &Fig11Result{
		Model: model, Layer: layer,
		Before: before, After: after, Labels: probe.Labels,
		PurityBefore: tsne.KNNPurity(before, probe.Labels, 10),
		PurityAfter:  tsne.KNNPurity(after, probe.Labels, 10),
	}
	t := Table{
		ID:     "fig11",
		Title:  fmt.Sprintf("t-SNE explainability for %s@%d (kNN label purity of the 2-D embedding)", model, layer),
		Header: []string{"Stage", "kNN purity", "Chance"},
		Rows: [][]string{
			{"first iteration", fmt.Sprintf("%.3f", res.PurityBefore), fmt.Sprintf("%.3f", 1.0/float64(classes))},
			{"after training", fmt.Sprintf("%.3f", res.PurityAfter), fmt.Sprintf("%.3f", 1.0/float64(classes))},
		},
		Notes: []string{"paper: training pulls samples into per-class clusters; purity after ≫ before"},
	}
	return res, t, nil
}
