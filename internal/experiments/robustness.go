package experiments

import (
	"fmt"

	"nshd/internal/core"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// RobustnessRow reports accuracy under one corruption level.
type RobustnessRow struct {
	// Kind is "pixel-noise" or "bit-flip".
	Kind string
	// Level is the noise std (pixel) or flip fraction (bits).
	Level   float64
	NSHDAcc float64
	CNNAcc  float64
}

// Robustness probes the fault-tolerance HD computing is known for — the
// holistic representation means classification degrades gracefully under
// both input noise and hypervector bit corruption (e.g. faulty accelerator
// memory), whereas conventional representations have no such guarantee.
// This is an extension experiment grounded in the paper's Sec. I/II claims
// about the HD representation ("information is encoded equally over a
// vector's components").
//
// Two sweeps on a trained pipeline:
//
//   - pixel-noise: Gaussian noise added to test images, both models scored;
//   - bit-flip: a fraction of each *query hypervector's* components is
//     flipped after encoding; only NSHD has this stage (the CNN column
//     repeats its clean accuracy for reference).
func (s *Session) Robustness(model string, layer int) ([]RobustnessRow, Table, error) {
	classes := 10
	zoo, err := s.Teacher(model, classes)
	if err != nil {
		return nil, Table{}, err
	}
	train, test := s.Data(classes)
	cfg := s.pipelineConfig(layer, classes)
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, Table{}, err
	}
	if _, err := p.Train(train, s.Env.Log); err != nil {
		return nil, Table{}, err
	}

	rng := tensor.NewRNG(s.Env.Seed + 99)
	var rows []RobustnessRow
	t := Table{
		ID:     "robustness",
		Title:  fmt.Sprintf("Noise robustness of NSHD vs CNN (%s@%d)", model, layer),
		Header: []string{"Corruption", "Level", "NSHD", "CNN"},
	}

	// Pixel-noise sweep.
	for _, std := range []float64{0, 0.25, 0.5, 1.0} {
		noisy := test.Images.Clone()
		if std > 0 {
			for i := range noisy.Data {
				noisy.Data[i] += float32(std * rng.NormFloat64())
			}
		}
		nshdCorrect := 0
		for i, pr := range p.Predict(noisy) {
			if pr == test.Labels[i] {
				nshdCorrect++
			}
		}
		cnnAcc := nn.Accuracy(nn.PredictLogits(zoo.Full(), noisy, 32), test.Labels)
		row := RobustnessRow{
			Kind: "pixel-noise", Level: std,
			NSHDAcc: float64(nshdCorrect) / float64(test.Len()),
			CNNAcc:  cnnAcc,
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{"pixel-noise", fmt.Sprintf("%.2f", std),
			fmt.Sprintf("%.3f", row.NSHDAcc), fmt.Sprintf("%.3f", row.CNNAcc)})
	}

	// Bit-flip sweep on the query hypervectors.
	feats := p.ExtractFeatures(test.Images)
	_, _, signed := p.Symbolize(feats, false)
	cleanCNN := rows[0].CNNAcc
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		corrupted := signed.Clone()
		flips := int(frac * float64(p.Cfg.D))
		for i := 0; i < corrupted.Shape[0]; i++ {
			row := corrupted.Row(i)
			for f := 0; f < flips; f++ {
				idx := rng.Intn(p.Cfg.D)
				row[idx] = -row[idx]
			}
		}
		acc := p.HD.Accuracy(corrupted, test.Labels)
		row := RobustnessRow{Kind: "bit-flip", Level: frac, NSHDAcc: acc, CNNAcc: cleanCNN}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{"bit-flip", fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%.3f", acc), "-"})
	}
	t.Notes = append(t.Notes,
		"holistic encoding: accuracy degrades gracefully as hypervector bits are corrupted")
	return rows, t, nil
}
