package experiments

import (
	"fmt"

	"nshd/internal/core"
	"nshd/internal/hdlearn"
)

// AblationRetrainRow compares HD retraining rules on identical encodings.
type AblationRetrainRow struct {
	Method   string
	Accuracy float64
}

// AblationRetrain compares the MASS retraining rule (class-wise similarity
// differences, as used by NSHD) against the classic perceptron-style rule on
// the same BaselineHD encoding — the design choice inherited from
// CascadeHD [3].
func (s *Session) AblationRetrain(model string, layer int) ([]AblationRetrainRow, Table, error) {
	classes := 10
	zoo, err := s.Teacher(model, classes)
	if err != nil {
		return nil, Table{}, err
	}
	train, test := s.Data(classes)
	cfg := s.pipelineConfig(layer, classes)
	cfg.UseManifold = false
	cfg.UseKD = false
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, Table{}, err
	}
	_, _, trainHVs := p.Symbolize(p.ExtractFeatures(train.Images), false)
	_, _, testHVs := p.Symbolize(p.ExtractFeatures(test.Images), false)

	run := func(name string, train func(m *hdlearn.Model)) AblationRetrainRow {
		m := hdlearn.NewModel(classes, cfg.D)
		m.InitBundle(trainHVs, s.mustLabels(10, true))
		train(m)
		return AblationRetrainRow{Method: name, Accuracy: m.Accuracy(testHVs, s.mustLabels(10, false))}
	}
	mcfg := hdlearn.MASSConfig{Epochs: s.Env.HDEpochs, LR: 0.35, Shuffle: false}
	rows := []AblationRetrainRow{
		run("bundle only", func(m *hdlearn.Model) {}),
		run("perceptron", func(m *hdlearn.Model) { m.TrainPerceptron(trainHVs, s.mustLabels(10, true), mcfg, nil) }),
		run("MASS", func(m *hdlearn.Model) { m.TrainMASS(trainHVs, s.mustLabels(10, true), mcfg, nil) }),
	}
	t := Table{
		ID:     "ablation-retrain",
		Title:  fmt.Sprintf("HD retraining rule ablation on %s@%d encodings", model, layer),
		Header: []string{"Method", "Test accuracy"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Method, fmt.Sprintf("%.3f", r.Accuracy)})
	}
	return rows, t, nil
}

func (s *Session) mustLabels(classes int, train bool) []int {
	tr, te := s.Data(classes)
	if train {
		return tr.Labels
	}
	return te.Labels
}

// AblationSTERow compares manifold training through the straight-through
// estimator against a frozen (random) manifold FC.
type AblationSTERow struct {
	Variant  string
	Accuracy float64
}

// AblationSTE isolates Sec. V-C's contribution: decoding class-hypervector
// errors through the HD encoder to train the manifold layer, versus leaving
// the compression layer at its random initialization.
func (s *Session) AblationSTE(model string, layer int) ([]AblationSTERow, Table, error) {
	classes := 10
	_, trained, err := s.trainPipeline(model, layer, classes, nil)
	if err != nil {
		return nil, Table{}, err
	}
	_, frozen, err := s.trainPipeline(model, layer, classes, func(c *core.Config) {
		c.ManifoldLR = 1e-12 // effectively frozen; 0 is rejected by Adam's step being a no-op anyway
	})
	if err != nil {
		return nil, Table{}, err
	}
	rows := []AblationSTERow{
		{Variant: "trained manifold (STE decode)", Accuracy: trained},
		{Variant: "frozen random manifold", Accuracy: frozen},
	}
	t := Table{
		ID:     "ablation-ste",
		Title:  fmt.Sprintf("Manifold training ablation on %s@%d", model, layer),
		Header: []string{"Variant", "Test accuracy"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Variant, fmt.Sprintf("%.3f", r.Accuracy)})
	}
	return rows, t, nil
}

// VanillaClaim reports the Sec. I observation: the state-of-the-art
// non-linear HD encoding's accuracy on raw pixels versus the CNN's, i.e. the
// gap that motivates neuro-symbolic integration.
func (s *Session) VanillaClaim() (Table, error) {
	rows, _, err := s.Fig7()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "vanilla-claim",
		Title:  "Sec. I motivating gap: raw-pixel HD vs CNN",
		Header: []string{"Dataset", "VanillaHD", "Best CNN"},
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if seen[r.Classes] {
			continue
		}
		best := r.CNNAcc
		for _, rr := range rows {
			if rr.Classes == r.Classes && rr.CNNAcc > best {
				best = rr.CNNAcc
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("synthcifar%d", r.Classes),
			fmt.Sprintf("%.3f", r.VanillaAcc),
			fmt.Sprintf("%.3f", best),
		})
		seen[r.Classes] = true
	}
	t.Notes = append(t.Notes, "paper reports 39.88%/19.7% for non-linear encoding on CIFAR-10/100")
	return t, nil
}
