package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyEnv keeps trained experiment tests CPU-cheap: one small model, few
// samples, low dimension.
func tinyEnv() Env {
	e := Quick()
	e.Models = []string{"mobilenetv2"}
	e.TrainN, e.TestN = 96, 48
	e.PretrainEpochs = 4
	e.HDEpochs = 4
	e.D = 512
	e.FHat = 32
	return e
}

func TestTable1ShapeAndBounds(t *testing.T) {
	s := NewSession(Quick())
	rep, table := s.Table1()
	if len(rep.Rows) != 5 {
		t.Fatalf("expected 5 resource rows, got %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Used <= 0 || r.Used > r.Available {
			t.Fatalf("%s: used %d of %d", r.Name, r.Used, r.Available)
		}
	}
	if len(table.Rows) != 5 || table.ID != "table1" {
		t.Fatal("rendered table malformed")
	}
	var buf bytes.Buffer
	table.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("Render produced nothing")
	}
}

func TestFig4AnalyticShape(t *testing.T) {
	s := NewSession(Quick())
	rows, _, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// 4 models × 2 layers × 1 dataset.
	if len(rows) != 8 {
		t.Fatalf("fig4 rows = %d", len(rows))
	}
	perModel := map[string][]Fig4Row{}
	for _, r := range rows {
		perModel[r.Model] = append(perModel[r.Model], r)
		if r.NSHDEnergyPJ <= 0 || r.CNNEnergyPJ <= 0 {
			t.Fatalf("non-positive energy in %+v", r)
		}
	}
	for model, rs := range perModel {
		// Paper shape: the earlier cut saves more energy.
		if rs[0].ImprovementPct <= rs[1].ImprovementPct {
			t.Fatalf("%s: earlier layer %d should save more than %d (%.2f vs %.2f)",
				model, rs[0].Layer, rs[1].Layer, rs[0].ImprovementPct, rs[1].ImprovementPct)
		}
		// And the earlier cut must genuinely save energy.
		if rs[0].ImprovementPct <= 0 {
			t.Fatalf("%s@%d: no energy saving (%.2f%%)", model, rs[0].Layer, rs[0].ImprovementPct)
		}
	}
	// VGG16's FC-heavy head makes it the biggest saver, as in the paper.
	best := rows[0]
	for _, r := range rows {
		if r.ImprovementPct > best.ImprovementPct {
			best = r
		}
	}
	if best.Model != "vgg16" {
		t.Fatalf("largest saving should be vgg16 (paper: 64%% at layer 27), got %s", best.Model)
	}
}

func TestFig5ManifoldSavings(t *testing.T) {
	s := NewSession(Quick())
	rows, _, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 models × 2 layers × 2 dims
		t.Fatalf("fig5 rows = %d", len(rows))
	}
	byKey := map[string]Fig5Row{}
	for _, r := range rows {
		if r.SavingsPct <= 0 {
			t.Fatalf("manifold must always save MACs: %+v", r)
		}
		byKey[keyOf(r.Model, r.Layer, r.D)] = r
	}
	// Paper shape: larger D → larger savings (encoding dominates).
	for _, r := range rows {
		if r.D == 3000 {
			big := byKey[keyOf(r.Model, r.Layer, 10000)]
			if big.SavingsPct <= r.SavingsPct {
				t.Fatalf("%s@%d: savings must grow with D (%.1f vs %.1f)",
					r.Model, r.Layer, r.SavingsPct, big.SavingsPct)
			}
		}
	}
}

func keyOf(m string, l, d int) string {
	return m + string(rune('0'+l%10)) + string(rune('a'+d%7))
}

func TestFig6ThroughputShape(t *testing.T) {
	s := NewSession(Quick())
	rows, _, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 4 models × 3 dims
		t.Fatalf("fig6 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ImprovementPct <= 0 {
			t.Fatalf("NSHD must beat CNN throughput at the earliest layer: %+v", r)
		}
	}
	// Larger D costs FPS.
	perKey := map[string]map[int]float64{}
	for _, r := range rows {
		if perKey[r.Model] == nil {
			perKey[r.Model] = map[int]float64{}
		}
		perKey[r.Model][r.D] = r.NSHDFPS
	}
	for model, fps := range perKey {
		if !(fps[1000] > fps[3000] && fps[3000] > fps[10000]) {
			t.Fatalf("%s: FPS must fall with D: %v", model, fps)
		}
	}
}

func TestTable2SizeOrdering(t *testing.T) {
	s := NewSession(Quick())
	rows, _, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 { // 4+3+2+2 paper layers
		t.Fatalf("table2 rows = %d", len(rows))
	}
	for _, r := range rows {
		// The manifold always undercuts BaselineHD's direct encoding.
		if r.NSHDBytes >= r.BaselineBytes {
			t.Fatalf("%s@%d: NSHD %d must be below BaselineHD %d",
				r.Model, r.Layer, r.NSHDBytes, r.BaselineBytes)
		}
	}
	// VGG16 is the largest CNN, as in the paper's table.
	var vgg, others int64
	for _, r := range rows {
		if r.Model == "vgg16" {
			vgg = r.CNNBytes
		} else if r.CNNBytes > others {
			others = r.CNNBytes
		}
	}
	if vgg <= others {
		t.Fatalf("vgg16 CNN bytes %d should exceed all others (%d)", vgg, others)
	}
}

func TestFig9GridProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment")
	}
	s := NewSession(tinyEnv())
	cells, table, err := s.Fig9("mobilenetv2", 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 60 {
		t.Fatalf("grid cells = %d, want 60", len(cells))
	}
	if len(table.Rows) != 10 {
		t.Fatalf("grid rows = %d", len(table.Rows))
	}
	// The α=0 row must be temperature-independent (paper's grid shows one
	// constant row).
	var zeroRow []float64
	for _, c := range cells {
		if c.Alpha == 0 {
			zeroRow = append(zeroRow, c.Accuracy)
		}
	}
	for _, v := range zeroRow[1:] {
		if math.Abs(v-zeroRow[0]) > 1e-9 {
			t.Fatalf("alpha=0 row must be constant across T: %v", zeroRow)
		}
	}
	for _, c := range cells {
		if c.Accuracy < 0 || c.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", c)
		}
	}
}

func TestFig11PurityImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment")
	}
	s := NewSession(tinyEnv())
	res, table, err := s.Fig11("mobilenetv2", 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.Shape[0] != res.After.Shape[0] {
		t.Fatal("embeddings must cover the same points")
	}
	if len(table.Rows) != 2 {
		t.Fatal("fig11 table malformed")
	}
	// At tinyEnv scale the 4-epoch teacher produces near-random features,
	// so neither embedding clusters decisively; the invariants that must
	// hold are (a) finite purities in [0,1] and (b) training not collapsing
	// the structure that exists. The decisive before≪after contrast is
	// produced by the full run (`nshd-bench -exp fig11`) and the Fig11
	// bench, where the teacher is trained properly.
	for _, p := range []float64{res.PurityBefore, res.PurityAfter} {
		if p < 0 || p > 1 {
			t.Fatalf("purity out of range: %v", p)
		}
	}
	if res.PurityAfter < res.PurityBefore-0.1 {
		t.Fatalf("training collapsed embedding purity: %.3f -> %.3f",
			res.PurityBefore, res.PurityAfter)
	}
}

func TestEnergyAndBestLayers(t *testing.T) {
	for _, m := range []string{"vgg16", "mobilenetv2", "effnetb0", "effnetb7"} {
		if len(EnergyLayers(m)) != 2 {
			t.Fatalf("%s: energy layers %v", m, EnergyLayers(m))
		}
		if BestLayer(m) <= 0 {
			t.Fatalf("%s: best layer %d", m, BestLayer(m))
		}
	}
	if EnergyLayers("nope") != nil {
		t.Fatal("unknown model must yield nil layers")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "x", Title: "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "333", "note: n"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("render missing %q in %q", want, out)
		}
	}
}

func TestSVGRenderers(t *testing.T) {
	fig4 := Fig4SVG([]Fig4Row{{Model: "vgg16", Layer: 27, Classes: 10, ImprovementPct: 33.3}})
	if !contains(fig4, "vgg16@27/10") || !contains(fig4, "<svg") {
		t.Fatal("fig4 SVG malformed")
	}
	fig5 := Fig5SVG([]Fig5Row{
		{Model: "effnetb0", Layer: 6, D: 3000, SavingsPct: 17.7},
		{Model: "effnetb0", Layer: 6, D: 10000, SavingsPct: 40.0},
	})
	if !contains(fig5, "b0@6") || !contains(fig5, "D=10000") {
		t.Fatal("fig5 SVG malformed")
	}
	fig7 := Fig7SVG([]Fig7Row{{Model: "mobilenetv2", Layer: 17, Classes: 10,
		VanillaAcc: 0.1, BaselineAcc: 0.7, NSHDAcc: 0.65, CNNAcc: 0.4}})
	if !contains(fig7, "VanillaHD") || !contains(fig7, "mbv2@17/10") {
		t.Fatal("fig7 SVG malformed")
	}
	fig10 := Fig10SVG([]Fig10Row{
		{D: 1000, Accuracy: 0.8, QuantAcc: 0.79},
		{D: 3000, Accuracy: 0.9, QuantAcc: 0.9},
	})
	if !contains(fig10, "int8 accuracy") {
		t.Fatal("fig10 SVG malformed")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func TestRobustnessDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("trained experiment")
	}
	s := NewSession(tinyEnv())
	rows, table, err := s.Robustness("mobilenetv2", 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(rows) {
		t.Fatal("table/rows mismatch")
	}
	var bitFlip []RobustnessRow
	for _, r := range rows {
		if r.NSHDAcc < 0 || r.NSHDAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", r)
		}
		if r.Kind == "bit-flip" {
			bitFlip = append(bitFlip, r)
		}
	}
	if len(bitFlip) != 5 {
		t.Fatalf("bit-flip sweep rows = %d", len(bitFlip))
	}
	// Graceful degradation: 5% bit corruption must not collapse accuracy
	// relative to clean (the holistic-representation property).
	clean, mild := bitFlip[0].NSHDAcc, bitFlip[1].NSHDAcc
	if clean > 0.3 && mild < clean-0.15 {
		t.Fatalf("5%% bit flips collapsed accuracy: %.3f -> %.3f", clean, mild)
	}
}
