package experiments

import (
	"fmt"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/hwsim"
	"nshd/internal/tensor"
)

// buildPipelines constructs (untrained) NSHD and BaselineHD pipelines for a
// model/layer/classes/D combination — sufficient for every cost-model
// experiment, since costs depend only on the graphs.
func (s *Session) buildPipelines(model string, layer, classes, d int) (*core.Pipeline, *core.Pipeline, error) {
	zoo, err := cnn.Build(model, tensor.NewRNG(s.Env.Seed), classes)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig(layer, classes)
	cfg.D = d
	cfg.FHat = s.Env.FHat
	cfg.Epochs = s.Env.HDEpochs
	cfg.Seed = s.Env.Seed
	nshd, err := core.New(zoo, cfg)
	if err != nil {
		return nil, nil, err
	}
	base, err := core.NewBaselineHD(zoo, cfg)
	if err != nil {
		return nil, nil, err
	}
	return nshd, base, nil
}

// Table1Row mirrors one resource line of Table I.
type Table1Row = hwsim.ResourceRow

// Table1 reproduces Table I: DPU + HD-unit resource utilization on the
// ZCU104 PL fabric at the default dimension.
func (s *Session) Table1() (hwsim.ResourceReport, Table) {
	rep := hwsim.DefaultDPU().Resources(s.Env.D)
	t := Table{
		ID:     "table1",
		Title:  "Design Acceleration On Xilinx ZCU104 (DPU + HD unit)",
		Header: []string{"Resource", "Total", "Available", "Utilization"},
	}
	for _, r := range rep.Rows {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.Used),
			fmt.Sprintf("%d", r.Available),
			fmt.Sprintf("%.2f%%", r.Utilization),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Frequency %.0f MHz, Power %.3f W (paper: 200 MHz, 4.427 W)", rep.FreqMHz, rep.Watts))
	return rep, t
}

// Fig4Row is one bar of Fig. 4: NSHD energy improvement over the CNN.
type Fig4Row struct {
	Model          string
	Layer          int
	Classes        int
	CNNEnergyPJ    float64
	NSHDEnergyPJ   float64
	ImprovementPct float64
}

// Fig4 reproduces Fig. 4: percentage energy-efficiency improvement of NSHD
// inference over the original CNN, per model, cut layer and dataset, on the
// Xavier-class energy model.
func (s *Session) Fig4() ([]Fig4Row, Table, error) {
	em := hwsim.XavierModel()
	var rows []Fig4Row
	t := Table{
		ID:     "fig4",
		Title:  "Energy-efficiency improvement of NSHD vs CNN (percent)",
		Header: []string{"Model", "Layer", "Dataset", "CNN (uJ)", "NSHD (uJ)", "Improvement"},
	}
	for _, model := range s.Env.Models {
		for _, layer := range EnergyLayers(model) {
			for _, classes := range s.Env.classesList() {
				nshd, _, err := s.buildPipelines(model, layer, classes, s.Env.D)
				if err != nil {
					return nil, t, err
				}
				cnnE := em.CNNEnergyPJ(nshd.Zoo.FullStats())
				nshdE := em.NSHDEnergyPJ(nshd.Costs(), nshd.CutStats())
				row := Fig4Row{
					Model: model, Layer: layer, Classes: classes,
					CNNEnergyPJ: cnnE, NSHDEnergyPJ: nshdE,
					ImprovementPct: hwsim.ImprovementPercent(cnnE, nshdE),
				}
				rows = append(rows, row)
				t.Rows = append(t.Rows, []string{
					model, fmt.Sprintf("%d", layer), fmt.Sprintf("synthcifar%d", classes),
					fmt.Sprintf("%.2f", cnnE/1e6), fmt.Sprintf("%.2f", nshdE/1e6),
					fmt.Sprintf("%.1f%%", row.ImprovementPct),
				})
			}
		}
	}
	t.Notes = append(t.Notes, "paper: earlier cut layers save more energy, up to 64% (VGG16@27)")
	return rows, t, nil
}

// Fig5Row is one bar pair of Fig. 5: total MACs with and without the
// manifold learner.
type Fig5Row struct {
	Model       string
	Layer       int
	D           int
	NSHDMACs    int64
	BaselineMAC int64
	SavingsPct  float64
}

// Fig5 reproduces Fig. 5: the manifold learner's reduction in
// multiply-accumulate operations relative to BaselineHD, at D=3000 and
// D=10000.
func (s *Session) Fig5() ([]Fig5Row, Table, error) {
	var rows []Fig5Row
	t := Table{
		ID:     "fig5",
		Title:  "Impact of the manifold learner on MACs (NSHD vs BaselineHD)",
		Header: []string{"Model", "Layer", "D", "NSHD MACs", "BaselineHD MACs", "Savings"},
	}
	classes := 10
	for _, model := range s.Env.Models {
		for _, layer := range EnergyLayers(model) {
			for _, d := range []int{3000, 10000} {
				nshd, base, err := s.buildPipelines(model, layer, classes, d)
				if err != nil {
					return nil, t, err
				}
				nm := nshd.Costs().TotalMACs()
				bm := base.Costs().TotalMACs()
				row := Fig5Row{
					Model: model, Layer: layer, D: d,
					NSHDMACs: nm, BaselineMAC: bm,
					SavingsPct: 100 * (1 - float64(nm)/float64(bm)),
				}
				rows = append(rows, row)
				t.Rows = append(t.Rows, []string{
					model, fmt.Sprintf("%d", layer), fmt.Sprintf("%d", d),
					fmt.Sprintf("%d", nm), fmt.Sprintf("%d", bm),
					fmt.Sprintf("%.1f%%", row.SavingsPct),
				})
			}
		}
	}
	t.Notes = append(t.Notes, "paper: savings grow with D (encoding dominates), e.g. 20.9%/28.95% for EffNet-b0@6/7")
	return rows, t, nil
}

// Fig6Row is one bar group of Fig. 6: FPGA throughput.
type Fig6Row struct {
	Model          string
	Layer          int
	D              int
	CNNFPS         float64
	NSHDFPS        float64
	ImprovementPct float64
}

// Fig6 reproduces Fig. 6: inference throughput (FPS) of NSHD vs the CNN on
// the DPU accelerator, at the earliest energy layer, across hypervector
// dimensions.
func (s *Session) Fig6() ([]Fig6Row, Table, error) {
	dpu := hwsim.DefaultDPU()
	var rows []Fig6Row
	t := Table{
		ID:     "fig6",
		Title:  "FPGA throughput (FPS), NSHD vs CNN on the DPU",
		Header: []string{"Model", "Layer", "D", "CNN FPS", "NSHD FPS", "Improvement"},
	}
	classes := 10
	var impSum float64
	for _, model := range s.Env.Models {
		layer := EnergyLayers(model)[0]
		for _, d := range []int{1000, 3000, 10000} {
			nshd, _, err := s.buildPipelines(model, layer, classes, d)
			if err != nil {
				return nil, t, err
			}
			cnnFPS := dpu.CNNFPS(nshd.Zoo.FullStats().MACs)
			nshdFPS := dpu.NSHDFPS(nshd.Costs())
			row := Fig6Row{
				Model: model, Layer: layer, D: d,
				CNNFPS: cnnFPS, NSHDFPS: nshdFPS,
				ImprovementPct: hwsim.ThroughputImprovementPercent(cnnFPS, nshdFPS),
			}
			rows = append(rows, row)
			impSum += row.ImprovementPct
			t.Rows = append(t.Rows, []string{
				model, fmt.Sprintf("%d", layer), fmt.Sprintf("%d", d),
				fmt.Sprintf("%.0f", cnnFPS), fmt.Sprintf("%.0f", nshdFPS),
				fmt.Sprintf("%.1f%%", row.ImprovementPct),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean improvement %.1f%% (paper: 38.14%% on average)", impSum/float64(len(rows))))
	return rows, t, nil
}

// Table2Row is one line of Table II: model sizes.
type Table2Row struct {
	Model         string
	Layer         int
	CNNBytes      int64
	NSHDBytes     int64
	BaselineBytes int64
}

// Table2 reproduces Table II: learning-parameter size of the original CNN,
// NSHD and BaselineHD at each paper cut layer.
func (s *Session) Table2() ([]Table2Row, Table, error) {
	var rows []Table2Row
	t := Table{
		ID:     "table2",
		Title:  "Model size (learning parameters)",
		Header: []string{"Model", "Layer", "CNN", "NSHD", "BaselineHD"},
	}
	classes := 10
	for _, model := range s.Env.Models {
		for _, layer := range cnn.PaperLayers(model) {
			nshd, base, err := s.buildPipelines(model, layer, classes, s.Env.D)
			if err != nil {
				return nil, t, err
			}
			_, cnnBytes := nshd.CNNCosts()
			row := Table2Row{
				Model: model, Layer: layer,
				CNNBytes:      cnnBytes,
				NSHDBytes:     nshd.Costs().TotalBytes(),
				BaselineBytes: base.Costs().TotalBytes(),
			}
			rows = append(rows, row)
			t.Rows = append(t.Rows, []string{
				model, fmt.Sprintf("%d", layer),
				fmtBytes(row.CNNBytes), fmtBytes(row.NSHDBytes), fmtBytes(row.BaselineBytes),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: NSHD < BaselineHD at every layer thanks to the manifold layer; e.g. VGG16@29 saves 39.91%")
	return rows, t, nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
