// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VII) from this repository's implementation. Each
// experiment returns typed rows plus a renderable Table; cmd/nshd-bench and
// the repository's bench suite are thin wrappers around these runners.
package experiments

import (
	"fmt"
	"io"

	"nshd/internal/cnn"
	"nshd/internal/dataset"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// Env scales the experiment suite. The paper trains on full CIFAR with
// server GPUs; the Quick preset keeps every experiment CPU-feasible while
// preserving the comparisons' shape.
type Env struct {
	// TrainN / TestN are per-dataset sample counts for the 10-class
	// workload; the 100-class variants hold more samples per the class
	// count.
	TrainN, TestN       int
	TrainN100, TestN100 int
	// Include100 adds the 100-class dataset to the trained experiments.
	Include100 bool
	// Models selects the zoo models exercised by trained experiments.
	Models []string
	// PretrainEpochs / HDEpochs are the teacher and HD retraining budgets.
	PretrainEpochs int
	HDEpochs       int
	// D is the default hypervector dimension.
	D int
	// FHat is the manifold width (paper: 100).
	FHat int
	// Seed drives data generation and all model initialization.
	Seed int64
	// CacheDir holds pretrained teacher snapshots ("" disables caching).
	CacheDir string
	// Log receives progress lines (nil silences).
	Log io.Writer
}

// Quick returns the CPU-budget preset used by the bench suite: the 10-class
// workload across all four zoo models.
func Quick() Env {
	return Env{
		TrainN: 320, TestN: 160,
		TrainN100: 1000, TestN100: 300,
		Include100:     false,
		Models:         cnn.Names(),
		PretrainEpochs: 18,
		HDEpochs:       8,
		D:              3000,
		FHat:           100,
		Seed:           1,
		CacheDir:       "",
	}
}

// Full returns the extended preset (both datasets, more samples). Expect
// tens of minutes of CPU time on first run; teachers are cached.
func Full() Env {
	e := Quick()
	e.TrainN, e.TestN = 512, 256
	e.Include100 = true
	e.PretrainEpochs = 8
	return e
}

// classesList returns the dataset class counts the env evaluates.
func (e Env) classesList() []int {
	if e.Include100 {
		return []int{10, 100}
	}
	return []int{10}
}

// Session memoizes datasets, pretrained teachers and extracted features
// across experiments so a full suite run pays each CNN cost once.
type Session struct {
	Env Env

	data     map[int][2]*dataset.Dataset // classes -> {train, test}
	teachers map[string]*cnn.Model       // "name/classes"
	cnnAcc   map[string]float64          // teacher test accuracy
}

// NewSession creates an empty session for the environment.
func NewSession(env Env) *Session {
	return &Session{
		Env:      env,
		data:     make(map[int][2]*dataset.Dataset),
		teachers: make(map[string]*cnn.Model),
		cnnAcc:   make(map[string]float64),
	}
}

func (s *Session) logf(format string, args ...any) {
	if s.Env.Log != nil {
		fmt.Fprintf(s.Env.Log, format+"\n", args...)
	}
}

// Data returns the normalized train/test splits for a class count.
func (s *Session) Data(classes int) (*dataset.Dataset, *dataset.Dataset) {
	if pair, ok := s.data[classes]; ok {
		return pair[0], pair[1]
	}
	trainN, testN := s.Env.TrainN, s.Env.TestN
	if classes >= 100 {
		trainN, testN = s.Env.TrainN100, s.Env.TestN100
	}
	cfg := dataset.SynthConfig{
		Classes: classes, Train: trainN, Test: testN,
		Size: 32, Noise: 0.3, Seed: s.Env.Seed,
	}
	train, test := dataset.SynthCIFAR(cfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)
	s.data[classes] = [2]*dataset.Dataset{train, test}
	s.logf("data: synthcifar%d train=%d test=%d", classes, train.Len(), test.Len())
	return train, test
}

// Teacher returns the pretrained zoo model for (name, classes), training it
// on first use (or restoring it from the cache directory).
func (s *Session) Teacher(name string, classes int) (*cnn.Model, error) {
	key := fmt.Sprintf("%s/%d", name, classes)
	if m, ok := s.teachers[key]; ok {
		return m, nil
	}
	zoo, err := cnn.Build(name, tensor.NewRNG(s.Env.Seed+int64(classes)), classes)
	if err != nil {
		return nil, err
	}
	train, test := s.Data(classes)
	pcfg := cnn.PretrainConfig{
		Epochs:    s.Env.PretrainEpochs,
		BatchSize: 32,
		LR:        0.05,
		Momentum:  0.9,
		CacheDir:  s.Env.CacheDir,
		Log:       s.Env.Log,
	}
	s.logf("teacher: pretraining %s on %d classes", name, classes)
	trainAcc, cached, err := cnn.Pretrain(zoo, train, pcfg, tensor.NewRNG(s.Env.Seed+7))
	if err != nil {
		return nil, err
	}
	testAcc := nn.Evaluate(zoo.Full(), test.Images, test.Labels, 32)
	s.logf("teacher: %s/%d train=%.3f test=%.3f cached=%v", name, classes, trainAcc, testAcc, cached)
	s.teachers[key] = zoo
	s.cnnAcc[key] = testAcc
	return zoo, nil
}

// CNNTestAccuracy returns the cached teacher's test accuracy (training it if
// needed).
func (s *Session) CNNTestAccuracy(name string, classes int) (float64, error) {
	key := fmt.Sprintf("%s/%d", name, classes)
	if acc, ok := s.cnnAcc[key]; ok {
		return acc, nil
	}
	if _, err := s.Teacher(name, classes); err != nil {
		return 0, err
	}
	return s.cnnAcc[key], nil
}

// EnergyLayers returns the two cut layers per model used by the energy and
// KD comparisons (the paper selects two per model; for EfficientNets those
// are stages 6 and 7).
func EnergyLayers(model string) []int {
	switch model {
	case "vgg16":
		return []int{27, 29}
	case "mobilenetv2":
		return []int{14, 17}
	case "effnetb0", "effnetb7":
		return []int{6, 7}
	default:
		return nil
	}
}

// BestLayer returns the deepest paper layer per model — the cut used by the
// headline accuracy comparison (Fig. 7).
func BestLayer(model string) int {
	layers := cnn.PaperLayers(model)
	return layers[len(layers)-1]
}

// Table is a rendered experiment artifact: header, rows and free-form notes.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
