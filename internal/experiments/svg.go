package experiments

import (
	"fmt"

	"nshd/internal/plot"
)

// This file renders experiment rows as SVG figures mirroring the paper's
// charts, for `nshd-bench -svg DIR`.

// Fig4SVG renders the energy-improvement bars.
func Fig4SVG(rows []Fig4Row) string {
	var groups []plot.BarGroup
	for _, r := range rows {
		groups = append(groups, plot.BarGroup{
			Label:  fmt.Sprintf("%s@%d/%d", shortName(r.Model), r.Layer, r.Classes),
			Values: []float64{r.ImprovementPct},
		})
	}
	return plot.GroupedBars("Fig. 4 — Energy-efficiency improvement of NSHD vs CNN",
		[]string{"improvement %"}, groups, "%")
}

// Fig5SVG renders the manifold MAC-savings bars (series per dimension).
func Fig5SVG(rows []Fig5Row) string {
	byKey := map[string]*plot.BarGroup{}
	var order []string
	for _, r := range rows {
		key := fmt.Sprintf("%s@%d", shortName(r.Model), r.Layer)
		g, ok := byKey[key]
		if !ok {
			g = &plot.BarGroup{Label: key}
			byKey[key] = g
			order = append(order, key)
		}
		g.Values = append(g.Values, r.SavingsPct)
	}
	var groups []plot.BarGroup
	for _, k := range order {
		groups = append(groups, *byKey[k])
	}
	return plot.GroupedBars("Fig. 5 — MAC savings of the manifold learner vs BaselineHD",
		[]string{"D=3000", "D=10000"}, groups, "savings %")
}

// Fig6SVG renders throughput-improvement bars (series per dimension).
func Fig6SVG(rows []Fig6Row) string {
	byModel := map[string]*plot.BarGroup{}
	var order []string
	for _, r := range rows {
		key := shortName(r.Model)
		g, ok := byModel[key]
		if !ok {
			g = &plot.BarGroup{Label: key}
			byModel[key] = g
			order = append(order, key)
		}
		g.Values = append(g.Values, r.ImprovementPct)
	}
	var groups []plot.BarGroup
	for _, k := range order {
		groups = append(groups, *byModel[k])
	}
	return plot.GroupedBars("Fig. 6 — FPGA throughput improvement of NSHD vs CNN",
		[]string{"D=1000", "D=3000", "D=10000"}, groups, "FPS gain %")
}

// Fig7SVG renders the accuracy comparison bars.
func Fig7SVG(rows []Fig7Row) string {
	var groups []plot.BarGroup
	for _, r := range rows {
		groups = append(groups, plot.BarGroup{
			Label:  fmt.Sprintf("%s@%d/%d", shortName(r.Model), r.Layer, r.Classes),
			Values: []float64{r.VanillaAcc, r.BaselineAcc, r.NSHDAcc, r.CNNAcc},
		})
	}
	return plot.GroupedBars("Fig. 7 — Accuracy comparison",
		[]string{"VanillaHD", "BaselineHD", "NSHD", "CNN"}, groups, "accuracy")
}

// Fig8SVG renders the KD-impact bars.
func Fig8SVG(rows []Fig8Row) string {
	var groups []plot.BarGroup
	for _, r := range rows {
		groups = append(groups, plot.BarGroup{
			Label:  fmt.Sprintf("%s@%d", shortName(r.Model), r.Layer),
			Values: []float64{r.NoKDAcc, r.KDAcc, r.CNNAcc},
		})
	}
	return plot.GroupedBars("Fig. 8 — Impact of knowledge distillation",
		[]string{"NSHD no-KD", "NSHD KD", "CNN"}, groups, "accuracy")
}

// Fig10SVG renders the dimension/accuracy tradeoff lines.
func Fig10SVG(rows []Fig10Row) string {
	var acc, quant plot.Series
	acc.Name, quant.Name = "float accuracy", "int8 accuracy"
	for _, r := range rows {
		acc.X = append(acc.X, float64(r.D))
		acc.Y = append(acc.Y, r.Accuracy)
		quant.X = append(quant.X, float64(r.D))
		quant.Y = append(quant.Y, r.QuantAcc)
	}
	return plot.Lines("Fig. 10 — Accuracy vs hypervector dimension",
		[]plot.Series{acc, quant}, "D", "accuracy")
}

// Fig11SVG renders the before/after t-SNE scatter plots.
func Fig11SVG(res *Fig11Result) (before, after string) {
	toXY := func(emb interface{ At(...int) float32 }) (x, y []float64) {
		for i := range res.Labels {
			x = append(x, float64(emb.At(i, 0)))
			y = append(y, float64(emb.At(i, 1)))
		}
		return x, y
	}
	bx, by := toXY(res.Before)
	ax, ay := toXY(res.After)
	before = plot.Scatter(fmt.Sprintf("Fig. 11a — hypervectors at first iteration (purity %.2f)", res.PurityBefore), bx, by, res.Labels)
	after = plot.Scatter(fmt.Sprintf("Fig. 11b — hypervectors after training (purity %.2f)", res.PurityAfter), ax, ay, res.Labels)
	return before, after
}

func shortName(model string) string {
	switch model {
	case "mobilenetv2":
		return "mbv2"
	case "effnetb0":
		return "b0"
	case "effnetb7":
		return "b7"
	default:
		return model
	}
}
