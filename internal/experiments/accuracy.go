package experiments

import (
	"fmt"

	"nshd/internal/baseline"
	"nshd/internal/core"
	"nshd/internal/hwsim"
	"nshd/internal/nn"
	"nshd/internal/quant"
)

// pipelineConfig builds the session's standard NSHD config for a cut layer.
func (s *Session) pipelineConfig(layer, classes int) core.Config {
	cfg := core.DefaultConfig(layer, classes)
	cfg.D = s.Env.D
	cfg.FHat = s.Env.FHat
	cfg.Epochs = s.Env.HDEpochs
	cfg.Seed = s.Env.Seed
	return cfg
}

// trainPipeline assembles and trains a pipeline variant over the pretrained
// teacher, returning its test accuracy.
func (s *Session) trainPipeline(model string, layer, classes int, mutate func(*core.Config)) (*core.Pipeline, float64, error) {
	zoo, err := s.Teacher(model, classes)
	if err != nil {
		return nil, 0, err
	}
	cfg := s.pipelineConfig(layer, classes)
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := core.New(zoo, cfg)
	if err != nil {
		return nil, 0, err
	}
	train, test := s.Data(classes)
	if _, err := p.Train(train, s.Env.Log); err != nil {
		return nil, 0, err
	}
	return p, p.Accuracy(test), nil
}

// Fig7Row is one model/dataset group of the accuracy comparison.
type Fig7Row struct {
	Model       string
	Layer       int
	Classes     int
	VanillaAcc  float64
	BaselineAcc float64
	NSHDAcc     float64
	CNNAcc      float64
}

// Fig7 reproduces Fig. 7: accuracy of VanillaHD (non-linear encoding on raw
// pixels), BaselineHD (cut-CNN features, no manifold/KD), NSHD and the
// original CNN.
func (s *Session) Fig7() ([]Fig7Row, Table, error) {
	var rows []Fig7Row
	t := Table{
		ID:     "fig7",
		Title:  "Accuracy comparison: VanillaHD / BaselineHD / NSHD / CNN",
		Header: []string{"Model", "Layer", "Dataset", "VanillaHD", "BaselineHD", "NSHD", "CNN"},
	}
	for _, classes := range s.Env.classesList() {
		train, test := s.Data(classes)
		// VanillaHD is model-independent: train once per dataset.
		vcfg := baseline.DefaultVanillaConfig()
		vcfg.D = s.Env.D
		vcfg.Epochs = s.Env.HDEpochs
		vcfg.Seed = s.Env.Seed
		van, err := baseline.NewVanillaHD(train, vcfg)
		if err != nil {
			return nil, t, err
		}
		if _, err := van.Train(train, nil); err != nil {
			return nil, t, err
		}
		vanAcc := van.Accuracy(test)
		s.logf("fig7: vanillahd/%d acc=%.3f", classes, vanAcc)

		for _, model := range s.Env.Models {
			layer := BestLayer(model)
			nshd, nshdAcc, err := s.trainPipeline(model, layer, classes, nil)
			if err != nil {
				return nil, t, err
			}
			_ = nshd
			_, baseAcc, err := s.trainPipeline(model, layer, classes, func(c *core.Config) {
				c.UseManifold = false
				c.UseKD = false
			})
			if err != nil {
				return nil, t, err
			}
			cnnAcc, err := s.CNNTestAccuracy(model, classes)
			if err != nil {
				return nil, t, err
			}
			row := Fig7Row{
				Model: model, Layer: layer, Classes: classes,
				VanillaAcc: vanAcc, BaselineAcc: baseAcc, NSHDAcc: nshdAcc, CNNAcc: cnnAcc,
			}
			rows = append(rows, row)
			t.Rows = append(t.Rows, []string{
				model, fmt.Sprintf("%d", layer), fmt.Sprintf("synthcifar%d", classes),
				fmt.Sprintf("%.3f", vanAcc), fmt.Sprintf("%.3f", baseAcc),
				fmt.Sprintf("%.3f", nshdAcc), fmt.Sprintf("%.3f", cnnAcc),
			})
			s.logf("fig7: %s@%d/%d baseline=%.3f nshd=%.3f cnn=%.3f",
				model, layer, classes, baseAcc, nshdAcc, cnnAcc)
		}
	}
	t.Notes = append(t.Notes, "paper: VanillaHD fails on images; NSHD matches or beats the CNN with sufficient layers and beats BaselineHD throughout")
	return rows, t, nil
}

// Fig8Row compares NSHD with and without knowledge distillation.
type Fig8Row struct {
	Model   string
	Layer   int
	Classes int
	NoKDAcc float64
	KDAcc   float64
	CNNAcc  float64
	GainPct float64
}

// Fig8 reproduces Fig. 8: the impact of knowledge distillation — (a) across
// EfficientNet-B0's cut layers, (b) across the other models at their second
// energy layer.
func (s *Session) Fig8() ([]Fig8Row, Table, error) {
	var rows []Fig8Row
	t := Table{
		ID:     "fig8",
		Title:  "Impact of knowledge distillation on NSHD accuracy",
		Header: []string{"Model", "Layer", "Dataset", "NSHD no-KD", "NSHD KD", "CNN", "KD gain"},
	}
	classes := 10
	type target struct {
		model string
		layer int
	}
	var targets []target
	// (a) the per-layer sweep on EfficientNet-B0.
	for _, l := range []int{5, 6, 7, 8} {
		targets = append(targets, target{"effnetb0", l})
	}
	// (b) the other models at their second energy layer.
	for _, m := range s.Env.Models {
		if m == "effnetb0" {
			continue
		}
		targets = append(targets, target{m, EnergyLayers(m)[1]})
	}
	for _, tg := range targets {
		_, kdAcc, err := s.trainPipeline(tg.model, tg.layer, classes, nil)
		if err != nil {
			return nil, t, err
		}
		_, noKD, err := s.trainPipeline(tg.model, tg.layer, classes, func(c *core.Config) {
			c.UseKD = false
		})
		if err != nil {
			return nil, t, err
		}
		cnnAcc, err := s.CNNTestAccuracy(tg.model, classes)
		if err != nil {
			return nil, t, err
		}
		row := Fig8Row{
			Model: tg.model, Layer: tg.layer, Classes: classes,
			NoKDAcc: noKD, KDAcc: kdAcc, CNNAcc: cnnAcc,
			GainPct: 100 * (kdAcc - noKD),
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			tg.model, fmt.Sprintf("%d", tg.layer), fmt.Sprintf("synthcifar%d", classes),
			fmt.Sprintf("%.3f", noKD), fmt.Sprintf("%.3f", kdAcc),
			fmt.Sprintf("%.3f", cnnAcc), fmt.Sprintf("%+.1fpp", row.GainPct),
		})
		s.logf("fig8: %s@%d noKD=%.3f KD=%.3f", tg.model, tg.layer, noKD, kdAcc)
	}
	t.Notes = append(t.Notes, "paper: KD fills the accuracy gap left by cutting at earlier layers")
	return rows, t, nil
}

// Fig9Cell is one accuracy of the hyperparameter grid.
type Fig9Cell struct {
	Alpha, Temp float64
	Accuracy    float64
}

// Fig9 reproduces Fig. 9: the KD hyperparameter search grid (α × T) for one
// model/layer, sharing extracted features and teacher logits across all
// cells. The α=0 row is temperature-independent by construction, exactly as
// in the paper's grid.
func (s *Session) Fig9(model string, layer int) ([]Fig9Cell, Table, error) {
	classes := 10
	zoo, err := s.Teacher(model, classes)
	if err != nil {
		return nil, Table{}, err
	}
	train, test := s.Data(classes)

	baseCfg := s.pipelineConfig(layer, classes)
	probe, err := core.New(zoo, baseCfg)
	if err != nil {
		return nil, Table{}, err
	}
	trainFeats := probe.ExtractFeatures(train.Images)
	teacherLogits := nn.PredictLogits(zoo.Full(), train.Images, 32)
	testFeats := probe.ExtractFeatures(test.Images)

	// Cap per-cell retraining: the grid has 60 cells and each shares the
	// extracted features, so a short schedule per cell keeps the sweep
	// tractable while preserving the surface's shape.
	if baseCfg.Epochs > 4 {
		baseCfg.Epochs = 4
	}
	alphas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	temps := []float64{12, 13, 14, 15, 16, 17}
	var cells []Fig9Cell
	t := Table{
		ID:    "fig9",
		Title: fmt.Sprintf("KD hyperparameter grid for %s@%d (test accuracy)", model, layer),
		Header: append([]string{"alpha\\T"}, func() []string {
			var h []string
			for _, tt := range temps {
				h = append(h, fmt.Sprintf("%.0f", tt))
			}
			return h
		}()...),
	}
	for _, a := range alphas {
		rowCells := []string{fmt.Sprintf("%.1f", a)}
		for _, tt := range temps {
			cfg := baseCfg
			cfg.Alpha, cfg.Temp = a, tt
			p, err := core.New(zoo, cfg)
			if err != nil {
				return nil, t, err
			}
			if _, err := p.TrainOnFeatures(trainFeats, train.Labels, teacherLogits, nil); err != nil {
				return nil, t, err
			}
			acc := p.AccuracyOnFeatures(testFeats, test.Labels)
			cells = append(cells, Fig9Cell{Alpha: a, Temp: tt, Accuracy: acc})
			rowCells = append(rowCells, fmt.Sprintf("%.4f", acc))
		}
		t.Rows = append(t.Rows, rowCells)
	}
	t.Notes = append(t.Notes, "paper (EffNet-b7@7): KD boosts accuracy by up to 7.39% over alpha=0; best cells around alpha 0.6-0.7, T 14-16")
	return cells, t, nil
}

// Fig10Row is one point of the dimension/efficiency/accuracy tradeoff.
type Fig10Row struct {
	Model    string
	D        int
	Accuracy float64
	QuantAcc float64
	FPS      float64
	HDBytes  int64
}

// Fig10 reproduces Fig. 10: accuracy and FPGA efficiency across hypervector
// dimensions, including the int8-quantized inference path the DPU deploys.
func (s *Session) Fig10(model string) ([]Fig10Row, Table, error) {
	classes := 10
	layer := BestLayer(model)
	zoo, err := s.Teacher(model, classes)
	if err != nil {
		return nil, Table{}, err
	}
	train, test := s.Data(classes)
	dpu := hwsim.DefaultDPU()

	baseCfg := s.pipelineConfig(layer, classes)
	probe, err := core.New(zoo, baseCfg)
	if err != nil {
		return nil, Table{}, err
	}
	trainFeats := probe.ExtractFeatures(train.Images)
	teacherLogits := nn.PredictLogits(zoo.Full(), train.Images, 32)
	testFeats := probe.ExtractFeatures(test.Images)

	var rows []Fig10Row
	t := Table{
		ID:     "fig10",
		Title:  fmt.Sprintf("Dimension vs efficiency/accuracy tradeoff for %s@%d", model, layer),
		Header: []string{"D", "Accuracy", "int8 accuracy", "FPS", "HD params"},
	}
	for _, d := range []int{1000, 3000, 10000} {
		cfg := baseCfg
		cfg.D = d
		p, err := core.New(zoo, cfg)
		if err != nil {
			return nil, t, err
		}
		if _, err := p.TrainOnFeatures(trainFeats, train.Labels, teacherLogits, nil); err != nil {
			return nil, t, err
		}
		acc := p.AccuracyOnFeatures(testFeats, test.Labels)

		// Quantized path: int8 class hypervectors, integer similarity.
		q := quant.QuantizeHD(p.HD)
		_, _, signed := p.Symbolize(testFeats, false)
		qPreds, err := q.PredictBatch(signed)
		if err != nil {
			return nil, t, err
		}
		qCorrect := 0
		for i, pr := range qPreds {
			if pr == test.Labels[i] {
				qCorrect++
			}
		}
		qAcc := float64(qCorrect) / float64(len(qPreds))

		hdBytes := p.Proj.MemoryBytes(true) + p.HD.MemoryBytes(false) +
			manifoldBytes(p)
		row := Fig10Row{
			Model: model, D: d,
			Accuracy: acc, QuantAcc: qAcc,
			FPS:     dpu.NSHDFPS(p.Costs()),
			HDBytes: hdBytes,
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d), fmt.Sprintf("%.3f", acc), fmt.Sprintf("%.3f", qAcc),
			fmt.Sprintf("%.0f", row.FPS), fmtBytes(hdBytes),
		})
		s.logf("fig10: %s D=%d acc=%.3f int8=%.3f fps=%.0f", model, d, acc, qAcc, row.FPS)
	}
	t.Notes = append(t.Notes,
		"paper: D=3000 suffices (70% parameter saving vs 10000); D=1000 loses ~1.64% accuracy on average",
		"paper: Vitis AI int8 quantization has very minor accuracy impact")
	return rows, t, nil
}

func manifoldBytes(p *core.Pipeline) int64 {
	if p.Manifold == nil {
		return 0
	}
	return p.Manifold.Stats().Params * 4
}
