package core

import (
	"testing"

	"nshd/internal/dataset"
	"nshd/internal/tensor"
)

// Empty batches used to slip through as nil tensors (ExtractFeatures) and
// NaN scores (Accuracy's divide by zero). They must instead produce empty,
// well-shaped results.
func TestEmptyBatchEdgeCases(t *testing.T) {
	zoo := tinyZoo(71, 4)
	p, err := New(zoo, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	empty := tensor.New(0, 3, 16, 16)

	feats := p.ExtractFeatures(empty)
	if feats == nil {
		t.Fatal("ExtractFeatures returned nil for an empty batch")
	}
	wantShape := append([]int{0}, p.FeatShape...)
	for i, s := range wantShape {
		if feats.Shape[i] != s {
			t.Fatalf("empty feature shape %v, want %v", feats.Shape, wantShape)
		}
	}

	if preds := p.Predict(empty); len(preds) != 0 {
		t.Fatalf("Predict on empty batch returned %v", preds)
	}
	if preds := p.PredictDirect(empty); len(preds) != 0 {
		t.Fatalf("PredictDirect on empty batch returned %v", preds)
	}
	if preds := p.Predict(nil); len(preds) != 0 {
		t.Fatalf("Predict(nil) returned %v", preds)
	}

	hvs := p.QueryHVs(empty)
	if hvs == nil || hvs.Shape[0] != 0 || hvs.Shape[1] != p.Cfg.D {
		t.Fatalf("QueryHVs on empty batch returned %v", hvs)
	}

	d := &dataset.Dataset{Name: "empty", Images: empty, Labels: nil, Classes: 4}
	if acc := p.Accuracy(d); acc != 0 {
		t.Fatalf("Accuracy on empty dataset = %v, want 0 (not NaN)", acc)
	}
	if acc := p.AccuracyOnFeatures(feats, nil); acc != 0 {
		t.Fatalf("AccuracyOnFeatures on empty features = %v, want 0", acc)
	}
}
