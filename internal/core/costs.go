package core

import (
	"nshd/internal/nn"
)

// CostReport breaks down per-sample inference cost and model storage for one
// pipeline configuration. It feeds Fig. 5 (MACs) and Table II (model size).
type CostReport struct {
	// ExtractorMACs is the cut CNN prefix cost per sample.
	ExtractorMACs int64
	// ManifoldMACs is Ψ's FC cost (0 when the manifold is disabled).
	ManifoldMACs int64
	// LSHMACs is BaselineHD's hyperplane-hash cost (0 for NSHD).
	LSHMACs int64
	// EncodeMACs is the Φ_P binding/bundling cost (F·D or F̂·D).
	EncodeMACs int64
	// SimilarityMACs is the class-comparison cost (K·D).
	SimilarityMACs int64

	// ExtractorBytes is the cut CNN's parameter storage (float32).
	ExtractorBytes int64
	// ManifoldBytes is Ψ's parameter storage.
	ManifoldBytes int64
	// LSHBytes is BaselineHD's hyperplane storage (packed bipolar).
	LSHBytes int64
	// ProjectionBytes is the binary random projection, stored packed
	// (1 bit/element) as on the paper's GPU/FPGA targets.
	ProjectionBytes int64
	// ClassHVBytes is the class hypervector matrix (float32 K×D).
	ClassHVBytes int64
}

// TotalMACs is the per-sample inference cost.
func (c CostReport) TotalMACs() int64 {
	return c.ExtractorMACs + c.ManifoldMACs + c.LSHMACs + c.EncodeMACs + c.SimilarityMACs
}

// HDMACs is the symbolic-side cost (everything but the CNN prefix) — the
// portion the manifold learner shrinks (Fig. 5).
func (c CostReport) HDMACs() int64 {
	return c.ManifoldMACs + c.LSHMACs + c.EncodeMACs + c.SimilarityMACs
}

// TotalBytes is the full model size in bytes (Table II).
func (c CostReport) TotalBytes() int64 {
	return c.ExtractorBytes + c.ManifoldBytes + c.LSHBytes + c.ProjectionBytes + c.ClassHVBytes
}

// Costs computes the pipeline's cost report from its real component graphs.
func (p *Pipeline) Costs() CostReport {
	var c CostReport
	ext := p.Extractor.Stats(p.Zoo.InShape)
	c.ExtractorMACs = ext.MACs
	c.ExtractorBytes = ext.Params * 4
	if p.Manifold != nil {
		ms := p.Manifold.Stats()
		c.ManifoldMACs = ms.MACs
		c.ManifoldBytes = ms.Params * 4
	}
	if p.LSH != nil {
		c.LSHMACs = p.LSH.EncodeMACs()
		c.LSHBytes = p.LSH.MemoryBytes(true)
	}
	c.EncodeMACs = p.Proj.EncodeMACs()
	c.ProjectionBytes = p.Proj.MemoryBytes(true)
	c.SimilarityMACs = p.HD.InferenceMACs()
	c.ClassHVBytes = p.HD.MemoryBytes(false)
	return c
}

// CNNCosts reports the original full CNN's per-sample MACs and parameter
// bytes — the baseline NSHD's savings are measured against.
func (p *Pipeline) CNNCosts() (macs int64, bytes int64) {
	s := p.Zoo.FullStats()
	return s.MACs, s.Params * 4
}

// CutStats exposes the extractor's full stats for tooling.
func (p *Pipeline) CutStats() nn.Stats { return p.Extractor.Stats(p.Zoo.InShape) }
