package core

import (
	"fmt"
	"io"

	"nshd/internal/cnn"
	"nshd/internal/dataset"
	"nshd/internal/hdc"
	"nshd/internal/hdlearn"
	"nshd/internal/manifold"
	"nshd/internal/metrics"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// Pipeline is a fully assembled NSHD model.
//
// Symbolization (Sec. IV): H = Φ_P(Ψ(conv(x))) — the cut CNN extracts
// features, the manifold learner compresses them to F̂ values, and the
// binary random projection encodes them into a D-dimensional hypervector.
// Classification compares H against the class hypervectors.
type Pipeline struct {
	Cfg Config
	// Zoo is the full CNN; it is the distillation teacher and shares its
	// pretrained weights with the extractor.
	Zoo *cnn.Model
	// Extractor is the cut prefix conv(·).
	Extractor *nn.Sequential
	// FeatShape is the per-sample extractor output shape [C, H, W].
	FeatShape []int
	// Manifold is Ψ; nil when Cfg.UseManifold is false (BaselineHD).
	Manifold *manifold.Learner
	// LSH holds BaselineHD's random hyperplanes ([F, LSHDim] bipolar); nil
	// unless the manifold is disabled and Cfg.LSHDim > 0.
	LSH *hdc.Projection
	// Proj is the binary random projection Φ_P.
	Proj *hdc.Projection
	// HD holds the class hypervectors.
	HD *hdlearn.Model

	rng *tensor.RNG

	// Cached serving engine (see serving.go), keyed on the HD model version
	// and the inference-kernel config.
	srv        Predictor
	srvVersion uint64
	srvPacked  bool
	srvTried   bool
}

// New assembles an NSHD pipeline over a (pretrained) zoo model.
func New(zoo *cnn.Model, cfg Config) (*Pipeline, error) {
	if cfg.Classes == 0 {
		cfg.Classes = zoo.Classes
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if zoo.Classes != cfg.Classes {
		return nil, fmt.Errorf("core: zoo model has %d classes, config wants %d", zoo.Classes, cfg.Classes)
	}
	extractor, err := zoo.Cut(cfg.CutLayer)
	if err != nil {
		return nil, err
	}
	featShape := extractor.OutShape(zoo.InShape)
	if len(featShape) != 3 {
		return nil, fmt.Errorf("core: extractor output shape %v, want [C H W]", featShape)
	}
	rng := tensor.NewRNG(cfg.Seed)
	p := &Pipeline{
		Cfg:       cfg,
		Zoo:       zoo,
		Extractor: extractor,
		FeatShape: featShape,
		HD:        hdlearn.NewModel(cfg.Classes, cfg.D),
		rng:       rng,
	}
	encF := featShape[0] * featShape[1] * featShape[2]
	switch {
	case cfg.UseManifold:
		ml, err := manifold.New(rng.Fork(), featShape, cfg.FHat)
		if err != nil {
			return nil, err
		}
		if err := ml.CheckClasses(cfg.Classes); err != nil {
			return nil, err
		}
		p.Manifold = ml
		encF = cfg.FHat
	case cfg.LSHDim > 0:
		// BaselineHD's reduction [9]: sign projections onto LSHDim random
		// hyperplanes (bipolar, so the hash is add/sub only).
		l := cfg.LSHDim
		if l > encF {
			l = encF
		}
		p.LSH = hdc.NewSeededProjection(rng.Int63(), encF, l)
		encF = l
	}
	// Seeded projections: the matrix is a pure function of one 64-bit draw
	// from the config's RNG stream (the same single draw Fork would make, so
	// every downstream sampling decision is unchanged). Serving engines can
	// then rematerialize projection panels from the seed instead of keeping
	// the D×F matrix resident, and snapshots keep reconstructing the
	// projection from Cfg.Seed exactly as before.
	p.Proj = hdc.NewSeededProjection(rng.Int63(), encF, cfg.D)
	return p, nil
}

// NewBaselineHD assembles the prior-work comparison model [9]: the same cut
// feature extractor, an LSH random-hyperplane reduction in place of the
// manifold learner, and plain MASS retraining without knowledge
// distillation.
func NewBaselineHD(zoo *cnn.Model, cfg Config) (*Pipeline, error) {
	cfg.UseManifold = false
	cfg.UseKD = false
	if cfg.LSHDim == 0 {
		cfg.LSHDim = 1024
	}
	return New(zoo, cfg)
}

// ExtractFeatures runs the frozen extractor over images in batches,
// returning the [N, C, H, W] feature tensor.
func (p *Pipeline) ExtractFeatures(images *tensor.Tensor) *tensor.Tensor {
	n := images.Shape[0]
	out := tensor.New(append([]int{n}, p.FeatShape...)...)
	if n == 0 {
		return out
	}
	bs := p.Cfg.BatchSize
	sampleLen := images.Len() / n
	featLen := p.FeatShape[0] * p.FeatShape[1] * p.FeatShape[2]
	for start := 0; start < n; start += bs {
		end := start + bs
		if end > n {
			end = n
		}
		batchShape := append([]int{end - start}, images.Shape[1:]...)
		bx := tensor.FromSlice(images.Data[start*sampleLen:end*sampleLen], batchShape...)
		feats := p.Extractor.Forward(bx, false)
		copy(out.Data[start*featLen:end*featLen], feats.Data)
	}
	return out
}

// Symbolize maps a feature batch to query hypervectors: raw (pre-sign) and
// signed bipolar, via the manifold (when enabled) and the projection.
// Set train to cache manifold intermediates for a following backward pass.
func (p *Pipeline) Symbolize(feats *tensor.Tensor, train bool) (v, raw, signed *tensor.Tensor) {
	switch {
	case p.Manifold != nil:
		v = p.Manifold.Forward(feats, train)
	case p.LSH != nil:
		flat := feats.Reshape(feats.Shape[0], -1)
		_, v = p.LSH.EncodeBatch(flat)
	default:
		v = feats.Reshape(feats.Shape[0], -1)
	}
	raw, signed = p.Proj.EncodeBatch(v)
	return v, raw, signed
}

// TrainReport records the outcome of Pipeline.Train.
type TrainReport struct {
	// TeacherTrainAccuracy is the full CNN's accuracy on the training split
	// (context for distillation quality).
	TeacherTrainAccuracy float64
	// Epochs holds HD train accuracy per retraining epoch.
	Epochs []hdlearn.EpochStats
	// FinalTrainAccuracy is the HD model's accuracy after retraining.
	FinalTrainAccuracy float64
}

// Train runs the NSHD training procedure on a labelled dataset:
//
//  1. extract features once with the frozen CNN prefix;
//  2. compute the teacher's logits once with the frozen full CNN;
//  3. initialize class hypervectors by single-pass bundling;
//  4. for each epoch, per batch: symbolize, compute Algorithm 1's update
//     matrix U, bundle λ·Uᵀ·H into the class hypervectors, and — when the
//     manifold is enabled — decode the query-side error through the HD
//     encoder (straight-through estimator across sign) and backpropagate it
//     into the manifold FC layer.
func (p *Pipeline) Train(train *dataset.Dataset, log io.Writer) (*TrainReport, error) {
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.Classes != p.Cfg.Classes {
		return nil, fmt.Errorf("core: dataset has %d classes, pipeline %d", train.Classes, p.Cfg.Classes)
	}
	feats := p.ExtractFeatures(train.Images)
	var teacherLogits *tensor.Tensor
	if p.Cfg.UseKD {
		teacherLogits = nn.PredictLogits(p.Zoo.Full(), train.Images, p.Cfg.BatchSize)
	}
	return p.TrainOnFeatures(feats, train.Labels, teacherLogits, log)
}

// TrainOnFeatures runs the HD retraining loop on precomputed extractor
// features (and teacher logits when KD is enabled). Hyperparameter sweeps
// use it to share the expensive CNN passes across dozens of retrainings.
func (p *Pipeline) TrainOnFeatures(feats *tensor.Tensor, labels []int, teacherLogits *tensor.Tensor, log io.Writer) (*TrainReport, error) {
	if feats.Shape[0] != len(labels) {
		return nil, fmt.Errorf("core: %d feature rows but %d labels", feats.Shape[0], len(labels))
	}
	if p.Cfg.UseKD {
		if teacherLogits == nil {
			return nil, fmt.Errorf("core: KD enabled but no teacher logits supplied")
		}
		if teacherLogits.Shape[0] != len(labels) || teacherLogits.Shape[1] != p.Cfg.Classes {
			return nil, fmt.Errorf("core: teacher logits shape %v", teacherLogits.Shape)
		}
	}
	report := &TrainReport{}
	if teacherLogits != nil {
		report.TeacherTrainAccuracy = nn.Accuracy(teacherLogits, labels)
	}

	// Initial single-pass bundle with the untrained manifold.
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, labels)

	n := len(labels)
	featLen := feats.Len() / n
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var opt nn.Optimizer
	if p.Manifold != nil {
		opt = nn.NewAdam(p.Cfg.ManifoldLR)
	}

	alpha, temp := 0.0, 1.0
	if p.Cfg.UseKD {
		alpha, temp = p.Cfg.Alpha, p.Cfg.Temp
	}

	// Gather buffers are allocated once at the full batch size and re-sliced
	// for the tail batch, so the joint loop performs no per-step allocations
	// on the batching side.
	bFeatsBuf := tensor.New(append([]int{p.Cfg.BatchSize}, p.FeatShape...)...)
	bLabelsBuf := make([]int, p.Cfg.BatchSize)
	bTeacherBuf := tensor.New(p.Cfg.BatchSize, p.Cfg.Classes)

	for epoch := 1; epoch <= p.Cfg.Epochs; epoch++ {
		p.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		correct := 0
		var updateMass float64
		for start := 0; start < n; start += p.Cfg.BatchSize {
			end := start + p.Cfg.BatchSize
			if end > n {
				end = n
			}
			bs := end - start
			bFeats := tensor.FromSlice(bFeatsBuf.Data[:bs*featLen], append([]int{bs}, p.FeatShape...)...)
			bLabels := bLabelsBuf[:bs]
			bTeacher := tensor.FromSlice(bTeacherBuf.Data[:bs*p.Cfg.Classes], bs, p.Cfg.Classes)
			for bi := 0; bi < bs; bi++ {
				src := order[start+bi]
				copy(bFeats.Data[bi*featLen:(bi+1)*featLen], feats.Data[src*featLen:(src+1)*featLen])
				bLabels[bi] = labels[src]
				if teacherLogits != nil {
					copy(bTeacher.Row(bi), teacherLogits.Row(src))
				}
			}

			trainMode := p.Manifold != nil
			_, _, bSigned := p.Symbolize(bFeats, trainMode)

			// Algorithm 1 update matrix (alpha=0 degrades to MASS).
			u := p.HD.DistillUpdateBatch(bSigned, bLabels, bTeacher, alpha, temp)

			// Track batch accuracy before the update.
			preds := tensor.ArgmaxRows(p.HD.SimilarityBatch(bSigned))
			for i, pr := range preds {
				if pr == bLabels[i] {
					correct++
				}
			}
			for _, uv := range u.Data {
				updateMass += abs64(uv)
			}

			if p.Manifold != nil {
				// Manifold gradient (Sec. V-C): the retraining objective
				// ascends Σ_k U_k·δ(C_k, H); descending its negation gives
				// dL/dH = −U·M. sign() is crossed with a straight-through
				// estimator, then the HD decoder (bind with P, dot) maps the
				// error back to the manifold output space.
				dH := p.HD.QueryGrad(u) // [bs, D]
				dH.Scale(-1)
				dV := p.Proj.DecodeBatch(dH) // [bs, F̂]
				p.Manifold.ZeroGrad()
				p.Manifold.Backward(dV)
				opt.Step(p.Manifold.Params())
			}

			// Class hypervector update M += λ·Uᵀ·H (after the manifold
			// gradient is computed against the pre-update M).
			p.HD.ApplyUpdate(u, bSigned, p.Cfg.LR)
		}
		st := hdlearn.EpochStats{
			Epoch:          epoch,
			TrainAccuracy:  float64(correct) / float64(n),
			MeanUpdateNorm: updateMass / float64(n),
		}
		report.Epochs = append(report.Epochs, st)
		if log != nil {
			fmt.Fprintf(log, "hd epoch %d/%d acc=%.4f update=%.4f\n", epoch, p.Cfg.Epochs, st.TrainAccuracy, st.MeanUpdateNorm)
		}
	}
	// Finalization: the manifold co-adapted with M during the joint loop,
	// so the class hypervectors were accumulated against stale encodings.
	// Re-bundle M from the final encoder and run a short distillation-only
	// refinement with the manifold frozen.
	if p.Manifold != nil {
		_, _, finalSigned := p.Symbolize(feats, false)
		p.HD.InitBundle(finalSigned, labels)
		refine := p.Cfg.Epochs/2 + 1
		// The refinement runs on the batched trainers: one GEMM per batch of
		// similarities and one rank-B GEMM per update, with the pipeline's
		// configured batch size.
		if p.Cfg.UseKD {
			if _, err := p.HD.TrainDistillBatch(finalSigned, labels, teacherLogits, hdlearn.DistillConfig{
				Epochs: refine, LR: p.Cfg.LR, Alpha: p.Cfg.Alpha, Temp: p.Cfg.Temp, Shuffle: true,
				Batch: p.Cfg.BatchSize,
			}, p.rng); err != nil {
				return nil, err
			}
		} else {
			p.HD.TrainMASSBatch(finalSigned, labels, hdlearn.MASSConfig{
				Epochs: refine, LR: p.Cfg.LR, Shuffle: true, Batch: p.Cfg.BatchSize,
			}, p.rng)
		}
	}
	report.FinalTrainAccuracy = p.AccuracyOnFeatures(feats, labels)
	return report, nil
}

// classify routes signed query hypervectors to the configured inference
// kernel: float32 cosine scoring, or — with PackedInference — popcount
// scoring against the sign-quantized model. The packed form comes from the
// model's version-keyed cache, so repeated classifications do not re-pack
// all K·D weights per call.
func (p *Pipeline) classify(signed *tensor.Tensor) []int {
	if p.Cfg.PackedInference {
		return p.HD.Packed().PredictBatch(signed)
	}
	return p.HD.PredictBatch(signed)
}

// Predict classifies raw images. When a serving engine is registered (any
// binary importing internal/engine or the public nshd package), the batch
// runs through the compiled zero-allocation path; otherwise — or if
// compilation fails for this model — it falls back to PredictDirect. Both
// paths produce identical predictions per sample.
func (p *Pipeline) Predict(images *tensor.Tensor) []int {
	if images == nil || images.Rank() == 0 || images.Shape[0] == 0 {
		return []int{}
	}
	if s := p.server(); s != nil {
		if preds, err := s.Predict(images); err == nil {
			return preds
		}
	}
	return p.PredictDirect(images)
}

// PredictDirect classifies raw images through the training-side tensor path:
// extract all-N features, symbolize, classify. It is the reference
// implementation the engine is validated against, and the fallback when no
// engine is registered.
func (p *Pipeline) PredictDirect(images *tensor.Tensor) []int {
	if images == nil || images.Rank() == 0 || images.Shape[0] == 0 {
		return []int{}
	}
	feats := p.ExtractFeatures(images)
	_, _, signed := p.Symbolize(feats, false)
	return p.classify(signed)
}

// Accuracy scores the pipeline on a labelled dataset. An empty dataset
// scores 0.
func (p *Pipeline) Accuracy(d *dataset.Dataset) float64 {
	preds := p.Predict(d.Images)
	if len(preds) == 0 {
		return 0
	}
	correct := 0
	for i, pr := range preds {
		if pr == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}

// AccuracyOnFeatures scores using precomputed extractor features, avoiding
// repeated CNN passes during sweeps.
func (p *Pipeline) AccuracyOnFeatures(feats *tensor.Tensor, labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	_, _, signed := p.Symbolize(feats, false)
	if p.Cfg.PackedInference {
		return p.HD.Packed().Accuracy(signed, labels)
	}
	return p.HD.Accuracy(signed, labels)
}

// QueryHVs returns the signed query hypervectors of a dataset — the
// symbolic representation used by the explainability analysis (Fig. 11).
// Served through the compiled engine when one is registered, streaming
// chunks instead of materializing the all-N feature tensor.
func (p *Pipeline) QueryHVs(images *tensor.Tensor) *tensor.Tensor {
	if images == nil || images.Rank() == 0 || images.Shape[0] == 0 {
		return tensor.New(0, p.Cfg.D)
	}
	if s := p.server(); s != nil {
		if hvs, err := s.QueryHVs(images); err == nil {
			return hvs
		}
	}
	feats := p.ExtractFeatures(images)
	_, _, signed := p.Symbolize(feats, false)
	return signed
}

// PackedQueryHVs returns the query hypervectors bit-packed — the form the
// deployment targets store and ship (64 dimensions per word). Since query
// hypervectors are already bipolar, packing loses nothing.
func (p *Pipeline) PackedQueryHVs(images *tensor.Tensor) *hdc.PackedMatrix {
	return hdc.NewPackedMatrix(p.QueryHVs(images))
}

func abs64(v float32) float64 {
	if v < 0 {
		return float64(-v)
	}
	return float64(v)
}

// Confusion returns the pipeline's confusion matrix on a labelled dataset.
func (p *Pipeline) Confusion(d *dataset.Dataset) (*metrics.Confusion, error) {
	return metrics.NewConfusion(p.Cfg.Classes, p.Predict(d.Images), d.Labels)
}
