// Package core assembles NSHD: a cut pretrained CNN feature extractor, the
// manifold compression layer Ψ, the binary random-projection HD encoder Φ_P,
// and an HD classifier trained with knowledge distillation from the full CNN
// (Algorithm 1). It also provides the BaselineHD variant (no manifold, no
// KD) the paper compares against, and the cost accounting behind Table II
// and Fig. 5.
package core

import (
	"fmt"
)

// Config parameterizes an NSHD pipeline.
type Config struct {
	// CutLayer is the paper-style index of the feature-extraction layer.
	CutLayer int
	// Classes is the number of classes K.
	Classes int
	// D is the hypervector dimensionality (paper default: 3000).
	D int
	// FHat is the manifold output dimension F̂ (paper default: 100; must be
	// at least Classes).
	FHat int
	// UseManifold toggles the manifold learner; false reproduces
	// BaselineHD's feature handling.
	UseManifold bool
	// LSHDim is BaselineHD's locality-sensitive-hashing width: when the
	// manifold is disabled, features are reduced with sign(W·v) over LSHDim
	// random hyperplanes before HD encoding, as in prior work [9]. The paper
	// notes LSH "does not allow radically small bucket sizes", so the
	// default keeps it large (min(F, 1024)). 0 disables the reduction
	// entirely (direct F→D encoding).
	LSHDim int
	// UseKD toggles knowledge distillation (Algorithm 1); false degrades to
	// plain MASS retraining.
	UseKD bool
	// Alpha weighs the distilled update (Algorithm 1 line 8).
	Alpha float64
	// Temp is the distillation temperature t.
	Temp float64
	// Epochs is the number of HD retraining epochs.
	Epochs int
	// LR is the HD learning rate λ.
	LR float64
	// ManifoldLR is the learning rate of the manifold FC layer.
	ManifoldLR float64
	// BatchSize for feature extraction and batched retraining.
	BatchSize int
	// Seed drives the projection and shuffling.
	Seed int64
	// PackedInference switches Predict/Accuracy to the binary deployment
	// kernel: class hypervectors are sign-quantized to one bit per dimension
	// and scored with XOR + popcount (Sec. VI). Training is unaffected — the
	// real-valued model is quantized at prediction time, trading a small
	// accuracy delta (the paper's binary-model gap) for ~32× smaller class
	// memory and multiply-free scoring.
	PackedInference bool
}

// DefaultConfig mirrors the paper's experimental setup (Sec. VII-A) at
// reproduction scale.
func DefaultConfig(cutLayer, classes int) Config {
	return Config{
		CutLayer:    cutLayer,
		Classes:     classes,
		D:           3000,
		FHat:        100,
		UseManifold: true,
		UseKD:       true,
		Alpha:       0.7,
		Temp:        15,
		Epochs:      10,
		LR:          0.35,
		ManifoldLR:  0.002,
		BatchSize:   32,
		Seed:        1,
	}
}

// Validate rejects configurations the pipeline cannot run with.
func (c Config) Validate() error {
	if c.Classes < 2 {
		return fmt.Errorf("core: %d classes", c.Classes)
	}
	if c.D < 16 {
		return fmt.Errorf("core: hypervector dimension %d too small", c.D)
	}
	if c.UseManifold {
		if c.FHat < 1 {
			return fmt.Errorf("core: F̂ = %d", c.FHat)
		}
		if c.FHat < c.Classes {
			return fmt.Errorf("core: F̂ = %d below class count %d (Sec. VII-A requires F̂ ≥ K)", c.FHat, c.Classes)
		}
	}
	if c.UseKD {
		if c.Temp <= 0 {
			return fmt.Errorf("core: distillation temperature %v", c.Temp)
		}
		if c.Alpha < 0 || c.Alpha > 1 {
			return fmt.Errorf("core: alpha %v outside [0,1]", c.Alpha)
		}
	}
	if c.Epochs < 1 {
		return fmt.Errorf("core: %d epochs", c.Epochs)
	}
	if c.LR <= 0 {
		return fmt.Errorf("core: HD learning rate %v", c.LR)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("core: batch size %d", c.BatchSize)
	}
	return nil
}
