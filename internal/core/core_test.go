package core

import (
	"math"
	"path/filepath"
	"testing"

	"nshd/internal/cnn"
	"nshd/internal/dataset"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// tinyZoo builds a fast 2-unit CNN in zoo form over 16×16 inputs so core
// tests don't pay for the real zoo models.
func tinyZoo(seed int64, classes int) *cnn.Model {
	rng := tensor.NewRNG(seed)
	m := &cnn.Model{Name: "tinycnn", InShape: []int{3, 16, 16}, Classes: classes}
	m.Units = append(m.Units,
		cnn.Unit{Index: 0, Label: "conv0", Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, 8, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
		cnn.Unit{Index: 1, Label: "conv1", Layers: []nn.Layer{
			nn.NewConv2D(rng, 8, 16, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
	)
	m.Head = []nn.Layer{nn.NewFlatten(), nn.NewLinear(rng, 16*4*4, classes, true)}
	return m.Finish()
}

// trainedSetup pretrains the tiny zoo on a synthetic task and returns it
// with the data splits.
func trainedSetup(t *testing.T, classes, trainN, testN int) (*cnn.Model, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.SynthConfig{Classes: classes, Train: trainN, Test: testN, Size: 16, Noise: 0.2, Seed: 31}
	train, test := dataset.SynthCIFAR(cfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)
	zoo := tinyZoo(32, classes)
	tr := &nn.Trainer{Epochs: 8, BatchSize: 16, Opt: nn.NewSGD(0.02, 0.9, 1e-4), ClipNorm: 5}
	tr.Fit(zoo.Full(), train.Images, train.Labels, tensor.NewRNG(33))
	return zoo, train, test
}

func testConfig(classes int) Config {
	cfg := DefaultConfig(1, classes)
	cfg.D = 512
	cfg.FHat = 16
	cfg.Epochs = 6
	cfg.Seed = 7
	return cfg
}

func TestNewValidation(t *testing.T) {
	zoo := tinyZoo(1, 4)
	// F̂ below class count.
	bad := testConfig(4)
	bad.FHat = 2
	if _, err := New(zoo, bad); err == nil {
		t.Fatal("expected F̂ < classes error")
	}
	// Invalid cut layer.
	bad2 := testConfig(4)
	bad2.CutLayer = 9
	if _, err := New(zoo, bad2); err == nil {
		t.Fatal("expected invalid cut layer error")
	}
	// Class mismatch.
	bad3 := testConfig(6)
	if _, err := New(zoo, bad3); err == nil {
		t.Fatal("expected class mismatch error")
	}
	// Valid.
	if _, err := New(zoo, testConfig(4)); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineHDDisablesManifoldAndKD(t *testing.T) {
	zoo := tinyZoo(2, 4)
	cfg := testConfig(4)
	p, err := NewBaselineHD(zoo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Manifold != nil || p.Cfg.UseKD || p.Cfg.UseManifold {
		t.Fatal("BaselineHD must disable manifold and KD")
	}
	// Projection maps the raw flattened features.
	wantF := 16 * 4 * 4
	if p.Proj.F != wantF {
		t.Fatalf("baseline projection F = %d, want %d", p.Proj.F, wantF)
	}
}

func TestExtractFeaturesMatchesDirect(t *testing.T) {
	zoo := tinyZoo(3, 4)
	p, err := New(zoo, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	images := tensor.New(5, 3, 16, 16)
	tensor.NewRNG(4).FillNormal(images, 0, 1)
	got := p.ExtractFeatures(images)
	want := p.Extractor.Forward(images, false)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("batched extraction must equal direct forward")
		}
	}
	if got.Shape[1] != 16 || got.Shape[2] != 4 || got.Shape[3] != 4 {
		t.Fatalf("feature shape %v", got.Shape)
	}
}

func TestSymbolizeShapesAndBipolarity(t *testing.T) {
	zoo := tinyZoo(5, 4)
	p, _ := New(zoo, testConfig(4))
	images := tensor.New(3, 3, 16, 16)
	tensor.NewRNG(6).FillNormal(images, 0, 1)
	feats := p.ExtractFeatures(images)
	v, raw, signed := p.Symbolize(feats, false)
	if v.Shape[1] != 16 {
		t.Fatalf("manifold output %v, want F̂=16", v.Shape)
	}
	if raw.Shape[1] != 512 || signed.Shape[1] != 512 {
		t.Fatalf("hypervector shapes raw=%v signed=%v", raw.Shape, signed.Shape)
	}
	for _, x := range signed.Data {
		if x != 1 && x != -1 {
			t.Fatal("signed hypervectors must be bipolar")
		}
	}
}

func TestTrainEndToEnd(t *testing.T) {
	zoo, train, test := trainedSetup(t, 4, 160, 80)
	cnnAcc := nn.Evaluate(zoo.Full(), test.Images, test.Labels, 32)

	p, err := New(zoo, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	report, err := p.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.TeacherTrainAccuracy < 0.5 {
		t.Fatalf("teacher accuracy %v too weak for the test to be meaningful", report.TeacherTrainAccuracy)
	}
	acc := p.Accuracy(test)
	if acc < 0.5 {
		t.Fatalf("NSHD test accuracy %v (CNN %v)", acc, cnnAcc)
	}
	// NSHD should be within striking distance of the CNN on this easy task.
	if acc < cnnAcc-0.25 {
		t.Fatalf("NSHD %v far below CNN %v", acc, cnnAcc)
	}
	if len(report.Epochs) != 6 {
		t.Fatalf("expected 6 epoch stats, got %d", len(report.Epochs))
	}
	// Joint retraining may dip while the manifold and class hypervectors
	// co-adapt, but must not collapse relative to the initial bundle.
	if report.FinalTrainAccuracy < 0.9*report.Epochs[0].TrainAccuracy {
		t.Fatalf("retraining regressed: %v -> %v", report.Epochs[0].TrainAccuracy, report.FinalTrainAccuracy)
	}
}

func TestTrainValidatesDataset(t *testing.T) {
	zoo := tinyZoo(7, 4)
	p, _ := New(zoo, testConfig(4))
	cfg := dataset.SynthConfig{Classes: 6, Train: 12, Test: 6, Size: 16, Noise: 0.2, Seed: 8}
	wrong, _ := dataset.SynthCIFAR(cfg)
	if _, err := p.Train(wrong, nil); err == nil {
		t.Fatal("expected class-count mismatch error")
	}
}

func TestManifoldReducesHDCost(t *testing.T) {
	zoo := tinyZoo(9, 4)
	nshd, _ := New(zoo, testConfig(4))
	base, _ := NewBaselineHD(zoo, testConfig(4))
	cN, cB := nshd.Costs(), base.Costs()
	if cN.HDMACs() >= cB.HDMACs() {
		t.Fatalf("manifold must reduce HD-side MACs: %d vs %d", cN.HDMACs(), cB.HDMACs())
	}
	if cN.TotalBytes() >= cB.TotalBytes() {
		t.Fatalf("NSHD must be smaller than BaselineHD: %d vs %d", cN.TotalBytes(), cB.TotalBytes())
	}
	// Both share the same extractor cost.
	if cN.ExtractorMACs != cB.ExtractorMACs {
		t.Fatal("extractor costs must match")
	}
	// CNN baseline MACs exceed the extractor's.
	full, _ := nshd.CNNCosts()
	if full <= cN.ExtractorMACs {
		t.Fatal("full CNN must cost more than its prefix")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	classes := 4
	cfgD := dataset.SynthConfig{Classes: classes, Train: 64, Test: 32, Size: 32, Noise: 0.2, Seed: 41}
	train, test := dataset.SynthCIFAR(cfgD)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)

	// Save/Load requires a registered zoo model; mobilenetv2 is the
	// cheapest.
	zoo, err := cnn.Build("mobilenetv2", tensor.NewRNG(42), classes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(classes)
	cfg.CutLayer = 5
	cfg.Epochs = 2
	p, err := New(zoo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(train, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nshd.gob")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	q, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	wantPreds := p.Predict(test.Images)
	gotPreds := q.Predict(test.Images)
	for i := range wantPreds {
		if wantPreds[i] != gotPreds[i] {
			t.Fatalf("prediction %d differs after reload", i)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "none.gob")); err == nil {
		t.Fatal("expected error")
	}
}

func TestPipelineConfusion(t *testing.T) {
	zoo, train, test := trainedSetup(t, 4, 96, 48)
	p, err := New(zoo, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(train, nil); err != nil {
		t.Fatal(err)
	}
	cm, err := p.Confusion(test)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != test.Len() {
		t.Fatalf("confusion total %d, want %d", cm.Total(), test.Len())
	}
	if got, want := cm.Accuracy(), p.Accuracy(test); math.Abs(got-want) > 1e-9 {
		t.Fatalf("confusion accuracy %v != pipeline accuracy %v", got, want)
	}
}

// TestPackedInferenceMatchesQuantizedFloat: with PackedInference on, the
// pipeline must predict exactly what the float path predicts for the
// sign-quantized model — packing is a representation change, not an
// approximation, once the model is bipolar.
func TestPackedInferenceMatchesQuantizedFloat(t *testing.T) {
	cfg := dataset.SynthConfig{Classes: 4, Train: 48, Test: 24, Size: 16, Noise: 0.2, Seed: 51}
	train, test := dataset.SynthCIFAR(cfg)
	zoo := tinyZoo(52, 4)
	p, err := New(zoo, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)

	want := p.HD.SignQuantized().PredictBatch(p.QueryHVs(test.Images))
	p.Cfg.PackedInference = true
	got := p.Predict(test.Images)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: packed=%d, quantized float=%d", i, got[i], want[i])
		}
	}
	correct := 0
	for i, pr := range got {
		if pr == test.Labels[i] {
			correct++
		}
	}
	if acc := p.Accuracy(test); math.Abs(acc-float64(correct)/float64(len(got))) > 1e-9 {
		t.Fatalf("packed Accuracy %v inconsistent with packed Predict", acc)
	}
	pq := p.PackedQueryHVs(test.Images)
	if pq.Rows != test.Len() || pq.D != p.Cfg.D {
		t.Fatalf("PackedQueryHVs shape %dx%d", pq.Rows, pq.D)
	}
}
