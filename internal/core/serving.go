package core

import (
	"nshd/internal/tensor"
)

// Predictor is the serving-side contract a compiled inference engine
// satisfies. internal/engine implements it; core only consumes it, which
// keeps the dependency one-way (engine imports core, never the reverse).
type Predictor interface {
	// Predict classifies a [N, C, H, W] image batch.
	Predict(images *tensor.Tensor) ([]int, error)
	// QueryHVs returns the signed [N, D] query hypervectors of a batch.
	QueryHVs(images *tensor.Tensor) (*tensor.Tensor, error)
}

// engineCompiler is installed by internal/engine's init. When nil (a binary
// that never imports the engine), pipelines serve through the direct path.
var engineCompiler func(*Pipeline) (Predictor, error)

// RegisterEngineCompiler installs the engine compiler used to accelerate
// Pipeline.Predict/Accuracy/QueryHVs. Called from internal/engine's init;
// exported so alternative serving backends can slot in the same way.
func RegisterEngineCompiler(f func(*Pipeline) (Predictor, error)) {
	engineCompiler = f
}

// server returns the cached compiled engine for the pipeline's current
// weights, recompiling whenever the HD model's version counter moved. Every
// training procedure that touches the manifold also updates the class
// hypervectors in the same batch (ApplyUpdate / the finalization re-bundle),
// so the HD version is a faithful staleness signal for the whole pipeline.
// Returns nil — caller falls back to the direct path — when no compiler is
// registered or compilation failed for this version.
func (p *Pipeline) server() Predictor {
	if engineCompiler == nil || p.HD == nil {
		return nil
	}
	v := p.HD.Version()
	if !p.srvTried || p.srvVersion != v || p.srvPacked != p.Cfg.PackedInference {
		p.srv = nil
		p.srvTried = true
		p.srvVersion = v
		p.srvPacked = p.Cfg.PackedInference
		if s, err := engineCompiler(p); err == nil {
			p.srv = s
		}
	}
	return p.srv
}
