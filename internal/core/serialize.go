package core

import (
	"encoding/gob"
	"fmt"
	"os"

	"nshd/internal/cnn"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// snapshot is the on-disk form of a trained pipeline. The projection and
// topology are NOT stored: both are reconstructed deterministically from the
// config seed, which keeps snapshots compact even for BaselineHD's large
// projections.
type snapshot struct {
	Cfg      Config
	ZooName  string
	Zoo      *nn.Snapshot
	Manifold [][]float32
	M        []float32
}

// Save writes the trained pipeline (CNN weights, manifold weights, class
// hypervectors) to path.
func (p *Pipeline) Save(path string) error {
	s := snapshot{
		Cfg:     p.Cfg,
		ZooName: p.Zoo.Name,
		Zoo:     nn.TakeSnapshot(p.Zoo.Full()),
		M:       append([]float32(nil), p.HD.M.Data...),
	}
	if p.Manifold != nil {
		for _, prm := range p.Manifold.Params() {
			s.Manifold = append(s.Manifold, append([]float32(nil), prm.W.Data...))
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save pipeline: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(&s); err != nil {
		return fmt.Errorf("core: encode pipeline: %w", err)
	}
	return nil
}

// Load reconstructs a pipeline from a snapshot written by Save. Zoo models
// are rebuilt by registered name; pipelines over ad-hoc models cannot be
// loaded this way.
func Load(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load pipeline: %w", err)
	}
	defer f.Close()
	var s snapshot
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decode pipeline: %w", err)
	}
	zoo, err := cnn.Build(s.ZooName, tensor.NewRNG(0), s.Cfg.Classes)
	if err != nil {
		return nil, err
	}
	if err := nn.RestoreSnapshot(zoo.Full(), s.Zoo); err != nil {
		return nil, err
	}
	p, err := New(zoo, s.Cfg)
	if err != nil {
		return nil, err
	}
	if p.Manifold != nil {
		params := p.Manifold.Params()
		if len(params) != len(s.Manifold) {
			return nil, fmt.Errorf("core: snapshot has %d manifold tensors, model wants %d", len(s.Manifold), len(params))
		}
		for i, prm := range params {
			if len(s.Manifold[i]) != prm.W.Len() {
				return nil, fmt.Errorf("core: manifold tensor %d has %d elems, want %d", i, len(s.Manifold[i]), prm.W.Len())
			}
			copy(prm.W.Data, s.Manifold[i])
		}
	}
	if len(s.M) != p.HD.M.Len() {
		return nil, fmt.Errorf("core: class matrix has %d elems, want %d", len(s.M), p.HD.M.Len())
	}
	copy(p.HD.M.Data, s.M)
	p.HD.Invalidate()
	return p, nil
}
