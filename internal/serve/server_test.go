package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// serveFixture wires a batcher + HTTP server over the tiny test engine.
func serveFixture(t *testing.T) (*httptest.Server, *Batcher, []int, func(i int) []float32) {
	t.Helper()
	e, p, test := buildEngine(t, nil)
	want := p.PredictDirect(test.Images)
	b, err := New(e, Options{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(b, 10*time.Second).Handler())
	t.Cleanup(func() { srv.Close(); b.Close() })
	return srv, b, want, func(i int) []float32 { return sample(test, i) }
}

func TestServerPredictJSON(t *testing.T) {
	srv, _, want, sampleAt := serveFixture(t)
	body, _ := json.Marshal(predictRequest{Inputs: [][]float32{sampleAt(0), sampleAt(1)}})
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Classes) != 2 || pr.Classes[0] != want[0] || pr.Classes[1] != want[1] {
		t.Fatalf("classes %v, want [%d %d]", pr.Classes, want[0], want[1])
	}
}

func TestServerPredictBinary(t *testing.T) {
	srv, b, want, sampleAt := serveFixture(t)
	const n = 3
	frame := make([]byte, 4+4*n*b.sampleLen)
	binary.LittleEndian.PutUint32(frame, n)
	off := 4
	for i := 0; i < n; i++ {
		for _, v := range sampleAt(i) {
			binary.LittleEndian.PutUint32(frame[off:], math.Float32bits(v))
			off += 4
		}
	}
	resp, err := http.Post(srv.URL+"/predict", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	raw := out.Bytes()
	if len(raw) != 4+4*n {
		t.Fatalf("response frame %d bytes, want %d", len(raw), 4+4*n)
	}
	if got := binary.LittleEndian.Uint32(raw); got != n {
		t.Fatalf("response count %d", got)
	}
	for i := 0; i < n; i++ {
		if got := int(binary.LittleEndian.Uint32(raw[4+4*i:])); got != want[i] {
			t.Fatalf("sample %d: got %d want %d", i, got, want[i])
		}
	}
}

func TestServerBadRequests(t *testing.T) {
	srv, _, _, sampleAt := serveFixture(t)
	for _, tc := range []struct {
		name, ctype string
		body        []byte
		status      int
	}{
		{"bad json", "application/json", []byte("{nope"), http.StatusBadRequest},
		{"no inputs", "application/json", []byte(`{"inputs":[]}`), http.StatusBadRequest},
		{"short row", "application/json", []byte(`{"inputs":[[1,2,3]]}`), http.StatusBadRequest},
		{"short frame", "application/octet-stream", []byte{9}, http.StatusBadRequest},
		{"oversized frame count", "application/octet-stream", []byte{255, 255, 255, 255}, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/predict", tc.ctype, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	// GET on /predict is not allowed.
	resp, err := http.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: status %d", resp.StatusCode)
	}
	_ = sampleAt
}

func TestServerHealthAndMetrics(t *testing.T) {
	srv, b, _, sampleAt := serveFixture(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Serve one request so the metrics have something to show.
	body, _ := json.Marshal(predictRequest{Inputs: [][]float32{sampleAt(0)}})
	if pr, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		pr.Body.Close()
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Served < 1 || m.Batches < 1 || m.QPS <= 0 {
		t.Fatalf("metrics show no traffic: %+v", m.Snapshot)
	}
	if m.Engine.D != b.Engine().Dim() || m.Engine.Classes != 4 || m.Engine.SampleLen != 3*16*16 {
		t.Fatalf("engine facts wrong: %+v", m.Engine)
	}
	if m.Engine.MaxBatch != 8 || m.Engine.QueueCap != 64 {
		t.Fatalf("batcher facts wrong: %+v", m.Engine)
	}
	if len(m.Engine.StageTimes) != len(m.Engine.Stages) {
		t.Fatalf("stage timings %d rows for %d stages: %+v", len(m.Engine.StageTimes),
			len(m.Engine.Stages), m.Engine.StageTimes)
	}
	for _, st := range m.Engine.StageTimes {
		if st.Name == "" || st.Seconds <= 0 {
			t.Fatalf("bad stage timing row: %+v", st)
		}
	}
	if len(m.Engine.StageTimes[0].Sub) == 0 {
		t.Fatalf("extract stage timing has no sub-steps: %+v", m.Engine.StageTimes[0])
	}

	// After Close, health flips to draining.
	b.Close()
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: status %d", hresp.StatusCode)
	}
}
