package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"nshd/internal/engine"
)

// Wire format of the sharded serving tier. Everything is little-endian and
// length-prefixed so both ends can size-check a frame before touching it —
// a corrupt or hostile length prefix must cost a clean 400, not a
// multi-gigabyte allocation (see maxPartialFrame and the explicit caps in
// every decoder).
//
// POST /partial request:
//
//	uint32  n        sample count
//	uint64  version  model version to serve (0 = whatever is current)
//	float32 ×n·C·H·W sample data
//
// response:
//
//	uint32  n         samples scored
//	uint32  k         classes
//	uint32  lo, hi    hypervector column range of the emitting shard
//	uint32  fullD     full model dimension
//	uint8   kernel    1 = packed (int32 payload), 0 = float (float32 payload)
//	uint64  version   model version actually served
//	payload           n·k int32, or blocks·n·k float32 (block-major,
//	                  blocks = ceil((hi−lo)/256)) — see engine.PartialScores
const (
	partialReqHeaderLen  = 4 + 8
	partialRespHeaderLen = 5*4 + 1 + 8

	kernelFloat  = 0
	kernelPacked = 1
)

// frameSamples bounds a frame's sample count before any payload-sized
// allocation: the count must be positive, within the server's batch limit,
// and small enough that n·sampleLen·4 bytes cannot overflow or balloon.
func frameSamples(n uint32, maxBatch int) (int, error) {
	if n < 1 || int64(n) > int64(maxBatch) {
		return 0, fmt.Errorf("frame of %d samples (want 1..%d)", n, maxBatch)
	}
	return int(n), nil
}

// appendPartialRequest appends a /partial request frame to dst (reusing its
// capacity) for the first n·sampleLen floats of data.
func appendPartialRequest(dst []byte, data []float32, n int, version uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint64(dst, version)
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// appendPartialResponse appends ps as a /partial response frame to dst,
// reusing its capacity.
func appendPartialResponse(dst []byte, ps *engine.PartialScores, version uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ps.N))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ps.K))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ps.Lo))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ps.Hi))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ps.FullD))
	if ps.Packed {
		dst = append(dst, kernelPacked)
	} else {
		dst = append(dst, kernelFloat)
	}
	dst = binary.LittleEndian.AppendUint64(dst, version)
	if ps.Packed {
		for _, v := range ps.Ints {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	} else {
		for _, v := range ps.Floats {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	return dst
}

// decodePartialResponse parses a /partial response frame into ps, reusing
// its backing arrays. Every size is validated against the frame's own length
// and the caller's expectations before the payload is read.
func decodePartialResponse(ps *engine.PartialScores, frame []byte, wantN, wantK, wantFullD int) (version uint64, err error) {
	if len(frame) < partialRespHeaderLen {
		return 0, fmt.Errorf("serve: partial response of %d bytes, header needs %d", len(frame), partialRespHeaderLen)
	}
	n := int(binary.LittleEndian.Uint32(frame[0:]))
	k := int(binary.LittleEndian.Uint32(frame[4:]))
	lo := int(binary.LittleEndian.Uint32(frame[8:]))
	hi := int(binary.LittleEndian.Uint32(frame[12:]))
	fullD := int(binary.LittleEndian.Uint32(frame[16:]))
	kernel := frame[20]
	version = binary.LittleEndian.Uint64(frame[21:])
	if n != wantN || k != wantK || fullD != wantFullD {
		return 0, fmt.Errorf("serve: partial response n=%d k=%d fullD=%d, want n=%d k=%d fullD=%d", n, k, fullD, wantN, wantK, wantFullD)
	}
	if lo < 0 || hi <= lo || hi > fullD {
		return 0, fmt.Errorf("serve: partial response shard [%d,%d) of %d", lo, hi, fullD)
	}
	if kernel != kernelFloat && kernel != kernelPacked {
		return 0, fmt.Errorf("serve: partial response kernel %d", kernel)
	}
	ps.N, ps.K, ps.Lo, ps.Hi, ps.FullD = n, k, lo, hi, fullD
	ps.Packed = kernel == kernelPacked
	payload := frame[partialRespHeaderLen:]
	var want int
	if ps.Packed {
		want = n * k
	} else {
		want = ps.Blocks() * n * k
	}
	if len(payload) != want*4 {
		return 0, fmt.Errorf("serve: partial response payload %d bytes, want %d", len(payload), want*4)
	}
	if ps.Packed {
		ps.Floats = ps.Floats[:0]
		if cap(ps.Ints) < want {
			ps.Ints = make([]int32, want)
		}
		ps.Ints = ps.Ints[:want]
		for i := range ps.Ints {
			ps.Ints[i] = int32(binary.LittleEndian.Uint32(payload[i*4:]))
		}
	} else {
		ps.Ints = ps.Ints[:0]
		if cap(ps.Floats) < want {
			ps.Floats = make([]float32, want)
		}
		ps.Floats = ps.Floats[:want]
		for i := range ps.Floats {
			ps.Floats[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
		}
	}
	return version, nil
}
