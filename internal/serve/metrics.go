package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latBuckets is the number of power-of-two latency histogram buckets. Bucket
// i counts requests with latency in [2^(i+12), 2^(i+13)) nanoseconds, i.e.
// the histogram spans ~4µs to ~17s; the last bucket absorbs the overflow.
const latBuckets = 23

// batchBuckets is the number of power-of-two batch-size histogram buckets:
// bucket i counts flushes of size in [2^i, 2^(i+1)), spanning 1 to ≥4096.
const batchBuckets = 13

// Metrics is the batcher's lock-free instrumentation: monotone counters and
// two power-of-two histograms, all updated with atomics so the flush loop and
// many request goroutines never serialize on a stats lock.
type Metrics struct {
	start time.Time

	requests atomic.Int64 // admitted requests
	samples  atomic.Int64 // admitted samples (a request may carry a small batch)
	served   atomic.Int64 // samples answered successfully
	rejected atomic.Int64 // admissions refused with ErrOverloaded
	canceled atomic.Int64 // requests dropped at flush time (context done)
	errors   atomic.Int64 // requests failed by an engine error
	batches  atomic.Int64 // engine flushes
	swaps    atomic.Int64 // hot engine swaps

	partials       atomic.Int64 // partial-score requests (sharded serving)
	partialSamples atomic.Int64 // samples across partial requests
	partialErrors  atomic.Int64 // partial requests failed

	latency [latBuckets]atomic.Int64
	batch   [batchBuckets]atomic.Int64
}

func newMetrics() *Metrics { return &Metrics{start: time.Now()} }

func latBucket(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns < 1<<12 {
		return 0
	}
	b := bits.Len64(ns) - 13
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

func batchBucket(n int) int {
	if n < 1 {
		return 0
	}
	b := bits.Len64(uint64(n)) - 1
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	return b
}

// observe records one answered request: its end-to-end latency (queue wait +
// batch compute) and its sample count.
func (m *Metrics) observe(lat time.Duration, samples int) {
	m.served.Add(int64(samples))
	m.latency[latBucket(lat)].Add(1)
}

func (m *Metrics) observeBatch(samples int) {
	m.batches.Add(1)
	m.batch[batchBucket(samples)].Add(1)
}

// observePartial records one sharded partial-score request.
func (m *Metrics) observePartial(samples int, err error) {
	m.partials.Add(1)
	m.partialSamples.Add(int64(samples))
	if err != nil {
		m.partialErrors.Add(1)
	}
}

// quantile returns the upper bound of the histogram bucket where the
// cumulative count crosses q (0 < q ≤ 1), in the bucket's native unit.
func quantile(counts []int64, q float64, unitAt func(bucket int) float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return unitAt(i)
		}
	}
	return unitAt(len(counts) - 1)
}

// Snapshot is a point-in-time copy of the batcher's metrics, shaped for the
// /metrics endpoint and operator dashboards.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests int64 `json:"requests"`
	Samples  int64 `json:"samples"`
	Served   int64 `json:"served"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
	Errors   int64 `json:"errors"`
	Batches  int64 `json:"batches"`
	Swaps    int64 `json:"swaps"`

	Partials       int64 `json:"partials"`
	PartialSamples int64 `json:"partial_samples"`
	PartialErrors  int64 `json:"partial_errors"`

	// QPS is samples served per second over the batcher's whole uptime.
	QPS float64 `json:"qps"`
	// QueueDepth is the instantaneous admission-queue occupancy (requests).
	QueueDepth int `json:"queue_depth"`
	// MeanBatch is samples served per engine flush.
	MeanBatch float64 `json:"mean_batch"`
	// BatchP50 is the median flush size (upper bound of its 2^k bucket).
	BatchP50 float64 `json:"batch_p50"`

	// Latency quantiles are upper bounds of power-of-two buckets, so they
	// overestimate by at most 2×; they answer "is p99 milliseconds or
	// seconds", not microbenchmark questions.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// snapshot assembles a Snapshot; queueDepth is sampled by the caller (the
// batcher owns the queue).
func (m *Metrics) snapshot(queueDepth int) Snapshot {
	s := Snapshot{
		UptimeSec:      time.Since(m.start).Seconds(),
		Requests:       m.requests.Load(),
		Samples:        m.samples.Load(),
		Served:         m.served.Load(),
		Rejected:       m.rejected.Load(),
		Canceled:       m.canceled.Load(),
		Errors:         m.errors.Load(),
		Batches:        m.batches.Load(),
		Swaps:          m.swaps.Load(),
		Partials:       m.partials.Load(),
		PartialSamples: m.partialSamples.Load(),
		PartialErrors:  m.partialErrors.Load(),
		QueueDepth:     queueDepth,
	}
	if s.UptimeSec > 0 {
		s.QPS = float64(s.Served) / s.UptimeSec
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Served) / float64(s.Batches)
	}
	lat := make([]int64, latBuckets)
	for i := range lat {
		lat[i] = m.latency[i].Load()
	}
	latUpperMs := func(b int) float64 { return float64(uint64(1)<<(b+13)) / 1e6 }
	s.LatencyP50Ms = quantile(lat, 0.50, latUpperMs)
	s.LatencyP99Ms = quantile(lat, 0.99, latUpperMs)
	bat := make([]int64, batchBuckets)
	for i := range bat {
		bat[i] = m.batch[i].Load()
	}
	s.BatchP50 = quantile(bat, 0.50, func(b int) float64 { return float64(uint64(1) << (b + 1)) })
	return s
}
