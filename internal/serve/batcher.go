// Package serve is the concurrent serving front end over the frozen
// inference engine: it coalesces many small independent requests into
// engine-sized micro-batches, so callers issuing single-sample predictions
// get the batched-GEMM throughput the kernels were built for (the
// per-request path repays the projection's B-panel packing on every call;
// one 64-sample flush repays it once).
//
// The design is a classic dynamic batcher (TF-Serving/Triton style) with the
// failure modes of open deployment handled explicitly:
//
//   - bounded admission queue: when the queue is full, Predict fails fast
//     with ErrOverloaded instead of stacking unbounded latency;
//   - per-request contexts: a canceled or expired request is dropped at
//     flush-assembly time without stalling the rest of its batch;
//   - graceful drain: Close stops admissions, flushes everything queued, and
//     only then returns;
//   - atomic hot-swap: Swap installs a newly compiled engine between flushes
//     with zero downtime, so retraining never interrupts serving.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// ErrOverloaded is returned when the admission queue is full. Callers should
// shed load (HTTP 429) rather than retry immediately.
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrClosed is returned by Predict after Close.
var ErrClosed = errors.New("serve: batcher closed")

// Options tune the batcher. The zero value asks for defaults everywhere.
type Options struct {
	// MaxBatch is the flush size threshold in samples. Default: the engine's
	// chunk size (the batch its arenas were sized for).
	MaxBatch int
	// MaxDelay bounds how long the oldest queued request may wait before its
	// (partial) batch is flushed. The deadline is measured from that
	// request's enqueue time, so a queue that filled while a previous batch
	// computed flushes immediately. 0 means greedy mode: flush as soon as
	// the queue drains, forming batches only from requests that are already
	// waiting. Default: 1ms.
	MaxDelay time.Duration
	// QueueCap is the admission queue capacity in requests; admissions
	// beyond it fail with ErrOverloaded. Default: 4×MaxBatch.
	QueueCap int
}

func (o Options) withDefaults(e *engine.Engine) Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = e.ChunkSize()
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = time.Millisecond
	}
	if o.MaxDelay < 0 {
		o.MaxDelay = 0 // greedy
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4 * o.MaxBatch
	}
	return o
}

// request is one caller's unit of work while it sits in the queue. The
// caller owns data and preds; the flush loop writes preds and then signals
// done (buffered, never blocking), so an abandoned request cannot stall it.
type request struct {
	ctx   context.Context
	data  []float32
	n     int
	preds []int
	enq   time.Time
	done  chan error
}

// Batcher coalesces concurrent prediction requests into micro-batches for a
// frozen engine. Safe for concurrent use by any number of goroutines; one
// internal flush loop owns the staging buffers and talks to the engine.
type Batcher struct {
	opts      Options
	inShape   [3]int
	sampleLen int

	eng atomic.Pointer[engine.Engine]
	// prev retains the engine displaced by the last Swap. During a rolling
	// swap of a sharded deployment the router keeps addressing the old model
	// version until every shard advertises the new one; serving both from one
	// process is what makes the rollout zero-downtime (see EngineFor).
	prev atomic.Pointer[engine.Engine]

	// partialSem bounds concurrent PredictPartial computations. Partial
	// requests arrive pre-batched from the router, so they bypass the
	// coalescing queue and instead get simple admission control here.
	partialSem chan struct{}

	mu     sync.RWMutex // guards closed against concurrent enqueues
	closed bool
	queue  chan *request

	loopDone chan struct{}
	met      *Metrics

	// Flush-loop-owned state.
	staging []float32
	preds   []int
	live    []*request
}

// New wraps a compiled engine in a batching front end and starts its flush
// loop. Call Close to drain and stop it.
func New(e *engine.Engine, opts Options) (*Batcher, error) {
	if e == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	opts = opts.withDefaults(e)
	b := &Batcher{
		opts:      opts,
		inShape:   e.InShape(),
		sampleLen: e.SampleLen(),
		queue:     make(chan *request, opts.QueueCap),
		loopDone:  make(chan struct{}),
		met:       newMetrics(),
		staging:   make([]float32, opts.MaxBatch*e.SampleLen()),
		preds:     make([]int, opts.MaxBatch),
		live:      make([]*request, 0, opts.MaxBatch),

		partialSem: make(chan struct{}, 4),
	}
	b.eng.Store(e)
	go b.loop()
	return b, nil
}

// Engine returns the currently installed engine.
func (b *Batcher) Engine() *engine.Engine { return b.eng.Load() }

// Options returns the batcher's effective (defaulted) options.
func (b *Batcher) Options() Options { return b.opts }

// Stats snapshots the batcher's metrics.
func (b *Batcher) Stats() Snapshot { return b.met.snapshot(len(b.queue)) }

// Swap atomically installs a new engine — typically one recompiled after
// retraining — with zero downtime: the in-flight flush finishes on the old
// engine, the next flush uses the new one. The new engine must accept the
// same input shape and serve the same D-slice; batches never straddle two
// engines, so predictions stay internally consistent per request.
//
// The displaced engine is retained (see EngineFor): partial requests pinned
// to the old model version keep working until the next Swap, which is what
// lets a router roll a sharded fleet one process at a time without a window
// where some version is unservable.
func (b *Batcher) Swap(e *engine.Engine) error {
	if e == nil {
		return fmt.Errorf("serve: Swap with nil engine")
	}
	if e.InShape() != b.inShape {
		return fmt.Errorf("serve: Swap engine input shape %v, batcher serves %v", e.InShape(), b.inShape)
	}
	cur := b.eng.Load()
	if lo, hi := e.Shard(); e.FullDim() != cur.FullDim() || func() bool { clo, chi := cur.Shard(); return lo != clo || hi != chi }() {
		clo, chi := cur.Shard()
		lo, hi := e.Shard()
		return fmt.Errorf("serve: Swap engine shard [%d,%d) of %d, batcher serves [%d,%d) of %d",
			lo, hi, e.FullDim(), clo, chi, cur.FullDim())
	}
	b.prev.Store(cur)
	b.eng.Store(e)
	b.met.swaps.Add(1)
	return nil
}

// Versions reports the model versions this batcher can serve: the current
// engine's and, after a Swap, the previous engine's (0 when there is none).
func (b *Batcher) Versions() (cur, prev uint64) {
	cur = b.eng.Load().ModelVersion()
	if p := b.prev.Load(); p != nil {
		prev = p.ModelVersion()
	}
	return cur, prev
}

// EngineFor resolves a model version to a servable engine: 0 means "whatever
// is current"; otherwise the current engine, then the pre-Swap one, by exact
// version match. Returns nil when the version is not servable here — the
// caller should answer with a conflict, prompting the router to re-resolve.
func (b *Batcher) EngineFor(version uint64) *engine.Engine {
	cur := b.eng.Load()
	if version == 0 || cur.ModelVersion() == version {
		return cur
	}
	if p := b.prev.Load(); p != nil && p.ModelVersion() == version {
		return p
	}
	return nil
}

// ErrVersionGone is returned by PredictPartial when the requested model
// version is neither the current nor the previous engine's.
var ErrVersionGone = errors.New("serve: requested model version not servable")

// PredictPartial computes this process's shard partial scores for a
// pre-batched request — the data-plane entry point of the sharded serving
// tier. Unlike Predict it does not coalesce (the router already batched);
// admission is a bounded semaphore so a slow shard applies backpressure
// instead of stacking goroutines. version pins the model (0 = current); ps
// is resized in place, reusing capacity, so pooled callers allocate nothing.
func (b *Batcher) PredictPartial(ctx context.Context, data []float32, n int, version uint64, ps *engine.PartialScores) error {
	if n < 1 || n > b.opts.MaxBatch {
		return fmt.Errorf("serve: partial request of %d samples (want 1..%d)", n, b.opts.MaxBatch)
	}
	if len(data) != n*b.sampleLen {
		return fmt.Errorf("serve: partial request data length %d, want %d samples × %d floats", len(data), n, b.sampleLen)
	}
	b.mu.RLock()
	closed := b.closed
	b.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	e := b.EngineFor(version)
	if e == nil {
		return fmt.Errorf("%w: %016x", ErrVersionGone, version)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case b.partialSem <- struct{}{}:
		defer func() { <-b.partialSem }()
	case <-ctx.Done():
		return ctx.Err()
	}
	imgs := tensor.FromSlice(data, n, b.inShape[0], b.inShape[1], b.inShape[2])
	err := e.PartialChecked(imgs, ps)
	b.met.observePartial(n, err)
	return err
}

// Predict classifies one sample (flat [C·H·W] floats), blocking until its
// micro-batch is served, the context is done, or admission is refused.
func (b *Batcher) Predict(ctx context.Context, sample []float32) (int, error) {
	preds, err := b.PredictBatch(ctx, sample, 1)
	if err != nil {
		return 0, err
	}
	return preds[0], nil
}

// PredictBatch classifies n samples held flat in data (length n·C·H·W). The
// request rides the same micro-batching path as single samples; n must not
// exceed MaxBatch (callers with genuinely large batches should use the
// engine directly — it batches internally). data must not be mutated until
// the call returns.
func (b *Batcher) PredictBatch(ctx context.Context, data []float32, n int) ([]int, error) {
	if n < 1 || n > b.opts.MaxBatch {
		return nil, fmt.Errorf("serve: request of %d samples (want 1..%d)", n, b.opts.MaxBatch)
	}
	if len(data) != n*b.sampleLen {
		return nil, fmt.Errorf("serve: request data length %d, want %d samples × %d floats", len(data), n, b.sampleLen)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req := &request{
		ctx:   ctx,
		data:  data,
		n:     n,
		preds: make([]int, n),
		enq:   time.Now(),
		done:  make(chan error, 1),
	}

	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.met.rejected.Add(1)
		return nil, ErrOverloaded
	}
	b.met.requests.Add(1)
	b.met.samples.Add(int64(n))

	select {
	case err := <-req.done:
		if err != nil {
			return nil, err
		}
		return req.preds, nil
	case <-ctx.Done():
		// The flush loop will notice the dead context at assembly time, or
		// compute a result nobody reads; either way it never blocks on us.
		return nil, ctx.Err()
	}
}

// Close stops admitting requests, drains and serves everything already
// queued, waits for the flush loop to exit, and returns. Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.loopDone
}

// loop is the flush loop: block for one request, gather companions up to the
// size threshold or the oldest request's delay deadline, flush, repeat. A
// request that would overflow the size threshold is carried into the next
// batch instead of splitting.
func (b *Batcher) loop() {
	defer close(b.loopDone)
	var carry *request
	var timer *time.Timer
	for {
		first := carry
		carry = nil
		if first == nil {
			var ok bool
			first, ok = <-b.queue
			if !ok {
				return
			}
		}
		batch := b.live[:0]
		batch = append(batch, first)
		total := first.n

	gather:
		for total < b.opts.MaxBatch {
			// Greedily take whatever is already waiting.
			select {
			case r, ok := <-b.queue:
				if !ok {
					break gather
				}
				if total+r.n > b.opts.MaxBatch {
					carry = r
					break gather
				}
				batch = append(batch, r)
				total += r.n
				continue
			default:
			}
			// Queue momentarily empty: linger until the oldest request's
			// deadline for late companions. In greedy mode (MaxDelay 0) or
			// past the deadline, flush what we have.
			wait := b.opts.MaxDelay - time.Since(first.enq)
			if wait <= 0 {
				break gather
			}
			if timer == nil {
				timer = time.NewTimer(wait)
			} else {
				timer.Reset(wait)
			}
			select {
			case r, ok := <-b.queue:
				if !timer.Stop() {
					<-timer.C
				}
				if !ok {
					break gather
				}
				if total+r.n > b.opts.MaxBatch {
					carry = r
					break gather
				}
				batch = append(batch, r)
				total += r.n
			case <-timer.C:
				break gather
			}
		}
		b.flush(batch)
	}
}

// flush assembles one staging batch from the gathered requests — dropping
// any whose context died while queued — runs the engine, and fans results
// back to each request's future in input order.
func (b *Batcher) flush(batch []*request) {
	live := batch[:0]
	off := 0
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			// The caller is gone (or going): hand it its context error and
			// keep its samples out of the staging batch entirely.
			b.met.canceled.Add(1)
			r.done <- err
			continue
		}
		copy(b.staging[off*b.sampleLen:], r.data)
		off += r.n
		live = append(live, r)
	}
	if off == 0 {
		return
	}
	imgs := tensor.FromSlice(b.staging[:off*b.sampleLen], off, b.inShape[0], b.inShape[1], b.inShape[2])
	preds := b.preds[:off]
	err := b.eng.Load().PredictChecked(imgs, preds)
	b.met.observeBatch(off)

	now := time.Now()
	off = 0
	for _, r := range live {
		if err != nil {
			b.met.errors.Add(1)
			r.done <- err
		} else {
			copy(r.preds, preds[off:off+r.n])
			b.met.observe(now.Sub(r.enq), r.n)
			r.done <- nil
		}
		off += r.n
	}
}
