package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// tinyZoo mirrors the engine test helper: a fast 2-unit CNN over 16×16
// inputs.
func tinyZoo(seed int64, classes int) *cnn.Model {
	rng := tensor.NewRNG(seed)
	m := &cnn.Model{Name: "tinycnn", InShape: []int{3, 16, 16}, Classes: classes}
	m.Units = append(m.Units,
		cnn.Unit{Index: 0, Label: "conv0", Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, 8, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
		cnn.Unit{Index: 1, Label: "conv1", Layers: []nn.Layer{
			nn.NewConv2D(rng, 8, 16, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
	)
	m.Head = []nn.Layer{nn.NewFlatten(), nn.NewLinear(rng, 16*4*4, classes, true)}
	return m.Finish()
}

// buildEngine compiles a frozen engine over a bundled tiny pipeline, plus a
// dataset whose samples drive the tests. mut tweaks the config (e.g. a
// different seed to get a genuinely different model for swap tests).
func buildEngine(t *testing.T, mut func(*core.Config)) (*engine.Engine, *core.Pipeline, *dataset.Dataset) {
	t.Helper()
	cfgD := dataset.SynthConfig{Classes: 4, Train: 48, Test: 33, Size: 16, Noise: 0.2, Seed: 61}
	train, test := dataset.SynthCIFAR(cfgD)
	cfg := core.DefaultConfig(1, 4)
	cfg.D = 70
	cfg.FHat = 16
	cfg.Seed = 7
	cfg.BatchSize = 8
	cfg.PackedInference = true
	if mut != nil {
		mut(&cfg)
	}
	p, err := core.New(tinyZoo(62, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	e, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return e, p, test
}

// sample returns test sample i as a flat float slice.
func sample(d *dataset.Dataset, i int) []float32 {
	sl := d.Images.Len() / d.Len()
	return d.Images.Data[i*sl : (i+1)*sl]
}

// TestBatcherHammer is the load-correctness gate, run under -race by `make
// check`: many goroutines issue requests for *distinct* samples and each
// verifies it got its own sample's answer back (any cross-request routing
// leak surfaces as a wrong class), while results must be bit-identical to
// the direct engine path — which is itself tested bit-identical to
// Pipeline.PredictDirect.
func TestBatcherHammer(t *testing.T) {
	e, p, test := buildEngine(t, nil)
	want := p.PredictDirect(test.Images)

	// Distinct expected classes must exist, or routing bugs are invisible.
	seen := map[int]bool{}
	for _, c := range want {
		seen[c] = true
	}
	if len(seen) < 2 {
		t.Fatal("degenerate model: every sample predicts the same class")
	}

	for _, opts := range []Options{
		{MaxBatch: 16, MaxDelay: 500 * time.Microsecond, QueueCap: 256},
		{MaxDelay: -1, QueueCap: 256}, // greedy mode, engine-chunk MaxBatch
	} {
		b, err := New(e, opts)
		if err != nil {
			t.Fatal(err)
		}
		const goroutines = 16
		const iters = 60
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := 0; it < iters; it++ {
					i := (g*iters + it) % test.Len()
					if it%7 == 3 {
						// Small multi-sample request: three consecutive
						// samples, each answer checked against its own slot.
						j, k := (i+1)%test.Len(), (i+2)%test.Len()
						if j != i+1 || k != i+2 {
							continue // wrapped: samples not contiguous in memory
						}
						sl := test.Images.Len() / test.Len()
						preds, err := b.PredictBatch(context.Background(), test.Images.Data[i*sl:(i+3)*sl], 3)
						if err != nil {
							errs <- err
							return
						}
						for off, idx := range []int{i, j, k} {
							if preds[off] != want[idx] {
								errs <- errRouted
								return
							}
						}
						continue
					}
					got, err := b.Predict(context.Background(), sample(test, i))
					if err != nil {
						errs <- err
						return
					}
					if got != want[i] {
						errs <- errRouted
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		st := b.Stats()
		if st.Served == 0 || st.Batches == 0 {
			t.Fatalf("stats show no work: %+v", st)
		}
		if st.MeanBatch <= 1.0 && st.Batches > int64(st.Requests) {
			t.Fatalf("no batching happened: %+v", st)
		}
		b.Close()
	}
}

var errRouted = errors.New("serve: response routed to the wrong request")

// TestBatcherMatchesDirect drives every test sample through the batcher
// sequentially and demands bit-identical agreement with Engine.Predict (and
// therefore with Pipeline.PredictDirect, per the engine's own parity tests).
func TestBatcherMatchesDirect(t *testing.T) {
	e, p, test := buildEngine(t, nil)
	direct := p.PredictDirect(test.Images)
	enginePreds, err := e.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < test.Len(); i++ {
		got, err := b.Predict(context.Background(), sample(test, i))
		if err != nil {
			t.Fatal(err)
		}
		if got != enginePreds[i] || got != direct[i] {
			t.Fatalf("sample %d: batcher=%d engine=%d direct=%d", i, got, enginePreds[i], direct[i])
		}
	}
}

// TestBatcherCancellation: a request whose context dies while queued is
// dropped at flush-assembly time with its context error, and its batchmates
// are served normally.
func TestBatcherCancellation(t *testing.T) {
	e, p, test := buildEngine(t, nil)
	want := p.PredictDirect(test.Images)
	// Long MaxDelay: the canceled request would otherwise linger; the live
	// one rides the same batch.
	b, err := New(e, Options{MaxBatch: 8, MaxDelay: 50 * time.Millisecond, QueueCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before enqueue: must come back with ctx.Err(), fast
	start := time.Now()
	if _, err := b.Predict(ctx, sample(test, 0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request returned %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("canceled request blocked")
	}

	// A live request behind a canceled one is still served correctly and the
	// flush loop keeps running.
	got, err := b.Predict(context.Background(), sample(test, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got != want[1] {
		t.Fatalf("after cancellation: got %d want %d", got, want[1])
	}

	// An expired deadline behaves like cancellation.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := b.Predict(dctx, sample(test, 2)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request returned %v", err)
	}
	st := b.Stats()
	if st.Canceled == 0 {
		t.Fatalf("cancellations not counted: %+v", st)
	}
}

// TestBatcherBackpressure: a full admission queue rejects instantly with
// ErrOverloaded instead of queueing unbounded work. White-box: the batcher
// is built without its flush loop, so the queue deterministically stays
// full — in a live batcher the gather loop would drain it.
func TestBatcherBackpressure(t *testing.T) {
	e, _, test := buildEngine(t, nil)
	b := &Batcher{
		opts:      Options{MaxBatch: 4, MaxDelay: time.Hour, QueueCap: 2}.withDefaults(e),
		inShape:   e.InShape(),
		sampleLen: e.SampleLen(),
		queue:     make(chan *request, 2),
		loopDone:  make(chan struct{}),
		met:       newMetrics(),
	}
	b.eng.Store(e)

	// Fill the admission queue; with no flusher these stay parked. The
	// enqueuing callers wait on short deadlines and come back with their
	// context error — a queued request is still bounded by its own deadline.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			_, err := b.Predict(ctx, sample(test, i))
			results <- err
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(b.queue) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The next admission must be refused immediately.
	start := time.Now()
	_, err := b.Predict(context.Background(), sample(test, 3))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded batcher returned %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rejection took %v, want immediate", d)
	}
	if b.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	for i := 0; i < 2; i++ {
		if err := <-results; !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("parked request returned %v, want deadline exceeded", err)
		}
	}
}

// TestBatcherSwap: engines hot-swap atomically under load with zero downtime,
// and post-swap answers come from the new model.
func TestBatcherSwap(t *testing.T) {
	e1, p1, test := buildEngine(t, nil)
	// A different seed gives a genuinely different model (different
	// projection and class hypervectors).
	e2, p2, _ := buildEngine(t, func(c *core.Config) { c.Seed = 99 })
	want1 := p1.PredictDirect(test.Images)
	want2 := p2.PredictDirect(test.Images)
	differs := false
	for i := range want1 {
		if want1[i] != want2[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("swap test needs two models that disagree somewhere")
	}

	b, err := New(e1, Options{MaxDelay: -1, QueueCap: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Shape-mismatched engines must be refused.
	if err := b.Swap(nil); err == nil {
		t.Fatal("nil swap accepted")
	}

	// Background load across the swap: every answer must match either the
	// old or the new model exactly (a batch never straddles engines, but a
	// goroutine doesn't know which side of the swap it landed on).
	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (g + 4*it) % test.Len()
				got, err := b.Predict(context.Background(), sample(test, i))
				if err != nil {
					errs <- err
					return
				}
				if got != want1[i] && got != want2[i] {
					errs <- errors.New("serve: prediction matches neither engine across swap")
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := b.Swap(e2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Steady state after the swap: answers are the new model's.
	for i := 0; i < 8; i++ {
		got, err := b.Predict(context.Background(), sample(test, i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want2[i] {
			t.Fatalf("post-swap sample %d: got %d want %d", i, got, want2[i])
		}
	}
	if b.Stats().Swaps != 1 {
		t.Fatalf("swap count %d", b.Stats().Swaps)
	}
}

// TestBatcherClose: close drains queued work, later admissions fail with
// ErrClosed, and Close is idempotent.
func TestBatcherClose(t *testing.T) {
	e, p, test := buildEngine(t, nil)
	want := p.PredictDirect(test.Images)
	b, err := New(e, Options{MaxBatch: 4, MaxDelay: 5 * time.Millisecond, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	const inflight = 12
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		i := i
		go func() {
			got, err := b.Predict(context.Background(), sample(test, i))
			if err == nil && got != want[i] {
				err = errRouted
			}
			results <- err
		}()
	}
	// Give the requests a moment to enqueue, then drain.
	time.Sleep(5 * time.Millisecond)
	b.Close()
	b.Close() // idempotent
	timeout := time.After(30 * time.Second)
	okOrClosed := 0
	for i := 0; i < inflight; i++ {
		select {
		case err := <-results:
			// A request that raced Close may be refused; one that made it in
			// must be answered correctly.
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Fatal(err)
			}
			okOrClosed++
		case <-timeout:
			t.Fatal("requests still pending after Close returned")
		}
	}
	if _, err := b.Predict(context.Background(), sample(test, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Predict returned %v", err)
	}
}

// TestBatcherRequestValidation: malformed requests fail fast without
// touching the queue.
func TestBatcherRequestValidation(t *testing.T) {
	e, _, test := buildEngine(t, nil)
	b, err := New(e, Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.PredictBatch(context.Background(), sample(test, 0), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := b.PredictBatch(context.Background(), sample(test, 0), 5); err == nil {
		t.Fatal("n>MaxBatch accepted")
	}
	if _, err := b.PredictBatch(context.Background(), sample(test, 0)[:10], 1); err == nil {
		t.Fatal("short data accepted")
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil engine accepted")
	}
}
