package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// routerD gives the shard tests a 3-block dimension (256+256+21) so S up to
// 3 is possible with a ragged tail, while staying fast to compile.
const routerD = 533

// buildShardPipeline trains one pipeline at routerD and returns it with the
// test set.
func buildShardPipeline(t *testing.T, mut func(*core.Config)) (*core.Pipeline, *dataset.Dataset) {
	t.Helper()
	_, p, test := func() (*engine.Engine, *core.Pipeline, *dataset.Dataset) {
		return buildEngine(t, func(c *core.Config) {
			c.D = routerD
			if mut != nil {
				mut(c)
			}
		})
	}()
	return p, test
}

// shardFleet spins one Batcher+Server per shard of p and returns the base
// URLs (one replica per slot) plus the batchers for swap tests.
func shardFleet(t *testing.T, p *core.Pipeline, S int) ([][]string, []*Batcher) {
	t.Helper()
	addrs := make([][]string, S)
	batchers := make([]*Batcher, S)
	for s := 0; s < S; s++ {
		e, err := engine.CompileShard(p, s, S)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(e, Options{MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewServer(b, 5*time.Second).Handler())
		t.Cleanup(func() { srv.Close(); b.Close() })
		addrs[s] = []string{srv.URL}
		batchers[s] = b
	}
	return addrs, batchers
}

// batchOf returns the first n test samples as one flat slice.
func batchOf(test *dataset.Dataset, n int) []float32 {
	sl := test.Images.Len() / test.Len()
	return test.Images.Data[:n*sl]
}

// TestRouterMatchesEngine: the routed cluster answer is bit-identical to the
// unsharded engine for S ∈ {1, 2, 3}, for both kernels.
func TestRouterMatchesEngine(t *testing.T) {
	for _, packed := range []bool{true, false} {
		name := "float"
		if packed {
			name = "packed"
		}
		t.Run(name, func(t *testing.T) {
			p, test := buildShardPipeline(t, func(c *core.Config) { c.PackedInference = packed })
			full, err := engine.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			const n = 8
			imgs := tensor.FromSlice(batchOf(test, n), n, 3, 16, 16)
			want, err := full.Predict(imgs)
			if err != nil {
				t.Fatal(err)
			}
			for _, S := range []int{1, 2, 3} {
				addrs, _ := shardFleet(t, p, S)
				r, err := NewRouter(addrs, RouterOptions{PollInterval: -1})
				if err != nil {
					t.Fatalf("S=%d: %v", S, err)
				}
				defer r.Close()
				if r.Version() != full.ModelVersion() {
					t.Fatalf("S=%d: router pinned %016x, model is %016x", S, r.Version(), full.ModelVersion())
				}
				got, err := r.Predict(context.Background(), batchOf(test, n), n)
				if err != nil {
					t.Fatalf("S=%d: %v", S, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("S=%d sample %d: routed %d, engine %d", S, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestRouterRollingSwapZeroDowntime: shards swap to a retrained model one
// process at a time under continuous load; no request ever fails, answers
// always come from a single consistent model version, and the router flips
// to the new version only after the whole fleet advertises it.
func TestRouterRollingSwapZeroDowntime(t *testing.T) {
	p1, test := buildShardPipeline(t, nil)
	p2, _ := buildShardPipeline(t, func(c *core.Config) { c.Seed = 8 })
	full1, err := engine.Compile(p1)
	if err != nil {
		t.Fatal(err)
	}
	full2, err := engine.Compile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if full1.ModelVersion() == full2.ModelVersion() {
		t.Fatal("fixtures must have distinct model versions")
	}
	const n = 8
	imgs := tensor.FromSlice(batchOf(test, n), n, 3, 16, 16)
	want1, _ := full1.Predict(imgs)
	want2, _ := full2.Predict(imgs)

	const S = 2
	addrs, batchers := shardFleet(t, p1, S)
	r, err := NewRouter(addrs, RouterOptions{PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Continuous load through the whole rollout.
	var stop atomic.Bool
	var reqErr atomic.Value
	matches := func(got []int, want []int) bool {
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	var served1, served2 atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, err := r.Predict(context.Background(), batchOf(test, n), n)
				if err != nil {
					reqErr.Store(err)
					return
				}
				switch {
				case matches(got, want1):
					served1.Add(1)
				case matches(got, want2):
					served2.Add(1)
				default:
					reqErr.Store(errors.New("answer matches neither model version"))
					return
				}
			}
		}()
	}

	// Roll the fleet one shard at a time.
	for s := 0; s < S; s++ {
		e2, err := engine.CompileShard(p2, s, S)
		if err != nil {
			t.Fatal(err)
		}
		if err := batchers[s].Swap(e2); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond) // let load run against the half-rolled fleet
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Version() != full2.ModelVersion() {
		if time.Now().After(deadline) {
			t.Fatalf("router never flipped to %016x (still %016x)", full2.ModelVersion(), r.Version())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Serve a little on the new version, then stop the load.
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if e := reqErr.Load(); e != nil {
		t.Fatalf("request failed during rolling swap: %v", e)
	}
	if served1.Load() == 0 {
		t.Fatal("no requests served on the old version (test raced past the rollout)")
	}
	if served2.Load() == 0 {
		t.Fatal("no requests served on the new version after the flip")
	}
	// After the flip the answer must be the new model's.
	got, err := r.Predict(context.Background(), batchOf(test, n), n)
	if err != nil {
		t.Fatal(err)
	}
	if !matches(got, want2) {
		t.Fatalf("post-flip answer %v, want new model's %v", got, want2)
	}
}

// restartableShard serves one shard on a fixed port through kill/restart
// cycles.
type restartableShard struct {
	t       *testing.T
	addr    string
	handler http.Handler
	srv     *http.Server
}

func newRestartableShard(t *testing.T, handler http.Handler) *restartableShard {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &restartableShard{t: t, addr: ln.Addr().String(), handler: handler}
	rs.serve(ln)
	return rs
}

func (rs *restartableShard) serve(ln net.Listener) {
	rs.srv = &http.Server{Handler: rs.handler}
	go rs.srv.Serve(ln)
}

func (rs *restartableShard) kill() { rs.srv.Close() }

func (rs *restartableShard) restart() {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", rs.addr)
		if err == nil {
			rs.serve(ln)
			return
		}
		if time.Now().After(deadline) {
			rs.t.Errorf("could not rebind %s: %v", rs.addr, err)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterChaosShardRestart: a shard process dies mid-load and comes back.
// While it is down every affected request fails EXPLICITLY (wrapped
// ErrShardUnavailable) — an answered request is always exact — and after the
// restart the router recovers on its own.
func TestRouterChaosShardRestart(t *testing.T) {
	p, test := buildShardPipeline(t, nil)
	full, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	imgs := tensor.FromSlice(batchOf(test, n), n, 3, 16, 16)
	want, _ := full.Predict(imgs)

	const S = 2
	addrs := make([][]string, S)
	var chaos *restartableShard
	for s := 0; s < S; s++ {
		e, err := engine.CompileShard(p, s, S)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(e, Options{MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		handler := NewServer(b, 5*time.Second).Handler()
		if s == 1 {
			chaos = newRestartableShard(t, handler)
			t.Cleanup(chaos.kill)
			addrs[s] = []string{"http://" + chaos.addr}
		} else {
			srv := httptest.NewServer(handler)
			t.Cleanup(srv.Close)
			addrs[s] = []string{srv.URL}
		}
	}
	r, err := NewRouter(addrs, RouterOptions{
		Timeout:      2 * time.Second,
		PollInterval: 2 * time.Millisecond,
		EjectAfter:   2,
		EjectCooloff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var stop atomic.Bool
	var wrong atomic.Value
	var okBefore, failed, okAfter atomic.Int64
	var phase atomic.Int32 // 0 = up, 1 = down, 2 = restarted
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, err := r.Predict(context.Background(), batchOf(test, n), n)
				if err != nil {
					if !errors.Is(err, ErrShardUnavailable) && !errors.Is(err, context.DeadlineExceeded) {
						wrong.Store(err)
						return
					}
					failed.Add(1)
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						wrong.Store(errors.New("answered request had wrong prediction"))
						return
					}
				}
				if phase.Load() == 2 {
					okAfter.Add(1)
				} else {
					okBefore.Add(1)
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	phase.Store(1)
	chaos.kill()
	time.Sleep(50 * time.Millisecond)
	chaos.restart()
	phase.Store(2)

	deadline := time.Now().Add(5 * time.Second)
	for okAfter.Load() < 5 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("router never recovered after restart (ok before=%d failed=%d)", okBefore.Load(), failed.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if e := wrong.Load(); e != nil {
		t.Fatalf("silent corruption during chaos: %v", e)
	}
	if okBefore.Load() == 0 {
		t.Fatal("no successful requests before the kill")
	}
	if failed.Load() == 0 {
		t.Fatal("the kill window produced no explicit failures — chaos did not bite")
	}
}

// TestRouterReplicaFailover: a slot with two replicas keeps answering when
// one dies; the dead replica gets ejected after consecutive failures.
func TestRouterReplicaFailover(t *testing.T) {
	p, test := buildShardPipeline(t, nil)
	full, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	imgs := tensor.FromSlice(batchOf(test, n), n, 3, 16, 16)
	want, _ := full.Predict(imgs)

	const S = 2
	addrs, _ := shardFleet(t, p, S)
	// Second replica for slot 0, backed by its own batcher over an equal
	// shard engine.
	e0, err := engine.CompileShard(p, 0, S)
	if err != nil {
		t.Fatal(err)
	}
	b0b, err := New(e0, Options{MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b0b.Close)
	doomed := httptest.NewServer(NewServer(b0b, 5*time.Second).Handler())
	addrs[0] = append(addrs[0], doomed.URL)

	r, err := NewRouter(addrs, RouterOptions{
		Timeout:      2 * time.Second,
		PollInterval: -1,
		EjectAfter:   1,
		EjectCooloff: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	doomed.Close()
	// Every request must still succeed: attempts that land on the dead
	// replica fail over to the live one.
	for i := 0; i < 8; i++ {
		got, err := r.Predict(context.Background(), batchOf(test, n), n)
		if err != nil {
			t.Fatalf("request %d failed despite a live replica: %v", i, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("request %d sample %d: %d want %d", i, j, got[j], want[j])
			}
		}
	}
	st := r.Stats()
	if st["retries"] == 0 {
		t.Fatal("no failovers recorded — the dead replica was never tried")
	}
	if st["ejects"] == 0 {
		t.Fatal("dead replica was never ejected")
	}
}

// TestRouterPartialEndpointFrameSanity: a corrupt length prefix on the
// binary endpoints is a clean 400, never an allocation sized by the corrupt
// value; a version the shard cannot serve is a 409.
func TestRouterPartialEndpointFrameSanity(t *testing.T) {
	e, _, _ := buildEngine(t, nil)
	b, err := New(e, Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(b, time.Second).Handler())
	t.Cleanup(func() { srv.Close(); b.Close() })

	post := func(path string, body []byte) int {
		resp, err := http.Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Corrupt length prefixes: far beyond MaxBatch, and zero.
	huge := make([]byte, partialReqHeaderLen)
	binary.LittleEndian.PutUint32(huge, 0xFFFFFFFF)
	if got := post("/partial", huge); got != http.StatusBadRequest {
		t.Fatalf("huge /partial prefix: %d, want 400", got)
	}
	zero := make([]byte, partialReqHeaderLen)
	if got := post("/partial", zero); got != http.StatusBadRequest {
		t.Fatalf("zero /partial prefix: %d, want 400", got)
	}
	if got := post("/predict", huge[:4]); got != http.StatusBadRequest {
		t.Fatalf("huge /predict prefix: %d, want 400", got)
	}
	// Truncated payload after a sane prefix.
	trunc := make([]byte, partialReqHeaderLen+8)
	binary.LittleEndian.PutUint32(trunc, 2)
	if got := post("/partial", trunc); got != http.StatusBadRequest {
		t.Fatalf("truncated /partial: %d, want 400", got)
	}
	// A version this shard never served → 409.
	stale := make([]byte, partialReqHeaderLen+1*e.SampleLen()*4)
	binary.LittleEndian.PutUint32(stale, 1)
	binary.LittleEndian.PutUint64(stale[4:], 0xDEADBEEF)
	if got := post("/partial", stale); got != http.StatusConflict {
		t.Fatalf("stale version: %d, want 409", got)
	}
}

// TestRouterZeroAlloc: the per-request fan-out hot path — request encode,
// response decode, exact reduce — runs allocation-free once the pooled
// buffers are warm.
func TestRouterZeroAlloc(t *testing.T) {
	p, test := buildShardPipeline(t, nil)
	const S, n = 2, 8
	imgs := tensor.FromSlice(batchOf(test, n), n, 3, 16, 16)
	parts := make([]*engine.PartialScores, S)
	frames := make([][]byte, S)
	var k, fullD int
	var version uint64
	for s := 0; s < S; s++ {
		e, err := engine.CompileShard(p, s, S)
		if err != nil {
			t.Fatal(err)
		}
		ps := e.NewPartials(0)
		if err := e.PartialInto(imgs, ps); err != nil {
			t.Fatal(err)
		}
		frames[s] = appendPartialResponse(nil, ps, e.ModelVersion())
		parts[s] = &engine.PartialScores{}
		k, fullD, version = e.Classes(), e.FullDim(), e.ModelVersion()
	}
	data := batchOf(test, n)
	var req []byte
	scores := make([]float64, n*k)
	preds := make([]int, n)
	hot := func() {
		req = appendPartialRequest(req[:0], data, n, version)
		for s := 0; s < S; s++ {
			if _, err := decodePartialResponse(parts[s], frames[s], n, k, fullD); err != nil {
				t.Fatal(err)
			}
		}
		if err := engine.MergeScores(preds, scores, parts); err != nil {
			t.Fatal(err)
		}
	}
	hot() // warm the buffers
	if allocs := testing.AllocsPerRun(100, hot); allocs != 0 {
		t.Fatalf("router hot path allocates %.1f times per request", allocs)
	}
}
