package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nshd/internal/engine"
)

// Router is the reduce side of the sharded serving tier: it fans a predict
// batch out to one replica of every dimension shard, add-reduces their raw
// partial scores with engine.MergeScores, and answers with predictions that
// are bit-identical to a single unsharded engine's (score additivity across
// disjoint D-slices; see internal/engine/shard.go for the math).
//
// Operational behavior, in the order it matters in production:
//
//   - Exactness or an explicit error, never a silent drop: a batch is
//     answered only when every shard slot contributed its slice. If a slot
//     has no usable replica the whole request fails loudly; the router never
//     fabricates a score from partial coverage.
//   - Replica health: consecutive failures eject a replica for a cooloff;
//     requests fail over to the slot's other replicas. An all-ejected slot is
//     still tried (ejection shapes preference, it never black-holes).
//   - Hedging: when a slot has spare replicas, a request that outlives the
//     hedge deadline launches a duplicate on the next replica and takes
//     whichever answers first.
//   - Version-gated rollout: every request pins the model version the router
//     currently targets; shard processes keep serving their pre-swap engine
//     (Batcher.EngineFor) until the router's poller has seen every slot
//     advertise the new version and flips the target. Rolling-restarting
//     shards one at a time therefore never mixes model versions inside one
//     reduce and never drops a request.
type Router struct {
	opts   RouterOptions
	client *http.Client

	slots     []*slot
	k         int
	sampleLen int
	fullD     int
	maxBatch  int
	packed    bool

	version atomic.Uint64 // model version pinned into every request

	met routerMetrics

	pool    sync.Pool // *routerScratch: per-request fan-out working set
	bufPool sync.Pool // *[]byte: per-attempt response frames

	stop     chan struct{}
	pollDone chan struct{}
}

// ErrShardUnavailable wraps every fan-out failure: some shard's D-slice
// could not be obtained, so the request was answered with an explicit error
// rather than a partial (silently wrong) reduce. Clients should back off
// and retry (HTTP 503).
var ErrShardUnavailable = errors.New("serve: shard slice unavailable")

// RouterOptions tune the router. The zero value asks for defaults.
type RouterOptions struct {
	// Timeout bounds one fan-out request end to end. Default 5s.
	Timeout time.Duration
	// PollInterval is the /healthz poll cadence that drives replica health
	// and version-gated rollout. Default 500ms; negative disables polling.
	PollInterval time.Duration
	// EjectAfter is the consecutive-failure count that ejects a replica.
	// Default 3.
	EjectAfter int
	// EjectCooloff is how long an ejected replica is deprioritized.
	// Default 2s.
	EjectCooloff time.Duration
	// Hedge is how long to wait on a slot's primary attempt before launching
	// a duplicate on another replica. 0 disables hedging.
	Hedge time.Duration
	// Client overrides the HTTP client (tests inject httptest transports).
	Client *http.Client
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.PollInterval == 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.EjectCooloff <= 0 {
		o.EjectCooloff = 2 * time.Second
	}
	return o
}

// replica is one shard process address plus its health/version state, all
// atomics so the poller, the data plane and metrics never share a lock.
type replica struct {
	addr string // base URL, e.g. http://127.0.0.1:9001

	fails        atomic.Int32  // consecutive data-plane failures
	ejectedUntil atomic.Int64  // unix nanos; 0 = in service
	healthy      atomic.Bool   // last poll reachable
	cur          atomic.Uint64 // model version the replica serves
	prev         atomic.Uint64 // pre-swap version it can still serve
}

// slot is one dimension shard: the column range [lo, hi) and the replicas
// that can score it.
type slot struct {
	lo, hi   int
	replicas []*replica
	rr       atomic.Uint32 // round-robin cursor
}

// routerScratch is one request's pooled working set: the encoded fan-out
// frame (shared by all shards), one PartialScores per slot, and the reduce
// buffers.
type routerScratch struct {
	req    []byte
	parts  []*engine.PartialScores
	merged []*engine.PartialScores
	scores []float64
	preds  []int
	errs   []error
}

// routerMetrics are the router's own counters, exposed on /metrics.
type routerMetrics struct {
	requests atomic.Int64
	samples  atomic.Int64
	errors   atomic.Int64
	retries  atomic.Int64 // failed attempts that moved to another replica
	hedges   atomic.Int64 // duplicate attempts launched by the hedge timer
	ejects   atomic.Int64
	flips    atomic.Int64 // version-target changes
}

// NewRouter handshakes every shard slot (addrs[i] lists the replica base
// URLs of shard i, in any slot order), validates that the slots tile one
// model's dimension range and agree on shape facts, picks the model version
// every slot can serve, and starts the health/rollout poller.
func NewRouter(addrs [][]string, opts RouterOptions) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one shard slot")
	}
	r := &Router{
		opts:     opts.withDefaults(),
		stop:     make(chan struct{}),
		pollDone: make(chan struct{}),
	}
	r.client = r.opts.Client
	if r.client == nil {
		r.client = &http.Client{}
	}

	for si, reps := range addrs {
		if len(reps) == 0 {
			return nil, fmt.Errorf("serve: shard slot %d has no replicas", si)
		}
		sl := &slot{lo: -1}
		for _, a := range reps {
			sl.replicas = append(sl.replicas, &replica{addr: a})
		}
		// Handshake: poll every replica (the data plane checks each answer's
		// shard range anyway); the first reachable one defines the slot.
		var h *healthResponse
		var lastErr error
		for _, rep := range sl.replicas {
			hr, err := r.pollReplica(rep)
			if err != nil {
				lastErr = err
				continue
			}
			if h == nil {
				h = hr
			}
		}
		if h == nil {
			return nil, fmt.Errorf("serve: no replica of shard slot %d reachable: %w", si, lastErr)
		}
		sl.lo, sl.hi = h.ShardLo, h.ShardHi
		if r.fullD == 0 {
			r.fullD, r.k, r.sampleLen, r.maxBatch, r.packed = h.FullD, h.Classes, h.SampleLen, h.MaxBatch, h.Packed
		} else if h.FullD != r.fullD || h.Classes != r.k || h.SampleLen != r.sampleLen || h.Packed != r.packed {
			return nil, fmt.Errorf("serve: shard slot %d shape (D=%d K=%d len=%d packed=%v) disagrees with slot 0 (D=%d K=%d len=%d packed=%v)",
				si, h.FullD, h.Classes, h.SampleLen, h.Packed, r.fullD, r.k, r.sampleLen, r.packed)
		}
		if h.MaxBatch < r.maxBatch {
			r.maxBatch = h.MaxBatch // the fleet batch limit is the weakest shard's
		}
		r.slots = append(r.slots, sl)
	}
	sort.Slice(r.slots, func(i, j int) bool { return r.slots[i].lo < r.slots[j].lo })
	cursor := 0
	for _, sl := range r.slots {
		if sl.lo != cursor {
			return nil, fmt.Errorf("serve: shard slots do not tile [0,%d): gap/overlap at column %d (next slot starts at %d)", r.fullD, cursor, sl.lo)
		}
		cursor = sl.hi
	}
	if cursor != r.fullD {
		return nil, fmt.Errorf("serve: shard slots cover [0,%d) of [0,%d)", cursor, r.fullD)
	}

	v, err := r.commonVersion()
	if err != nil {
		return nil, err
	}
	r.version.Store(v)

	if r.opts.PollInterval > 0 {
		go r.pollLoop()
	} else {
		close(r.pollDone)
	}
	return r, nil
}

// Close stops the poller. In-flight requests finish on their own contexts.
func (r *Router) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.pollDone
}

// Shards reports the slot ranges in ascending column order.
func (r *Router) Shards() [][2]int {
	out := make([][2]int, len(r.slots))
	for i, sl := range r.slots {
		out[i] = [2]int{sl.lo, sl.hi}
	}
	return out
}

// Version is the model version the router currently pins into requests.
func (r *Router) Version() uint64 { return r.version.Load() }

// Classes, SampleLen, FullDim, MaxBatch report the fleet's shape facts.
func (r *Router) Classes() int   { return r.k }
func (r *Router) SampleLen() int { return r.sampleLen }
func (r *Router) FullDim() int   { return r.fullD }
func (r *Router) MaxBatch() int  { return r.maxBatch }

// Predict classifies n samples held flat in data, fanning out to every
// shard and reducing exactly. Convenience wrapper over PredictInto.
func (r *Router) Predict(ctx context.Context, data []float32, n int) ([]int, error) {
	preds := make([]int, n)
	if err := r.PredictInto(ctx, data, n, preds); err != nil {
		return nil, err
	}
	return preds, nil
}

// PredictInto classifies n samples into preds (length ≥ n) using pooled
// fan-out buffers. The answer is bit-identical to an unsharded engine's
// PredictInto, or an explicit error when any shard slice is unavailable —
// never a silently degraded score.
func (r *Router) PredictInto(ctx context.Context, data []float32, n int, preds []int) error {
	if n < 1 || n > r.maxBatch {
		return fmt.Errorf("serve: router request of %d samples (want 1..%d)", n, r.maxBatch)
	}
	if len(data) != n*r.sampleLen {
		return fmt.Errorf("serve: router request data length %d, want %d samples × %d floats", len(data), n, r.sampleLen)
	}
	if len(preds) < n {
		return fmt.Errorf("serve: router preds length %d, want %d", len(preds), n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	r.met.requests.Add(1)
	r.met.samples.Add(int64(n))

	sc := r.scratch()
	defer r.pool.Put(sc)
	version := r.version.Load()
	sc.req = appendPartialRequest(sc.req[:0], data[:n*r.sampleLen], n, version)

	var wg sync.WaitGroup
	for si := range r.slots {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sc.errs[si] = r.callSlot(ctx, r.slots[si], sc.req, sc.parts[si], version, n)
		}(si)
	}
	wg.Wait()
	for si, err := range sc.errs {
		if err != nil {
			r.met.errors.Add(1)
			return fmt.Errorf("%w: shard [%d,%d): %v", ErrShardUnavailable, r.slots[si].lo, r.slots[si].hi, err)
		}
	}
	sc.merged = append(sc.merged[:0], sc.parts...)
	if err := engine.MergeScores(sc.preds[:n], sc.scores[:n*r.k], sc.merged); err != nil {
		r.met.errors.Add(1)
		return fmt.Errorf("serve: reduce failed: %w", err)
	}
	copy(preds, sc.preds[:n])
	return nil
}

// scratch takes a request working set from the pool, sized for this router.
func (r *Router) scratch() *routerScratch {
	sc, _ := r.pool.Get().(*routerScratch)
	if sc == nil {
		sc = &routerScratch{}
	}
	for len(sc.parts) < len(r.slots) {
		sc.parts = append(sc.parts, &engine.PartialScores{})
	}
	sc.parts = sc.parts[:len(r.slots)]
	if cap(sc.errs) < len(r.slots) {
		sc.errs = make([]error, len(r.slots))
	}
	sc.errs = sc.errs[:len(r.slots)]
	for i := range sc.errs {
		sc.errs[i] = nil
	}
	need := r.maxBatch * r.k
	if cap(sc.scores) < need {
		sc.scores = make([]float64, need)
	}
	sc.scores = sc.scores[:need]
	if cap(sc.preds) < r.maxBatch {
		sc.preds = make([]int, r.maxBatch)
	}
	sc.preds = sc.preds[:r.maxBatch]
	return sc
}

// callSlot obtains one slot's partial scores: round-robin over non-ejected
// replicas, failing over on error, hedging a slow attempt onto the next
// replica when configured. The decoded partial is validated against the
// slot's range and the pinned version before it is accepted.
func (r *Router) callSlot(ctx context.Context, sl *slot, req []byte, ps *engine.PartialScores, version uint64, n int) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Preference order: start at the round-robin cursor, non-ejected first,
	// then ejected ones as a last resort (ejection must never black-hole).
	nr := len(sl.replicas)
	start := int(sl.rr.Add(1)-1) % nr
	order := make([]*replica, 0, nr)
	now := time.Now().UnixNano()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < nr; i++ {
			rep := sl.replicas[(start+i)%nr]
			if (rep.ejectedUntil.Load() > now) == (pass == 1) {
				order = append(order, rep)
			}
		}
	}

	resc := make(chan *attempt, nr)
	next := 0
	inflight := 0
	launch := func() {
		rep := order[next]
		next++
		inflight++
		go func() {
			a := &attempt{rep: rep, frame: r.getBuf()}
			a.err = r.fetchPartial(cctx, rep, req, a.frame)
			resc <- a
		}()
	}
	launch()

	var hedge <-chan time.Time
	if r.opts.Hedge > 0 && next < len(order) {
		t := time.NewTimer(r.opts.Hedge)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	for {
		select {
		case a := <-resc:
			inflight--
			if a.err == nil {
				served, err := decodePartialResponse(ps, *a.frame, n, r.k, r.fullD)
				r.putBuf(a.frame)
				if err == nil && (ps.Lo != sl.lo || ps.Hi != sl.hi) {
					err = fmt.Errorf("serve: replica %s answered for shard [%d,%d), slot is [%d,%d)", a.rep.addr, ps.Lo, ps.Hi, sl.lo, sl.hi)
				}
				if err == nil && version != 0 && served != version {
					err = fmt.Errorf("serve: replica %s served version %016x, pinned %016x", a.rep.addr, served, version)
				}
				if err == nil {
					a.rep.fails.Store(0)
					a.rep.ejectedUntil.Store(0)
					// Abandon any hedged duplicate still in flight.
					if inflight > 0 {
						go r.drain(resc, inflight)
					}
					return nil
				}
				a.err = err
			} else {
				r.putBuf(a.frame)
			}
			r.noteFailure(a.rep)
			if firstErr == nil {
				firstErr = a.err
			}
			if next < len(order) {
				r.met.retries.Add(1)
				launch()
			} else if inflight == 0 {
				return firstErr
			}
		case <-hedge:
			hedge = nil
			if next < len(order) {
				r.met.hedges.Add(1)
				launch()
			}
		case <-ctx.Done():
			if inflight > 0 {
				go r.drain(resc, inflight)
			}
			if firstErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", ctx.Err(), firstErr)
			}
			return ctx.Err()
		}
	}
}

// attempt is one replica fetch's outcome, owned by callSlot's select loop.
type attempt struct {
	rep   *replica
	frame *[]byte
	err   error
}

// drain reclaims the frames of abandoned attempts without blocking the
// request that already has its answer.
func (r *Router) drain(resc chan *attempt, inflight int) {
	for i := 0; i < inflight; i++ {
		a := <-resc
		r.putBuf(a.frame)
	}
}

// noteFailure records a data-plane failure and ejects the replica once the
// consecutive-failure threshold is crossed.
func (r *Router) noteFailure(rep *replica) {
	if int(rep.fails.Add(1)) >= r.opts.EjectAfter {
		if rep.ejectedUntil.Swap(time.Now().Add(r.opts.EjectCooloff).UnixNano()) == 0 {
			r.met.ejects.Add(1)
		}
	}
}

func (r *Router) getBuf() *[]byte {
	b, _ := r.bufPool.Get().(*[]byte)
	if b == nil {
		b = new([]byte)
	}
	return b
}

func (r *Router) putBuf(b *[]byte) { r.bufPool.Put(b) }

// fetchPartial POSTs the shared request frame to one replica and reads the
// raw response frame into *buf (reusing its capacity), with the response
// size capped before reading.
func (r *Router) fetchPartial(ctx context.Context, rep *replica, frame []byte, buf *[]byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.addr+"/partial", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Cap the response read: header + the largest payload this fleet can
	// produce (float kernel, all blocks). A corrupt server cannot make the
	// router balloon.
	maxPayload := int64(partialRespHeaderLen) + int64(r.maxBatch)*int64(r.k)*int64((r.fullD+255)/256+1)*4
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("serve: replica %s: %s: %s", rep.addr, resp.Status, bytes.TrimSpace(msg))
	}
	*buf = (*buf)[:0]
	lr := io.LimitReader(resp.Body, maxPayload+1)
	for {
		if len(*buf) == cap(*buf) {
			*buf = append(*buf, 0)[:len(*buf)]
		}
		m, err := lr.Read((*buf)[len(*buf):cap(*buf)])
		*buf = (*buf)[:len(*buf)+m]
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	if int64(len(*buf)) > maxPayload {
		return fmt.Errorf("serve: replica %s response exceeds %d bytes", rep.addr, maxPayload)
	}
	return nil
}

// pollReplica GETs one replica's /healthz and updates its health/version
// state.
func (r *Router) pollReplica(rep *replica) (*healthResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.addr+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		rep.healthy.Store(false)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rep.healthy.Store(false)
		return nil, fmt.Errorf("serve: replica %s: %s", rep.addr, resp.Status)
	}
	var h healthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		rep.healthy.Store(false)
		return nil, fmt.Errorf("serve: replica %s health: %w", rep.addr, err)
	}
	cur, err := strconv.ParseUint(h.ModelVersion, 16, 64)
	if err != nil {
		rep.healthy.Store(false)
		return nil, fmt.Errorf("serve: replica %s model_version %q: %w", rep.addr, h.ModelVersion, err)
	}
	var prev uint64
	if h.PrevVersion != "" {
		prev, _ = strconv.ParseUint(h.PrevVersion, 16, 64)
	}
	rep.cur.Store(cur)
	rep.prev.Store(prev)
	rep.healthy.Store(true)
	return &h, nil
}

// commonVersion picks the model version every slot can currently serve,
// preferring the one most replicas report as current. Errors when no single
// version is servable fleet-wide (a half-rolled fleet with no overlap).
func (r *Router) commonVersion() (uint64, error) {
	counts := map[uint64]int{}
	for _, sl := range r.slots {
		for _, rep := range sl.replicas {
			if rep.healthy.Load() {
				counts[rep.cur.Load()]++
			}
		}
	}
	var best uint64
	bestN := -1
	for v, c := range counts {
		if v == 0 {
			continue
		}
		if r.servableEverywhere(v) && (c > bestN || (c == bestN && v > best)) {
			best, bestN = v, c
		}
	}
	if bestN < 0 {
		return 0, fmt.Errorf("serve: no model version servable by every shard slot")
	}
	return best, nil
}

// servableEverywhere reports whether every slot has a healthy replica that
// can serve version v (as current or retained previous).
func (r *Router) servableEverywhere(v uint64) bool {
	for _, sl := range r.slots {
		ok := false
		for _, rep := range sl.replicas {
			if rep.healthy.Load() && (rep.cur.Load() == v || rep.prev.Load() == v) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// pollLoop drives health refresh and version-gated rollout: the target
// version flips to a new one only when EVERY slot has a healthy replica
// advertising it as current — the all-clear that a rolling restart has
// completed — so one reduce never mixes model versions.
func (r *Router) pollLoop() {
	defer close(r.pollDone)
	t := time.NewTicker(r.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.pollOnce()
		}
	}
}

// pollOnce refreshes every replica and advances the target version when the
// whole fleet agrees on a new current one.
func (r *Router) pollOnce() {
	for _, sl := range r.slots {
		for _, rep := range sl.replicas {
			r.pollReplica(rep)
		}
	}
	cur := r.version.Load()
	// Candidate: a version that every slot advertises as *current* on some
	// healthy replica. (Serving from prev is the transition crutch, not the
	// steady state.)
	candidate := uint64(0)
	for _, sl := range r.slots {
		slotCur := uint64(0)
		for _, rep := range sl.replicas {
			if rep.healthy.Load() {
				slotCur = rep.cur.Load()
				break
			}
		}
		if candidate == 0 {
			candidate = slotCur
		} else if slotCur != candidate {
			return // fleet not yet uniform; keep the pinned version
		}
	}
	if candidate == 0 || candidate == cur {
		return
	}
	// Every slot must advertise the candidate as current before the flip.
	for _, sl := range r.slots {
		ok := false
		for _, rep := range sl.replicas {
			if rep.healthy.Load() && rep.cur.Load() == candidate {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	if r.version.CompareAndSwap(cur, candidate) {
		r.met.flips.Add(1)
	}
}
