package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"
)

// RouterServer exposes a Router over the same client-facing HTTP surface a
// single nshd-serve process offers, so callers cannot tell a sharded
// cluster from one box:
//
//	POST /predict  — JSON {"inputs": [...]} or binary frame, exactly as the
//	                 single-process /predict (see Server).
//	GET  /healthz  — JSON: routable target version plus per-slot replica
//	                 health; 200 only while every shard slot is servable.
//	GET  /metrics  — JSON router counters and slot states.
type RouterServer struct {
	r *Router
}

// NewRouterServer wraps a router in its HTTP front end.
func NewRouterServer(r *Router) *RouterServer { return &RouterServer{r: r} }

// Handler returns the route mux.
func (s *RouterServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *RouterServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	maxBody := int64(s.r.maxBatch)*int64(s.r.sampleLen)*24 + 4096
	body := http.MaxBytesReader(w, r.Body, maxBody)
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		s.predictBinary(r.Context(), w, body)
		return
	}
	var req predictRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	n := len(req.Inputs)
	if n == 0 {
		http.Error(w, "no inputs", http.StatusBadRequest)
		return
	}
	data := make([]float32, 0, n*s.r.sampleLen)
	for i, row := range req.Inputs {
		if len(row) != s.r.sampleLen {
			http.Error(w, fmt.Sprintf("input %d has %d floats, want %d", i, len(row), s.r.sampleLen),
				http.StatusBadRequest)
			return
		}
		data = append(data, row...)
	}
	preds, err := s.r.Predict(r.Context(), data, n)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(predictResponse{
		Classes: preds,
		Ms:      float64(time.Since(start).Microseconds()) / 1e3,
	})
}

func (s *RouterServer) predictBinary(ctx context.Context, w http.ResponseWriter, body io.Reader) {
	var nbuf [4]byte
	if _, err := io.ReadFull(body, nbuf[:]); err != nil {
		http.Error(w, "short frame header", http.StatusBadRequest)
		return
	}
	n, err := frameSamples(binary.LittleEndian.Uint32(nbuf[:]), s.r.maxBatch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw := make([]byte, n*s.r.sampleLen*4)
	if _, err := io.ReadFull(body, raw); err != nil {
		http.Error(w, "short frame body", http.StatusBadRequest)
		return
	}
	data := make([]float32, n*s.r.sampleLen)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	preds, err := s.r.Predict(ctx, data, n)
	if err != nil {
		s.fail(w, err)
		return
	}
	out := make([]byte, 4+4*len(preds))
	binary.LittleEndian.PutUint32(out, uint32(len(preds)))
	for i, p := range preds {
		binary.LittleEndian.PutUint32(out[4+4*i:], uint32(p))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// fail maps router errors: a shard slice being unavailable is a 503 (the
// cluster is degraded — clients should back off and retry), everything else
// a 400.
func (s *RouterServer) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, ErrShardUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// routerHealth is the /healthz body: the pinned version and each slot's
// replica states.
type routerHealth struct {
	Status  string       `json:"status"`
	Version string       `json:"model_version"`
	Slots   []slotHealth `json:"slots"`
}

type slotHealth struct {
	Lo       int             `json:"shard_lo"`
	Hi       int             `json:"shard_hi"`
	Replicas []replicaHealth `json:"replicas"`
}

type replicaHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Ejected bool   `json:"ejected"`
	Version string `json:"model_version"`
}

func (s *RouterServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := routerHealth{
		Status:  "ok",
		Version: fmt.Sprintf("%016x", s.r.Version()),
	}
	now := time.Now().UnixNano()
	degraded := false
	for _, sl := range s.r.slots {
		sh := slotHealth{Lo: sl.lo, Hi: sl.hi}
		slotOK := false
		for _, rep := range sl.replicas {
			rh := replicaHealth{
				Addr:    rep.addr,
				Healthy: rep.healthy.Load(),
				Ejected: rep.ejectedUntil.Load() > now,
				Version: fmt.Sprintf("%016x", rep.cur.Load()),
			}
			if rh.Healthy {
				slotOK = true
			}
			sh.Replicas = append(sh.Replicas, rh)
		}
		if !slotOK {
			degraded = true
		}
		h.Slots = append(h.Slots, sh)
	}
	w.Header().Set("Content-Type", "application/json")
	if degraded {
		h.Status = "degraded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// routerStats is the /metrics body.
type routerStats struct {
	Requests int64  `json:"requests"`
	Samples  int64  `json:"samples"`
	Errors   int64  `json:"errors"`
	Retries  int64  `json:"retries"`
	Hedges   int64  `json:"hedges"`
	Ejects   int64  `json:"ejects"`
	Flips    int64  `json:"version_flips"`
	Version  string `json:"model_version"`
	Shards   int    `json:"shards"`
	FullD    int    `json:"full_d"`
	Classes  int    `json:"classes"`
	MaxBatch int    `json:"max_batch"`
}

// Stats snapshots the router's counters.
func (r *Router) Stats() map[string]int64 {
	return map[string]int64{
		"requests": r.met.requests.Load(),
		"samples":  r.met.samples.Load(),
		"errors":   r.met.errors.Load(),
		"retries":  r.met.retries.Load(),
		"hedges":   r.met.hedges.Load(),
		"ejects":   r.met.ejects.Load(),
		"flips":    r.met.flips.Load(),
	}
}

func (s *RouterServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := routerStats{
		Requests: s.r.met.requests.Load(),
		Samples:  s.r.met.samples.Load(),
		Errors:   s.r.met.errors.Load(),
		Retries:  s.r.met.retries.Load(),
		Hedges:   s.r.met.hedges.Load(),
		Ejects:   s.r.met.ejects.Load(),
		Flips:    s.r.met.flips.Load(),
		Version:  fmt.Sprintf("%016x", s.r.Version()),
		Shards:   len(s.r.slots),
		FullD:    s.r.fullD,
		Classes:  s.r.k,
		MaxBatch: s.r.maxBatch,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
