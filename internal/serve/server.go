package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// Server exposes a Batcher over HTTP:
//
//	POST /predict  — JSON {"inputs": [[...C·H·W floats...], ...]}
//	                 → {"classes": [...], "ms": ...}; or, with Content-Type
//	                 application/octet-stream, a length-prefixed binary
//	                 frame: uint32 LE sample count, then count·C·H·W
//	                 float32 LE — answered as uint32 LE count then count
//	                 uint32 LE class indices.
//	GET  /healthz  — 200 "ok" while the batcher accepts work.
//	GET  /metrics  — JSON Snapshot plus engine facts (shape, D, classes,
//	                 chunk size, packed model bytes).
//
// Error mapping: malformed input 400, admission-queue overload 429 (shed,
// don't queue), request timeout 504, draining/closed 503.
type Server struct {
	b *Batcher
	// Timeout bounds one request's total time in the front end (queue wait +
	// compute). Zero means no server-imposed timeout.
	timeout time.Duration
	// maxBody bounds a request body; sized from MaxBatch when zero.
	maxBody int64
	// scratch pools per-request /partial buffers (frame bytes, decoded
	// floats, partial scores) so the sharded data plane allocates nothing
	// per request in steady state.
	scratch sync.Pool
	// stage-timing cache for /metrics: one measured breakdown per compiled
	// engine, so hot-swaps re-measure and steady-state polls stay free.
	stMu    sync.Mutex
	stEng   *engine.Engine
	stTimes []engine.StageTime
}

// partialScratch is one pooled /partial request's working set.
type partialScratch struct {
	raw  []byte
	data []float32
	out  []byte
	ps   engine.PartialScores
}

// NewServer wraps a batcher in the HTTP front end. timeout ≤ 0 disables the
// per-request deadline.
func NewServer(b *Batcher, timeout time.Duration) *Server {
	return &Server{
		b:       b,
		timeout: timeout,
		// JSON floats are ≲ 16 bytes each; allow headroom over the largest
		// admissible batch.
		maxBody: int64(b.opts.MaxBatch)*int64(b.sampleLen)*24 + 4096,
	}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/partial", s.handlePartial)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// predictRequest is the JSON request body: one row of C·H·W floats per
// sample.
type predictRequest struct {
	Inputs [][]float32 `json:"inputs"`
}

// predictResponse reports one class index per input row and the server-side
// latency of the whole request.
type predictResponse struct {
	Classes []int   `json:"classes"`
	Ms      float64 `json:"ms"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	start := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		s.predictBinary(ctx, w, body)
		return
	}

	var req predictRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	n := len(req.Inputs)
	if n == 0 {
		http.Error(w, "no inputs", http.StatusBadRequest)
		return
	}
	data := make([]float32, 0, n*s.b.sampleLen)
	for i, row := range req.Inputs {
		if len(row) != s.b.sampleLen {
			http.Error(w, fmt.Sprintf("input %d has %d floats, want %d", i, len(row), s.b.sampleLen),
				http.StatusBadRequest)
			return
		}
		data = append(data, row...)
	}
	preds, err := s.b.PredictBatch(ctx, data, n)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(predictResponse{
		Classes: preds,
		Ms:      float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// predictBinary handles the length-prefixed binary frame: 4-byte LE sample
// count, then count·sampleLen float32 LE values. The response mirrors it: a
// 4-byte LE count followed by count uint32 LE class indices.
func (s *Server) predictBinary(ctx context.Context, w http.ResponseWriter, body io.Reader) {
	var nbuf [4]byte
	if _, err := io.ReadFull(body, nbuf[:]); err != nil {
		http.Error(w, "short frame header", http.StatusBadRequest)
		return
	}
	n, err := frameSamples(binary.LittleEndian.Uint32(nbuf[:]), s.b.opts.MaxBatch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw := make([]byte, n*s.b.sampleLen*4)
	if _, err := io.ReadFull(body, raw); err != nil {
		http.Error(w, "short frame body", http.StatusBadRequest)
		return
	}
	data := make([]float32, n*s.b.sampleLen)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	preds, err := s.b.PredictBatch(ctx, data, n)
	if err != nil {
		s.fail(w, err)
		return
	}
	out := make([]byte, 4+4*len(preds))
	binary.LittleEndian.PutUint32(out, uint32(len(preds)))
	for i, p := range preds {
		binary.LittleEndian.PutUint32(out[4+4*i:], uint32(p))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// handlePartial is the sharded data plane: a length-prefixed binary frame of
// samples in, this shard's raw partial scores out (see wire.go for the frame
// layout). The length prefix is bounds-checked before any payload-sized
// allocation, and all working buffers are pooled — steady state allocates
// nothing per request.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if r.Header.Get("Content-Type") != "application/octet-stream" {
		http.Error(w, "application/octet-stream only", http.StatusUnsupportedMediaType)
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	var hdr [partialReqHeaderLen]byte
	if _, err := io.ReadFull(body, hdr[:]); err != nil {
		http.Error(w, "short frame header", http.StatusBadRequest)
		return
	}
	n, err := frameSamples(binary.LittleEndian.Uint32(hdr[:]), s.b.opts.MaxBatch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	version := binary.LittleEndian.Uint64(hdr[4:])

	sc, _ := s.scratch.Get().(*partialScratch)
	if sc == nil {
		sc = &partialScratch{}
	}
	defer s.scratch.Put(sc)
	need := n * s.b.sampleLen * 4
	if cap(sc.raw) < need {
		sc.raw = make([]byte, need)
	}
	raw := sc.raw[:need]
	if _, err := io.ReadFull(body, raw); err != nil {
		http.Error(w, "short frame body", http.StatusBadRequest)
		return
	}
	if cap(sc.data) < n*s.b.sampleLen {
		sc.data = make([]float32, n*s.b.sampleLen)
	}
	data := sc.data[:n*s.b.sampleLen]
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}

	if err := s.b.PredictPartial(ctx, data, n, version, &sc.ps); err != nil {
		if errors.Is(err, ErrVersionGone) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		s.fail(w, err)
		return
	}
	if sc.ps.Scales != nil {
		// A compressed engine's sub-byte partials carry per-class scales the
		// wire frame has no field for; such engines are full-range anyway —
		// serve them through /predict.
		http.Error(w, "serve: sub-byte partial scores are not wire-servable; use /predict", http.StatusNotImplemented)
		return
	}
	served := version
	if served == 0 {
		served, _ = s.b.Versions()
	}
	sc.out = appendPartialResponse(sc.out[:0], &sc.ps, served)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(sc.out)
}

// fail maps batcher errors to HTTP statuses.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), 499) // client closed request
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// healthResponse is what a router's handshake and rollout poller consume:
// liveness plus the facts needed to validate a shard slot — its D-slice, the
// model version it is serving, and the pre-swap version it can still serve.
// Versions are hex strings (uint64 does not survive JSON number precision).
type healthResponse struct {
	Status       string `json:"status"`
	ModelVersion string `json:"model_version"`
	PrevVersion  string `json:"prev_version,omitempty"`
	ShardLo      int    `json:"shard_lo"`
	ShardHi      int    `json:"shard_hi"`
	FullD        int    `json:"full_d"`
	Classes      int    `json:"classes"`
	SampleLen    int    `json:"sample_floats"`
	MaxBatch     int    `json:"max_batch"`
	Packed       bool   `json:"packed"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.b.mu.RLock()
	closed := s.b.closed
	s.b.mu.RUnlock()
	if closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	e := s.b.Engine()
	cur, prev := s.b.Versions()
	lo, hi := e.Shard()
	h := healthResponse{
		Status:       "ok",
		ModelVersion: fmt.Sprintf("%016x", cur),
		ShardLo:      lo,
		ShardHi:      hi,
		FullD:        e.FullDim(),
		Classes:      e.Classes(),
		SampleLen:    e.SampleLen(),
		MaxBatch:     s.b.opts.MaxBatch,
		Packed:       e.PackedKernel(),
	}
	if prev != 0 {
		h.PrevVersion = fmt.Sprintf("%016x", prev)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// metricsResponse joins the batcher snapshot with the engine facts an
// operator needs to size clients and the batcher itself.
type metricsResponse struct {
	Snapshot
	Engine engineFacts `json:"engine"`
}

type engineFacts struct {
	InShape      [3]int   `json:"in_shape"`
	SampleLen    int      `json:"sample_floats"`
	D            int      `json:"d"`
	ShardLo      int      `json:"shard_lo"`
	ShardHi      int      `json:"shard_hi"`
	FullD        int      `json:"full_d"`
	ModelVersion string   `json:"model_version"`
	Classes      int      `json:"classes"`
	ChunkSize    int      `json:"chunk_size"`
	ArenaBytes   int64    `json:"arena_bytes"`
	ModelBytes   int64    `json:"model_bytes"`
	Stages       []string `json:"stages"`
	// StageTimes is the measured batch-1 wall-time breakdown per pipeline
	// stage, with per-layer / per-fused-block sub-steps where the stage can
	// attribute them (see engine.Engine.TimeStages). Measured once per
	// compiled engine on a synthetic sample and cached.
	StageTimes []engine.StageTime `json:"stage_times,omitempty"`
	MaxBatch   int                `json:"max_batch"`
	MaxDelayUs int64              `json:"max_delay_us"`
	QueueCap   int                `json:"queue_cap"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := s.b.Engine()
	resp := metricsResponse{
		Snapshot: s.b.Stats(),
		Engine: engineFacts{
			InShape:      e.InShape(),
			SampleLen:    e.SampleLen(),
			D:            e.Dim(),
			ShardLo:      func() int { lo, _ := e.Shard(); return lo }(),
			ShardHi:      func() int { _, hi := e.Shard(); return hi }(),
			FullD:        e.FullDim(),
			ModelVersion: fmt.Sprintf("%016x", e.ModelVersion()),
			Classes:      e.Classes(),
			ChunkSize:    e.ChunkSize(),
			ArenaBytes:   e.ArenaBytes(),
			ModelBytes:   e.ModelBytes(),
			Stages:       e.Stages(),
			StageTimes:   s.stageTimes(e),
			MaxBatch:     s.b.opts.MaxBatch,
			MaxDelayUs:   s.b.opts.MaxDelay.Microseconds(),
			QueueCap:     s.b.opts.QueueCap,
		},
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// stageTimes returns the cached per-stage timing breakdown for e, measuring
// it on first request (and again after an engine hot-swap) against one
// synthetic zero sample — batch 1 is the latency-critical serving shape, and
// compute cost does not depend on pixel values.
func (s *Server) stageTimes(e *engine.Engine) []engine.StageTime {
	s.stMu.Lock()
	defer s.stMu.Unlock()
	if s.stEng == e {
		return s.stTimes
	}
	in := e.InShape()
	ts, err := e.TimeStages(tensor.New(1, in[0], in[1], in[2]), 3)
	if err != nil {
		return nil
	}
	s.stEng, s.stTimes = e, ts
	return ts
}
