package hdlearn

import (
	"fmt"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// DistillConfig configures Algorithm 1: MASS retraining whose update vector
// blends the ground-truth one-hot target with the teacher CNN's softened
// predictions.
type DistillConfig struct {
	Epochs int
	// LR is the learning rate λ.
	LR float64
	// Alpha weighs the distilled update against the one-hot update
	// (0 = pure MASS, 1 = pure distillation).
	Alpha float64
	// Temp is the softening temperature t applied to both the student's
	// similarity scores and the teacher's logits.
	Temp float64
	// Shuffle randomizes sample order each epoch when an RNG is supplied.
	Shuffle bool
	// Batch is the minibatch size of TrainDistillBatch (0 → 32). TrainDistill
	// ignores it; TrainDistillBatch with Batch=1 is bit-identical to
	// TrainDistill.
	Batch int
}

// Validate rejects hyperparameters Algorithm 1 cannot run with.
func (c DistillConfig) Validate() error {
	if c.Epochs < 1 {
		return fmt.Errorf("hdlearn: distill epochs %d < 1", c.Epochs)
	}
	if c.Temp <= 0 {
		return fmt.Errorf("hdlearn: distill temperature %v must be positive", c.Temp)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("hdlearn: distill alpha %v outside [0,1]", c.Alpha)
	}
	return nil
}

// TrainDistill implements Algorithm 1 (NSHD Knowledge Distillation):
//
//	for each training hypervector H:
//	  similarity_values = δ(M, H)
//	  soft_pred         = similarity_values / t
//	  soft_labels       = softmax(teacher_pred) / t
//	  distilled_updates = soft_labels − soft_pred
//	  U = (1−α)·(one_hot − similarity_values) + α·distilled_updates
//	  M = M + λ·Uᵀ·H
//
// teacherLogits is the [N, K] output of the full, uncut CNN on the same
// samples. The returned history also carries the mean update mass so sweeps
// can observe convergence.
func (m *Model) TrainDistill(hvs *tensor.Tensor, labels []int, teacherLogits *tensor.Tensor, cfg DistillConfig, rng *tensor.RNG) ([]EpochStats, error) {
	checkHVs(m, hvs, labels)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if teacherLogits.Rank() != 2 || teacherLogits.Shape[0] != hvs.Shape[0] || teacherLogits.Shape[1] != m.K {
		return nil, fmt.Errorf("hdlearn: teacher logits shape %v, want [%d %d]", teacherLogits.Shape, hvs.Shape[0], m.K)
	}
	n := hvs.Shape[0]
	m.Invalidate()

	// Precompute the teacher's soft labels once; they do not change across
	// epochs. This is the "optimized computation cost" integration the paper
	// highlights: the CNN runs forward-only, a single time.
	softLabels := tensor.New(n, m.K)
	for i := 0; i < n; i++ {
		tensor.Softmax(softLabels.Row(i), teacherLogits.Row(i))
		row := softLabels.Row(i)
		for k := range row {
			row[k] /= float32(cfg.Temp)
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := float32(cfg.LR)
	alpha := float32(cfg.Alpha)
	invT := float32(1 / cfg.Temp)
	var history []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		correct := 0
		var updateNorm float64
		for _, idx := range order {
			h := hdc.Hypervector(hvs.Row(idx))
			y := labels[idx]
			sims := m.Similarity(h)
			if argmax32(sims) == y {
				correct++
			}
			soft := softLabels.Row(idx)
			updated := false
			for k := 0; k < m.K; k++ {
				// One-hot update component.
				hard := -sims[k]
				if k == y {
					hard += 1
				}
				// Distilled update component.
				distilled := soft[k] - sims[k]*invT
				u := (1-alpha)*hard + alpha*distilled
				updateNorm += abs64(u)
				if u != 0 {
					hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(k)), lr*u, h)
					updated = true
				}
			}
			if updated {
				// The next sample's Similarity must see fresh class norms.
				m.Invalidate()
			}
		}
		history = append(history, EpochStats{
			Epoch:          epoch,
			TrainAccuracy:  float64(correct) / float64(n),
			MeanUpdateNorm: updateNorm / float64(n),
		})
	}
	return history, nil
}

// TrainDistillBatch is the GEMM-ified TrainDistill (Algorithm 1): similarity
// scores for a minibatch come from one batched GEMM and the blended update is
// applied as one rank-B GEMM E = (λU)ᵀ·H, M += E. With Batch=1 it is
// bit-identical to TrainDistill — the per-element update formulas below are
// copied from it verbatim (note `soft[k] − sims[k]·invT`, NOT
// DistillUpdateBatch's `soft[k]·invT − …`: the soft labels here are already
// temperature-divided, and the two roundings differ) and the λ-scaling /
// rank-1 arguments of TrainMASSBatch apply unchanged.
func (m *Model) TrainDistillBatch(hvs *tensor.Tensor, labels []int, teacherLogits *tensor.Tensor, cfg DistillConfig, rng *tensor.RNG) ([]EpochStats, error) {
	checkHVs(m, hvs, labels)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if teacherLogits.Rank() != 2 || teacherLogits.Shape[0] != hvs.Shape[0] || teacherLogits.Shape[1] != m.K {
		return nil, fmt.Errorf("hdlearn: teacher logits shape %v, want [%d %d]", teacherLogits.Shape, hvs.Shape[0], m.K)
	}
	n := hvs.Shape[0]
	if n == 0 {
		return nil, nil
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 32
	}
	if batch > n {
		batch = n
	}
	m.Invalidate()

	// Teacher soft labels, precomputed once exactly as in TrainDistill.
	softLabels := tensor.New(n, m.K)
	for i := 0; i < n; i++ {
		tensor.Softmax(softLabels.Row(i), teacherLogits.Row(i))
		row := softLabels.Row(i)
		for k := range row {
			row[k] /= float32(cfg.Temp)
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := float32(cfg.LR)
	alpha := float32(cfg.Alpha)
	invT := float32(1 / cfg.Temp)

	hb := tensor.New(batch, m.D)
	sims := tensor.New(batch, m.K)
	u := tensor.New(batch, m.K)
	e := tensor.New(m.K, m.D)
	scratch := make([]float32, batch*m.K)

	var history []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		correct := 0
		var updateNorm float64
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			bs := end - start
			hbB := tensor.FromSlice(hb.Data[:bs*m.D], bs, m.D)
			simsB := tensor.FromSlice(sims.Data[:bs*m.K], bs, m.K)
			uB := tensor.FromSlice(u.Data[:bs*m.K], bs, m.K)
			for bi := 0; bi < bs; bi++ {
				copy(hbB.Row(bi), hvs.Row(order[start+bi]))
			}
			m.SimilarityBatchInto(simsB, hbB)
			for bi := 0; bi < bs; bi++ {
				idx := order[start+bi]
				y := labels[idx]
				srow := simsB.Row(bi)
				if argmax32(srow) == y {
					correct++
				}
				soft := softLabels.Row(idx)
				urow := uB.Row(bi)
				for k := 0; k < m.K; k++ {
					hard := -srow[k]
					if k == y {
						hard += 1
					}
					distilled := soft[k] - srow[k]*invT
					uv := (1-alpha)*hard + alpha*distilled
					updateNorm += abs64(uv)
					urow[k] = lr * uv
				}
			}
			tensor.TransposeMatMulInto(e, uB, hbB, scratch)
			m.M.AXPY(1, e)
			m.Invalidate()
		}
		history = append(history, EpochStats{
			Epoch:          epoch,
			TrainAccuracy:  float64(correct) / float64(n),
			MeanUpdateNorm: updateNorm / float64(n),
		})
	}
	return history, nil
}

// DistillUpdateBatch computes the update matrix U ([N, K]) of Algorithm 1
// for a whole batch without applying it. The NSHD pipeline uses this both to
// update M (M += λ·Uᵀ·H) and to derive the manifold learner's gradient
// through Model.QueryGrad.
func (m *Model) DistillUpdateBatch(hvs *tensor.Tensor, labels []int, teacherLogits *tensor.Tensor, alpha, temp float64) *tensor.Tensor {
	checkHVs(m, hvs, labels)
	n := hvs.Shape[0]
	sims := m.SimilarityBatch(hvs) // [N, K]
	u := tensor.New(n, m.K)
	soft := make([]float32, m.K)
	a := float32(alpha)
	invT := float32(1 / temp)
	for i := 0; i < n; i++ {
		tensor.Softmax(soft, teacherLogits.Row(i))
		srow := sims.Row(i)
		urow := u.Row(i)
		y := labels[i]
		for k := 0; k < m.K; k++ {
			hard := -srow[k]
			if k == y {
				hard += 1
			}
			distilled := soft[k]*invT - srow[k]*invT
			urow[k] = (1-a)*hard + a*distilled
		}
	}
	return u
}

// ApplyUpdate performs M += λ·Uᵀ·H for a batch: the bundled class-wise error
// hypervectors E = λ·Uᵀ·H of Sec. V-C.
func (m *Model) ApplyUpdate(u, hvs *tensor.Tensor, lr float64) {
	if u.Shape[0] != hvs.Shape[0] || u.Shape[1] != m.K || hvs.Shape[1] != m.D {
		panic(fmt.Sprintf("hdlearn: ApplyUpdate shapes U=%v H=%v", u.Shape, hvs.Shape))
	}
	m.Invalidate()
	e := tensor.TransposeMatMul(u, hvs) // [K, D]
	m.M.AXPY(float32(lr), e)
}
