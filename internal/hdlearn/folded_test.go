package hdlearn

import (
	"testing"

	"nshd/internal/tensor"
)

// signedQueries samples n bipolar query rows — the only query form the
// serving tail produces (sign(·) output).
func signedQueries(seed int64, n, d int) *tensor.Tensor {
	q := tensor.New(n, d)
	tensor.NewRNG(seed).FillBipolar(q)
	return q
}

// TestFoldedScorerAgreesWithFloat pins the folded scorer's contract: for
// bipolar queries its argmax matches FloatScorer (the staged serving
// classifier) across many random models, class counts and dimensions,
// including D off the 64/256 alignments.
func TestFoldedScorerAgreesWithFloat(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		k := 2 + int(seed%7)
		d := 64 + int(seed*13)%451
		m := NewModel(k, d)
		tensor.NewRNG(100 + seed).FillNormal(m.M, 0, 1)
		m.Invalidate()

		queries := signedQueries(200+seed, 17, d)
		want := make([]int, 17)
		NewFloatScorer(m).PredictInto(queries, want)
		got := make([]int, 17)
		NewFoldedScorer(m).PredictInto(queries, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d (K=%d D=%d): query %d folded=%d float=%d", seed, k, d, i, got[i], want[i])
			}
		}
	}
}

// TestFoldedScorerBlockwiseMatchesFull: accumulating over column blocks and
// taking the argmax agrees with the one-pass PredictInto.
func TestFoldedScorerBlockwiseMatchesFull(t *testing.T) {
	for _, d := range []int{70, 256, 257, 530} {
		const k, n = 5, 9
		m := NewModel(k, d)
		tensor.NewRNG(int64(d)).FillNormal(m.M, 0, 1)
		m.Invalidate()
		s := NewFoldedScorer(m)
		queries := signedQueries(int64(2*d), n, d)

		want := make([]int, n)
		s.PredictInto(queries, want)

		acc := make([]float64, n*k)
		blk := make([]float32, n*256)
		for c0 := 0; c0 < d; c0 += 256 {
			w := 256
			if c0+w > d {
				w = d - c0
			}
			for i := 0; i < n; i++ {
				copy(blk[i*w:(i+1)*w], queries.Row(i)[c0:c0+w])
			}
			s.AccumBlock(acc, blk[:n*w], n, w, c0)
		}
		got := make([]int, n)
		s.ArgmaxInto(got, acc, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("D=%d query %d: blockwise=%d full=%d", d, i, got[i], want[i])
			}
		}
	}
}

// TestFoldedScorerZeroNormClass: a zero class row scores 0 everywhere (the
// den==0 convention) and never panics.
func TestFoldedScorerZeroNormClass(t *testing.T) {
	const k, d = 3, 70
	m := NewModel(k, d)
	tensor.NewRNG(1).FillNormal(m.M, 0, 1)
	clear(m.M.Row(1))
	m.Invalidate()
	queries := signedQueries(2, 4, d)
	want := make([]int, 4)
	NewFloatScorer(m).PredictInto(queries, want)
	got := make([]int, 4)
	NewFoldedScorer(m).PredictInto(queries, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: folded=%d float=%d with zero-norm class", i, got[i], want[i])
		}
	}
}
