package hdlearn

import (
	"math"
	"testing"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// makeBatchFixture builds a K-class problem of separable clusters plus an
// InitBundle'd model, deterministically from seed.
func makeBatchFixture(seed int64, k, d, n int) (*Model, *tensor.Tensor, []int) {
	rng := tensor.NewRNG(seed)
	protos := tensor.New(k, d)
	rng.FillNormal(protos, 0, 1)
	hvs := tensor.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % k
		row := hvs.Row(i)
		copy(row, protos.Row(labels[i]))
		for j := range row {
			row[j] += float32(rng.NormFloat64()) * 0.8
		}
	}
	m := NewModel(k, d)
	m.InitBundle(hvs, labels)
	return m, hvs, labels
}

func requireBitEqualModels(t *testing.T, a, b *Model) {
	t.Helper()
	for i := range a.M.Data {
		if math.Float32bits(a.M.Data[i]) != math.Float32bits(b.M.Data[i]) {
			t.Fatalf("M[%d] diverges: %v (%08x) vs %v (%08x)", i,
				a.M.Data[i], math.Float32bits(a.M.Data[i]),
				b.M.Data[i], math.Float32bits(b.M.Data[i]))
		}
	}
}

func requireEqualHistory(t *testing.T, a, b []EpochStats) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("history length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d stats diverge: %+v vs %+v", i+1, a[i], b[i])
		}
	}
}

// TestTrainMASSBatchB1BitExact is the proof-backed contract test: at Batch=1
// the batched trainer must reproduce the per-sample trainer bit for bit —
// identical float32 model and float64-equal epoch stats, shuffling included.
func TestTrainMASSBatchB1BitExact(t *testing.T) {
	ref, hvs, labels := makeBatchFixture(3, 5, 256, 60)
	batched := ref.Clone()
	cfg := MASSConfig{Epochs: 3, LR: 0.07, Shuffle: true}
	refHist := ref.TrainMASS(hvs, labels, cfg, tensor.NewRNG(99))
	cfg.Batch = 1
	batHist := batched.TrainMASSBatch(hvs, labels, cfg, tensor.NewRNG(99))
	requireEqualHistory(t, refHist, batHist)
	requireBitEqualModels(t, ref, batched)
}

// TestTrainDistillBatchB1BitExact: same contract for Algorithm 1.
func TestTrainDistillBatchB1BitExact(t *testing.T) {
	ref, hvs, labels := makeBatchFixture(5, 4, 192, 48)
	teacher := tensor.New(48, 4)
	tensor.NewRNG(7).FillNormal(teacher, 0, 2)
	batched := ref.Clone()
	cfg := DistillConfig{Epochs: 3, LR: 0.05, Alpha: 0.4, Temp: 2, Shuffle: true}
	refHist, err := ref.TrainDistill(hvs, labels, teacher, cfg, tensor.NewRNG(55))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Batch = 1
	batHist, err := batched.TrainDistillBatch(hvs, labels, teacher, cfg, tensor.NewRNG(55))
	if err != nil {
		t.Fatal(err)
	}
	requireEqualHistory(t, refHist, batHist)
	requireBitEqualModels(t, ref, batched)
}

// TestTrainMASSBatchLearns checks the batched path at a realistic batch size
// actually trains: accuracy on the separable fixture should end high, and the
// update mass should shrink.
func TestTrainMASSBatchLearns(t *testing.T) {
	m, hvs, labels := makeBatchFixture(11, 6, 512, 240)
	cfg := MASSConfig{Epochs: 12, LR: 0.05, Shuffle: true, Batch: 32}
	hist := m.TrainMASSBatch(hvs, labels, cfg, tensor.NewRNG(13))
	if len(hist) != cfg.Epochs {
		t.Fatalf("expected %d epochs, got %d", cfg.Epochs, len(hist))
	}
	if acc := m.Accuracy(hvs, labels); acc < 0.95 {
		t.Fatalf("batched MASS train accuracy %.3f < 0.95", acc)
	}
	if hist[len(hist)-1].MeanUpdateNorm >= hist[0].MeanUpdateNorm {
		t.Fatalf("update mass did not shrink: %v → %v",
			hist[0].MeanUpdateNorm, hist[len(hist)-1].MeanUpdateNorm)
	}
}

// TestTrainDistillBatchLearns: the batched KD path with a well-informed
// teacher should also converge on the fixture.
func TestTrainDistillBatchLearns(t *testing.T) {
	m, hvs, labels := makeBatchFixture(17, 4, 384, 160)
	// Teacher logits: confident, correct predictions.
	teacher := tensor.New(160, 4)
	for i, y := range labels {
		teacher.Row(i)[y] = 6
	}
	cfg := DistillConfig{Epochs: 10, LR: 0.05, Alpha: 0.5, Temp: 4, Shuffle: true, Batch: 16}
	if _, err := m.TrainDistillBatch(hvs, labels, teacher, cfg, tensor.NewRNG(19)); err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(hvs, labels); acc < 0.95 {
		t.Fatalf("batched distill train accuracy %.3f < 0.95", acc)
	}
}

// TestClassNormCacheInvalidation mutates M directly (with Invalidate, as the
// contract requires) and checks Similarity picks up the new norms instead of
// serving stale cached values.
func TestClassNormCacheInvalidation(t *testing.T) {
	m, hvs, _ := makeBatchFixture(23, 3, 64, 6)
	h := hdc.Hypervector(hvs.Row(0))
	before := m.Similarity(h) // primes the norm cache

	// Mutate class 1 drastically and invalidate.
	row := m.M.Row(1)
	for j := range row {
		row[j] *= 10
	}
	m.Invalidate()
	after := m.Similarity(h)

	// Cosine is scale-invariant, so a correctly refreshed cache reproduces
	// the same similarity for class 1; a stale cache (old, 10× smaller norm)
	// would report a wildly larger value.
	fresh := m.Clone().Similarity(h) // Clone has no cache at all
	for k := range after {
		if math.Abs(float64(after[k]-fresh[k])) > 1e-6 {
			t.Fatalf("class %d similarity %v differs from cache-free %v", k, after[k], fresh[k])
		}
	}
	_ = before

	// And the batch path must agree with the per-sample path post-mutation.
	sims := m.SimilarityBatch(hvs)
	single := m.Similarity(hdc.Hypervector(hvs.Row(2)))
	for k := range single {
		if math.Float32bits(sims.Row(2)[k]) != math.Float32bits(single[k]) {
			t.Fatalf("SimilarityBatch[2][%d]=%v, Similarity=%v", k, sims.Row(2)[k], single[k])
		}
	}
}

// TestTrainMASSBatchEmptySet: the batched trainer returns nil on an empty
// training set instead of dividing by zero.
func TestTrainMASSBatchEmptySet(t *testing.T) {
	m := NewModel(3, 32)
	if hist := m.TrainMASSBatch(tensor.New(0, 32), nil, MASSConfig{Epochs: 2, LR: 0.1}, nil); hist != nil {
		t.Fatalf("expected nil history, got %v", hist)
	}
}
