package hdlearn

import (
	"testing"

	"nshd/internal/tensor"
)

// randModel builds a K-class model with random class hypervectors. D=70 in
// most tests below deliberately avoids divisibility by 64 to exercise the
// packed tail-word path.
func randModel(t *testing.T, seed int64, k, d int) (*Model, *tensor.RNG) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	m := NewModel(k, d)
	rng.FillNormal(m.M, 0, 1)
	m.Invalidate()
	return m, rng
}

func randHVs(rng *tensor.RNG, n, d int) *tensor.Tensor {
	hvs := tensor.New(n, d)
	rng.FillBipolar(hvs)
	return hvs
}

func TestVersionBumpsOnEveryMutator(t *testing.T) {
	m, rng := randModel(t, 1, 4, 70)
	hvs := randHVs(rng, 12, 70)
	labels := make([]int, 12)
	for i := range labels {
		labels[i] = i % 4
	}
	logits := tensor.New(12, 4)
	rng.FillNormal(logits, 0, 1)
	u := tensor.New(12, 4)
	rng.FillNormal(u, 0, 1)

	steps := []struct {
		name string
		run  func()
	}{
		{"InitBundle", func() { m.InitBundle(hvs, labels) }},
		{"TrainMASS", func() { m.TrainMASS(hvs, labels, MASSConfig{Epochs: 1, LR: 0.1}, rng) }},
		{"TrainPerceptron", func() { m.TrainPerceptron(hvs, labels, MASSConfig{Epochs: 1, LR: 0.1}, rng) }},
		{"TrainOnline", func() { m.TrainOnline(hvs, labels, 0.1, rng) }},
		{"TrainDistill", func() {
			if _, err := m.TrainDistill(hvs, labels, logits, DistillConfig{Epochs: 1, LR: 0.1, Alpha: 0.5, Temp: 2}, rng); err != nil {
				t.Fatal(err)
			}
		}},
		{"ApplyUpdate", func() { m.ApplyUpdate(u, hvs, 0.05) }},
		{"NormalizeRows", func() { m.NormalizeRows() }},
	}
	for _, s := range steps {
		before := m.Version()
		s.run()
		if m.Version() == before {
			t.Errorf("%s did not bump the model version", s.name)
		}
	}
}

func TestPackedCacheInvalidation(t *testing.T) {
	m, rng := randModel(t, 2, 5, 70)
	hvs := randHVs(rng, 30, 70)

	p1 := m.Packed()
	if m.Packed() != p1 {
		t.Fatal("Packed() must return the cached object while the model is unchanged")
	}
	wantBefore := p1.PredictBatch(hvs)

	// Mutate: the cache must refresh and predictions must match a fresh pack.
	u := tensor.New(30, 5)
	rng.FillNormal(u, 0, 1)
	m.ApplyUpdate(u, hvs, 0.5)
	p2 := m.Packed()
	if p2 == p1 {
		t.Fatal("Packed() returned a stale cache after ApplyUpdate")
	}
	fresh := PackModel(m)
	gotAfter := p2.PredictBatch(hvs)
	wantAfter := fresh.PredictBatch(hvs)
	same := true
	for i := range gotAfter {
		if gotAfter[i] != wantAfter[i] {
			t.Fatalf("cached pack prediction %d = %d, fresh pack = %d", i, gotAfter[i], wantAfter[i])
		}
		if gotAfter[i] != wantBefore[i] {
			same = false
		}
	}
	if same {
		t.Fatal("update did not change any prediction; invalidation untested")
	}
}

func TestPredictBatchIntoMatchesPredictBatch(t *testing.T) {
	for _, d := range []int{64, 70, 128, 257} {
		m, rng := randModel(t, int64(d), 6, d)
		hvs := randHVs(rng, 40, d)
		pm := m.Packed()
		want := pm.PredictBatch(hvs)
		preds := make([]int, 40)
		q := make([]uint64, pm.WordsPerRow())
		pm.PredictBatchInto(hvs, preds, q)
		for i := range want {
			if preds[i] != want[i] {
				t.Fatalf("D=%d row %d: PredictBatchInto=%d PredictBatch=%d", d, i, preds[i], want[i])
			}
		}
	}
}

func TestFloatScorerMatchesPredictBatch(t *testing.T) {
	for _, d := range []int{64, 70, 512} {
		m, rng := randModel(t, 100+int64(d), 7, d)
		// Dense (non-bipolar) queries exercise the full cosine path.
		hvs := tensor.New(50, d)
		rng.FillNormal(hvs, 0, 1)
		// Include an all-zero query: SimilarityBatch scores it 0 everywhere,
		// so argmax must fall to class 0.
		clear(hvs.Row(7))
		s := NewFloatScorer(m)
		want := m.PredictBatch(hvs)
		preds := make([]int, 50)
		s.PredictInto(hvs, preds)
		for i := range want {
			if preds[i] != want[i] {
				t.Fatalf("D=%d row %d: FloatScorer=%d PredictBatch=%d", d, i, preds[i], want[i])
			}
		}
	}
}

func TestFloatScorerIsSnapshot(t *testing.T) {
	m, rng := randModel(t, 9, 4, 70)
	hvs := randHVs(rng, 20, 70)
	s := NewFloatScorer(m)
	want := make([]int, 20)
	s.PredictInto(hvs, want)

	u := tensor.New(20, 4)
	rng.FillNormal(u, 0, 1)
	m.ApplyUpdate(u, hvs, 10) // large update to guarantee drift

	got := make([]int, 20)
	s.PredictInto(hvs, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("FloatScorer predictions changed after model update; it must snapshot weights")
		}
	}
}

func TestServingScorersZeroAlloc(t *testing.T) {
	m, rng := randModel(t, 17, 5, 70)
	hvs := randHVs(rng, 16, 70)
	s := NewFloatScorer(m)
	pm := m.Packed()
	preds := make([]int, 16)
	q := make([]uint64, pm.WordsPerRow())
	if a := testing.AllocsPerRun(50, func() { s.PredictInto(hvs, preds) }); a != 0 {
		t.Fatalf("FloatScorer.PredictInto allocated %.1f times per run", a)
	}
	if a := testing.AllocsPerRun(50, func() { pm.PredictBatchInto(hvs, preds, q) }); a != 0 {
		t.Fatalf("PredictBatchInto allocated %.1f times per run", a)
	}
}

// BenchmarkPackedPredictCached vs BenchmarkPackedPredictRepack is the
// regression pair for the Pipeline.classify fix: the old path re-packed all
// K·D weights per call, so its cost scales with model size instead of query
// count.
func BenchmarkPackedPredictCached(b *testing.B) {
	rng := tensor.NewRNG(3)
	m := NewModel(10, 4096)
	rng.FillNormal(m.M, 0, 1)
	m.Invalidate()
	hvs := tensor.New(8, 4096)
	rng.FillBipolar(hvs)
	preds := make([]int, 8)
	pm := m.Packed()
	q := make([]uint64, pm.WordsPerRow())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Packed().PredictBatchInto(hvs, preds, q)
	}
}

func BenchmarkPackedPredictRepack(b *testing.B) {
	rng := tensor.NewRNG(3)
	m := NewModel(10, 4096)
	rng.FillNormal(m.M, 0, 1)
	m.Invalidate()
	hvs := tensor.New(8, 4096)
	rng.FillBipolar(hvs)
	preds := make([]int, 8)
	q := make([]uint64, (4096+63)/64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackModel(m).PredictBatchInto(hvs, preds, q)
	}
}
