package hdlearn

import (
	"fmt"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// Version returns the model's mutation counter. Every method that writes
// class hypervectors bumps it; consumers that derive state from M (the packed
// cache below, the serving engine's compiled snapshot) compare versions to
// detect staleness instead of diffing K·D floats.
func (m *Model) Version() uint64 { return m.version }

// Invalidate bumps the mutation counter. All package mutators call it;
// callers that write m.M directly (deserialization, benchmarks) must call it
// themselves.
func (m *Model) Invalidate() { m.version++ }

// Packed returns the sign-quantized packed form of the model, cached until
// the next mutation. Before this cache, the packed predict path re-packed all
// K·D weights on every call, so packed "inference" scaled with pack cost
// instead of query cost (see BenchmarkPackedPredictCached). Not safe for
// concurrent use with mutations — like every other method on Model.
func (m *Model) Packed() *PackedModel {
	if m.packed == nil || m.packedVersion != m.version {
		m.packed = PackModel(m)
		m.packedVersion = m.version
	}
	return m.packed
}

// PredictBatchInto is the serving form of PredictBatch: strictly serial,
// writing predictions into preds (length N) using caller-owned packing
// scratch q (length WordsPerRow()). Zero heap allocations.
func (pm *PackedModel) PredictBatchInto(hvs *tensor.Tensor, preds []int, q []uint64) {
	if hvs.Rank() != 2 || hvs.Shape[1] != pm.D {
		panic(fmt.Sprintf("hdlearn: PredictBatchInto expects [N %d], got %v", pm.D, hvs.Shape))
	}
	n := hvs.Shape[0]
	if len(preds) != n {
		panic(fmt.Sprintf("hdlearn: PredictBatchInto preds length %d, want %d", len(preds), n))
	}
	if len(q) < pm.wpr {
		panic(fmt.Sprintf("hdlearn: PredictBatchInto scratch %d words, want %d", len(q), pm.wpr))
	}
	q = q[:pm.wpr]
	for i := 0; i < n; i++ {
		hdc.PackRowInto(q, hvs.Row(i))
		preds[i] = pm.predictWords(q)
	}
}

// WordsPerRow returns the packed row stride in uint64 words (⌈D/64⌉), the
// scratch length PredictBatchInto requires.
func (pm *PackedModel) WordsPerRow() int { return pm.wpr }

// FloatScorer is the serving engine's float-precision classifier: an
// immutable snapshot of a Model with class norms precomputed, scoring
// serially with zero allocations. Its predictions match
// ArgmaxRows(Model.SimilarityBatch(hvs)) bit-for-bit: the same dot kernel
// (tensor.DotFast == the MatMulT inner kernel), the same float64 cosine
// division with den==0 → 0, and the same first-wins strict-> argmax.
type FloatScorer struct {
	K, D  int
	m     *tensor.Tensor // [K, D] snapshot of class hypervectors
	norms []float64      // per-class L2 norms
}

// NewFloatScorer snapshots m (deep copy) into an immutable scorer. The copy
// decouples the scorer from further training on m; compile a new scorer (or
// a new engine) to pick up updated weights.
func NewFloatScorer(m *Model) *FloatScorer {
	s := &FloatScorer{K: m.K, D: m.D, m: m.M.Clone(), norms: make([]float64, m.K)}
	for k := 0; k < m.K; k++ {
		s.norms[k] = hdc.Hypervector(s.m.Row(k)).Norm()
	}
	return s
}

// PredictInto classifies every row of hvs ([N, D]) into preds (length N).
func (s *FloatScorer) PredictInto(hvs *tensor.Tensor, preds []int) {
	if hvs.Rank() != 2 || hvs.Shape[1] != s.D {
		panic(fmt.Sprintf("hdlearn: FloatScorer expects [N %d], got %v", s.D, hvs.Shape))
	}
	n := hvs.Shape[0]
	if len(preds) != n {
		panic(fmt.Sprintf("hdlearn: FloatScorer preds length %d, want %d", len(preds), n))
	}
	for i := 0; i < n; i++ {
		h := hvs.Row(i)
		hn := hdc.Hypervector(h).Norm()
		var best float32
		at := 0
		for k := 0; k < s.K; k++ {
			dot := tensor.DotFast(h, s.m.Row(k))
			var sim float32
			if den := hn * s.norms[k]; den != 0 {
				sim = float32(float64(dot) / den)
			}
			if k == 0 || sim > best {
				best, at = sim, k
			}
		}
		preds[i] = at
	}
}
