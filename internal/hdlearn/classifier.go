// Package hdlearn implements HD-computing classification: class hypervectors
// built by bundling, MASS retraining (CascadeHD), and the paper's Algorithm 1
// — MASS extended with knowledge distillation from a CNN teacher.
package hdlearn

import (
	"fmt"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// Model is an HD classifier: one class hypervector per class, stacked as the
// matrix M = [C₀ ... C_{k-1}] of shape [K, D]. Inference compares a query
// hypervector against every row with cosine similarity and picks the argmax.
type Model struct {
	K, D int
	// M holds the (real-valued) class hypervectors.
	M *tensor.Tensor

	// version counts mutations of M (see Version/Invalidate in version.go);
	// packed caches the sign-quantized form built at packedVersion.
	version       uint64
	packed        *PackedModel
	packedVersion uint64

	// norms caches the per-class L2 row norms computed at normsVersion.
	// Similarity and SimilarityBatch recompute it only after a mutation, so
	// retraining epochs stop paying K·D norm flops per query.
	norms        []float64
	normsVersion uint64
	normsValid   bool
}

// NewModel allocates a zeroed classifier for k classes of dimension d.
func NewModel(k, d int) *Model {
	if k < 2 || d < 1 {
		panic(fmt.Sprintf("hdlearn: NewModel(k=%d, d=%d)", k, d))
	}
	return &Model{K: k, D: d, M: tensor.New(k, d)}
}

// Class returns class hypervector i as a slice aliasing the model.
func (m *Model) Class(i int) hdc.Hypervector { return hdc.Hypervector(m.M.Row(i)) }

// InitBundle builds the classic single-pass HD model: each class hypervector
// is the bundle (sum) of all training hypervectors of that class,
// C_k = Σ H_i. hvs is [N, D]; labels are class indices.
func (m *Model) InitBundle(hvs *tensor.Tensor, labels []int) {
	checkHVs(m, hvs, labels)
	m.Invalidate()
	m.M.Zero()
	for i, y := range labels {
		hdc.BundleInto(hdc.Hypervector(m.M.Row(y)), hdc.Hypervector(hvs.Row(i)))
	}
}

// classNorms returns the per-class L2 norms, recomputing them only when the
// model has been mutated since the last call (keyed on the version counter).
func (m *Model) classNorms() []float64 {
	if !m.normsValid || m.normsVersion != m.version {
		if m.norms == nil {
			m.norms = make([]float64, m.K)
		}
		for k := 0; k < m.K; k++ {
			m.norms[k] = hdc.Hypervector(m.M.Row(k)).Norm()
		}
		m.normsVersion = m.version
		m.normsValid = true
	}
	return m.norms
}

// Similarity returns δ(M, H) — cosine similarity of h against every class
// hypervector, as a length-K vector in [-1, 1]. Cosine keeps similarity on
// the same scale as one-hot targets, which MASS updates difference against.
//
// It shares its dot kernel (tensor.DotFast), cached class norms, and cosine
// rounding (float32 ← float64 dot / den, den==0 → 0) with SimilarityBatch, so
// the two are bit-identical — the invariant the batched trainers' B=1
// bit-exactness proofs rest on.
func (m *Model) Similarity(h hdc.Hypervector) []float32 {
	if len(h) != m.D {
		panic(fmt.Sprintf("hdlearn: Similarity got dim %d, model has D=%d", len(h), m.D))
	}
	out := make([]float32, m.K)
	hn := h.Norm()
	if hn == 0 {
		return out
	}
	norms := m.classNorms()
	for k := 0; k < m.K; k++ {
		rn := norms[k]
		if rn == 0 {
			continue
		}
		out[k] = float32(float64(tensor.DotFast(h, m.M.Row(k))) / (rn * hn))
	}
	return out
}

// SimilarityBatch computes the [N, K] cosine similarity matrix of a batch of
// query hypervectors against the class hypervectors.
func (m *Model) SimilarityBatch(hvs *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(hvs.Shape[0], m.K)
	m.SimilarityBatchInto(out, hvs)
	return out
}

// SimilarityBatchInto is SimilarityBatch into a caller-owned [N, K] dst, so
// batched retraining epochs reuse one similarity buffer: the dot products run
// as a single GEMM (MatMulTInto) and the class norms come from the version-
// keyed cache. Bit-identical to Similarity row by row.
func (m *Model) SimilarityBatchInto(dst, hvs *tensor.Tensor) {
	if hvs.Rank() != 2 || hvs.Shape[1] != m.D {
		panic(fmt.Sprintf("hdlearn: SimilarityBatch expects [N %d], got %v", m.D, hvs.Shape))
	}
	n := hvs.Shape[0]
	if dst.Rank() != 2 || dst.Shape[0] != n || dst.Shape[1] != m.K {
		panic(fmt.Sprintf("hdlearn: SimilarityBatchInto dst shape %v, want [%d %d]", dst.Shape, n, m.K))
	}
	tensor.MatMulTInto(dst, hvs, m.M) // [N, K] dot products
	norms := m.classNorms()
	for i := 0; i < n; i++ {
		hn := hdc.Hypervector(hvs.Row(i)).Norm()
		row := dst.Row(i)
		for k := 0; k < m.K; k++ {
			den := hn * norms[k]
			if den == 0 {
				row[k] = 0
			} else {
				row[k] = float32(float64(row[k]) / den)
			}
		}
	}
}

// Predict returns argmax_k δ(C_k, h).
func (m *Model) Predict(h hdc.Hypervector) int {
	sims := m.Similarity(h)
	best, at := sims[0], 0
	for k, s := range sims {
		if s > best {
			best, at = s, k
		}
	}
	return at
}

// PredictBatch returns the predicted class of every row of hvs.
func (m *Model) PredictBatch(hvs *tensor.Tensor) []int {
	return tensor.ArgmaxRows(m.SimilarityBatch(hvs))
}

// Accuracy scores the model on a labelled hypervector set.
func (m *Model) Accuracy(hvs *tensor.Tensor, labels []int) float64 {
	preds := m.PredictBatch(hvs)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Clone returns a deep copy, used by hyperparameter sweeps that retrain from
// a common initialization.
func (m *Model) Clone() *Model {
	return &Model{K: m.K, D: m.D, M: m.M.Clone()}
}

// QueryGrad returns dL/dH for a batch given the update matrix U ([N, K]):
// the similarity objective the retraining ascends is Σ_k U_k·δ(C_k, H), whose
// gradient w.r.t. H is Σ_k U_k·C_k = U @ M. The manifold learner consumes
// this through the HD decoder (Sec. V-C); it is the dual of the class update
// M += λ Uᵀ H.
func (m *Model) QueryGrad(u *tensor.Tensor) *tensor.Tensor {
	if u.Rank() != 2 || u.Shape[1] != m.K {
		panic(fmt.Sprintf("hdlearn: QueryGrad expects [N %d], got %v", m.K, u.Shape))
	}
	return tensor.MatMul(u, m.M) // [N, D]
}

// NormalizeRows rescales each class hypervector to unit norm. Optional
// stabilization after many retraining iterations.
func (m *Model) NormalizeRows() {
	m.Invalidate()
	for k := 0; k < m.K; k++ {
		row := hdc.Hypervector(m.M.Row(k))
		n := row.Norm()
		if n > 0 {
			row.Scale(float32(1 / n))
		}
	}
}

// MemoryBytes reports model storage: K·D float32 values, or the packed
// binary footprint when quantized for FPGA deployment.
func (m *Model) MemoryBytes(packed bool) int64 {
	if packed {
		return int64(m.K) * int64((m.D+63)/64) * 8
	}
	return int64(m.K) * int64(m.D) * 4
}

// InferenceMACs counts multiply-accumulates of classifying one query:
// K class similarities of D dims each.
func (m *Model) InferenceMACs() int64 { return int64(m.K) * int64(m.D) }

func checkHVs(m *Model, hvs *tensor.Tensor, labels []int) {
	if hvs.Rank() != 2 || hvs.Shape[1] != m.D {
		panic(fmt.Sprintf("hdlearn: expected [N %d] hypervectors, got %v", m.D, hvs.Shape))
	}
	if hvs.Shape[0] != len(labels) {
		panic(fmt.Sprintf("hdlearn: %d hypervectors but %d labels", hvs.Shape[0], len(labels)))
	}
	for _, y := range labels {
		if y < 0 || y >= m.K {
			panic(fmt.Sprintf("hdlearn: label %d out of range [0,%d)", y, m.K))
		}
	}
}
