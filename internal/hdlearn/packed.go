package hdlearn

import (
	"fmt"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// PackedModel is the deployment form of an HD classifier: class hypervectors
// sign-quantized to one bit per dimension, scored with XOR + popcount instead
// of float32 dot products — the binary inference kernel the paper maps to GPU
// constant memory and the FPGA DPU (Sec. VI). For bipolar queries its argmax
// is mathematically identical to cosine argmax over the sign-quantized float
// model: all class norms equal √D, so ordering by popcount dot and ordering
// by cosine coincide (see TestPackedPredictAgreesWithFloat).
type PackedModel struct {
	K, D int
	// wpr is the number of uint64 words per class row.
	wpr int
	// words holds all class rows contiguously, row k at [k*wpr, (k+1)*wpr).
	words []uint64
}

// PackModel sign-quantizes m's class hypervectors into packed binary form.
func PackModel(m *Model) *PackedModel {
	wpr := (m.D + 63) / 64
	pm := &PackedModel{K: m.K, D: m.D, wpr: wpr, words: make([]uint64, m.K*wpr)}
	for k := 0; k < m.K; k++ {
		hdc.PackRowInto(pm.words[k*wpr:(k+1)*wpr], m.M.Row(k))
	}
	return pm
}

// SignQuantized returns a float-precision copy of m with every class
// hypervector sign-quantized (±1, sign(0) = +1) — the reference model whose
// predictions PackModel reproduces exactly.
func (m *Model) SignQuantized() *Model {
	return &Model{K: m.K, D: m.D, M: tensor.Sign(m.M)}
}

// predictWords returns the argmax class of one packed query (ties broken
// toward the lowest class index, matching the float path). Hamming distances
// run through the vectorized XOR-popcount kernel; the count is an exact
// integer, so predictions are identical to the scalar loop.
func (pm *PackedModel) predictWords(q []uint64) int {
	best, at := -pm.D-1, 0
	for k := 0; k < pm.K; k++ {
		row := pm.words[k*pm.wpr : (k+1)*pm.wpr]
		ham := tensor.XorPopcount(row, q)
		if dot := pm.D - 2*ham; dot > best {
			best, at = dot, k
		}
	}
	return at
}

// SliceColumns returns the dimension shard of the packed model holding
// columns [lo, hi). lo must be a multiple of 64 (the shard planner's
// 256-aligned boundaries always are); hi may be ragged, in which case the
// final word's bits past the slice are masked to zero so XOR+popcount
// scoring sees only the shard's own dimensions. Because the popcount dot is
// a plain sum over bit positions, per-shard dots dot_s = w_s − 2·ham_s add
// exactly: Σ_s dot_s equals the full model's D − 2·ham.
func (pm *PackedModel) SliceColumns(lo, hi int) *PackedModel {
	if lo < 0 || hi > pm.D || lo >= hi {
		panic(fmt.Sprintf("hdlearn: PackedModel.SliceColumns [%d, %d) out of [0, %d)", lo, hi, pm.D))
	}
	if lo%64 != 0 {
		panic(fmt.Sprintf("hdlearn: PackedModel.SliceColumns lo=%d must be 64-aligned", lo))
	}
	if lo == 0 && hi == pm.D {
		return pm
	}
	w := hi - lo
	wlo, wpr := lo/64, (w+63)/64
	out := &PackedModel{K: pm.K, D: w, wpr: wpr, words: make([]uint64, pm.K*wpr)}
	var mask uint64 = ^uint64(0)
	if w%64 != 0 {
		mask = (uint64(1) << uint(w%64)) - 1
	}
	for k := 0; k < pm.K; k++ {
		row := out.words[k*wpr : (k+1)*wpr]
		copy(row, pm.words[k*pm.wpr+wlo:k*pm.wpr+wlo+wpr])
		row[wpr-1] &= mask
	}
	return out
}

// DotsInto writes every class's popcount dot product with one packed query
// row (length ≥ WordsPerRow(), tail bits zero): out[k] = D − 2·ham(q, M_k).
// These int32 partials are exactly additive across dimension shards, which
// is what the sharded serving tier's add-reduce relies on.
func (pm *PackedModel) DotsInto(out []int32, q []uint64) {
	if len(out) < pm.K {
		panic(fmt.Sprintf("hdlearn: DotsInto out length %d < K=%d", len(out), pm.K))
	}
	for k := 0; k < pm.K; k++ {
		row := pm.words[k*pm.wpr : (k+1)*pm.wpr]
		ham := tensor.XorPopcount(row, q)
		out[k] = int32(pm.D - 2*ham)
	}
}

// PredictPacked classifies one already-packed query row (length
// WordsPerRow(), tail bits zero) — the engine's fused tail packs sign bits
// block by block into such rows and scores them here without ever holding a
// dense hypervector.
func (pm *PackedModel) PredictPacked(q []uint64) int { return pm.predictWords(q) }

// PredictHV classifies an already-packed query hypervector.
func (pm *PackedModel) PredictHV(q *hdc.PackedHV) int {
	if q.D != pm.D {
		panic(fmt.Sprintf("hdlearn: PredictHV got D=%d, model has D=%d", q.D, pm.D))
	}
	return pm.predictWords(q.Words)
}

// Predict packs a dense query and classifies it.
func (pm *PackedModel) Predict(h hdc.Hypervector) int {
	if len(h) != pm.D {
		panic(fmt.Sprintf("hdlearn: Predict got dim %d, model has D=%d", len(h), pm.D))
	}
	q := make([]uint64, pm.wpr)
	hdc.PackRowInto(q, h)
	return pm.predictWords(q)
}

// PredictBatch classifies every row of hvs ([N, D]), packing queries on the
// fly and scoring with popcount; rows are processed in parallel.
func (pm *PackedModel) PredictBatch(hvs *tensor.Tensor) []int {
	if hvs.Rank() != 2 || hvs.Shape[1] != pm.D {
		panic(fmt.Sprintf("hdlearn: PredictBatch expects [N %d], got %v", pm.D, hvs.Shape))
	}
	n := hvs.Shape[0]
	preds := make([]int, n)
	// Per row: D/64·K word ops of scoring plus D packing ops.
	grain := 1 + (1<<14)/(pm.wpr*pm.K+pm.D+1)
	tensor.ParallelForGrain(n, grain, func(lo, hi int) {
		q := make([]uint64, pm.wpr)
		for i := lo; i < hi; i++ {
			hdc.PackRowInto(q, hvs.Row(i))
			preds[i] = pm.predictWords(q)
		}
	})
	return preds
}

// Accuracy scores the packed model on a labelled hypervector set.
func (pm *PackedModel) Accuracy(hvs *tensor.Tensor, labels []int) float64 {
	preds := pm.PredictBatch(hvs)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Class returns class hypervector k in packed form (a copy).
func (pm *PackedModel) Class(k int) *hdc.PackedHV {
	p := hdc.NewPackedHV(pm.D)
	copy(p.Words, pm.words[k*pm.wpr:(k+1)*pm.wpr])
	return p
}

// MemoryBytes is the packed storage footprint: K rows of ⌈D/64⌉ words.
func (pm *PackedModel) MemoryBytes() int64 {
	return int64(pm.K) * int64(pm.wpr) * 8
}
