package hdlearn

import (
	"fmt"
	"math"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// FoldedScorer is the float classifier with the cosine denominator folded
// into the class matrix at compile time — the class-matrix fold of the
// engine's fused tail. It exploits a structural fact of the pipeline: query
// hypervectors are bipolar (sign(·) output, every entry ±1), so the query
// norm is exactly √D for every query and the cosine
//
//	sim(h, M_k) = ⟨h, M_k⟩ / (‖h‖·‖M_k‖)
//
// reduces to a plain dot product against the pre-scaled rows
// M̂_k = M_k / (√D·‖M_k‖). A zero-norm class keeps a zero row, reproducing
// FloatScorer's den==0 → sim=0 convention.
//
// Because the denominator is gone, scores can accumulate BLOCKWISE over
// column ranges of the query — which is what lets the fused tail score a
// gemmNC-wide projection block the moment it is computed and never
// materialize the full [N, D] hypervector batch. Partial sums accumulate in
// float64, so the block decomposition never changes a ranking that isn't
// already a float-level near-tie; agreement with FloatScorer's argmax is
// pinned by TestFoldedScorerAgreesWithFloat.
type FoldedScorer struct {
	K, D int
	mhat *tensor.Tensor // [K, D]: class rows pre-divided by √D·‖M_k‖
}

// NewFoldedScorer snapshots m into the folded form (deep copy; later
// training on m does not affect the scorer).
func NewFoldedScorer(m *Model) *FoldedScorer {
	s := &FoldedScorer{K: m.K, D: m.D, mhat: tensor.New(m.K, m.D)}
	sqrtD := math.Sqrt(float64(m.D))
	for k := 0; k < m.K; k++ {
		den := sqrtD * hdc.Hypervector(m.M.Row(k)).Norm()
		if den == 0 {
			continue
		}
		src := m.M.Row(k)
		dst := s.mhat.Row(k)
		for j := range dst {
			dst[j] = float32(float64(src[j]) / den)
		}
	}
	return s
}

// Slice returns the dimension shard of the scorer holding columns [lo, hi)
// of the folded class matrix. The rows keep the FULL-dimension fold
// M̂_k = M_k/(√D·‖M_k‖) — the denominator uses the whole class row — so
// partial dot products from disjoint shards sum to exactly the full folded
// score: ⟨h, M̂_k⟩ = Σ_s ⟨h[lo_s:hi_s], M̂_k[lo_s:hi_s]⟩. Slicing copies the
// column range; each per-block float32 dot on a shard is bit-identical to
// the same block's dot on the unsliced scorer.
func (s *FoldedScorer) Slice(lo, hi int) *FoldedScorer {
	if lo < 0 || hi > s.D || lo >= hi {
		panic(fmt.Sprintf("hdlearn: FoldedScorer.Slice [%d, %d) out of [0, %d)", lo, hi, s.D))
	}
	if lo == 0 && hi == s.D {
		return s
	}
	return &FoldedScorer{K: s.K, D: hi - lo, mhat: tensor.SliceCols(s.mhat, lo, hi)}
}

// BlockScores writes each query row's raw float32 partial score against
// columns [c0, c0+w) of the folded class matrix: dst[i*K + k] =
// ⟨blk_i[:w], M̂_k[c0:c0+w]⟩, where row i of the query tile starts at
// blk[i*ldb]. These are the exact per-block float32 values AccumBlock folds
// into float64 — emitting them instead is what lets a dimension shard ship
// partial scores over the wire and a reducer replay the identical float64
// accumulation order, bit-exact against the unsharded engine.
func (s *FoldedScorer) BlockScores(dst []float32, blk []float32, ldb, n, w, c0 int) {
	if c0 < 0 || c0+w > s.D {
		panic(fmt.Sprintf("hdlearn: BlockScores columns [%d,%d) outside D=%d", c0, c0+w, s.D))
	}
	for i := 0; i < n; i++ {
		row := blk[i*ldb : i*ldb+w]
		out := dst[i*s.K : (i+1)*s.K]
		for k := 0; k < s.K; k++ {
			out[k] = tensor.DotFast(row, s.mhat.Row(k)[c0:c0+w])
		}
	}
}

// AccumBlock accumulates each query row's partial score against columns
// [c0, c0+w) of the folded class matrix: acc[i*K + k] += ⟨blk_i, M̂_k[c0:c0+w]⟩
// for the n rows of blk (a compact [n, w] tile of signed query columns).
// Callers zero acc before the first block.
func (s *FoldedScorer) AccumBlock(acc []float64, blk []float32, n, w, c0 int) {
	if c0 < 0 || c0+w > s.D {
		panic(fmt.Sprintf("hdlearn: AccumBlock columns [%d,%d) outside D=%d", c0, c0+w, s.D))
	}
	for i := 0; i < n; i++ {
		row := blk[i*w : (i+1)*w]
		out := acc[i*s.K : (i+1)*s.K]
		for k := 0; k < s.K; k++ {
			out[k] += float64(tensor.DotFast(row, s.mhat.Row(k)[c0:c0+w]))
		}
	}
}

// ArgmaxInto converts accumulated scores to predictions: first-wins
// strict-> argmax per row, the same tie rule as FloatScorer.
func (s *FoldedScorer) ArgmaxInto(preds []int, acc []float64, n int) {
	for i := 0; i < n; i++ {
		row := acc[i*s.K : (i+1)*s.K]
		best, at := row[0], 0
		for k := 1; k < s.K; k++ {
			if row[k] > best {
				best, at = row[k], k
			}
		}
		preds[i] = at
	}
}

// PredictInto classifies signed query rows ([N, D]) in one full-width pass —
// the single-block case of AccumBlock + ArgmaxInto.
func (s *FoldedScorer) PredictInto(hvs *tensor.Tensor, preds []int) {
	if hvs.Rank() != 2 || hvs.Shape[1] != s.D {
		panic(fmt.Sprintf("hdlearn: FoldedScorer expects [N %d], got %v", s.D, hvs.Shape))
	}
	n := hvs.Shape[0]
	if len(preds) != n {
		panic(fmt.Sprintf("hdlearn: FoldedScorer preds length %d, want %d", len(preds), n))
	}
	for i := 0; i < n; i++ {
		h := hvs.Row(i)
		best, at := math.Inf(-1), 0
		for k := 0; k < s.K; k++ {
			if sc := float64(tensor.DotFast(h, s.mhat.Row(k))); sc > best {
				best, at = sc, k
			}
		}
		preds[i] = at
	}
}

// ModelBytes is the folded snapshot's storage: K·D float32s.
func (s *FoldedScorer) ModelBytes() int64 { return int64(s.K) * int64(s.D) * 4 }

// Row exposes folded class row k (M̂_k, read-only): the per-dimension score
// contributions that drive the compression pass's saliency metric and feed
// the sub-byte row quantizers.
func (s *FoldedScorer) Row(k int) []float32 { return s.mhat.Row(k) }
