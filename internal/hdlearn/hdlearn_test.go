package hdlearn

import (
	"math"
	"testing"
	"testing/quick"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

const (
	testD = 1024
	testK = 4
)

// makeDataset synthesizes an HD classification task: K random prototype
// hypervectors, each sample a prototype with a fraction of components
// flipped. flip controls difficulty.
func makeDataset(seed int64, n int, flip float64) (*tensor.Tensor, []int, []hdc.Hypervector) {
	rng := tensor.NewRNG(seed)
	protos := make([]hdc.Hypervector, testK)
	for k := range protos {
		protos[k] = hdc.RandomBipolar(rng, testD)
	}
	hvs := tensor.New(n, testD)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		y := i % testK
		labels[i] = y
		h := protos[y].Clone()
		for j := range h {
			if rng.Float64() < flip {
				h[j] = -h[j]
			}
		}
		copy(hvs.Row(i), h)
	}
	return hvs, labels, protos
}

func TestInitBundleRecoverPrototypes(t *testing.T) {
	hvs, labels, protos := makeDataset(1, 80, 0.2)
	m := NewModel(testK, testD)
	m.InitBundle(hvs, labels)
	// Each class hypervector must be far more similar to its own prototype
	// than to any other.
	for k := 0; k < testK; k++ {
		own := hdc.Cosine(m.Class(k), protos[k])
		for j := 0; j < testK; j++ {
			if j == k {
				continue
			}
			other := hdc.Cosine(m.Class(k), protos[j])
			if own < other+0.3 {
				t.Fatalf("class %d bundle not aligned with its prototype: own=%v other=%v", k, own, other)
			}
		}
	}
	if acc := m.Accuracy(hvs, labels); acc < 0.95 {
		t.Fatalf("bundled model accuracy %v on easy task", acc)
	}
}

func TestSimilarityBatchMatchesSingle(t *testing.T) {
	hvs, labels, _ := makeDataset(2, 20, 0.3)
	m := NewModel(testK, testD)
	m.InitBundle(hvs, labels)
	batch := m.SimilarityBatch(hvs)
	for i := 0; i < 20; i++ {
		single := m.Similarity(hdc.Hypervector(hvs.Row(i)))
		for k := 0; k < testK; k++ {
			if math.Abs(float64(batch.At(i, k)-single[k])) > 1e-5 {
				t.Fatalf("similarity batch mismatch at %d,%d", i, k)
			}
		}
	}
}

func TestSimilarityIsCosine(t *testing.T) {
	m := NewModel(2, 4)
	copy(m.M.Row(0), []float32{1, 1, 1, 1})
	copy(m.M.Row(1), []float32{-1, -1, -1, -1})
	sims := m.Similarity(hdc.Hypervector{1, 1, 1, 1})
	if math.Abs(float64(sims[0])-1) > 1e-6 || math.Abs(float64(sims[1])+1) > 1e-6 {
		t.Fatalf("cosine similarities = %v", sims)
	}
	// Zero query yields zero similarities, not NaN.
	zero := m.Similarity(hdc.Hypervector{0, 0, 0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("zero-query similarities = %v", zero)
	}
}

func TestMASSImprovesHardTask(t *testing.T) {
	hvs, labels, _ := makeDataset(3, 200, 0.42)
	m := NewModel(testK, testD)
	m.InitBundle(hvs, labels)
	before := m.Accuracy(hvs, labels)
	hist := m.TrainMASS(hvs, labels, MASSConfig{Epochs: 10, LR: 0.5, Shuffle: true}, tensor.NewRNG(4))
	after := m.Accuracy(hvs, labels)
	if after < before {
		t.Fatalf("MASS retraining degraded accuracy: %v -> %v", before, after)
	}
	if after < 0.9 {
		t.Fatalf("MASS final accuracy too low: %v", after)
	}
	// Update mass should shrink as the model converges.
	if hist[len(hist)-1].MeanUpdateNorm > hist[0].MeanUpdateNorm {
		t.Fatalf("update norm did not shrink: %v -> %v",
			hist[0].MeanUpdateNorm, hist[len(hist)-1].MeanUpdateNorm)
	}
}

func TestPerceptronRetrainWorks(t *testing.T) {
	hvs, labels, _ := makeDataset(5, 200, 0.42)
	m := NewModel(testK, testD)
	m.InitBundle(hvs, labels)
	m.TrainPerceptron(hvs, labels, MASSConfig{Epochs: 10, LR: 1, Shuffle: true}, tensor.NewRNG(6))
	if acc := m.Accuracy(hvs, labels); acc < 0.85 {
		t.Fatalf("perceptron retraining accuracy %v", acc)
	}
}

func TestDistillAlphaZeroEqualsMASS(t *testing.T) {
	hvs, labels, _ := makeDataset(7, 60, 0.35)
	teacher := tensor.New(60, testK) // irrelevant at alpha=0
	tensor.NewRNG(8).FillNormal(teacher, 0, 1)

	m1 := NewModel(testK, testD)
	m1.InitBundle(hvs, labels)
	m2 := m1.Clone()

	m1.TrainMASS(hvs, labels, MASSConfig{Epochs: 3, LR: 0.4}, nil)
	if _, err := m2.TrainDistill(hvs, labels, teacher, DistillConfig{Epochs: 3, LR: 0.4, Alpha: 0, Temp: 15}, nil); err != nil {
		t.Fatal(err)
	}
	for i := range m1.M.Data {
		if math.Abs(float64(m1.M.Data[i]-m2.M.Data[i])) > 1e-3 {
			t.Fatalf("alpha=0 distillation must equal MASS at index %d: %v vs %v", i, m1.M.Data[i], m2.M.Data[i])
		}
	}
}

func TestDistillValidation(t *testing.T) {
	hvs, labels, _ := makeDataset(9, 8, 0.3)
	teacher := tensor.New(8, testK)
	m := NewModel(testK, testD)
	cases := []DistillConfig{
		{Epochs: 0, LR: 0.1, Alpha: 0.5, Temp: 10},
		{Epochs: 1, LR: 0.1, Alpha: 0.5, Temp: 0},
		{Epochs: 1, LR: 0.1, Alpha: -0.1, Temp: 10},
		{Epochs: 1, LR: 0.1, Alpha: 1.1, Temp: 10},
	}
	for i, cfg := range cases {
		if _, err := m.TrainDistill(hvs, labels, teacher, cfg, nil); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, cfg)
		}
	}
	// Wrong teacher shape.
	bad := tensor.New(8, testK+1)
	if _, err := m.TrainDistill(hvs, labels, bad, DistillConfig{Epochs: 1, LR: 0.1, Alpha: 0.5, Temp: 10}, nil); err == nil {
		t.Fatal("expected teacher shape error")
	}
}

func TestDistillRecoversTeacherKnowledge(t *testing.T) {
	// Construct a task where one-hot labels are partially WRONG (label
	// noise) but the teacher's logits carry the true structure. KD should
	// then beat pure MASS — the mechanism behind Fig. 8.
	hvs, trueLabels, _ := makeDataset(10, 240, 0.38)
	n := hvs.Shape[0]
	noisy := append([]int(nil), trueLabels...)
	rng := tensor.NewRNG(11)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			noisy[i] = rng.Intn(testK)
		}
	}
	// Teacher: confident, correct logits.
	teacher := tensor.New(n, testK)
	for i := 0; i < n; i++ {
		for k := 0; k < testK; k++ {
			if k == trueLabels[i] {
				teacher.Set(6, i, k)
			}
		}
	}

	mMass := NewModel(testK, testD)
	mMass.InitBundle(hvs, noisy)
	mKD := mMass.Clone()

	mMass.TrainMASS(hvs, noisy, MASSConfig{Epochs: 8, LR: 0.4, Shuffle: true}, tensor.NewRNG(12))
	if _, err := mKD.TrainDistill(hvs, noisy, teacher, DistillConfig{Epochs: 8, LR: 0.4, Alpha: 0.9, Temp: 1, Shuffle: true}, tensor.NewRNG(12)); err != nil {
		t.Fatal(err)
	}
	accMass := mMass.Accuracy(hvs, trueLabels)
	accKD := mKD.Accuracy(hvs, trueLabels)
	if accKD < accMass {
		t.Fatalf("distillation should exploit teacher knowledge: KD=%v MASS=%v", accKD, accMass)
	}
}

func TestDistillUpdateBatchMatchesScalarPath(t *testing.T) {
	hvs, labels, _ := makeDataset(13, 10, 0.3)
	teacher := tensor.New(10, testK)
	tensor.NewRNG(14).FillNormal(teacher, 0, 2)
	m := NewModel(testK, testD)
	m.InitBundle(hvs, labels)

	alpha, temp := 0.6, 12.0
	u := m.DistillUpdateBatch(hvs, labels, teacher, alpha, temp)
	// Recompute per-sample with the definition.
	soft := make([]float32, testK)
	for i := 0; i < 10; i++ {
		sims := m.Similarity(hdc.Hypervector(hvs.Row(i)))
		tensor.Softmax(soft, teacher.Row(i))
		for k := 0; k < testK; k++ {
			hard := -sims[k]
			if k == labels[i] {
				hard += 1
			}
			distilled := (soft[k] - sims[k]) / float32(temp)
			want := (1-float32(alpha))*hard + float32(alpha)*distilled
			if math.Abs(float64(u.At(i, k)-want)) > 1e-5 {
				t.Fatalf("U[%d,%d] = %v, want %v", i, k, u.At(i, k), want)
			}
		}
	}
}

func TestApplyUpdateOuterProduct(t *testing.T) {
	m := NewModel(2, 3)
	u := tensor.FromSlice([]float32{1, -1}, 1, 2)
	h := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	m.ApplyUpdate(u, h, 0.5)
	want0 := []float32{0.5, 1, 1.5}
	want1 := []float32{-0.5, -1, -1.5}
	for j := 0; j < 3; j++ {
		if m.M.At(0, j) != want0[j] || m.M.At(1, j) != want1[j] {
			t.Fatalf("ApplyUpdate result %v", m.M.Data)
		}
	}
}

func TestQueryGradIsUTimesM(t *testing.T) {
	m := NewModel(testK, 8)
	tensor.NewRNG(15).FillNormal(m.M, 0, 1)
	u := tensor.New(2, testK)
	tensor.NewRNG(16).FillNormal(u, 0, 1)
	g := m.QueryGrad(u)
	want := tensor.MatMul(u, m.M)
	for i := range g.Data {
		if g.Data[i] != want.Data[i] {
			t.Fatal("QueryGrad must equal U @ M")
		}
	}
}

func TestNormalizeRows(t *testing.T) {
	m := NewModel(2, 4)
	copy(m.M.Row(0), []float32{3, 0, 0, 0})
	copy(m.M.Row(1), []float32{0, 0, 0, 0}) // zero row must not NaN
	m.NormalizeRows()
	if math.Abs(hdc.Hypervector(m.M.Row(0)).Norm()-1) > 1e-6 {
		t.Fatal("row 0 not normalized")
	}
	for _, v := range m.M.Row(1) {
		if v != 0 {
			t.Fatal("zero row must stay zero")
		}
	}
}

func TestModelCosts(t *testing.T) {
	m := NewModel(10, 3000)
	if m.InferenceMACs() != 30000 {
		t.Fatalf("InferenceMACs = %d", m.InferenceMACs())
	}
	if m.MemoryBytes(false) != 10*3000*4 {
		t.Fatalf("dense bytes = %d", m.MemoryBytes(false))
	}
	if m.MemoryBytes(true) != 10*47*8 {
		t.Fatalf("packed bytes = %d", m.MemoryBytes(true))
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewModel(2, 4)
	m.M.Data[0] = 7
	c := m.Clone()
	c.M.Data[0] = 9
	if m.M.Data[0] != 7 {
		t.Fatal("Clone must deep-copy M")
	}
}

func TestTrainOnlineSinglePass(t *testing.T) {
	hvs, labels, _ := makeDataset(20, 200, 0.4)
	m := NewModel(testK, testD)
	st := m.TrainOnline(hvs, labels, 1.0, tensor.NewRNG(21))
	if st.MeanUpdateNorm <= 0 {
		t.Fatal("online pass must apply updates")
	}
	acc := m.Accuracy(hvs, labels)
	if acc < 0.85 {
		t.Fatalf("online single-pass accuracy %v", acc)
	}
	// A second adaptive pass must not degrade accuracy materially.
	m.TrainOnline(hvs, labels, 1.0, tensor.NewRNG(22))
	if acc2 := m.Accuracy(hvs, labels); acc2 < acc-0.05 {
		t.Fatalf("second online pass regressed: %v -> %v", acc, acc2)
	}
}

func TestTrainOnlineVsPlainBundle(t *testing.T) {
	// On a noisy task, adaptive bundling should match or beat plain
	// bundling in a single pass.
	hvs, labels, _ := makeDataset(23, 240, 0.44)
	plain := NewModel(testK, testD)
	plain.InitBundle(hvs, labels)
	online := NewModel(testK, testD)
	online.TrainOnline(hvs, labels, 1.0, tensor.NewRNG(24))
	pa, oa := plain.Accuracy(hvs, labels), online.Accuracy(hvs, labels)
	if oa < pa-0.05 {
		t.Fatalf("online (%v) fell behind plain bundling (%v)", oa, pa)
	}
}

// Property: ApplyUpdate is linear — applying U then V equals applying U+V.
func TestApplyUpdateLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		const d = 64
		hvs := tensor.New(3, d)
		r.FillBipolar(hvs)
		u := tensor.New(3, testK)
		v := tensor.New(3, testK)
		r.FillNormal(u, 0, 1)
		r.FillNormal(v, 0, 1)

		m1 := NewModel(testK, d)
		m1.ApplyUpdate(u, hvs, 0.5)
		m1.ApplyUpdate(v, hvs, 0.5)

		m2 := NewModel(testK, d)
		sum := tensor.Add(u, v)
		m2.ApplyUpdate(sum, hvs, 0.5)

		for i := range m1.M.Data {
			if math.Abs(float64(m1.M.Data[i]-m2.M.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
