package hdlearn

import (
	"testing"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// randModel returns a real-valued model and a batch of bipolar queries.
func randPackedCase(seed int64, k, d, n int) (*Model, *tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	m := NewModel(k, d)
	rng.FillNormal(m.M, 0, 1)
	// Plant exact zeros to pin the sign(0) = +1 convention on both paths.
	for i := 0; i < len(m.M.Data); i += 97 {
		m.M.Data[i] = 0
	}
	q := tensor.New(n, d)
	rng.FillNormal(q, 0, 1)
	return m, tensor.Sign(q)
}

// TestPackedPredictAgreesWithFloat is the property test for the binary
// inference path: for every sign-quantized model and bipolar query batch, the
// popcount argmax must equal the float32 cosine argmax exactly — including
// dimensions not divisible by 64 and tie-prone tiny D.
func TestPackedPredictAgreesWithFloat(t *testing.T) {
	for _, tc := range []struct{ k, d, n int }{
		{2, 64, 33},
		{5, 100, 40},
		{3, 130, 21},
		{7, 257, 64},
		{10, 1000, 128},
		{4, 65, 1},
	} {
		m, q := randPackedCase(int64(tc.k*1000+tc.d), tc.k, tc.d, tc.n)
		quant := m.SignQuantized()
		want := quant.PredictBatch(q)
		pm := PackModel(m)
		got := pm.PredictBatch(q)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("K=%d D=%d: sample %d packed=%d float=%d", tc.k, tc.d, i, got[i], want[i])
			}
		}
		// Single-query APIs must agree with the batch path.
		for i := 0; i < tc.n; i++ {
			h := hdc.Hypervector(q.Row(i))
			if p := pm.Predict(h); p != got[i] {
				t.Fatalf("K=%d D=%d: Predict(%d)=%d, batch=%d", tc.k, tc.d, i, p, got[i])
			}
			if p := pm.PredictHV(hdc.PackHV(h)); p != got[i] {
				t.Fatalf("K=%d D=%d: PredictHV(%d)=%d, batch=%d", tc.k, tc.d, i, p, got[i])
			}
		}
	}
}

func TestPackedAccuracyMatchesFloat(t *testing.T) {
	m, q := randPackedCase(7, 6, 500, 200)
	labels := make([]int, 200)
	for i := range labels {
		labels[i] = i % 6
	}
	want := m.SignQuantized().Accuracy(q, labels)
	got := PackModel(m).Accuracy(q, labels)
	if got != want {
		t.Fatalf("packed accuracy %v, float accuracy %v", got, want)
	}
}

func TestPackedModelMemory(t *testing.T) {
	m := NewModel(10, 1000)
	pm := PackModel(m)
	if pm.MemoryBytes() != 10*16*8 {
		t.Fatalf("MemoryBytes = %d", pm.MemoryBytes())
	}
	if ratio := float64(m.MemoryBytes(false)) / float64(pm.MemoryBytes()); ratio < 30 {
		t.Fatalf("packed model only %.1fx smaller", ratio)
	}
	// Class round-trips through the packed form.
	rng := tensor.NewRNG(3)
	rng.FillNormal(m.M, 0, 1)
	pm = PackModel(m)
	c := pm.Class(3).Unpack()
	for i, v := range m.Class(3) {
		want := float32(1)
		if v < 0 {
			want = -1
		}
		if c[i] != want {
			t.Fatalf("Class(3)[%d] = %v, want %v", i, c[i], want)
		}
	}
}
