package hdlearn

import (
	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// MASSConfig configures Many-class Similarity Scaling retraining
// (CascadeHD, DAC'21), the base procedure NSHD's Algorithm 1 extends.
type MASSConfig struct {
	Epochs int
	// LR is the learning rate λ scaling each bundled update.
	LR float64
	// Shuffle randomizes sample order each epoch when an RNG is supplied.
	Shuffle bool
}

// EpochStats reports training progress for one retraining epoch.
type EpochStats struct {
	Epoch int
	// TrainAccuracy is measured on the fly during the epoch.
	TrainAccuracy float64
	// MeanUpdateNorm is the average L1 mass of the per-sample update vector
	// U — it shrinks as the model converges.
	MeanUpdateNorm float64
}

// TrainMASS retrains class hypervectors with class-wise similarity
// differences: for each training hypervector H with label y,
//
//	U = one_hot(y) − δ(M, H)
//	M = M + λ·Uᵀ·H
//
// Misclassified samples produce large updates on both the correct class
// (pulling it toward H) and the confused classes (pushing them away).
func (m *Model) TrainMASS(hvs *tensor.Tensor, labels []int, cfg MASSConfig, rng *tensor.RNG) []EpochStats {
	checkHVs(m, hvs, labels)
	m.Invalidate()
	n := hvs.Shape[0]
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := float32(cfg.LR)
	var history []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		correct := 0
		var updateNorm float64
		for _, idx := range order {
			h := hdc.Hypervector(hvs.Row(idx))
			y := labels[idx]
			sims := m.Similarity(h)
			if argmax32(sims) == y {
				correct++
			}
			for k := 0; k < m.K; k++ {
				u := -sims[k]
				if k == y {
					u += 1
				}
				updateNorm += abs64(u)
				if u != 0 {
					hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(k)), lr*u, h)
				}
			}
		}
		history = append(history, EpochStats{
			Epoch:          epoch,
			TrainAccuracy:  float64(correct) / float64(n),
			MeanUpdateNorm: updateNorm / float64(n),
		})
	}
	return history
}

// TrainPerceptron is the classic pre-MASS retraining baseline used by the
// ablation benches: only on misclassification, bundle H into the correct
// class and subtract it from the wrongly predicted class.
func (m *Model) TrainPerceptron(hvs *tensor.Tensor, labels []int, cfg MASSConfig, rng *tensor.RNG) []EpochStats {
	checkHVs(m, hvs, labels)
	m.Invalidate()
	n := hvs.Shape[0]
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := float32(cfg.LR)
	var history []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		correct := 0
		var updateNorm float64
		for _, idx := range order {
			h := hdc.Hypervector(hvs.Row(idx))
			y := labels[idx]
			pred := m.Predict(h)
			if pred == y {
				correct++
				continue
			}
			updateNorm += 2
			hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(y)), lr, h)
			hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(pred)), -lr, h)
		}
		history = append(history, EpochStats{
			Epoch:          epoch,
			TrainAccuracy:  float64(correct) / float64(n),
			MeanUpdateNorm: updateNorm / float64(n),
		})
	}
	return history
}

func argmax32(x []float32) int {
	best, at := x[0], 0
	for i, v := range x {
		if v > best {
			best, at = v, i
		}
	}
	return at
}

func abs64(v float32) float64 {
	if v < 0 {
		return float64(-v)
	}
	return float64(v)
}
