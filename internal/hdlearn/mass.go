package hdlearn

import (
	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// MASSConfig configures Many-class Similarity Scaling retraining
// (CascadeHD, DAC'21), the base procedure NSHD's Algorithm 1 extends.
type MASSConfig struct {
	Epochs int
	// LR is the learning rate λ scaling each bundled update.
	LR float64
	// Shuffle randomizes sample order each epoch when an RNG is supplied.
	Shuffle bool
	// Batch is the minibatch size of TrainMASSBatch (0 → 32). TrainMASS
	// ignores it; TrainMASSBatch with Batch=1 is bit-identical to TrainMASS.
	Batch int
}

// EpochStats reports training progress for one retraining epoch.
type EpochStats struct {
	Epoch int
	// TrainAccuracy is measured on the fly during the epoch.
	TrainAccuracy float64
	// MeanUpdateNorm is the average L1 mass of the per-sample update vector
	// U — it shrinks as the model converges.
	MeanUpdateNorm float64
}

// TrainMASS retrains class hypervectors with class-wise similarity
// differences: for each training hypervector H with label y,
//
//	U = one_hot(y) − δ(M, H)
//	M = M + λ·Uᵀ·H
//
// Misclassified samples produce large updates on both the correct class
// (pulling it toward H) and the confused classes (pushing them away).
func (m *Model) TrainMASS(hvs *tensor.Tensor, labels []int, cfg MASSConfig, rng *tensor.RNG) []EpochStats {
	checkHVs(m, hvs, labels)
	m.Invalidate()
	n := hvs.Shape[0]
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := float32(cfg.LR)
	var history []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		correct := 0
		var updateNorm float64
		for _, idx := range order {
			h := hdc.Hypervector(hvs.Row(idx))
			y := labels[idx]
			sims := m.Similarity(h)
			if argmax32(sims) == y {
				correct++
			}
			updated := false
			for k := 0; k < m.K; k++ {
				u := -sims[k]
				if k == y {
					u += 1
				}
				updateNorm += abs64(u)
				if u != 0 {
					hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(k)), lr*u, h)
					updated = true
				}
			}
			if updated {
				// The next sample's Similarity must see fresh class norms.
				m.Invalidate()
			}
		}
		history = append(history, EpochStats{
			Epoch:          epoch,
			TrainAccuracy:  float64(correct) / float64(n),
			MeanUpdateNorm: updateNorm / float64(n),
		})
	}
	return history
}

// TrainMASSBatch is the GEMM-ified TrainMASS: each minibatch computes every
// similarity with one batched GEMM (SimilarityBatchInto) and applies the
// accumulated update as one rank-B GEMM, E = (λU)ᵀ·H, M += E — instead of
// K·B strided WeightedBundleInto sweeps.
//
// With Batch=1 it is bit-identical to TrainMASS, by construction:
//
//   - Similarity and SimilarityBatchInto share the dot kernel, cached norms
//     and cosine rounding (see Similarity), so sims match bit-for-bit;
//   - U is scaled by λ BEFORE the outer product, so the B=1 update element is
//     the identical float32 chain (λ·u)·h[j] that WeightedBundleInto applies;
//   - the rank-1 GEMM accumulates exactly one product per element (no
//     reassociation), and M += 1·E adds it with the same single rounding;
//   - argmax, update-mass accumulation order, and shuffle consumption of the
//     RNG are identical, so the EpochStats history is float64-equal.
//
// TestTrainMASSBatchB1BitExact enforces this contract.
func (m *Model) TrainMASSBatch(hvs *tensor.Tensor, labels []int, cfg MASSConfig, rng *tensor.RNG) []EpochStats {
	checkHVs(m, hvs, labels)
	n := hvs.Shape[0]
	if n == 0 {
		return nil
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 32
	}
	if batch > n {
		batch = n
	}
	m.Invalidate()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := float32(cfg.LR)

	// All per-batch workspaces are allocated once and re-sliced for the tail.
	hb := tensor.New(batch, m.D)   // gathered query rows
	sims := tensor.New(batch, m.K) // batched similarities
	u := tensor.New(batch, m.K)    // λ-scaled update matrix
	e := tensor.New(m.K, m.D)      // bundled class-wise error E = (λU)ᵀ·H
	scratch := make([]float32, batch*m.K)

	var history []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		correct := 0
		var updateNorm float64
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			bs := end - start
			hbB := tensor.FromSlice(hb.Data[:bs*m.D], bs, m.D)
			simsB := tensor.FromSlice(sims.Data[:bs*m.K], bs, m.K)
			uB := tensor.FromSlice(u.Data[:bs*m.K], bs, m.K)
			for bi := 0; bi < bs; bi++ {
				copy(hbB.Row(bi), hvs.Row(order[start+bi]))
			}
			m.SimilarityBatchInto(simsB, hbB)
			for bi := 0; bi < bs; bi++ {
				y := labels[order[start+bi]]
				srow := simsB.Row(bi)
				if argmax32(srow) == y {
					correct++
				}
				urow := uB.Row(bi)
				for k := 0; k < m.K; k++ {
					uv := -srow[k]
					if k == y {
						uv += 1
					}
					updateNorm += abs64(uv)
					urow[k] = lr * uv
				}
			}
			tensor.TransposeMatMulInto(e, uB, hbB, scratch)
			m.M.AXPY(1, e)
			m.Invalidate()
		}
		history = append(history, EpochStats{
			Epoch:          epoch,
			TrainAccuracy:  float64(correct) / float64(n),
			MeanUpdateNorm: updateNorm / float64(n),
		})
	}
	return history
}

// TrainPerceptron is the classic pre-MASS retraining baseline used by the
// ablation benches: only on misclassification, bundle H into the correct
// class and subtract it from the wrongly predicted class.
func (m *Model) TrainPerceptron(hvs *tensor.Tensor, labels []int, cfg MASSConfig, rng *tensor.RNG) []EpochStats {
	checkHVs(m, hvs, labels)
	m.Invalidate()
	n := hvs.Shape[0]
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := float32(cfg.LR)
	var history []EpochStats
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if cfg.Shuffle && rng != nil {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		correct := 0
		var updateNorm float64
		for _, idx := range order {
			h := hdc.Hypervector(hvs.Row(idx))
			y := labels[idx]
			pred := m.Predict(h)
			if pred == y {
				correct++
				continue
			}
			updateNorm += 2
			hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(y)), lr, h)
			hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(pred)), -lr, h)
			m.Invalidate() // next Predict must see fresh class norms
		}
		history = append(history, EpochStats{
			Epoch:          epoch,
			TrainAccuracy:  float64(correct) / float64(n),
			MeanUpdateNorm: updateNorm / float64(n),
		})
	}
	return history
}

func argmax32(x []float32) int {
	best, at := x[0], 0
	for i, v := range x {
		if v > best {
			best, at = v, i
		}
	}
	return at
}

func abs64(v float32) float64 {
	if v < 0 {
		return float64(-v)
	}
	return float64(v)
}
