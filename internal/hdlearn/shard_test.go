package hdlearn

import (
	"testing"

	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// TestFoldedScorerSliceAdditive: per-shard partial scores (full-row norm
// fold, sliced columns) sum to exactly the full folded score when the fold
// order is replayed block by block, and BlockScores emits the exact float32
// values AccumBlock folds.
func TestFoldedScorerSliceAdditive(t *testing.T) {
	const k, d, n = 5, 533, 9
	m := NewModel(k, d)
	tensor.NewRNG(3).FillNormal(m.M, 0, 1)
	m.Invalidate()
	s := NewFoldedScorer(m)
	queries := signedQueries(11, n, d)

	// Reference: full-width blockwise accumulation in global block order.
	const bc = 256
	want := make([]float64, n*k)
	blk := make([]float32, n*bc)
	for c0 := 0; c0 < d; c0 += bc {
		w := bc
		if c0+w > d {
			w = d - c0
		}
		for i := 0; i < n; i++ {
			copy(blk[i*w:(i+1)*w], queries.Row(i)[c0:c0+w])
		}
		s.AccumBlock(want, blk[:n*w], n, w, c0)
	}

	// Sharded: slice at the 256-block boundaries, emit BlockScores per local
	// block, fold in global block order.
	got := make([]float64, n*k)
	bs := make([]float32, n*k)
	for _, rng := range [][2]int{{0, 256}, {256, 512}, {512, 533}} {
		lo, hi := rng[0], rng[1]
		ss := s.Slice(lo, hi)
		for c0 := 0; c0 < hi-lo; c0 += bc {
			w := bc
			if c0+w > hi-lo {
				w = hi - lo - c0
			}
			tile := make([]float32, n*w)
			for i := 0; i < n; i++ {
				copy(tile[i*w:(i+1)*w], queries.Row(i)[lo+c0:lo+c0+w])
			}
			ss.BlockScores(bs, tile, w, n, w, c0)
			for i := 0; i < n*k; i++ {
				got[i] += float64(bs[i])
			}
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharded folded score differs at %d: got %v want %v", i, got[i], want[i])
		}
	}

	// BlockScores with a wider leading dimension reads the right columns.
	ss := s.Slice(256, 512)
	full := make([]float32, n*256)
	for i := 0; i < n; i++ {
		copy(full[i*256:(i+1)*256], queries.Row(i)[256:512])
	}
	a := make([]float32, n*k)
	b := make([]float32, n*k)
	ss.BlockScores(a, full, 256, n, 256, 0)
	// Same columns via an ldb > w view: rows embedded in the query tensor.
	ss2 := s
	ss2.BlockScores(b, queries.Data[256:], d, n, 256, 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ldb path differs at %d", i)
		}
	}
}

// TestPackedModelSliceDotsAdditive: per-shard popcount dots sum exactly to
// the full model's dot for every class, including a ragged final shard, and
// argmax over the summed dots equals predictWords.
func TestPackedModelSliceDotsAdditive(t *testing.T) {
	const k, d = 7, 533
	m := NewModel(k, d)
	tensor.NewRNG(17).FillNormal(m.M, 0, 1)
	m.Invalidate()
	pm := PackModel(m)
	queries := signedQueries(23, 13, d)

	fullDots := make([]int32, k)
	sum := make([]int32, k)
	part := make([]int32, k)
	q := make([]uint64, pm.WordsPerRow())
	for i := 0; i < queries.Shape[0]; i++ {
		row := queries.Row(i)
		hdc.PackRowInto(q, row)
		pm.DotsInto(fullDots, q)

		for j := range sum {
			sum[j] = 0
		}
		for _, rng := range [][2]int{{0, 256}, {256, 512}, {512, 533}} {
			lo, hi := rng[0], rng[1]
			spm := pm.SliceColumns(lo, hi)
			sq := make([]uint64, spm.WordsPerRow())
			hdc.PackRowInto(sq, row[lo:hi])
			spm.DotsInto(part, sq)
			for j := range sum {
				sum[j] += part[j]
			}
		}
		for j := range sum {
			if sum[j] != fullDots[j] {
				t.Fatalf("query %d class %d: shard dot sum %d != full %d", i, j, sum[j], fullDots[j])
			}
		}
		// Argmax over dots (first-wins) matches the packed predictor.
		best, at := int32(-1<<31), 0
		for j, v := range sum {
			if v > best {
				best, at = v, j
			}
		}
		if at != pm.PredictPacked(q) {
			t.Fatalf("query %d: reduced argmax %d != packed predict %d", i, at, pm.PredictPacked(q))
		}
	}
}

// TestPackedModelSliceValidation pins the alignment contract.
func TestPackedModelSliceValidation(t *testing.T) {
	m := NewModel(3, 256)
	tensor.NewRNG(1).FillNormal(m.M, 0, 1)
	m.Invalidate()
	pm := PackModel(m)
	if pm.SliceColumns(0, 256) != pm {
		t.Fatal("full-range slice should return the model itself")
	}
	for _, bad := range [][2]int{{-64, 64}, {0, 257}, {128, 128}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SliceColumns(%d, %d) should panic", bad[0], bad[1])
				}
			}()
			pm.SliceColumns(bad[0], bad[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unaligned lo should panic")
			}
		}()
		pm.SliceColumns(32, 256)
	}()
}
