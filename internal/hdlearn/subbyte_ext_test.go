package hdlearn_test

// External test package: internal/quant imports hdlearn, so exercising the
// scorers against the real row quantizers has to happen from outside.

import (
	"math/rand"
	"testing"

	"nshd/internal/hdlearn"
	"nshd/internal/quant"
	"nshd/internal/tensor"
)

func randModel(rng *rand.Rand, k, d int) *hdlearn.Model {
	m := tensor.New(k, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return &hdlearn.Model{K: k, D: d, M: m}
}

func randQuery(rng *rand.Rand, d int) ([]float32, []uint64) {
	row := make([]float32, d)
	for i := range row {
		row[i] = 1
		if rng.Intn(2) == 1 {
			row[i] = -1
		}
	}
	q := make([]uint64, (d+63)/64)
	tensor.PackSignsInto(q, row)
	return row, q
}

// TestSubByteScorerDotsExact checks both precisions' integer dots against a
// brute-force fold of the quantized rows, including a ragged dimension.
func TestSubByteScorerDotsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, d := range []int{256, 750, 1000} {
		const k = 7
		m := randModel(rng, k, d)
		folded := hdlearn.NewFoldedScorer(m)

		i4 := hdlearn.NewInt4Scorer(m, quant.QuantizeInt4Row)
		tern := hdlearn.NewTernaryScorer(m, quant.QuantizeTernaryRow)
		if i4.Name() != "int4" || tern.Name() != "ternary" {
			t.Fatalf("names %q %q", i4.Name(), tern.Name())
		}

		vals := make([]int8, d)
		for trial := 0; trial < 10; trial++ {
			row, q := randQuery(rng, d)
			dotsI4 := make([]int32, k)
			dotsT := make([]int32, k)
			i4.DotsInto(dotsI4, q)
			tern.DotsInto(dotsT, q)
			for c := 0; c < k; c++ {
				sI4 := quant.QuantizeInt4Row(vals, folded.Row(c))
				var want int32
				for j := range vals {
					want += int32(row[j]) * int32(vals[j])
				}
				if dotsI4[c] != want {
					t.Fatalf("d=%d trial=%d class=%d: int4 dot %d, want %d", d, trial, c, dotsI4[c], want)
				}
				if sI4 != i4.Scales()[c] {
					t.Fatalf("d=%d class=%d: int4 scale %v, want %v", d, c, i4.Scales()[c], sI4)
				}
				sT := quant.QuantizeTernaryRow(vals, folded.Row(c))
				want = 0
				for j := range vals {
					want += int32(row[j]) * int32(vals[j])
				}
				if dotsT[c] != want {
					t.Fatalf("d=%d trial=%d class=%d: ternary dot %d, want %d", d, trial, c, dotsT[c], want)
				}
				if sT != tern.Scales()[c] {
					t.Fatalf("d=%d class=%d: ternary scale %v, want %v", d, c, tern.Scales()[c], sT)
				}
			}
		}
	}
}

// TestSubByteScorerRanking: on well-separated classes (each class row IS a
// scaled bipolar prototype) both quantized scorers must reproduce the float
// scorer's predictions exactly.
func TestSubByteScorerRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const k, d, n = 5, 768, 40
	m := tensor.New(k, d)
	for c := 0; c < k; c++ {
		row := m.Row(c)
		for j := range row {
			row[j] = float32(1+c) * 0.5
			if rng.Intn(2) == 1 {
				row[j] = -row[j]
			}
		}
	}
	model := &hdlearn.Model{K: k, D: d, M: m}
	folded := hdlearn.NewFoldedScorer(model)
	i4 := hdlearn.NewInt4Scorer(model, quant.QuantizeInt4Row)
	tern := hdlearn.NewTernaryScorer(model, quant.QuantizeTernaryRow)

	hvs := tensor.New(n, d)
	want := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		copy(hvs.Row(i), m.Row(c))
		row := hvs.Row(i)
		for j := range row { // re-sign to ±1 with ~6% flips
			s := float32(1)
			if row[j] < 0 {
				s = -1
			}
			if rng.Intn(16) == 0 {
				s = -s
			}
			row[j] = s
		}
	}
	folded.PredictInto(hvs, want)

	q := make([]uint64, (d+63)/64)
	dots := make([]int32, k)
	preds := make([]int, 1)
	for i := 0; i < n; i++ {
		tensor.PackSignsInto(q, hvs.Row(i))
		i4.DotsInto(dots, q)
		hdlearn.ArgmaxScaledInto(preds, dots, i4.Scales(), 1, k)
		if preds[0] != want[i] {
			t.Fatalf("sample %d: int4 pred %d, float pred %d", i, preds[0], want[i])
		}
		tern.DotsInto(dots, q)
		hdlearn.ArgmaxScaledInto(preds, dots, tern.Scales(), 1, k)
		if preds[0] != want[i] {
			t.Fatalf("sample %d: ternary pred %d, float pred %d", i, preds[0], want[i])
		}
	}
}

// TestSubByteScorerDeterminism: two constructions from the same model are
// byte-identical in dots and scales.
func TestSubByteScorerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := randModel(rng, 6, 512)
	a := hdlearn.NewInt4Scorer(m, quant.QuantizeInt4Row)
	b := hdlearn.NewInt4Scorer(m, quant.QuantizeInt4Row)
	_, q := randQuery(rng, 512)
	da, db := make([]int32, 6), make([]int32, 6)
	a.DotsInto(da, q)
	b.DotsInto(db, q)
	for c := range da {
		if da[c] != db[c] || a.Scales()[c] != b.Scales()[c] {
			t.Fatalf("class %d: non-deterministic construction", c)
		}
	}
	if a.MemoryBytes() != b.MemoryBytes() || a.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes %d vs %d", a.MemoryBytes(), b.MemoryBytes())
	}
}
