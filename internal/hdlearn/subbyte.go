package hdlearn

import (
	"fmt"

	"nshd/internal/tensor"
)

// SubByteScorer is the below-int8 classifier of a compressed engine: the
// cosine-folded class rows M̂_k = M_k/(√D·‖M_k‖) quantized per row to int4 or
// ternary, scored against the same sign-packed bipolar queries the packed
// tail already produces. The dot products are exact integer kernels
// (tensor.Int4SignDot / tensor.TernarySignDot); per-row float32 scales turn
// them back into comparable scores, and the scaled argmax runs in float64
// with the same first-wins tie rule as every other scorer
// (ArgmaxScaledInto). Construction is a deterministic pure function of the
// model, so compressed engines stay bit-reproducible.
//
// The row quantizer is injected by the caller (internal/quant sits above
// this package in the import graph): it writes one row's integer weights and
// returns the row scale. Int4 expects values in [−7, 7], ternary in
// {−1, 0, +1}.
type SubByteScorer struct {
	K, D int
	nw   int // query words per row: ⌈D/64⌉
	name string

	// int4 form: K rows of nw·tensor.Int4BytesPerWord packed nibbles plus
	// each row's weight sum (the Int4SignDot identity needs it).
	nib    []byte
	rowSum []int32

	// ternary form: K rows of nw sign words + nw nonzero-mask words plus
	// each row's nonzero count.
	sgn, msk []uint64
	nnz      []int32

	scales []float32 // per-row dequantization scale
}

// RowQuantizer maps one float row to integer weights written into dst,
// returning the row's dequantization scale.
type RowQuantizer func(dst []int8, row []float32) float32

// NewInt4Scorer folds m's cosine denominator and quantizes each folded row
// to int4 with quantRow (values must land in [−7, 7]). D must stay below
// 2^17 — the amd64 kernel accumulates in int16 lanes.
func NewInt4Scorer(m *Model, quantRow RowQuantizer) *SubByteScorer {
	if m.D >= 1<<17 {
		panic(fmt.Sprintf("hdlearn: NewInt4Scorer D=%d exceeds the int4 kernel bound 2^17", m.D))
	}
	folded := NewFoldedScorer(m)
	nw := (m.D + 63) / 64
	rowBytes := nw * tensor.Int4BytesPerWord
	s := &SubByteScorer{
		K: m.K, D: m.D, nw: nw, name: "int4",
		nib:    make([]byte, m.K*rowBytes),
		rowSum: make([]int32, m.K),
		scales: make([]float32, m.K),
	}
	vals := make([]int8, m.D)
	for k := 0; k < m.K; k++ {
		s.scales[k] = quantRow(vals, folded.Row(k))
		var sum int32
		for _, v := range vals {
			if v < -7 || v > 7 {
				panic(fmt.Sprintf("hdlearn: int4 quantizer produced %d outside [-7, 7]", v))
			}
			sum += int32(v)
		}
		s.rowSum[k] = sum
		tensor.Int4Pack(s.nib[k*rowBytes:(k+1)*rowBytes], vals)
	}
	return s
}

// NewTernaryScorer folds m's cosine denominator and quantizes each folded
// row to {−1, 0, +1} with quantRow.
func NewTernaryScorer(m *Model, quantRow RowQuantizer) *SubByteScorer {
	folded := NewFoldedScorer(m)
	nw := (m.D + 63) / 64
	s := &SubByteScorer{
		K: m.K, D: m.D, nw: nw, name: "ternary",
		sgn:    make([]uint64, m.K*nw),
		msk:    make([]uint64, m.K*nw),
		nnz:    make([]int32, m.K),
		scales: make([]float32, m.K),
	}
	vals := make([]int8, m.D)
	for k := 0; k < m.K; k++ {
		s.scales[k] = quantRow(vals, folded.Row(k))
		sgn, msk := s.sgn[k*nw:(k+1)*nw], s.msk[k*nw:(k+1)*nw]
		var nnz int32
		for d, v := range vals {
			switch v {
			case 0:
			case 1:
				msk[d>>6] |= 1 << (uint(d) & 63)
				nnz++
			case -1:
				msk[d>>6] |= 1 << (uint(d) & 63)
				sgn[d>>6] |= 1 << (uint(d) & 63)
				nnz++
			default:
				panic(fmt.Sprintf("hdlearn: ternary quantizer produced %d outside {-1, 0, 1}", v))
			}
		}
		s.nnz[k] = nnz
	}
	return s
}

// Name reports the precision ("int4" or "ternary").
func (s *SubByteScorer) Name() string { return s.name }

// Scales exposes the per-class dequantization scales (read-only): a scored
// query's class score is float64(Scales()[k]) · float64(dots[k]).
func (s *SubByteScorer) Scales() []float32 { return s.scales }

// DotsInto writes the K integer dots of one sign-packed query row (⌈D/64⌉
// words, tail bits zero) against every class row.
func (s *SubByteScorer) DotsInto(dots []int32, q []uint64) {
	if len(q) != s.nw {
		panic(fmt.Sprintf("hdlearn: SubByteScorer query %d words, want %d", len(q), s.nw))
	}
	if len(dots) < s.K {
		panic(fmt.Sprintf("hdlearn: SubByteScorer dots length %d, want %d", len(dots), s.K))
	}
	if s.nib != nil {
		rowBytes := s.nw * tensor.Int4BytesPerWord
		for k := 0; k < s.K; k++ {
			dots[k] = tensor.Int4SignDot(s.nib[k*rowBytes:(k+1)*rowBytes], q, s.rowSum[k])
		}
		return
	}
	for k := 0; k < s.K; k++ {
		dots[k] = tensor.TernarySignDot(s.sgn[k*s.nw:], s.msk[k*s.nw:], q, s.nnz[k])
	}
}

// MemoryBytes is the scorer's resident storage: packed rows plus per-row
// sums/counts and scales.
func (s *SubByteScorer) MemoryBytes() int64 {
	b := int64(len(s.nib)) + int64(len(s.sgn)+len(s.msk))*8
	b += int64(len(s.rowSum)+len(s.nnz))*4 + int64(len(s.scales))*4
	return b
}

// ArgmaxScaledInto converts integer dots to predictions: per row, argmax of
// float64(scales[k])·float64(dots[k]) with the first-wins strict-> tie rule
// every scorer in this package uses. Shared by the engine's run path and
// MergeScores so single-engine and merged predictions agree bit-for-bit.
func ArgmaxScaledInto(preds []int, dots []int32, scales []float32, n, k int) {
	for i := 0; i < n; i++ {
		row := dots[i*k : (i+1)*k]
		best, at := float64(scales[0])*float64(row[0]), 0
		for c := 1; c < k; c++ {
			if sc := float64(scales[c]) * float64(row[c]); sc > best {
				best, at = sc, c
			}
		}
		preds[i] = at
	}
}
