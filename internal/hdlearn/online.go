package hdlearn

import (
	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// TrainOnline performs OnlineHD-style adaptive single-pass learning: instead
// of bundling every sample with unit weight (InitBundle), each sample is
// bundled proportionally to how poorly it is already represented,
//
//	correct prediction:  C_y += λ·(1 − δ_y)·H
//	wrong prediction:    C_y += λ·(1 − δ_y)·H ;  C_ŷ −= λ·(1 − δ_ŷ)·H
//
// where δ is the cosine similarity to the respective class. Compared to
// plain bundling it suppresses redundant samples and sharpens boundaries in
// one pass — the single-pass baseline the iterative MASS/KD retraining is
// measured against (ablation benches).
//
// The model should be zero-initialized; the first sample of each class seeds
// its hypervector.
func (m *Model) TrainOnline(hvs *tensor.Tensor, labels []int, lr float64, rng *tensor.RNG) EpochStats {
	checkHVs(m, hvs, labels)
	m.Invalidate()
	n := hvs.Shape[0]
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	correct := 0
	var updateNorm float64
	l := float32(lr)
	for _, idx := range order {
		h := hdc.Hypervector(hvs.Row(idx))
		y := labels[idx]
		sims := m.Similarity(h)
		pred := argmax32(sims)
		if pred == y {
			correct++
		}
		wy := l * (1 - sims[y])
		hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(y)), wy, h)
		updateNorm += abs64(wy)
		if pred != y {
			wp := l * (1 - sims[pred])
			hdc.WeightedBundleInto(hdc.Hypervector(m.M.Row(pred)), -wp, h)
			updateNorm += abs64(wp)
		}
		m.Invalidate() // next sample's Similarity must see fresh class norms
	}
	return EpochStats{Epoch: 1, TrainAccuracy: float64(correct) / float64(n), MeanUpdateNorm: updateNorm / float64(n)}
}
