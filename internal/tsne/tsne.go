// Package tsne implements exact t-SNE (van der Maaten & Hinton) with PCA
// initialization, used to reproduce the paper's explainability analysis
// (Fig. 11): 2-D projections of query hypervectors before and after NSHD
// training, where training visibly pulls each class into its own cluster.
// A k-nearest-neighbor purity metric quantifies the "clusters form" claim.
package tsne

import (
	"fmt"
	"math"
	"sort"

	"nshd/internal/tensor"
)

// Config controls the t-SNE optimization.
type Config struct {
	Perplexity float64
	Iters      int
	LR         float64
	// EarlyExaggeration multiplies P for the first quarter of the run.
	EarlyExaggeration float64
	Seed              int64
}

// DefaultConfig mirrors the common sklearn defaults scaled for small sets.
func DefaultConfig() Config {
	return Config{Perplexity: 20, Iters: 300, LR: 100, EarlyExaggeration: 8, Seed: 1}
}

// Validate rejects unusable configurations given n points.
func (c Config) Validate(n int) error {
	if n < 5 {
		return fmt.Errorf("tsne: need at least 5 points, have %d", n)
	}
	if c.Perplexity <= 1 || float64(n-1) < c.Perplexity {
		return fmt.Errorf("tsne: perplexity %v invalid for %d points", c.Perplexity, n)
	}
	if c.Iters < 10 {
		return fmt.Errorf("tsne: %d iterations too few", c.Iters)
	}
	if c.LR <= 0 {
		return fmt.Errorf("tsne: learning rate %v", c.LR)
	}
	return nil
}

// Embed computes a 2-D embedding of the [N, F] data.
func Embed(data *tensor.Tensor, cfg Config) (*tensor.Tensor, error) {
	if data.Rank() != 2 {
		return nil, fmt.Errorf("tsne: data rank %d, want 2", data.Rank())
	}
	n := data.Shape[0]
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}

	p := affinities(data, cfg.Perplexity)

	// PCA init, scaled small per the reference implementation.
	y := PCA2(data)
	normalizeInit(y)
	jitter := tensor.NewRNG(cfg.Seed)
	for i := range y.Data {
		y.Data[i] += float32(jitter.NormFloat64()) * 1e-4
	}

	gains := tensor.New(n, 2)
	gains.Fill(1)
	vel := tensor.New(n, 2)
	exagEnd := cfg.Iters / 4

	for iter := 0; iter < cfg.Iters; iter++ {
		exag := 1.0
		if iter < exagEnd {
			exag = cfg.EarlyExaggeration
		}
		grad, _ := gradient(p, y, exag)
		momentum := 0.5
		if iter >= exagEnd {
			momentum = 0.8
		}
		for i := range y.Data {
			// Adaptive gains as in the reference implementation.
			sameSign := (grad.Data[i] > 0) == (vel.Data[i] > 0)
			if sameSign {
				gains.Data[i] *= 0.8
			} else {
				gains.Data[i] += 0.2
			}
			if gains.Data[i] < 0.01 {
				gains.Data[i] = 0.01
			}
			vel.Data[i] = float32(momentum)*vel.Data[i] - float32(cfg.LR)*gains.Data[i]*grad.Data[i]
			y.Data[i] += vel.Data[i]
		}
		center(y)
	}
	return y, nil
}

// KL returns the final Kullback-Leibler divergence between the
// high-dimensional affinities of data and the embedding y's Student-t
// affinities — the t-SNE objective value, useful for tests.
func KL(data, y *tensor.Tensor, perplexity float64) float64 {
	p := affinities(data, perplexity)
	_, kl := gradient(p, y, 1)
	return kl
}

// affinities computes the symmetrized, perplexity-calibrated joint
// distribution P over point pairs.
func affinities(data *tensor.Tensor, perplexity float64) *tensor.Tensor {
	n := data.Shape[0]
	d2 := pairwiseSq(data)
	p := tensor.New(n, n)
	logU := math.Log(perplexity)
	for i := 0; i < n; i++ {
		// Binary search beta = 1/(2σ²) to hit the target entropy.
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		row := make([]float64, n)
		for tries := 0; tries < 50; tries++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-float64(d2.At(i, j)) * beta)
				sum += row[j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			var h float64
			for j := 0; j < n; j++ {
				if row[j] > 0 {
					pj := row[j] / sum
					h -= pj * math.Log(pj)
				}
			}
			diff := h - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum == 0 {
			sum = 1e-12
		}
		for j := 0; j < n; j++ {
			p.Set(float32(row[j]/sum), i, j)
		}
	}
	// Symmetrize and normalize: P = (P + Pᵀ) / 2n, floored for stability.
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := float64(p.At(i, j)+p.At(j, i)) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			out.Set(float32(v), i, j)
		}
	}
	return out
}

// gradient returns dKL/dY under Student-t low-dimensional affinities, and
// the KL value itself.
func gradient(p, y *tensor.Tensor, exaggeration float64) (*tensor.Tensor, float64) {
	n := y.Shape[0]
	// q_ij ∝ (1 + ||yi-yj||²)^-1
	num := tensor.New(n, n)
	var qsum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := float64(y.At(i, 0) - y.At(j, 0))
			dy := float64(y.At(i, 1) - y.At(j, 1))
			v := 1 / (1 + dx*dx + dy*dy)
			num.Set(float32(v), i, j)
			num.Set(float32(v), j, i)
			qsum += 2 * v
		}
	}
	if qsum == 0 {
		qsum = 1e-12
	}
	grad := tensor.New(n, 2)
	var kl float64
	for i := 0; i < n; i++ {
		var gx, gy float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pij := float64(p.At(i, j)) * exaggeration
			qij := math.Max(float64(num.At(i, j))/qsum, 1e-12)
			mult := (pij - qij) * float64(num.At(i, j))
			gx += 4 * mult * float64(y.At(i, 0)-y.At(j, 0))
			gy += 4 * mult * float64(y.At(i, 1)-y.At(j, 1))
			if exaggeration == 1 && float64(p.At(i, j)) > 1e-11 {
				kl += float64(p.At(i, j)) * math.Log(float64(p.At(i, j))/qij)
			}
		}
		grad.Set(float32(gx), i, 0)
		grad.Set(float32(gy), i, 1)
	}
	return grad, kl
}

func pairwiseSq(data *tensor.Tensor) *tensor.Tensor {
	n := data.Shape[0]
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		ri := data.Row(i)
		for j := i + 1; j < n; j++ {
			rj := data.Row(j)
			var s float64
			for k := range ri {
				d := float64(ri[k] - rj[k])
				s += d * d
			}
			out.Set(float32(s), i, j)
			out.Set(float32(s), j, i)
		}
	}
	return out
}

func center(y *tensor.Tensor) {
	n := y.Shape[0]
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += float64(y.At(i, 0))
		my += float64(y.At(i, 1))
	}
	mx /= float64(n)
	my /= float64(n)
	for i := 0; i < n; i++ {
		y.Set(y.At(i, 0)-float32(mx), i, 0)
		y.Set(y.At(i, 1)-float32(my), i, 1)
	}
}

func normalizeInit(y *tensor.Tensor) {
	center(y)
	var std float64
	for _, v := range y.Data {
		std += float64(v) * float64(v)
	}
	std = math.Sqrt(std / float64(len(y.Data)))
	if std == 0 {
		return
	}
	scale := float32(1e-2 / std)
	y.Scale(scale)
}

// PCA2 projects [N, F] data onto its top two principal components using
// power iteration with deflation.
func PCA2(data *tensor.Tensor) *tensor.Tensor {
	n, f := data.Shape[0], data.Shape[1]
	// Center columns.
	x := data.Clone()
	for j := 0; j < f; j++ {
		var m float64
		for i := 0; i < n; i++ {
			m += float64(x.At(i, j))
		}
		m /= float64(n)
		for i := 0; i < n; i++ {
			x.Set(x.At(i, j)-float32(m), i, j)
		}
	}
	out := tensor.New(n, 2)
	rng := tensor.NewRNG(17)
	comp := make([][]float32, 0, 2)
	for c := 0; c < 2; c++ {
		v := make([]float32, f)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		for iter := 0; iter < 60; iter++ {
			// w = Xᵀ X v via two matvecs.
			xv := make([]float32, n)
			for i := 0; i < n; i++ {
				xv[i] = tensor.Dot(x.Row(i), v)
			}
			w := make([]float32, f)
			for i := 0; i < n; i++ {
				xi := x.Row(i)
				s := xv[i]
				for j := 0; j < f; j++ {
					w[j] += s * xi[j]
				}
			}
			// Deflate previous components.
			for _, prev := range comp {
				d := tensor.Dot(w, prev)
				for j := range w {
					w[j] -= d * prev[j]
				}
			}
			var norm float64
			for _, wv := range w {
				norm += float64(wv) * float64(wv)
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				break
			}
			for j := range w {
				w[j] = float32(float64(w[j]) / norm)
			}
			v = w
		}
		comp = append(comp, v)
		for i := 0; i < n; i++ {
			out.Set(tensor.Dot(x.Row(i), v), i, c)
		}
	}
	return out
}

// KNNPurity measures how well same-label points cluster in an embedding:
// the mean fraction of each point's k nearest neighbors sharing its label.
// Chance level is the label distribution's self-collision rate.
func KNNPurity(y *tensor.Tensor, labels []int, k int) float64 {
	n := y.Shape[0]
	if k >= n {
		k = n - 1
	}
	type nd struct {
		d float64
		j int
	}
	var total float64
	for i := 0; i < n; i++ {
		ds := make([]nd, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := float64(y.At(i, 0) - y.At(j, 0))
			dy := float64(y.At(i, 1) - y.At(j, 1))
			ds = append(ds, nd{dx*dx + dy*dy, j})
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
		same := 0
		for _, e := range ds[:k] {
			if labels[e.j] == labels[i] {
				same++
			}
		}
		total += float64(same) / float64(k)
	}
	return total / float64(n)
}
