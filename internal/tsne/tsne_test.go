package tsne

import (
	"math"
	"testing"

	"nshd/internal/tensor"
)

// blobs builds n points in f dims grouped into k well-separated Gaussian
// clusters.
func blobs(seed int64, n, f, k int, sep float64) (*tensor.Tensor, []int) {
	rng := tensor.NewRNG(seed)
	centers := tensor.New(k, f)
	rng.FillNormal(centers, 0, float32(sep))
	data := tensor.New(n, f)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		y := i % k
		labels[i] = y
		row := data.Row(i)
		copy(row, centers.Row(y))
		for j := range row {
			row[j] += float32(rng.NormFloat64()) * 0.3
		}
	}
	return data, labels
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(100); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(3); err == nil {
		t.Fatal("expected too-few-points error")
	}
	cfg.Perplexity = 200
	if err := cfg.Validate(100); err == nil {
		t.Fatal("expected perplexity error")
	}
	cfg = DefaultConfig()
	cfg.Iters = 1
	if err := cfg.Validate(100); err == nil {
		t.Fatal("expected iteration error")
	}
}

func TestPCA2RecoversDominantDirection(t *testing.T) {
	// Points along a line in 5-D: first PC must capture nearly all
	// variance.
	rng := tensor.NewRNG(2)
	n := 60
	data := tensor.New(n, 5)
	dir := []float32{1, 2, -1, 0.5, 3}
	for i := 0; i < n; i++ {
		tpos := float32(rng.NormFloat64()) * 4
		row := data.Row(i)
		for j := range row {
			row[j] = tpos*dir[j] + float32(rng.NormFloat64())*0.05
		}
	}
	y := PCA2(data)
	var var0, var1 float64
	for i := 0; i < n; i++ {
		var0 += float64(y.At(i, 0)) * float64(y.At(i, 0))
		var1 += float64(y.At(i, 1)) * float64(y.At(i, 1))
	}
	if var0 < 100*var1 {
		t.Fatalf("first PC variance %v not dominant over %v", var0, var1)
	}
}

func TestEmbedSeparatesBlobs(t *testing.T) {
	data, labels := blobs(3, 90, 16, 3, 8)
	cfg := DefaultConfig()
	cfg.Perplexity = 10
	cfg.Iters = 250
	y, err := Embed(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[0] != 90 || y.Shape[1] != 2 {
		t.Fatalf("embedding shape %v", y.Shape)
	}
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("embedding contains NaN/Inf")
		}
	}
	purity := KNNPurity(y, labels, 10)
	if purity < 0.9 {
		t.Fatalf("well-separated blobs should embed with high purity, got %v", purity)
	}
}

func TestEmbedKLDecreasesVsPCA(t *testing.T) {
	data, _ := blobs(4, 60, 12, 3, 6)
	cfg := DefaultConfig()
	cfg.Perplexity = 8
	cfg.Iters = 200
	y, err := Embed(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pca := PCA2(data)
	normalizeInit(pca)
	if KL(data, y, 8) >= KL(data, pca, 8) {
		t.Fatal("optimized embedding must have lower KL than its init")
	}
}

func TestEmbedRejectsBadInput(t *testing.T) {
	if _, err := Embed(tensor.New(8), DefaultConfig()); err == nil {
		t.Fatal("expected rank error")
	}
	cfg := DefaultConfig()
	cfg.Perplexity = 50
	if _, err := Embed(tensor.New(10, 4), cfg); err == nil {
		t.Fatal("expected perplexity error")
	}
}

func TestKNNPurityBounds(t *testing.T) {
	// Perfectly separated 1-D clusters embed to purity 1.
	y := tensor.New(10, 2)
	labels := make([]int, 10)
	for i := 0; i < 10; i++ {
		cls := i / 5
		labels[i] = cls
		y.Set(float32(cls)*100+float32(i), i, 0)
	}
	if p := KNNPurity(y, labels, 3); p != 1 {
		t.Fatalf("purity = %v, want 1", p)
	}
	// Interleaved labels give low purity.
	for i := range labels {
		labels[i] = i % 2
	}
	if p := KNNPurity(y, labels, 3); p > 0.6 {
		t.Fatalf("interleaved purity = %v, want low", p)
	}
}

func TestKNNPurityClampsK(t *testing.T) {
	y := tensor.New(4, 2)
	labels := []int{0, 0, 1, 1}
	// k >= n must not panic.
	_ = KNNPurity(y, labels, 10)
}

func TestEmbedDeterministicBySeed(t *testing.T) {
	data, _ := blobs(5, 40, 8, 2, 5)
	cfg := DefaultConfig()
	cfg.Perplexity = 8
	cfg.Iters = 60
	a, err := Embed(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Embed(data, cfg)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must reproduce the same embedding")
		}
	}
}
