package ensemble

import (
	"testing"

	"nshd/internal/cnn"
	"nshd/internal/dataset"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

func tinyModel(seed int64, classes int) *cnn.Model {
	rng := tensor.NewRNG(seed)
	m := &cnn.Model{Name: "tiny", InShape: []int{3, 16, 16}, Classes: classes}
	m.Units = append(m.Units,
		cnn.Unit{Index: 0, Label: "conv0", Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, 8, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
		cnn.Unit{Index: 1, Label: "conv1", Layers: []nn.Layer{
			nn.NewConv2D(rng, 8, 16, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
	)
	m.Head = []nn.Layer{nn.NewFlatten(), nn.NewLinear(rng, 16*4*4, classes, true)}
	return m.Finish()
}

func setup(t *testing.T) (*dataset.Dataset, *dataset.Dataset, []*cnn.Model) {
	t.Helper()
	cfg := dataset.SynthConfig{Classes: 4, Train: 160, Test: 80, Size: 16, Noise: 0.2, Seed: 61}
	train, test := dataset.SynthCIFAR(cfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)
	var models []*cnn.Model
	for _, seed := range []int64{1, 2} {
		m := tinyModel(seed, 4)
		tr := &nn.Trainer{Epochs: 8, BatchSize: 16, Opt: nn.NewSGD(0.02, 0.9, 1e-4), ClipNorm: 5}
		tr.Fit(m.Full(), train.Images, train.Labels, tensor.NewRNG(seed+10))
		models = append(models, m)
	}
	return train, test, models
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("expected empty-member error")
	}
	a, b := tinyModel(1, 4), tinyModel(2, 5)
	if _, err := New([]*cnn.Model{a, b}, DefaultConfig()); err == nil {
		t.Fatal("expected class-mismatch error")
	}
	cfg := DefaultConfig()
	cfg.D = 2
	if _, err := New([]*cnn.Model{a}, cfg); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestEnsembleGluesMembers(t *testing.T) {
	train, test, models := setup(t)
	cfg := DefaultConfig()
	cfg.D = 1024
	cfg.Epochs = 5
	e, err := New(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(train, cfg, nil); err != nil {
		t.Fatal(err)
	}
	accE := e.Accuracy(test)
	accA := e.MemberAccuracy(0, test)
	accB := e.MemberAccuracy(1, test)
	if accA < 0.5 || accB < 0.5 {
		t.Fatalf("member teachers too weak for a meaningful test: %v %v", accA, accB)
	}
	worst := accA
	if accB < worst {
		worst = accB
	}
	// The glued model must at least hold its own against the weaker member.
	if accE < worst-0.1 {
		t.Fatalf("ensemble %.3f collapsed below members (%.3f, %.3f)", accE, accA, accB)
	}
}

func TestEnsembleEncodeBipolarAndDeterministic(t *testing.T) {
	_, test, models := setup(t)
	cfg := DefaultConfig()
	cfg.D = 512
	e, err := New(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h1 := e.Encode(test.Images)
	h2 := e.Encode(test.Images)
	for i := range h1.Data {
		if h1.Data[i] != h2.Data[i] {
			t.Fatal("encoding must be deterministic")
		}
		if h1.Data[i] != 1 && h1.Data[i] != -1 {
			t.Fatal("composite hypervectors must be bipolar")
		}
	}
}

func TestEnsembleDatasetMismatch(t *testing.T) {
	train, _, models := setup(t)
	cfg := DefaultConfig()
	cfg.D = 256
	e, _ := New(models, cfg)
	wrongCfg := dataset.SynthConfig{Classes: 6, Train: 12, Test: 6, Size: 16, Noise: 0.2, Seed: 62}
	wrong, _ := dataset.SynthCIFAR(wrongCfg)
	if _, err := e.Train(wrong, cfg, nil); err == nil {
		t.Fatal("expected class-count error")
	}
	_ = train
}
