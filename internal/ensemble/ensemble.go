// Package ensemble implements the symbolic model-gluing scheme of Sutor et
// al. [14] ("Gluing neural networks symbolically through hyperdimensional
// computing"), which the paper's related-work section positions NSHD
// against: each member CNN's prediction logits are projected into
// hyperspace, bound to a member-identity hypervector, and bundled into one
// composite query — so heterogeneous networks combine through pure HD
// algebra, without joint retraining.
//
// It reuses this repository's substrates end to end: the zoo CNNs produce
// logits, hdc supplies projections/binding, and hdlearn's classifier and
// MASS retraining close the loop.
package ensemble

import (
	"fmt"
	"io"

	"nshd/internal/cnn"
	"nshd/internal/dataset"
	"nshd/internal/hdc"
	"nshd/internal/hdlearn"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// Member is one glued network.
type Member struct {
	Model *cnn.Model
	// Proj maps the member's K logits into hyperspace.
	Proj *hdc.Projection
	// ID decorrelates members: the member's contribution is bound to it.
	ID hdc.Hypervector
}

// Ensemble glues member CNNs through HD computing.
type Ensemble struct {
	D, Classes int
	Members    []*Member
	HD         *hdlearn.Model
	rng        *tensor.RNG
}

// Config parameterizes the ensemble.
type Config struct {
	D      int
	Epochs int
	LR     float64
	Seed   int64
}

// DefaultConfig returns the usual HD settings.
func DefaultConfig() Config { return Config{D: 3000, Epochs: 8, LR: 0.35, Seed: 1} }

// New builds an ensemble over pretrained zoo models.
func New(models []*cnn.Model, cfg Config) (*Ensemble, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("ensemble: no member models")
	}
	if cfg.D < 16 {
		return nil, fmt.Errorf("ensemble: dimension %d", cfg.D)
	}
	classes := models[0].Classes
	for _, m := range models {
		if m.Classes != classes {
			return nil, fmt.Errorf("ensemble: member %s has %d classes, want %d", m.Name, m.Classes, classes)
		}
	}
	rng := tensor.NewRNG(cfg.Seed)
	e := &Ensemble{D: cfg.D, Classes: classes, HD: hdlearn.NewModel(classes, cfg.D), rng: rng}
	for _, m := range models {
		e.Members = append(e.Members, &Member{
			Model: m,
			Proj:  hdc.NewProjection(rng.Fork(), classes, cfg.D),
			ID:    hdc.RandomBipolar(rng, cfg.D),
		})
	}
	return e, nil
}

// Encode maps a batch of images to composite query hypervectors:
//
//	H = sign( Σ_m ID_m ⊗ sign(softmax(logits_m) · P_m) )
func (e *Ensemble) Encode(images *tensor.Tensor) *tensor.Tensor {
	n := images.Shape[0]
	acc := tensor.New(n, e.D)
	probs := make([]float32, e.Classes)
	for _, m := range e.Members {
		logits := nn.PredictLogits(m.Model.Full(), images, 32)
		soft := tensor.New(n, e.Classes)
		for i := 0; i < n; i++ {
			tensor.Softmax(probs, logits.Row(i))
			copy(soft.Row(i), probs)
		}
		_, signed := m.Proj.EncodeBatch(soft)
		for i := 0; i < n; i++ {
			row := hdc.Hypervector(signed.Row(i))
			bound := hdc.Bind(row, m.ID)
			hdc.BundleInto(hdc.Hypervector(acc.Row(i)), bound)
		}
	}
	return tensor.Sign(acc)
}

// Train bundles and MASS-retrains the composite classifier.
func (e *Ensemble) Train(train *dataset.Dataset, cfg Config, log io.Writer) ([]hdlearn.EpochStats, error) {
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.Classes != e.Classes {
		return nil, fmt.Errorf("ensemble: dataset has %d classes, ensemble %d", train.Classes, e.Classes)
	}
	hvs := e.Encode(train.Images)
	e.HD.InitBundle(hvs, train.Labels)
	hist := e.HD.TrainMASS(hvs, train.Labels, hdlearn.MASSConfig{
		Epochs: cfg.Epochs, LR: cfg.LR, Shuffle: true,
	}, e.rng)
	if log != nil {
		for _, h := range hist {
			fmt.Fprintf(log, "ensemble epoch %d acc=%.4f\n", h.Epoch, h.TrainAccuracy)
		}
	}
	return hist, nil
}

// Accuracy scores the glued model.
func (e *Ensemble) Accuracy(d *dataset.Dataset) float64 {
	return e.HD.Accuracy(e.Encode(d.Images), d.Labels)
}

// MemberAccuracy scores one member CNN alone, for comparison.
func (e *Ensemble) MemberAccuracy(i int, d *dataset.Dataset) float64 {
	return nn.Evaluate(e.Members[i].Model.Full(), d.Images, d.Labels, 32)
}
