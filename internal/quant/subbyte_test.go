package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeInt4Row(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	row := make([]float32, 300)
	for i := range row {
		row[i] = float32(rng.NormFloat64())
	}
	dst := make([]int8, len(row))
	scale := QuantizeInt4Row(dst, row)
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	var maxAbs float64
	for i, v := range row {
		if dst[i] < -7 || dst[i] > 7 {
			t.Fatalf("dst[%d] = %d outside int4 range", i, dst[i])
		}
		if got := math.Round(float64(v / scale)); got <= 7 && got >= -7 && int8(got) != dst[i] {
			t.Fatalf("dst[%d] = %d, want round(%v/%v) = %v", i, dst[i], v, scale, got)
		}
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	if want := float32(maxAbs / 7); scale != want {
		t.Fatalf("scale = %v, want maxabs/7 = %v", scale, want)
	}

	// Determinism: same row, same output.
	dst2 := make([]int8, len(row))
	if s2 := QuantizeInt4Row(dst2, row); s2 != scale {
		t.Fatalf("second scale %v != %v", s2, scale)
	}
	for i := range dst {
		if dst[i] != dst2[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}

	// All-zero row: scale 1, all zeros.
	zero := make([]float32, 8)
	if s := QuantizeInt4Row(dst[:8], zero); s != 1 {
		t.Fatalf("zero-row scale = %v", s)
	}
}

func TestQuantizeTernaryRow(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	row := make([]float32, 500)
	for i := range row {
		row[i] = float32(rng.NormFloat64())
	}
	dst := make([]int8, len(row))
	scale := QuantizeTernaryRow(dst, row)
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	var sumAbs float64
	for _, v := range row {
		sumAbs += math.Abs(float64(v))
	}
	thresh := TernaryThresholdFactor * sumAbs / float64(len(row))
	var keptAbs float64
	kept := 0
	for i, v := range row {
		a := math.Abs(float64(v))
		switch {
		case a <= thresh:
			if dst[i] != 0 {
				t.Fatalf("dst[%d] = %d for |v| %v ≤ τ %v", i, dst[i], a, thresh)
			}
		case v > 0:
			if dst[i] != 1 {
				t.Fatalf("dst[%d] = %d for v = %v > τ", i, dst[i], v)
			}
			keptAbs += a
			kept++
		default:
			if dst[i] != -1 {
				t.Fatalf("dst[%d] = %d for v = %v < −τ", i, dst[i], v)
			}
			keptAbs += a
			kept++
		}
	}
	if kept == 0 {
		t.Fatal("threshold zeroed every value — bad test data")
	}
	if want := float32(keptAbs / float64(kept)); scale != want {
		t.Fatalf("scale = %v, want mean kept magnitude %v", scale, want)
	}

	// All-zero row: scale 1, all zeros.
	zero := make([]float32, 8)
	if s := QuantizeTernaryRow(dst[:8], zero); s != 1 {
		t.Fatalf("zero-row scale = %v", s)
	}
	for i := 0; i < 8; i++ {
		if dst[i] != 0 {
			t.Fatalf("zero-row dst[%d] = %d", i, dst[i])
		}
	}
}
