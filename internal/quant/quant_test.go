package quant

import (
	"math"
	"testing"
	"testing/quick"

	"nshd/internal/hdlearn"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

func TestQuantizeRoundTripErrorBound(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(1000)
	rng.FillNormal(x, 0, 3)
	q := Quantize(x)
	d := q.Dequantize()
	bound := float64(q.MaxAbsError()) + 1e-6
	for i := range x.Data {
		if math.Abs(float64(x.Data[i]-d.Data[i])) > bound {
			t.Fatalf("reconstruction error %v exceeds bound %v", x.Data[i]-d.Data[i], bound)
		}
	}
}

func TestQuantizeZeroTensor(t *testing.T) {
	x := tensor.New(8)
	q := Quantize(x)
	for _, v := range q.Data {
		if v != 0 {
			t.Fatal("zero tensor must quantize to zeros")
		}
	}
	if q.Scale != 1 {
		t.Fatalf("zero tensor scale = %v", q.Scale)
	}
}

func TestQuantizeExtremesSaturate(t *testing.T) {
	x := tensor.FromSlice([]float32{-127, 127}, 2)
	q := Quantize(x)
	if q.Data[0] != -127 || q.Data[1] != 127 {
		t.Fatalf("quantized extremes %v", q.Data)
	}
}

// Property: quantize∘dequantize is idempotent (a second round trip changes
// nothing).
func TestQuantizeIdempotentProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true
			}
		}
		x := tensor.FromSlice(append([]float32(nil), vals...), len(vals))
		d1 := Quantize(x).Dequantize()
		d2 := Quantize(d1).Dequantize()
		for i := range d1.Data {
			if math.Abs(float64(d1.Data[i]-d2.Data[i])) > 1e-4*math.Max(1, math.Abs(float64(d1.Data[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFakeQuantizeRestores(t *testing.T) {
	rng := tensor.NewRNG(2)
	model := nn.NewSequential("q",
		nn.NewConv2D(rng, 1, 4, 3, 1, 1, true),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewLinear(rng, 4*4*4, 3, true),
	)
	before := append([]float32(nil), model.Params()[0].W.Data...)
	restore := FakeQuantize(model)
	changed := false
	for i, v := range model.Params()[0].W.Data {
		if v != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("fake quantization should perturb weights (generically)")
	}
	restore()
	for i, v := range model.Params()[0].W.Data {
		if v != before[i] {
			t.Fatal("restore must recover original weights exactly")
		}
	}
}

func TestFakeQuantizeOutputsStayClose(t *testing.T) {
	rng := tensor.NewRNG(3)
	model := nn.NewSequential("q",
		nn.NewConv2D(rng, 1, 4, 3, 1, 1, true),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewLinear(rng, 4*6*6, 3, true),
	)
	x := tensor.New(4, 1, 6, 6)
	tensor.NewRNG(4).FillNormal(x, 0, 1)
	want := model.Forward(x, false)
	restore := FakeQuantize(model)
	got := model.Forward(x, false)
	restore()
	var num, den float64
	for i := range want.Data {
		d := float64(want.Data[i] - got.Data[i])
		num += d * d
		den += float64(want.Data[i]) * float64(want.Data[i])
	}
	if den == 0 {
		t.Skip("degenerate output")
	}
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Fatalf("int8 weight round-trip changed outputs by %v (rel L2)", rel)
	}
}

func TestQuantizedHDTracksFloatPredictions(t *testing.T) {
	// Build an HD model from prototype-noise data and verify the integer
	// path agrees with the float cosine path almost always.
	const k, d, n = 5, 1024, 100
	rng := tensor.NewRNG(5)
	protos := make([][]float32, k)
	for i := range protos {
		p := tensor.New(d)
		rng.FillBipolar(p)
		protos[i] = p.Data
	}
	hvs := tensor.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		y := i % k
		labels[i] = y
		row := hvs.Row(i)
		copy(row, protos[y])
		for j := range row {
			if rng.Float64() < 0.25 {
				row[j] = -row[j]
			}
		}
	}
	m := hdlearn.NewModel(k, d)
	m.InitBundle(hvs, labels)
	m.TrainMASS(hvs, labels, hdlearn.MASSConfig{Epochs: 3, LR: 0.3}, nil)

	q := QuantizeHD(m)
	gotQ, err := q.PredictBatch(hvs)
	if err != nil {
		t.Fatal(err)
	}
	gotF := m.PredictBatch(hvs)
	agree := 0
	for i := range gotF {
		if gotF[i] == gotQ[i] {
			agree++
		}
	}
	if float64(agree)/float64(n) < 0.97 {
		t.Fatalf("int8 HD path agrees with float on only %d/%d", agree, n)
	}
	if q.MemoryBytes() != k*d {
		t.Fatalf("MemoryBytes = %d", q.MemoryBytes())
	}
}

func TestQuantizedHDShapeError(t *testing.T) {
	m := hdlearn.NewModel(2, 64)
	q := QuantizeHD(m)
	if _, err := q.PredictBatch(tensor.New(3, 32)); err == nil {
		t.Fatal("expected shape error")
	}
}

// TestFakeQuantizeRestoreIdempotent is the regression test for the
// double-restore hazard: a second restore call must be a no-op, so weight
// changes made after the first restore (e.g. continued training) survive a
// deferred restore firing later.
func TestFakeQuantizeRestoreIdempotent(t *testing.T) {
	rng := tensor.NewRNG(6)
	model := nn.NewSequential("q",
		nn.NewLinear(rng, 8, 4, true),
	)
	w := model.Params()[0].W.Data
	restore := FakeQuantize(model)
	restore()

	// Simulate post-restore training: perturb the weights.
	after := append([]float32(nil), w...)
	for i := range w {
		w[i] += float32(i) + 1
		after[i] = w[i]
	}

	restore() // second call must NOT clobber the new weights
	for i, v := range w {
		if v != after[i] {
			t.Fatalf("second restore clobbered weights: w[%d]=%v, want %v", i, v, after[i])
		}
	}
}

func TestQuantizedHDEmptyModelError(t *testing.T) {
	for _, q := range []*HDModel8{{K: 0, D: 64}, {K: 3, D: 0}, {}} {
		if _, err := q.PredictBatch(tensor.New(2, q.D)); err == nil {
			t.Fatalf("empty model K=%d D=%d must error, not panic", q.K, q.D)
		}
	}
}

// TestQuantizedHDParallelMatchesSerial checks the worker-pool split of
// PredictBatch against an inline serial re-computation.
func TestQuantizedHDParallelMatchesSerial(t *testing.T) {
	const k, d, n = 7, 512, 300
	rng := tensor.NewRNG(9)
	m := hdlearn.NewModel(k, d)
	hvs := tensor.New(n, d)
	rng.FillBipolar(hvs)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % k
	}
	m.InitBundle(hvs, labels)
	q := QuantizeHD(m)

	got, err := q.PredictBatch(hvs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := hvs.Row(i)
		best := int32(math.MinInt32)
		bestK := 0
		for c := 0; c < q.K; c++ {
			var acc int32
			cls := q.Rows[c]
			for j, v := range row {
				if v >= 0 {
					acc += int32(cls[j])
				} else {
					acc -= int32(cls[j])
				}
			}
			if acc > best {
				best, bestK = acc, c
			}
		}
		if got[i] != bestK {
			t.Fatalf("query %d: parallel %d, serial %d", i, got[i], bestK)
		}
	}
}
