// Package quant implements the post-training int8 quantization the paper's
// FPGA flow applies through Vitis AI (Sec. VI-B: "the Vitis AI framework
// quantizes the given model ... the quantization has very minor impacts on
// the prediction quality").
//
// Two mechanisms are provided:
//
//   - fake quantization: every CNN/manifold weight tensor is round-tripped
//     through symmetric per-tensor int8, measuring the accuracy effect of
//     deploying the float graph on an int8 MAC array;
//   - an integer HD inference path: class hypervectors quantized to int8 and
//     compared against bipolar queries with pure int32 arithmetic, matching
//     the binary/integer datapath of the DPU HD unit.
package quant

import (
	"fmt"
	"math"

	"nshd/internal/hdlearn"
	"nshd/internal/nn"
	"nshd/internal/parallel"
	"nshd/internal/tensor"
)

// Tensor8 is a symmetric per-tensor int8 quantization of a float tensor:
// value ≈ Scale · int8.
type Tensor8 struct {
	Data  []int8
	Scale float32
	Shape []int
}

// Quantize maps t to int8 with the scale chosen from the absolute maximum.
// An all-zero tensor quantizes to scale 1 (all zeros).
func Quantize(t *tensor.Tensor) *Tensor8 {
	var maxAbs float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	q := &Tensor8{Data: make([]int8, t.Len()), Scale: scale, Shape: append([]int(nil), t.Shape...)}
	for i, v := range t.Data {
		r := math.Round(float64(v / scale))
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		q.Data[i] = int8(r)
	}
	return q
}

// Dequantize expands the int8 tensor back to float32.
func (q *Tensor8) Dequantize() *tensor.Tensor {
	t := tensor.New(q.Shape...)
	for i, v := range q.Data {
		t.Data[i] = float32(v) * q.Scale
	}
	return t
}

// MaxAbsError returns the worst-case absolute reconstruction error bound for
// the quantization: scale/2.
func (q *Tensor8) MaxAbsError() float32 { return q.Scale / 2 }

// FakeQuantize round-trips every parameter of a model through int8 in
// place, returning a restore function that puts the original float weights
// back. Batch-norm running statistics are left untouched (the DPU folds them
// into the convolutions at full precision).
//
// The restore function is idempotent: only the first call writes the saved
// weights back, so calling it again — e.g. once via defer and once
// explicitly, a pattern that otherwise silently clobbers any training done
// after the first restore — is a no-op.
func FakeQuantize(model *nn.Sequential) (restore func()) {
	return FakeQuantizeParams(model.Params())
}

// FakeQuantizeParams round-trips an explicit parameter list (e.g. the
// manifold learner's FC weights). The restore function is idempotent; see
// FakeQuantize.
func FakeQuantizeParams(params []*nn.Param) (restore func()) {
	var originals [][]float32
	for _, p := range params {
		originals = append(originals, append([]float32(nil), p.W.Data...))
		q := Quantize(p.W)
		d := q.Dequantize()
		copy(p.W.Data, d.Data)
	}
	restored := false
	return func() {
		if restored {
			return
		}
		restored = true
		for i, p := range params {
			copy(p.W.Data, originals[i])
		}
	}
}

// HDModel8 is the integer inference form of an HD classifier: row-normalized
// class hypervectors quantized to int8, compared to bipolar queries with an
// int32 dot product. Row normalization before quantization makes the integer
// argmax track the float cosine argmax.
type HDModel8 struct {
	K, D int
	Rows [][]int8
	// Scales holds the per-row quantization scales (diagnostic only — the
	// argmax is scale-invariant after row normalization).
	Scales []float32
}

// QuantizeHD converts a trained HD classifier to the integer path.
func QuantizeHD(m *hdlearn.Model) *HDModel8 {
	q := &HDModel8{K: m.K, D: m.D, Rows: make([][]int8, m.K), Scales: make([]float32, m.K)}
	for k := 0; k < m.K; k++ {
		row := append([]float32(nil), m.M.Row(k)...)
		// Normalize, then quantize.
		var norm float64
		for _, v := range row {
			norm += float64(v) * float64(v)
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			inv := float32(1 / norm)
			for i := range row {
				row[i] *= inv
			}
		}
		t8 := Quantize(tensor.FromSlice(row, m.D))
		q.Rows[k] = t8.Data
		q.Scales[k] = t8.Scale
	}
	return q
}

// PredictBatch classifies bipolar query hypervectors ([N, D] of ±1) using
// int32 arithmetic only, parallelized over queries (each query's K·D scoring
// loop is independent, so the split cannot change any result).
func (q *HDModel8) PredictBatch(signed *tensor.Tensor) ([]int, error) {
	if q.K <= 0 || q.D <= 0 {
		return nil, fmt.Errorf("quant: empty HD model (K=%d, D=%d)", q.K, q.D)
	}
	if signed.Rank() != 2 || signed.Shape[1] != q.D {
		return nil, fmt.Errorf("quant: queries shape %v, want [N %d]", signed.Shape, q.D)
	}
	n := signed.Shape[0]
	out := make([]int, n)
	// One query costs K·D adds; batch enough per task to amortize dispatch.
	grain := 1
	if cost := q.K * q.D; cost > 0 && cost < minBatchWork {
		grain = (minBatchWork + cost - 1) / cost
	}
	parallel.ForGrain(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := signed.Row(i)
			best := int32(math.MinInt32)
			bestK := 0
			for k := 0; k < q.K; k++ {
				var acc int32
				cls := q.Rows[k]
				for j, v := range row {
					// v is ±1: add or subtract, the FPGA datapath's operation.
					if v >= 0 {
						acc += int32(cls[j])
					} else {
						acc -= int32(cls[j])
					}
				}
				if acc > best {
					best, bestK = acc, k
				}
			}
			out[i] = bestK
		}
	})
	return out, nil
}

// minBatchWork is the per-task floor of add/sub operations below which pool
// dispatch overhead would dominate a PredictBatch task.
const minBatchWork = 1 << 15

// MemoryBytes is the int8 model footprint.
func (q *HDModel8) MemoryBytes() int64 { return int64(q.K) * int64(q.D) }
