package quant

import (
	"fmt"
	"math"
	"sort"

	"nshd/internal/tensor"
)

// Real int8 datapath support: per-output-channel weight quantization,
// activation calibration observers, and the int32→int8 requantization
// helper. These produce the parameters the engine's quantized layers
// (nn.Int8Conv2D / nn.Int8Linear) consume; the arithmetic they describe is
// executed by the kernels in internal/tensor.
//
// Conventions (the ones Vitis AI, gemmlowp and TFLite share):
//
//   - activations: unsigned 8-bit, asymmetric — real = S·(q − Z) with scale
//     S > 0 and zero-point Z ∈ [0,255] chosen so real 0.0 is exactly
//     representable (padding and ReLU clamps then introduce no error);
//   - weights: signed 8-bit, symmetric per output channel — real = S_c·w,
//     w ∈ [−127,127] (−128 unused, keeping the magnitude range symmetric);
//   - accumulation: int32, exact;
//   - requantization: one multiply per output element by the combined scale
//     S_in·S_w[c]/S_out, rounding half away from zero.

// Channels8 is a per-output-channel symmetric int8 quantization of a weight
// matrix flattened to [Rows, Cols]: row r holds output channel r and
// dequantizes as real = Scales[r] · int8.
type Channels8 struct {
	Data   []int8
	Scales []float32
	Rows   int
	Cols   int
}

// QuantizeChannels quantizes a weight tensor per output channel: the first
// dimension indexes channels (Conv2D [OutC,InC,KH,KW], Linear [Out,In]) and
// each channel gets its own maxabs/127 scale — the layout int8 inference
// stacks use because conv channels routinely differ by orders of magnitude
// in weight range, which a per-tensor scale would collapse to a few levels.
// An all-zero channel quantizes to scale 1.
func QuantizeChannels(w *tensor.Tensor) *Channels8 {
	if w.Rank() < 1 {
		panic("quant: QuantizeChannels requires rank ≥ 1")
	}
	rows := w.Shape[0]
	cols := 1
	for _, s := range w.Shape[1:] {
		cols *= s
	}
	q := &Channels8{Data: make([]int8, rows*cols), Scales: make([]float32, rows), Rows: rows, Cols: cols}
	for r := 0; r < rows; r++ {
		src := w.Data[r*cols : (r+1)*cols]
		var maxAbs float32
		for _, v := range src {
			a := v
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		q.Scales[r] = scale
		dst := q.Data[r*cols : (r+1)*cols]
		for i, v := range src {
			x := math.Round(float64(v / scale))
			if x > 127 {
				x = 127
			}
			if x < -127 {
				x = -127
			}
			dst[i] = int8(x)
		}
	}
	return q
}

// Observer accumulates the value distribution of one activation boundary
// over a calibration batch and reports the range to quantize for.
type Observer interface {
	Observe(vals []float32)
	// Range returns the calibrated (lo, hi). Implementations must return a
	// range that is usable even if nothing was observed (0, 0 is fine:
	// ActQuant widens degenerate ranges).
	Range() (lo, hi float32)
}

// MinMaxObserver tracks the exact observed minimum and maximum — the
// conservative default: no value ever clips, at the cost of resolution when
// the distribution has long tails.
type MinMaxObserver struct {
	lo, hi float32
	seen   bool
}

// Observe folds a slice of activations into the running range.
func (o *MinMaxObserver) Observe(vals []float32) {
	for _, v := range vals {
		if !o.seen {
			o.lo, o.hi, o.seen = v, v, true
			continue
		}
		if v < o.lo {
			o.lo = v
		}
		if v > o.hi {
			o.hi = v
		}
	}
}

// Range returns the observed extrema (0,0 before any observation).
func (o *MinMaxObserver) Range() (float32, float32) { return o.lo, o.hi }

// maxPercentileSamples bounds PercentileObserver memory. When the reservoir
// fills, the stride doubles and every other retained sample is dropped —
// deterministic uniform subsampling with no RNG, so calibration is
// reproducible run-to-run.
const maxPercentileSamples = 1 << 16

// PercentileObserver keeps a bounded deterministic subsample of the observed
// values and clips (100−Pct)/2 percent of the mass off each tail — trading a
// little saturation on outliers for finer resolution in the bulk of the
// distribution (the calibration mode to reach for when MinMax scales are
// blown out by a few extreme activations).
type PercentileObserver struct {
	// Pct is the central percentile to cover, e.g. 99.9. Values ≤ 0 or
	// ≥ 100 behave like MinMax.
	Pct     float64
	samples []float32
	stride  int
	phase   int
}

// Observe folds a slice of activations into the reservoir.
func (o *PercentileObserver) Observe(vals []float32) {
	if o.stride == 0 {
		o.stride = 1
	}
	for _, v := range vals {
		if o.phase == 0 {
			if len(o.samples) == maxPercentileSamples {
				// Decimate: keep every other sample, double the stride.
				kept := o.samples[:0]
				for i := 0; i < len(o.samples); i += 2 {
					kept = append(kept, o.samples[i])
				}
				o.samples = kept
				o.stride *= 2
			}
			o.samples = append(o.samples, v)
		}
		o.phase++
		if o.phase == o.stride {
			o.phase = 0
		}
	}
}

// Range returns the clipped percentile range of the subsample.
func (o *PercentileObserver) Range() (float32, float32) {
	if len(o.samples) == 0 {
		return 0, 0
	}
	s := append([]float32(nil), o.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if o.Pct <= 0 || o.Pct >= 100 {
		return s[0], s[len(s)-1]
	}
	tail := (100 - o.Pct) / 2 / 100
	loIdx := int(tail * float64(len(s)))
	hiIdx := len(s) - 1 - loIdx
	if loIdx > hiIdx {
		loIdx, hiIdx = hiIdx, loIdx
	}
	return s[loIdx], s[hiIdx]
}

// ActQuant converts a calibrated activation range into u8 quantization
// parameters. The range is first widened to include 0 so the zero-point is
// exact; a degenerate range gets scale 1.
func ActQuant(lo, hi float32) (scale float32, zero uint8) {
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	scale = (hi - lo) / 255
	if scale <= 0 || math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) {
		return 1, 0
	}
	z := tensor.RoundAway(-lo / scale)
	if z < 0 {
		z = 0
	} else if z > 255 {
		z = 255
	}
	return scale, uint8(z)
}

// Requantizer maps int32 accumulators back to the quantized output domain:
// out ≈ round(acc · real) where real = S_in·S_w/S_out. It carries the same
// mapping in two forms:
//
//   - Scale: the float32 multiplier the Go/SIMD datapath applies
//     (tensor.RequantizeU8Row) — one mul + round per element;
//   - Mult/Shift: the normalized fixed-point form (mantissa in [2^30, 2^31),
//     out = (acc·Mult + 2^(Shift−1)) >> Shift) that a DSP or FPGA datapath
//     with no float unit would use, kept here as the audited reference.
//
// The two agree within one output step across the entire operating range
// (|acc·real| up to ~2^20, far beyond the [0,255] clamp that bounds real
// outputs; ties round differently, and beyond that range float32 mantissa
// precision stops resolving single steps). The property test in
// quant8_test.go pins that bound.
type Requantizer struct {
	Scale float32
	Mult  int32
	Shift uint
}

// NewRequantizer builds both forms from the combined real-valued scale,
// which must be positive and finite.
func NewRequantizer(real float64) (Requantizer, error) {
	if !(real > 0) || math.IsInf(real, 0) {
		return Requantizer{}, fmt.Errorf("quant: requantizer scale %g, want positive finite", real)
	}
	frac, exp := math.Frexp(real) // real = frac·2^exp, frac ∈ [0.5, 1)
	mult := int64(math.Round(frac * (1 << 31)))
	if mult == 1<<31 { // frac rounded up to 1.0
		mult >>= 1
		exp++
	}
	shift := 31 - exp
	// Degenerate magnitudes: clamp the shift into the usable window rather
	// than failing — scales this extreme only arise from pathological
	// calibration and saturate to 0 or the clamp bounds anyway.
	for shift < 1 {
		mult <<= 1
		shift++
		if mult > math.MaxInt32 {
			mult = math.MaxInt32
		}
	}
	for shift > 62 {
		mult >>= 1
		shift--
	}
	if mult < 1 {
		mult = 1
	}
	return Requantizer{Scale: float32(real), Mult: int32(mult), Shift: uint(shift)}, nil
}

// Apply rounds acc·Scale half away from zero — the exact arithmetic of the
// serving datapath (tensor.RequantizeU8Row before zero-point and clamping).
func (r Requantizer) Apply(acc int32) int32 {
	return tensor.RoundAway(float32(acc) * r.Scale)
}

// ApplyFixed is the integer-only multiplier+shift form.
func (r Requantizer) ApplyFixed(acc int32) int32 {
	p := int64(acc) * int64(r.Mult)
	if p >= 0 {
		return int32((p + 1<<(r.Shift-1)) >> r.Shift)
	}
	return int32(-((-p + 1<<(r.Shift-1)) >> r.Shift))
}
