package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nshd/internal/tensor"
)

func TestQuantizeChannelsPerRowScales(t *testing.T) {
	// Two channels with ranges three orders of magnitude apart: per-channel
	// scales must preserve both, where a per-tensor scale would flatten the
	// small channel to ~0 levels.
	w := tensor.FromSlice([]float32{
		100, -50, 25, 0,
		0.1, -0.05, 0.025, 0,
	}, 2, 4)
	q := QuantizeChannels(w)
	if q.Rows != 2 || q.Cols != 4 {
		t.Fatalf("shape %dx%d", q.Rows, q.Cols)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			got := float32(q.Data[r*4+c]) * q.Scales[r]
			want := w.Data[r*4+c]
			bound := q.Scales[r] / 2
			if d := got - want; d > bound+1e-7 || d < -bound-1e-7 {
				t.Fatalf("channel %d col %d: dequant %g, want %g ± %g", r, c, got, want, bound)
			}
		}
	}
	if q.Data[0] != 127 {
		t.Fatalf("max element must hit full scale, got %d", q.Data[0])
	}
	// Conv-shaped weights flatten trailing dims into Cols.
	cw := tensor.New(8, 3, 3, 3)
	for i := range cw.Data {
		cw.Data[i] = float32(i%13) - 6
	}
	cq := QuantizeChannels(cw)
	if cq.Rows != 8 || cq.Cols != 27 {
		t.Fatalf("conv quant shape %dx%d, want 8x27", cq.Rows, cq.Cols)
	}
	// All-zero channel gets scale 1.
	zw := tensor.New(1, 4)
	zq := QuantizeChannels(zw)
	if zq.Scales[0] != 1 {
		t.Fatalf("zero channel scale %g, want 1", zq.Scales[0])
	}
}

func TestObservers(t *testing.T) {
	var mm MinMaxObserver
	mm.Observe([]float32{3, -2, 0.5})
	mm.Observe([]float32{7, -1})
	if lo, hi := mm.Range(); lo != -2 || hi != 7 {
		t.Fatalf("minmax range (%g, %g), want (-2, 7)", lo, hi)
	}

	// Percentile clips outliers that would dominate a MinMax scale.
	pc := &PercentileObserver{Pct: 98}
	vals := make([]float32, 1000)
	for i := range vals {
		vals[i] = float32(i) / 1000 // uniform [0, 1)
	}
	vals[500] = 1e6 // one wild outlier
	pc.Observe(vals)
	_, hi := pc.Range()
	if hi > 10 {
		t.Fatalf("percentile hi %g still dominated by the outlier", hi)
	}
	var lo float32
	if lo, _ = pc.Range(); lo > 0.05 {
		t.Fatalf("percentile lo %g clipped too much", lo)
	}

	// The reservoir decimation keeps the range stable on long streams.
	big := &PercentileObserver{Pct: 100}
	chunk := make([]float32, 4096)
	for r := 0; r < 64; r++ {
		for i := range chunk {
			chunk[i] = float32(r*len(chunk)+i) * 1e-5
		}
		big.Observe(chunk)
	}
	blo, bhi := big.Range()
	if blo > 0.1 || bhi < 2.0 {
		t.Fatalf("decimated range (%g, %g) lost the distribution", blo, bhi)
	}
}

func TestActQuant(t *testing.T) {
	scale, zero := ActQuant(-1, 3)
	if scale <= 0 {
		t.Fatal("scale must be positive")
	}
	// Real zero must be exactly representable.
	if got := scale * (float32(zero) - float32(zero)); got != 0 {
		t.Fatalf("zero not exact: %g", got)
	}
	real0 := scale * (0 - float32(zero))
	if real0 < -1.02 || real0 > -0.98 {
		t.Fatalf("q=0 maps to %g, want ≈ -1", real0)
	}
	// Ranges not containing zero are widened to include it.
	scale, zero = ActQuant(2, 4)
	if zero != 0 {
		t.Fatalf("positive-only range zero-point %d, want 0", zero)
	}
	if scale*255 < 3.99 {
		t.Fatalf("widened range must still cover hi=4, covers %g", scale*255)
	}
	// Degenerate range.
	if s, z := ActQuant(0, 0); s != 1 || z != 0 {
		t.Fatalf("degenerate range got scale=%g zero=%d", s, z)
	}
}

// TestRequantizerFixedVsFloat pins the agreement between the float datapath
// form and the multiplier+shift reference: for random scales and
// accumulators they differ by at most one output step (tie rounding).
func TestRequantizerFixedVsFloat(t *testing.T) {
	f := func(accSeed int64, scaleSeed int64) bool {
		rng := rand.New(rand.NewSource(scaleSeed))
		scale := math.Exp(rng.Float64()*12 - 10) // ~[4.5e-5, 7.4]
		r, err := NewRequantizer(scale)
		if err != nil {
			return false
		}
		arng := rand.New(rand.NewSource(accSeed))
		for i := 0; i < 64; i++ {
			acc := int32(arng.Intn(1<<26) - 1<<25)
			if p := math.Abs(float64(acc) * scale); p > 1<<20 {
				// Outside the agreement domain: float32 mantissa precision
				// (2^24) no longer resolves single output steps. Requantized
				// outputs clamp to [0,255], so the datapath never goes there.
				continue
			}
			d := r.Apply(acc) - r.ApplyFixed(acc)
			if d > 1 || d < -1 {
				t.Logf("scale=%g acc=%d: float %d vs fixed %d", scale, acc, r.Apply(acc), r.ApplyFixed(acc))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRequantizerKnownValues(t *testing.T) {
	r, err := NewRequantizer(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Apply(10); got != 5 {
		t.Fatalf("0.5·10 = %d, want 5", got)
	}
	if got := r.ApplyFixed(10); got != 5 {
		t.Fatalf("fixed 0.5·10 = %d, want 5", got)
	}
	if got := r.Apply(-10); got != -5 {
		t.Fatalf("0.5·(-10) = %d, want -5", got)
	}
	if _, err := NewRequantizer(0); err == nil {
		t.Fatal("zero scale must be rejected")
	}
	if _, err := NewRequantizer(-1); err == nil {
		t.Fatal("negative scale must be rejected")
	}
	if _, err := NewRequantizer(math.Inf(1)); err == nil {
		t.Fatal("infinite scale must be rejected")
	}
}
