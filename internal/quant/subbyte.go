package quant

import "math"

// Sub-8-bit row quantizers for the compressed scorer (engine.Compress).
// Both operate per class row — class hypervector magnitudes differ enough
// that a per-tensor scale wastes most of a 4-bit grid — and both are
// deterministic pure functions of the input row, which is what keeps
// compressed engines bit-reproducible.

// QuantizeInt4Row maps one float row to int4 [−7, 7] symmetric offset grid,
// writing into dst and returning the scale (value ≈ scale · int4). An
// all-zero row gets scale 1.
func QuantizeInt4Row(dst []int8, row []float32) float32 {
	if len(dst) < len(row) {
		panic("quant: QuantizeInt4Row dst too short")
	}
	var maxAbs float32
	for _, v := range row {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 7
	if scale == 0 {
		scale = 1
	}
	for i, v := range row {
		r := math.Round(float64(v / scale))
		if r > 7 {
			r = 7
		}
		if r < -7 {
			r = -7
		}
		dst[i] = int8(r)
	}
	return scale
}

// TernaryThresholdFactor sets the dead zone of the ternary quantizer: values
// with |v| ≤ factor·mean|v| collapse to zero. 0.7·mean|v| is the standard
// TWN threshold (it minimizes the ℓ2 reconstruction error for
// approximately-normal weights), and the matching optimal scale is the mean
// magnitude of the surviving values.
const TernaryThresholdFactor = 0.7

// QuantizeTernaryRow maps one float row to {−1, 0, +1}, writing into dst and
// returning the scale (value ≈ scale · t). An all-zero row quantizes to all
// zeros with scale 1.
func QuantizeTernaryRow(dst []int8, row []float32) float32 {
	if len(dst) < len(row) {
		panic("quant: QuantizeTernaryRow dst too short")
	}
	var sumAbs float64
	for _, v := range row {
		sumAbs += math.Abs(float64(v))
	}
	if len(row) == 0 || sumAbs == 0 {
		for i := range dst[:len(row)] {
			dst[i] = 0
		}
		return 1
	}
	thresh := TernaryThresholdFactor * sumAbs / float64(len(row))
	var keptAbs float64
	kept := 0
	for i, v := range row {
		a := math.Abs(float64(v))
		switch {
		case a <= thresh:
			dst[i] = 0
		case v > 0:
			dst[i] = 1
			keptAbs += a
			kept++
		default:
			dst[i] = -1
			keptAbs += a
			kept++
		}
	}
	if kept == 0 {
		return 1
	}
	return float32(keptAbs / float64(kept))
}
