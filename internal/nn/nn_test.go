package nn

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"nshd/internal/tensor"
)

func TestCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits over K classes must give loss = ln(K).
	logits := tensor.New(2, 4)
	loss, grad := CrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform CE loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("CE grad row %d sums to %v", i, s)
		}
	}
	// Correct-class gradient must be negative.
	if grad.At(0, 0) >= 0 || grad.At(1, 3) >= 0 {
		t.Fatal("CE gradient at true label must be negative")
	}
}

func TestCrossEntropyConfidentPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float32{10, -10, -10}, 1, 3)
	loss, _ := CrossEntropy(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should give ~0 loss, got %v", loss)
	}
	lossWrong, _ := CrossEntropy(logits, []int{1})
	if lossWrong < 10 {
		t.Fatalf("confident wrong prediction should give large loss, got %v", lossWrong)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 2, 0,
		5, 1, 0,
		0, 0, 9,
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 2}); got != 1 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := Accuracy(logits, []int{0, 0, 2}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func TestDistillLossInterpolates(t *testing.T) {
	rng := tensor.NewRNG(1)
	student := tensor.New(4, 5)
	teacher := tensor.New(4, 5)
	rng.FillNormal(student, 0, 2)
	rng.FillNormal(teacher, 0, 2)
	labels := []int{0, 1, 2, 3}

	ceOnly, gradCE := DistillLoss(student, teacher, labels, 0, 4)
	wantCE, wantGradCE := CrossEntropy(student, labels)
	if math.Abs(ceOnly-wantCE) > 1e-6 {
		t.Fatalf("alpha=0 must reduce to CE: %v vs %v", ceOnly, wantCE)
	}
	for i := range gradCE.Data {
		if math.Abs(float64(gradCE.Data[i]-wantGradCE.Data[i])) > 1e-6 {
			t.Fatal("alpha=0 gradient must equal CE gradient")
		}
	}

	// alpha=1: gradient must vanish when student == teacher.
	_, g := DistillLoss(teacher.Clone(), teacher, labels, 1, 4)
	for _, v := range g.Data {
		if math.Abs(float64(v)) > 1e-5 {
			t.Fatalf("KL gradient must vanish at student==teacher, got %v", v)
		}
	}
}

func TestDistillGradientFiniteDiff(t *testing.T) {
	rng := tensor.NewRNG(2)
	student := tensor.New(2, 4)
	teacher := tensor.New(2, 4)
	rng.FillNormal(student, 0, 1)
	rng.FillNormal(teacher, 0, 1)
	labels := []int{1, 2}
	alpha, temp := 0.7, 3.0
	_, grad := DistillLoss(student, teacher, labels, alpha, temp)
	const eps = 1e-3
	for idx := 0; idx < student.Len(); idx++ {
		orig := student.Data[idx]
		student.Data[idx] = orig + eps
		lp, _ := DistillLoss(student, teacher, labels, alpha, temp)
		student.Data[idx] = orig - eps
		lm, _ := DistillLoss(student, teacher, labels, alpha, temp)
		student.Data[idx] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(grad.Data[idx])
		if !closeGrad(got, want, 5e-2) {
			t.Errorf("distill grad[%d] = %.5g, finite diff %.5g", idx, got, want)
		}
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-2.5) > 1e-6 {
		t.Fatalf("MSE = %v, want 2.5", loss)
	}
	if grad.Data[0] != 1 || grad.Data[1] != 2 {
		t.Fatalf("MSE grad = %v", grad.Data)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - c||² with SGD; w must approach c.
	p := newParam("w", 3)
	c := []float32{1, -2, 3}
	opt := NewSGD(0.1, 0.9, 0)
	for iter := 0; iter < 200; iter++ {
		p.ZeroGrad()
		for i := range p.W.Data {
			p.Grad.Data[i] = 2 * (p.W.Data[i] - c[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range c {
		if math.Abs(float64(p.W.Data[i]-c[i])) > 1e-3 {
			t.Fatalf("SGD failed to converge: w=%v", p.W.Data)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := newParam("w", 3)
	c := []float32{0.5, -1.5, 2.5}
	opt := NewAdam(0.05)
	for iter := 0; iter < 500; iter++ {
		p.ZeroGrad()
		for i := range p.W.Data {
			p.Grad.Data[i] = 2 * (p.W.Data[i] - c[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range c {
		if math.Abs(float64(p.W.Data[i]-c[i])) > 1e-2 {
			t.Fatalf("Adam failed to converge: w=%v", p.W.Data)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	var sq float64
	for _, g := range p.Grad.Data {
		sq += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(sq))
	}
	// Below the threshold nothing changes.
	before := append([]float32(nil), p.Grad.Data...)
	ClipGradNorm([]*Param{p}, 10)
	for i := range before {
		if p.Grad.Data[i] != before[i] {
			t.Fatal("clip must not rescale below threshold")
		}
	}
}

func TestBatchNormTrainVsEvalStats(t *testing.T) {
	bn := NewBatchNorm2D(2)
	rng := tensor.NewRNG(3)
	x := tensor.New(8, 2, 3, 3)
	rng.FillNormal(x, 5, 2) // far from standard so normalization is visible
	y := bn.Forward(x, true)
	// Per-channel mean of the normalized output must be ~0, std ~1
	// (gamma=1, beta=0 initially).
	for ch := 0; ch < 2; ch++ {
		var s, sq float64
		cnt := 0
		for i := 0; i < 8; i++ {
			base := (i*2 + ch) * 9
			for j := 0; j < 9; j++ {
				v := float64(y.Data[base+j])
				s += v
				sq += v * v
				cnt++
			}
		}
		mean := s / float64(cnt)
		std := math.Sqrt(sq/float64(cnt) - mean*mean)
		if math.Abs(mean) > 1e-4 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("train-mode BN channel %d: mean=%v std=%v", ch, mean, std)
		}
	}
	// After many training passes the running stats approximate the data
	// distribution, so eval mode also roughly normalizes.
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	ye := bn.Forward(x, false)
	if m := ye.Mean(); math.Abs(m) > 0.2 {
		t.Fatalf("eval-mode BN mean = %v, want ~0", m)
	}
}

func TestSequentialSliceSharesParams(t *testing.T) {
	rng := tensor.NewRNG(4)
	model := NewSequential("m",
		NewConv2D(rng, 1, 2, 3, 1, 1, true),
		NewReLU(),
		NewFlatten(),
		NewLinear(rng, 2*4*4, 3, true),
	)
	cut := model.Slice(2)
	if len(cut.Layers) != 2 {
		t.Fatalf("Slice kept %d layers", len(cut.Layers))
	}
	conv := model.Layers[0].(*Conv2D)
	conv.Weight.W.Data[0] = 42
	cutConv := cut.Layers[0].(*Conv2D)
	if cutConv.Weight.W.Data[0] != 42 {
		t.Fatal("Slice must share parameters with the original")
	}
}

func TestStatsKnownCounts(t *testing.T) {
	rng := tensor.NewRNG(5)
	conv := NewConv2D(rng, 3, 16, 3, 1, 1, false)
	s := conv.Stats([]int{3, 32, 32})
	// 32*32 output positions × 16 out channels × 27 kernel elems.
	want := int64(32*32) * 16 * 27
	if s.MACs != want {
		t.Fatalf("conv MACs = %d, want %d", s.MACs, want)
	}
	if s.Params != 16*3*3*3 {
		t.Fatalf("conv params = %d", s.Params)
	}
	lin := NewLinear(rng, 100, 10, true)
	ls := lin.Stats([]int{100})
	if ls.MACs != 1000 || ls.Params != 1010 {
		t.Fatalf("linear stats = %+v", ls)
	}
}

func TestSequentialStatsAccumulate(t *testing.T) {
	rng := tensor.NewRNG(6)
	model := NewSequential("m",
		NewConv2D(rng, 1, 4, 3, 1, 1, false),
		NewMaxPool2D(2),
		NewFlatten(),
		NewLinear(rng, 4*2*2, 2, false),
	)
	total := model.Stats([]int{1, 4, 4})
	conv := int64(4*4) * 4 * 9
	lin := int64(16 * 2)
	if total.MACs != conv+lin {
		t.Fatalf("total MACs = %d, want %d", total.MACs, conv+lin)
	}
	if model.ParamCount() != 4*9+16*2 {
		t.Fatalf("ParamCount = %d", model.ParamCount())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	build := func() *Sequential {
		rng := tensor.NewRNG(7) // deterministic topology+init
		return NewSequential("snap",
			NewConv2D(rng, 1, 2, 3, 1, 1, true),
			NewBatchNorm2D(2),
			NewReLU(),
			NewFlatten(),
			NewLinear(rng, 2*4*4, 3, true),
		)
	}
	m1 := build()
	// Mutate m1's state away from init.
	rng := tensor.NewRNG(8)
	for _, p := range m1.Params() {
		rng.FillNormal(p.W, 0, 1)
	}
	bn := m1.Layers[1].(*BatchNorm2D)
	bn.RunMean.Data[0] = 1.5
	bn.RunVar.Data[1] = 2.5

	path := filepath.Join(t.TempDir(), "model.gob")
	if err := SaveModel(m1, path); err != nil {
		t.Fatal(err)
	}
	m2 := build()
	if err := LoadModel(m2, path); err != nil {
		t.Fatal(err)
	}
	x := randInput(9, 2, 1, 4, 4)
	y1 := m1.Forward(x, false)
	y2 := m2.Forward(x, false)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("restored model diverges at output %d: %v vs %v", i, y1.Data[i], y2.Data[i])
		}
	}
	bn2 := m2.Layers[1].(*BatchNorm2D)
	if bn2.RunMean.Data[0] != 1.5 || bn2.RunVar.Data[1] != 2.5 {
		t.Fatal("batch-norm running stats not restored")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	rng := tensor.NewRNG(10)
	m := NewSequential("x", NewLinear(rng, 2, 2, false))
	if err := LoadModel(m, filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadModelTopologyMismatch(t *testing.T) {
	rng := tensor.NewRNG(11)
	m1 := NewSequential("a", NewLinear(rng, 2, 2, false))
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := SaveModel(m1, path); err != nil {
		t.Fatal(err)
	}
	m2 := NewSequential("b", NewLinear(rng, 3, 3, false))
	if err := LoadModel(m2, path); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("snapshot file should still exist")
	}
}

func TestTrainerLearnsToyProblem(t *testing.T) {
	// Two linearly separable blobs rendered as 1x4x4 "images": class 0 bright
	// top-left, class 1 bright bottom-right. A tiny CNN must reach high
	// train accuracy in a few epochs.
	rng := tensor.NewRNG(12)
	n := 64
	images := tensor.New(n, 1, 4, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for h := 0; h < 4; h++ {
			for w := 0; w < 4; w++ {
				v := float32(rng.NormFloat64()) * 0.1
				if cls == 0 && h < 2 && w < 2 {
					v += 1
				}
				if cls == 1 && h >= 2 && w >= 2 {
					v += 1
				}
				images.Set(v, i, 0, h, w)
			}
		}
	}
	model := NewSequential("toy",
		NewConv2D(rng, 1, 4, 3, 1, 1, true),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewLinear(rng, 4*2*2, 2, true),
	)
	tr := &Trainer{Epochs: 15, BatchSize: 16, Opt: NewSGD(0.1, 0.9, 0)}
	hist := tr.Fit(model, images, labels, rng)
	final := hist[len(hist)-1]
	if final.Accuracy < 0.95 {
		t.Fatalf("toy problem not learned: final acc %v", final.Accuracy)
	}
	if acc := Evaluate(model, images, labels, 16); acc < 0.95 {
		t.Fatalf("eval accuracy %v", acc)
	}
	// Loss must decrease substantially from epoch 1 to the end.
	if hist[0].Loss <= final.Loss {
		t.Fatalf("loss did not decrease: %v -> %v", hist[0].Loss, final.Loss)
	}
}

func TestPredictLogitsMatchesDirectForward(t *testing.T) {
	rng := tensor.NewRNG(13)
	model := NewSequential("p",
		NewFlatten(),
		NewLinear(rng, 8, 3, true),
	)
	x := randInput(14, 10, 2, 2, 2)
	got := PredictLogits(model, x, 3) // odd batch size exercises the tail
	want := model.Forward(x, false)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-6 {
			t.Fatalf("PredictLogits differs at %d", i)
		}
	}
}

func TestStepDecaySchedule(t *testing.T) {
	sched := StepDecay(0.1, 0.5, 3)
	wants := map[int]float64{1: 0.1, 3: 0.1, 4: 0.05, 6: 0.05, 7: 0.025}
	for e, want := range wants {
		if got := sched(e); math.Abs(got-want) > 1e-12 {
			t.Fatalf("StepDecay(%d) = %v, want %v", e, got, want)
		}
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	sched := CosineDecay(0.1, 0.001, 10)
	if got := sched(1); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("cosine start = %v", got)
	}
	if got := sched(10); got >= sched(5) {
		t.Fatalf("cosine must decay: %v vs %v", got, sched(5))
	}
	if got := sched(100); got != 0.001 {
		t.Fatalf("cosine floor = %v", got)
	}
	prev := sched(1)
	for e := 2; e <= 10; e++ {
		cur := sched(e)
		if cur > prev {
			t.Fatalf("cosine not monotone at %d", e)
		}
		prev = cur
	}
}

func TestTrainerAppliesSchedule(t *testing.T) {
	rng := tensor.NewRNG(30)
	model := NewSequential("s", NewFlatten(), NewLinear(rng, 4, 2, true))
	images := tensor.New(8, 1, 2, 2)
	rng.FillNormal(images, 0, 1)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	sgd := NewSGD(99, 0, 0)
	var seen []float64
	tr := &Trainer{
		Epochs: 3, BatchSize: 4, Opt: sgd,
		LRSchedule: func(e int) float64 {
			lr := 0.1 / float64(e)
			seen = append(seen, lr)
			return lr
		},
	}
	tr.Fit(model, images, labels, rng)
	if len(seen) != 3 {
		t.Fatalf("schedule invoked %d times", len(seen))
	}
	if math.Abs(sgd.LR-0.1/3) > 1e-12 {
		t.Fatalf("final LR = %v", sgd.LR)
	}
}
