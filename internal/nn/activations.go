package nn

import (
	"math"

	"nshd/internal/tensor"
)

// ReLU is max(0, x).
type ReLU struct {
	cachedMask  []bool
	cachedShape []int
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	var mask []bool
	if train {
		mask = make([]bool, x.Len())
		r.cachedShape = append([]int(nil), x.Shape...)
	}
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			if mask != nil {
				mask[i] = true
			}
		}
	}
	r.cachedMask = mask
	return y
}

// Backward zeroes gradients where the input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.cachedMask == nil {
		panic("nn: ReLU.Backward without Forward(train=true)")
	}
	dx := tensor.New(r.cachedShape...)
	for i, on := range r.cachedMask {
		if on {
			dx.Data[i] = grad.Data[i]
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return in }

// Stats implements Layer.
func (r *ReLU) Stats(in []int) Stats { return Stats{ActBytes: int64(shapeElems(in)) * 4} }

// ReLU6 is min(max(0,x),6), the clipped activation MobileNetV2 uses.
type ReLU6 struct {
	cachedPass  []bool
	cachedShape []int
}

// NewReLU6 constructs a ReLU6 activation.
func NewReLU6() *ReLU6 { return &ReLU6{} }

// Name implements Layer.
func (r *ReLU6) Name() string { return "relu6" }

// Forward clamps to [0, 6].
func (r *ReLU6) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	var pass []bool
	if train {
		pass = make([]bool, x.Len())
		r.cachedShape = append([]int(nil), x.Shape...)
	}
	for i, v := range x.Data {
		switch {
		case v <= 0:
		case v >= 6:
			y.Data[i] = 6
		default:
			y.Data[i] = v
			if pass != nil {
				pass[i] = true
			}
		}
	}
	r.cachedPass = pass
	return y
}

// Backward passes gradients only in the linear region (0 < x < 6).
func (r *ReLU6) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.cachedPass == nil {
		panic("nn: ReLU6.Backward without Forward(train=true)")
	}
	dx := tensor.New(r.cachedShape...)
	for i, on := range r.cachedPass {
		if on {
			dx.Data[i] = grad.Data[i]
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU6) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU6) OutShape(in []int) []int { return in }

// Stats implements Layer.
func (r *ReLU6) Stats(in []int) Stats { return Stats{ActBytes: int64(shapeElems(in)) * 4} }

// Sigmoid is 1/(1+e^-x).
type Sigmoid struct {
	cachedY *tensor.Tensor
}

// NewSigmoid constructs a sigmoid activation.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

func sigmoid32(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// Forward applies the logistic function.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Map(sigmoid32)
	if train {
		s.cachedY = y
	} else {
		s.cachedY = nil
	}
	return y
}

// Backward uses dy/dx = y(1-y).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if s.cachedY == nil {
		panic("nn: Sigmoid.Backward without Forward(train=true)")
	}
	dx := tensor.New(s.cachedY.Shape...)
	for i, y := range s.cachedY.Data {
		dx.Data[i] = grad.Data[i] * y * (1 - y)
	}
	return dx
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) []int { return in }

// Stats implements Layer.
func (s *Sigmoid) Stats(in []int) Stats { return Stats{ActBytes: int64(shapeElems(in)) * 4} }

// SiLU (swish) is x·sigmoid(x), the activation EfficientNet uses.
type SiLU struct {
	cachedX *tensor.Tensor
}

// NewSiLU constructs a SiLU activation.
func NewSiLU() *SiLU { return &SiLU{} }

// Name implements Layer.
func (s *SiLU) Name() string { return "silu" }

// Forward computes x·σ(x).
func (s *SiLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		s.cachedX = x
	} else {
		s.cachedX = nil
	}
	return x.Map(func(v float32) float32 { return v * sigmoid32(v) })
}

// Backward uses d/dx[xσ(x)] = σ(x)(1 + x(1-σ(x))).
func (s *SiLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if s.cachedX == nil {
		panic("nn: SiLU.Backward without Forward(train=true)")
	}
	dx := tensor.New(s.cachedX.Shape...)
	for i, v := range s.cachedX.Data {
		sg := sigmoid32(v)
		dx.Data[i] = grad.Data[i] * sg * (1 + v*(1-sg))
	}
	return dx
}

// Params implements Layer.
func (s *SiLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *SiLU) OutShape(in []int) []int { return in }

// Stats implements Layer.
func (s *SiLU) Stats(in []int) Stats { return Stats{ActBytes: int64(shapeElems(in)) * 4} }
