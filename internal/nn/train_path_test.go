package nn

import (
	"math"
	"testing"

	"nshd/internal/tensor"
)

// buildTrainTestModel stamps out a small CNN covering every GEMM-ified
// backward path (conv, depthwise, batchnorm, linear). Constructing it twice
// with the same seed yields bit-identical parameters.
func buildTrainTestModel(seed int64) *Sequential {
	rng := tensor.NewRNG(seed)
	return NewSequential("train-path",
		NewConv2D(rng, 1, 4, 3, 1, 1, true),
		NewBatchNorm2D(4),
		NewReLU(),
		NewDepthwiseConv2D(rng, 4, 3, 1, 1),
		NewMaxPool2D(2),
		NewFlatten(),
		NewLinear(rng, 4*4*4, 3, true),
	)
}

// TestConv2DBackwardMatchesReference checks the GEMM-ified Conv2D.Backward
// against the seed's scalar implementation (BackwardReference) to float
// tolerance: same dx, same accumulated weight and bias gradients.
func TestConv2DBackwardMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(41)
	conv := NewConv2D(rng, 3, 5, 3, 2, 1, true)
	x := randInput(42, 6, 3, 9, 9)
	y := conv.Forward(x, true)
	grad := randInput(43, y.Shape...)

	conv.Weight.ZeroGrad()
	conv.Bias.ZeroGrad()
	dx := conv.Backward(grad)
	dwGemm := conv.Weight.Grad.Clone()
	dbGemm := conv.Bias.Grad.Clone()

	conv.Weight.ZeroGrad()
	conv.Bias.ZeroGrad()
	dxRef := conv.BackwardReference(grad)
	dwRef := conv.Weight.Grad
	dbRef := conv.Bias.Grad

	const tol = 1e-4
	for i := range dwRef.Data {
		if !closeGrad(float64(dwGemm.Data[i]), float64(dwRef.Data[i]), tol) {
			t.Fatalf("dW[%d] = %v, reference %v", i, dwGemm.Data[i], dwRef.Data[i])
		}
	}
	for i := range dbRef.Data {
		if !closeGrad(float64(dbGemm.Data[i]), float64(dbRef.Data[i]), tol) {
			t.Fatalf("db[%d] = %v, reference %v", i, dbGemm.Data[i], dbRef.Data[i])
		}
	}
	for i := range dxRef.Data {
		if !closeGrad(float64(dx.Data[i]), float64(dxRef.Data[i]), tol) {
			t.Fatalf("dx[%d] = %v, reference %v", i, dx.Data[i], dxRef.Data[i])
		}
	}
}

// runTrainingSteps performs a fixed two-step SGD run and returns the model.
func runTrainingSteps(seed int64) *Sequential {
	model := buildTrainTestModel(seed)
	x := randInput(7, 6, 1, 8, 8)
	labels := []int{0, 1, 2, 0, 1, 2}
	opt := NewSGD(0.05, 0.9, 0)
	for step := 0; step < 2; step++ {
		model.ZeroGrad()
		logits := model.Forward(x, true)
		_, grad := CrossEntropy(logits, labels)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	return model
}

// TestTrainingStepSerialParallelBitIdentical proves the determinism contract
// of the chunked-accumulator backward passes: swapping the worker-pool
// dispatch for a strictly serial runner with the identical chunk schedule
// leaves every trained parameter bit-for-bit unchanged. Run under -race this
// also exercises the disjoint-write claims of the parallel kernels.
func TestTrainingStepSerialParallelBitIdentical(t *testing.T) {
	parallelModel := runTrainingSteps(11)

	orig := parallelFor
	parallelFor = func(n int, kernel func(lo, hi int)) { kernel(0, n) }
	defer func() { parallelFor = orig }()
	serialModel := runTrainingSteps(11)

	pp, sp := parallelModel.Params(), serialModel.Params()
	if len(pp) != len(sp) {
		t.Fatalf("param count mismatch: %d vs %d", len(pp), len(sp))
	}
	for pi, p := range pp {
		s := sp[pi]
		for i := range p.W.Data {
			if math.Float32bits(p.W.Data[i]) != math.Float32bits(s.W.Data[i]) {
				t.Fatalf("param %s[%d] diverges: parallel %v serial %v",
					p.Name, i, p.W.Data[i], s.W.Data[i])
			}
		}
	}
}

// TestFitDoesNotMutateBatchSize guards the satellite fix: resolving the
// default batch size must not write through the receiver.
func TestFitDoesNotMutateBatchSize(t *testing.T) {
	model := buildTrainTestModel(13)
	x := randInput(17, 5, 1, 8, 8)
	labels := []int{0, 1, 2, 0, 1}
	tr := &Trainer{Epochs: 1, Opt: NewSGD(0.01, 0, 0)} // BatchSize deliberately 0
	hist := tr.Fit(model, x, labels, tensor.NewRNG(19))
	if tr.BatchSize != 0 {
		t.Fatalf("Fit mutated BatchSize to %d", tr.BatchSize)
	}
	if len(hist) != 1 {
		t.Fatalf("expected 1 epoch of history, got %d", len(hist))
	}
}

// TestEmptyInputGuards covers the N==0 satellite: Fit returns nil history,
// PredictLogits returns an empty [0, K] tensor, Evaluate returns 0 — none
// panic or divide by zero.
func TestEmptyInputGuards(t *testing.T) {
	model := buildTrainTestModel(23)
	empty := tensor.New(0, 1, 8, 8)

	tr := &Trainer{Epochs: 3, BatchSize: 4, Opt: NewSGD(0.01, 0, 0)}
	if hist := tr.Fit(model, empty, nil, tensor.NewRNG(29)); hist != nil {
		t.Fatalf("Fit on empty set returned %v, want nil", hist)
	}

	logits := PredictLogits(model, empty, 8)
	if logits.Shape[0] != 0 || logits.Shape[1] != 3 {
		t.Fatalf("PredictLogits empty shape %v, want [0 3]", logits.Shape)
	}

	if acc := Evaluate(model, empty, nil, 8); acc != 0 {
		t.Fatalf("Evaluate on empty set = %v, want 0", acc)
	}
}

// TestFitArenaReuseStable trains for several epochs with uneven batches (so
// the tail batch exercises the smaller-than-peak arena path) and checks the
// run completes with finite losses.
func TestFitArenaReuseStable(t *testing.T) {
	model := buildTrainTestModel(31)
	x := randInput(37, 10, 1, 8, 8)
	labels := make([]int, 10)
	for i := range labels {
		labels[i] = i % 3
	}
	tr := &Trainer{Epochs: 3, BatchSize: 4, Opt: NewSGD(0.05, 0.9, 0)}
	hist := tr.Fit(model, x, labels, tensor.NewRNG(39))
	if len(hist) != 3 {
		t.Fatalf("expected 3 epochs, got %d", len(hist))
	}
	for _, st := range hist {
		if math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) {
			t.Fatalf("epoch %d loss %v", st.Epoch, st.Loss)
		}
	}
}
