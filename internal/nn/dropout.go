package nn

import (
	"fmt"

	"nshd/internal/tensor"
)

// Dropout zeroes each activation with probability P during training and
// rescales survivors by 1/(1−P) (inverted dropout), passing inputs through
// unchanged at inference. The zoo's larger heads use it to curb overfitting
// on small splits.
type Dropout struct {
	P   float64
	rng *tensor.RNG

	cachedMask []float32
}

// NewDropout constructs a dropout layer with the given drop probability.
func NewDropout(rng *tensor.RNG, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.P) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.cachedMask = nil
		return x
	}
	y := tensor.New(x.Shape...)
	mask := make([]float32, x.Len())
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			mask[i] = scale
			y.Data[i] = v * scale
		}
	}
	d.cachedMask = mask
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.cachedMask == nil {
		// Forward ran in eval mode (or P==0): identity.
		return grad
	}
	dx := tensor.New(grad.Shape...)
	for i, m := range d.cachedMask {
		dx.Data[i] = grad.Data[i] * m
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return in }

// Stats implements Layer. Dropout is free at inference.
func (d *Dropout) Stats(in []int) Stats { return Stats{} }
