package nn

import (
	"fmt"

	"nshd/internal/tensor"
)

// Int8Layer is the quantized counterpart of InferenceLayer: a frozen,
// state-free op over u8 activation tensors. The contract is the same —
// allocation only through the arena, strictly serial execution (batch-level
// parallelism belongs to the caller), and deterministic output for a given
// input. Layers are constructed by the engine's quantization pass
// (internal/engine), which folds batch norm, quantizes weights per output
// channel and computes the requantization parameters; the constructors here
// only validate and store them.
type Int8Layer interface {
	ForwardInt8(x *tensor.QTensor, ar *tensor.Arena) *tensor.QTensor
}

// Int8Quant carries the activation quantization contract of one int8 layer:
// the input parameters it was folded against (checked at run time — a
// mismatch means the builder wired the chain wrong, not a data error) and
// the output parameters plus clamp bounds it produces.
//
// The clamp encodes the fused activation: no activation clamps to the full
// [0, 255] range, ReLU raises ClampLo to OutZero (real 0), and ReLU6 also
// lowers ClampHi to the quantized value of 6. The clamp is applied during
// requantization, so fused activations are free.
type Int8Quant struct {
	InScale  float32
	InZero   uint8
	OutScale float32
	OutZero  uint8
	ClampLo  uint8
	ClampHi  uint8
}

func (q Int8Quant) validate(name string) {
	if !(q.InScale > 0) || !(q.OutScale > 0) {
		panic(fmt.Sprintf("nn: %s scales (in=%g, out=%g) must be positive", name, q.InScale, q.OutScale))
	}
	if q.ClampLo > q.ClampHi {
		panic(fmt.Sprintf("nn: %s clamp [%d, %d] is empty", name, q.ClampLo, q.ClampHi))
	}
}

// checkInt8Input panics when the incoming tensor was quantized with
// different parameters than the layer was folded for. The layer's Bias32
// bakes in the input zero-point and its Scales bake in the input scale, so
// running with mismatched parameters would silently produce garbage.
func checkInt8Input(name string, x *tensor.QTensor, q Int8Quant) {
	if x.Scale != q.InScale || x.Zero != q.InZero {
		panic(fmt.Sprintf("nn: %s input quantized as (scale=%g, zero=%d), layer folded for (scale=%g, zero=%d)",
			name, x.Scale, x.Zero, q.InScale, q.InZero))
	}
}

// Int8Conv2D is a quantized 2-D convolution with per-output-channel
// requantization and an optionally fused clamp activation. Weights are
// symmetric int8 (already folded with batch norm by the builder), the bias
// is pre-combined into the int32 accumulator domain, and the mapping back
// to u8 is one multiply per element:
//
//	q_y[oc] = clamp(round((ACC[oc] + Bias32[oc]) · Scales[oc]) + OutZero)
//
// where ACC is the exact int32 GEMM of the u8 im2col matrix against the
// int8 weights and Scales[oc] = S_in·S_w[oc] / S_out.
type Int8Conv2D struct {
	InC, OutC, KH, KW, Stride, Pad int
	W                              []int8    // [OutC, InC·KH·KW] row-major
	Bias32                         []int32   // [OutC], accumulator-domain bias
	Scales                         []float32 // [OutC], combined requant scales
	Q                              Int8Quant

	// kp is kdim rounded up to a multiple of 4 and wp the weights re-laid
	// with zero-filled K tails, so the VNNI GEMM (which consumes K in quads)
	// never falls back to the scalar remainder kernel. Zero weight × any
	// activation contributes exactly 0, so results are unchanged.
	kp int
	wp []int8
}

// NewInt8Conv2D validates and assembles a quantized convolution.
func NewInt8Conv2D(inC, outC, kh, kw, stride, pad int, w []int8, bias32 []int32, scales []float32, q Int8Quant) *Int8Conv2D {
	if inC < 1 || outC < 1 || kh < 1 || kw < 1 || stride < 1 || pad < 0 {
		panic(fmt.Sprintf("nn: Int8Conv2D geometry inC=%d outC=%d k=%dx%d stride=%d pad=%d", inC, outC, kh, kw, stride, pad))
	}
	kdim := inC * kh * kw
	if len(w) != outC*kdim {
		panic(fmt.Sprintf("nn: Int8Conv2D weights %d, want %d×%d", len(w), outC, kdim))
	}
	if len(bias32) != outC || len(scales) != outC {
		panic(fmt.Sprintf("nn: Int8Conv2D bias/scales (%d, %d), want %d each", len(bias32), len(scales), outC))
	}
	q.validate("Int8Conv2D")
	for oc, s := range scales {
		if !(s > 0) {
			panic(fmt.Sprintf("nn: Int8Conv2D channel %d requant scale %g, want positive", oc, s))
		}
	}
	c := &Int8Conv2D{InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad, W: w, Bias32: bias32, Scales: scales, Q: q}
	c.kp = (kdim + 3) &^ 3
	if c.kp == kdim {
		c.wp = w
	} else {
		c.wp = make([]int8, outC*c.kp)
		for oc := 0; oc < outC; oc++ {
			copy(c.wp[oc*c.kp:oc*c.kp+kdim], w[oc*kdim:(oc+1)*kdim])
		}
	}
	return c
}

func (c *Int8Conv2D) String() string {
	return fmt.Sprintf("Int8Conv2D(%d→%d, %dx%d/%d p%d)", c.InC, c.OutC, c.KH, c.KW, c.Stride, c.Pad)
}

// ForwardInt8 runs per-sample im2col (padding with the input zero-point, so
// padded positions contribute exactly real 0) followed by the serial int8
// GEMM and per-channel requantization. Scratch is arena-allocated and
// released before returning, mirroring Conv2D.ForwardInfer.
func (c *Int8Conv2D) ForwardInt8(x *tensor.QTensor, ar *tensor.Arena) *tensor.QTensor {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Int8Conv2D expects [N %d H W], got %v", c.InC, x.Shape))
	}
	checkInt8Input("Int8Conv2D", x, c.Q)
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	g := tensor.ConvGeom{InC: c.InC, InH: h, InW: w, KH: c.KH, KW: c.KW,
		StrideH: c.Stride, StrideW: c.Stride, PadH: c.Pad, PadW: c.Pad}
	outH, outW := g.OutH(), g.OutW()
	y := ar.AllocU8(c.Q.OutScale, c.Q.OutZero, n, c.OutC, outH, outW)
	if n == 0 {
		return y
	}
	kdim := c.InC * c.KH * c.KW
	outS := outH * outW
	m := ar.Mark()
	// Pointwise (1×1, stride 1, no pad) convolution: the column matrix is the
	// input sample already laid out as [InC, H·W], so the GEMM reads the
	// input segment directly — same elision as the float path. Requires
	// kp == kdim (no K padding rows to splice in).
	pointwise := c.KH == 1 && c.KW == 1 && c.Stride == 1 && c.Pad == 0 && c.kp == kdim
	sampleIn := c.InC * h * w
	var cols []uint8
	if !pointwise {
		cols = ar.Bytes(c.kp * outS)
		if c.kp > kdim {
			clear(cols[kdim*outS:])
		}
	}
	scratch := ar.Bytes(tensor.Int8GemmScratch())
	acc := ar.Int32s(c.OutC * outS)
	sampleOut := c.OutC * outS
	for i := 0; i < n; i++ {
		if pointwise {
			cols = x.Data[i*sampleIn : (i+1)*sampleIn]
		} else {
			tensor.Im2ColU8(g, x.Data[i*sampleIn:(i+1)*sampleIn], cols, x.Zero)
		}
		tensor.MatMulInt8SerialInto(acc, c.wp, cols, c.OutC, outS, c.kp, scratch)
		seg := y.Data[i*sampleOut : (i+1)*sampleOut]
		for oc := 0; oc < c.OutC; oc++ {
			tensor.RequantizeU8Row(seg[oc*outS:(oc+1)*outS], acc[oc*outS:(oc+1)*outS],
				c.Bias32[oc], c.Scales[oc], c.Q.OutZero, c.Q.ClampLo, c.Q.ClampHi)
		}
	}
	ar.Release(m)
	return y
}

// Int8Linear is a quantized fully-connected layer. Each output is one
// u8·i8 dot product (VNNI-accelerated where available) plus the same
// per-channel requantization as Int8Conv2D. Serving batches are small, so a
// dot-per-output loop beats the blocked GEMM here: the GEMM's asm micro
// kernel needs 16-column tiles, which a batch dimension of 1–16 never fills.
type Int8Linear struct {
	In, Out int
	W       []int8    // [Out, In] row-major
	Bias32  []int32   // [Out]
	Scales  []float32 // [Out]
	Q       Int8Quant
}

// NewInt8Linear validates and assembles a quantized fully-connected layer.
func NewInt8Linear(in, out int, w []int8, bias32 []int32, scales []float32, q Int8Quant) *Int8Linear {
	if in < 1 || out < 1 {
		panic(fmt.Sprintf("nn: Int8Linear shape %d→%d", in, out))
	}
	if len(w) != out*in {
		panic(fmt.Sprintf("nn: Int8Linear weights %d, want %d×%d", len(w), out, in))
	}
	if len(bias32) != out || len(scales) != out {
		panic(fmt.Sprintf("nn: Int8Linear bias/scales (%d, %d), want %d each", len(bias32), len(scales), out))
	}
	q.validate("Int8Linear")
	for oc, s := range scales {
		if !(s > 0) {
			panic(fmt.Sprintf("nn: Int8Linear output %d requant scale %g, want positive", oc, s))
		}
	}
	return &Int8Linear{In: in, Out: out, W: w, Bias32: bias32, Scales: scales, Q: q}
}

func (l *Int8Linear) String() string { return fmt.Sprintf("Int8Linear(%d→%d)", l.In, l.Out) }

// ForwardInt8 implements Int8Layer.
func (l *Int8Linear) ForwardInt8(x *tensor.QTensor, ar *tensor.Arena) *tensor.QTensor {
	if x.Rank() != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Int8Linear expects [N %d], got %v", l.In, x.Shape))
	}
	checkInt8Input("Int8Linear", x, l.Q)
	n := x.Shape[0]
	y := ar.AllocU8(l.Q.OutScale, l.Q.OutZero, n, l.Out)
	lo, hi := int32(l.Q.ClampLo), int32(l.Q.ClampHi)
	zero := int32(l.Q.OutZero)
	for i := 0; i < n; i++ {
		row := x.Data[i*l.In : (i+1)*l.In]
		out := y.Data[i*l.Out : (i+1)*l.Out]
		for oc := 0; oc < l.Out; oc++ {
			acc := tensor.DotU8I8(row, l.W[oc*l.In:(oc+1)*l.In]) + l.Bias32[oc]
			q := tensor.RoundAway(float32(acc)*l.Scales[oc]) + zero
			if q < lo {
				q = lo
			} else if q > hi {
				q = hi
			}
			out[oc] = uint8(q)
		}
	}
	return y
}

// Int8MaxPool2D is max pooling over u8 activations. Dequantization is
// strictly increasing (scale > 0), so the u8 max selects exactly the value
// the float max would: the op is lossless and passes the input quantization
// parameters through unchanged.
type Int8MaxPool2D struct {
	K int
}

func (m *Int8MaxPool2D) String() string { return fmt.Sprintf("Int8MaxPool2D(%d)", m.K) }

// ForwardInt8 implements Int8Layer.
func (m *Int8MaxPool2D) ForwardInt8(x *tensor.QTensor, ar *tensor.Arena) *tensor.QTensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Int8MaxPool2D expects [N C H W], got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := h/m.K, w/m.K
	if outH == 0 || outW == 0 {
		panic(fmt.Sprintf("nn: Int8MaxPool2D window %d larger than input %dx%d", m.K, h, w))
	}
	y := ar.AllocU8(x.Scale, x.Zero, n, c, outH, outW)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var best uint8
					for kh := 0; kh < m.K; kh++ {
						rowAt := inBase + (oh*m.K+kh)*w + ow*m.K
						for kw := 0; kw < m.K; kw++ {
							if v := x.Data[rowAt+kw]; kh|kw == 0 || v > best {
								best = v
							}
						}
					}
					y.Data[outBase+oh*outW+ow] = best
				}
			}
		}
	}
	return y
}

// Int8Flatten reshapes [N, ...] to [N, rest] as a view over the same bytes —
// no copy, quantization parameters unchanged.
type Int8Flatten struct{}

func (Int8Flatten) String() string { return "Int8Flatten" }

// ForwardInt8 implements Int8Layer.
func (Int8Flatten) ForwardInt8(x *tensor.QTensor, ar *tensor.Arena) *tensor.QTensor {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: Int8Flatten expects rank ≥ 2, got %v", x.Shape))
	}
	rest := 1
	for _, s := range x.Shape[1:] {
		rest *= s
	}
	return ar.WrapU8(x.Data, x.Scale, x.Zero, x.Shape[0], rest)
}
