package nn

import (
	"math/rand"
	"testing"

	"nshd/internal/tensor"
)

// randomInt8FuseChain builds a random quantization-chained Int8Conv2D[+pool]
// run (optionally flatten-terminated), returning the layers, the input shape
// and the input quantization parameters.
func randomInt8FuseChain(rng *rand.Rand) ([]Int8Layer, []int, float32, uint8) {
	c := 1 + rng.Intn(4)
	h := 6 + rng.Intn(12)
	w := 6 + rng.Intn(12)
	in := []int{c, h, w}
	inScale := 0.02 + rng.Float32()*0.1
	inZero := uint8(rng.Intn(256))
	scale, zero := inScale, inZero
	var layers []Int8Layer
	nUnits := 1 + rng.Intn(3)
	for u := 0; u < nUnits; u++ {
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		outC := 1 + rng.Intn(12)
		g := tensor.ConvGeom{InC: c, InH: h, InW: w, KH: k, KW: k,
			StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
		if g.Validate() != nil {
			k, stride, pad = 1, 1, 0
			g = tensor.ConvGeom{InC: c, InH: h, InW: w, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
		}
		kdim := c * k * k
		wq := make([]int8, outC*kdim)
		for i := range wq {
			wq[i] = int8(rng.Intn(255) - 127)
		}
		bias := make([]int32, outC)
		scales := make([]float32, outC)
		for i := range bias {
			bias[i] = int32(rng.Intn(2048) - 1024)
			scales[i] = 0.001 + rng.Float32()*0.01
		}
		outScale := 0.02 + rng.Float32()*0.1
		outZero := uint8(rng.Intn(256))
		q := Int8Quant{InScale: scale, InZero: zero, OutScale: outScale, OutZero: outZero,
			ClampLo: 0, ClampHi: 255}
		if rng.Intn(2) == 0 { // folded ReLU-style clamp
			q.ClampLo = outZero
		}
		layers = append(layers, NewInt8Conv2D(c, outC, k, k, stride, pad, wq, bias, scales, q))
		c, h, w = outC, g.OutH(), g.OutW()
		scale, zero = outScale, outZero
		if pk := 2 + rng.Intn(2); rng.Intn(2) == 0 && h/pk > 0 && w/pk > 0 {
			layers = append(layers, &Int8MaxPool2D{K: pk})
			h, w = h/pk, w/pk
		}
	}
	if rng.Intn(2) == 0 {
		layers = append(layers, Int8Flatten{})
	}
	return layers, in, inScale, inZero
}

func runInt8Chain(ls []Int8Layer, x *tensor.QTensor, ar *tensor.Arena) *tensor.QTensor {
	for _, l := range ls {
		x = l.ForwardInt8(x, ar)
	}
	return x
}

// TestInt8FusedBlockMatchesUnfused pins the tiled int8 executor bit-identical
// to the layer-by-layer int8 pass across randomized chains and forced tiny
// tile heights.
func TestInt8FusedBlockMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		layers, in, scale, zero := randomInt8FuseChain(rng)
		fused := FuseInt8(layers, in[0], in[1], in[2], true)
		if len(fused) == len(layers) && len(layers) > 1 {
			t.Fatalf("trial %d: force-fuse did not rewrite the chain", trial)
		}
		hasBlock := false
		for _, l := range fused {
			if _, ok := l.(*Int8FusedBlock); ok {
				hasBlock = true
			}
		}
		if !hasBlock {
			t.Fatalf("trial %d: no Int8FusedBlock in fused chain", trial)
		}

		saved := fuseForceTileRows
		fuseForceTileRows = 1 + rng.Intn(3)
		tiny := FuseInt8(layers, in[0], in[1], in[2], true)
		fuseForceTileRows = saved

		n := 1 + rng.Intn(2)
		x := make([]uint8, n*in[0]*in[1]*in[2])
		rng.Read(x)
		ar := tensor.NewArena()
		xa := ar.WrapU8(append([]uint8(nil), x...), scale, zero, n, in[0], in[1], in[2])
		want := runInt8Chain(layers, xa, ar)

		for name, chain := range map[string][]Int8Layer{"whole-map": fused, "tiny-tiles": tiny} {
			ar2 := tensor.NewArena()
			xb := ar2.WrapU8(append([]uint8(nil), x...), scale, zero, n, in[0], in[1], in[2])
			got := runInt8Chain(chain, xb, ar2)
			if !sameInts(got.Shape, want.Shape) {
				t.Fatalf("trial %d %s: shape %v, want %v", trial, name, got.Shape, want.Shape)
			}
			if got.Scale != want.Scale || got.Zero != want.Zero {
				t.Fatalf("trial %d %s: quant (%g,%d), want (%g,%d)", trial, name, got.Scale, got.Zero, want.Scale, want.Zero)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("trial %d %s: fused[%d]=%d, unfused=%d", trial, name, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
