// Package nn is a from-scratch neural-network substrate: layers with forward
// and backward passes, losses, optimizers and serialization. It exists so
// that NSHD's CNN feature extractors, teacher models and manifold learner can
// be trained and cut without any external deep-learning framework.
//
// Tensors flow through layers batched: image layers take [N, C, H, W] and
// dense layers take [N, F]. Each layer caches what its backward pass needs
// during Forward(train=true); Backward must be called in reverse layer order
// with the gradient of the loss w.r.t. the layer output and returns the
// gradient w.r.t. the layer input.
package nn

import (
	"fmt"

	"nshd/internal/tensor"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// newParam allocates a parameter and matching zero gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Stats summarizes the inference cost of a layer for a single sample:
// multiply-accumulate operations, learnable parameter count, and the bytes of
// activation output it produces (float32).
type Stats struct {
	MACs     int64
	Params   int64
	ActBytes int64
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.MACs += o.MACs
	s.Params += o.Params
	s.ActBytes += o.ActBytes
}

// Layer is a differentiable network stage.
type Layer interface {
	// Name returns a short human-readable identifier ("conv3x3(64)").
	Name() string
	// Forward computes the layer output for a batch. When train is true
	// the layer caches intermediates for Backward and uses batch
	// statistics where applicable (BatchNorm).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/dout and returns dL/din, accumulating
	// parameter gradients. Must follow a Forward(train=true) call.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameters (possibly empty).
	Params() []*Param
	// OutShape maps a per-sample input shape (no batch dim) to the
	// per-sample output shape.
	OutShape(in []int) []int
	// Stats reports the per-sample inference cost for the input shape.
	Stats(in []int) Stats
}

// Sequential chains layers. It is the container used for every model in the
// zoo; cutting a CNN at layer k is slicing this container.
type Sequential struct {
	Label  string
	Layers []Layer
}

// NewSequential builds a sequential model from layers.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{Label: label, Layers: layers}
}

// Name returns the model label.
func (s *Sequential) Name() string { return s.Label }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the parameters of all layers, in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutShape composes the per-layer shape functions.
func (s *Sequential) OutShape(in []int) []int {
	for _, l := range s.Layers {
		in = l.OutShape(in)
	}
	return in
}

// Stats accumulates per-layer costs for the given input shape.
func (s *Sequential) Stats(in []int) Stats {
	var total Stats
	for _, l := range s.Layers {
		total.Add(l.Stats(in))
		in = l.OutShape(in)
	}
	return total
}

// StatsPerLayer returns each layer's cost alongside its output shape, for
// model inspection tools.
func (s *Sequential) StatsPerLayer(in []int) []Stats {
	out := make([]Stats, len(s.Layers))
	for i, l := range s.Layers {
		out[i] = l.Stats(in)
		in = l.OutShape(in)
	}
	return out
}

// Slice returns a new Sequential containing layers [0, end). The layers are
// shared, not copied: the slice views the same parameters as the original,
// which is exactly what NSHD's cut-CNN feature extractor requires (the
// teacher and the student share pretrained weights).
func (s *Sequential) Slice(end int) *Sequential {
	if end < 0 || end > len(s.Layers) {
		panic(fmt.Sprintf("nn: Slice end %d out of range [0,%d]", end, len(s.Layers)))
	}
	return &Sequential{Label: fmt.Sprintf("%s[:%d]", s.Label, end), Layers: s.Layers[:end]}
}

// ZeroGrad clears all parameter gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar learnable parameters.
func (s *Sequential) ParamCount() int64 {
	var n int64
	for _, p := range s.Params() {
		n += int64(p.W.Len())
	}
	return n
}

// batchOf panics unless x has at least 2 dims and returns the batch size.
func batchOf(x *tensor.Tensor, who string) int {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: %s requires a batched input, got shape %v", who, x.Shape))
	}
	return x.Shape[0]
}

func shapeElems(s []int) int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}
