package nn

import (
	"fmt"

	"nshd/internal/tensor"
)

// Linear is a fully-connected layer: y = x Wᵀ + b with W of shape [out, in].
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param
	useBias bool

	cachedX *tensor.Tensor
}

// NewLinear constructs a Linear layer with Xavier-uniform weights.
func NewLinear(rng *tensor.RNG, in, out int, bias bool) *Linear {
	l := &Linear{
		In:      in,
		Out:     out,
		Weight:  newParam(fmt.Sprintf("linear%dx%d.w", out, in), out, in),
		useBias: bias,
	}
	rng.XavierLinear(l.Weight.W)
	if bias {
		l.Bias = newParam(fmt.Sprintf("linear%dx%d.b", out, in), out)
	}
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return fmt.Sprintf("linear(%d→%d)", l.In, l.Out) }

// Forward computes the affine map for a [N, In] batch.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "Linear")
	if x.Rank() != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear expects [N %d], got %v", l.In, x.Shape))
	}
	if train {
		l.cachedX = x
	} else {
		l.cachedX = nil
	}
	y := tensor.MatMulT(x, l.Weight.W) // [N, Out]
	if l.useBias {
		for i := 0; i < n; i++ {
			row := y.Row(i)
			for j := range row {
				row[j] += l.Bias.W.Data[j]
			}
		}
	}
	return y
}

// Backward accumulates dW = gradᵀ x, db = Σ grad, and returns dx = grad W.
// dW runs on the dense blocked GEMM (TransposeMatMulInto) with pooled
// workspaces: unlike the retraining update matrices, softmax gradients are
// dense, so the zero-skip scalar TransposeMatMul has nothing to skip.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.cachedX == nil {
		panic("nn: Linear.Backward without Forward(train=true)")
	}
	// dW[out,in] += gradᵀ[out,N] @ x[N,in]
	dwBuf := tensor.GetFloats(l.Out * l.In)
	scratch := tensor.GetFloats(grad.Len())
	dw := tensor.FromSlice(dwBuf, l.Out, l.In)
	tensor.TransposeMatMulInto(dw, grad, l.cachedX, scratch)
	l.Weight.Grad.AXPY(1, dw)
	tensor.PutFloats(scratch)
	tensor.PutFloats(dwBuf)
	if l.useBias {
		n := grad.Shape[0]
		for i := 0; i < n; i++ {
			row := grad.Row(i)
			for j, v := range row {
				l.Bias.Grad.Data[j] += v
			}
		}
	}
	// dx[N,in] = grad[N,out] @ W[out,in]
	return tensor.MatMul(grad, l.Weight.W)
}

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.useBias {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}

// OutShape implements Layer.
func (l *Linear) OutShape(in []int) []int {
	if shapeElems(in) != l.In {
		panic(fmt.Sprintf("nn: Linear(%d) given input shape %v", l.In, in))
	}
	return []int{l.Out}
}

// Stats implements Layer.
func (l *Linear) Stats(in []int) Stats {
	p := int64(l.In * l.Out)
	if l.useBias {
		p += int64(l.Out)
	}
	return Stats{MACs: int64(l.In) * int64(l.Out), Params: p, ActBytes: int64(l.Out) * 4}
}
