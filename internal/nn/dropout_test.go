package nn

import (
	"math"
	"testing"

	"nshd/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(tensor.NewRNG(1), 0.5)
	x := randInput(2, 4, 8)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	// Backward after eval forward passes gradients through.
	g := randInput(3, 4, 8)
	dg := d.Backward(g)
	for i := range g.Data {
		if dg.Data[i] != g.Data[i] {
			t.Fatal("eval-mode backward must be identity")
		}
	}
}

func TestDropoutTrainDropsAndRescales(t *testing.T) {
	d := NewDropout(tensor.NewRNG(2), 0.5)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(float64(v)-2) < 1e-6:
			twos++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction %v, want ~0.5", frac)
	}
	// Expected value preserved: mean ≈ 1.
	if m := y.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("inverted dropout must preserve expectation, mean=%v", m)
	}
	_ = twos
}

func TestDropoutBackwardMask(t *testing.T) {
	d := NewDropout(tensor.NewRNG(3), 0.3)
	x := randInput(4, 2, 50)
	y := d.Forward(x, true)
	g := tensor.New(y.Shape...)
	g.Fill(1)
	dx := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("gradient mask must match forward mask")
		}
	}
}

func TestDropoutZeroProbability(t *testing.T) {
	d := NewDropout(tensor.NewRNG(4), 0)
	x := randInput(5, 2, 3)
	y := d.Forward(x, true)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("p=0 dropout must be identity even in train mode")
		}
	}
}

func TestDropoutInvalidP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=1")
		}
	}()
	NewDropout(tensor.NewRNG(5), 1)
}
