package nn

import (
	"fmt"
	"io"

	"nshd/internal/tensor"
)

// Trainer runs minibatch supervised training on a Sequential model.
type Trainer struct {
	Epochs    int
	BatchSize int
	Opt       Optimizer
	ClipNorm  float64 // 0 disables clipping
	Log       io.Writer
	// Teacher, when non-nil, enables NN→NN distillation with Alpha/Temp.
	Teacher *Sequential
	Alpha   float64
	Temp    float64
	// Augment, when non-nil, is applied in place to each training sample
	// (shape is the per-sample shape) as it is copied into a batch.
	Augment func(sample []float32, shape []int, rng *tensor.RNG)
	// LRSchedule, when non-nil, overrides the SGD learning rate at the
	// start of each epoch (1-based). Ignored for non-SGD optimizers.
	LRSchedule func(epoch int) float64
}

// EpochStats reports the outcome of one training epoch.
type EpochStats struct {
	Epoch    int
	Loss     float64
	Accuracy float64
}

// Fit trains model on images [N, ...] with integer labels, shuffling with rng
// each epoch. It returns per-epoch stats. An empty training set returns nil
// without touching the model.
//
// The per-step batch tensor comes from a reusable training arena: the first
// step runs in measuring mode, Grow sizes the slab to the observed peak, and
// every later step bump-allocates from warm memory instead of hitting the
// heap (tail batches are smaller and always fit).
func (t *Trainer) Fit(model *Sequential, images *tensor.Tensor, labels []int, rng *tensor.RNG) []EpochStats {
	n := images.Shape[0]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: Fit got %d labels for %d samples", len(labels), n))
	}
	if n == 0 {
		return nil
	}
	// Resolve the default into a local so Fit never mutates its receiver.
	batchSize := t.BatchSize
	if batchSize <= 0 {
		batchSize = 32
	}
	sampleLen := images.Len() / n
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	arena := tensor.NewArena()
	grown := false
	batchShape := append([]int{0}, images.Shape[1:]...)
	byBuf := make([]int, batchSize)
	var history []EpochStats
	for epoch := 1; epoch <= t.Epochs; epoch++ {
		if t.LRSchedule != nil {
			if sgd, ok := t.Opt.(*SGD); ok {
				sgd.LR = t.LRSchedule(epoch)
			}
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		var correct, seen int
		for start := 0; start < n; start += batchSize {
			end := start + batchSize
			if end > n {
				end = n
			}
			bs := end - start
			arena.Reset()
			batchShape[0] = bs
			bx := arena.Alloc(batchShape...)
			by := byBuf[:bs]
			for bi := 0; bi < bs; bi++ {
				src := order[start+bi]
				sample := bx.Data[bi*sampleLen : (bi+1)*sampleLen]
				copy(sample, images.Data[src*sampleLen:(src+1)*sampleLen])
				if t.Augment != nil {
					t.Augment(sample, images.Shape[1:], rng)
				}
				by[bi] = labels[src]
			}
			model.ZeroGrad()
			logits := model.Forward(bx, true)
			var loss float64
			var grad *tensor.Tensor
			if t.Teacher != nil {
				teacherLogits := t.Teacher.Forward(bx, false)
				loss, grad = DistillLoss(logits, teacherLogits, by, t.Alpha, t.Temp)
			} else {
				loss, grad = CrossEntropy(logits, by)
			}
			model.Backward(grad)
			if t.ClipNorm > 0 {
				ClipGradNorm(model.Params(), t.ClipNorm)
			}
			t.Opt.Step(model.Params())
			lossSum += loss * float64(bs)
			preds := tensor.ArgmaxRows(logits)
			for i, p := range preds {
				if p == by[i] {
					correct++
				}
			}
			seen += bs
			if !grown {
				// First step measured the peak batch footprint; size the
				// slab once so later steps allocate nothing.
				arena.Grow()
				grown = true
			}
		}
		st := EpochStats{Epoch: epoch, Loss: lossSum / float64(seen), Accuracy: float64(correct) / float64(seen)}
		history = append(history, st)
		if t.Log != nil {
			fmt.Fprintf(t.Log, "epoch %d/%d loss=%.4f acc=%.4f\n", epoch, t.Epochs, st.Loss, st.Accuracy)
		}
	}
	return history
}

// PredictLogits runs inference in eval mode over images in batches and
// returns the [N, K] logits. An empty input returns an empty [0, K] tensor.
func PredictLogits(model *Sequential, images *tensor.Tensor, batchSize int) *tensor.Tensor {
	n := images.Shape[0]
	if n == 0 {
		return tensor.New(0, shapeElems(model.OutShape(images.Shape[1:])))
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	sampleLen := images.Len() / n
	var out *tensor.Tensor
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		bs := end - start
		batchShape := append([]int{bs}, images.Shape[1:]...)
		bx := tensor.FromSlice(images.Data[start*sampleLen:end*sampleLen], batchShape...)
		logits := model.Forward(bx, false)
		if out == nil {
			out = tensor.New(n, logits.Shape[1])
		}
		copy(out.Data[start*logits.Shape[1]:end*logits.Shape[1]], logits.Data)
	}
	return out
}

// Evaluate returns classification accuracy of model on a labelled set. An
// empty set scores 0 rather than NaN.
func Evaluate(model *Sequential, images *tensor.Tensor, labels []int, batchSize int) float64 {
	if images.Shape[0] == 0 {
		return 0
	}
	logits := PredictLogits(model, images, batchSize)
	return Accuracy(logits, labels)
}
