package nn

import (
	"math"
	"testing"

	"nshd/internal/tensor"
)

// lossOf runs a forward pass in train mode and reduces the output with a
// fixed random projection so the scalar loss exercises every output element.
func lossOf(l Layer, x *tensor.Tensor, probe []float32) float64 {
	y := l.Forward(x, true)
	var s float64
	for i, v := range y.Data {
		s += float64(v) * float64(probe[i%len(probe)]) * float64(1+i%3)
	}
	return s
}

// gradCheck verifies Backward against central finite differences, both for
// the input gradient and for every parameter gradient.
func gradCheck(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(99)
	probe := make([]float32, 64)
	for i := range probe {
		probe[i] = float32(rng.NormFloat64())
	}

	// Analytic gradients.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	y := l.Forward(x, true)
	gout := tensor.New(y.Shape...)
	for i := range gout.Data {
		gout.Data[i] = probe[i%len(probe)] * float32(1+i%3)
	}
	dx := l.Backward(gout)

	const eps = 1e-2
	// Input gradient check on a sample of positions.
	for _, idx := range sampleIdx(x.Len(), 12) {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		lp := lossOf(l, x, probe)
		x.Data[idx] = orig - eps
		lm := lossOf(l, x, probe)
		x.Data[idx] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(dx.Data[idx])
		if !closeGrad(got, want, tol) {
			t.Errorf("%s: input grad[%d] = %.5g, finite diff %.5g", l.Name(), idx, got, want)
		}
	}
	// Parameter gradient check.
	for _, p := range l.Params() {
		// Re-capture analytic grads (they were accumulated above).
		for _, idx := range sampleIdx(p.W.Len(), 8) {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + eps
			lp := lossOf(l, x, probe)
			p.W.Data[idx] = orig - eps
			lm := lossOf(l, x, probe)
			p.W.Data[idx] = orig
			want := (lp - lm) / (2 * eps)
			got := float64(p.Grad.Data[idx])
			if !closeGrad(got, want, tol) {
				t.Errorf("%s: param %s grad[%d] = %.5g, finite diff %.5g", l.Name(), p.Name, idx, got, want)
			}
		}
	}
}

func closeGrad(got, want, tol float64) bool {
	diff := math.Abs(got - want)
	scale := math.Max(math.Max(math.Abs(got), math.Abs(want)), 1)
	return diff/scale <= tol
}

func sampleIdx(n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, k)
	step := n / k
	for i := 0; i < n; i += step {
		out = append(out, i)
	}
	return out
}

func randInput(seed int64, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	tensor.NewRNG(seed).FillNormal(x, 0, 1)
	return x
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	gradCheck(t, NewLinear(rng, 7, 5, true), randInput(2, 3, 7), 1e-2)
}

func TestLinearNoBiasGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	gradCheck(t, NewLinear(rng, 4, 6, false), randInput(3, 2, 4), 1e-2)
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	gradCheck(t, NewConv2D(rng, 2, 3, 3, 1, 1, true), randInput(5, 2, 2, 5, 5), 2e-2)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	gradCheck(t, NewConv2D(rng, 3, 4, 3, 2, 1, false), randInput(7, 2, 3, 6, 6), 2e-2)
}

func TestDepthwiseConvGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	gradCheck(t, NewDepthwiseConv2D(rng, 3, 3, 1, 1), randInput(9, 2, 3, 5, 5), 2e-2)
}

func TestDepthwiseConvStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(10)
	gradCheck(t, NewDepthwiseConv2D(rng, 2, 3, 2, 1), randInput(11, 2, 2, 6, 6), 2e-2)
}

func TestReLUGradients(t *testing.T) {
	gradCheck(t, NewReLU(), randInput(12, 4, 9), 1e-2)
}

func TestSigmoidGradients(t *testing.T) {
	gradCheck(t, NewSigmoid(), randInput(14, 3, 6), 1e-2)
}

func TestSiLUGradients(t *testing.T) {
	gradCheck(t, NewSiLU(), randInput(15, 3, 6), 1e-2)
}

func TestAvgPoolGradients(t *testing.T) {
	gradCheck(t, NewAvgPool2D(2), randInput(16, 2, 2, 4, 4), 1e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	gradCheck(t, NewGlobalAvgPool2D(), randInput(17, 2, 3, 4, 4), 1e-2)
}

func TestSEBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(18)
	gradCheck(t, NewSEBlock(rng, 4, 2), randInput(19, 2, 4, 3, 3), 2e-2)
}

func TestResidualIdentityGradients(t *testing.T) {
	rng := tensor.NewRNG(20)
	body := NewSequential("body",
		NewConv2D(rng, 2, 2, 3, 1, 1, true),
		NewSiLU(),
	)
	gradCheck(t, NewResidual(body, nil), randInput(21, 2, 2, 4, 4), 2e-2)
}

func TestResidualProjGradients(t *testing.T) {
	rng := tensor.NewRNG(22)
	body := NewSequential("body",
		NewConv2D(rng, 2, 3, 3, 1, 1, true),
		NewSiLU(),
	)
	proj := NewConv2D(rng, 2, 3, 1, 1, 0, false)
	gradCheck(t, NewResidual(body, proj), randInput(23, 2, 2, 4, 4), 2e-2)
}

func TestBatchNormGradients(t *testing.T) {
	// BatchNorm mixes samples within the batch, so finite differences over a
	// shared forward still hold; use a slightly looser tolerance.
	bn := NewBatchNorm2D(3)
	gradCheck(t, bn, randInput(24, 4, 3, 3, 3), 5e-2)
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	// Finite differences are unreliable at max boundaries; instead verify the
	// subgradient routing property directly.
	mp := NewMaxPool2D(2)
	x := randInput(25, 1, 1, 4, 4)
	y := mp.Forward(x, true)
	g := tensor.New(y.Shape...)
	g.Fill(1)
	dx := mp.Backward(g)
	// Each 2x2 window must route exactly one unit of gradient.
	var total float32
	nonzero := 0
	for _, v := range dx.Data {
		total += v
		if v != 0 {
			nonzero++
		}
	}
	if total != 4 || nonzero != 4 {
		t.Fatalf("maxpool grad routing: total=%v nonzero=%d, want 4 and 4", total, nonzero)
	}
	// The routed positions must be the argmax positions.
	for oh := 0; oh < 2; oh++ {
		for ow := 0; ow < 2; ow++ {
			var best float32
			bestAt := -1
			for kh := 0; kh < 2; kh++ {
				for kw := 0; kw < 2; kw++ {
					idx := (oh*2+kh)*4 + (ow*2 + kw)
					if bestAt < 0 || x.Data[idx] > best {
						best, bestAt = x.Data[idx], idx
					}
				}
			}
			if dx.Data[bestAt] != 1 {
				t.Fatalf("gradient not routed to argmax at window (%d,%d)", oh, ow)
			}
		}
	}
}

func TestSequentialGradientsEndToEnd(t *testing.T) {
	rng := tensor.NewRNG(26)
	model := NewSequential("tiny",
		NewConv2D(rng, 1, 2, 3, 1, 1, true),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewLinear(rng, 2*2*2, 3, true),
	)
	x := randInput(27, 2, 1, 4, 4)
	labels := []int{0, 2}
	model.ZeroGrad()
	logits := model.Forward(x, true)
	_, grad := CrossEntropy(logits, labels)
	model.Backward(grad)

	// Finite-difference a few weights of the first conv through the whole
	// network + loss.
	conv := model.Layers[0].(*Conv2D)
	const eps = 1e-2
	for _, idx := range sampleIdx(conv.Weight.W.Len(), 5) {
		orig := conv.Weight.W.Data[idx]
		conv.Weight.W.Data[idx] = orig + eps
		lp, _ := CrossEntropy(model.Forward(x, true), labels)
		conv.Weight.W.Data[idx] = orig - eps
		lm, _ := CrossEntropy(model.Forward(x, true), labels)
		conv.Weight.W.Data[idx] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(conv.Weight.Grad.Data[idx])
		if !closeGrad(got, want, 3e-2) {
			t.Errorf("end-to-end conv grad[%d] = %.5g, finite diff %.5g", idx, got, want)
		}
	}
}
