// Int8 layer tests live in an external test package so they can use
// internal/quant (which imports nn) for realistic calibration without an
// import cycle.
package nn_test

import (
	"math"
	"math/rand"
	"testing"

	"nshd/internal/nn"
	"nshd/internal/quant"
	"nshd/internal/tensor"
)

// pow2Conv builds a float Conv2D and its int8 twin with power-of-two scales
// everywhere, so every multiplication in both datapaths is exact in float32
// and the two must agree bit-for-bit after quantization.
func pow2Conv(t *testing.T, rng *rand.Rand, inC, outC, k, stride, pad int, relu bool) (*nn.Conv2D, *nn.Int8Conv2D, nn.Int8Quant) {
	t.Helper()
	const (
		sx = float32(0.5)   // input scale
		sw = float32(0.25)  // weight scale (all channels)
		sy = float32(4.0)   // output scale
		zx = uint8(30)
		zy = uint8(12)
	)
	kdim := inC * k * k
	w8 := make([]int8, outC*kdim)
	for i := range w8 {
		w8[i] = int8(rng.Intn(255) - 127)
	}
	conv := nn.NewConv2D(tensor.NewRNG(1), inC, outC, k, stride, pad, true)
	for i, v := range w8 {
		conv.Weight.W.Data[i] = float32(v) * sw
	}
	bias32 := make([]int32, outC)
	scales := make([]float32, outC)
	wsum := make([]int32, outC)
	for oc := 0; oc < outC; oc++ {
		for j := 0; j < kdim; j++ {
			wsum[oc] += int32(w8[oc*kdim+j])
		}
		b32 := int32(rng.Intn(2001) - 1000)
		conv.Bias.W.Data[oc] = float32(b32) * sx * sw
		bias32[oc] = b32 - int32(zx)*wsum[oc]
		scales[oc] = sx * sw / sy
	}
	q := nn.Int8Quant{InScale: sx, InZero: zx, OutScale: sy, OutZero: zy, ClampLo: 0, ClampHi: 255}
	if relu {
		q.ClampLo = zy
	}
	return conv, nn.NewInt8Conv2D(inC, outC, k, k, stride, pad, w8, bias32, scales, q), q
}

// TestInt8Conv2DBitExactPow2 pins the conv datapath (im2col + int8 GEMM +
// bias + requant + clamp) against the float reference with power-of-two
// scales: quantizing the float output must reproduce the int8 output
// exactly, including the fused-ReLU clamp and zero-point padding.
func TestInt8Conv2DBitExactPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		inC, outC, k, stride, pad int
		relu                      bool
	}{
		{3, 8, 3, 1, 1, true},
		{3, 8, 3, 1, 1, false},
		{4, 6, 1, 1, 0, true}, // pointwise elision path
		{2, 5, 3, 2, 1, true},
	}
	for _, c := range cases {
		conv, qconv, q := pow2Conv(t, rng, c.inC, c.outC, c.k, c.stride, c.pad, c.relu)
		n, h, w := 2, 9, 7
		xq := tensor.NewQTensor(q.InScale, q.InZero, n, c.inC, h, w)
		xf := tensor.New(n, c.inC, h, w)
		for i := range xq.Data {
			xq.Data[i] = uint8(rng.Intn(256))
			xf.Data[i] = q.InScale * float32(int32(xq.Data[i])-int32(q.InZero))
		}
		ar := tensor.NewArena()
		yf := conv.ForwardInfer(xf, ar)
		if c.relu {
			for i, v := range yf.Data {
				if v < 0 {
					yf.Data[i] = 0
				}
			}
		}
		yq := qconv.ForwardInt8(xq, tensor.NewArena())
		if yq.Scale != q.OutScale || yq.Zero != q.OutZero {
			t.Fatalf("output qparams (%g, %d)", yq.Scale, yq.Zero)
		}
		for i, v := range yf.Data {
			want := tensor.RoundAway(v/q.OutScale) + int32(q.OutZero)
			lo, hi := int32(q.ClampLo), int32(q.ClampHi)
			if want < lo {
				want = lo
			}
			if want > hi {
				want = hi
			}
			if int32(yq.Data[i]) != want {
				t.Fatalf("case %+v elem %d: int8 %d, float-quantized %d (float %g)", c, i, yq.Data[i], want, v)
			}
		}
	}
}

// TestInt8Conv2DCalibrated runs the realistic pipeline — quant.QuantizeChannels
// weights, observer-calibrated activation ranges — and checks the dequantized
// int8 output stays within the quantization error budget of the float output.
func TestInt8Conv2DCalibrated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inC, outC, k := 3, 16, 3
	conv := nn.NewConv2D(tensor.NewRNG(2), inC, outC, k, 1, 1, true)
	for i := range conv.Bias.W.Data {
		conv.Bias.W.Data[i] = rng.Float32()*0.2 - 0.1
	}
	n, h, w := 4, 12, 12
	xf := tensor.New(n, inC, h, w)
	for i := range xf.Data {
		xf.Data[i] = rng.Float32()*4 - 2
	}
	yf := conv.ForwardInfer(xf, tensor.NewArena())

	// Calibrate activations, quantize weights, fold bias.
	var xo, yo quant.MinMaxObserver
	xo.Observe(xf.Data)
	yo.Observe(yf.Data)
	sx, zx := quant.ActQuant(xo.Range())
	sy, zy := quant.ActQuant(yo.Range())
	wq := quant.QuantizeChannels(conv.Weight.W)
	kdim := wq.Cols
	bias32 := make([]int32, outC)
	scales := make([]float32, outC)
	for oc := 0; oc < outC; oc++ {
		var wsum int32
		for j := 0; j < kdim; j++ {
			wsum += int32(wq.Data[oc*kdim+j])
		}
		bias32[oc] = tensor.RoundAway(conv.Bias.W.Data[oc]/(sx*wq.Scales[oc])) - int32(zx)*wsum
		scales[oc] = sx * wq.Scales[oc] / sy
	}
	qc := nn.NewInt8Conv2D(inC, outC, k, k, 1, 1, wq.Data, bias32, scales,
		nn.Int8Quant{InScale: sx, InZero: zx, OutScale: sy, OutZero: zy, ClampLo: 0, ClampHi: 255})

	xq := tensor.NewQTensor(sx, zx, n, inC, h, w)
	tensor.QuantizeU8(xq.Data, xf.Data, sx, zx)
	yq := qc.ForwardInt8(xq, tensor.NewArena())

	// Error budget: output rounding (sy/2) plus input and weight quantization
	// error propagated through the dot product.
	var worstBudget float64
	var sumAbs, sumErr float64
	for oc := 0; oc < outC; oc++ {
		var wAbs float64
		for j := 0; j < kdim; j++ {
			wAbs += math.Abs(float64(wq.Data[oc*kdim+j]) * float64(wq.Scales[oc]))
		}
		budget := float64(sy)/2 + wAbs*float64(sx)/2 + float64(wq.Scales[oc])/2*float64(kdim)*2.0
		if budget > worstBudget {
			worstBudget = budget
		}
	}
	for i, v := range yf.Data {
		deq := float64(yq.Scale) * float64(int32(yq.Data[i])-int32(yq.Zero))
		err := math.Abs(deq - float64(v))
		sumErr += err
		sumAbs += math.Abs(float64(v))
		if err > worstBudget+1e-3 {
			t.Fatalf("elem %d: int8 %g vs float %g, error %g exceeds budget %g", i, deq, v, err, worstBudget)
		}
	}
	if rel := sumErr / (sumAbs/float64(len(yf.Data)) + 1e-9) / float64(len(yf.Data)); rel > 0.05 {
		t.Fatalf("mean relative error %g too high for calibrated int8", rel)
	}
}

func TestInt8LinearBitExactPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const (
		in, out = 37, 11
		sx      = float32(0.25)
		sw      = float32(0.5)
		sy      = float32(2.0)
		zx      = uint8(100)
		zy      = uint8(7)
	)
	w8 := make([]int8, out*in)
	for i := range w8 {
		w8[i] = int8(rng.Intn(255) - 127)
	}
	lin := nn.NewLinear(tensor.NewRNG(3), in, out, true)
	for i, v := range w8 {
		lin.Weight.W.Data[i] = float32(v) * sw
	}
	bias32 := make([]int32, out)
	scales := make([]float32, out)
	for oc := 0; oc < out; oc++ {
		var wsum int32
		for j := 0; j < in; j++ {
			wsum += int32(w8[oc*in+j])
		}
		b32 := int32(rng.Intn(401) - 200)
		lin.Bias.W.Data[oc] = float32(b32) * sx * sw
		bias32[oc] = b32 - int32(zx)*wsum
		scales[oc] = sx * sw / sy
	}
	q := nn.Int8Quant{InScale: sx, InZero: zx, OutScale: sy, OutZero: zy, ClampLo: 0, ClampHi: 255}
	qlin := nn.NewInt8Linear(in, out, w8, bias32, scales, q)

	n := 3
	xq := tensor.NewQTensor(sx, zx, n, in)
	xf := tensor.New(n, in)
	for i := range xq.Data {
		xq.Data[i] = uint8(rng.Intn(256))
		xf.Data[i] = sx * float32(int32(xq.Data[i])-int32(zx))
	}
	yf := lin.ForwardInfer(xf, tensor.NewArena())
	yq := qlin.ForwardInt8(xq, tensor.NewArena())
	for i, v := range yf.Data {
		want := tensor.RoundAway(v/sy) + int32(zy)
		if want < 0 {
			want = 0
		}
		if want > 255 {
			want = 255
		}
		if int32(yq.Data[i]) != want {
			t.Fatalf("elem %d: int8 %d, float-quantized %d (float %g)", i, yq.Data[i], want, v)
		}
	}
}

// TestInt8MaxPoolExact: max pooling commutes with the (monotone)
// dequantization, so pooling in u8 must match the float pool bit-for-bit
// after dequantizing.
func TestInt8MaxPoolExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, c, h, w := 2, 3, 8, 6
	sx, zx := float32(0.1), uint8(40)
	xq := tensor.NewQTensor(sx, zx, n, c, h, w)
	xf := tensor.New(n, c, h, w)
	for i := range xq.Data {
		xq.Data[i] = uint8(rng.Intn(256))
		xf.Data[i] = sx * float32(int32(xq.Data[i])-int32(zx))
	}
	pool := &nn.MaxPool2D{K: 2}
	yf := pool.ForwardInfer(xf, tensor.NewArena())
	yq := (&nn.Int8MaxPool2D{K: 2}).ForwardInt8(xq, tensor.NewArena())
	if yq.Scale != sx || yq.Zero != zx {
		t.Fatalf("max pool must pass qparams through, got (%g, %d)", yq.Scale, yq.Zero)
	}
	for i := range yf.Data {
		deq := sx * float32(int32(yq.Data[i])-int32(zx))
		if deq != yf.Data[i] {
			t.Fatalf("elem %d: int8 pool %g, float pool %g", i, deq, yf.Data[i])
		}
	}
}

func TestInt8FlattenView(t *testing.T) {
	xq := tensor.NewQTensor(0.5, 3, 2, 3, 4, 4)
	for i := range xq.Data {
		xq.Data[i] = uint8(i)
	}
	y := nn.Int8Flatten{}.ForwardInt8(xq, tensor.NewArena())
	if y.Rank() != 2 || y.Shape[0] != 2 || y.Shape[1] != 48 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	if &y.Data[0] != &xq.Data[0] {
		t.Fatal("flatten must be a view, not a copy")
	}
	if y.Scale != 0.5 || y.Zero != 3 {
		t.Fatalf("flatten qparams (%g, %d)", y.Scale, y.Zero)
	}
}

// TestInt8InputMismatchPanics: feeding a tensor quantized with different
// parameters than the layer was folded for must fail loudly.
func TestInt8InputMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, qconv, q := pow2Conv(t, rng, 2, 3, 3, 1, 1, false)
	xq := tensor.NewQTensor(q.InScale*2, q.InZero, 1, 2, 5, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched input qparams must panic")
		}
	}()
	qconv.ForwardInt8(xq, tensor.NewArena())
}
