package nn

import (
	"math/rand"
	"testing"

	"nshd/internal/tensor"
)

// randomFuseChain builds a random conv[+bn][+act][+pool] chain (optionally
// flatten-terminated) that stays spatially valid from a random input shape,
// with randomized weights and running statistics. Returns the model and the
// input shape.
func randomFuseChain(rng *rand.Rand, trng *tensor.RNG) (*Sequential, []int) {
	c := 1 + rng.Intn(4)
	h := 6 + rng.Intn(12)
	w := 6 + rng.Intn(12)
	in := []int{c, h, w}
	var layers []Layer
	nUnits := 1 + rng.Intn(3)
	for u := 0; u < nUnits; u++ {
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		outC := 1 + rng.Intn(24)
		conv := NewConv2D(trng, c, outC, k, stride, pad, rng.Intn(2) == 0)
		g := conv.geom(h, w)
		if g.Validate() != nil {
			conv = NewConv2D(trng, c, outC, 1, 1, 0, true)
			g = conv.geom(h, w)
		}
		layers = append(layers, conv)
		c, h, w = outC, g.OutH(), g.OutW()
		if rng.Intn(2) == 0 {
			bn := NewBatchNorm2D(c)
			trng.FillNormal(bn.Gamma.W, 1, 0.3)
			trng.FillNormal(bn.Beta.W, 0, 0.5)
			trng.FillNormal(bn.RunMean, 0, 0.5)
			trng.FillUniform(bn.RunVar, 0.2, 2.0)
			layers = append(layers, bn)
		}
		switch rng.Intn(3) {
		case 0:
			layers = append(layers, NewReLU())
		case 1:
			layers = append(layers, NewReLU6())
		}
		if pk := 2 + rng.Intn(2); rng.Intn(2) == 0 && h/pk > 0 && w/pk > 0 {
			layers = append(layers, NewMaxPool2D(pk))
			h, w = h/pk, w/pk
		}
	}
	if rng.Intn(2) == 0 {
		layers = append(layers, NewFlatten())
	}
	return NewSequential("chain", layers...), in
}

// runBitCompare runs model unfused and fused on the same input and fails on
// the first differing output bit.
func runBitCompare(t *testing.T, model, fused *Sequential, in []int, n int, trng *tensor.RNG, tag string) {
	t.Helper()
	x := tensor.New(append([]int{n}, in...)...)
	trng.FillNormal(x, 0, 1)

	ar := tensor.NewArena()
	xa := ar.Alloc(x.Shape...)
	copy(xa.Data, x.Data)
	want := model.ForwardInfer(xa, ar)

	ar2 := tensor.NewArena()
	xb := ar2.Alloc(x.Shape...)
	copy(xb.Data, x.Data)
	got := fused.ForwardInfer(xb, ar2)

	if !got.SameShape(want) {
		t.Fatalf("%s: fused shape %v, want %v", tag, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: fused[%d]=%v, unfused=%v", tag, i, got.Data[i], want.Data[i])
		}
	}
}

// TestFusedBlockMatchesUnfused pins the tiled fused executor bit-identical
// to the layer-by-layer inference pass across randomized chains (kernel,
// stride, pad, BN, activation, pool, flatten) and randomized forced tile
// heights — including single-row tiles, where every halo is taller than the
// tile, and ragged bottom tiles.
func TestFusedBlockMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trng := tensor.NewRNG(43)
	for trial := 0; trial < 40; trial++ {
		model, in := randomFuseChain(rng, trng)
		fused := FuseInference(model, in[0], in[1], in[2], true)
		if fused == model {
			t.Fatalf("trial %d: force-fuse did not rewrite %v", trial, model.Label)
		}
		hasBlock := false
		for _, l := range fused.Layers {
			if _, ok := l.(*FusedBlock); ok {
				hasBlock = true
			}
		}
		if !hasBlock {
			t.Fatalf("trial %d: no FusedBlock in fused model", trial)
		}
		n := 1 + rng.Intn(2)
		runBitCompare(t, model, fused, in, n, trng, "whole-map tiles")

		// Re-fuse with a forced tiny tile height to exercise the multi-tile
		// schedule with halos larger than the tile.
		saved := fuseForceTileRows
		fuseForceTileRows = 1 + rng.Intn(3)
		tiny := FuseInference(model, in[0], in[1], in[2], true)
		fuseForceTileRows = saved
		runBitCompare(t, model, tiny, in, n, trng, "forced tiny tiles")
	}
}

// TestFusedBlockPartitionsBitEqual pins the partitioned executor (several
// fuseParts splitting the sample×tile grid, each with its own buffers)
// bit-identical to the single-partition serial schedule.
func TestFusedBlockPartitionsBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	trng := tensor.NewRNG(53)
	for trial := 0; trial < 10; trial++ {
		model, in := randomFuseChain(rng, trng)
		saved := fuseForceTileRows
		fuseForceTileRows = 2
		serial := FuseInference(model, in[0], in[1], in[2], true)
		split := FuseInference(model, in[0], in[1], in[2], true)
		fuseForceTileRows = saved
		for _, l := range split.Layers {
			if blk, ok := l.(*FusedBlock); ok {
				blk.nParts = 1 + rng.Intn(4) // before any run is built
			}
		}
		runBitCompare(t, serial, split, in, 3, trng, "partitioned")
	}
}

// TestFuseInferenceGate checks the default size gate: a tiny chain stays
// unfused without force, and fusing shares (not copies) the parameters.
func TestFuseInferenceGate(t *testing.T) {
	trng := tensor.NewRNG(59)
	conv := NewConv2D(trng, 3, 4, 3, 1, 1, true)
	model := NewSequential("tiny", conv, NewReLU(), NewMaxPool2D(2), NewFlatten())
	if got := FuseInference(model, 3, 8, 8, false); got != model {
		t.Fatalf("tiny chain fused under default gate")
	}
	fused := FuseInference(model, 3, 8, 8, true)
	if fused == model {
		t.Fatalf("force did not fuse")
	}
	if len(fused.Layers) != 1 {
		t.Fatalf("fused model has %d layers, want 1 (block absorbs flatten)", len(fused.Layers))
	}
	blk, ok := fused.Layers[0].(*FusedBlock)
	if !ok {
		t.Fatalf("fused layer is %T, want *FusedBlock", fused.Layers[0])
	}
	ps := blk.Params()
	if len(ps) != 2 || ps[0] != conv.Weight || ps[1] != conv.Bias {
		t.Fatalf("fused block must share the original parameters")
	}
	wantShape := model.OutShape([]int{3, 8, 8})
	gotShape := blk.OutShape([]int{3, 8, 8})
	if len(gotShape) != 1 || gotShape[0] != wantShape[0] {
		t.Fatalf("OutShape = %v, want %v", gotShape, wantShape)
	}
	if blk.Stats([]int{3, 8, 8}) != model.Stats([]int{3, 8, 8}) {
		t.Fatalf("fused Stats differ from unfused")
	}
}

// TestFusedBlockZeroAllocSteadyState pins the fused inference pass at zero
// heap allocations once the arena is frozen.
func TestFusedBlockZeroAllocSteadyState(t *testing.T) {
	trng := tensor.NewRNG(61)
	model := NewSequential("z",
		NewConv2D(trng, 3, 8, 3, 1, 1, false),
		NewBatchNorm2D(8),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(trng, 8, 12, 3, 1, 1, true),
		NewReLU(),
		NewFlatten(),
	)
	saved := fuseForceTileRows
	fuseForceTileRows = 3
	fused := FuseInference(model, 3, 16, 16, true)
	fuseForceTileRows = saved

	x := tensor.New(2, 3, 16, 16)
	trng.FillNormal(x, 0, 1)
	ar := tensor.NewArena()
	for i := 0; i < 3; i++ { // grow the arena and the run freelist
		xa := ar.Alloc(x.Shape...)
		copy(xa.Data, x.Data)
		fused.ForwardInfer(xa, ar)
		ar.Reset()
	}
	ar.Freeze()
	if a := testing.AllocsPerRun(50, func() {
		xa := ar.Alloc(x.Shape...)
		copy(xa.Data, x.Data)
		fused.ForwardInfer(xa, ar)
		ar.Reset()
	}); a != 0 {
		t.Fatalf("fused ForwardInfer allocated %.1f times per run", a)
	}
}
