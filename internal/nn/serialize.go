package nn

import (
	"encoding/gob"
	"fmt"
	"os"

	"nshd/internal/tensor"
)

// Snapshot is the on-disk form of a model's learnable state: every parameter
// plus non-learnable state such as batch-norm running statistics. The network
// topology is NOT serialized — models are rebuilt from their zoo spec and
// then restored, which keeps snapshots small and forward-compatible.
type Snapshot struct {
	Label   string
	Tensors map[string][]float32
	Shapes  map[string][]int
}

// Walk visits l and every nested layer in deterministic order. It descends
// into every composite layer defined in this package — *Sequential used as a
// Layer (e.g. non-skip MobileNetV2/EfficientNet blocks), Residual bodies and
// projections, and SEBlock MLPs — so stateful leaves (BatchNorm running
// statistics) are always reached.
func Walk(l Layer, visit func(Layer)) {
	visit(l)
	switch v := l.(type) {
	case *Sequential:
		for _, inner := range v.Layers {
			Walk(inner, visit)
		}
	case *Residual:
		for _, inner := range v.Body.Layers {
			Walk(inner, visit)
		}
		if v.Proj != nil {
			Walk(v.Proj, visit)
		}
	case *SEBlock:
		visit(v.FC1)
		visit(v.FC2)
	}
}

// WalkModel visits every layer of a Sequential recursively.
func WalkModel(s *Sequential, visit func(Layer)) {
	for _, l := range s.Layers {
		Walk(l, visit)
	}
}

// TakeSnapshot captures all parameters and batch-norm running statistics.
func TakeSnapshot(s *Sequential) *Snapshot {
	snap := &Snapshot{
		Label:   s.Label,
		Tensors: make(map[string][]float32),
		Shapes:  make(map[string][]int),
	}
	put := func(key string, t *tensor.Tensor) {
		snap.Tensors[key] = append([]float32(nil), t.Data...)
		snap.Shapes[key] = append([]int(nil), t.Shape...)
	}
	i := 0
	WalkModel(s, func(l Layer) {
		for pi, p := range l.Params() {
			put(fmt.Sprintf("layer%04d/param%d", i, pi), p.W)
		}
		if bn, ok := l.(*BatchNorm2D); ok {
			put(fmt.Sprintf("layer%04d/runmean", i), bn.RunMean)
			put(fmt.Sprintf("layer%04d/runvar", i), bn.RunVar)
		}
		i++
	})
	return snap
}

// RestoreSnapshot writes a snapshot's tensors back into a freshly built model
// with the same topology. It fails if any tensor is missing or mis-shaped.
func RestoreSnapshot(s *Sequential, snap *Snapshot) error {
	var err error
	get := func(key string, t *tensor.Tensor) {
		if err != nil {
			return
		}
		data, ok := snap.Tensors[key]
		if !ok {
			err = fmt.Errorf("nn: snapshot missing tensor %q", key)
			return
		}
		if len(data) != t.Len() {
			err = fmt.Errorf("nn: snapshot tensor %q has %d elems, model wants %d", key, len(data), t.Len())
			return
		}
		copy(t.Data, data)
	}
	i := 0
	WalkModel(s, func(l Layer) {
		for pi, p := range l.Params() {
			get(fmt.Sprintf("layer%04d/param%d", i, pi), p.W)
		}
		if bn, ok := l.(*BatchNorm2D); ok {
			get(fmt.Sprintf("layer%04d/runmean", i), bn.RunMean)
			get(fmt.Sprintf("layer%04d/runvar", i), bn.RunVar)
		}
		i++
	})
	return err
}

// SaveModel writes the model snapshot to path with gob encoding.
func SaveModel(s *Sequential, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save model: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(TakeSnapshot(s)); err != nil {
		return fmt.Errorf("nn: encode model: %w", err)
	}
	return nil
}

// LoadModel restores a snapshot from path into the given model.
func LoadModel(s *Sequential, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: load model: %w", err)
	}
	defer f.Close()
	var snap Snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode model: %w", err)
	}
	return RestoreSnapshot(s, &snap)
}
