package nn

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"nshd/internal/parallel"
	"nshd/internal/tensor"
)

// Fused extraction blocks.
//
// A cut-CNN feature extractor is a chain of conv → BN → ReLU → maxpool
// stages. Run layer by layer, every stage writes its full feature map and the
// next stage reads it back: on maps larger than the cache that round trip is
// pure DRAM traffic, and on batch-1 serving it dominates the extract stage.
// FuseInference rewrites runs of fusible layers into FusedBlocks that execute
// per output tile instead: for each tile of the block's final output, the
// plan walks the chain backwards to find the input row halo each unit needs,
// runs the row-tiled implicit-GEMM conv (tensor.ConvMulRowsInto) into a
// cache-resident tile buffer, applies bias/BN/activation in place, pools into
// the next tile buffer, and only the block's final output rows are written to
// the activation arena. Inter-layer feature maps never leave the tile
// buffers, which the planner sizes to FuseTileBudgetBytes.
//
// Bit-exactness. The fused pass produces the same float32 bits as the
// layer-by-layer pass:
//   - the row-tiled conv is bit-identical to ConvMulSerialInto (see
//     conv_tile.go), which is bit-identical to the im2col and pointwise
//     inference paths;
//   - bias, BN and activation are elementwise with the exact per-element
//     expressions of Conv2D.ForwardInfer / BatchNorm2D.forwardInferAct /
//     ReLU / ReLU6, so slicing them by tile cannot change any element;
//   - pooling replicates MaxPool2D.ForwardInfer's comparison order
//     (kh-major, kw-minor, strictly-greater), so ties resolve identically.
// Tiles are independent, so serial and parallel execution are bit-equal too.

// FuseTileBudgetBytes bounds the per-execution working set (tile buffers +
// GEMM scratch) of a FusedBlock. The planner picks the largest tile height
// whose working set fits; the default keeps a block resident in a 2 MiB L2
// with room for the packed GEMM panels. Var, not const, for tests and tuning.
var FuseTileBudgetBytes = 3 << 19

// FuseMinMACs gates fusion by block size: below it the per-tile bookkeeping
// costs more than the DRAM traffic it saves, so tiny extractors stay on the
// layer-by-layer path (which also remains the testing reference). Var so
// tests can force either side.
var FuseMinMACs int64 = 1 << 21

// fuseForceTileRows, when positive, overrides the planner's tile height so
// tests can force ragged multi-tile schedules on small fixtures.
var fuseForceTileRows = 0

// fusedUnit is one conv-rooted stage of a FusedBlock: a convolution plus the
// optional BN, activation and 2-D max pool that follow it, with its geometry
// bound to the planned input size.
type fusedUnit struct {
	conv *Conv2D
	bn   *BatchNorm2D
	act  fusedAct
	pool *MaxPool2D

	g            tensor.ConvGeom
	convH, convW int // conv output map
	outH, outW   int // after pool (== conv map when pool is nil)
}

// unitSpan is the per-tile row plan for one unit: the unit output rows this
// tile must produce, the conv output rows that requires, and the input row
// window (halo included) the conv reads. A unit's input span is, by
// construction, the previous unit's output span.
type unitSpan struct {
	outLo, outHi   int
	convLo, convHi int
	inLo, inHi     int
}

// FusedBlock executes a run of conv[+bn][+act][+pool] stages (optionally
// ending in a flatten) tile by tile. It implements Layer by delegating to the
// original layers — training passes are untouched — and InferenceLayer with
// the tiled executor. A block is planned for one input size and panics on any
// other.
type FusedBlock struct {
	units   []fusedUnit
	leaves  []Layer // original layers, in order, for Layer passthrough
	flatten bool

	inC, inH, inW    int
	outC, outH, outW int
	sampleIn         int
	sampleOut        int

	tileRows int
	nTiles   int
	nParts   int
	spans    [][]unitSpan // [tile][unit]
	wmats    []*tensor.Tensor

	convSize      []int // per unit, floats in the conv-output tile buffer
	outSize       []int // per unit, floats in the pooled-output tile buffer
	scratchFloats int

	// Run freelist, mirroring the engine's arena freelist: reusable
	// executors are parked in a channel; the blocking receive on the full
	// path is deadlock-free because concurrent ForwardInfer executions are
	// bounded by the same Workers() cap that bounds engine arenas.
	runs    chan *fuseRun
	created atomic.Int64
	maxRuns int64
}

// fusePart is one partition's tile buffers; slice headers are rebound from
// the caller's arena on every execution, so a frozen arena keeps the fused
// path heap-allocation-free.
type fusePart struct {
	conv    [][]float32 // per unit: conv output rows (nil when conv writes y)
	out     [][]float32 // per unit: unit output rows (aliases conv when no pool)
	scratch []float32
}

// fuseRun is one reusable executor: a prebound parallel fan-out over nParts
// partitions of the (sample, tile) item grid, plus the per-partition buffer
// sets. Building it once at compile time keeps Run on the serving path
// allocation-free.
type fuseRun struct {
	b     *FusedBlock
	call  *parallel.Call
	parts []fusePart
	x, y  []float32
	n     int
}

// FuseInference returns s with every fusible run of inference layers replaced
// by a FusedBlock planned for per-sample input [c, h, w]. Layers are shared,
// never copied; if nothing fuses, s itself is returned. A run is fused when
// force is set, or when it exceeds FuseMinMACs and has more than one unit (or
// a pool) — single pool-less convs gain nothing from tiling. Runs that stay
// unfused keep their original layers.
func FuseInference(s *Sequential, c, h, w int, force bool) *Sequential {
	leaves := flattenLayers(s)
	shape := []int{c, h, w}
	out := make([]Layer, 0, len(leaves))
	changed := false
	for i := 0; i < len(leaves); {
		conv, ok := leaves[i].(*Conv2D)
		if !ok || len(shape) != 3 || conv.InC != shape[0] {
			shape = leaves[i].OutShape(shape)
			out = append(out, leaves[i])
			i++
			continue
		}
		units, runLeaves, flatten, next, outShape := scanFuseRun(leaves, i, shape)
		if len(units) == 0 { // geometry invalid for this input: leave as is
			shape = leaves[i].OutShape(shape)
			out = append(out, leaves[i])
			i++
			continue
		}
		if shouldFuse(units, force) {
			out = append(out, newFusedBlock(units, runLeaves, shape[0], shape[1], shape[2], flatten))
			changed = true
		} else {
			out = append(out, runLeaves...)
		}
		shape = outShape
		i = next
	}
	if !changed {
		return s
	}
	return &Sequential{Label: s.Label, Layers: out}
}

// flattenLayers unwraps nested Sequentials into a flat leaf list. Other
// containers (Residual, SEBlock) are leaves: their internal structure is not
// a linear chain.
func flattenLayers(l Layer) []Layer {
	s, ok := l.(*Sequential)
	if !ok {
		return []Layer{l}
	}
	var out []Layer
	for _, sub := range s.Layers {
		out = append(out, flattenLayers(sub)...)
	}
	return out
}

// scanFuseRun greedily scans a maximal fusible run starting at ls[i] (a
// Conv2D): repeated conv[+bn][+act][+pool] units, then an optional trailing
// Flatten. It returns the parsed units, the consumed leaves, whether a
// flatten was absorbed, the index after the run, and the per-sample output
// shape.
func scanFuseRun(ls []Layer, i int, shape []int) (units []fusedUnit, leaves []Layer, flatten bool, next int, outShape []int) {
	c, h, w := shape[0], shape[1], shape[2]
	j := i
	for j < len(ls) {
		conv, ok := ls[j].(*Conv2D)
		if !ok || conv.InC != c {
			break
		}
		g := conv.geom(h, w)
		if g.Validate() != nil {
			break
		}
		u := fusedUnit{conv: conv, g: g, convH: g.OutH(), convW: g.OutW()}
		leaves = append(leaves, conv)
		j++
		if j < len(ls) {
			if bn, ok := ls[j].(*BatchNorm2D); ok && bn.C == conv.OutC {
				u.bn = bn
				leaves = append(leaves, bn)
				j++
			}
		}
		if j < len(ls) {
			switch ls[j].(type) {
			case *ReLU:
				u.act = actReLU
				leaves = append(leaves, ls[j])
				j++
			case *ReLU6:
				u.act = actReLU6
				leaves = append(leaves, ls[j])
				j++
			}
		}
		u.outH, u.outW = u.convH, u.convW
		if j < len(ls) {
			if mp, ok := ls[j].(*MaxPool2D); ok && u.convH/mp.K > 0 && u.convW/mp.K > 0 {
				u.pool = mp
				u.outH, u.outW = u.convH/mp.K, u.convW/mp.K
				leaves = append(leaves, mp)
				j++
			}
		}
		units = append(units, u)
		c, h, w = conv.OutC, u.outH, u.outW
	}
	outShape = []int{c, h, w}
	if len(units) > 0 && j < len(ls) {
		if fl, ok := ls[j].(*Flatten); ok {
			flatten = true
			leaves = append(leaves, fl)
			j++
			outShape = []int{c * h * w}
		}
	}
	return units, leaves, flatten, j, outShape
}

// shouldFuse applies the size gate (see FuseMinMACs).
func shouldFuse(units []fusedUnit, force bool) bool {
	if force {
		return true
	}
	var macs int64
	pooled := false
	for _, u := range units {
		macs += int64(u.conv.OutC) * int64(u.convH*u.convW) * int64(u.conv.InC*u.conv.KH*u.conv.KW)
		if u.pool != nil {
			pooled = true
		}
	}
	if len(units) < 2 && !pooled {
		return false
	}
	return macs >= FuseMinMACs
}

// newFusedBlock plans the tile schedule and buffer sizes for a parsed run.
func newFusedBlock(units []fusedUnit, leaves []Layer, inC, inH, inW int, flatten bool) *FusedBlock {
	last := units[len(units)-1]
	b := &FusedBlock{
		units: units, leaves: leaves, flatten: flatten,
		inC: inC, inH: inH, inW: inW,
		outC: last.conv.OutC, outH: last.outH, outW: last.outW,
	}
	b.sampleIn = inC * inH * inW
	b.sampleOut = b.outC * b.outH * b.outW
	b.wmats = make([]*tensor.Tensor, len(units))
	for i, u := range units {
		kdim := u.conv.InC * u.conv.KH * u.conv.KW
		b.wmats[i] = tensor.FromSlice(u.conv.Weight.W.Data, u.conv.OutC, kdim)
		if s := tensor.ConvTileScratch(u.conv.OutC); s > b.scratchFloats {
			b.scratchFloats = s
		}
	}
	T := b.outH
	if fuseForceTileRows > 0 {
		T = min(fuseForceTileRows, b.outH)
	} else {
		for T > 1 && b.workingSetBytes(T) > FuseTileBudgetBytes {
			T--
		}
	}
	b.tileRows = T
	b.convSize, b.outSize, b.spans = b.sizesForTile(T)
	b.nTiles = len(b.spans)
	b.nParts = min(parallel.Workers(), b.nTiles)
	b.maxRuns = int64(parallel.Workers())
	b.runs = make(chan *fuseRun, b.maxRuns)
	return b
}

// sizesForTile plans every tile for tile height T and returns the per-unit
// buffer sizes (max over tiles) plus the per-tile spans. The last unit's
// final stage writes the output tensor directly, so it gets a conv buffer
// only when a pool sits between the conv and the output, and never an out
// buffer.
func (b *FusedBlock) sizesForTile(T int) (convSize, outSize []int, spans [][]unitSpan) {
	n := (b.outH + T - 1) / T
	convSize = make([]int, len(b.units))
	outSize = make([]int, len(b.units))
	spans = make([][]unitSpan, n)
	gs := make([]spanGeom, len(b.units))
	for i := range b.units {
		gs[i] = spanGeom{g: b.units[i].g}
		if b.units[i].pool != nil {
			gs[i].poolK = b.units[i].pool.K
		}
	}
	for t := 0; t < n; t++ {
		lo := t * T
		sp := planUnitSpans(gs, lo, min(lo+T, b.outH))
		spans[t] = sp
		for i := range b.units {
			u := &b.units[i]
			last := i == len(b.units)-1
			if !last || u.pool != nil {
				if sz := u.conv.OutC * (sp[i].convHi - sp[i].convLo) * u.convW; sz > convSize[i] {
					convSize[i] = sz
				}
			}
			if !last && u.pool != nil {
				if sz := u.conv.OutC * (sp[i].outHi - sp[i].outLo) * u.outW; sz > outSize[i] {
					outSize[i] = sz
				}
			}
		}
	}
	return convSize, outSize, spans
}

// workingSetBytes estimates one partition's resident bytes at tile height T.
func (b *FusedBlock) workingSetBytes(T int) int {
	convSize, outSize, _ := b.sizesForTile(T)
	floats := b.scratchFloats
	for i := range convSize {
		floats += convSize[i] + outSize[i]
	}
	return 4 * floats
}

// spanGeom is the geometry a unit contributes to the halo recurrence: its
// conv and the window of the pool that follows it (0 = no pool). Shared by
// the float and int8 planners.
type spanGeom struct {
	g     tensor.ConvGeom
	poolK int
}

// planUnitSpans walks the chain backwards from block output rows
// [outLo, outHi): a pool needs its conv rows [lo·K, hi·K); a conv's output
// rows [c0, c1) read input rows [c0·S−Pad, (c1−1)·S−Pad+KH) clamped to the
// input (the low bound can exceed InH when the padding overhangs the
// kernel); the previous unit must produce exactly that window.
func planUnitSpans(gs []spanGeom, outLo, outHi int) []unitSpan {
	sp := make([]unitSpan, len(gs))
	lo, hi := outLo, outHi
	for i := len(gs) - 1; i >= 0; i-- {
		u := gs[i]
		s := unitSpan{outLo: lo, outHi: hi, convLo: lo, convHi: hi}
		if u.poolK > 0 {
			s.convLo, s.convHi = lo*u.poolK, hi*u.poolK
		}
		if s.convHi > s.convLo {
			s.inLo = min(max(0, s.convLo*u.g.StrideH-u.g.PadH), u.g.InH)
			s.inHi = min(u.g.InH, (s.convHi-1)*u.g.StrideH-u.g.PadH+u.g.KH)
			s.inHi = max(s.inHi, s.inLo)
		}
		sp[i] = s
		lo, hi = s.inLo, s.inHi
	}
	return sp
}

// Name implements Layer.
func (b *FusedBlock) Name() string {
	var sb strings.Builder
	sb.WriteString("fused{")
	for i := range b.units {
		u := &b.units[i]
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(u.conv.Name())
		if u.bn != nil {
			sb.WriteString("+bn")
		}
		switch u.act {
		case actReLU:
			sb.WriteString("+relu")
		case actReLU6:
			sb.WriteString("+relu6")
		}
		if u.pool != nil {
			fmt.Fprintf(&sb, "+pool%d", u.pool.K)
		}
	}
	if b.flatten {
		sb.WriteString(" flatten")
	}
	sb.WriteByte('}')
	return sb.String()
}

// Forward implements Layer by running the original layers; training is
// untouched by fusion.
func (b *FusedBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range b.leaves {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer. The fused executor is inference-only; training
// graphs are built from the unfused model, so this is never reached.
func (b *FusedBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	panic("nn: FusedBlock is inference-only; train the unfused model")
}

// Params implements Layer.
func (b *FusedBlock) Params() []*Param {
	var ps []*Param
	for _, l := range b.leaves {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutShape implements Layer.
func (b *FusedBlock) OutShape(in []int) []int {
	for _, l := range b.leaves {
		in = l.OutShape(in)
	}
	return in
}

// Stats implements Layer.
func (b *FusedBlock) Stats(in []int) Stats {
	var total Stats
	for _, l := range b.leaves {
		total.Add(l.Stats(in))
		in = l.OutShape(in)
	}
	return total
}

// getRun pops a reusable executor, creating one if the block has not yet
// reached its cap (Workers(), the bound on concurrent executions).
func (b *FusedBlock) getRun() *fuseRun {
	select {
	case r := <-b.runs:
		return r
	default:
	}
	if b.created.Add(1) <= b.maxRuns {
		return b.newRun()
	}
	b.created.Add(-1)
	return <-b.runs
}

// newRun builds an executor: per-partition buffer tables (headers only — the
// backing arrays are arena-bound per call) and the parallel fan-out with its
// kernel prebound, so Run never allocates.
func (b *FusedBlock) newRun() *fuseRun {
	r := &fuseRun{b: b, parts: make([]fusePart, b.nParts)}
	for i := range r.parts {
		r.parts[i].conv = make([][]float32, len(b.units))
		r.parts[i].out = make([][]float32, len(b.units))
	}
	r.call = parallel.NewCall(b.nParts, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			r.runPart(p)
		}
	})
	return r
}

// ForwardInfer implements InferenceLayer: the tiled executor. Output goes to
// the arena; tile buffers are arena scratch released before returning.
func (b *FusedBlock) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "FusedBlock")
	if x.Rank() != 4 || x.Shape[1] != b.inC || x.Shape[2] != b.inH || x.Shape[3] != b.inW {
		panic(fmt.Sprintf("nn: FusedBlock planned for [N %d %d %d], got %v",
			b.inC, b.inH, b.inW, x.Shape))
	}
	var y *tensor.Tensor
	if b.flatten {
		y = ar.Alloc(n, b.sampleOut)
	} else {
		y = ar.Alloc(n, b.outC, b.outH, b.outW)
	}
	if n == 0 {
		return y
	}
	m := ar.Mark()
	r := b.getRun()
	// Bind every partition's buffers serially before dispatch: all parts are
	// bound on every call so the arena's high-water mark is deterministic
	// regardless of how many partitions end up with work.
	for pi := range r.parts {
		pt := &r.parts[pi]
		for i := range b.units {
			if b.convSize[i] > 0 {
				pt.conv[i] = ar.Floats(b.convSize[i])
			}
			if b.outSize[i] > 0 {
				pt.out[i] = ar.Floats(b.outSize[i])
			} else {
				pt.out[i] = pt.conv[i] // pool-less unit: conv buffer is the output
			}
		}
		pt.scratch = ar.Floats(b.scratchFloats)
	}
	r.x, r.y, r.n = x.Data, y.Data, n
	r.call.Run()
	r.x, r.y = nil, nil
	b.runs <- r
	ar.Release(m)
	return y
}

// runPart executes partition p's contiguous share of the (sample, tile) grid.
// Items are independent and each partition owns its buffers, so any
// partitioning — including the single-worker serial one — yields identical
// bits.
func (r *fuseRun) runPart(p int) {
	b := r.b
	items := r.n * b.nTiles
	lo, hi := p*items/b.nParts, (p+1)*items/b.nParts
	pt := &r.parts[p]
	for it := lo; it < hi; it++ {
		r.runTile(pt, it/b.nTiles, it%b.nTiles)
	}
}

// runTile produces block output rows spans[t] of sample s.
func (r *fuseRun) runTile(pt *fusePart, s, t int) {
	b := r.b
	spans := b.spans[t]
	xs := r.x[s*b.sampleIn : (s+1)*b.sampleIn]
	ys := r.y[s*b.sampleOut : (s+1)*b.sampleOut]
	for i := range b.units {
		u := &b.units[i]
		sp := &spans[i]
		convRows := sp.convHi - sp.convLo
		if convRows <= 0 {
			continue
		}
		// Input window: the block input is read in place (only the halo rows
		// are touched); inner units read the previous unit's tile buffer,
		// which holds exactly rows [inLo, inHi).
		src, row0, rows := xs, 0, b.inH
		if i > 0 {
			src, row0, rows = pt.out[i-1], sp.inLo, sp.inHi-sp.inLo
		}
		// Conv destination: the tile buffer, or the output tensor directly
		// when this is the block's final stage.
		last := i == len(b.units)-1
		dst, ldd, dstOff := pt.conv[i], convRows*u.convW, 0
		if last && u.pool == nil {
			dst, ldd, dstOff = ys, u.convH*u.convW, sp.convLo*u.convW
		}
		tensor.ConvMulRowsInto(dst, ldd, dstOff, b.wmats[i], u.g, src, row0, rows, sp.convLo, sp.convHi, pt.scratch)
		fuseEpilogue(u, dst, ldd, dstOff, convRows)
		if u.pool != nil {
			pdst, pldd, pOff := pt.out[i], (sp.outHi-sp.outLo)*u.outW, 0
			if last {
				pdst, pldd, pOff = ys, b.outH*b.outW, sp.outLo*b.outW
			}
			fusePool(u, sp, dst, ldd, dstOff, pdst, pldd, pOff)
		}
	}
}

// fuseEpilogue applies the unit's bias, BN and activation in place over the
// conv output rows, channel by channel, with the exact per-element arithmetic
// of the unfused layers (Conv2D bias add, BatchNorm2D.forwardInferAct,
// ReLU/ReLU6).
func fuseEpilogue(u *fusedUnit, dst []float32, ldd, dstOff, convRows int) {
	w := convRows * u.convW
	for oc := 0; oc < u.conv.OutC; oc++ {
		seg := dst[oc*ldd+dstOff : oc*ldd+dstOff+w]
		if u.conv.useBias && u.bn == nil && u.act == actReLU {
			// The common bias→ReLU epilogue (every VGG conv) in one sweep:
			// per element the identical add-then-clamp the two passes below
			// would do, but the tile is only walked once.
			tensor.AddScalarReLUInPlace(seg, u.conv.Bias.W.Data[oc])
			continue
		}
		if u.conv.useBias {
			bv := u.conv.Bias.W.Data[oc]
			for j := range seg {
				seg[j] += bv
			}
		}
		if u.bn != nil {
			mean := u.bn.RunMean.Data[oc]
			invStd := 1 / float32(math.Sqrt(float64(u.bn.RunVar.Data[oc]+u.bn.Eps)))
			g, bb := u.bn.Gamma.W.Data[oc], u.bn.Beta.W.Data[oc]
			switch u.act {
			case actReLU:
				for j, v := range seg {
					y := g*(v-mean)*invStd + bb
					if y <= 0 {
						y = 0
					}
					seg[j] = y
				}
			case actReLU6:
				for j, v := range seg {
					y := g*(v-mean)*invStd + bb
					if y <= 0 {
						y = 0
					} else if y >= 6 {
						y = 6
					}
					seg[j] = y
				}
			default:
				for j, v := range seg {
					seg[j] = g*(v-mean)*invStd + bb
				}
			}
			continue
		}
		switch u.act {
		case actReLU:
			tensor.ReLUInPlace(seg)
		case actReLU6:
			for j, v := range seg {
				if v <= 0 {
					seg[j] = 0
				} else if v >= 6 {
					seg[j] = 6
				}
			}
		}
	}
}

// fusePool max-pools conv rows [convLo, convHi) (held in src starting at
// buffer row 0) into unit output rows [outLo, outHi), replicating
// MaxPool2D.ForwardInfer: the 2×2 window unrolled over two sliced rows, the
// general window with first-wins strictly-greater comparisons — both visit
// taps kh-major, kw-minor, so results are bit-identical.
func fusePool(u *fusedUnit, sp *unitSpan, src []float32, lds, srcOff int, dst []float32, ldd, dstOff int) {
	k, w, ow := u.pool.K, u.convW, u.outW
	for oc := 0; oc < u.conv.OutC; oc++ {
		inBase := oc*lds + srcOff - sp.convLo*w
		outBase := oc*ldd + dstOff - sp.outLo*ow
		if k == 2 {
			for oh := sp.outLo; oh < sp.outHi; oh++ {
				r0 := src[inBase+2*oh*w : inBase+2*oh*w+w]
				r1 := src[inBase+(2*oh+1)*w : inBase+(2*oh+1)*w+w]
				out := dst[outBase+oh*ow : outBase+oh*ow+ow]
				for j := range out {
					best := r0[2*j]
					if v := r0[2*j+1]; v > best {
						best = v
					}
					if v := r1[2*j]; v > best {
						best = v
					}
					if v := r1[2*j+1]; v > best {
						best = v
					}
					out[j] = best
				}
			}
			continue
		}
		for oh := sp.outLo; oh < sp.outHi; oh++ {
			for j := 0; j < ow; j++ {
				best := float32(0)
				bestAt := -1
				for kh := 0; kh < k; kh++ {
					row := inBase + (oh*k+kh)*w
					for kw := 0; kw < k; kw++ {
						if v := src[row+j*k+kw]; bestAt < 0 || v > best {
							best, bestAt = v, row+j*k+kw
						}
					}
				}
				dst[outBase+oh*ow+j] = best
			}
		}
	}
}
