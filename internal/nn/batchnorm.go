package nn

import (
	"fmt"
	"math"

	"nshd/internal/tensor"
)

// BatchNorm2D normalizes each channel of a [N, C, H, W] batch to zero mean
// and unit variance using batch statistics during training and running
// statistics during inference, then applies a learnable affine (γ, β).
type BatchNorm2D struct {
	C        int
	Eps      float32
	Momentum float32

	Gamma, Beta *Param
	RunMean     *tensor.Tensor
	RunVar      *tensor.Tensor

	// backward caches
	cachedXhat *tensor.Tensor
	cachedStd  []float32
	cachedN    int
	cachedHW   int
}

// NewBatchNorm2D constructs a batch-norm layer over c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:   newParam(fmt.Sprintf("bn%d.gamma", c), c),
		Beta:    newParam(fmt.Sprintf("bn%d.beta", c), c),
		RunMean: tensor.New(c),
		RunVar:  tensor.New(c),
	}
	bn.Gamma.W.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return fmt.Sprintf("batchnorm(%d)", bn.C) }

// Forward normalizes per channel.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "BatchNorm2D")
	if x.Rank() != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D(%d) expects [N %d H W], got %v", bn.C, bn.C, x.Shape))
	}
	h, w := x.Shape[2], x.Shape[3]
	hw := h * w
	y := tensor.New(x.Shape...)

	if !train {
		parallelFor(bn.C, func(clo, chi int) {
			for ch := clo; ch < chi; ch++ {
				mean := bn.RunMean.Data[ch]
				invStd := 1 / float32(math.Sqrt(float64(bn.RunVar.Data[ch]+bn.Eps)))
				g, b := bn.Gamma.W.Data[ch], bn.Beta.W.Data[ch]
				for i := 0; i < n; i++ {
					base := (i*bn.C + ch) * hw
					for j := 0; j < hw; j++ {
						y.Data[base+j] = g*(x.Data[base+j]-mean)*invStd + b
					}
				}
			}
		})
		bn.cachedXhat = nil
		return y
	}

	xhat := tensor.New(x.Shape...)
	std := make([]float32, bn.C)
	cnt := float64(n * hw)
	// Channels are fully independent (disjoint reads of x, disjoint writes to
	// y/xhat/std and the running stats), so the per-channel loop parallelizes
	// with bit-identical results regardless of worker scheduling.
	parallelFor(bn.C, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			var sum float64
			for i := 0; i < n; i++ {
				base := (i*bn.C + ch) * hw
				for j := 0; j < hw; j++ {
					sum += float64(x.Data[base+j])
				}
			}
			mean := float32(sum / cnt)
			var vs float64
			for i := 0; i < n; i++ {
				base := (i*bn.C + ch) * hw
				for j := 0; j < hw; j++ {
					d := float64(x.Data[base+j] - mean)
					vs += d * d
				}
			}
			variance := float32(vs / cnt)
			std[ch] = float32(math.Sqrt(float64(variance + bn.Eps)))
			invStd := 1 / std[ch]
			g, b := bn.Gamma.W.Data[ch], bn.Beta.W.Data[ch]
			for i := 0; i < n; i++ {
				base := (i*bn.C + ch) * hw
				for j := 0; j < hw; j++ {
					xh := (x.Data[base+j] - mean) * invStd
					xhat.Data[base+j] = xh
					y.Data[base+j] = g*xh + b
				}
			}
			bn.RunMean.Data[ch] = (1-bn.Momentum)*bn.RunMean.Data[ch] + bn.Momentum*mean
			bn.RunVar.Data[ch] = (1-bn.Momentum)*bn.RunVar.Data[ch] + bn.Momentum*variance
		}
	})
	bn.cachedXhat = xhat
	bn.cachedStd = std
	bn.cachedN = n
	bn.cachedHW = hw
	return y
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.cachedXhat == nil {
		panic("nn: BatchNorm2D.Backward without Forward(train=true)")
	}
	n, hw := bn.cachedN, bn.cachedHW
	m := float32(n * hw)
	dx := tensor.New(grad.Shape...)
	// Per-channel gradients are independent; see Forward for the determinism
	// argument.
	parallelFor(bn.C, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			var sumDy, sumDyXhat float64
			for i := 0; i < n; i++ {
				base := (i*bn.C + ch) * hw
				for j := 0; j < hw; j++ {
					dy := float64(grad.Data[base+j])
					sumDy += dy
					sumDyXhat += dy * float64(bn.cachedXhat.Data[base+j])
				}
			}
			bn.Beta.Grad.Data[ch] += float32(sumDy)
			bn.Gamma.Grad.Data[ch] += float32(sumDyXhat)
			g := bn.Gamma.W.Data[ch]
			invStd := 1 / bn.cachedStd[ch]
			for i := 0; i < n; i++ {
				base := (i*bn.C + ch) * hw
				for j := 0; j < hw; j++ {
					dy := grad.Data[base+j]
					xh := bn.cachedXhat.Data[base+j]
					dx.Data[base+j] = g * invStd / m * (m*dy - float32(sumDy) - xh*float32(sumDyXhat))
				}
			}
		}
	})
	return dx
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutShape implements Layer.
func (bn *BatchNorm2D) OutShape(in []int) []int { return in }

// Stats implements Layer. The affine fold counts as one MAC per element at
// inference (scale+shift fused), matching how DPU-style accelerators fold BN
// into the preceding convolution.
func (bn *BatchNorm2D) Stats(in []int) Stats {
	elems := int64(shapeElems(in))
	return Stats{MACs: elems, Params: int64(2 * bn.C), ActBytes: elems * 4}
}
