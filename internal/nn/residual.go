package nn

import (
	"fmt"

	"nshd/internal/tensor"
)

// Residual computes y = Body(x) + Proj(x); Proj may be nil for an identity
// skip (requires Body to preserve shape). It is the skip connection used by
// MobileNetV2's inverted residual blocks and EfficientNet's MBConv blocks.
type Residual struct {
	Body *Sequential
	Proj Layer // nil = identity skip
}

// NewResidual wraps body with a skip connection.
func NewResidual(body *Sequential, proj Layer) *Residual {
	return &Residual{Body: body, Proj: proj}
}

// Name implements Layer.
func (r *Residual) Name() string { return fmt.Sprintf("residual(%s)", r.Body.Label) }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	var skip *tensor.Tensor
	if r.Proj != nil {
		skip = r.Proj.Forward(x, train)
	} else {
		skip = x
	}
	if !y.SameShape(skip) {
		panic(fmt.Sprintf("nn: residual shape mismatch body=%v skip=%v", y.Shape, skip.Shape))
	}
	return tensor.Add(y, skip)
}

// Backward implements Layer: the gradient flows through both branches and
// the input gradients sum.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dxBody := r.Body.Backward(grad)
	if r.Proj != nil {
		dxSkip := r.Proj.Backward(grad)
		return tensor.Add(dxBody, dxSkip)
	}
	return tensor.Add(dxBody, grad)
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Proj != nil {
		ps = append(ps, r.Proj.Params()...)
	}
	return ps
}

// OutShape implements Layer.
func (r *Residual) OutShape(in []int) []int { return r.Body.OutShape(in) }

// Stats implements Layer. The elementwise add costs no MACs under the
// paper's counting convention.
func (r *Residual) Stats(in []int) Stats {
	s := r.Body.Stats(in)
	if r.Proj != nil {
		s.Add(r.Proj.Stats(in))
	}
	return s
}

// SEBlock is a squeeze-and-excitation block: channel attention computed from
// globally pooled features through a bottleneck MLP, used by EfficientNet.
//
//	scale = σ(W2·SiLU(W1·gap(x)))  ;  y = x * scale (broadcast over H, W)
type SEBlock struct {
	C, Reduced int
	FC1, FC2   *Linear
	act        *SiLU
	sig        *Sigmoid

	cachedX     *tensor.Tensor
	cachedScale *tensor.Tensor // [N, C]
	cachedGAP   *GlobalAvgPool2D
}

// NewSEBlock constructs an SE block with the given reduction ratio.
func NewSEBlock(rng *tensor.RNG, c, reduction int) *SEBlock {
	red := c / reduction
	if red < 1 {
		red = 1
	}
	return &SEBlock{
		C: c, Reduced: red,
		FC1: NewLinear(rng, c, red, true),
		FC2: NewLinear(rng, red, c, true),
		act: NewSiLU(),
		sig: NewSigmoid(),
	}
}

// Name implements Layer.
func (se *SEBlock) Name() string { return fmt.Sprintf("se(%d/%d)", se.C, se.Reduced) }

// Forward implements Layer.
func (se *SEBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "SEBlock")
	if x.Rank() != 4 || x.Shape[1] != se.C {
		panic(fmt.Sprintf("nn: SEBlock(%d) expects [N %d H W], got %v", se.C, se.C, x.Shape))
	}
	gap := NewGlobalAvgPool2D()
	pooled := gap.Forward(x, train) // [N, C]
	z := se.FC1.Forward(pooled, train)
	z = se.act.Forward(z, train)
	z = se.FC2.Forward(z, train)
	scale := se.sig.Forward(z, train) // [N, C]

	h, w := x.Shape[2], x.Shape[3]
	y := tensor.New(x.Shape...)
	for i := 0; i < n; i++ {
		for ch := 0; ch < se.C; ch++ {
			s := scale.Data[i*se.C+ch]
			base := (i*se.C + ch) * h * w
			for j := 0; j < h*w; j++ {
				y.Data[base+j] = x.Data[base+j] * s
			}
		}
	}
	if train {
		se.cachedX = x
		se.cachedScale = scale
		se.cachedGAP = gap
	} else {
		se.cachedX, se.cachedScale, se.cachedGAP = nil, nil, nil
	}
	return y
}

// Backward implements Layer.
func (se *SEBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if se.cachedX == nil {
		panic("nn: SEBlock.Backward without Forward(train=true)")
	}
	x, scale := se.cachedX, se.cachedScale
	n := x.Shape[0]
	h, w := x.Shape[2], x.Shape[3]

	// y = x*s: dx gets grad*s; ds gets Σ_hw grad*x.
	dx := tensor.New(x.Shape...)
	dScale := tensor.New(n, se.C)
	for i := 0; i < n; i++ {
		for ch := 0; ch < se.C; ch++ {
			s := scale.Data[i*se.C+ch]
			base := (i*se.C + ch) * h * w
			var ds float32
			for j := 0; j < h*w; j++ {
				g := grad.Data[base+j]
				dx.Data[base+j] = g * s
				ds += g * x.Data[base+j]
			}
			dScale.Data[i*se.C+ch] = ds
		}
	}
	// Back through the MLP to the pooled features.
	d := se.sig.Backward(dScale)
	d = se.FC2.Backward(d)
	d = se.act.Backward(d)
	d = se.FC1.Backward(d)
	dPooled := se.cachedGAP.Backward(d)
	return tensor.Add(dx, dPooled)
}

// Params implements Layer.
func (se *SEBlock) Params() []*Param {
	return append(se.FC1.Params(), se.FC2.Params()...)
}

// OutShape implements Layer.
func (se *SEBlock) OutShape(in []int) []int { return in }

// Stats implements Layer.
func (se *SEBlock) Stats(in []int) Stats {
	s1 := se.FC1.Stats([]int{se.C})
	s2 := se.FC2.Stats([]int{se.Reduced})
	elems := int64(shapeElems(in))
	return Stats{
		MACs:     s1.MACs + s2.MACs + elems, // + the channel rescale
		Params:   s1.Params + s2.Params,
		ActBytes: elems * 4,
	}
}
