package nn

import (
	"math"

	"nshd/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and clears nothing; call
	// ZeroGrad on the model between batches.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v := o.velocity[p]
		if v == nil {
			v = tensor.New(p.W.Shape...)
			o.velocity[p] = v
		}
		lr := float32(o.LR)
		mu := float32(o.Momentum)
		wd := float32(o.WeightDecay)
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			if wd != 0 {
				g += wd * p.W.Data[i]
			}
			v.Data[i] = mu*v.Data[i] + g
			p.W.Data[i] -= lr * v.Data[i]
		}
	}
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam constructs Adam with the usual defaults for unset betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Tensor),
		v: make(map[*Param]*tensor.Tensor),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = tensor.New(p.W.Shape...)
			v = tensor.New(p.W.Shape...)
			o.m[p] = m
			o.v[p] = v
		}
		b1, b2 := float32(o.Beta1), float32(o.Beta2)
		wd := float32(o.WeightDecay)
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			if wd != 0 {
				g += wd * p.W.Data[i]
			}
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mhat := float64(m.Data[i]) / bc1
			vhat := float64(v.Data[i]) / bc2
			p.W.Data[i] -= float32(o.LR * mhat / (math.Sqrt(vhat) + o.Eps))
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// StepDecay returns a learning-rate schedule that starts at base and decays
// by factor every stepEpochs epochs — the classic CNN schedule.
func StepDecay(base, factor float64, stepEpochs int) func(epoch int) float64 {
	return func(epoch int) float64 {
		lr := base
		for e := stepEpochs; e < epoch; e += stepEpochs {
			lr *= factor
		}
		return lr
	}
}

// CosineDecay returns a cosine-annealed schedule over totalEpochs from base
// down to floor.
func CosineDecay(base, floor float64, totalEpochs int) func(epoch int) float64 {
	return func(epoch int) float64 {
		if epoch >= totalEpochs {
			return floor
		}
		progress := float64(epoch-1) / float64(totalEpochs)
		return floor + (base-floor)*0.5*(1+math.Cos(math.Pi*progress))
	}
}
