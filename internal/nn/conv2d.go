package nn

import (
	"fmt"

	"nshd/internal/tensor"
)

// parallelFor indirects the worker-pool dispatch used by the training-side
// layer kernels. The determinism tests swap it for a serial runner with the
// identical chunk schedule to prove that parallel and serial backward passes
// produce bit-identical gradients.
var parallelFor = tensor.ParallelFor

// Conv2D is a standard 2-D convolution over [N, C, H, W] inputs with weights
// [OutC, InC, KH, KW]. Forward uses im2col + matmul; backward recomputes the
// column matrix per sample to trade compute for memory.
type Conv2D struct {
	InC, OutC     int
	KH, KW        int
	Stride, Pad   int
	Weight        *Param
	Bias          *Param
	useBias       bool
	cachedX       *tensor.Tensor
	cachedInShape []int
}

// NewConv2D constructs a convolution with He-normal weights.
func NewConv2D(rng *tensor.RNG, inC, outC, k, stride, pad int, bias bool) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		Weight:  newParam(fmt.Sprintf("conv%dx%d_%d_%d.w", k, k, inC, outC), outC, inC, k, k),
		useBias: bias,
	}
	rng.KaimingConv(c.Weight.W)
	if bias {
		c.Bias = newParam(fmt.Sprintf("conv%dx%d_%d_%d.b", k, k, inC, outC), outC)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d→%d,s%d,p%d)", c.KH, c.KW, c.InC, c.OutC, c.Stride, c.Pad)
}

func (c *Conv2D) geom(h, w int) tensor.ConvGeom {
	return tensor.ConvGeom{
		InC: c.InC, InH: h, InW: w,
		KH: c.KH, KW: c.KW,
		StrideH: c.Stride, StrideW: c.Stride,
		PadH: c.Pad, PadW: c.Pad,
	}
}

// Forward computes the convolution for every sample in the batch in parallel.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "Conv2D")
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects [N %d H W], got %v", c.InC, x.Shape))
	}
	h, w := x.Shape[2], x.Shape[3]
	g := c.geom(h, w)
	if err := g.Validate(); err != nil {
		panic(err)
	}
	outH, outW := g.OutH(), g.OutW()
	y := tensor.New(n, c.OutC, outH, outW)
	if train {
		c.cachedX = x
		c.cachedInShape = []int{c.InC, h, w}
	} else {
		c.cachedX = nil
	}
	wmat := c.Weight.W.Reshape(c.OutC, c.InC*c.KH*c.KW)
	kdim := c.InC * c.KH * c.KW
	sampleIn := c.InC * h * w
	sampleOut := c.OutC * outH * outW
	// Tiny batches cannot feed the pool through per-sample splitting, so let
	// the GEMM itself parallelize over tiles; larger batches run one serial
	// GEMM per sample on its worker. The two GEMM paths are bit-identical, so
	// the choice (a function of n only) never changes the output.
	serialGemm := n >= 4
	parallelFor(n, func(lo, hi int) {
		colsBuf := tensor.GetFloats(kdim * outH * outW)
		gemmBuf := tensor.GetFloats(tensor.GemmScratch())
		cols := tensor.FromSlice(colsBuf, kdim, outH*outW)
		for i := lo; i < hi; i++ {
			tensor.Im2Col(g, x.Data[i*sampleIn:(i+1)*sampleIn], cols)
			out := tensor.FromSlice(y.Data[i*sampleOut:(i+1)*sampleOut], c.OutC, outH*outW)
			if serialGemm {
				tensor.MatMulSerialInto(out, wmat, cols, gemmBuf)
			} else {
				tensor.MatMulInto(out, wmat, cols)
			}
			if c.useBias {
				for oc := 0; oc < c.OutC; oc++ {
					b := c.Bias.W.Data[oc]
					seg := out.Data[oc*outH*outW : (oc+1)*outH*outW]
					for j := range seg {
						seg[j] += b
					}
				}
			}
		}
		tensor.PutFloats(gemmBuf)
		tensor.PutFloats(colsBuf)
	})
	return y
}

// convBackChunk is the fixed number of samples per gradient-accumulator
// chunk in Conv2D.Backward. It depends on nothing — in particular not on the
// worker count — so the chunk list, each chunk's internal accumulation order,
// and the final in-order merge are identical no matter how chunks are
// scheduled across workers: serial and parallel backward passes produce
// bit-identical gradients.
const convBackChunk = 4

// convAcc is one chunk's private gradient accumulator, merged deterministically
// after the parallel loop.
type convAcc struct {
	dw *tensor.Tensor
	db []float32
}

// Backward accumulates weight/bias gradients and returns dx. The hot loops
// are GEMM calls: dW accumulates as g @ colsᵀ through the vectorized
// MatMulT-family dot kernel, and dcols = Wᵀ @ g runs on the blocked GEMM —
// replacing the seed's per-element scalar Dot loops (kept as
// BackwardReference for gradient tests and before/after benchmarks).
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cachedX == nil {
		panic("nn: Conv2D.Backward without Forward(train=true)")
	}
	x := c.cachedX
	n := x.Shape[0]
	h, w := x.Shape[2], x.Shape[3]
	g := c.geom(h, w)
	outH, outW := g.OutH(), g.OutW()
	sampleIn := c.InC * h * w
	sampleOut := c.OutC * outH * outW
	kdim := c.InC * c.KH * c.KW

	dx := tensor.New(n, c.InC, h, w)
	wmat := c.Weight.W.Reshape(c.OutC, kdim)
	wmatT := tensor.Transpose(wmat) // [kdim, OutC]

	numChunks := (n + convBackChunk - 1) / convBackChunk
	accs := make([]convAcc, numChunks)
	parallelFor(numChunks, func(clo, chi int) {
		colsBuf := tensor.GetFloats(kdim * outH * outW)
		dcolsBuf := tensor.GetFloats(kdim * outH * outW)
		gemmBuf := tensor.GetFloats(tensor.GemmScratch())
		cols := tensor.FromSlice(colsBuf, kdim, outH*outW)
		dcols := tensor.FromSlice(dcolsBuf, kdim, outH*outW)
		for ci := clo; ci < chi; ci++ {
			a := convAcc{dw: tensor.New(c.OutC, kdim)}
			if c.useBias {
				a.db = make([]float32, c.OutC)
			}
			lo := ci * convBackChunk
			hi := lo + convBackChunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				gmat := tensor.FromSlice(grad.Data[i*sampleOut:(i+1)*sampleOut], c.OutC, outH*outW)
				// dW += g @ colsᵀ: one accumulating GEMM per sample.
				tensor.Im2Col(g, x.Data[i*sampleIn:(i+1)*sampleIn], cols)
				tensor.MatMulTAccSerial(a.dw, gmat, cols)
				if c.useBias {
					for oc := 0; oc < c.OutC; oc++ {
						var s float32
						for _, v := range gmat.Row(oc) {
							s += v
						}
						a.db[oc] += s
					}
				}
				// dcols = Wᵀ @ g ; dx = col2im(dcols)
				tensor.MatMulSerialInto(dcols, wmatT, gmat, gemmBuf)
				tensor.Col2Im(g, dcols, dx.Data[i*sampleIn:(i+1)*sampleIn])
			}
			accs[ci] = a
		}
		tensor.PutFloats(gemmBuf)
		tensor.PutFloats(dcolsBuf)
		tensor.PutFloats(colsBuf)
	})
	for _, a := range accs {
		c.Weight.Grad.Reshape(c.OutC, kdim).AXPY(1, a.dw)
		if c.useBias {
			for oc, v := range a.db {
				c.Bias.Grad.Data[oc] += v
			}
		}
	}
	return dx
}

// BackwardReference is the seed repository's Conv2D backward pass — scalar
// per-element Dot loops for dW and the pool-dispatched GEMM for dcols — kept
// verbatim as the correctness reference for the GEMM-ified Backward and as
// the "before" side of the training benchmarks. It accumulates into the same
// Weight/Bias gradients and returns the same dx (to float tolerance).
func (c *Conv2D) BackwardReference(grad *tensor.Tensor) *tensor.Tensor {
	if c.cachedX == nil {
		panic("nn: Conv2D.Backward without Forward(train=true)")
	}
	x := c.cachedX
	n := x.Shape[0]
	h, w := x.Shape[2], x.Shape[3]
	g := c.geom(h, w)
	outH, outW := g.OutH(), g.OutW()
	sampleIn := c.InC * h * w
	sampleOut := c.OutC * outH * outW
	kdim := c.InC * c.KH * c.KW

	dx := tensor.New(n, c.InC, h, w)
	wmat := c.Weight.W.Reshape(c.OutC, kdim)
	wmatT := tensor.Transpose(wmat) // [kdim, OutC]

	type acc struct {
		dw *tensor.Tensor
		db []float32
	}
	type job struct{ lo, hi int }
	var jobs []job
	const chunk = 4
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		jobs = append(jobs, job{lo, hi})
	}
	workerAccs := make([]*acc, len(jobs))
	for i := range jobs {
		workerAccs[i] = &acc{dw: tensor.New(c.OutC, kdim), db: make([]float32, c.OutC)}
	}
	tensor.ParallelFor(len(jobs), func(jlo, jhi int) {
		cols := tensor.New(kdim, outH*outW)
		dcols := tensor.New(kdim, outH*outW)
		for ji := jlo; ji < jhi; ji++ {
			a := workerAccs[ji]
			for i := jobs[ji].lo; i < jobs[ji].hi; i++ {
				gslice := grad.Data[i*sampleOut : (i+1)*sampleOut]
				gmat := tensor.FromSlice(gslice, c.OutC, outH*outW)
				// dW += g @ colsᵀ
				tensor.Im2Col(g, x.Data[i*sampleIn:(i+1)*sampleIn], cols)
				for oc := 0; oc < c.OutC; oc++ {
					grow := gmat.Row(oc)
					dwrow := a.dw.Row(oc)
					for kd := 0; kd < kdim; kd++ {
						dwrow[kd] += tensor.Dot(grow, cols.Row(kd))
					}
					if c.useBias {
						var s float32
						for _, v := range grow {
							s += v
						}
						a.db[oc] += s
					}
				}
				// dcols = Wᵀ @ g ; dx = col2im(dcols)
				tensor.MatMulInto(dcols, wmatT, gmat)
				tensor.Col2Im(g, dcols, dx.Data[i*sampleIn:(i+1)*sampleIn])
			}
		}
	})
	for _, a := range workerAccs {
		c.Weight.Grad.Reshape(c.OutC, kdim).AXPY(1, a.dw)
		if c.useBias {
			for oc, v := range a.db {
				c.Bias.Grad.Data[oc] += v
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.useBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D(%d in) given input shape %v", c.InC, in))
	}
	g := c.geom(in[1], in[2])
	return []int{c.OutC, g.OutH(), g.OutW()}
}

// Stats implements Layer.
func (c *Conv2D) Stats(in []int) Stats {
	out := c.OutShape(in)
	outElems := int64(out[1] * out[2])
	macs := outElems * int64(c.OutC) * int64(c.InC*c.KH*c.KW)
	p := int64(c.OutC * c.InC * c.KH * c.KW)
	if c.useBias {
		p += int64(c.OutC)
	}
	return Stats{MACs: macs, Params: p, ActBytes: int64(c.OutC) * outElems * 4}
}

// DepthwiseConv2D convolves each channel with its own k×k filter (groups ==
// channels), the core of MobileNetV2/EfficientNet blocks. Weights are [C, KH, KW].
type DepthwiseConv2D struct {
	C           int
	KH, KW      int
	Stride, Pad int
	Weight      *Param
	cachedX     *tensor.Tensor
}

// NewDepthwiseConv2D constructs a depthwise convolution.
func NewDepthwiseConv2D(rng *tensor.RNG, c, k, stride, pad int) *DepthwiseConv2D {
	d := &DepthwiseConv2D{
		C: c, KH: k, KW: k, Stride: stride, Pad: pad,
		Weight: newParam(fmt.Sprintf("dwconv%dx%d_%d.w", k, k, c), c, k, k),
	}
	// He-normal with fan-in = k*k (one input channel per filter).
	w4 := d.Weight.W.Reshape(c, 1, k, k)
	rng.KaimingConv(w4)
	return d
}

// Name implements Layer.
func (d *DepthwiseConv2D) Name() string {
	return fmt.Sprintf("dwconv%dx%d(%d,s%d)", d.KH, d.KW, d.C, d.Stride)
}

func (d *DepthwiseConv2D) geom(h, w int) tensor.ConvGeom {
	return tensor.ConvGeom{
		InC: 1, InH: h, InW: w,
		KH: d.KH, KW: d.KW,
		StrideH: d.Stride, StrideW: d.Stride,
		PadH: d.Pad, PadW: d.Pad,
	}
}

// Forward applies each channel's filter independently.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "DepthwiseConv2D")
	if x.Rank() != 4 || x.Shape[1] != d.C {
		panic(fmt.Sprintf("nn: DepthwiseConv2D expects [N %d H W], got %v", d.C, x.Shape))
	}
	h, w := x.Shape[2], x.Shape[3]
	g := d.geom(h, w)
	outH, outW := g.OutH(), g.OutW()
	y := tensor.New(n, d.C, outH, outW)
	if train {
		d.cachedX = x
	} else {
		d.cachedX = nil
	}
	chanIn := h * w
	chanOut := outH * outW
	tensor.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ch := 0; ch < d.C; ch++ {
				src := x.Data[(i*d.C+ch)*chanIn : (i*d.C+ch+1)*chanIn]
				dst := y.Data[(i*d.C+ch)*chanOut : (i*d.C+ch+1)*chanOut]
				ker := d.Weight.W.Data[ch*d.KH*d.KW : (ch+1)*d.KH*d.KW]
				d.convChannel(g, src, ker, dst)
			}
		}
	})
	return y
}

func (d *DepthwiseConv2D) convChannel(g tensor.ConvGeom, src, ker, dst []float32) {
	outW := g.OutW()
	for oh := 0; oh < g.OutH(); oh++ {
		for ow := 0; ow < outW; ow++ {
			var s float32
			for kh := 0; kh < d.KH; kh++ {
				ih := oh*d.Stride - d.Pad + kh
				if ih < 0 || ih >= g.InH {
					continue
				}
				for kw := 0; kw < d.KW; kw++ {
					iw := ow*d.Stride - d.Pad + kw
					if iw < 0 || iw >= g.InW {
						continue
					}
					s += src[ih*g.InW+iw] * ker[kh*d.KW+kw]
				}
			}
			dst[oh*outW+ow] = s
		}
	}
}

// Backward accumulates filter gradients and returns dx.
func (d *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.cachedX == nil {
		panic("nn: DepthwiseConv2D.Backward without Forward(train=true)")
	}
	x := d.cachedX
	n := x.Shape[0]
	h, w := x.Shape[2], x.Shape[3]
	g := d.geom(h, w)
	outH, outW := g.OutH(), g.OutW()
	chanIn := h * w
	chanOut := outH * outW
	dx := tensor.New(n, d.C, h, w)
	// Fixed sample chunks with one accumulator each (merged in chunk order),
	// mirroring Conv2D.Backward: deterministic under any scheduling, and one
	// filter-gradient allocation per chunk instead of per sample.
	numChunks := (n + convBackChunk - 1) / convBackChunk
	dwAll := make([]*tensor.Tensor, numChunks)
	parallelFor(numChunks, func(clo, chi int) {
		for ci := clo; ci < chi; ci++ {
			dw := tensor.New(d.C, d.KH, d.KW)
			lo := ci * convBackChunk
			hi := lo + convBackChunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				d.backwardSample(x, grad, dx, dw, g, i, chanIn, chanOut, h, w, outH, outW)
			}
			dwAll[ci] = dw
		}
	})
	for _, dw := range dwAll {
		d.Weight.Grad.AXPY(1, dw)
	}
	return dx
}

// backwardSample accumulates one sample's filter gradient into dw and its
// input gradient into dx.
func (d *DepthwiseConv2D) backwardSample(x, grad, dx, dw *tensor.Tensor, g tensor.ConvGeom, i, chanIn, chanOut, h, w, outH, outW int) {
	for ch := 0; ch < d.C; ch++ {
		src := x.Data[(i*d.C+ch)*chanIn : (i*d.C+ch+1)*chanIn]
		gch := grad.Data[(i*d.C+ch)*chanOut : (i*d.C+ch+1)*chanOut]
		dsrc := dx.Data[(i*d.C+ch)*chanIn : (i*d.C+ch+1)*chanIn]
		ker := d.Weight.W.Data[ch*d.KH*d.KW : (ch+1)*d.KH*d.KW]
		dker := dw.Data[ch*d.KH*d.KW : (ch+1)*d.KH*d.KW]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				gv := gch[oh*outW+ow]
				if gv == 0 {
					continue
				}
				for kh := 0; kh < d.KH; kh++ {
					ih := oh*d.Stride - d.Pad + kh
					if ih < 0 || ih >= h {
						continue
					}
					for kw := 0; kw < d.KW; kw++ {
						iw := ow*d.Stride - d.Pad + kw
						if iw < 0 || iw >= w {
							continue
						}
						dker[kh*d.KW+kw] += gv * src[ih*w+iw]
						dsrc[ih*w+iw] += gv * ker[kh*d.KW+kw]
					}
				}
			}
		}
	}
}

// Params implements Layer.
func (d *DepthwiseConv2D) Params() []*Param { return []*Param{d.Weight} }

// OutShape implements Layer.
func (d *DepthwiseConv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != d.C {
		panic(fmt.Sprintf("nn: DepthwiseConv2D(%d) given input shape %v", d.C, in))
	}
	g := d.geom(in[1], in[2])
	return []int{d.C, g.OutH(), g.OutW()}
}

// Stats implements Layer.
func (d *DepthwiseConv2D) Stats(in []int) Stats {
	out := d.OutShape(in)
	outElems := int64(out[1] * out[2])
	return Stats{
		MACs:     outElems * int64(d.C) * int64(d.KH*d.KW),
		Params:   int64(d.C * d.KH * d.KW),
		ActBytes: int64(d.C) * outElems * 4,
	}
}
