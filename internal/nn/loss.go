package nn

import (
	"fmt"
	"math"

	"nshd/internal/tensor"
)

// CrossEntropy computes softmax cross-entropy over a [N, K] logits batch with
// integer labels, returning the mean loss and the gradient w.r.t. logits.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: CrossEntropy expects [N K] logits, got %v", logits.Shape))
	}
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropy got %d labels for %d samples", len(labels), n))
	}
	grad := tensor.New(n, k)
	var loss float64
	probs := make([]float32, k)
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		tensor.Softmax(probs, row)
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		p := float64(probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grow := grad.Row(i)
		for j := 0; j < k; j++ {
			grow[j] = probs[j] * invN
		}
		grow[y] -= invN
	}
	return loss / float64(n), grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	preds := tensor.ArgmaxRows(logits)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// DistillLoss computes the Hinton-style knowledge-distillation objective for
// NN→NN distillation: (1-α)·CE(student, labels) + α·T²·KL(teacherᵀ ∥ studentᵀ)
// where superscript T denotes temperature-softened distributions. It returns
// the combined loss and gradient w.r.t. the student logits. This is used when
// pretraining compact teachers; the HD-side distillation lives in hdlearn.
func DistillLoss(student, teacher *tensor.Tensor, labels []int, alpha, temperature float64) (float64, *tensor.Tensor) {
	if !student.SameShape(teacher) {
		panic(fmt.Sprintf("nn: DistillLoss shape mismatch %v vs %v", student.Shape, teacher.Shape))
	}
	ceLoss, ceGrad := CrossEntropy(student, labels)
	n, k := student.Shape[0], student.Shape[1]
	klGrad := tensor.New(n, k)
	var klLoss float64
	ps := make([]float32, k)
	pt := make([]float32, k)
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		tensor.SoftmaxT(ps, student.Row(i), temperature)
		tensor.SoftmaxT(pt, teacher.Row(i), temperature)
		grow := klGrad.Row(i)
		for j := 0; j < k; j++ {
			t64, s64 := float64(pt[j]), float64(ps[j])
			if t64 > 1e-12 {
				klLoss += t64 * (math.Log(t64) - math.Log(math.Max(s64, 1e-12)))
			}
			// dKL/dz_s = (ps - pt)/T per sample; the customary T² factor
			// restores gradient scale.
			grow[j] = float32(temperature) * (ps[j] - pt[j]) * invN
		}
	}
	klLoss /= float64(n)
	total := (1-alpha)*ceLoss + alpha*temperature*temperature*klLoss
	grad := tensor.New(n, k)
	for i := range grad.Data {
		grad.Data[i] = float32(1-alpha)*ceGrad.Data[i] + float32(alpha)*klGrad.Data[i]
	}
	return total, grad
}

// MSELoss returns mean squared error and its gradient for same-shape tensors.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSELoss shape mismatch %v vs %v", pred.Shape, target.Shape))
	}
	grad := tensor.New(pred.Shape...)
	var loss float64
	inv := 2 / float32(pred.Len())
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += float64(d) * float64(d)
		grad.Data[i] = inv * d
	}
	return loss / float64(pred.Len()), grad
}
