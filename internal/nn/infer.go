package nn

import (
	"fmt"
	"math"
	"time"

	"nshd/internal/tensor"
)

// InferenceLayer is the serving-side forward contract implemented by every
// layer in this package. ForwardInfer differs from Forward(train=false) in
// three ways that the serving engine depends on:
//
//   - it is state-free: no cached fields are read or written, so one layer
//     instance can serve many goroutines concurrently over frozen weights
//     (Forward(train=false) clears caches, which is a data race);
//   - it allocates exclusively from the caller's arena, so a frozen arena
//     makes the whole pass heap-allocation-free;
//   - it runs strictly on the calling goroutine: the engine parallelizes
//     across batch chunks, not inside layers.
//
// Elementwise layers may overwrite x in place and return it; callers must
// therefore pass arena-owned activations, never model weights or user input.
// Numerically, ForwardInfer matches Forward(train=false) bit-for-bit: it
// reuses the same kernels in the same accumulation order (the serial GEMM
// runs the identical tile schedule — see tensor.MatMulSerialInto).
type InferenceLayer interface {
	Layer
	ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor
}

// convImplicitMinFloats gates Conv2D's implicit-GEMM inference path by the
// size (in float32 elements) of the column matrix it avoids materializing.
// Below it, one flat Im2Col pass over an L2-resident matrix costs less than
// per-tile generation bookkeeping; above it, the materialized matrix spills
// past L2 and the implicit path wins on traffic alone. Var, not const, so
// tests can force either path on small shapes.
var convImplicitMinFloats = 32 * 1024

// InferSupported reports whether every layer reachable from l implements the
// inference contract, descending into containers.
func InferSupported(l Layer) error {
	switch v := l.(type) {
	case *Sequential:
		for _, sub := range v.Layers {
			if err := InferSupported(sub); err != nil {
				return fmt.Errorf("%s: %w", v.Label, err)
			}
		}
		return nil
	case *Residual:
		if err := InferSupported(v.Body); err != nil {
			return err
		}
		if v.Proj != nil {
			return InferSupported(v.Proj)
		}
		return nil
	case InferenceLayer:
		return nil
	default:
		return fmt.Errorf("nn: layer %s has no inference path", l.Name())
	}
}

// ForwardInfer runs all layers in order through the inference contract.
func (s *Sequential) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	return s.forwardInferSteps(x, ar, nil)
}

// ForwardInferTimed is ForwardInfer with a per-step observer: record is
// called after each executed step with its display name and wall time. A
// step is one layer, or one fused BN+activation pair — the identical
// schedule ForwardInfer runs, so timing never changes results.
func (s *Sequential) ForwardInferTimed(x *tensor.Tensor, ar *tensor.Arena, record func(name string, seconds float64)) *tensor.Tensor {
	return s.forwardInferSteps(x, ar, record)
}

// forwardInferSteps is the single stepped implementation behind ForwardInfer
// and ForwardInferTimed.
func (s *Sequential) forwardInferSteps(x *tensor.Tensor, ar *tensor.Arena, record func(string, float64)) *tensor.Tensor {
	for i := 0; i < len(s.Layers); i++ {
		var t0 time.Time
		if record != nil {
			t0 = time.Now()
		}
		step := s.Layers[i]
		suffix := ""
		// Peephole fusion: an elementwise activation directly after a
		// BatchNorm2D folds into the normalization sweep. Both passes are
		// memory-bound, so fusing halves their activation traffic; the
		// arithmetic and comparisons are applied per element exactly as the
		// separate passes would, keeping results bit-identical.
		if bn, ok := step.(*BatchNorm2D); ok && i+1 < len(s.Layers) {
			switch s.Layers[i+1].(type) {
			case *ReLU6:
				x = bn.forwardInferAct(x, actReLU6)
				i++
				suffix = "+relu6"
			case *ReLU:
				x = bn.forwardInferAct(x, actReLU)
				i++
				suffix = "+relu"
			default:
				x = bn.forwardInferAct(x, actNone)
			}
		} else {
			il, ok := step.(InferenceLayer)
			if !ok {
				panic(fmt.Sprintf("nn: layer %s has no inference path", step.Name()))
			}
			x = il.ForwardInfer(x, ar)
		}
		if record != nil {
			// Stop the clock before building the display name: Name() is a
			// string construction the layer's compute didn't pay for.
			d := time.Since(t0)
			record(step.Name()+suffix, d.Seconds())
		}
	}
	return x
}

// ForwardInfer implements InferenceLayer: per-sample im2col + serial GEMM
// with arena scratch released before returning.
func (c *Conv2D) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "Conv2D")
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects [N %d H W], got %v", c.InC, x.Shape))
	}
	h, w := x.Shape[2], x.Shape[3]
	g := c.geom(h, w)
	outH, outW := g.OutH(), g.OutW()
	y := ar.Alloc(n, c.OutC, outH, outW)
	if n == 0 {
		return y
	}
	kdim := c.InC * c.KH * c.KW
	m := ar.Mark()
	wmat := ar.Wrap(c.Weight.W.Data, c.OutC, kdim)
	// Pointwise (1×1, stride 1, no pad) convolution: im2col is the identity —
	// the column matrix is the input sample already laid out as [InC, H*W] —
	// so the GEMM reads the input segment directly. Same values, same layout,
	// same kernel: bit-identical to the copying path.
	pointwise := c.KH == 1 && c.KW == 1 && c.Stride == 1 && c.Pad == 0
	// Large non-pointwise layers go through the implicit-GEMM path: column
	// tiles are generated inside the blocked GEMM instead of materializing
	// the full [kdim, OutH·OutW] matrix. Bit-identical to im2col + GEMM (see
	// tensor.ConvMulSerialInto); the gate keeps tiny layers — where one
	// flat im2col pass is cheaper than per-tile generation bookkeeping — on
	// the materialized path, which also stays the testing reference.
	implicit := !pointwise && kdim*outH*outW >= convImplicitMinFloats
	sampleIn := c.InC * h * w
	var cols *tensor.Tensor
	var scratch []float32
	switch {
	case pointwise:
		cols = ar.Wrap(x.Data[:sampleIn], kdim, outH*outW)
		scratch = ar.Floats(tensor.GemmScratch())
	case implicit:
		scratch = ar.Floats(tensor.ConvGemmScratch())
	default:
		cols = ar.Alloc(kdim, outH*outW)
		scratch = ar.Floats(tensor.GemmScratch())
	}
	sampleOut := c.OutC * outH * outW
	dst := ar.Wrap(y.Data[:sampleOut], c.OutC, outH*outW)
	for i := 0; i < n; i++ {
		seg := y.Data[i*sampleOut : (i+1)*sampleOut]
		dst.Data = seg
		switch {
		case pointwise:
			cols.Data = x.Data[i*sampleIn : (i+1)*sampleIn]
			tensor.MatMulSerialInto(dst, wmat, cols, scratch)
		case implicit:
			tensor.ConvMulSerialInto(dst, wmat, g, x.Data[i*sampleIn:(i+1)*sampleIn], scratch)
		default:
			tensor.Im2Col(g, x.Data[i*sampleIn:(i+1)*sampleIn], cols)
			tensor.MatMulSerialInto(dst, wmat, cols, scratch)
		}
		if c.useBias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.W.Data[oc]
				plane := seg[oc*outH*outW : (oc+1)*outH*outW]
				for j := range plane {
					plane[j] += b
				}
			}
		}
	}
	ar.Release(m)
	return y
}

// ForwardInfer implements InferenceLayer.
func (d *DepthwiseConv2D) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "DepthwiseConv2D")
	if x.Rank() != 4 || x.Shape[1] != d.C {
		panic(fmt.Sprintf("nn: DepthwiseConv2D expects [N %d H W], got %v", d.C, x.Shape))
	}
	h, w := x.Shape[2], x.Shape[3]
	g := d.geom(h, w)
	outH, outW := g.OutH(), g.OutW()
	y := ar.Alloc(n, d.C, outH, outW)
	chanIn := h * w
	chanOut := outH * outW
	for i := 0; i < n; i++ {
		for ch := 0; ch < d.C; ch++ {
			src := x.Data[(i*d.C+ch)*chanIn : (i*d.C+ch+1)*chanIn]
			dst := y.Data[(i*d.C+ch)*chanOut : (i*d.C+ch+1)*chanOut]
			ker := d.Weight.W.Data[ch*d.KH*d.KW : (ch+1)*d.KH*d.KW]
			d.convChannelInfer(g, src, ker, dst)
		}
	}
	return y
}

// convChannelInfer computes the same depthwise channel convolution as
// convChannel but splits each output row into boundary and interior spans:
// interior taps never fall outside the input, so the hot loop runs without
// per-tap bounds tests. Accumulation order (kh-major, kw-minor, single
// float32 accumulator) is identical to convChannel, keeping the result
// bit-exact.
func (d *DepthwiseConv2D) convChannelInfer(g tensor.ConvGeom, src, ker, dst []float32) {
	outH, outW := g.OutH(), g.OutW()
	// Interior columns [wLo, wHi): every kw tap in bounds. Degenerate inputs
	// (kernel wider than the padded row) get no interior and run fully
	// guarded.
	wLo := (d.Pad + d.Stride - 1) / d.Stride
	wHi := (g.InW-d.KW+d.Pad)/d.Stride + 1
	if wHi > outW {
		wHi = outW
	}
	if wLo > outW {
		wLo = outW
	}
	if wHi < wLo {
		wLo, wHi = outW, outW
	}
	for oh := 0; oh < outH; oh++ {
		ihBase := oh*d.Stride - d.Pad
		// Valid vertical tap range for this output row.
		khLo, khHi := 0, d.KH
		if ihBase < 0 {
			khLo = -ihBase
		}
		if over := ihBase + d.KH - g.InH; over > 0 {
			khHi = d.KH - over
		}
		row := dst[oh*outW : (oh+1)*outW]
		edge := func(lo, hi int) {
			for ow := lo; ow < hi; ow++ {
				iwBase := ow*d.Stride - d.Pad
				var s float32
				for kh := khLo; kh < khHi; kh++ {
					srow := src[(ihBase+kh)*g.InW:]
					krow := ker[kh*d.KW:]
					for kw := 0; kw < d.KW; kw++ {
						iw := iwBase + kw
						if iw < 0 || iw >= g.InW {
							continue
						}
						s += srow[iw] * krow[kw]
					}
				}
				row[ow] = s
			}
		}
		edge(0, wLo)
		if d.KW == 3 && khHi-khLo == d.KH {
			// Fully-interior 3×3: the depthwise workhorse, unrolled.
			for ow := wLo; ow < wHi; ow++ {
				iw := ow*d.Stride - d.Pad
				var s float32
				for kh := 0; kh < d.KH; kh++ {
					sr := src[(ihBase+kh)*g.InW+iw : (ihBase+kh)*g.InW+iw+3]
					kr := ker[kh*3 : kh*3+3]
					s += sr[0] * kr[0]
					s += sr[1] * kr[1]
					s += sr[2] * kr[2]
				}
				row[ow] = s
			}
		} else {
			for ow := wLo; ow < wHi; ow++ {
				iw := ow*d.Stride - d.Pad
				var s float32
				for kh := khLo; kh < khHi; kh++ {
					sr := src[(ihBase+kh)*g.InW+iw:]
					kr := ker[kh*d.KW:]
					for kw := 0; kw < d.KW; kw++ {
						s += sr[kw] * kr[kw]
					}
				}
				row[ow] = s
			}
		}
		edge(wHi, outW)
	}
}

// ForwardInfer implements InferenceLayer.
func (m *MaxPool2D) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "MaxPool2D")
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects [N C H W], got %v", x.Shape))
	}
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := h/m.K, w/m.K
	if outH == 0 || outW == 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window %d larger than input %dx%d", m.K, h, w))
	}
	y := ar.Alloc(n, c, outH, outW)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			if m.K == 2 {
				// The common 2×2 window, unrolled over two sliced input rows.
				// Taps are compared in the same kh-major, kw-minor,
				// strictly-greater order as the generic loop, so ties resolve
				// to the same element and results are bit-identical.
				for oh := 0; oh < outH; oh++ {
					r0 := x.Data[inBase+2*oh*w : inBase+2*oh*w+w]
					r1 := x.Data[inBase+(2*oh+1)*w : inBase+(2*oh+1)*w+w]
					out := y.Data[outBase+oh*outW : outBase+(oh+1)*outW]
					for ow := range out {
						best := r0[2*ow]
						if v := r0[2*ow+1]; v > best {
							best = v
						}
						if v := r1[2*ow]; v > best {
							best = v
						}
						if v := r1[2*ow+1]; v > best {
							best = v
						}
						out[ow] = best
					}
				}
				continue
			}
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := float32(0)
					bestAt := -1
					for kh := 0; kh < m.K; kh++ {
						ih := oh*m.K + kh
						for kw := 0; kw < m.K; kw++ {
							iw := ow*m.K + kw
							v := x.Data[inBase+ih*w+iw]
							if bestAt < 0 || v > best {
								best, bestAt = v, inBase+ih*w+iw
							}
						}
					}
					y.Data[outBase+oh*outW+ow] = best
				}
			}
		}
	}
	return y
}

// ForwardInfer implements InferenceLayer.
func (m *AvgPool2D) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "AvgPool2D")
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := h/m.K, w/m.K
	y := ar.Alloc(n, c, outH, outW)
	inv := 1 / float32(m.K*m.K)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var s float32
					for kh := 0; kh < m.K; kh++ {
						for kw := 0; kw < m.K; kw++ {
							s += x.Data[inBase+(oh*m.K+kh)*w+(ow*m.K+kw)]
						}
					}
					y.Data[outBase+oh*outW+ow] = s * inv
				}
			}
		}
	}
	return y
}

// ForwardInfer implements InferenceLayer.
func (m *GlobalAvgPool2D) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "GlobalAvgPool2D")
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	y := ar.Alloc(n, c)
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			y.Data[i*c+ch] = s * inv
		}
	}
	return y
}

// ForwardInfer implements InferenceLayer: a reshaped view, no copy.
func (f *Flatten) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "Flatten")
	return ar.Wrap(x.Data, n, x.Len()/n)
}

// ForwardInfer implements InferenceLayer via the serial transposed GEMM.
func (l *Linear) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "Linear")
	if x.Rank() != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear expects [N %d], got %v", l.In, x.Shape))
	}
	y := ar.Alloc(n, l.Out)
	tensor.MatMulTSerialInto(y, x, l.Weight.W)
	if l.useBias {
		for i := 0; i < n; i++ {
			row := y.Row(i)
			for j := range row {
				row[j] += l.Bias.W.Data[j]
			}
		}
	}
	return y
}

// ForwardInfer implements InferenceLayer, clamping in place through the
// vectorized kernel (bit-identical to the scalar training sweep).
func (r *ReLU) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	tensor.ReLUInPlace(x.Data)
	return x
}

// ForwardInfer implements InferenceLayer, clamping to [0, 6] in place.
func (r *ReLU6) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	for i, v := range x.Data {
		switch {
		case v <= 0:
			x.Data[i] = 0
		case v >= 6:
			x.Data[i] = 6
		}
	}
	return x
}

// ForwardInfer implements InferenceLayer in place.
func (s *Sigmoid) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	for i, v := range x.Data {
		x.Data[i] = sigmoid32(v)
	}
	return x
}

// ForwardInfer implements InferenceLayer in place.
func (s *SiLU) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	for i, v := range x.Data {
		x.Data[i] = v * sigmoid32(v)
	}
	return x
}

// ForwardInfer implements InferenceLayer: the eval-mode affine with running
// statistics, applied in place.
func (bn *BatchNorm2D) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	return bn.forwardInferAct(x, actNone)
}

// fusedAct selects the activation folded into a BatchNorm2D inference sweep.
type fusedAct int

const (
	actNone fusedAct = iota
	actReLU
	actReLU6
)

// forwardInferAct normalizes in place, optionally applying a fused
// activation with the exact comparisons ReLU/ReLU6 use (v<=0 and v>=6), so
// the fused sweep is bit-identical to normalize-then-activate.
func (bn *BatchNorm2D) forwardInferAct(x *tensor.Tensor, act fusedAct) *tensor.Tensor {
	n := batchOf(x, "BatchNorm2D")
	if x.Rank() != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D(%d) expects [N %d H W], got %v", bn.C, bn.C, x.Shape))
	}
	hw := x.Shape[2] * x.Shape[3]
	for ch := 0; ch < bn.C; ch++ {
		mean := bn.RunMean.Data[ch]
		invStd := 1 / float32(math.Sqrt(float64(bn.RunVar.Data[ch]+bn.Eps)))
		g, b := bn.Gamma.W.Data[ch], bn.Beta.W.Data[ch]
		for i := 0; i < n; i++ {
			seg := x.Data[(i*bn.C+ch)*hw : (i*bn.C+ch+1)*hw]
			switch act {
			case actReLU:
				for j, v := range seg {
					y := g*(v-mean)*invStd + b
					if y <= 0 {
						y = 0
					}
					seg[j] = y
				}
			case actReLU6:
				for j, v := range seg {
					y := g*(v-mean)*invStd + b
					if y <= 0 {
						y = 0
					} else if y >= 6 {
						y = 6
					}
					seg[j] = y
				}
			default:
				for j, v := range seg {
					seg[j] = g*(v-mean)*invStd + b
				}
			}
		}
	}
	return x
}

// ForwardInfer implements InferenceLayer: identity at inference.
func (d *Dropout) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor { return x }

// ForwardInfer implements InferenceLayer. The skip is copied before the body
// runs because inference layers may clobber x in place.
func (r *Residual) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	var skip *tensor.Tensor
	if r.Proj != nil {
		skip = r.Proj.(InferenceLayer).ForwardInfer(x, ar)
		// A projection never writes in place (it changes shape), so x is
		// still intact for the body below. Guard against an aliasing Proj
		// anyway: elementwise projections are not used by any zoo model.
		if skip == x {
			panic("nn: Residual.Proj must not alias its input")
		}
	} else {
		skip = ar.Alloc(x.Shape...)
		copy(skip.Data, x.Data)
	}
	y := r.Body.ForwardInfer(x, ar)
	if !y.SameShape(skip) {
		panic(fmt.Sprintf("nn: residual shape mismatch body=%v skip=%v", y.Shape, skip.Shape))
	}
	tensor.AddInto(y, y, skip)
	return y
}

// ForwardInfer implements InferenceLayer: the attention MLP runs on arena
// scratch and the channel rescale happens in place on x.
func (se *SEBlock) ForwardInfer(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := batchOf(x, "SEBlock")
	if x.Rank() != 4 || x.Shape[1] != se.C {
		panic(fmt.Sprintf("nn: SEBlock(%d) expects [N %d H W], got %v", se.C, se.C, x.Shape))
	}
	h, w := x.Shape[2], x.Shape[3]
	m := ar.Mark()
	pooled := ar.Alloc(n, se.C)
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < se.C; ch++ {
			plane := x.Data[(i*se.C+ch)*h*w : (i*se.C+ch+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			pooled.Data[i*se.C+ch] = s * inv
		}
	}
	z := se.FC1.ForwardInfer(pooled, ar)
	z = se.act.ForwardInfer(z, ar)
	z = se.FC2.ForwardInfer(z, ar)
	scale := se.sig.ForwardInfer(z, ar)
	for i := 0; i < n; i++ {
		for ch := 0; ch < se.C; ch++ {
			s := scale.Data[i*se.C+ch]
			seg := x.Data[(i*se.C+ch)*h*w : (i*se.C+ch+1)*h*w]
			for j := range seg {
				seg[j] *= s
			}
		}
	}
	ar.Release(m)
	return x
}
