package nn

import (
	"testing"

	"nshd/internal/tensor"
)

// inferTestModel exercises every layer type that has an inference path:
// conv (bias), batchnorm, relu, maxpool, depthwise conv, relu6, residual
// with identity skip, SE block, residual with projection, avgpool, silu,
// global-avg-pool is covered via SE; the head covers flatten, dropout,
// linear and sigmoid.
func inferTestModel(rng *tensor.RNG) *Sequential {
	body := NewSequential("body",
		NewDepthwiseConv2D(rng, 8, 3, 1, 1),
		NewBatchNorm2D(8),
		NewReLU6(),
	)
	projBody := NewSequential("projbody",
		NewConv2D(rng, 8, 8, 3, 2, 1, false),
		NewSiLU(),
	)
	return NewSequential("infer-test",
		NewConv2D(rng, 3, 8, 3, 1, 1, true),
		NewBatchNorm2D(8),
		NewReLU(),
		NewMaxPool2D(2),
		NewResidual(body, nil),
		NewSEBlock(rng, 8, 4),
		NewResidual(projBody, NewConv2D(rng, 8, 8, 1, 2, 0, false)),
		NewAvgPool2D(2),
		NewFlatten(),
		NewDropout(rng, 0.3),
		NewLinear(rng, 8*2*2, 10, true),
		NewSigmoid(),
	)
}

// randomizeEval gives batchnorm layers non-trivial running statistics so the
// eval path is actually exercised.
func randomizeEval(rng *tensor.RNG, model *Sequential) {
	for _, l := range model.Layers {
		if bn, ok := l.(*BatchNorm2D); ok {
			rng.FillUniform(bn.RunMean, -0.5, 0.5)
			rng.FillUniform(bn.RunVar, 0.5, 2)
			rng.FillUniform(bn.Gamma.W, 0.5, 1.5)
			rng.FillUniform(bn.Beta.W, -0.2, 0.2)
		}
		if r, ok := l.(*Residual); ok {
			randomizeEval(rng, r.Body)
		}
	}
}

func TestForwardInferMatchesEvalForward(t *testing.T) {
	rng := tensor.NewRNG(42)
	model := inferTestModel(rng)
	randomizeEval(rng, model)
	if err := InferSupported(model); err != nil {
		t.Fatalf("InferSupported: %v", err)
	}

	x := tensor.New(5, 3, 16, 16)
	rng.FillNormal(x, 0, 1)
	want := model.Forward(x, false)

	ar := tensor.NewArena()
	in := ar.Alloc(x.Shape...)
	copy(in.Data, x.Data)
	got := model.ForwardInfer(in, ar)

	if !got.SameShape(want) {
		t.Fatalf("shape %v, want %v", got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("ForwardInfer[%d]=%v, Forward(eval)=%v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestForwardInferImplicitConvMatches forces the implicit-GEMM conv gate
// open on the small test model and pins the whole pass bit-identical to the
// eval Forward path (which stays on materialized im2col).
func TestForwardInferImplicitConvMatches(t *testing.T) {
	saved := convImplicitMinFloats
	convImplicitMinFloats = 0
	defer func() { convImplicitMinFloats = saved }()

	rng := tensor.NewRNG(17)
	model := inferTestModel(rng)
	randomizeEval(rng, model)

	x := tensor.New(4, 3, 16, 16)
	rng.FillNormal(x, 0, 1)
	want := model.Forward(x, false)

	ar := tensor.NewArena()
	in := ar.Alloc(x.Shape...)
	copy(in.Data, x.Data)
	got := model.ForwardInfer(in, ar)

	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("implicit ForwardInfer[%d]=%v, Forward(eval)=%v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestForwardInferZeroAllocWhenFrozen(t *testing.T) {
	rng := tensor.NewRNG(7)
	model := inferTestModel(rng)
	randomizeEval(rng, model)

	x := tensor.New(3, 3, 16, 16)
	rng.FillNormal(x, 0, 1)

	ar := tensor.NewArena()
	in := ar.Alloc(x.Shape...)
	copy(in.Data, x.Data)
	model.ForwardInfer(in, ar)
	ar.Freeze()

	allocs := testing.AllocsPerRun(10, func() {
		ar.Reset()
		in := ar.Alloc(3, 3, 16, 16)
		copy(in.Data, x.Data)
		model.ForwardInfer(in, ar)
	})
	if allocs != 0 {
		t.Fatalf("frozen ForwardInfer allocated %.1f times per run, want 0", allocs)
	}
}

func TestForwardInferDoesNotMutateState(t *testing.T) {
	rng := tensor.NewRNG(9)
	model := inferTestModel(rng)
	randomizeEval(rng, model)
	x := tensor.New(2, 3, 16, 16)
	rng.FillNormal(x, 0, 1)

	// Train-mode forward fills caches; an inference pass must not disturb
	// them (it may run concurrently with nothing, but must stay state-free).
	model.Forward(x, true)
	conv := model.Layers[0].(*Conv2D)
	if conv.cachedX == nil {
		t.Fatal("expected training cache to be set")
	}
	ar := tensor.NewArena()
	in := ar.Alloc(x.Shape...)
	copy(in.Data, x.Data)
	model.ForwardInfer(in, ar)
	if conv.cachedX == nil {
		t.Fatal("ForwardInfer cleared the training cache; it must be state-free")
	}
}

func TestInferSupportedRejectsUnknownLayer(t *testing.T) {
	model := NewSequential("bad", badLayer{})
	if err := InferSupported(model); err == nil {
		t.Fatal("expected error for a layer without an inference path")
	}
}

type badLayer struct{}

func (badLayer) Name() string                                        { return "bad" }
func (badLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (badLayer) Backward(g *tensor.Tensor) *tensor.Tensor            { return g }
func (badLayer) Params() []*Param                                    { return nil }
func (badLayer) OutShape(in []int) []int                             { return in }
func (badLayer) Stats(in []int) Stats                                { return Stats{} }

// TestDepthwiseInferMatchesForwardGeometries drives the boundary/interior
// split of convChannelInfer through awkward geometries: strides, pads,
// kernels wider than the padded input (no interior columns at all), and
// non-square inputs.
func TestDepthwiseInferMatchesForwardGeometries(t *testing.T) {
	cases := []struct {
		c, k, stride, pad, h, w int
	}{
		{4, 3, 1, 1, 8, 8},
		{3, 3, 2, 1, 9, 7},
		{2, 5, 1, 2, 6, 6},
		{2, 3, 1, 0, 5, 5},
		{3, 3, 2, 0, 7, 7},
		{2, 5, 2, 2, 3, 2}, // kernel wider than the row: fully guarded path
		{1, 1, 1, 0, 4, 4},
	}
	for _, tc := range cases {
		rng := tensor.NewRNG(int64(tc.c*100 + tc.k*10 + tc.stride))
		d := NewDepthwiseConv2D(rng, tc.c, tc.k, tc.stride, tc.pad)
		x := tensor.New(2, tc.c, tc.h, tc.w)
		rng.FillNormal(x, 0, 1)
		want := d.Forward(x, false)
		ar := tensor.NewArena()
		got := d.ForwardInfer(x, ar)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("k=%d s=%d p=%d: shape %v want %v", tc.k, tc.stride, tc.pad, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("k=%d s=%d p=%d %dx%d: element %d differs: %v vs %v",
					tc.k, tc.stride, tc.pad, tc.h, tc.w, i, got.Data[i], want.Data[i])
			}
		}
	}
}
