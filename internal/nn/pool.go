package nn

import (
	"fmt"

	"nshd/internal/tensor"
)

// MaxPool2D is a k×k max pooling layer with stride equal to k (the form used
// by VGG and by the manifold learner's pre-pooling step).
type MaxPool2D struct {
	K int

	cachedArg []int32 // flat input index chosen per output element
	cachedIn  []int   // per-sample input shape
	cachedN   int
}

// NewMaxPool2D constructs a max pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("maxpool%dx%d", m.K, m.K) }

// Forward pools each k×k window to its maximum, caching argmax indices.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "MaxPool2D")
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects [N C H W], got %v", x.Shape))
	}
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := h/m.K, w/m.K
	if outH == 0 || outW == 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window %d larger than input %dx%d", m.K, h, w))
	}
	y := tensor.New(n, c, outH, outW)
	var arg []int32
	if train {
		arg = make([]int32, n*c*outH*outW)
		m.cachedIn = []int{c, h, w}
		m.cachedN = n
	}
	tensor.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ch := 0; ch < c; ch++ {
				inBase := (i*c + ch) * h * w
				outBase := (i*c + ch) * outH * outW
				for oh := 0; oh < outH; oh++ {
					for ow := 0; ow < outW; ow++ {
						best := float32(0)
						bestAt := -1
						for kh := 0; kh < m.K; kh++ {
							ih := oh*m.K + kh
							for kw := 0; kw < m.K; kw++ {
								iw := ow*m.K + kw
								v := x.Data[inBase+ih*w+iw]
								if bestAt < 0 || v > best {
									best, bestAt = v, inBase+ih*w+iw
								}
							}
						}
						y.Data[outBase+oh*outW+ow] = best
						if arg != nil {
							arg[outBase+oh*outW+ow] = int32(bestAt)
						}
					}
				}
			}
		}
	})
	m.cachedArg = arg
	return y
}

// Backward routes each output gradient to the input position that won the max.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.cachedArg == nil {
		panic("nn: MaxPool2D.Backward without Forward(train=true)")
	}
	c, h, w := m.cachedIn[0], m.cachedIn[1], m.cachedIn[2]
	dx := tensor.New(m.cachedN, c, h, w)
	for i, a := range m.cachedArg {
		dx.Data[a] += grad.Data[i]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: MaxPool2D given input shape %v", in))
	}
	return []int{in[0], in[1] / m.K, in[2] / m.K}
}

// Stats implements Layer. Pooling performs comparisons, not MACs; we follow
// the paper's convention of counting only multiply-accumulates.
func (m *MaxPool2D) Stats(in []int) Stats {
	out := m.OutShape(in)
	return Stats{ActBytes: int64(shapeElems(out)) * 4}
}

// AvgPool2D is k×k average pooling with stride k.
type AvgPool2D struct {
	K        int
	cachedIn []int
	cachedN  int
}

// NewAvgPool2D constructs an average pooling layer.
func NewAvgPool2D(k int) *AvgPool2D { return &AvgPool2D{K: k} }

// Name implements Layer.
func (m *AvgPool2D) Name() string { return fmt.Sprintf("avgpool%dx%d", m.K, m.K) }

// Forward averages each k×k window.
func (m *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "AvgPool2D")
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := h/m.K, w/m.K
	y := tensor.New(n, c, outH, outW)
	inv := 1 / float32(m.K*m.K)
	tensor.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ch := 0; ch < c; ch++ {
				inBase := (i*c + ch) * h * w
				outBase := (i*c + ch) * outH * outW
				for oh := 0; oh < outH; oh++ {
					for ow := 0; ow < outW; ow++ {
						var s float32
						for kh := 0; kh < m.K; kh++ {
							for kw := 0; kw < m.K; kw++ {
								s += x.Data[inBase+(oh*m.K+kh)*w+(ow*m.K+kw)]
							}
						}
						y.Data[outBase+oh*outW+ow] = s * inv
					}
				}
			}
		}
	})
	if train {
		m.cachedIn = []int{c, h, w}
		m.cachedN = n
	}
	return y
}

// Backward spreads each output gradient uniformly over its window.
func (m *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	c, h, w := m.cachedIn[0], m.cachedIn[1], m.cachedIn[2]
	outH, outW := h/m.K, w/m.K
	dx := tensor.New(m.cachedN, c, h, w)
	inv := 1 / float32(m.K*m.K)
	for i := 0; i < m.cachedN; i++ {
		for ch := 0; ch < c; ch++ {
			inBase := (i*c + ch) * h * w
			outBase := (i*c + ch) * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					g := grad.Data[outBase+oh*outW+ow] * inv
					for kh := 0; kh < m.K; kh++ {
						for kw := 0; kw < m.K; kw++ {
							dx.Data[inBase+(oh*m.K+kh)*w+(ow*m.K+kw)] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (m *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (m *AvgPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1] / m.K, in[2] / m.K}
}

// Stats implements Layer.
func (m *AvgPool2D) Stats(in []int) Stats {
	out := m.OutShape(in)
	return Stats{ActBytes: int64(shapeElems(out)) * 4}
}

// GlobalAvgPool2D reduces [N, C, H, W] to [N, C] by averaging each channel.
type GlobalAvgPool2D struct {
	cachedIn []int
	cachedN  int
}

// NewGlobalAvgPool2D constructs a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Name implements Layer.
func (m *GlobalAvgPool2D) Name() string { return "globalavgpool" }

// Forward averages each channel plane.
func (m *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "GlobalAvgPool2D")
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(n, c)
	inv := 1 / float32(h*w)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			y.Data[i*c+ch] = s * inv
		}
	}
	if train {
		m.cachedIn = []int{c, h, w}
		m.cachedN = n
	}
	return y
}

// Backward spreads gradients uniformly over each plane.
func (m *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	c, h, w := m.cachedIn[0], m.cachedIn[1], m.cachedIn[2]
	dx := tensor.New(m.cachedN, c, h, w)
	inv := 1 / float32(h*w)
	for i := 0; i < m.cachedN; i++ {
		for ch := 0; ch < c; ch++ {
			g := grad.Data[i*c+ch] * inv
			plane := dx.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for j := range plane {
				plane[j] = g
			}
		}
	}
	return dx
}

// Params implements Layer.
func (m *GlobalAvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (m *GlobalAvgPool2D) OutShape(in []int) []int { return []int{in[0]} }

// Stats implements Layer.
func (m *GlobalAvgPool2D) Stats(in []int) Stats {
	return Stats{ActBytes: int64(in[0]) * 4}
}

// Flatten reshapes [N, C, H, W] (or any batched shape) to [N, F].
type Flatten struct {
	cachedShape []int
}

// NewFlatten constructs a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := batchOf(x, "Flatten")
	if train {
		f.cachedShape = append([]int(nil), x.Shape...)
	}
	return x.Reshape(n, -1)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.cachedShape == nil {
		panic("nn: Flatten.Backward without Forward(train=true)")
	}
	return grad.Reshape(f.cachedShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int { return []int{shapeElems(in)} }

// Stats implements Layer.
func (f *Flatten) Stats(in []int) Stats { return Stats{} }
