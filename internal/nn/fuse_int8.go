package nn

import (
	"fmt"
	"strings"
	"sync/atomic"

	"nshd/internal/parallel"
	"nshd/internal/tensor"
)

// Int8 fused extraction blocks: the quantized counterpart of FusedBlock. The
// int8 chain is simpler — batch norm and activations are already folded into
// each Int8Conv2D's requantization clamp — so a unit is a conv plus an
// optional max pool, and the whole pipeline (u8 im2col → int32 GEMM →
// requantize → u8 pool) runs per output tile through cache-resident buffers.
// Everything downstream of the im2col is exact integer arithmetic and the
// windowed generator emits exactly the Im2ColU8 columns of its rows
// (TestIm2ColU8RowsMatchesFull), so any tiling is trivially bit-exact.

// int8FusedUnit is one conv[+pool] stage with geometry bound at plan time.
type int8FusedUnit struct {
	conv *Int8Conv2D
	pool *Int8MaxPool2D

	g            tensor.ConvGeom
	convH, convW int
	outH, outW   int
}

// Int8FusedBlock executes a run of Int8Conv2D[+Int8MaxPool2D] stages
// (optionally ending in a flatten) tile by tile. It implements Int8Layer and
// is planned for one input size.
type Int8FusedBlock struct {
	units   []int8FusedUnit
	flatten bool

	inC, inH, inW    int
	outC, outH, outW int
	sampleIn         int
	sampleOut        int

	tileRows int
	nTiles   int
	nParts   int
	spans    [][]unitSpan

	convSize  []int // per unit, u8 elements in the conv-output tile buffer
	outSize   []int // per unit, u8 elements in the pooled-output tile buffer
	colsBytes int
	accInts   int

	runs    chan *int8FuseRun
	created atomic.Int64
	maxRuns int64
}

// int8FusePart is one partition's buffers, arena-bound per call.
type int8FusePart struct {
	conv    [][]uint8
	out     [][]uint8
	cols    []uint8
	acc     []int32
	scratch []uint8
}

// int8FuseRun is one reusable executor (see fuseRun).
type int8FuseRun struct {
	b     *Int8FusedBlock
	call  *parallel.Call
	parts []int8FusePart
	x, y  []uint8
	n     int
}

// FuseInt8 returns ls with every fusible run of int8 layers replaced by an
// Int8FusedBlock planned for per-sample input [c, h, w]. If nothing fuses,
// ls itself is returned. The gate matches FuseInference: force, or
// FuseMinMACs with more than one unit or a pool. A conv whose input
// quantization does not chain from the previous unit's output ends the run —
// that wiring needs the per-layer runtime check.
func FuseInt8(ls []Int8Layer, c, h, w int, force bool) []Int8Layer {
	shape := []int{c, h, w}
	out := make([]Int8Layer, 0, len(ls))
	changed := false
	for i := 0; i < len(ls); {
		conv, ok := ls[i].(*Int8Conv2D)
		if !ok || len(shape) != 3 || conv.InC != shape[0] {
			shape = int8OutShape(ls[i], shape)
			out = append(out, ls[i])
			i++
			continue
		}
		units, nLeaves, flatten, next, outShape := scanInt8FuseRun(ls, i, shape)
		if len(units) == 0 {
			shape = int8OutShape(ls[i], shape)
			out = append(out, ls[i])
			i++
			continue
		}
		if shouldFuseInt8(units, force) {
			out = append(out, newInt8FusedBlock(units, shape[0], shape[1], shape[2], flatten))
			changed = true
		} else {
			out = append(out, ls[i:i+nLeaves]...)
		}
		shape = outShape
		i = next
	}
	if !changed {
		return ls
	}
	return out
}

// int8OutShape tracks the per-sample shape through known int8 layers; nil
// means the shape is no longer a [C, H, W] map (or the layer is unknown).
func int8OutShape(l Int8Layer, shape []int) []int {
	if len(shape) != 3 {
		return nil
	}
	switch v := l.(type) {
	case *Int8Conv2D:
		g := tensor.ConvGeom{InC: v.InC, InH: shape[1], InW: shape[2], KH: v.KH, KW: v.KW,
			StrideH: v.Stride, StrideW: v.Stride, PadH: v.Pad, PadW: v.Pad}
		if v.InC != shape[0] || g.Validate() != nil {
			return nil
		}
		return []int{v.OutC, g.OutH(), g.OutW()}
	case *Int8MaxPool2D:
		return []int{shape[0], shape[1] / v.K, shape[2] / v.K}
	case *Int8FusedBlock:
		if v.inC != shape[0] || v.inH != shape[1] || v.inW != shape[2] {
			return nil
		}
		if v.flatten {
			return []int{v.sampleOut}
		}
		return []int{v.outC, v.outH, v.outW}
	default:
		return nil
	}
}

// Int8ChainShape tracks a per-sample [C, H, W] shape through a chain of int8
// layers, returning nil as soon as the shape leaves rank-3 or a layer's shape
// function is unknown. The engine's fusion pass uses it to locate fusible
// segments inside a quantized stage.
func Int8ChainShape(ls []Int8Layer, shape []int) []int {
	for _, l := range ls {
		if len(shape) != 3 {
			return nil
		}
		shape = int8OutShape(l, shape)
		if shape == nil {
			return nil
		}
	}
	return shape
}

// WeightBytes reports the block's resident quantized weights: i8 weight
// bytes plus the int32 bias and float32 requant scale per output channel of
// each fused conv — exactly what the absorbed layers reported unfused.
func (b *Int8FusedBlock) WeightBytes() int64 {
	var total int64
	for i := range b.units {
		c := b.units[i].conv
		total += int64(len(c.W)) + int64(len(c.Bias32))*4 + int64(len(c.Scales))*4
	}
	return total
}

// scanInt8FuseRun greedily scans a maximal fusible run starting at ls[i] (an
// Int8Conv2D): repeated conv[+pool] units with chained quantization, then an
// optional trailing Int8Flatten. nLeaves is the number of consumed layers.
func scanInt8FuseRun(ls []Int8Layer, i int, shape []int) (units []int8FusedUnit, nLeaves int, flatten bool, next int, outShape []int) {
	c, h, w := shape[0], shape[1], shape[2]
	j := i
	for j < len(ls) {
		conv, ok := ls[j].(*Int8Conv2D)
		if !ok || conv.InC != c {
			break
		}
		if len(units) > 0 {
			prev := units[len(units)-1].conv.Q
			if conv.Q.InScale != prev.OutScale || conv.Q.InZero != prev.OutZero {
				break
			}
		}
		g := tensor.ConvGeom{InC: conv.InC, InH: h, InW: w, KH: conv.KH, KW: conv.KW,
			StrideH: conv.Stride, StrideW: conv.Stride, PadH: conv.Pad, PadW: conv.Pad}
		if g.Validate() != nil {
			break
		}
		u := int8FusedUnit{conv: conv, g: g, convH: g.OutH(), convW: g.OutW()}
		j++
		u.outH, u.outW = u.convH, u.convW
		if j < len(ls) {
			if mp, ok := ls[j].(*Int8MaxPool2D); ok && u.convH/mp.K > 0 && u.convW/mp.K > 0 {
				u.pool = mp
				u.outH, u.outW = u.convH/mp.K, u.convW/mp.K
				j++
			}
		}
		units = append(units, u)
		c, h, w = conv.OutC, u.outH, u.outW
	}
	outShape = []int{c, h, w}
	if len(units) > 0 && j < len(ls) {
		if _, ok := ls[j].(Int8Flatten); ok {
			flatten = true
			j++
			outShape = []int{c * h * w}
		}
	}
	return units, j - i, flatten, j, outShape
}

// shouldFuseInt8 applies the same size gate as shouldFuse.
func shouldFuseInt8(units []int8FusedUnit, force bool) bool {
	if force {
		return true
	}
	var macs int64
	pooled := false
	for _, u := range units {
		macs += int64(u.conv.OutC) * int64(u.convH*u.convW) * int64(u.conv.InC*u.conv.KH*u.conv.KW)
		if u.pool != nil {
			pooled = true
		}
	}
	if len(units) < 2 && !pooled {
		return false
	}
	return macs >= FuseMinMACs
}

// newInt8FusedBlock plans the tile schedule and buffer sizes.
func newInt8FusedBlock(units []int8FusedUnit, inC, inH, inW int, flatten bool) *Int8FusedBlock {
	last := units[len(units)-1]
	b := &Int8FusedBlock{
		units: units, flatten: flatten,
		inC: inC, inH: inH, inW: inW,
		outC: last.conv.OutC, outH: last.outH, outW: last.outW,
	}
	b.sampleIn = inC * inH * inW
	b.sampleOut = b.outC * b.outH * b.outW
	T := b.outH
	if fuseForceTileRows > 0 {
		T = min(fuseForceTileRows, b.outH)
	} else {
		for T > 1 && b.workingSetBytes(T) > FuseTileBudgetBytes {
			T--
		}
	}
	b.tileRows = T
	b.convSize, b.outSize, b.colsBytes, b.accInts, b.spans = b.sizesForTile(T)
	b.nTiles = len(b.spans)
	b.nParts = min(parallel.Workers(), b.nTiles)
	b.maxRuns = int64(parallel.Workers())
	b.runs = make(chan *int8FuseRun, b.maxRuns)
	return b
}

// sizesForTile plans every tile for tile height T; buffer sizes are maxima
// over tiles and units (the cols and acc buffers are shared across units).
func (b *Int8FusedBlock) sizesForTile(T int) (convSize, outSize []int, colsBytes, accInts int, spans [][]unitSpan) {
	n := (b.outH + T - 1) / T
	convSize = make([]int, len(b.units))
	outSize = make([]int, len(b.units))
	spans = make([][]unitSpan, n)
	gs := make([]spanGeom, len(b.units))
	for i := range b.units {
		gs[i] = spanGeom{g: b.units[i].g}
		if b.units[i].pool != nil {
			gs[i].poolK = b.units[i].pool.K
		}
	}
	for t := 0; t < n; t++ {
		lo := t * T
		sp := planUnitSpans(gs, lo, min(lo+T, b.outH))
		spans[t] = sp
		for i := range b.units {
			u := &b.units[i]
			width := (sp[i].convHi - sp[i].convLo) * u.convW
			if c := u.conv.kp * width; c > colsBytes {
				colsBytes = c
			}
			if a := u.conv.OutC * width; a > accInts {
				accInts = a
			}
			last := i == len(b.units)-1
			if !last || u.pool != nil {
				if sz := u.conv.OutC * width; sz > convSize[i] {
					convSize[i] = sz
				}
			}
			if !last && u.pool != nil {
				if sz := u.conv.OutC * (sp[i].outHi - sp[i].outLo) * u.outW; sz > outSize[i] {
					outSize[i] = sz
				}
			}
		}
	}
	return convSize, outSize, colsBytes, accInts, spans
}

// workingSetBytes estimates one partition's resident bytes at tile height T.
func (b *Int8FusedBlock) workingSetBytes(T int) int {
	convSize, outSize, colsBytes, accInts, _ := b.sizesForTile(T)
	bytes := colsBytes + 4*accInts + tensor.Int8GemmScratch()
	for i := range convSize {
		bytes += convSize[i] + outSize[i]
	}
	return bytes
}

func (b *Int8FusedBlock) String() string {
	var sb strings.Builder
	sb.WriteString("Int8Fused{")
	for i := range b.units {
		u := &b.units[i]
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(u.conv.String())
		if u.pool != nil {
			fmt.Fprintf(&sb, "+pool%d", u.pool.K)
		}
	}
	if b.flatten {
		sb.WriteString(" flatten")
	}
	sb.WriteByte('}')
	return sb.String()
}

// getRun pops a reusable executor (see FusedBlock.getRun).
func (b *Int8FusedBlock) getRun() *int8FuseRun {
	select {
	case r := <-b.runs:
		return r
	default:
	}
	if b.created.Add(1) <= b.maxRuns {
		return b.newRun()
	}
	b.created.Add(-1)
	return <-b.runs
}

func (b *Int8FusedBlock) newRun() *int8FuseRun {
	r := &int8FuseRun{b: b, parts: make([]int8FusePart, b.nParts)}
	for i := range r.parts {
		r.parts[i].conv = make([][]uint8, len(b.units))
		r.parts[i].out = make([][]uint8, len(b.units))
	}
	r.call = parallel.NewCall(b.nParts, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			r.runPart(p)
		}
	})
	return r
}

// ForwardInt8 implements Int8Layer: the tiled executor.
func (b *Int8FusedBlock) ForwardInt8(x *tensor.QTensor, ar *tensor.Arena) *tensor.QTensor {
	if x.Rank() != 4 || x.Shape[1] != b.inC || x.Shape[2] != b.inH || x.Shape[3] != b.inW {
		panic(fmt.Sprintf("nn: Int8FusedBlock planned for [N %d %d %d], got %v",
			b.inC, b.inH, b.inW, x.Shape))
	}
	checkInt8Input("Int8FusedBlock", x, b.units[0].conv.Q)
	n := x.Shape[0]
	q := b.units[len(b.units)-1].conv.Q
	var y *tensor.QTensor
	if b.flatten {
		y = ar.AllocU8(q.OutScale, q.OutZero, n, b.sampleOut)
	} else {
		y = ar.AllocU8(q.OutScale, q.OutZero, n, b.outC, b.outH, b.outW)
	}
	if n == 0 {
		return y
	}
	m := ar.Mark()
	r := b.getRun()
	for pi := range r.parts {
		pt := &r.parts[pi]
		for i := range b.units {
			if b.convSize[i] > 0 {
				pt.conv[i] = ar.Bytes(b.convSize[i])
			}
			if b.outSize[i] > 0 {
				pt.out[i] = ar.Bytes(b.outSize[i])
			} else {
				pt.out[i] = pt.conv[i]
			}
		}
		pt.cols = ar.Bytes(b.colsBytes)
		pt.acc = ar.Int32s(b.accInts)
		pt.scratch = ar.Bytes(tensor.Int8GemmScratch())
	}
	r.x, r.y, r.n = x.Data, y.Data, n
	r.call.Run()
	r.x, r.y = nil, nil
	b.runs <- r
	ar.Release(m)
	return y
}

func (r *int8FuseRun) runPart(p int) {
	b := r.b
	items := r.n * b.nTiles
	lo, hi := p*items/b.nParts, (p+1)*items/b.nParts
	pt := &r.parts[p]
	for it := lo; it < hi; it++ {
		r.runTile(pt, it/b.nTiles, it%b.nTiles)
	}
}

// runTile produces block output rows spans[t] of sample s: per unit, the
// windowed u8 im2col, the exact int32 GEMM, per-channel requantization (with
// the folded clamp activation), and the u8 max pool.
func (r *int8FuseRun) runTile(pt *int8FusePart, s, t int) {
	b := r.b
	spans := b.spans[t]
	xs := r.x[s*b.sampleIn : (s+1)*b.sampleIn]
	ys := r.y[s*b.sampleOut : (s+1)*b.sampleOut]
	for i := range b.units {
		u := &b.units[i]
		sp := &spans[i]
		convRows := sp.convHi - sp.convLo
		if convRows <= 0 {
			continue
		}
		src, row0, rows := xs, 0, b.inH
		if i > 0 {
			src, row0, rows = pt.out[i-1], sp.inLo, sp.inHi-sp.inLo
		}
		width := convRows * u.convW
		kdim := u.conv.InC * u.conv.KH * u.conv.KW
		cols := pt.cols[:u.conv.kp*width]
		tensor.Im2ColU8Rows(u.g, src, row0, rows, cols[:kdim*width], sp.convLo, sp.convHi, u.conv.Q.InZero)
		if u.conv.kp > kdim {
			// K-padding rows: zero weights make them inert, but the GEMM
			// reads them, so they must be defined.
			clear(cols[kdim*width:])
		}
		acc := pt.acc[:u.conv.OutC*width]
		tensor.MatMulInt8SerialInto(acc, u.conv.wp, cols, u.conv.OutC, width, u.conv.kp, pt.scratch)
		last := i == len(b.units)-1
		dst, ldd, dstOff := pt.conv[i], width, 0
		if last && u.pool == nil {
			dst, ldd, dstOff = ys, u.convH*u.convW, sp.convLo*u.convW
		}
		for oc := 0; oc < u.conv.OutC; oc++ {
			tensor.RequantizeU8Row(dst[oc*ldd+dstOff:oc*ldd+dstOff+width], acc[oc*width:(oc+1)*width],
				u.conv.Bias32[oc], u.conv.Scales[oc], u.conv.Q.OutZero, u.conv.Q.ClampLo, u.conv.Q.ClampHi)
		}
		if u.pool != nil {
			pdst, pldd, pOff := pt.out[i], (sp.outHi-sp.outLo)*u.outW, 0
			if last {
				pdst, pldd, pOff = ys, b.outH*b.outW, sp.outLo*b.outW
			}
			int8FusePool(u, sp, dst, ldd, dstOff, pdst, pldd, pOff)
		}
	}
}

// int8FusePool max-pools conv rows [convLo, convHi) into unit output rows
// [outLo, outHi), replicating Int8MaxPool2D.ForwardInt8's comparison order
// (kh|kw == 0 seeds, then strictly-greater) exactly.
func int8FusePool(u *int8FusedUnit, sp *unitSpan, src []uint8, lds, srcOff int, dst []uint8, ldd, dstOff int) {
	k, w, ow := u.pool.K, u.convW, u.outW
	for oc := 0; oc < u.conv.OutC; oc++ {
		inBase := oc*lds + srcOff - sp.convLo*w
		outBase := oc*ldd + dstOff - sp.outLo*ow
		for oh := sp.outLo; oh < sp.outHi; oh++ {
			for j := 0; j < ow; j++ {
				var best uint8
				for kh := 0; kh < k; kh++ {
					rowAt := inBase + (oh*k+kh)*w + j*k
					for kw := 0; kw < k; kw++ {
						if v := src[rowAt+kw]; kh|kw == 0 || v > best {
							best = v
						}
					}
				}
				dst[outBase+oh*ow+j] = best
			}
		}
	}
}
