package hwsim

import (
	"fmt"

	"nshd/internal/core"
)

// ZCU104 available programmable-logic resources (Zynq UltraScale+ MPSoC).
const (
	ZCU104LUT  = 230400
	ZCU104FF   = 460800
	ZCU104BRAM = 312
	ZCU104URAM = 96
	ZCU104DSP  = 1728
)

// DPUConfig describes the DPU-style accelerator instantiated on the PL side
// plus the HD post-processing unit NSHD adds.
type DPUConfig struct {
	// MACsPerCycle is the convolution array's peak int8 MACs per cycle
	// (a B1600-class DPU core).
	MACsPerCycle int
	// HDBitsPerCycle is the popcount datapath width of the binary HD unit.
	HDBitsPerCycle int
	// FreqMHz is the PL clock.
	FreqMHz float64
	// StaticWatts and DynamicWatts model power as static + utilization-
	// proportional dynamic draw.
	StaticWatts  float64
	DynamicWatts float64
	// Efficiency derates the peak MAC array for tiling/boundary losses.
	Efficiency float64
}

// DefaultDPU returns the accelerator configuration used throughout the
// experiments; its resource footprint reproduces Table I.
func DefaultDPU() DPUConfig {
	return DPUConfig{
		MACsPerCycle:   1600,
		HDBitsPerCycle: 4096,
		FreqMHz:        200,
		StaticWatts:    1.2,
		DynamicWatts:   6.99,
		Efficiency:     0.72,
	}
}

// Validate rejects impossible configurations.
func (c DPUConfig) Validate() error {
	if c.MACsPerCycle <= 0 || c.HDBitsPerCycle <= 0 || c.FreqMHz <= 0 {
		return fmt.Errorf("hwsim: DPU config non-positive rates: %+v", c)
	}
	if c.Efficiency <= 0 || c.Efficiency > 1 {
		return fmt.Errorf("hwsim: DPU efficiency %v outside (0,1]", c.Efficiency)
	}
	return nil
}

// ResourceRow is one line of the utilization report.
type ResourceRow struct {
	Name        string
	Used        int
	Available   int
	Utilization float64 // percent
}

// ResourceReport models Table I: utilization of the DPU core plus the HD
// unit on the ZCU104 PL fabric.
type ResourceReport struct {
	Rows    []ResourceRow
	FreqMHz float64
	Watts   float64
}

// Resources estimates PL utilization for the accelerator with a binary HD
// unit of dimension d. The constants are calibrated so the default DPU at
// D=3000 lands on the paper's Table I figures (84.9K LUT, 146.5K FF,
// 224 BRAM, 40 URAM, 844 DSP at 200 MHz / 4.427 W).
func (c DPUConfig) Resources(d int) ResourceReport {
	scale := float64(c.MACsPerCycle) / 1600.0
	// DPU core baseline.
	lut := 78000 * scale
	ff := 134000 * scale
	bram := 200 * scale
	uram := 36 * scale
	dsp := 800 * scale
	// HD unit: popcount tree LUTs scale with datapath width; hypervector
	// buffers consume BRAM/URAM with D; a few DSPs handle the similarity
	// accumulation.
	lut += 2.3 * float64(c.HDBitsPerCycle) / 4096 * float64(d)
	ff += 4.16 * float64(d)
	bram += float64(d) / 125
	uram += float64(d) / 750
	dsp += float64(d) / 68
	rows := []ResourceRow{
		{Name: "LUT", Used: int(lut), Available: ZCU104LUT},
		{Name: "FF", Used: int(ff), Available: ZCU104FF},
		{Name: "BRAM", Used: int(bram), Available: ZCU104BRAM},
		{Name: "URAM", Used: int(uram), Available: ZCU104URAM},
		{Name: "DSP", Used: int(dsp), Available: ZCU104DSP},
	}
	var utilSum float64
	for i := range rows {
		rows[i].Utilization = 100 * float64(rows[i].Used) / float64(rows[i].Available)
		utilSum += rows[i].Utilization
	}
	watts := c.StaticWatts + c.DynamicWatts*(utilSum/500)
	return ResourceReport{Rows: rows, FreqMHz: c.FreqMHz, Watts: watts}
}

// CNNFPS estimates the DPU throughput of the full CNN (frames per second):
// conv/FC MACs through the int8 array at the derated peak.
func (c DPUConfig) CNNFPS(macs int64) float64 {
	cycles := float64(macs) / (float64(c.MACsPerCycle) * c.Efficiency)
	return c.FreqMHz * 1e6 / cycles
}

// NSHDFPS estimates the throughput of the NSHD pipeline: the cut CNN prefix
// and manifold on the MAC array, and the HD encode/similarity stages on the
// popcount datapath (binary ops, HDBitsPerCycle per cycle).
func (c DPUConfig) NSHDFPS(costs core.CostReport) float64 {
	macCycles := float64(costs.ExtractorMACs+costs.ManifoldMACs) /
		(float64(c.MACsPerCycle) * c.Efficiency)
	hdOps := float64(costs.EncodeMACs + costs.SimilarityMACs)
	hdCycles := hdOps / float64(c.HDBitsPerCycle)
	cycles := macCycles + hdCycles
	return c.FreqMHz * 1e6 / cycles
}

// ThroughputImprovementPercent is Fig. 6's quantity: 100·(FPS_NSHD/FPS_CNN − 1).
func ThroughputImprovementPercent(cnnFPS, nshdFPS float64) float64 {
	if cnnFPS <= 0 {
		return 0
	}
	return 100 * (nshdFPS/cnnFPS - 1)
}
