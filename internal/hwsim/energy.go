// Package hwsim models the two hardware targets of the paper's evaluation —
// an NVIDIA Xavier-class edge GPGPU (energy, Fig. 4) and a Xilinx ZCU104
// DPU-style FPGA accelerator (resources Table I, throughput Fig. 6, the
// dimension/efficiency tradeoff Fig. 10) — as analytic cost models driven by
// the exact MAC/byte counts of the real model graphs.
//
// The substitution preserves the paper's quantities because every reported
// hardware number is *relative* (percent energy improvement, relative FPS,
// utilization fractions), and those ratios are functions of operation and
// memory-traffic counts, which this package receives from the real pipeline
// rather than estimating.
package hwsim

import (
	"fmt"

	"nshd/internal/core"
	"nshd/internal/nn"
)

// EnergyModel holds per-operation energies in picojoules, following the
// widely used 45nm-scaled figures (Horowitz, ISSCC'14) adjusted for an edge
// GPGPU's 16nm process.
type EnergyModel struct {
	// MACFP32 is one float32 multiply-accumulate.
	MACFP32 float64
	// MACINT8 is one int8 multiply-accumulate (TensorRT-quantized path).
	MACINT8 float64
	// AddOnly is one addition/subtraction — the cost of a binary HD
	// "MAC", since binding with a ±1 hypervector in constant memory
	// reduces to add/sub on the sign bit (Sec. VI-A).
	AddOnly float64
	// DRAMByte / SRAMByte are per-byte access energies for global memory
	// and on-chip (shared/constant cached) memory.
	DRAMByte float64
	SRAMByte float64
}

// XavierModel returns the default edge-GPGPU energy model.
func XavierModel() EnergyModel {
	return EnergyModel{
		MACFP32:  4.6,
		MACINT8:  1.3,
		AddOnly:  0.9,
		DRAMByte: 10.4,
		SRAMByte: 1.0,
	}
}

// Validate rejects non-physical models.
func (m EnergyModel) Validate() error {
	if m.MACFP32 <= 0 || m.MACINT8 <= 0 || m.AddOnly <= 0 || m.DRAMByte <= 0 || m.SRAMByte <= 0 {
		return fmt.Errorf("hwsim: energy model has non-positive entries: %+v", m)
	}
	if m.AddOnly >= m.MACFP32 {
		return fmt.Errorf("hwsim: add-only energy %v must undercut fp32 MAC %v", m.AddOnly, m.MACFP32)
	}
	return nil
}

// CNNEnergyPJ estimates one full-CNN inference in picojoules: fp32 MACs plus
// parameter traffic from DRAM and activation traffic through SRAM.
func (m EnergyModel) CNNEnergyPJ(s nn.Stats) float64 {
	return float64(s.MACs)*m.MACFP32 +
		float64(s.Params*4)*m.DRAMByte +
		float64(s.ActBytes)*m.SRAMByte
}

// NSHDEnergyPJ estimates one NSHD inference: the CNN prefix and manifold run
// as fp32 MACs; HD encoding and similarity run as add/sub-only binary
// kernels with the projection held in constant memory (1 bit/element) and
// class hypervectors streamed from DRAM.
func (m EnergyModel) NSHDEnergyPJ(c core.CostReport, extract nn.Stats) float64 {
	e := float64(c.ExtractorMACs)*m.MACFP32 +
		float64(c.ManifoldMACs)*m.MACFP32 +
		float64(c.ExtractorBytes+c.ManifoldBytes)*m.DRAMByte +
		float64(extract.ActBytes)*m.SRAMByte
	// Binary HD side: every "MAC" of the encode/similarity stages is an
	// add/sub; memory traffic is the packed projection plus class HVs.
	e += float64(c.EncodeMACs+c.SimilarityMACs) * m.AddOnly
	e += float64(c.ProjectionBytes) * m.SRAMByte // constant-memory resident
	e += float64(c.ClassHVBytes) * m.DRAMByte
	return e
}

// ImprovementPercent returns the energy saving of NSHD relative to the CNN:
// 100·(1 − E_NSHD/E_CNN). This is the quantity plotted in Fig. 4.
func ImprovementPercent(cnnPJ, nshdPJ float64) float64 {
	if cnnPJ <= 0 {
		return 0
	}
	return 100 * (1 - nshdPJ/cnnPJ)
}
