package hwsim

import "testing"

func TestGPUModelValidate(t *testing.T) {
	if err := XavierGPU().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := XavierGPU()
	bad.ConstBroadcastBytesPerCycle = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected bandwidth-ordering rejection")
	}
	bad2 := XavierGPU()
	bad2.SMs = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected core-config rejection")
	}
}

func TestBinaryKernelFasterThanFloat(t *testing.T) {
	g := XavierGPU()
	n, f, k, d := 64, 100, 10, 3000
	if enc := g.EncodeKernelUS(n, f, d, true); enc >= g.EncodeKernelUS(n, f, d, false) {
		t.Fatal("binary encoding kernel must be faster")
	}
	if sim := g.SimilarityKernelUS(n, k, d, true); sim >= g.SimilarityKernelUS(n, k, d, false) {
		t.Fatal("binary similarity kernel must be faster")
	}
	sp := g.BinarySpeedup(n, f, k, d)
	if sp <= 1 {
		t.Fatalf("binary speedup %v must exceed 1", sp)
	}
	if sp > 50 {
		t.Fatalf("binary speedup %v implausibly large", sp)
	}
}

func TestKernelTimesScale(t *testing.T) {
	g := XavierGPU()
	// Time grows with every extent.
	if g.EncodeKernelUS(64, 100, 3000, true) >= g.EncodeKernelUS(128, 100, 3000, true) {
		t.Fatal("encode time must grow with batch")
	}
	if g.SimilarityKernelUS(64, 10, 3000, true) >= g.SimilarityKernelUS(64, 100, 3000, true) {
		t.Fatal("similarity time must grow with classes")
	}
	if g.EncodeKernelUS(64, 100, 1000, false) >= g.EncodeKernelUS(64, 100, 10000, false) {
		t.Fatal("encode time must grow with dimension")
	}
}
