package hwsim

import "fmt"

// GPUKernelModel captures the Sec. VI-A GPGPU implementation: the binary HD
// kernels keep the bipolar hypervectors in constant memory (dedicated cache,
// broadcast reads) and replace multiply-accumulate with sign-conditional
// add/sub, while float tensors stream through shared memory. The model
// estimates kernel times from instruction and memory-transaction counts, so
// the *relative* speedup of the binary path over a float path — the paper's
// optimization claim — falls out of arithmetic.
type GPUKernelModel struct {
	// CoresPerSM and SMs describe the device (Xavier: 8 SMs × 64 cores).
	CoresPerSM, SMs int
	// ClockMHz is the SM clock.
	ClockMHz float64
	// FMAPerCyclePerCore is float32 FMA throughput per core per cycle.
	FMAPerCyclePerCore float64
	// AddPerCyclePerCore is integer/float add throughput per core per cycle
	// (the binary kernel's operation).
	AddPerCyclePerCore float64
	// GlobalBytesPerCycle is DRAM bandwidth per cycle across the device.
	GlobalBytesPerCycle float64
	// ConstBroadcastBytesPerCycle is effective constant-cache bandwidth; it
	// is high because all threads of a warp read the same word.
	ConstBroadcastBytesPerCycle float64
}

// XavierGPU returns a Xavier-class device model.
func XavierGPU() GPUKernelModel {
	return GPUKernelModel{
		CoresPerSM:                  64,
		SMs:                         8,
		ClockMHz:                    1377,
		FMAPerCyclePerCore:          1,
		AddPerCyclePerCore:          1,
		GlobalBytesPerCycle:         137, // ~137 GB/s at ~1 GHz equivalent
		ConstBroadcastBytesPerCycle: 1024,
	}
}

// Validate rejects non-physical device models.
func (g GPUKernelModel) Validate() error {
	if g.CoresPerSM <= 0 || g.SMs <= 0 || g.ClockMHz <= 0 {
		return fmt.Errorf("hwsim: GPU model has non-positive core/clock config: %+v", g)
	}
	if g.FMAPerCyclePerCore <= 0 || g.AddPerCyclePerCore <= 0 {
		return fmt.Errorf("hwsim: GPU model has non-positive throughput: %+v", g)
	}
	if g.GlobalBytesPerCycle <= 0 || g.ConstBroadcastBytesPerCycle <= g.GlobalBytesPerCycle {
		return fmt.Errorf("hwsim: constant-cache bandwidth must exceed global: %+v", g)
	}
	return nil
}

func (g GPUKernelModel) cores() float64 { return float64(g.CoresPerSM * g.SMs) }

// EncodeKernelUS estimates the HD encoding kernel time in microseconds for a
// batch of n samples with F features into D dimensions.
//
// Float path: n·F·D FMAs + the projection (4 bytes/elem) streamed from
// global memory. Binary path (Sec. VI-A): n·F·D adds with the packed
// projection (1 bit/elem) resident in constant memory.
func (g GPUKernelModel) EncodeKernelUS(n, f, d int, binary bool) float64 {
	ops := float64(n) * float64(f) * float64(d)
	var computeCycles, memCycles float64
	if binary {
		computeCycles = ops / (g.cores() * g.AddPerCyclePerCore)
		projBytes := float64(f) * float64(d) / 8
		memCycles = projBytes / g.ConstBroadcastBytesPerCycle
	} else {
		computeCycles = ops / (g.cores() * g.FMAPerCyclePerCore)
		projBytes := float64(f) * float64(d) * 4
		memCycles = projBytes / g.GlobalBytesPerCycle
	}
	cycles := computeCycles + memCycles
	return cycles / g.ClockMHz // cycles / (MHz) = microseconds
}

// SimilarityKernelUS estimates the class-similarity kernel time in
// microseconds for n queries against k class hypervectors of dimension d.
// The binary path reads bipolar queries from constant memory and performs
// adds/subs only.
func (g GPUKernelModel) SimilarityKernelUS(n, k, d int, binary bool) float64 {
	ops := float64(n) * float64(k) * float64(d)
	classBytes := float64(k) * float64(d) * 4 // class HVs stay float
	var computeCycles float64
	queryBytes := float64(n) * float64(d) * 4
	if binary {
		computeCycles = ops / (g.cores() * g.AddPerCyclePerCore)
		queryBytes = float64(n) * float64(d) / 8
	} else {
		computeCycles = ops / (g.cores() * g.FMAPerCyclePerCore)
	}
	memCycles := (classBytes + queryBytes) / g.GlobalBytesPerCycle
	cycles := computeCycles + memCycles
	return cycles / g.ClockMHz
}

// BinarySpeedup reports the end-to-end HD-stage speedup of the binary
// kernels over the float kernels for one batch — the Sec. VI-A optimization
// the GPU implementation contributes.
func (g GPUKernelModel) BinarySpeedup(n, f, k, d int) float64 {
	floatUS := g.EncodeKernelUS(n, f, d, false) + g.SimilarityKernelUS(n, k, d, false)
	binUS := g.EncodeKernelUS(n, f, d, true) + g.SimilarityKernelUS(n, k, d, true)
	if binUS <= 0 {
		return 0
	}
	return floatUS / binUS
}
