package hwsim

import (
	"math"
	"testing"

	"nshd/internal/core"
	"nshd/internal/nn"
)

func TestEnergyModelValidate(t *testing.T) {
	if err := XavierModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := XavierModel()
	bad.AddOnly = 10
	if err := bad.Validate(); err == nil {
		t.Fatal("expected add-only > MAC rejection")
	}
	bad2 := XavierModel()
	bad2.MACINT8 = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected non-positive rejection")
	}
}

func TestCNNEnergyMonotoneInCost(t *testing.T) {
	m := XavierModel()
	small := nn.Stats{MACs: 1e6, Params: 1e5, ActBytes: 1e5}
	big := nn.Stats{MACs: 2e6, Params: 2e5, ActBytes: 2e5}
	if m.CNNEnergyPJ(big) <= m.CNNEnergyPJ(small) {
		t.Fatal("energy must grow with cost")
	}
}

func TestNSHDEnergyBelowCNNForEarlyCut(t *testing.T) {
	m := XavierModel()
	// A CNN of 10M MACs cut at 40%: the HD side adds binary work but the
	// saved fp32 MACs dominate → NSHD must be cheaper.
	cnnStats := nn.Stats{MACs: 10e6, Params: 500e3, ActBytes: 400e3}
	costs := core.CostReport{
		ExtractorMACs:   4e6,
		ManifoldMACs:    32 * 100,
		EncodeMACs:      100 * 3000,
		SimilarityMACs:  10 * 3000,
		ExtractorBytes:  200e3 * 4,
		ManifoldBytes:   3200 * 4,
		ProjectionBytes: 100 * 3000 / 8,
		ClassHVBytes:    10 * 3000 * 4,
	}
	extractStats := nn.Stats{MACs: costs.ExtractorMACs, Params: 200e3, ActBytes: 200e3}
	cnnE := m.CNNEnergyPJ(cnnStats)
	nshdE := m.NSHDEnergyPJ(costs, extractStats)
	if nshdE >= cnnE {
		t.Fatalf("NSHD energy %v must undercut CNN %v for an early cut", nshdE, cnnE)
	}
	imp := ImprovementPercent(cnnE, nshdE)
	if imp <= 0 || imp >= 100 {
		t.Fatalf("improvement %v%% out of range", imp)
	}
}

func TestImprovementPercentEdgeCases(t *testing.T) {
	if ImprovementPercent(0, 10) != 0 {
		t.Fatal("zero-cost CNN must yield 0")
	}
	if got := ImprovementPercent(100, 36); math.Abs(got-64) > 1e-9 {
		t.Fatalf("improvement = %v, want 64", got)
	}
}

func TestDPUValidate(t *testing.T) {
	if err := DefaultDPU().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultDPU()
	bad.Efficiency = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("expected efficiency rejection")
	}
}

func TestResourcesReproduceTable1(t *testing.T) {
	// The paper's Table I at the default configuration (D=3000).
	rep := DefaultDPU().Resources(3000)
	want := map[string]struct {
		used int
		util float64
	}{
		"LUT":  {84900, 36.87},
		"FF":   {146500, 31.80},
		"BRAM": {224, 71.79},
		"URAM": {40, 41.67},
		"DSP":  {844, 48.84},
	}
	for _, row := range rep.Rows {
		w := want[row.Name]
		if relErr(float64(row.Used), float64(w.used)) > 0.05 {
			t.Errorf("%s used = %d, paper %d", row.Name, row.Used, w.used)
		}
		if math.Abs(row.Utilization-w.util) > 4 {
			t.Errorf("%s utilization = %.2f%%, paper %.2f%%", row.Name, row.Utilization, w.util)
		}
		if row.Used > row.Available {
			t.Errorf("%s over-utilized", row.Name)
		}
	}
	if rep.FreqMHz != 200 {
		t.Fatalf("frequency %v", rep.FreqMHz)
	}
	if relErr(rep.Watts, 4.427) > 0.08 {
		t.Fatalf("power %v W, paper 4.427 W", rep.Watts)
	}
}

func TestResourcesGrowWithDimension(t *testing.T) {
	dpu := DefaultDPU()
	r1 := dpu.Resources(1000)
	r3 := dpu.Resources(3000)
	r10 := dpu.Resources(10000)
	for i := range r1.Rows {
		if !(r1.Rows[i].Used < r3.Rows[i].Used && r3.Rows[i].Used < r10.Rows[i].Used) {
			t.Fatalf("%s does not grow with D", r1.Rows[i].Name)
		}
	}
}

func TestNSHDFPSBeatsCNNForEarlyCut(t *testing.T) {
	dpu := DefaultDPU()
	cnnMACs := int64(20e6)
	costs := core.CostReport{
		ExtractorMACs:  8e6,
		ManifoldMACs:   3200,
		EncodeMACs:     100 * 3000,
		SimilarityMACs: 10 * 3000,
	}
	cnnFPS := dpu.CNNFPS(cnnMACs)
	nshdFPS := dpu.NSHDFPS(costs)
	if nshdFPS <= cnnFPS {
		t.Fatalf("NSHD FPS %v must beat CNN %v", nshdFPS, cnnFPS)
	}
	imp := ThroughputImprovementPercent(cnnFPS, nshdFPS)
	if imp <= 0 {
		t.Fatalf("improvement %v", imp)
	}
}

func TestFPSDecreasesWithDimension(t *testing.T) {
	dpu := DefaultDPU()
	mk := func(d int64) core.CostReport {
		return core.CostReport{
			ExtractorMACs:  5e6,
			EncodeMACs:     100 * d,
			SimilarityMACs: 10 * d,
		}
	}
	f1 := dpu.NSHDFPS(mk(1000))
	f3 := dpu.NSHDFPS(mk(3000))
	f10 := dpu.NSHDFPS(mk(10000))
	if !(f1 > f3 && f3 > f10) {
		t.Fatalf("FPS must fall with D: %v %v %v", f1, f3, f10)
	}
}

func TestThroughputImprovementEdge(t *testing.T) {
	if ThroughputImprovementPercent(0, 5) != 0 {
		t.Fatal("zero CNN FPS must yield 0")
	}
	if got := ThroughputImprovementPercent(100, 138.14); math.Abs(got-38.14) > 1e-9 {
		t.Fatalf("got %v", got)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
