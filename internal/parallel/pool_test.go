package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMain(m *testing.M) {
	// Force a multi-worker pool even on single-CPU machines so the dispatch,
	// nesting, and help-drain paths are genuinely exercised (GOMAXPROCS may
	// exceed the physical CPU count).
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	m.Run()
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 4097} {
		hits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForGrainRespectsFloor(t *testing.T) {
	var minChunk atomic.Int64
	minChunk.Store(1 << 60)
	const n, grain = 1000, 100
	ForGrain(n, grain, func(lo, hi int) {
		if w := int64(hi - lo); w < minChunk.Load() {
			minChunk.Store(w)
		}
	})
	// Chunks are ceil-divided so the floor is approximate, but no chunk
	// should be drastically below the grain (e.g. single items).
	if minChunk.Load() < grain/2 {
		t.Fatalf("chunk of %d items despite grain %d", minChunk.Load(), grain)
	}
}

func TestForSmallRunsInline(t *testing.T) {
	calls := 0
	ForGrain(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected single inline chunk [0,10), got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 inline call, got %d", calls)
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	// Three levels of nesting: each mid-level chunk kernel issues another
	// For call of its own. Item counts must be exact at every level.
	var items64, items8, calls64 atomic.Int64
	For(32, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(64, func(jlo, jhi int) {
				calls64.Add(1)
				For(8, func(klo, khi int) {
					items8.Add(int64(khi - klo))
				})
				items64.Add(int64(jhi - jlo))
			})
		}
	})
	if items64.Load() != 32*64 {
		t.Fatalf("mid-level items = %d, want %d", items64.Load(), 32*64)
	}
	if items8.Load() != calls64.Load()*8 {
		t.Fatalf("inner items = %d, want %d", items8.Load(), calls64.Load()*8)
	}
}

// TestConcurrentHammer drives many For calls from independent goroutines at
// once; run with -race to validate the pool's synchronization.
func TestConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := 1 + (seed*31+r*17)%200
				out := make([]int, n)
				For(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = i * i
					}
				})
				for i, v := range out {
					if v != i*i {
						t.Errorf("goroutine %d round %d: out[%d]=%d", seed, r, i, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkForDispatch(b *testing.B) {
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(Workers()*loadBalanceFactor, func(lo, hi int) {
			sink.Add(int64(hi - lo))
		})
	}
}
