// Package parallel provides a persistent worker pool for data-parallel
// kernels. The seed implementation spawned fresh goroutines on every
// MatMulInto/ParallelFor call; this pool starts GOMAXPROCS long-lived workers
// once and dispatches chunk tasks over a channel, so the steady-state cost of
// fanning out a kernel is a channel send instead of goroutine creation.
//
// The pool is nesting-safe: a kernel running on a pool worker may itself call
// For/ForGrain (e.g. conv2d parallelizes over samples and each sample's
// matmul parallelizes over tiles). Deadlock is impossible by construction
// because every goroutine that waits for a call to finish also *drains* the
// task queue while waiting — a blocked waiter is always also a consumer.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// task is one contiguous chunk of a For call.
type task struct {
	lo, hi int
	kernel func(lo, hi int)
	call   *callState
}

// callState tracks completion of one For call's tasks. finished is a
// capacity-1 channel that receives one token when the last task completes —
// a token, not a close, so a Call can reuse the same state across runs.
type callState struct {
	remaining atomic.Int64
	finished  chan struct{}
}

var (
	initOnce sync.Once
	tasks    chan task
	nworkers int
)

// loadBalanceFactor controls how many chunks each worker gets on average;
// more than one lets fast workers steal slack from slow ones.
const loadBalanceFactor = 4

func ensurePool() {
	initOnce.Do(func() {
		nworkers = runtime.GOMAXPROCS(0)
		tasks = make(chan task, 8*nworkers)
		for i := 0; i < nworkers; i++ {
			go func() {
				for t := range tasks {
					runTask(t)
				}
			}()
		}
	})
}

func runTask(t task) {
	t.kernel(t.lo, t.hi)
	if t.call.remaining.Add(-1) == 0 {
		t.call.finished <- struct{}{}
	}
}

// Workers returns the pool size (GOMAXPROCS at first use).
func Workers() int {
	ensurePool()
	return nworkers
}

// For splits [0,n) into contiguous chunks and runs kernel over them on the
// pool, blocking until all chunks complete. Equivalent to ForGrain(n, 1, kernel).
func For(n int, kernel func(lo, hi int)) {
	ForGrain(n, 1, kernel)
}

// ForGrain is For with a work-size floor: no chunk is (much) smaller than
// grain items, so callers can express "one task must be worth at least X
// flops" as grain = X / costPerItem. When n <= grain or the pool has a single
// worker the kernel runs inline with no dispatch overhead.
func ForGrain(n, grain int, kernel func(lo, hi int)) {
	if n <= 0 {
		return
	}
	ensurePool()
	if grain < 1 {
		grain = 1
	}
	if nworkers <= 1 || n <= grain {
		kernel(0, n)
		return
	}
	chunks := nworkers * loadBalanceFactor
	if maxChunks := (n + grain - 1) / grain; chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks <= 1 {
		kernel(0, n)
		return
	}
	chunk := (n + chunks - 1) / chunks
	numTasks := (n + chunk - 1) / chunk
	st := &callState{finished: make(chan struct{}, 1)}
	st.remaining.Store(int64(numTasks))
	lo := 0
	for ti := 0; ti < numTasks; ti++ {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		t := task{lo: lo, hi: hi, kernel: kernel, call: st}
		if ti == numTasks-1 {
			// The caller always participates instead of just blocking.
			runTask(t)
		} else {
			select {
			case tasks <- t:
			default:
				// Queue full (deep nesting or heavy load): run inline
				// rather than block, preserving the no-deadlock invariant.
				runTask(t)
			}
		}
		lo = hi
	}
	// Help-drain: execute queued tasks (ours or other calls') while waiting.
	for {
		select {
		case <-st.finished:
			return
		case t := <-tasks:
			runTask(t)
		}
	}
}
