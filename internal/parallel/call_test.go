package parallel

import (
	"sync/atomic"
	"testing"
)

// TestCallRunsAllTasks checks a Call executes every task exactly once per
// Run, across repeated reuse of the same Call.
func TestCallRunsAllTasks(t *testing.T) {
	const n = 23
	var hits [n]atomic.Int64
	c := NewCall(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	const runs = 50
	for r := 0; r < runs; r++ {
		c.Run()
	}
	for i := range hits {
		if got := hits[i].Load(); got != runs {
			t.Fatalf("task %d ran %d times, want %d", i, got, runs)
		}
	}
}

// TestCallZeroAlloc pins Run's steady-state allocation count at zero.
func TestCallZeroAlloc(t *testing.T) {
	var sum atomic.Int64
	c := NewCall(8, func(lo, hi int) { sum.Add(int64(lo)) })
	c.Run()
	if a := testing.AllocsPerRun(100, c.Run); a != 0 {
		t.Fatalf("Call.Run allocated %.1f times per run", a)
	}
}

// TestCallNested checks Calls still complete when issued from inside pool
// workers already running a ForGrain fan-out (help-draining must keep both
// levels moving).
func TestCallNested(t *testing.T) {
	var total atomic.Int64
	inner := make([]*Call, Workers()+1)
	for i := range inner {
		inner[i] = NewCall(4, func(lo, hi int) { total.Add(1) })
	}
	ForGrain(len(inner), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			inner[i].Run()
		}
	})
	if got := total.Load(); got != int64(len(inner)*4) {
		t.Fatalf("nested Calls ran %d tasks, want %d", got, len(inner)*4)
	}
}
