package parallel

// Call is a reusable fan-out of a fixed set of tasks over a prebound kernel.
// Where ForGrain allocates a fresh callState per invocation, a Call is built
// once (at engine compile time) and its Run method costs only channel
// operations — no allocation — which keeps per-sample tile dispatch inside
// the serving engine's zero-alloc envelope.
//
// Run blocks until every task has completed, helping drain the pool queue
// while it waits (the same no-deadlock invariant as ForGrain: a blocked
// waiter is always also a consumer). A Call is reusable but NOT reentrant:
// concurrent Runs of the same Call race on its completion state. Callers
// that need concurrency hold one Call per concurrent execution (the fused
// blocks keep them in a freelist alongside their tile buffers).
type Call struct {
	st    callState
	tasks []task
}

// NewCall builds a fan-out of n tasks; task i invokes kernel(i, i+1). The
// kernel typically indexes a slice of per-task work descriptors rebound
// before each Run.
func NewCall(n int, kernel func(lo, hi int)) *Call {
	c := &Call{st: callState{finished: make(chan struct{}, 1)}}
	c.tasks = make([]task, n)
	for i := range c.tasks {
		c.tasks[i] = task{lo: i, hi: i + 1, kernel: kernel, call: &c.st}
	}
	return c
}

// Run executes all tasks, inline when the pool has a single worker (serial
// and parallel execution are then trivially identical), otherwise dispatched
// to the pool with the caller participating. Zero heap allocations.
func (c *Call) Run() {
	n := len(c.tasks)
	if n == 0 {
		return
	}
	ensurePool()
	if nworkers <= 1 || n == 1 {
		for i := range c.tasks {
			t := &c.tasks[i]
			t.kernel(t.lo, t.hi)
		}
		return
	}
	c.st.remaining.Store(int64(n))
	for i := 0; i < n-1; i++ {
		select {
		case tasks <- c.tasks[i]:
		default:
			// Queue full (deep nesting or heavy load): run inline rather
			// than block, preserving the no-deadlock invariant.
			runTask(c.tasks[i])
		}
	}
	// The caller always participates instead of just blocking.
	runTask(c.tasks[n-1])
	for {
		select {
		case <-c.st.finished:
			return
		case t := <-tasks:
			runTask(t)
		}
	}
}
