// Package baseline implements the standalone-HD comparison point of the
// paper's accuracy evaluation (Fig. 7): VanillaHD, an HD classifier that
// encodes raw image pixels with the state-of-the-art non-linear encoding and
// never sees a CNN. Its poor accuracy on image workloads (the paper reports
// 39.88% / 19.7% on CIFAR-10/100) is the motivating observation for NSHD.
//
// The BaselineHD comparison (CNN features, no manifold, no KD) lives in
// package core as core.NewBaselineHD, since it shares the pipeline assembly.
package baseline

import (
	"fmt"
	"io"

	"nshd/internal/dataset"
	"nshd/internal/hdc"
	"nshd/internal/hdlearn"
	"nshd/internal/tensor"
)

// VanillaConfig parameterizes VanillaHD.
type VanillaConfig struct {
	// D is the hypervector dimension.
	D int
	// Sigma is the non-linear encoder bandwidth; keep it near 1/sqrt(F) so
	// the random-Fourier phases stay in a discriminative range.
	Sigma float64
	// Epochs of MASS retraining.
	Epochs int
	// LR is the MASS learning rate.
	LR float64
	// Seed drives the encoder and shuffling.
	Seed int64
}

// DefaultVanillaConfig mirrors the paper's standalone-HD setup.
func DefaultVanillaConfig() VanillaConfig {
	return VanillaConfig{D: 3000, Sigma: 0.05, Epochs: 10, LR: 0.35, Seed: 1}
}

// VanillaHD is a pixels-in HD classifier.
type VanillaHD struct {
	Cfg     VanillaConfig
	Encoder *hdc.NonlinearEncoder
	HD      *hdlearn.Model
	rng     *tensor.RNG
}

// NewVanillaHD constructs a VanillaHD model for the dataset geometry.
func NewVanillaHD(d *dataset.Dataset, cfg VanillaConfig) (*VanillaHD, error) {
	if cfg.D < 16 {
		return nil, fmt.Errorf("baseline: dimension %d too small", cfg.D)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("baseline: %d epochs", cfg.Epochs)
	}
	shape := d.SampleShape()
	f := shape[0] * shape[1] * shape[2]
	rng := tensor.NewRNG(cfg.Seed)
	return &VanillaHD{
		Cfg:     cfg,
		Encoder: hdc.NewNonlinearEncoder(rng.Fork(), f, cfg.D, cfg.Sigma),
		HD:      hdlearn.NewModel(d.Classes, cfg.D),
		rng:     rng,
	}, nil
}

// Encode maps the dataset's images to hypervectors.
func (v *VanillaHD) Encode(images *tensor.Tensor) *tensor.Tensor {
	flat := images.Reshape(images.Shape[0], -1)
	return v.Encoder.EncodeBatch(flat)
}

// Train bundles and MASS-retrains on the training split, returning per-epoch
// stats.
func (v *VanillaHD) Train(train *dataset.Dataset, log io.Writer) ([]hdlearn.EpochStats, error) {
	if err := train.Validate(); err != nil {
		return nil, err
	}
	hvs := v.Encode(train.Images)
	v.HD.InitBundle(hvs, train.Labels)
	hist := v.HD.TrainMASS(hvs, train.Labels, hdlearn.MASSConfig{
		Epochs: v.Cfg.Epochs, LR: v.Cfg.LR, Shuffle: true,
	}, v.rng)
	if log != nil {
		for _, h := range hist {
			fmt.Fprintf(log, "vanilla epoch %d acc=%.4f\n", h.Epoch, h.TrainAccuracy)
		}
	}
	return hist, nil
}

// Accuracy scores the model on a labelled dataset.
func (v *VanillaHD) Accuracy(d *dataset.Dataset) float64 {
	return v.HD.Accuracy(v.Encode(d.Images), d.Labels)
}

// InferenceMACs counts per-sample cost: the F·D non-linear projection plus
// the K·D similarity scan.
func (v *VanillaHD) InferenceMACs() int64 {
	return v.Encoder.EncodeMACs() + v.HD.InferenceMACs()
}
