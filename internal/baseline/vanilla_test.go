package baseline

import (
	"testing"

	"nshd/internal/dataset"
)

func synthSplits(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.SynthConfig{Classes: 4, Train: 160, Test: 80, Size: 16, Noise: 0.2, Seed: 51}
	train, test := dataset.SynthCIFAR(cfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)
	return train, test
}

func TestVanillaHDConfigValidation(t *testing.T) {
	train, _ := synthSplits(t)
	if _, err := NewVanillaHD(train, VanillaConfig{D: 4, Epochs: 1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := NewVanillaHD(train, VanillaConfig{D: 512, Sigma: 1, Epochs: 0}); err == nil {
		t.Fatal("expected epochs error")
	}
}

func TestVanillaHDTrainsAboveChanceBelowCNNLevel(t *testing.T) {
	train, test := synthSplits(t)
	cfg := VanillaConfig{D: 1024, Sigma: 0.05, Epochs: 6, LR: 0.35, Seed: 2}
	v, err := NewVanillaHD(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := v.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 6 {
		t.Fatalf("epochs recorded: %d", len(hist))
	}
	acc := v.Accuracy(test)
	// Around (at most modestly above) the 25% chance level and far from
	// solving the task, mirroring the paper's observation that raw-pixel HD
	// encoding is ineffective for images (39.88% on CIFAR-10 vs 10% chance).
	if acc < 0.15 {
		t.Fatalf("vanilla accuracy %v collapsed below chance", acc)
	}
	if acc >= 0.6 {
		t.Fatalf("vanilla accuracy %v too high — workload not image-hard", acc)
	}
}

func TestVanillaHDDeterministicBySeed(t *testing.T) {
	train, test := synthSplits(t)
	cfg := VanillaConfig{D: 512, Sigma: 0.3, Epochs: 2, LR: 0.35, Seed: 3}
	run := func() float64 {
		v, err := NewVanillaHD(train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Train(train, nil); err != nil {
			t.Fatal(err)
		}
		return v.Accuracy(test)
	}
	if run() != run() {
		t.Fatal("same seed must reproduce the same accuracy")
	}
}

func TestVanillaHDInferenceMACs(t *testing.T) {
	train, _ := synthSplits(t)
	v, err := NewVanillaHD(train, VanillaConfig{D: 512, Sigma: 1, Epochs: 1, LR: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := int64(3 * 16 * 16)
	want := f*512 + 4*512
	if got := v.InferenceMACs(); got != want {
		t.Fatalf("InferenceMACs = %d, want %d", got, want)
	}
}
