package engine_test

import (
	"fmt"
	"sync"
	"testing"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// tinyZoo mirrors the core test helper: a fast 2-unit CNN over 16×16 inputs.
func tinyZoo(seed int64, classes int) *cnn.Model {
	rng := tensor.NewRNG(seed)
	m := &cnn.Model{Name: "tinycnn", InShape: []int{3, 16, 16}, Classes: classes}
	m.Units = append(m.Units,
		cnn.Unit{Index: 0, Label: "conv0", Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, 8, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
		cnn.Unit{Index: 1, Label: "conv1", Layers: []nn.Layer{
			nn.NewConv2D(rng, 8, 16, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
	)
	m.Head = []nn.Layer{nn.NewFlatten(), nn.NewLinear(rng, 16*4*4, classes, true)}
	return m.Finish()
}

// variant describes one pipeline topology/kernel combination the engine must
// reproduce bit-for-bit.
type variant struct {
	name string
	mut  func(*core.Config)
}

// D = 70 everywhere: not divisible by 64, so the packed classifier's
// tail-word masking is always on the line.
func variants() []variant {
	return []variant{
		{"manifold-float", func(c *core.Config) {}},
		{"manifold-packed", func(c *core.Config) { c.PackedInference = true }},
		{"lsh-float", func(c *core.Config) { c.UseManifold = false; c.LSHDim = 20 }},
		{"direct-packed", func(c *core.Config) {
			c.UseManifold = false
			c.LSHDim = 0
			c.PackedInference = true
		}},
	}
}

// buildPipeline assembles a pipeline with bundled (nontrivial) class
// hypervectors plus train/test splits. Bundling alone gives every class a
// distinct hypervector without paying for the full retraining loop.
func buildPipeline(t *testing.T, mut func(*core.Config)) (*core.Pipeline, *dataset.Dataset) {
	t.Helper()
	cfgD := dataset.SynthConfig{Classes: 4, Train: 40, Test: 21, Size: 16, Noise: 0.2, Seed: 61}
	train, test := dataset.SynthCIFAR(cfgD)
	cfg := core.DefaultConfig(1, 4)
	cfg.D = 70
	cfg.FHat = 16
	cfg.Seed = 7
	cfg.BatchSize = 8
	mut(&cfg)
	p, err := core.New(tinyZoo(62, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	return p, test
}

// TestEnginePredictMatchesPipelineDirect is the central property: per-sample
// agreement with the training-side reference path, across every topology and
// both classifier kernels, on a batch that spans multiple chunks including a
// partial tail (21 samples, chunk 8).
func TestEnginePredictMatchesPipelineDirect(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			p, test := buildPipeline(t, v.mut)
			e, err := engine.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			want := p.PredictDirect(test.Images)
			got, err := e.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("engine returned %d predictions, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: engine=%d direct=%d", i, got[i], want[i])
				}
			}
			// Sanity: predictions span more than one class, otherwise the
			// agreement above is vacuous.
			seen := map[int]bool{}
			for _, pr := range want {
				seen[pr] = true
			}
			if len(seen) < 2 {
				t.Fatal("degenerate test model: all predictions identical")
			}
		})
	}
}

func TestEngineQueryHVsMatchesPipeline(t *testing.T) {
	p, test := buildPipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	feats := p.ExtractFeatures(test.Images)
	_, _, want := p.Symbolize(feats, false)
	got, err := e.QueryHVs(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shape[0] != want.Shape[0] || got.Shape[1] != want.Shape[1] {
		t.Fatalf("QueryHVs shape %v, want %v", got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("engine query hypervectors differ from the direct path")
		}
	}
}

// TestEngineZeroAlloc is the acceptance gate: a chunk-sized batch through
// PredictInto must not touch the heap in steady state, on both classifier
// kernels.
func TestEngineZeroAlloc(t *testing.T) {
	for _, v := range []variant{
		{"float", func(c *core.Config) {}},
		{"packed", func(c *core.Config) { c.PackedInference = true }},
	} {
		t.Run(v.name, func(t *testing.T) {
			p, test := buildPipeline(t, v.mut)
			e, err := engine.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			n := e.ChunkSize()
			if n > test.Len() {
				n = test.Len()
			}
			sample := test.Images.Len() / test.Len()
			imgs := tensor.FromSlice(test.Images.Data[:n*sample], n, 3, 16, 16)
			preds := make([]int, n)
			if err := e.PredictInto(imgs, preds); err != nil {
				t.Fatal(err)
			}
			if a := testing.AllocsPerRun(100, func() {
				if err := e.PredictInto(imgs, preds); err != nil {
					t.Fatal(err)
				}
			}); a != 0 {
				t.Fatalf("PredictInto allocated %.1f times per run in steady state", a)
			}
		})
	}
}

func TestEngineEmptyAndInvalidInput(t *testing.T) {
	p, _ := buildPipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := e.Predict(tensor.New(0, 3, 16, 16))
	if err != nil || len(preds) != 0 {
		t.Fatalf("empty batch: preds=%v err=%v", preds, err)
	}
	hvs, err := e.QueryHVs(tensor.New(0, 3, 16, 16))
	if err != nil || hvs.Shape[0] != 0 || hvs.Shape[1] != 70 {
		t.Fatalf("empty QueryHVs: shape=%v err=%v", hvs.Shape, err)
	}
	if _, err := e.Predict(tensor.New(2, 1, 16, 16)); err == nil {
		t.Fatal("expected channel-mismatch error")
	}
	if _, err := e.Predict(tensor.New(4, 16, 16)); err == nil {
		t.Fatal("expected rank error")
	}
	if err := e.PredictInto(tensor.New(3, 3, 16, 16), make([]int, 2)); err == nil {
		t.Fatal("expected preds-length error")
	}
	if _, err := engine.Compile(nil); err == nil {
		t.Fatal("expected nil-pipeline error")
	}
}

// TestEngineConcurrentPredict hammers one engine from many goroutines (run
// under -race by `make race`): results must stay correct and deterministic
// while worker arenas recycle through the freelist.
func TestEngineConcurrentPredict(t *testing.T) {
	p, test := buildPipeline(t, func(c *core.Config) { c.PackedInference = true })
	e, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 10
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				got, err := e.Predict(test.Images)
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errs <- errMismatch
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent Predict disagreed with serial Predict" }

// TestEnginePredictStream checks ordering, correctness, per-batch error
// isolation, and clean termination of the streaming path.
func TestEnginePredictStream(t *testing.T) {
	p, test := buildPipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	sample := test.Images.Len() / test.Len()
	batches := []*tensor.Tensor{
		tensor.FromSlice(test.Images.Data[:5*sample], 5, 3, 16, 16),
		tensor.New(0, 3, 16, 16), // empty batch
		tensor.New(2, 1, 16, 16), // bad shape: must error, not kill the stream
		test.Images,              // full batch, multi-chunk
		tensor.FromSlice(test.Images.Data[:sample], 1, 3, 16, 16),
	}
	in := make(chan *tensor.Tensor)
	go func() {
		for _, b := range batches {
			in <- b
		}
		close(in)
	}()
	var results []engine.StreamResult
	for r := range e.PredictStream(in) {
		results = append(results, r)
	}
	if len(results) != len(batches) {
		t.Fatalf("stream produced %d results, want %d", len(results), len(batches))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d: stream must preserve order", i, r.Index)
		}
	}
	if results[2].Err == nil {
		t.Fatal("bad-shape batch must report an error")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if results[i].Err != nil {
			t.Fatalf("batch %d failed: %v", i, results[i].Err)
		}
		want, _ := e.Predict(batches[i])
		if len(results[i].Preds) != len(want) {
			t.Fatalf("batch %d: %d preds, want %d", i, len(results[i].Preds), len(want))
		}
		for j := range want {
			if results[i].Preds[j] != want[j] {
				t.Fatalf("batch %d sample %d: stream=%d direct=%d", i, j, results[i].Preds[j], want[j])
			}
		}
	}
}

// TestPipelineServesThroughEngine: with this package imported, core routes
// Predict through a compiled engine and recompiles when the model version or
// the inference kernel changes.
func TestPipelineServesThroughEngine(t *testing.T) {
	p, test := buildPipeline(t, func(c *core.Config) {})
	served := p.Predict(test.Images)
	direct := p.PredictDirect(test.Images)
	for i := range direct {
		if served[i] != direct[i] {
			t.Fatalf("sample %d: served=%d direct=%d", i, served[i], direct[i])
		}
	}

	// Mutate the class hypervectors: the cached engine is stale and must be
	// recompiled, tracking the new weights.
	rng := tensor.NewRNG(99)
	u := tensor.New(test.Len(), 4)
	rng.FillNormal(u, 0, 1)
	hvs := p.QueryHVs(test.Images)
	p.HD.ApplyUpdate(u, hvs, 5)
	served2 := p.Predict(test.Images)
	direct2 := p.PredictDirect(test.Images)
	changed := false
	for i := range direct2 {
		if served2[i] != direct2[i] {
			t.Fatalf("after update, sample %d: served=%d direct=%d", i, served2[i], direct2[i])
		}
		if served2[i] != served[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("large model update changed no prediction; staleness untested")
	}

	// Switch the inference kernel: the engine must recompile with the packed
	// classifier even though the model version is unchanged.
	p.Cfg.PackedInference = true
	servedP := p.Predict(test.Images)
	directP := p.PredictDirect(test.Images)
	for i := range directP {
		if servedP[i] != directP[i] {
			t.Fatalf("packed, sample %d: served=%d direct=%d", i, servedP[i], directP[i])
		}
	}
}

func TestEngineStagesReported(t *testing.T) {
	p, _ := buildPipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	names := e.Stages()
	want := []string{"extract", "manifold", "fuse(project+classify-float)"}
	if len(names) != len(want) {
		t.Fatalf("stages %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages %v, want %v", names, want)
		}
	}
	if e.ChunkSize() < 1 || e.ArenaBytes() <= 0 {
		t.Fatalf("chunk=%d arenaBytes=%d", e.ChunkSize(), e.ArenaBytes())
	}

	// The staged build reports the legacy chain.
	es, err := engine.Compile(p, engine.WithStagedTail())
	if err != nil {
		t.Fatal(err)
	}
	sNames := es.Stages()
	sWant := []string{"extract", "manifold", "project", "classify-float"}
	if fmt.Sprint(sNames) != fmt.Sprint(sWant) {
		t.Fatalf("staged stages %v, want %v", sNames, sWant)
	}
}
