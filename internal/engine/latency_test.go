package engine_test

import (
	"testing"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// TestEngineZeroAllocBatch1 extends the steady-state zero-alloc gate (its
// name keeps it inside the `make alloc` run) to the latency-critical shape:
// a single-sample PredictInto across every tail strategy × both classifier
// kernels. Batch 1 drives the skinny-M GEMM dispatch and the prepacked
// projection strips, so a regression that makes either path allocate fails
// here even when the chunk-sized gate stays clean.
func TestEngineZeroAllocBatch1(t *testing.T) {
	for _, kern := range []struct {
		name   string
		packed bool
	}{{"float", false}, {"packed", true}} {
		for _, mode := range []struct {
			name string
			opts []engine.Option
		}{
			{"fused", nil},
			{"remat", []engine.Option{engine.WithRemat()}},
			{"folded", []engine.Option{engine.WithFoldedTail()}},
			{"staged", []engine.Option{engine.WithStagedTail()}},
		} {
			t.Run(kern.name+"/"+mode.name, func(t *testing.T) {
				p, test := buildPipeline(t, func(c *core.Config) { c.PackedInference = kern.packed })
				e, err := engine.Compile(p, mode.opts...)
				if err != nil {
					t.Fatal(err)
				}
				sample := test.Images.Len() / test.Len()
				img := tensor.FromSlice(test.Images.Data[:sample], 1,
					test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
				preds := make([]int, 1)
				if err := e.PredictInto(img, preds); err != nil {
					t.Fatal(err)
				}
				if a := testing.AllocsPerRun(100, func() {
					if err := e.PredictInto(img, preds); err != nil {
						t.Fatal(err)
					}
				}); a != 0 {
					t.Fatalf("%s/%s batch-1 PredictInto allocated %.1f times per run",
						kern.name, mode.name, a)
				}
			})
		}
	}
}

// TestEngineZeroAllocBatch1ImplicitConv covers the implicit-GEMM convolution
// path under the alloc gate: a vgg16 prefix on 32×32 inputs clears the
// convImplicitMinFloats threshold on its wide conv layers with the default
// gate, so batch-1 inference runs tensor.ConvMulSerialInto from arena
// scratch — and must stay allocation-free.
func TestEngineZeroAllocBatch1ImplicitConv(t *testing.T) {
	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 4, Train: 16, Test: 4, Size: 32, Noise: 0.2, Seed: 81,
	})
	zoo, err := cnn.Build("vgg16", tensor.NewRNG(82), 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(4, 4)
	cfg.Seed = 83
	cfg.D = 600
	cfg.FHat = 40
	p, err := core.New(zoo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	e, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	sample := train.Images.Len() / train.Images.Shape[0]
	img := tensor.FromSlice(train.Images.Data[:sample], 1,
		train.Images.Shape[1], train.Images.Shape[2], train.Images.Shape[3])
	preds := make([]int, 1)
	if err := e.PredictInto(img, preds); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(20, func() {
		if err := e.PredictInto(img, preds); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("implicit-conv batch-1 PredictInto allocated %.1f times per run", a)
	}
}
