package engine

import (
	"fmt"

	"nshd/internal/core"
	"nshd/internal/hdc"
	"nshd/internal/hdlearn"
	"nshd/internal/nn"
	"nshd/internal/quant"
	"nshd/internal/tensor"
)

// This file is the engine's fused linear tail: the Compile-time collapse of
// manifold-FC → random projection → sign → class scoring into one blocked
// GEMM whose output blocks are consumed (packed or scored) the moment they
// are computed. The staged chain materializes a [N, F̂] manifold activation,
// a [N, D] raw bundle and a [N, D] signed hypervector batch per chunk; the
// fused tail keeps only one [N, 256] projection block live, so the per-chunk
// arena drops the D-wide slabs entirely and the projection's panel packing
// moves from every call to Compile time (or, under rematerialization, to a
// seeded regeneration inside the panel step — see tensor.BipolarGen).
//
// Numerical contract, proven by the engine tests:
//
//   - Unfused vs fused (no fold): BIT-EXACT. tensor.MatMulPanelsBlock
//     reproduces the serial GEMM's per-element accumulation order, sign(·)
//     commutes with blocking, and PackSignsInto over a 256-aligned block
//     writes exactly the words the full-row pack writes.
//   - Folded (x(WᵀP)+bP instead of ((xWᵀ+b)P)): ARGMAX-IDENTICAL only. The
//     re-associated product differs in final ulps, so pre-sign values near
//     zero may flip; predictions are the contract, query hypervectors are
//     not. Folding is therefore cost-gated and never chosen when it loses.
//   - Float scoring uses hdlearn.FoldedScorer (cosine denominator folded
//     into the class matrix, float64 block accumulation): argmax agrees
//     with the staged FloatScorer on every signed query.

// WithStagedTail compiles the legacy chain: separate manifold, projection
// and classifier stages with full-width intermediates. The reference the
// fused tail is tested and benchmarked against.
func WithStagedTail() Option {
	return optionFunc(func(o *compileOptions) { o.stagedTail = true })
}

// WithRemat makes the fused tail rematerialize the projection matrix from
// its 8-byte seed inside the GEMM panel step instead of keeping prepacked
// panels resident: encoder serving bytes collapse from O(F̂·D) to the seed.
// Requires a seeded projection (core pipelines are seeded by construction)
// and the fused tail. Output is bit-identical to the prepacked fused tail;
// the trade is a modest GEMM slowdown for the O(1) footprint.
func WithRemat() Option {
	return optionFunc(func(o *compileOptions) { o.remat = true })
}

// WithFoldedTail forces the algebraic fold of the manifold FC into the
// projection (G = Wᵀ·P, c = b·P) even when the cost model would not choose
// it, collapsing manifold+projection into one GEMM. Only valid on a float32
// manifold pipeline; predictions are argmax-identical to staged, not
// bit-exact (see manifold.FoldProjection). Compile errors on pipelines with
// no manifold, on int8 engines, and in combination with WithRemat.
func WithFoldedTail() Option {
	return optionFunc(func(o *compileOptions) { o.foldTail = true })
}

// foldProfitable is the cost gate for the automatic manifold-FC fold: per
// sample the folded tail spends PooledF·D MACs where the staged tail spends
// PooledF·F̂ (FC) + F̂·D (projection). The paper's shapes (F̂ ≪ PooledF, D)
// make the manifold a compression stage and the fold a pessimization, so it
// only fires when the manifold widens features (1/F̂ < 1/PooledF + 1/D).
func foldProfitable(pooledF, fhat, d int) bool {
	return int64(pooledF)*int64(d) < int64(pooledF)*int64(fhat)+int64(fhat)*int64(d)
}

// StageBytes is one component of the engine's resident serving weights.
type StageBytes struct {
	Name  string
	Bytes int64
}

// tailRunner terminates the compiled chain: feature-stage output to class
// predictions or signed query hypervectors, scratch from the worker arena.
type tailRunner interface {
	// names lists the tail's stage names as reported by Engine.Stages.
	names() []string
	// timeName labels the tail's single TimeStages row.
	timeName() string
	classes() int
	run(x *tensor.Tensor, preds []int, ar *tensor.Arena)
	// runHVs writes the signed query hypervectors ([n rows of d]) into dst.
	runHVs(x *tensor.Tensor, dst []float32, ar *tensor.Arena)
	// runPartial writes the tail's raw partial scores for the chunk's rows
	// into ps at row offset rowOff (see PartialScores for the layout).
	runPartial(x *tensor.Tensor, ps *PartialScores, rowOff int, ar *tensor.Arena)
	// packedKernel reports whether partial scores are int32 dots (popcount
	// or sub-byte; true) or per-block float32 scores (false).
	packedKernel() bool
	// scales returns the per-class dequantization scales of a sub-byte
	// scorer, nil for every other kernel. Non-nil scales mean the int32
	// partial dots must be scale-multiplied before comparing across classes
	// (see MergeScores); such partials are not additive across shards.
	scales() []float32
	breakdown() []StageBytes
}

// subScorer builds the compression plan's sub-byte scorer for the (derived)
// pipeline's class model, nil when the plan keeps the source kernel. Sub-byte
// scoring is full-row (the integer dots need every kept dimension), which the
// plan's full-range requirement in compileResolved guarantees.
func subScorer(p *core.Pipeline, o *compileOptions) *hdlearn.SubByteScorer {
	if o.plan == nil {
		return nil
	}
	switch o.plan.prec {
	case PrecisionInt4:
		return hdlearn.NewInt4Scorer(p.HD, quant.QuantizeInt4Row)
	case PrecisionTernary:
		return hdlearn.NewTernaryScorer(p.HD, quant.QuantizeTernaryRow)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Staged tail: the legacy separate-stages chain behind the tailRunner
// interface. The (sliced) projection runs as an ordinary stage; the tail
// receives [n, d] signed hypervectors of its D-slice and scores them with
// the same sliced partial scorers the fused tail uses — one code path for
// the unsharded and sharded cases (S=1 is a full-range slice).

type stagedTail struct {
	d, lo, fullD int // d = slice width; columns [lo, lo+d) of fullD
	// Exactly one of packed/scorer/sub is set: packed/scorer mirror
	// Cfg.PackedInference (column slices of the full class model); sub is a
	// compression plan's sub-byte scorer (always full-range).
	packed *hdlearn.PackedModel
	scorer *hdlearn.FoldedScorer
	sub    *hdlearn.SubByteScorer
}

func (t *stagedTail) clsName() string {
	switch {
	case t.sub != nil:
		return "classify-" + t.sub.Name()
	case t.packed != nil:
		return "classify-packed"
	}
	return "classify-float"
}

func (t *stagedTail) names() []string    { return []string{t.clsName()} }
func (t *stagedTail) timeName() string   { return "classify" }
func (t *stagedTail) packedKernel() bool { return t.packed != nil || t.sub != nil }

func (t *stagedTail) scales() []float32 {
	if t.sub != nil {
		return t.sub.Scales()
	}
	return nil
}

func (t *stagedTail) classes() int {
	switch {
	case t.sub != nil:
		return t.sub.K
	case t.packed != nil:
		return t.packed.K
	}
	return t.scorer.K
}

func (t *stagedTail) check(x *tensor.Tensor) {
	if x.Rank() != 2 || x.Shape[1] != t.d {
		panic(fmt.Sprintf("engine: staged tail got %v, want [N %d]", x.Shape, t.d))
	}
}

func (t *stagedTail) run(x *tensor.Tensor, preds []int, ar *tensor.Arena) {
	t.check(x)
	if t.sub != nil {
		n := x.Shape[0]
		m := ar.Mark()
		q := ar.Words((t.d + 63) / 64)
		dots := ar.Int32s(t.sub.K)
		for i := 0; i < n; i++ {
			hdc.PackRowInto(q, x.Row(i))
			t.sub.DotsInto(dots, q)
			hdlearn.ArgmaxScaledInto(preds[i:i+1], dots, t.sub.Scales(), 1, t.sub.K)
		}
		ar.Release(m)
		return
	}
	if t.packed != nil {
		m := ar.Mark()
		q := ar.Words(t.packed.WordsPerRow())
		t.packed.PredictBatchInto(x, preds, q)
		ar.Release(m)
		return
	}
	t.scorer.PredictInto(x, preds)
}

func (t *stagedTail) runPartial(x *tensor.Tensor, ps *PartialScores, rowOff int, ar *tensor.Arena) {
	t.check(x)
	n := x.Shape[0]
	k := t.classes()
	m := ar.Mark()
	if t.sub != nil {
		q := ar.Words((t.d + 63) / 64)
		for i := 0; i < n; i++ {
			hdc.PackRowInto(q, x.Row(i))
			t.sub.DotsInto(ps.Ints[(rowOff+i)*k:(rowOff+i+1)*k], q)
		}
	} else if t.packed != nil {
		q := ar.Words(t.packed.WordsPerRow())
		for i := 0; i < n; i++ {
			hdc.PackRowInto(q, x.Row(i))
			t.packed.DotsInto(ps.Ints[(rowOff+i)*k:(rowOff+i+1)*k], q)
		}
	} else {
		bs := ar.Floats(n * k)
		bc := tensor.PanelBlockCols()
		for b, c0 := 0, 0; c0 < t.d; b, c0 = b+1, c0+bc {
			w := bc
			if c0+w > t.d {
				w = t.d - c0
			}
			t.scorer.BlockScores(bs, x.Data[c0:], t.d, n, w, c0)
			base := b * ps.N * k
			for i := 0; i < n; i++ {
				copy(ps.Floats[base+(rowOff+i)*k:base+(rowOff+i+1)*k], bs[i*k:(i+1)*k])
			}
		}
	}
	ar.Release(m)
}

func (t *stagedTail) runHVs(x *tensor.Tensor, dst []float32, ar *tensor.Arena) {
	t.check(x)
	copy(dst, x.Data)
}

func (t *stagedTail) breakdown() []StageBytes {
	var clsBytes int64
	switch {
	case t.sub != nil:
		clsBytes = t.sub.MemoryBytes()
	case t.packed != nil:
		clsBytes = t.packed.MemoryBytes()
	default:
		clsBytes = t.scorer.ModelBytes()
	}
	return []StageBytes{{t.clsName(), clsBytes}}
}

// ---------------------------------------------------------------------------
// Fused tail.

type fusedTail struct {
	d, k, inF int // d = slice width (== full D for an unsharded engine)
	lo, fullD int // columns [lo, lo+d) of the full dimension
	// Folded head (manifold fold only): the pool and flatten that precede
	// the folded GEMM — max-pool is nonlinear, so the fold stops there.
	pool *nn.MaxPool2D
	flat bool
	// down is the factorized manifold's SVD down-projection V ([rank,
	// PooledF]); non-nil only when folding a factorized manifold, where the
	// folded GEMM operand is G = up^T·P ([rank, D]) and the head must first
	// map pooled features to the rank space.
	down *nn.Linear
	// panels is the projection operand in GEMM panel form: prepacked strips
	// of P (or of the folded G), or a seeded generator that rematerializes
	// them inside the kernel.
	panels *tensor.ProjPanels
	// bias is the folded FC bias row c = b·P; nil when not folding.
	bias []float32
	// Exactly one of packed/scorer/sub is set: packed/scorer mirror
	// Cfg.PackedInference; sub is a compression plan's sub-byte scorer.
	packed *hdlearn.PackedModel
	scorer *hdlearn.FoldedScorer
	sub    *hdlearn.SubByteScorer
	name   string
	bytes  []StageBytes
}

// buildFusedTail assembles the tail for one compiled engine, restricted to
// hypervector columns [lo, hi) — the full range for an unsharded engine.
// Each projection backing slices the same way: prepacked panels pack only
// the slice's columns, a remat generator regenerates only them from the
// shared seed, and the folded matrix G = Wᵀ·P and its bias keep the slice.
// fold has been validated (and cost-gated) by Compile.
func buildFusedTail(p *core.Pipeline, o *compileOptions, fold bool, lo, hi int) (*fusedTail, error) {
	t := &fusedTail{d: hi - lo, lo: lo, fullD: p.Cfg.D}
	projName := "project"
	switch {
	case fold:
		g, c, err := p.Manifold.FoldProjection(p.Proj.P)
		if err != nil {
			return nil, fmt.Errorf("engine: folding tail: %w", err)
		}
		t.pool, _ = p.Manifold.InferLayers()
		t.flat = true
		t.bias = c[lo:hi]
		t.inF = p.Manifold.PooledF
		if t.down = p.Manifold.Down(); t.down != nil {
			// Factorized manifold: FoldProjection folded only the up factor
			// (fc.Weight.W is [F̂, rank]), so G is [rank, D] and the head runs
			// the down-projection V to feed the rank-wide GEMM.
			t.inF = t.down.Out
		}
		if lo == 0 && hi == p.Cfg.D {
			t.panels = tensor.PrepackPanels(g)
		} else {
			t.panels = tensor.PrepackPanels(tensor.SliceCols(g, lo, hi))
		}
		projName = "manifold*project"
	case o.remat:
		if !p.Proj.Seeded {
			return nil, fmt.Errorf("engine: WithRemat requires a seeded projection")
		}
		t.inF = p.Proj.F
		t.panels = tensor.RematPanels(p.Proj.Gen().SliceCols(lo, hi))
		projName = "project@seed"
	default:
		t.inF = p.Proj.F
		t.panels = tensor.PrepackPanels(p.Proj.Slice(lo, hi).P)
	}
	clsName := "classify-float"
	switch {
	case o.plan != nil && o.plan.prec != PrecisionKeep:
		t.sub = subScorer(p, o)
		t.k = t.sub.K
		clsName = "classify-" + t.sub.Name()
	case p.Cfg.PackedInference:
		t.packed = hdlearn.PackModel(p.HD).SliceColumns(lo, hi)
		t.k = t.packed.K
		clsName = "classify-packed"
	default:
		t.scorer = hdlearn.NewFoldedScorer(p.HD).Slice(lo, hi)
		t.k = t.scorer.K
	}
	t.name = "fuse(" + projName + "+" + clsName + ")"
	projBytes := t.panels.MemoryBytes() + int64(len(t.bias))*4
	if t.down != nil {
		projBytes += paramBytes(t.down.Params())
	}
	var clsBytes int64
	switch {
	case t.sub != nil:
		clsBytes = t.sub.MemoryBytes()
	case t.packed != nil:
		clsBytes = t.packed.MemoryBytes()
	default:
		clsBytes = t.scorer.ModelBytes()
	}
	t.bytes = []StageBytes{{projName, projBytes}, {clsName, clsBytes}}
	return t, nil
}

func (t *fusedTail) names() []string    { return []string{t.name} }
func (t *fusedTail) timeName() string   { return t.name }
func (t *fusedTail) classes() int       { return t.k }
func (t *fusedTail) packedKernel() bool { return t.packed != nil || t.sub != nil }

func (t *fusedTail) scales() []float32 {
	if t.sub != nil {
		return t.sub.Scales()
	}
	return nil
}

func (t *fusedTail) breakdown() []StageBytes {
	return append([]StageBytes(nil), t.bytes...)
}

// head runs the folded tail's pool+flatten prefix (identity when not
// folding) and validates the GEMM input width.
func (t *fusedTail) head(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	if t.pool != nil {
		x = t.pool.ForwardInfer(x, ar)
	}
	if t.flat && x.Rank() != 2 {
		n := x.Shape[0]
		x = ar.Wrap(x.Data, n, x.Len()/n)
	}
	if t.down != nil {
		x = t.down.ForwardInfer(x, ar)
	}
	if x.Rank() != 2 || x.Shape[1] != t.inF {
		panic(fmt.Sprintf("engine: fused tail got %v, want [N %d]", x.Shape, t.inF))
	}
	return x
}

// addBias adds the folded bias row to a compact [n, w] block of columns
// [c0, c0+w). No-op when not folding.
func (t *fusedTail) addBias(blk []float32, n, w, c0 int) {
	if t.bias == nil {
		return
	}
	b := t.bias[c0 : c0+w]
	for i := 0; i < n; i++ {
		row := blk[i*w : (i+1)*w]
		for j := range row {
			row[j] += b[j]
		}
	}
}

// run classifies one chunk: features → one blocked GEMM whose 256-column
// output blocks are packed (popcount path) or scored (float path) in place.
// Neither the [N, F̂] manifold activation (folded mode) nor any [N, D]
// intermediate ever exists.
func (t *fusedTail) run(x *tensor.Tensor, preds []int, ar *tensor.Arena) {
	m := ar.Mark()
	v := t.head(x, ar)
	n := v.Shape[0]
	bc := tensor.PanelBlockCols()
	scratch := ar.Floats(tensor.PanelScratch())
	blk := ar.Floats(n * bc)
	if t.packed != nil || t.sub != nil {
		wpr := (t.d + 63) / 64
		q := ar.Words(n * wpr)
		for c0 := 0; c0 < t.d; c0 += bc {
			w := tensor.MatMulPanelsBlock(blk, v, t.panels, c0, scratch)
			t.addBias(blk, n, w, c0)
			// Block packing writes the same words as packing the full row:
			// c0 is 256-aligned, so blocks tile the row's words exactly,
			// and the pack's sign test (v < 0) matches sign(0) = +1.
			wb, ww := c0/64, (w+63)/64
			for i := 0; i < n; i++ {
				tensor.PackSignsInto(q[i*wpr+wb:i*wpr+wb+ww], blk[i*w:(i+1)*w])
			}
		}
		if t.sub != nil {
			dots := ar.Int32s(n * t.k)
			for i := 0; i < n; i++ {
				t.sub.DotsInto(dots[i*t.k:(i+1)*t.k], q[i*wpr:(i+1)*wpr])
			}
			hdlearn.ArgmaxScaledInto(preds, dots, t.sub.Scales(), n, t.k)
		} else {
			for i := 0; i < n; i++ {
				preds[i] = t.packed.PredictPacked(q[i*wpr : (i+1)*wpr])
			}
		}
	} else {
		// Score through the partial-scorer path: raw per-block float32
		// scores folded into float64 in block order — the exact values and
		// fold sequence runPartial emits and MergeScores replays, so the
		// local and sharded paths are one code path, bit for bit.
		acc := ar.Float64s(n * t.k)
		for i := range acc {
			acc[i] = 0
		}
		bs := ar.Floats(n * t.k)
		for c0 := 0; c0 < t.d; c0 += bc {
			w := tensor.MatMulPanelsBlock(blk, v, t.panels, c0, scratch)
			t.addBias(blk, n, w, c0)
			signBlock(blk[:n*w])
			t.scorer.BlockScores(bs, blk[:n*w], w, n, w, c0)
			for i, bv := range bs[:n*t.k] {
				acc[i] += float64(bv)
			}
		}
		t.scorer.ArgmaxInto(preds, acc, n)
	}
	ar.Release(m)
}

// runPartial emits the tail's raw partial scores for its D-slice: packed
// int32 dots per sample, or per-256-block float32 scores (see PartialScores).
// The GEMM/pack/sign work is identical to run; only the final scoring step
// changes from fold-and-argmax to emit.
func (t *fusedTail) runPartial(x *tensor.Tensor, ps *PartialScores, rowOff int, ar *tensor.Arena) {
	m := ar.Mark()
	v := t.head(x, ar)
	n := v.Shape[0]
	bc := tensor.PanelBlockCols()
	scratch := ar.Floats(tensor.PanelScratch())
	blk := ar.Floats(n * bc)
	if t.packed != nil || t.sub != nil {
		wpr := (t.d + 63) / 64
		q := ar.Words(n * wpr)
		for c0 := 0; c0 < t.d; c0 += bc {
			w := tensor.MatMulPanelsBlock(blk, v, t.panels, c0, scratch)
			t.addBias(blk, n, w, c0)
			wb, ww := c0/64, (w+63)/64
			for i := 0; i < n; i++ {
				tensor.PackSignsInto(q[i*wpr+wb:i*wpr+wb+ww], blk[i*w:(i+1)*w])
			}
		}
		for i := 0; i < n; i++ {
			out := ps.Ints[(rowOff+i)*t.k : (rowOff+i+1)*t.k]
			if t.sub != nil {
				t.sub.DotsInto(out, q[i*wpr:(i+1)*wpr])
			} else {
				t.packed.DotsInto(out, q[i*wpr:(i+1)*wpr])
			}
		}
	} else {
		bs := ar.Floats(n * t.k)
		for b, c0 := 0, 0; c0 < t.d; b, c0 = b+1, c0+bc {
			w := tensor.MatMulPanelsBlock(blk, v, t.panels, c0, scratch)
			t.addBias(blk, n, w, c0)
			signBlock(blk[:n*w])
			t.scorer.BlockScores(bs, blk[:n*w], w, n, w, c0)
			base := b * ps.N * t.k
			for i := 0; i < n; i++ {
				copy(ps.Floats[base+(rowOff+i)*t.k:base+(rowOff+i+1)*t.k], bs[i*t.k:(i+1)*t.k])
			}
		}
	}
	ar.Release(m)
}

// runHVs writes the signed query hypervectors straight into caller memory,
// one projection block at a time.
func (t *fusedTail) runHVs(x *tensor.Tensor, dst []float32, ar *tensor.Arena) {
	m := ar.Mark()
	v := t.head(x, ar)
	n := v.Shape[0]
	bc := tensor.PanelBlockCols()
	scratch := ar.Floats(tensor.PanelScratch())
	blk := ar.Floats(n * bc)
	for c0 := 0; c0 < t.d; c0 += bc {
		w := tensor.MatMulPanelsBlock(blk, v, t.panels, c0, scratch)
		t.addBias(blk, n, w, c0)
		for i := 0; i < n; i++ {
			row := blk[i*w : (i+1)*w]
			out := dst[i*t.d+c0 : i*t.d+c0+w]
			for j, vv := range row {
				if vv < 0 {
					out[j] = -1
				} else {
					out[j] = 1
				}
			}
		}
	}
	ar.Release(m)
}

// signBlock quantizes a block in place with the pipeline's sign convention
// (sign(0) = +1, matching tensor.SignInto).
func signBlock(b []float32) {
	for i, v := range b {
		if v < 0 {
			b[i] = -1
		} else {
			b[i] = 1
		}
	}
}
