package engine

import (
	"errors"
	"fmt"
	"sort"

	"nshd/internal/core"
	"nshd/internal/hdlearn"
	"nshd/internal/tensor"
)

// Post-training compression (the perf analogue of DPQ-HD's pipeline): an
// already-compiled engine is squeezed below its float32 footprint in three
// orthogonal moves, each validated against a calibration set —
//
//  1. Dimension pruning. Class scores are sums of independent per-dimension
//     contributions, so dimensions whose contribution to the top-1/top-2
//     margin is small can be dropped wholesale. Pruning happens in units of
//     the 256-column GEMM panel block: the kept set stays a block grid, so
//     every surviving kernel (panel GEMM, sign packing, popcount scoring)
//     runs unchanged on the smaller D'.
//  2. Low-rank manifold fold. The manifold FC is factorized by truncated SVD
//     (manifold.Factorize) when the energy/cost gate says the pair is
//     smaller than the dense FC; the fused tail then folds the small up
//     factor into the projection and serves pool → V → one [rank, D'] GEMM.
//  3. Sub-byte scoring. The folded class matrix is re-quantized per row to
//     int4 or ternary (hdlearn.SubByteScorer) and scored with exact integer
//     kernels against the sign-packed queries the tail already produces.
//
// Compress searches the (keep-ratio × precision) grid for the smallest
// engine within target.MaxAccuracyDrop on a held-out calibration split; the
// whole pass is a deterministic pure function of (engine, calibration set),
// so compressed engines are bit-reproducible.

// ScorerPrecision selects the classifier precision of a compressed engine.
type ScorerPrecision int

const (
	// PrecisionAuto lets Compress search: ternary, then int4, then keep.
	PrecisionAuto ScorerPrecision = iota
	// PrecisionKeep keeps the source kernel (packed or float scorer).
	PrecisionKeep
	// PrecisionInt4 quantizes the folded class rows to int4 nibbles.
	PrecisionInt4
	// PrecisionTernary quantizes the folded class rows to {−1, 0, +1}.
	PrecisionTernary
)

// String names the precision for reports and tooling.
func (p ScorerPrecision) String() string {
	switch p {
	case PrecisionKeep:
		return "keep"
	case PrecisionInt4:
		return "int4"
	case PrecisionTernary:
		return "ternary"
	}
	return "auto"
}

// ErrCompressedTiling marks compile requests that would break the exact
// [0, FullD) tiling the sharded reduce depends on: a compressed engine's
// pruned dimension set renumbers columns, so its partial scores cannot tile
// with other shards' — CompileShard rejects compression plans, and Compress
// rejects shard engines.
var ErrCompressedTiling = errors.New("compressed engine breaks the exact [0, D) shard tiling")

// CompressTarget configures Engine.Compress.
type CompressTarget struct {
	// Calib is the calibration batch ([N, C, H, W], N ≥ 2, in-distribution).
	// The first half drives dimension saliency; the second half is the
	// holdout that gates the accuracy search.
	Calib *tensor.Tensor
	// Labels, when non-nil (length N), scores the holdout by true accuracy.
	// When nil the holdout is scored by agreement with the source engine.
	Labels []int
	// MaxAccuracyDrop is the largest holdout accuracy loss (percentage
	// points) a searched configuration may cost. 0 means the default 1.0.
	MaxAccuracyDrop float64
	// KeepRatio, when > 0, fixes the kept fraction of dimension blocks
	// instead of searching it (the benchmark's tradeoff-curve hook).
	KeepRatio float64
	// Precision, when not PrecisionAuto, fixes the scorer precision instead
	// of searching it. With both KeepRatio and Precision fixed the chosen
	// configuration is built unconditionally and its measured drop reported.
	Precision ScorerPrecision
	// NoLowRank disables the truncated-SVD manifold factorization.
	NoLowRank bool
}

// CompressReport describes what Compress chose and what it measured.
type CompressReport struct {
	// OrigD and D are the hypervector dimensions before and after pruning.
	OrigD, D int
	// KeepBlocks lists the surviving 256-column block indices (ascending).
	KeepBlocks []int
	// KeepRatio is len(KeepBlocks) over the source block count.
	KeepRatio float64
	// Precision is the chosen scorer precision ("keep", "int4", "ternary").
	Precision string
	// Rank is the manifold factorization rank (0 = dense FC kept).
	Rank int
	// BytesBefore/After are engine ModelBytes; Stages itemize them.
	BytesBefore, BytesAfter   int64
	StagesBefore, StagesAfter []StageBytes
	// CalibBefore/After are holdout accuracy (or source agreement) percent;
	// CalibDrop = CalibBefore − CalibAfter.
	CalibBefore, CalibAfter, CalibDrop float64
	// Holdout is the holdout sample count; Candidates counts the engine
	// configurations compiled and evaluated by the search.
	Holdout, Candidates int
}

// CompressPlan is the compiled form of one compression decision: which
// 256-column dimension blocks survive, the scorer precision, and the manifold
// factorization rank. Plans are produced by Engine.Compress (or built
// directly with NewCompressPlan) and applied at compile time through
// WithCompression.
type CompressPlan struct {
	origD int
	keep  []int // ascending kept block indices on the 256-column grid
	prec  ScorerPrecision
	rank  int
}

// NewCompressPlan builds a plan for a model of dimension origD keeping the
// given 256-column block indices (ascending), scoring at prec, with manifold
// factorization rank rank (0 = keep the dense FC). Validation happens at
// compile time.
func NewCompressPlan(origD int, keepBlocks []int, prec ScorerPrecision, rank int) *CompressPlan {
	return &CompressPlan{
		origD: origD,
		keep:  append([]int(nil), keepBlocks...),
		prec:  prec,
		rank:  rank,
	}
}

// KeepBlocks returns the plan's kept block indices (a copy).
func (pl *CompressPlan) KeepBlocks() []int { return append([]int(nil), pl.keep...) }

// Precision returns the plan's scorer precision.
func (pl *CompressPlan) Precision() ScorerPrecision { return pl.prec }

// Rank returns the plan's manifold factorization rank (0 = dense).
func (pl *CompressPlan) Rank() int { return pl.rank }

// blockCount is the source model's 256-column block count.
func (pl *CompressPlan) blockCount() int {
	bc := tensor.PanelBlockCols()
	return (pl.origD + bc - 1) / bc
}

// isIdentity reports whether the plan changes nothing: all blocks kept, the
// source kernel, the dense FC. Compile drops identity plans so the resulting
// engine is the source engine, bit for bit.
func (pl *CompressPlan) isIdentity() bool {
	return pl.prec == PrecisionKeep && pl.rank == 0 && len(pl.keep) == pl.blockCount()
}

// mixVersion folds the plan into the engine's model-version hash: two engines
// compiled from one trained model under different plans must never advertise
// the same version to the serving tier.
func (pl *CompressPlan) mixVersion(h uint64) uint64 {
	h = fnvMix(h, 3) // domain tag: compressed
	h = fnvMix(h, uint64(pl.origD))
	h = fnvMix(h, uint64(pl.prec))
	h = fnvMix(h, uint64(pl.rank))
	h = fnvMix(h, uint64(len(pl.keep)))
	for _, b := range pl.keep {
		h = fnvMix(h, uint64(b))
	}
	return h
}

// apply derives the compressed pipeline: the projection and class matrix keep
// only the plan's column blocks (hdc.Projection.GatherBlocks keeps seeded
// projections seed-defined), and the manifold is factorized at the plan's
// rank. The source pipeline is untouched; derived objects share unmodified
// weights (extractor, pool) read-only.
func (pl *CompressPlan) apply(p *core.Pipeline) (*core.Pipeline, error) {
	bc := tensor.PanelBlockCols()
	if pl.origD != p.Cfg.D {
		return nil, fmt.Errorf("engine: compression plan for D=%d applied to D=%d", pl.origD, p.Cfg.D)
	}
	nb := pl.blockCount()
	if len(pl.keep) == 0 {
		return nil, fmt.Errorf("engine: compression plan keeps no dimension blocks")
	}
	for i, b := range pl.keep {
		if b < 0 || b >= nb {
			return nil, fmt.Errorf("engine: compression plan block %d out of [0, %d)", b, nb)
		}
		if i > 0 && b <= pl.keep[i-1] {
			return nil, fmt.Errorf("engine: compression plan blocks not ascending at %d", b)
		}
	}
	switch pl.prec {
	case PrecisionKeep, PrecisionInt4, PrecisionTernary:
	default:
		return nil, fmt.Errorf("engine: compression plan precision %v not resolved (run Compress, or pick one)", pl.prec)
	}

	proj, hd, d := p.Proj, p.HD, p.Cfg.D
	if len(pl.keep) != nb {
		proj = p.Proj.GatherBlocks(pl.keep, bc)
		m := tensor.GatherColBlocks(p.HD.M, pl.keep, bc)
		hd = &hdlearn.Model{K: p.HD.K, D: m.Shape[1], M: m}
		d = m.Shape[1]
	}
	man := p.Manifold
	if pl.rank > 0 {
		if man == nil {
			return nil, fmt.Errorf("engine: compression plan rank %d on a manifold-free pipeline", pl.rank)
		}
		var err error
		man, err = man.Factorize(pl.rank)
		if err != nil {
			return nil, fmt.Errorf("engine: compression plan: %w", err)
		}
	}
	cfg := p.Cfg
	cfg.D = d
	return &core.Pipeline{
		Cfg:       cfg,
		Zoo:       p.Zoo,
		Extractor: p.Extractor,
		FeatShape: p.FeatShape,
		Manifold:  man,
		LSH:       p.LSH,
		Proj:      proj,
		HD:        hd,
	}, nil
}

// WithCompression compiles the pipeline under a compression plan. Identity
// plans compile to the exact source engine; any other plan requires the full
// [0, D) range (CompileShard returns ErrCompressedTiling — a pruned dimension
// set cannot tile with other shards' columns).
func WithCompression(plan *CompressPlan) Option {
	return optionFunc(func(o *compileOptions) { o.plan = plan })
}

// Plan returns the compression plan this engine was compiled under, nil for
// an uncompressed engine (including identity plans, which compile to the
// source engine).
func (e *Engine) Plan() *CompressPlan { return e.opts.plan }

// compressCandidate is one evaluated point of the search grid.
type compressCandidate struct {
	eng    *Engine
	plan   *CompressPlan
	blocks int
	metric float64 // holdout accuracy (or source agreement), percent
	drop   float64
	bytes  int64
}

// Compress squeezes a compiled full-range engine per target, returning the
// compressed engine and a report of what was chosen and measured. The source
// engine is untouched and stays servable. The pass is deterministic: the same
// engine and calibration set always produce the same compressed engine
// (identical ModelVersion and predictions).
func (e *Engine) Compress(target CompressTarget) (*Engine, CompressReport, error) {
	var rep CompressReport
	if e.src == nil {
		return nil, rep, fmt.Errorf("engine: Compress on an engine with no source pipeline")
	}
	if e.lo != 0 || e.d != e.fullD {
		return nil, rep, fmt.Errorf("engine: Compress on dimension shard [%d, %d): %w", e.lo, e.lo+e.d, ErrCompressedTiling)
	}
	if e.opts.plan != nil {
		return nil, rep, fmt.Errorf("engine: Compress on an already-compressed engine")
	}
	if target.Calib == nil || target.Calib.Rank() != 4 || target.Calib.Shape[0] < 2 {
		return nil, rep, fmt.Errorf("engine: Compress needs a calibration batch of at least 2 images")
	}
	if err := e.checkImages(target.Calib); err != nil {
		return nil, rep, err
	}
	n := target.Calib.Shape[0]
	if target.Labels != nil && len(target.Labels) != n {
		return nil, rep, fmt.Errorf("engine: Compress labels length %d, want %d", len(target.Labels), n)
	}
	maxDrop := target.MaxAccuracyDrop
	if maxDrop <= 0 {
		maxDrop = 1.0
	}
	k := e.src.HD.K
	if k < 2 {
		return nil, rep, fmt.Errorf("engine: Compress needs at least 2 classes, have %d", k)
	}

	// Split: first half drives saliency, second half is the search holdout.
	nSal := n / 2
	sal := viewImages(target.Calib, 0, nSal)
	hold := viewImages(target.Calib, nSal, n)
	nHold := n - nSal

	srcPreds, err := e.Predict(hold)
	if err != nil {
		return nil, rep, err
	}
	var holdLabels []int
	if target.Labels != nil {
		holdLabels = target.Labels[nSal:]
	}
	srcMetric := 100.0
	if holdLabels != nil {
		srcMetric = matchPct(srcPreds, holdLabels)
	}

	order, err := e.saliencyOrder(sal)
	if err != nil {
		return nil, rep, err
	}
	bc := tensor.PanelBlockCols()
	nb := (e.fullD + bc - 1) / bc

	rank := 0
	if !target.NoLowRank && e.precision != Int8 && e.src.Manifold != nil && e.src.Manifold.Down() == nil {
		rank = e.src.Manifold.AutoRank()
	}

	type evalKey struct {
		blocks int
		prec   ScorerPrecision
		rank   int
	}
	cache := map[evalKey]*compressCandidate{}
	eval := func(blocks int, prec ScorerPrecision, rank int) (*compressCandidate, error) {
		key := evalKey{blocks, prec, rank}
		if c, ok := cache[key]; ok {
			return c, nil
		}
		keep := append([]int(nil), order[:blocks]...)
		sort.Ints(keep)
		plan := &CompressPlan{origD: e.fullD, keep: keep, prec: prec, rank: rank}
		o := e.opts
		o.plan = plan
		eng, err := compileResolved(e.src, 0, e.fullD, o)
		if err != nil {
			return nil, err
		}
		preds, err := eng.Predict(hold)
		if err != nil {
			return nil, err
		}
		metric := matchPct(preds, srcPreds)
		if holdLabels != nil {
			metric = matchPct(preds, holdLabels)
		}
		c := &compressCandidate{
			eng:    eng,
			plan:   plan,
			blocks: blocks,
			metric: metric,
			drop:   srcMetric - metric,
			bytes:  eng.ModelBytes(),
		}
		cache[key] = c
		rep.Candidates++
		return c, nil
	}
	feasible := func(c *compressCandidate) bool { return c.drop <= maxDrop+1e-9 }

	precs := []ScorerPrecision{PrecisionTernary, PrecisionInt4, PrecisionKeep}
	if target.Precision != PrecisionAuto {
		precs = []ScorerPrecision{target.Precision}
	}
	fixedBlocks := 0
	if target.KeepRatio > 0 {
		if target.KeepRatio > 1 {
			return nil, rep, fmt.Errorf("engine: Compress KeepRatio %v > 1", target.KeepRatio)
		}
		fixedBlocks = int(target.KeepRatio*float64(nb) + 0.5)
		if fixedBlocks < 1 {
			fixedBlocks = 1
		}
		if fixedBlocks > nb {
			fixedBlocks = nb
		}
	}
	pinned := fixedBlocks > 0 && target.Precision != PrecisionAuto

	var best *compressCandidate
	// Pass 1 uses the factorized manifold; if nothing feasible survives the
	// rank truncation, pass 2 retries with the dense FC.
	for _, r := range rankPasses(rank) {
		for _, prec := range precs {
			var c *compressCandidate
			switch {
			case pinned:
				c, err = eval(fixedBlocks, prec, r)
			case fixedBlocks > 0:
				c, err = eval(fixedBlocks, prec, r)
				if err == nil && !feasible(c) {
					c = nil
				}
			default:
				c, err = searchBlocks(eval, feasible, nb, prec, r)
			}
			if err != nil {
				return nil, rep, err
			}
			if c != nil && (best == nil || c.bytes < best.bytes) {
				best = c
			}
		}
		if best != nil {
			break
		}
	}
	if best == nil {
		return nil, rep, fmt.Errorf("engine: Compress found no configuration within %.2f points on the holdout", maxDrop)
	}

	rep.OrigD = e.fullD
	rep.D = best.eng.d
	rep.KeepBlocks = append([]int(nil), best.plan.keep...)
	rep.KeepRatio = float64(best.blocks) / float64(nb)
	rep.Precision = best.plan.prec.String()
	rep.Rank = best.plan.rank
	rep.BytesBefore = e.ModelBytes()
	rep.BytesAfter = best.bytes
	rep.StagesBefore = e.BytesBreakdown()
	rep.StagesAfter = best.eng.BytesBreakdown()
	rep.CalibBefore = srcMetric
	rep.CalibAfter = best.metric
	rep.CalibDrop = best.drop
	rep.Holdout = nHold
	return best.eng, rep, nil
}

// rankPasses orders the factorization attempts: the truncated rank first,
// then the dense fallback (just the one pass when rank is already 0).
func rankPasses(rank int) []int {
	if rank > 0 {
		return []int{rank, 0}
	}
	return []int{0}
}

// searchBlocks finds the smallest feasible kept-block count for one precision
// by binary search (accuracy is monotone in kept saliency mass to first
// order). Returns nil without error when even the full-width engine at this
// precision misses the accuracy budget.
func searchBlocks(
	eval func(blocks int, prec ScorerPrecision, rank int) (*compressCandidate, error),
	feasible func(*compressCandidate) bool,
	nb int, prec ScorerPrecision, rank int,
) (*compressCandidate, error) {
	full, err := eval(nb, prec, rank)
	if err != nil {
		return nil, err
	}
	if !feasible(full) {
		return nil, nil
	}
	lo, hi := 1, nb
	for lo < hi {
		mid := (lo + hi) / 2
		c, err := eval(mid, prec, rank)
		if err != nil {
			return nil, err
		}
		if feasible(c) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return eval(lo, prec, rank)
}

// saliencyOrder ranks the 256-column dimension blocks by their summed
// top-1/top-2 margin contribution on the saliency split, most salient first
// (ties broken by ascending block index, keeping the pass deterministic).
// Per sample, dimension d contributes h_d·(M̂_a,d − M̂_b,d) where a, b are the
// two highest-scoring classes — how much d pushes the winning margin.
func (e *Engine) saliencyOrder(images *tensor.Tensor) ([]int, error) {
	hvs, err := e.QueryHVs(images)
	if err != nil {
		return nil, err
	}
	folded := hdlearn.NewFoldedScorer(e.src.HD)
	d, k := e.fullD, folded.K
	sal := make([]float64, d)
	scores := make([]float64, k)
	for i := 0; i < hvs.Shape[0]; i++ {
		h := hvs.Row(i)
		for c := 0; c < k; c++ {
			var s float64
			row := folded.Row(c)
			for j := range h {
				s += float64(h[j]) * float64(row[j])
			}
			scores[c] = s
		}
		a, b := 0, 1
		if scores[b] > scores[a] {
			a, b = b, a
		}
		for c := 2; c < k; c++ {
			switch {
			case scores[c] > scores[a]:
				a, b = c, a
			case scores[c] > scores[b]:
				b = c
			}
		}
		ra, rb := folded.Row(a), folded.Row(b)
		for j := range h {
			sal[j] += float64(h[j]) * (float64(ra[j]) - float64(rb[j]))
		}
	}

	bc := tensor.PanelBlockCols()
	nb := (d + bc - 1) / bc
	blockSal := make([]float64, nb)
	for j, v := range sal {
		blockSal[j/bc] += v
	}
	order := make([]int, nb)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		if blockSal[order[x]] != blockSal[order[y]] {
			return blockSal[order[x]] > blockSal[order[y]]
		}
		return order[x] < order[y]
	})
	return order, nil
}

// viewImages returns rows [lo, hi) of an image batch as a view (no copy).
func viewImages(images *tensor.Tensor, lo, hi int) *tensor.Tensor {
	per := images.Len() / images.Shape[0]
	return tensor.FromSlice(images.Data[lo*per:hi*per], hi-lo, images.Shape[1], images.Shape[2], images.Shape[3])
}

// matchPct is the percentage of positions where a and b agree.
func matchPct(a, b []int) float64 {
	if len(a) == 0 {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return 100 * float64(match) / float64(len(a))
}
