package engine_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// buildBigPipeline is buildPipeline at a dimension wide enough for block
// pruning to be meaningful: D = 1000 spans four 256-column panel blocks with
// a ragged 232-column tail, so every pruning test also exercises the
// tail-word masking of the packed and sub-byte kernels.
func buildBigPipeline(t *testing.T, mut func(*core.Config)) (*core.Pipeline, *dataset.Dataset) {
	t.Helper()
	cfgD := dataset.SynthConfig{Classes: 5, Train: 60, Test: 44, Size: 16, Noise: 0.2, Seed: 63}
	train, test := dataset.SynthCIFAR(cfgD)
	cfg := core.DefaultConfig(1, 5)
	cfg.D = 1000
	cfg.FHat = 20
	cfg.Seed = 9
	cfg.BatchSize = 8
	mut(&cfg)
	p, err := core.New(tinyZoo(64, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	return p, test
}

func allBlocks(d int) []int {
	bc := tensor.PanelBlockCols()
	nb := (d + bc - 1) / bc
	keep := make([]int, nb)
	for i := range keep {
		keep[i] = i
	}
	return keep
}

// TestCompressIdentityBitExact: a keep-everything plan at the source
// precision must compile to the exact source engine — identical predictions
// AND query hypervectors — across all four tail modes and both kernels.
func TestCompressIdentityBitExact(t *testing.T) {
	modes := []struct {
		name string
		opts []engine.Option
	}{
		{"fused", nil},
		{"staged", []engine.Option{engine.WithStagedTail()}},
		{"remat", []engine.Option{engine.WithRemat()}},
		{"folded", []engine.Option{engine.WithFoldedTail()}},
	}
	for _, kernel := range []string{"float", "packed"} {
		p, test := buildBigPipeline(t, func(c *core.Config) { c.PackedInference = kernel == "packed" })
		plan := engine.NewCompressPlan(1000, allBlocks(1000), engine.PrecisionKeep, 0)
		for _, m := range modes {
			t.Run(m.name+"-"+kernel, func(t *testing.T) {
				src, err := engine.Compile(p, m.opts...)
				if err != nil {
					t.Fatal(err)
				}
				cmp, err := engine.Compile(p, append(append([]engine.Option(nil), m.opts...), engine.WithCompression(plan))...)
				if err != nil {
					t.Fatal(err)
				}
				if cmp.Plan() != nil {
					t.Fatal("identity plan should be dropped at compile")
				}
				if cmp.ModelVersion() != src.ModelVersion() {
					t.Fatal("identity compression changed the model version")
				}
				want, err := src.Predict(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cmp.Predict(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("sample %d: identity-compressed pred %d, source %d", i, got[i], want[i])
					}
				}
				wantHV, err := src.QueryHVs(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				gotHV, err := cmp.QueryHVs(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantHV.Data {
					if gotHV.Data[i] != wantHV.Data[i] {
						t.Fatal("identity-compressed query hypervectors differ from source")
					}
				}
			})
		}
	}
}

// TestCompressedPredictConsistent: a pruned sub-byte engine must (a) report
// the pruned dimension, (b) mostly agree with the source ranking, (c) have
// its Predict path bit-identical to PartialInto + MergeScores — the scaled
// argmax is one shared code path.
func TestCompressedPredictConsistent(t *testing.T) {
	for _, prec := range []engine.ScorerPrecision{engine.PrecisionInt4, engine.PrecisionTernary, engine.PrecisionKeep} {
		t.Run(prec.String(), func(t *testing.T) {
			p, test := buildBigPipeline(t, func(c *core.Config) {})
			src, err := engine.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			plan := engine.NewCompressPlan(1000, []int{0, 1, 3}, prec, 0)
			e, err := engine.Compile(p, engine.WithCompression(plan))
			if err != nil {
				t.Fatal(err)
			}
			if e.Plan() == nil {
				t.Fatal("compressed engine lost its plan")
			}
			if want := 256 + 256 + 232; e.Dim() != want {
				t.Fatalf("pruned Dim %d, want %d", e.Dim(), want)
			}
			if e.FullDim() != e.Dim() {
				t.Fatalf("compressed FullDim %d, want %d (compressed engines are unsharded)", e.FullDim(), e.Dim())
			}
			if e.ModelVersion() == src.ModelVersion() {
				t.Fatal("compressed engine advertises the source model version")
			}
			if e.ModelBytes() >= src.ModelBytes() {
				t.Fatalf("compressed ModelBytes %d not below source %d", e.ModelBytes(), src.ModelBytes())
			}
			got, err := e.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			want, err := src.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			agree := 0
			for i := range want {
				if got[i] == want[i] {
					agree++
				}
			}
			if agree*100 < len(want)*75 {
				t.Fatalf("compressed engine agrees with source on only %d/%d samples", agree, len(want))
			}

			// Partial path: one full-range partial must merge to the same preds.
			ps := e.NewPartials(0)
			if err := e.PartialInto(test.Images, ps); err != nil {
				t.Fatal(err)
			}
			if prec != engine.PrecisionKeep && ps.Scales == nil {
				t.Fatal("sub-byte partials carry no scales")
			}
			n, k := len(got), e.Classes()
			merged := make([]int, n)
			scores := make([]float64, n*k)
			if err := engine.MergeScores(merged, scores, []*engine.PartialScores{ps}); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if merged[i] != got[i] {
					t.Fatalf("sample %d: merged pred %d, engine pred %d", i, merged[i], got[i])
				}
			}
			if prec != engine.PrecisionKeep {
				bad := *ps
				bad.Scales = ps.Scales[:k-1]
				if err := engine.MergeScores(merged, scores, []*engine.PartialScores{&bad}); err == nil {
					t.Fatal("expected scales-length error from MergeScores")
				}
			}
		})
	}
}

// TestCompressedTilingRejections: compression and dimension sharding are
// mutually exclusive, with a typed error in both directions.
func TestCompressedTilingRejections(t *testing.T) {
	p, test := buildBigPipeline(t, func(c *core.Config) {})
	pruned := engine.NewCompressPlan(1000, []int{0, 2}, engine.PrecisionTernary, 0)

	if _, err := engine.CompileShard(p, 0, 2, engine.WithCompression(pruned)); !errors.Is(err, engine.ErrCompressedTiling) {
		t.Fatalf("CompileShard with a pruning plan: err=%v, want ErrCompressedTiling", err)
	}
	// An identity plan changes nothing, so sharding it is fine.
	identity := engine.NewCompressPlan(1000, allBlocks(1000), engine.PrecisionKeep, 0)
	if _, err := engine.CompileShard(p, 0, 2, engine.WithCompression(identity)); err != nil {
		t.Fatalf("CompileShard with an identity plan: %v", err)
	}

	shard, err := engine.CompileShard(p, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := shard.Compress(engine.CompressTarget{Calib: test.Images}); !errors.Is(err, engine.ErrCompressedTiling) {
		t.Fatalf("Compress on a shard: err=%v, want ErrCompressedTiling", err)
	}

	e, err := engine.Compile(p, engine.WithCompression(pruned))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Compress(engine.CompressTarget{Calib: test.Images}); err == nil {
		t.Fatal("expected error compressing an already-compressed engine")
	}
}

// TestCompressSearch: the default accuracy-target search returns a
// configuration within budget, no larger than the source, with a coherent
// report — and the whole pass is deterministic (same calibration set → same
// engine version, same predictions).
func TestCompressSearch(t *testing.T) {
	p, test := buildBigPipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	target := engine.CompressTarget{Calib: test.Images, Labels: test.Labels, MaxAccuracyDrop: 10}
	c1, rep, err := e.Compress(target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CalibDrop > 10+1e-9 {
		t.Fatalf("search exceeded the accuracy budget: drop %.2f", rep.CalibDrop)
	}
	if rep.BytesAfter > rep.BytesBefore {
		t.Fatalf("compression grew the engine: %d -> %d", rep.BytesBefore, rep.BytesAfter)
	}
	if rep.BytesAfter != c1.ModelBytes() || rep.BytesBefore != e.ModelBytes() {
		t.Fatal("report bytes disagree with the engines")
	}
	if rep.OrigD != 1000 || rep.D != c1.Dim() {
		t.Fatalf("report dims %d/%d, want 1000/%d", rep.OrigD, rep.D, c1.Dim())
	}
	if rep.KeepRatio <= 0 || rep.KeepRatio > 1 || len(rep.KeepBlocks) == 0 {
		t.Fatalf("report keep %v ratio %v", rep.KeepBlocks, rep.KeepRatio)
	}
	if rep.Candidates < 1 || rep.Holdout != 22 {
		t.Fatalf("report candidates=%d holdout=%d", rep.Candidates, rep.Holdout)
	}
	p1, err := c1.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}

	c2, rep2, err := e.Compress(target)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ModelVersion() != c1.ModelVersion() || rep2.Precision != rep.Precision || rep2.Rank != rep.Rank {
		t.Fatal("Compress is not deterministic")
	}
	p2, err := c2.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("two Compress runs predict differently")
		}
	}

	// Fixed configuration: both axes pinned builds exactly that point.
	c3, rep3, err := e.Compress(engine.CompressTarget{
		Calib: test.Images, KeepRatio: 0.5, Precision: engine.PrecisionTernary,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.KeepBlocks) != 2 || rep3.Precision != "ternary" {
		t.Fatalf("pinned config got keep=%v precision=%s", rep3.KeepBlocks, rep3.Precision)
	}
	found := false
	for _, sb := range c3.BytesBreakdown() {
		if strings.Contains(sb.Name, "classify-ternary") {
			found = true
		}
	}
	if !found {
		t.Fatalf("pinned ternary engine stages %v lack a ternary classifier", c3.Stages())
	}
}

// TestCompressLowRankFold: a rank-bearing plan factorizes the manifold and
// folds the small up factor into the projection — the fused engine must agree
// with the staged build of the same plan (the fold's argmax contract) and
// come out smaller than the dense-FC plan.
func TestCompressLowRankFold(t *testing.T) {
	p, test := buildBigPipeline(t, func(c *core.Config) {})
	keep := allBlocks(1000)
	ranked := engine.NewCompressPlan(1000, keep, engine.PrecisionKeep, 8)
	dense := engine.NewCompressPlan(1000, []int{0, 1, 2}, engine.PrecisionKeep, 0)

	fused, err := engine.Compile(p, engine.WithCompression(ranked))
	if err != nil {
		t.Fatal(err)
	}
	foldName := false
	for _, name := range fused.Stages() {
		if strings.Contains(name, "manifold*project") {
			foldName = true
		}
	}
	if !foldName {
		t.Fatalf("rank-8 plan did not fold the factorized manifold: stages %v", fused.Stages())
	}
	staged, err := engine.Compile(p, engine.WithStagedTail(), engine.WithCompression(ranked))
	if err != nil {
		t.Fatal(err)
	}
	a, err := fused.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	b, err := staged.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: folded factorized pred %d, staged %d", i, a[i], b[i])
		}
	}

	densed, err := engine.Compile(p, engine.WithCompression(dense))
	if err != nil {
		t.Fatal(err)
	}
	if fused.ModelBytes() >= densed.ModelBytes() {
		t.Fatalf("rank-8 full-width engine (%d B) not smaller than dense 3/4-width (%d B)",
			fused.ModelBytes(), densed.ModelBytes())
	}
}

// TestEngineZeroAllocCompressed rides the `make alloc` gate's TestEngineZeroAlloc
// prefix: the compressed predict path must stay heap-free in steady state for
// both sub-byte precisions.
func TestEngineZeroAllocCompressed(t *testing.T) {
	for _, prec := range []engine.ScorerPrecision{engine.PrecisionInt4, engine.PrecisionTernary} {
		t.Run(prec.String(), func(t *testing.T) {
			p, test := buildBigPipeline(t, func(c *core.Config) {})
			plan := engine.NewCompressPlan(1000, []int{0, 1}, prec, 0)
			e, err := engine.Compile(p, engine.WithCompression(plan))
			if err != nil {
				t.Fatal(err)
			}
			n := e.ChunkSize()
			if n > test.Len() {
				n = test.Len()
			}
			sample := test.Images.Len() / test.Len()
			imgs := tensor.FromSlice(test.Images.Data[:n*sample], n, 3, 16, 16)
			preds := make([]int, n)
			if err := e.PredictInto(imgs, preds); err != nil {
				t.Fatal(err)
			}
			if a := testing.AllocsPerRun(100, func() {
				if err := e.PredictInto(imgs, preds); err != nil {
					t.Fatal(err)
				}
			}); a != 0 {
				t.Fatalf("compressed PredictInto allocated %.1f times per run", a)
			}
		})
	}
}

// TestCompressedConcurrentPredict hammers a compressed engine from many
// goroutines (run under -race by `make race`): deterministic results while
// arenas recycle.
func TestCompressedConcurrentPredict(t *testing.T) {
	p, test := buildBigPipeline(t, func(c *core.Config) {})
	plan := engine.NewCompressPlan(1000, []int{0, 1, 3}, engine.PrecisionTernary, 0)
	e, err := engine.Compile(p, engine.WithCompression(plan))
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	const G = 8
	var wg sync.WaitGroup
	errs := make([]error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				got, err := e.Predict(test.Images)
				if err != nil {
					errs[g] = err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errs[g] = errors.New("concurrent compressed predictions diverged")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
