// Package engine is the serving side of NSHD: a frozen inference Engine
// compiled from a trained core.Pipeline.
//
// The training object (core.Pipeline) re-allocates every intermediate tensor
// per batch, materializes the full feature tensor for all N samples before
// symbolizing, and its layers cache state, so it can never be shared across
// goroutines. The Engine is the opposite trade: Compile snapshots the
// classifier, sizes per-worker scratch arenas by measuring one warmup batch,
// and from then on the steady-state forward pass — extractor → manifold/LSH →
// projection → classifier — performs zero heap allocations and is safe for
// concurrent use. Batches stream through in chunks so feature extraction and
// symbolization pipeline across the worker pool instead of ever holding the
// all-N feature tensor.
//
// This mirrors the deployment argument of the paper's Sec. VI (and DPQ-HD):
// HD's efficiency win comes from a dedicated inference path distinct from the
// training loop.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nshd/internal/core"
	"nshd/internal/hdc"
	"nshd/internal/hdlearn"
	"nshd/internal/manifold"
	"nshd/internal/nn"
	"nshd/internal/parallel"
	"nshd/internal/tensor"
)

// arenaBudgetBytes caps one worker arena's slab memory. When a warmup batch
// measures larger, the chunk size shrinks proportionally — trading a little
// GEMM efficiency for bounded residency.
const arenaBudgetBytes = 256 << 20

// Stage is one step of the compiled symbolization chain. Run consumes an
// arena-owned activation (it may overwrite it in place) and returns the next
// activation, allocated from the same arena. Implementations are state-free
// and strictly serial; the engine parallelizes across chunks, never inside a
// stage.
type Stage interface {
	Name() string
	Run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor
}

// Engine is a frozen, immutable serving plan. Safe for concurrent use: the
// classifier holds a snapshot of the class hypervectors, stage weights are
// shared read-only with the pipeline, and all mutable scratch lives in
// per-worker arenas handed out through a freelist.
//
// The Engine reflects the pipeline at Compile time. Training afterwards
// changes weights the stages share (manifold) and leaves the classifier
// snapshot behind — recompile after training. core.Pipeline does this
// automatically, keyed on the HD model's version counter.
type Engine struct {
	inShape   [3]int // per-sample image shape [C, H, W]
	sampleLen int    // C·H·W
	d         int    // hypervector dimensions THIS engine scores (slice width)
	lo        int    // first hypervector column of the engine's D-slice
	fullD     int    // full model dimension (== d for an unsharded engine)
	version   uint64 // model content hash (see ModelVersion)
	chunk     int    // max samples per worker chunk
	stages    []Stage // feature stages; the tail finishes the chain
	tail      tailRunner
	bytes     []StageBytes // resident serving weights, per Stages() entry

	// Arena freelist: proto is the frozen warmup arena; clones are created
	// lazily (first use per worker) up to maxArenas, then recycled through
	// the channel. Steady state never touches the heap.
	proto     *tensor.Arena
	arenas    chan *tensor.Arena
	created   atomic.Int32
	maxArenas int32

	// Precision mode and int8 coverage accounting (see int8.go).
	precision   Precision
	int8Covered int
	int8Total   int
	int8Names   []string

	// src is the SOURCE pipeline the engine was compiled from (before any
	// compression plan was applied) and opts the resolved compile options —
	// what Engine.Compress needs to derive and compile candidate plans.
	src  *core.Pipeline
	opts compileOptions
}

type extractStage struct{ ex *nn.Sequential }

func (s extractStage) Name() string { return "extract" }
func (s extractStage) Run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	return s.ex.ForwardInfer(x, ar)
}

type manifoldStage struct{ ml *manifold.Learner }

func (s manifoldStage) Name() string { return "manifold" }
func (s manifoldStage) Run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	return s.ml.ForwardInfer(x, ar)
}

// flattenStage reshapes [N, C, H, W] features to [N, F] for the LSH and
// direct-projection paths (a view, no copy).
type flattenStage struct{}

func (flattenStage) Name() string { return "flatten" }
func (flattenStage) Run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	n := x.Shape[0]
	return ar.Wrap(x.Data, n, x.Len()/n)
}

// projectStage runs a binary random projection (the LSH reduction or Φ_P),
// keeping only the signed output. The operand is frozen at Compile, so it is
// prepacked once into GEMM panel form: per-call products skip the panel
// packing pass entirely (at batch 1 that pass dominates the projection GEMM)
// and need no panel scratch.
type projectStage struct {
	name   string
	pr     *hdc.Projection
	panels *tensor.ProjPanels
}

func newProjectStage(name string, pr *hdc.Projection) projectStage {
	return projectStage{name, pr, pr.PrepackedPanels()}
}

func (s projectStage) Name() string { return s.name }
func (s projectStage) Run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	out := ar.Alloc(x.Shape[0], s.pr.D)
	s.pr.EncodeBatchPanelsInto(x, out, out, s.panels)
	return out
}

// Compile freezes a trained pipeline into an Engine. It validates that every
// extractor layer has an inference path, snapshots the classifier (packed or
// float, per cfg.PackedInference), then runs one warmup chunk of zeros
// through the stage chain on a measuring arena to size the per-worker slabs.
// Predictions agree with the pipeline's direct path per-sample, bit-for-bit:
// every stage reuses the training kernels' exact accumulation order.
//
// Options select the numeric mode and the tail strategy: Compile(p,
// engine.Int8, engine.WithCalibration(imgs)) rebuilds the extractor/manifold
// stages in quantized int8 arithmetic (see Precision); with no options the
// engine is the exact Float32 build with the fused linear tail (see
// fused.go). WithStagedTail restores the legacy separate project/classify
// stages; WithRemat and WithFoldedTail select the tail's rematerialized and
// algebraically folded variants.
// Compile is the single-shard special case of CompileShard: the engine
// scores the full dimension range [0, D).
func Compile(p *core.Pipeline, opts ...Option) (*Engine, error) {
	if p == nil {
		return nil, fmt.Errorf("engine: nil pipeline")
	}
	return compile(p, 0, p.Cfg.D, opts)
}

// compile builds the engine for hypervector columns [lo, hi) — the whole
// model when lo==0 && hi==D. Every tail mode slices the same way: the
// projection operand keeps columns [lo, hi), the class model keeps the same
// columns (full-row norm fold for the float scorer), and the folded bias
// keeps its slice. lo is PanelBlockCols-aligned by ShardBounds, preserving
// the 256-column block grid.
func compile(p *core.Pipeline, lo, hi int, opts []Option) (*Engine, error) {
	var o compileOptions
	for _, opt := range opts {
		opt.applyOption(&o)
	}
	return compileResolved(p, lo, hi, o)
}

// compileResolved is compile after option resolution — the entry point
// Engine.Compress uses to build candidate engines from an options struct it
// assembled itself. When a compression plan is present the pipeline compiled
// is a DERIVED one (pruned projection/class columns, factorized manifold);
// the engine records the source pipeline and the plan so the compressed
// engine can report both and refuse re-compression.
func compileResolved(p *core.Pipeline, lo, hi int, o compileOptions) (*Engine, error) {
	src := p
	if o.plan != nil && o.plan.isIdentity() {
		o.plan = nil
	}
	if o.plan != nil {
		if lo != 0 || hi != p.Cfg.D {
			return nil, fmt.Errorf("engine: compression plan on D-slice [%d, %d) of %d: %w", lo, hi, p.Cfg.D, ErrCompressedTiling)
		}
		derived, err := o.plan.apply(p)
		if err != nil {
			return nil, err
		}
		p = derived
		hi = p.Cfg.D
	}
	if err := nn.InferSupported(p.Extractor); err != nil {
		return nil, fmt.Errorf("engine: extractor not servable: %w", err)
	}
	in := p.Zoo.InShape
	if len(in) != 3 {
		return nil, fmt.Errorf("engine: zoo input shape %v, want [C H W]", in)
	}

	// Resolve the tail strategy before laying out stages: a folded tail
	// absorbs the manifold, so it must not also compile as a stage.
	fold := false
	if o.foldTail {
		switch {
		case o.stagedTail:
			return nil, fmt.Errorf("engine: WithFoldedTail conflicts with WithStagedTail")
		case o.remat:
			return nil, fmt.Errorf("engine: WithFoldedTail conflicts with WithRemat (the folded matrix G is dense, not seed-defined)")
		case o.precision == Int8:
			return nil, fmt.Errorf("engine: WithFoldedTail requires the float32 manifold (int8 quantizes the FC the fold consumes)")
		case p.Manifold == nil:
			return nil, fmt.Errorf("engine: WithFoldedTail requires a manifold pipeline")
		}
		fold = true
	} else if o.precision == Float32 && !o.stagedTail && !o.remat && p.Manifold != nil {
		if p.Manifold.Down() != nil {
			// A factorized manifold always folds: the up factor is [F̂, rank],
			// so G = up^T·P is only [rank, D] and rank·D < rank·F̂ + F̂·D for
			// every rank ≤ F̂ — the fold that loses on the dense FC wins here.
			fold = true
		} else {
			fold = foldProfitable(p.Manifold.PooledF, p.Manifold.FHat, p.Cfg.D)
		}
	}
	if o.remat && o.stagedTail {
		return nil, fmt.Errorf("engine: WithRemat requires the fused tail")
	}
	if o.precision == Int8 && p.Manifold != nil && p.Manifold.Down() != nil {
		return nil, fmt.Errorf("engine: int8 precision cannot serve a factorized manifold (the quantizer rebuilds only the dense FC)")
	}

	if lo < 0 || hi > p.Cfg.D || lo >= hi {
		return nil, fmt.Errorf("engine: D-slice [%d, %d) out of [0, %d)", lo, hi, p.Cfg.D)
	}
	e := &Engine{
		inShape:   [3]int{in[0], in[1], in[2]},
		sampleLen: in[0] * in[1] * in[2],
		d:         hi - lo,
		lo:        lo,
		fullD:     p.Cfg.D,
		version:   modelVersionHash(p),
		precision: o.precision,
		src:       src,
		opts:      o,
	}
	if o.plan != nil {
		e.version = o.plan.mixVersion(e.version)
	}
	if o.precision == Int8 {
		if err := e.buildInt8Stages(p, &o); err != nil {
			return nil, err
		}
	} else {
		ex := p.Extractor
		if o.fuse != fuseOff {
			// Rewrite fusible conv→BN→ReLU→pool runs into tiled fused blocks
			// (bit-identical; see nn.FuseInference). Layers are shared, so
			// weight accounting and later training are unaffected.
			ex = nn.FuseInference(ex, in[0], in[1], in[2], o.fuse == fuseForce)
		}
		e.stages = append(e.stages, extractStage{ex})
		switch {
		case p.Manifold != nil && fold:
			// The folded tail runs pool+flatten itself and multiplies by
			// G = Wᵀ·P directly; no manifold stage.
		case p.Manifold != nil:
			e.stages = append(e.stages, manifoldStage{p.Manifold})
		case p.LSH != nil:
			e.stages = append(e.stages, flattenStage{}, newProjectStage("lsh", p.LSH))
		default:
			e.stages = append(e.stages, flattenStage{})
		}
	}
	if o.stagedTail {
		e.stages = append(e.stages, newProjectStage("project", p.Proj.Slice(lo, hi)))
		t := &stagedTail{d: hi - lo, lo: lo, fullD: p.Cfg.D}
		if sub := subScorer(p, &o); sub != nil {
			t.sub = sub
		} else if p.Cfg.PackedInference {
			t.packed = hdlearn.PackModel(p.HD).SliceColumns(lo, hi)
		} else {
			t.scorer = hdlearn.NewFoldedScorer(p.HD).Slice(lo, hi)
		}
		e.tail = t
	} else {
		t, err := buildFusedTail(p, &o, fold, lo, hi)
		if err != nil {
			return nil, err
		}
		e.tail = t
	}
	for _, st := range e.stages {
		e.bytes = append(e.bytes, StageBytes{st.Name(), stageWeightBytes(st)})
	}
	e.bytes = append(e.bytes, e.tail.breakdown()...)

	// Size the chunk: start from the training batch size, shrink until the
	// measured arena fits the budget.
	chunk := p.Cfg.BatchSize
	if chunk < 1 {
		chunk = 1
	}
	for {
		ar := tensor.NewArena()
		if err := e.warmup(ar, chunk); err != nil {
			return nil, err
		}
		ar.Freeze()
		foot := ar.FootprintBytes()
		if foot <= arenaBudgetBytes || chunk == 1 {
			e.proto = ar
			e.chunk = chunk
			break
		}
		next := int(int64(chunk) * arenaBudgetBytes / foot)
		if next < 1 {
			next = 1
		}
		if next >= chunk {
			next = chunk - 1
		}
		chunk = next
	}

	w := parallel.Workers()
	if w < 1 {
		w = 1
	}
	e.maxArenas = int32(w)
	e.arenas = make(chan *tensor.Arena, w)
	e.arenas <- e.proto
	e.created.Store(1)
	return e, nil
}

// warmup drives one all-zero chunk through the full chain so the measuring
// arena records its high-water marks.
func (e *Engine) warmup(ar *tensor.Arena, chunk int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: warmup failed: %v", r)
		}
	}()
	zero := make([]float32, chunk*e.sampleLen)
	preds := make([]int, chunk)
	hvs := make([]float32, chunk*e.d)
	x := e.runChunk(ar, zero, chunk)
	e.tail.run(x, preds, ar)
	// Size the hypervector path too (QueryHVs); runChunk resets the arena
	// offsets but the high-water marks accumulate across both passes.
	x = e.runChunk(ar, zero, chunk)
	e.tail.runHVs(x, hvs, ar)
	// And the partial-score path, so sharded serving stays allocation-free.
	ps := e.NewPartials(chunk)
	x = e.runChunk(ar, zero, chunk)
	e.tail.runPartial(x, ps, 0, ar)
	return nil
}

// getArena takes a worker arena from the freelist, cloning a new one only
// while the fleet is still below maxArenas (startup); afterwards this is a
// single allocation-free channel receive.
func (e *Engine) getArena() *tensor.Arena {
	select {
	case ar := <-e.arenas:
		return ar
	default:
	}
	if e.created.Add(1) <= e.maxArenas {
		return e.proto.CloneEmpty()
	}
	e.created.Add(-1)
	return <-e.arenas
}

func (e *Engine) putArena(ar *tensor.Arena) { e.arenas <- ar }

// runChunk copies one chunk of images into the arena (inference layers write
// activations in place, so user memory is never touched) and runs the
// feature stages, returning the activation the tail consumes.
func (e *Engine) runChunk(ar *tensor.Arena, seg []float32, n int) *tensor.Tensor {
	ar.Reset()
	x := ar.Alloc(n, e.inShape[0], e.inShape[1], e.inShape[2])
	copy(x.Data, seg)
	for _, st := range e.stages {
		x = st.Run(x, ar)
	}
	return x
}

func (e *Engine) checkImages(images *tensor.Tensor) error {
	if images == nil || images.Rank() != 4 {
		return fmt.Errorf("engine: Predict expects [N C H W] images")
	}
	if images.Shape[1] != e.inShape[0] || images.Shape[2] != e.inShape[1] || images.Shape[3] != e.inShape[2] {
		return fmt.Errorf("engine: image shape %v, engine compiled for [N %d %d %d]",
			images.Shape, e.inShape[0], e.inShape[1], e.inShape[2])
	}
	return nil
}

// Predict classifies a batch of images. N = 0 returns an empty slice.
func (e *Engine) Predict(images *tensor.Tensor) ([]int, error) {
	if err := e.checkImages(images); err != nil {
		return nil, err
	}
	preds := make([]int, images.Shape[0])
	if err := e.PredictInto(images, preds); err != nil {
		return nil, err
	}
	return preds, nil
}

// PredictInto classifies a batch of images into caller-owned preds (length
// N). A batch that fits one chunk runs entirely on the calling goroutine and
// performs zero heap allocations in steady state (see TestEngineZeroAlloc);
// larger batches fan chunks out across the worker pool, pipelining
// extraction and symbolization of later chunks with classification of
// earlier ones.
func (e *Engine) PredictInto(images *tensor.Tensor, preds []int) error {
	if err := e.checkImages(images); err != nil {
		return err
	}
	n := images.Shape[0]
	if len(preds) != n {
		return fmt.Errorf("engine: preds length %d, want %d", len(preds), n)
	}
	if n == 0 {
		return nil
	}
	if n <= e.chunk {
		ar := e.getArena()
		x := e.runChunk(ar, images.Data, n)
		e.tail.run(x, preds, ar)
		e.putArena(ar)
		return nil
	}
	nChunks := (n + e.chunk - 1) / e.chunk
	parallel.For(nChunks, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start := ci * e.chunk
			end := start + e.chunk
			if end > n {
				end = n
			}
			ar := e.getArena()
			x := e.runChunk(ar, images.Data[start*e.sampleLen:end*e.sampleLen], end-start)
			e.tail.run(x, preds[start:end], ar)
			e.putArena(ar)
		}
	})
	return nil
}

// QueryHVs returns the signed query hypervectors ([N, D]) of a batch — the
// symbolic representation the explainability analysis consumes — streaming
// chunk results into the output instead of materializing all-N features.
func (e *Engine) QueryHVs(images *tensor.Tensor) (*tensor.Tensor, error) {
	if err := e.checkImages(images); err != nil {
		return nil, err
	}
	n := images.Shape[0]
	out := tensor.New(n, e.d)
	if n == 0 {
		return out, nil
	}
	nChunks := (n + e.chunk - 1) / e.chunk
	run := func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start := ci * e.chunk
			end := start + e.chunk
			if end > n {
				end = n
			}
			ar := e.getArena()
			x := e.runChunk(ar, images.Data[start*e.sampleLen:end*e.sampleLen], end-start)
			e.tail.runHVs(x, out.Data[start*e.d:end*e.d], ar)
			e.putArena(ar)
		}
	}
	if nChunks == 1 {
		run(0, 1)
	} else {
		parallel.For(nChunks, run)
	}
	return out, nil
}

// StreamResult is one batch's outcome on the stream path.
type StreamResult struct {
	// Index is the batch's position in the input stream.
	Index int
	Preds []int
	Err   error
}

// PredictStream serves an unbounded sequence of batches. Results are emitted
// strictly in input order; up to a few batches are in flight at once, so
// feature extraction of batch i+1 overlaps classification of batch i. The
// output channel closes after the input channel closes and all in-flight
// batches drain. A failed batch (bad shape) reports its error in the result
// and the stream continues.
func (e *Engine) PredictStream(in <-chan *tensor.Tensor) <-chan StreamResult {
	workers := parallel.Workers()
	if workers > 4 {
		workers = 4
	}
	if workers < 1 {
		workers = 1
	}
	type item struct {
		idx int
		img *tensor.Tensor
	}
	tagged := make(chan item)
	go func() {
		i := 0
		for b := range in {
			tagged <- item{i, b}
			i++
		}
		close(tagged)
	}()

	results := make(chan StreamResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range tagged {
				preds, err := e.Predict(it.img)
				results <- StreamResult{Index: it.idx, Preds: preds, Err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	out := make(chan StreamResult, workers)
	go func() {
		pending := make(map[int]StreamResult)
		next := 0
		for r := range results {
			pending[r.Index] = r
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- v
				next++
			}
		}
		close(out)
	}()
	return out
}

// PredictChecked is the serving form of PredictInto: the same validation,
// plus a recover barrier that converts any panic escaping the stage chain
// (a malformed tensor whose Data is shorter than its shape claims, an arena
// sizing bug) into an error. A serving front end must never crash the process
// on one bad request; training-side callers keep the panicking fast paths.
func (e *Engine) PredictChecked(images *tensor.Tensor, preds []int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: predict panicked: %v", r)
		}
	}()
	return e.PredictInto(images, preds)
}

// ChunkSize reports how many samples one worker chunk carries.
func (e *Engine) ChunkSize() int { return e.chunk }

// InShape reports the per-sample input shape [C, H, W] the engine was
// compiled for.
func (e *Engine) InShape() [3]int { return e.inShape }

// SampleLen reports the flat float32 length of one input sample (C·H·W).
func (e *Engine) SampleLen() int { return e.sampleLen }

// Dim reports the hypervector dimension D of the compiled symbolization.
func (e *Engine) Dim() int { return e.d }

// Classes reports the number of classes the compiled classifier scores.
func (e *Engine) Classes() int { return e.tail.classes() }

// ModelBytes reports the engine's TRUE serving footprint: every weight the
// compiled plan keeps resident, summed over BytesBreakdown — extractor and
// manifold parameters, the projection operand (prepacked panels, the folded
// matrix, or the 8-byte seed under WithRemat) and the classifier snapshot.
func (e *Engine) ModelBytes() int64 {
	var total int64
	for _, b := range e.bytes {
		total += b.Bytes
	}
	return total
}

// BytesBreakdown itemizes ModelBytes per compiled stage, in Stages() order.
func (e *Engine) BytesBreakdown() []StageBytes {
	return append([]StageBytes(nil), e.bytes...)
}

// ArenaBytes reports one worker arena's slab footprint.
func (e *Engine) ArenaBytes() int64 { return e.proto.FootprintBytes() }

// Stages lists the compiled stage names, extractor first, the tail last.
func (e *Engine) Stages() []string {
	names := make([]string, 0, len(e.stages)+1)
	for _, s := range e.stages {
		names = append(names, s.Name())
	}
	return append(names, e.tail.names()...)
}

// stageWeightBytes sums the resident weights of one feature stage.
func stageWeightBytes(st Stage) int64 {
	switch s := st.(type) {
	case extractStage:
		return paramBytes(s.ex.Params())
	case manifoldStage:
		return paramBytes(s.ml.Params())
	case projectStage:
		// The engine-resident operand is the prepacked panel copy, not the
		// pipeline's dense matrix.
		return s.panels.MemoryBytes()
	case int8Stage:
		var total int64
		for _, sg := range s.segs {
			switch seg := sg.(type) {
			case floatSeg:
				total += paramBytes(seg.s.Params())
			case int8Seg:
				for _, l := range seg.layers {
					total += int8LayerBytes(l)
				}
			}
		}
		return total
	}
	return 0
}

func paramBytes(ps []*nn.Param) int64 {
	var total int64
	for _, p := range ps {
		total += int64(p.W.Len()) * 4
	}
	return total
}

// int8LayerBytes counts a quantized layer's canonical weights: i8 weight
// bytes plus the int32 bias and float32 requant scale per output channel.
func int8LayerBytes(l nn.Int8Layer) int64 {
	switch v := l.(type) {
	case *nn.Int8Conv2D:
		return int64(len(v.W)) + int64(len(v.Bias32))*4 + int64(len(v.Scales))*4
	case *nn.Int8Linear:
		return int64(len(v.W)) + int64(len(v.Bias32))*4 + int64(len(v.Scales))*4
	case *nn.Int8FusedBlock:
		return v.WeightBytes()
	}
	return 0
}

// init hooks the engine into core: Pipeline.Predict/Accuracy/QueryHVs compile
// and cache an Engine through this registration, keeping core free of an
// import cycle. Any program importing this package (the public nshd surface
// does) serves through the Engine automatically.
func init() {
	core.RegisterEngineCompiler(func(p *core.Pipeline) (core.Predictor, error) {
		return Compile(p)
	})
}
