package engine_test

import (
	"strings"
	"testing"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/nn"
	"nshd/internal/tensor"
)

// buildInt8Pipeline mirrors buildPipeline but also returns the train split,
// which the int8 engine uses for calibration.
func buildInt8Pipeline(t *testing.T, mut func(*core.Config)) (*core.Pipeline, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfgD := dataset.SynthConfig{Classes: 4, Train: 200, Test: 200, Size: 16, Noise: 0.02, Seed: 61}
	train, test := dataset.SynthCIFAR(cfgD)
	cfg := core.DefaultConfig(1, 4)
	cfg.D = 512
	cfg.FHat = 24
	cfg.Epochs = 20
	cfg.Seed = 7
	cfg.BatchSize = 8
	mut(&cfg)
	p, err := core.New(tinyZoo(62, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(train, nil); err != nil {
		t.Fatal(err)
	}
	return p, train, test
}

func accuracyOf(preds []int, labels []int) float64 {
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(preds))
}

// TestEngineInt8AccuracyWithinOnePoint is the acceptance gate for the
// quantized datapath: on SynthCIFAR, the calibrated int8 engine's accuracy
// must stay within one point of the float engine's.
func TestEngineInt8AccuracyWithinOnePoint(t *testing.T) {
	p, train, test := buildInt8Pipeline(t, func(c *core.Config) {})
	ef, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := engine.Compile(p, engine.Int8, engine.WithCalibration(train.Images))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := ef.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := eq.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	accF := accuracyOf(pf, test.Labels)
	accQ := accuracyOf(pq, test.Labels)
	t.Logf("float=%.2f%% int8=%.2f%%", accF, accQ)
	// Chance is 25% on 4 classes; demand a clear margin so the 1-point
	// comparison below is not vacuous.
	if accF < 40 {
		t.Fatalf("degenerate float model (%.2f%%): accuracy comparison vacuous", accF)
	}
	if d := accF - accQ; d > 1.0 || d < -1.0 {
		t.Fatalf("int8 accuracy %.2f%% departs from float %.2f%% by more than 1 point", accQ, accF)
	}
}

// TestEngineInt8FullCoverage: the conv/ReLU/pool extractor plus the manifold
// quantize completely — no float fallback segments — and the engine reports
// the mode and layer inventory.
func TestEngineInt8FullCoverage(t *testing.T) {
	p, train, _ := buildInt8Pipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p, engine.Int8, engine.WithCalibration(train.Images))
	if err != nil {
		t.Fatal(err)
	}
	if e.Precision() != engine.Int8 {
		t.Fatalf("precision %v, want int8", e.Precision())
	}
	covered, total := e.Int8Coverage()
	if total == 0 || covered != total {
		t.Fatalf("coverage %d/%d, want full", covered, total)
	}
	names := e.Int8Layers()
	if len(names) == 0 || !strings.Contains(names[0], "Int8Conv2D") {
		t.Fatalf("int8 layer inventory %v", names)
	}
	stages := e.Stages()
	if stages[0] != "extract" || stages[1] != "manifold" {
		t.Fatalf("stages %v", stages)
	}

	// Float32 compiles report no coverage.
	ef, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if ef.Precision() != engine.Float32 {
		t.Fatalf("default precision %v", ef.Precision())
	}
	if c, tot := ef.Int8Coverage(); c != 0 || tot != 0 {
		t.Fatalf("float engine coverage %d/%d, want 0/0", c, tot)
	}
}

// fallbackZoo inserts a Sigmoid — a layer with no int8 implementation —
// between the two conv units, forcing a float fallback segment in the
// middle of the quantized chain.
func fallbackZoo(seed int64, classes int) *cnn.Model {
	rng := tensor.NewRNG(seed)
	m := &cnn.Model{Name: "fallbackcnn", InShape: []int{3, 16, 16}, Classes: classes}
	m.Units = append(m.Units,
		cnn.Unit{Index: 0, Label: "conv0", Layers: []nn.Layer{
			nn.NewConv2D(rng, 3, 8, 3, 1, 1, true), nn.NewReLU(), nn.NewMaxPool2D(2)}},
		cnn.Unit{Index: 1, Label: "conv1", Layers: []nn.Layer{
			nn.NewConv2D(rng, 8, 16, 3, 1, 1, true), nn.NewSigmoid(), nn.NewMaxPool2D(2)}},
	)
	m.Head = []nn.Layer{nn.NewFlatten(), nn.NewLinear(rng, 16*4*4, classes, true)}
	return m.Finish()
}

// TestEngineInt8PartialFallback: a chain with an unquantizable layer still
// compiles in int8 mode, serves valid predictions, and reports partial
// coverage.
func TestEngineInt8PartialFallback(t *testing.T) {
	cfgD := dataset.SynthConfig{Classes: 4, Train: 40, Test: 21, Size: 16, Noise: 0.2, Seed: 61}
	train, test := dataset.SynthCIFAR(cfgD)
	cfg := core.DefaultConfig(1, 4)
	cfg.D = 70
	cfg.FHat = 16
	cfg.Seed = 7
	cfg.BatchSize = 8
	p, err := core.New(fallbackZoo(62, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)

	e, err := engine.Compile(p, engine.Int8, engine.WithCalibration(train.Images))
	if err != nil {
		t.Fatal(err)
	}
	covered, total := e.Int8Coverage()
	if covered >= total || covered == 0 {
		t.Fatalf("coverage %d/%d, want partial", covered, total)
	}
	preds, err := e.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != test.Len() {
		t.Fatalf("%d preds for %d images", len(preds), test.Len())
	}
	for _, pr := range preds {
		if pr < 0 || pr >= 4 {
			t.Fatalf("prediction %d out of class range", pr)
		}
	}
}

// TestEngineInt8ZeroAlloc: the quantized datapath must keep the frozen-arena
// guarantee — no heap allocations in steady state.
func TestEngineInt8ZeroAlloc(t *testing.T) {
	p, train, test := buildInt8Pipeline(t, func(c *core.Config) { c.PackedInference = true })
	e, err := engine.Compile(p, engine.Int8, engine.WithCalibration(train.Images))
	if err != nil {
		t.Fatal(err)
	}
	n := e.ChunkSize()
	if n > test.Len() {
		n = test.Len()
	}
	sample := test.Images.Len() / test.Len()
	imgs := tensor.FromSlice(test.Images.Data[:n*sample], n, 3, 16, 16)
	preds := make([]int, n)
	if err := e.PredictInto(imgs, preds); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, func() {
		if err := e.PredictInto(imgs, preds); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("int8 PredictInto allocated %.1f times per run in steady state", a)
	}
}

// TestEngineInt8SyntheticCalibration: omitting WithCalibration still
// compiles (synthetic batch) and serves — the documented accuracy-risk path.
func TestEngineInt8SyntheticCalibration(t *testing.T) {
	p, _, test := buildInt8Pipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p, engine.Int8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(test.Images); err != nil {
		t.Fatal(err)
	}
	// Wrong-shaped calibration images must be rejected.
	if _, err := engine.Compile(p, engine.Int8, engine.WithCalibration(tensor.New(2, 1, 16, 16))); err == nil {
		t.Fatal("bad calibration shape must fail Compile")
	}
}

// TestEngineInt8TimeStages: the per-stage probe reports a row per stage plus
// the classifier, with nonnegative times.
func TestEngineInt8TimeStages(t *testing.T) {
	p, train, test := buildInt8Pipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p, engine.Int8, engine.WithCalibration(train.Images))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.TimeStages(test.Images, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(e.Stages()) {
		t.Fatalf("%d timing rows for %d stages", len(rows), len(e.Stages()))
	}
	if rows[0].Name != "extract" || rows[len(rows)-1].Name != "fuse(project+classify-float)" {
		t.Fatalf("timing rows %v", rows)
	}
	for _, r := range rows {
		if r.Seconds < 0 {
			t.Fatalf("negative stage time %v", r)
		}
	}
}
