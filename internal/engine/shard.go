package engine

import (
	"fmt"
	"math"

	"nshd/internal/core"
	"nshd/internal/parallel"
	"nshd/internal/tensor"
)

// Dimension-sharded scoring. HD class scores are dot products over the D
// hypervector dimensions, so they are additive across disjoint dimension
// ranges: for any partition [lo_0, hi_0) ∪ … ∪ [lo_{S−1}, hi_{S−1}) of
// [0, D),
//
//	⟨h, M_k⟩ = Σ_s ⟨h[lo_s:hi_s], M_k[lo_s:hi_s]⟩
//
// CompileShard freezes an engine that computes only its slice's partial
// scores — its projection columns, its class-model columns, its slice of the
// folded bias — and MergeScores add-reduces the partials into exactly the
// score vector the unsharded engine accumulates, bit for bit:
//
//   - Packed kernel: each shard emits int32 dots w_s − 2·ham_s, whose sum
//     over shards is the full model's D − 2·ham. Integer addition is
//     associative, so any grouping is exact.
//   - Float kernel: float64 addition is NOT associative, so shards do not
//     pre-reduce. Each shard emits the raw float32 score of every 256-column
//     GEMM block (the exact values the unsharded fused tail folds), and
//     MergeScores folds them into float64 in global block order — the
//     identical sequence of additions the unsharded engine performs, for any
//     shard count.
//
// Shard boundaries are aligned to tensor.PanelBlockCols() (256), preserving
// the global block grid: a shard's GEMM blocks are exactly a sub-range of
// the unsharded engine's blocks, so every block value is bit-identical
// (MatMulPanelsBlock's column independence), block packing writes the same
// words, and 256 | boundaries keeps the packed models' word grids aligned.

// ShardBounds partitions hypervector dimension d into `of` contiguous
// column ranges aligned to the GEMM panel block (256 columns), balanced to
// within one block; the last shard absorbs the ragged d % 256 tail. Errors
// when of exceeds the number of blocks (an empty shard can contribute
// nothing).
func ShardBounds(d, of int) ([][2]int, error) {
	if d < 1 {
		return nil, fmt.Errorf("engine: ShardBounds d=%d", d)
	}
	if of < 1 {
		return nil, fmt.Errorf("engine: ShardBounds of=%d", of)
	}
	bc := tensor.PanelBlockCols()
	nb := (d + bc - 1) / bc
	if of > nb {
		return nil, fmt.Errorf("engine: %d shards but D=%d has only %d %d-column blocks", of, d, nb, bc)
	}
	bounds := make([][2]int, of)
	for s := 0; s < of; s++ {
		lo := s * nb / of * bc
		hi := (s + 1) * nb / of * bc
		if hi > d {
			hi = d
		}
		bounds[s] = [2]int{lo, hi}
	}
	return bounds, nil
}

// CompileShard freezes shard `shard` of `of` dimension shards: an Engine
// identical to Compile's except that its tail holds only hypervector columns
// [lo, hi) of the projection and class model (per ShardBounds) and scores
// only those. All tail modes (fused, staged, remat, folded) and both
// kernels shard; WithRemat shards regenerate exactly their own columns from
// the shared 8-byte projection seed. Compile(p) is the of=1 special case —
// the single-engine path and the sharded path are the same code.
//
// A shard's own Predict/PredictInto return the argmax of its PARTIAL scores
// (meaningful only for of=1); sharded serving uses PartialInto + MergeScores.
// QueryHVs returns the shard's D-slice columns of the full query
// hypervectors.
func CompileShard(p *core.Pipeline, shard, of int, opts ...Option) (*Engine, error) {
	if p == nil {
		return nil, fmt.Errorf("engine: nil pipeline")
	}
	bounds, err := ShardBounds(p.Cfg.D, of)
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("engine: shard %d out of %d", shard, of)
	}
	return compile(p, bounds[shard][0], bounds[shard][1], opts)
}

// Shard reports the hypervector column range [lo, hi) this engine scores —
// [0, FullDim()) for an unsharded engine.
func (e *Engine) Shard() (lo, hi int) { return e.lo, e.lo + e.d }

// FullDim reports the full hypervector dimension of the model the engine
// was compiled from (== Dim() when unsharded).
func (e *Engine) FullDim() int { return e.fullD }

// PackedKernel reports whether the engine scores with the packed (popcount)
// classifier — its partial scores are int32 dots — or the float kernel.
func (e *Engine) PackedKernel() bool { return e.tail.packedKernel() }

// ModelVersion is a content hash identifying the compiled model: the HD
// class matrix, the projection (its seed, or its dense matrix when
// unseeded), and the shape facts (D, K). Every shard of one trained model
// reports the same version regardless of slice or tail mode; retraining
// changes it. A COMPRESSED engine mixes its plan into the hash (see
// CompressPlan.mixVersion) — it serves different predictions, so it must
// never be mistaken for the source model. The serving tier uses the version
// to gate rollout: a router only switches traffic to a new version once every
// shard advertises it.
func (e *Engine) ModelVersion() uint64 { return e.version }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> uint(s)) & 0xff
		h *= fnvPrime64
	}
	return h
}

func modelVersionHash(p *core.Pipeline) uint64 {
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(p.Cfg.D))
	h = fnvMix(h, uint64(p.HD.K))
	for _, v := range p.HD.M.Data {
		h = fnvMix(h, uint64(math.Float32bits(v)))
	}
	if p.Proj.Seeded {
		h = fnvMix(h, 1)
		h = fnvMix(h, uint64(p.Proj.Seed))
	} else {
		h = fnvMix(h, 2)
		for _, v := range p.Proj.P.Data {
			h = fnvMix(h, uint64(math.Float32bits(v)))
		}
	}
	return h
}

// PartialScores carries one shard's raw partial scores for a batch — the
// wire unit of the sharded serving tier.
//
// Packed kernel: Ints[i*K + k] is the shard's int32 popcount dot for sample
// i, class k (exactly additive across shards).
//
// Float kernel: Floats is block-major — Floats[(b*N + i)*K + k] is the raw
// float32 score of sample i, class k against the shard's b-th 256-column
// GEMM block. Per-block values (not a per-shard sum) are what make the
// reduce bit-exact: the merger folds them into float64 in global block
// order, replaying the unsharded engine's accumulation sequence.
type PartialScores struct {
	N, K   int
	Lo, Hi int // hypervector column range of the emitting shard
	FullD  int // full model dimension (the ranges of a merge tile [0, FullD))
	Packed bool
	Ints   []int32
	Floats []float32
	// Scales, non-nil only for a compressed engine's sub-byte kernel, holds
	// the K per-class dequantization scales: the merged integer dots must be
	// scale-multiplied (in float64) before classes are compared. Sub-byte
	// engines never shard (they are full-range by construction), so scaled
	// partials always cover [0, FullD) on their own; MergeScores still
	// validates scale agreement for defense in depth. The slice aliases the
	// engine's scorer — read-only.
	Scales []float32
}

// Blocks returns the number of 256-column GEMM blocks in the shard's range.
func (ps *PartialScores) Blocks() int {
	bc := tensor.PanelBlockCols()
	return (ps.Hi - ps.Lo + bc - 1) / bc
}

// NewPartials allocates a PartialScores sized for an n-sample batch on this
// engine's shard and kernel.
func (e *Engine) NewPartials(n int) *PartialScores {
	ps := &PartialScores{}
	e.ResizePartials(ps, n)
	return ps
}

// ResizePartials re-shapes ps for an n-sample batch on this engine,
// reusing the backing arrays when capacity allows — the pooling hook for
// allocation-free serving.
func (e *Engine) ResizePartials(ps *PartialScores, n int) {
	ps.N, ps.K = n, e.tail.classes()
	ps.Lo, ps.Hi, ps.FullD = e.lo, e.lo+e.d, e.fullD
	ps.Packed = e.tail.packedKernel()
	ps.Scales = e.tail.scales()
	if ps.Packed {
		ps.Floats = ps.Floats[:0]
		need := n * ps.K
		if cap(ps.Ints) < need {
			ps.Ints = make([]int32, need)
		}
		ps.Ints = ps.Ints[:need]
		return
	}
	ps.Ints = ps.Ints[:0]
	need := ps.Blocks() * n * ps.K
	if cap(ps.Floats) < need {
		ps.Floats = make([]float32, need)
	}
	ps.Floats = ps.Floats[:need]
}

// PartialInto computes the engine's partial scores for a batch of images
// into ps (re-sized in place, reusing capacity). Chunking and parallelism
// mirror PredictInto; steady state performs zero heap allocations when ps
// capacity suffices.
func (e *Engine) PartialInto(images *tensor.Tensor, ps *PartialScores) error {
	if err := e.checkImages(images); err != nil {
		return err
	}
	n := images.Shape[0]
	e.ResizePartials(ps, n)
	if n == 0 {
		return nil
	}
	if n <= e.chunk {
		ar := e.getArena()
		x := e.runChunk(ar, images.Data, n)
		e.tail.runPartial(x, ps, 0, ar)
		e.putArena(ar)
		return nil
	}
	nChunks := (n + e.chunk - 1) / e.chunk
	parallel.For(nChunks, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start := ci * e.chunk
			end := start + e.chunk
			if end > n {
				end = n
			}
			ar := e.getArena()
			x := e.runChunk(ar, images.Data[start*e.sampleLen:end*e.sampleLen], end-start)
			e.tail.runPartial(x, ps, start, ar)
			e.putArena(ar)
		}
	})
	return nil
}

// PartialChecked is PartialInto behind the serving panic barrier, mirroring
// PredictChecked.
func (e *Engine) PartialChecked(images *tensor.Tensor, ps *PartialScores) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: partial predict panicked: %v", r)
		}
	}()
	return e.PartialInto(images, ps)
}

// MergeScores add-reduces shard partials covering [0, FullD) into final
// class scores and (optionally) predictions — the reduce of the sharded
// serving tier. scores must hold N·K float64s; preds, when non-nil, N ints.
// The result is bit-identical to the unsharded engine's internal score
// accumulation and argmax for any shard count, including a single
// full-range partial.
//
// parts may arrive in any order; they must tile [0, FullD) contiguously and
// agree on N, K, FullD and kernel.
func MergeScores(preds []int, scores []float64, parts []*PartialScores) error {
	if len(parts) == 0 {
		return fmt.Errorf("engine: MergeScores with no partials")
	}
	p0 := parts[0]
	n, k, fullD := p0.N, p0.K, p0.FullD
	if p0.Scales != nil && len(p0.Scales) != k {
		return fmt.Errorf("engine: MergeScores scales length %d, want %d", len(p0.Scales), k)
	}
	for _, p := range parts {
		if p.N != n || p.K != k || p.FullD != fullD || p.Packed != p0.Packed {
			return fmt.Errorf("engine: MergeScores mismatched partials (N=%d/%d K=%d/%d FullD=%d/%d packed=%v/%v)",
				p.N, n, p.K, k, p.FullD, fullD, p.Packed, p0.Packed)
		}
		if len(p.Scales) != len(p0.Scales) {
			return fmt.Errorf("engine: MergeScores mixes scaled (%d) and unscaled (%d) partials", len(p.Scales), len(p0.Scales))
		}
		for j := range p.Scales {
			if p.Scales[j] != p0.Scales[j] {
				return fmt.Errorf("engine: MergeScores partials disagree on class %d scale", j)
			}
		}
		if p.Packed {
			if len(p.Ints) != n*k {
				return fmt.Errorf("engine: MergeScores partial [%d,%d) has %d int scores, want %d", p.Lo, p.Hi, len(p.Ints), n*k)
			}
		} else if len(p.Floats) != p.Blocks()*n*k {
			return fmt.Errorf("engine: MergeScores partial [%d,%d) has %d float scores, want %d", p.Lo, p.Hi, len(p.Floats), p.Blocks()*n*k)
		}
	}
	if len(scores) < n*k {
		return fmt.Errorf("engine: MergeScores scores length %d, want %d", len(scores), n*k)
	}
	if preds != nil && len(preds) < n {
		return fmt.Errorf("engine: MergeScores preds length %d, want %d", len(preds), n)
	}
	scores = scores[:n*k]
	for i := range scores {
		scores[i] = 0
	}
	// Walk the shards in ascending Lo order without allocating: find the
	// partial starting at the cursor, advance. S is small (≤ D/256).
	cursor := 0
	for range parts {
		var cur *PartialScores
		for _, p := range parts {
			if p.Lo == cursor {
				cur = p
				break
			}
		}
		if cur == nil {
			return fmt.Errorf("engine: MergeScores partials do not tile [0, %d): no shard starts at %d", fullD, cursor)
		}
		if cur.Packed {
			for i, v := range cur.Ints {
				scores[i] += float64(v)
			}
		} else {
			// Global block order == shard order (contiguous ascending) then
			// block index within the shard: the unsharded fold sequence.
			nk := n * k
			for b := 0; b < cur.Blocks(); b++ {
				blk := cur.Floats[b*nk : (b+1)*nk]
				for i, v := range blk {
					scores[i] += float64(v)
				}
			}
		}
		cursor = cur.Hi
	}
	if cursor != fullD {
		return fmt.Errorf("engine: MergeScores partials cover [0, %d) of [0, %d)", cursor, fullD)
	}
	if p0.Scales != nil {
		// Sub-byte kernel: dequantize the (exactly-summed) integer dots. The
		// int32 dots convert to float64 exactly, so float64(scale)·float64(dot)
		// is bit-identical to the engine's own ArgmaxScaledInto scoring.
		for i := 0; i < n; i++ {
			row := scores[i*k : (i+1)*k]
			for c := 0; c < k; c++ {
				row[c] *= float64(p0.Scales[c])
			}
		}
	}
	if preds != nil {
		for i := 0; i < n; i++ {
			row := scores[i*k : (i+1)*k]
			best, at := row[0], 0
			for c := 1; c < k; c++ {
				if row[c] > best {
					best, at = row[c], c
				}
			}
			preds[i] = at
		}
	}
	return nil
}
