package engine_test

import (
	"strings"
	"testing"

	"nshd/internal/core"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// tailModes enumerates the four serving-tail strategies the fused extractor
// must compose with.
func tailModes() []struct {
	name string
	opts []engine.Option
} {
	return []struct {
		name string
		opts []engine.Option
	}{
		{"fused", nil},
		{"remat", []engine.Option{engine.WithRemat()}},
		{"folded", []engine.Option{engine.WithFoldedTail()}},
		{"staged", []engine.Option{engine.WithStagedTail()}},
	}
}

// TestEngineFusedExtractBitExact is the engine-level acceptance property for
// the cache-resident extraction blocks: with the fused extractor forced on,
// predictions, query hypervectors, AND raw partial scores must be
// bit-identical to the unfused engine across every tail mode and both
// classifier kernels. The extractor's tiling must be invisible end to end.
func TestEngineFusedExtractBitExact(t *testing.T) {
	for _, kern := range []struct {
		name   string
		packed bool
	}{{"float", false}, {"packed", true}} {
		p, test := buildPipeline(t, func(c *core.Config) { c.PackedInference = kern.packed })
		for _, mode := range tailModes() {
			t.Run(kern.name+"/"+mode.name, func(t *testing.T) {
				base, err := engine.Compile(p, append([]engine.Option{engine.WithUnfusedExtract()}, mode.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				fz, err := engine.Compile(p, append([]engine.Option{engine.WithFusedExtract()}, mode.opts...)...)
				if err != nil {
					t.Fatal(err)
				}

				want, err := base.Predict(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				got, err := fz.Predict(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("sample %d: fused pred %d, unfused %d", i, got[i], want[i])
					}
				}

				hw, err := base.QueryHVs(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				hg, err := fz.QueryHVs(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				for i := range hw.Data {
					if hg.Data[i] != hw.Data[i] {
						t.Fatalf("query hypervector element %d differs: fused %g, unfused %g",
							i, hg.Data[i], hw.Data[i])
					}
				}

				pw := base.NewPartials(test.Len())
				if err := base.PartialInto(test.Images, pw); err != nil {
					t.Fatal(err)
				}
				pg := fz.NewPartials(test.Len())
				if err := fz.PartialInto(test.Images, pg); err != nil {
					t.Fatal(err)
				}
				if len(pg.Ints) != len(pw.Ints) || len(pg.Floats) != len(pw.Floats) {
					t.Fatalf("partial shapes differ: ints %d/%d floats %d/%d",
						len(pg.Ints), len(pw.Ints), len(pg.Floats), len(pw.Floats))
				}
				for i := range pw.Ints {
					if pg.Ints[i] != pw.Ints[i] {
						t.Fatalf("raw int score %d differs: fused %d, unfused %d", i, pg.Ints[i], pw.Ints[i])
					}
				}
				for i := range pw.Floats {
					if pg.Floats[i] != pw.Floats[i] {
						t.Fatalf("raw float score %d differs: fused %g, unfused %g", i, pg.Floats[i], pw.Floats[i])
					}
				}
			})
		}
	}
}

// TestEngineFusedExtractTimeStages pins the per-step timing breakdown: the
// forced-fused engine reports fused blocks as sub-stage rows under extract,
// and the sub rows always accompany the extract stage entry.
func TestEngineFusedExtractTimeStages(t *testing.T) {
	p, test := buildPipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p, engine.WithFusedExtract())
	if err != nil {
		t.Fatal(err)
	}
	times, err := e.TimeStages(test.Images, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(e.Stages()) {
		t.Fatalf("TimeStages returned %d rows for %d stages", len(times), len(e.Stages()))
	}
	if times[0].Name != "extract" || len(times[0].Sub) == 0 {
		t.Fatalf("extract stage has no sub-step rows: %+v", times[0])
	}
	sawFused := false
	for _, sub := range times[0].Sub {
		if strings.HasPrefix(sub.Name, "fused{") {
			sawFused = true
		}
		if sub.Seconds < 0 {
			t.Fatalf("negative sub-step time: %+v", sub)
		}
	}
	if !sawFused {
		t.Fatalf("no fused block in extract sub-steps: %+v", times[0].Sub)
	}
}

// TestEngineInt8FusedExtractBitExact mirrors the float property on the
// quantized datapath: the tiled int8 fused blocks must reproduce the
// layer-by-layer int8 engine exactly — same predictions, same signed query
// hypervectors, same raw scores — on both classifier kernels.
func TestEngineInt8FusedExtractBitExact(t *testing.T) {
	for _, kern := range []struct {
		name   string
		packed bool
	}{{"float", false}, {"packed", true}} {
		t.Run(kern.name, func(t *testing.T) {
			p, train, test := buildInt8Pipeline(t, func(c *core.Config) { c.PackedInference = kern.packed })
			base, err := engine.Compile(p, engine.Int8,
				engine.WithCalibration(train.Images), engine.WithUnfusedExtract())
			if err != nil {
				t.Fatal(err)
			}
			fz, err := engine.Compile(p, engine.Int8,
				engine.WithCalibration(train.Images), engine.WithFusedExtract())
			if err != nil {
				t.Fatal(err)
			}

			want, err := base.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fz.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: fused int8 pred %d, unfused %d", i, got[i], want[i])
				}
			}

			hw, err := base.QueryHVs(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			hg, err := fz.QueryHVs(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			for i := range hw.Data {
				if hg.Data[i] != hw.Data[i] {
					t.Fatalf("int8 query hypervector element %d differs", i)
				}
			}

			pw := base.NewPartials(test.Len())
			if err := base.PartialInto(test.Images, pw); err != nil {
				t.Fatal(err)
			}
			pg := fz.NewPartials(test.Len())
			if err := fz.PartialInto(test.Images, pg); err != nil {
				t.Fatal(err)
			}
			for i := range pw.Ints {
				if pg.Ints[i] != pw.Ints[i] {
					t.Fatalf("raw int8 int score %d differs", i)
				}
			}
			for i := range pw.Floats {
				if pg.Floats[i] != pw.Floats[i] {
					t.Fatalf("raw int8 float score %d differs", i)
				}
			}
		})
	}
}

// TestEngineZeroAllocBatch1FusedExtract extends the batch-1 allocation gate
// (name prefix keeps it inside `make alloc`) to the fused extractor: a forced
// fused compile must stay heap-free in steady state across every tail mode
// and both classifier kernels, exercising the tile-buffer freelist reuse.
func TestEngineZeroAllocBatch1FusedExtract(t *testing.T) {
	for _, kern := range []struct {
		name   string
		packed bool
	}{{"float", false}, {"packed", true}} {
		for _, mode := range tailModes() {
			t.Run(kern.name+"/"+mode.name, func(t *testing.T) {
				p, test := buildPipeline(t, func(c *core.Config) { c.PackedInference = kern.packed })
				e, err := engine.Compile(p, append([]engine.Option{engine.WithFusedExtract()}, mode.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				sample := test.Images.Len() / test.Len()
				img := tensor.FromSlice(test.Images.Data[:sample], 1,
					test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
				preds := make([]int, 1)
				if err := e.PredictInto(img, preds); err != nil {
					t.Fatal(err)
				}
				if a := testing.AllocsPerRun(100, func() {
					if err := e.PredictInto(img, preds); err != nil {
						t.Fatal(err)
					}
				}); a != 0 {
					t.Fatalf("%s/%s fused batch-1 PredictInto allocated %.1f times per run",
						kern.name, mode.name, a)
				}
			})
		}
	}
}

// TestEngineZeroAllocBatch1Int8Fused is the quantized twin: batch-1 inference
// through forced int8 fused blocks must not touch the heap in steady state.
func TestEngineZeroAllocBatch1Int8Fused(t *testing.T) {
	p, train, test := buildInt8Pipeline(t, func(c *core.Config) {})
	e, err := engine.Compile(p, engine.Int8,
		engine.WithCalibration(train.Images), engine.WithFusedExtract())
	if err != nil {
		t.Fatal(err)
	}
	sample := test.Images.Len() / test.Len()
	img := tensor.FromSlice(test.Images.Data[:sample], 1,
		test.Images.Shape[1], test.Images.Shape[2], test.Images.Shape[3])
	preds := make([]int, 1)
	if err := e.PredictInto(img, preds); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, func() {
		if err := e.PredictInto(img, preds); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("int8 fused batch-1 PredictInto allocated %.1f times per run", a)
	}
}
