package engine

import (
	"fmt"
	"math"
	"time"

	"nshd/internal/core"
	"nshd/internal/nn"
	"nshd/internal/quant"
	"nshd/internal/tensor"
)

// Precision selects the numeric format of the compiled feature stages.
//
// Float32 is the default: every stage runs the exact training kernels and
// predictions match the pipeline's direct path bit-for-bit. Int8 rebuilds
// the extractor and manifold in quantized arithmetic — u8 activations, i8
// weights, int32 accumulation (tensor.MatMulInt8Into's datapath) — which
// roughly halves activation bandwidth and runs the VNNI GEMM where the CPU
// has it. Layers with no quantized implementation fall back to float
// per-layer, so any servable pipeline compiles in either mode; the
// LSH/projection/classifier tail always runs its existing 1-bit/float path,
// which is already integer-dominated.
//
// Int8 predictions are approximate. Calibration chooses activation ranges
// from sample images (WithCalibration); without them a synthetic batch is
// used and accuracy on real data is at risk — always calibrate with
// in-distribution images for deployment.
type Precision int

const (
	// Float32 serves with the exact training kernels.
	Float32 Precision = iota
	// Int8 serves the extractor/manifold in quantized int8 arithmetic.
	Int8
)

// String names the precision for logs and tooling.
func (p Precision) String() string {
	if p == Int8 {
		return "int8"
	}
	return "float32"
}

// Option configures Compile. Precision values are options themselves, so
// callers write Compile(p, engine.Int8, engine.WithCalibration(imgs)).
type Option interface{ applyOption(*compileOptions) }

// fuseMode selects how Compile treats fusible extractor runs (see
// nn.FuseInference): the default auto mode fuses when the block clears the
// size gate, WithFusedExtract forces fusion, WithUnfusedExtract disables it.
type fuseMode int

const (
	fuseAuto fuseMode = iota
	fuseForce
	fuseOff
)

type compileOptions struct {
	precision  Precision
	calib      *tensor.Tensor
	stagedTail bool
	remat      bool
	foldTail   bool
	fuse       fuseMode
	// plan compresses the pipeline before compiling (see compress.go): nil,
	// or a dimension-pruning + low-rank + sub-byte-precision plan produced by
	// Engine.Compress or NewCompressPlan.
	plan *CompressPlan
}

func (p Precision) applyOption(o *compileOptions) { o.precision = p }

type optionFunc func(*compileOptions)

func (f optionFunc) applyOption(o *compileOptions) { f(o) }

// WithCalibration provides images ([N, C, H, W], matching the pipeline
// input shape) whose activation statistics set the int8 quantization ranges.
// Ignored under Float32. A few dozen in-distribution samples suffice; the
// observers are deterministic, so the same images always produce the same
// engine.
func WithCalibration(images *tensor.Tensor) Option {
	return optionFunc(func(o *compileOptions) { o.calib = images })
}

// WithFusedExtract forces the extractor's fusible conv→BN→ReLU→pool runs
// into tiled fused blocks regardless of the size gate. The default (no
// option) fuses automatically when the run is large enough to pay; results
// are bit-identical either way.
func WithFusedExtract() Option {
	return optionFunc(func(o *compileOptions) { o.fuse = fuseForce })
}

// WithUnfusedExtract keeps the extractor layer-by-layer — the testing
// reference path and an escape hatch.
func WithUnfusedExtract() Option {
	return optionFunc(func(o *compileOptions) { o.fuse = fuseOff })
}

// ---------------------------------------------------------------------------
// Unit grouping: the quantization pass works on fusion units, not raw layers.

type actKind int

const (
	actNone actKind = iota
	actRelu
	actRelu6
)

type unitKind int

const (
	unitFallback unitKind = iota
	unitConv
	unitLinear
	unitPool
	unitFlatten
)

// quantUnit is one fusion group of the float chain: a conv (with optional
// folded batch norm and clamp activation), a linear (with optional clamp), a
// lossless reshape/pool, or an unquantizable fallback leaf.
type quantUnit struct {
	kind   unitKind
	leaves []nn.Layer
	conv   *nn.Conv2D
	bn     *nn.BatchNorm2D
	lin    *nn.Linear
	pool   *nn.MaxPool2D
	act    actKind
}

// flattenChain descends nested Sequentials into a flat leaf list. Composite
// layers with internal structure (Residual, SE blocks) stay whole — they
// fall back to float as a unit.
func flattenChain(l nn.Layer, out []nn.Layer) []nn.Layer {
	if s, ok := l.(*nn.Sequential); ok {
		for _, sub := range s.Layers {
			out = flattenChain(sub, out)
		}
		return out
	}
	return append(out, l)
}

// matchAct consumes a trailing ReLU/ReLU6 leaf into the unit.
func matchAct(leaves []nn.Layer, j int, u *quantUnit) int {
	if j < len(leaves) {
		switch leaves[j].(type) {
		case *nn.ReLU:
			u.act = actRelu
			u.leaves = append(u.leaves, leaves[j])
			return j + 1
		case *nn.ReLU6:
			u.act = actRelu6
			u.leaves = append(u.leaves, leaves[j])
			return j + 1
		}
	}
	return j
}

// groupUnits fuses the leaf chain into quantization units, mirroring the
// float path's BN+activation peephole: Conv2D [+BatchNorm2D] [+ReLU|ReLU6],
// Linear [+ReLU|ReLU6], MaxPool2D, Flatten. Everything else is a fallback
// unit of one leaf.
func groupUnits(leaves []nn.Layer) []quantUnit {
	var units []quantUnit
	for i := 0; i < len(leaves); {
		switch v := leaves[i].(type) {
		case *nn.Conv2D:
			u := quantUnit{kind: unitConv, conv: v, leaves: []nn.Layer{v}}
			j := i + 1
			if j < len(leaves) {
				if bn, ok := leaves[j].(*nn.BatchNorm2D); ok && bn.C == v.OutC {
					u.bn = bn
					u.leaves = append(u.leaves, bn)
					j++
				}
			}
			j = matchAct(leaves, j, &u)
			units = append(units, u)
			i = j
		case *nn.Linear:
			u := quantUnit{kind: unitLinear, lin: v, leaves: []nn.Layer{v}}
			j := matchAct(leaves, i+1, &u)
			units = append(units, u)
			i = j
		case *nn.MaxPool2D:
			units = append(units, quantUnit{kind: unitPool, pool: v, leaves: []nn.Layer{v}})
			i++
		case *nn.Flatten:
			units = append(units, quantUnit{kind: unitFlatten, leaves: []nn.Layer{v}})
			i++
		default:
			units = append(units, quantUnit{kind: unitFallback, leaves: []nn.Layer{v}})
			i++
		}
	}
	return units
}

// ---------------------------------------------------------------------------
// Calibration: run the float chain over sample images, observe every unit
// boundary, convert ranges to u8 quantization parameters.

type qparams struct {
	scale float32
	zero  uint8
}

// calibrate returns len(units)+1 boundary parameters: [0] for the chain
// input, [i+1] for unit i's output.
func calibrate(units []quantUnit, images *tensor.Tensor) ([]qparams, error) {
	ar := tensor.NewArena()
	x := ar.Alloc(images.Shape...)
	copy(x.Data, images.Data)
	qp := make([]qparams, len(units)+1)
	var in quant.MinMaxObserver
	in.Observe(x.Data)
	qp[0].scale, qp[0].zero = quant.ActQuant(in.Range())
	for i, u := range units {
		for _, leaf := range u.leaves {
			il, ok := leaf.(nn.InferenceLayer)
			if !ok {
				return nil, fmt.Errorf("engine: calibration: layer %s has no inference path", leaf.Name())
			}
			x = il.ForwardInfer(x, ar)
		}
		var ob quant.MinMaxObserver
		ob.Observe(x.Data)
		qp[i+1].scale, qp[i+1].zero = quant.ActQuant(ob.Range())
	}
	return qp, nil
}

// syntheticCalibration is the stand-in batch when the caller provides no
// calibration images: deterministic unit-normal pixels. Real activation
// distributions can differ arbitrarily, so this keeps Compile total but puts
// accuracy at risk — deployment should pass WithCalibration.
func syntheticCalibration(shape [3]int) *tensor.Tensor {
	t := tensor.New(8, shape[0], shape[1], shape[2])
	tensor.NewRNG(12345).FillNormal(t, 0, 1)
	return t
}

// ---------------------------------------------------------------------------
// Quantized layer construction.

// clampFor translates a fused activation into requantization clamp bounds:
// ReLU raises the floor to the zero-point (real 0), ReLU6 also caps at the
// quantized 6.
func clampFor(act actKind, out qparams) (lo, hi uint8) {
	lo, hi = 0, 255
	switch act {
	case actRelu:
		lo = out.zero
	case actRelu6:
		lo = out.zero
		q6 := tensor.RoundAway(6/out.scale) + int32(out.zero)
		if q6 < int32(lo) {
			q6 = int32(lo)
		}
		if q6 > 255 {
			q6 = 255
		}
		hi = uint8(q6)
	}
	return lo, hi
}

// foldConvBN folds an eval-mode batch norm into a copy of the conv weights
// at full precision (the DPU's fold): w′ = w·γ/√(σ²+ε) per output channel,
// b′ = (b − μ)·γ/√(σ²+ε) + β.
func foldConvBN(c *nn.Conv2D, bn *nn.BatchNorm2D) (*tensor.Tensor, []float32) {
	w := tensor.FromSlice(append([]float32(nil), c.Weight.W.Data...), c.Weight.W.Shape...)
	bias := make([]float32, c.OutC)
	if c.Bias != nil {
		copy(bias, c.Bias.W.Data)
	}
	if bn == nil {
		return w, bias
	}
	kdim := c.InC * c.KH * c.KW
	for oc := 0; oc < c.OutC; oc++ {
		g := bn.Gamma.W.Data[oc] / float32(math.Sqrt(float64(bn.RunVar.Data[oc]+bn.Eps)))
		row := w.Data[oc*kdim : (oc+1)*kdim]
		for i := range row {
			row[i] *= g
		}
		bias[oc] = (bias[oc]-bn.RunMean.Data[oc])*g + bn.Beta.W.Data[oc]
	}
	return w, bias
}

// requantParams computes the accumulator-domain bias and combined per-channel
// requantization scales: Bias32[c] = round(b/(S_in·S_w[c])) − Z_in·ΣW[c],
// Scales[c] = S_in·S_w[c]/S_out.
func requantParams(wq *quant.Channels8, bias []float32, in, out qparams) ([]int32, []float32) {
	bias32 := make([]int32, wq.Rows)
	scales := make([]float32, wq.Rows)
	for oc := 0; oc < wq.Rows; oc++ {
		var wsum int32
		row := wq.Data[oc*wq.Cols : (oc+1)*wq.Cols]
		for _, v := range row {
			wsum += int32(v)
		}
		bias32[oc] = tensor.RoundAway(bias[oc]/(in.scale*wq.Scales[oc])) - int32(in.zero)*wsum
		scales[oc] = in.scale * wq.Scales[oc] / out.scale
	}
	return bias32, scales
}

func buildInt8Conv(u quantUnit, in, out qparams) *nn.Int8Conv2D {
	wf, bias := foldConvBN(u.conv, u.bn)
	wq := quant.QuantizeChannels(wf)
	bias32, scales := requantParams(wq, bias, in, out)
	lo, hi := clampFor(u.act, out)
	c := u.conv
	return nn.NewInt8Conv2D(c.InC, c.OutC, c.KH, c.KW, c.Stride, c.Pad, wq.Data, bias32, scales,
		nn.Int8Quant{InScale: in.scale, InZero: in.zero, OutScale: out.scale, OutZero: out.zero, ClampLo: lo, ClampHi: hi})
}

func buildInt8Linear(u quantUnit, in, out qparams) *nn.Int8Linear {
	l := u.lin
	wq := quant.QuantizeChannels(l.Weight.W)
	bias := make([]float32, l.Out)
	if l.Bias != nil {
		copy(bias, l.Bias.W.Data)
	}
	bias32, scales := requantParams(wq, bias, in, out)
	lo, hi := clampFor(u.act, out)
	return nn.NewInt8Linear(l.In, l.Out, wq.Data, bias32, scales,
		nn.Int8Quant{InScale: in.scale, InZero: in.zero, OutScale: out.scale, OutZero: out.zero, ClampLo: lo, ClampHi: hi})
}

// ---------------------------------------------------------------------------
// Segments: maximal runs of quantized layers bracketed by quantize/dequantize
// boundaries, interleaved with float fallback runs.

type segRunner interface {
	run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor
}

// floatSeg wraps fallback leaves in a Sequential so the float inference
// path's BN+activation peephole fusion still applies inside the segment.
type floatSeg struct{ s *nn.Sequential }

func (f floatSeg) run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	return f.s.ForwardInfer(x, ar)
}

// int8Seg quantizes the incoming float activation once, runs its quantized
// layers entirely in u8/int32, and dequantizes once at the exit.
type int8Seg struct {
	in     qparams
	layers []nn.Int8Layer
}

func (s int8Seg) run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	q := ar.AllocU8(s.in.scale, s.in.zero, x.Shape...)
	tensor.QuantizeU8(q.Data, x.Data, s.in.scale, s.in.zero)
	for _, l := range s.layers {
		q = l.ForwardInt8(q, ar)
	}
	y := ar.Alloc(q.Shape...)
	tensor.DequantizeU8(y.Data, q.Data, q.Scale, q.Zero)
	return y
}

// int8Stage is a Stage built from alternating int8 and float segments.
type int8Stage struct {
	name string
	segs []segRunner
}

func (s int8Stage) Name() string { return s.name }
func (s int8Stage) Run(x *tensor.Tensor, ar *tensor.Arena) *tensor.Tensor {
	for _, sg := range s.segs {
		x = sg.run(x, ar)
	}
	return x
}

type int8Stats struct {
	covered, total int
	names          []string
}

// buildSegments converts a unit chain plus its boundary parameters into
// segment runners. Within an int8 segment the producing layer's output
// parameters flow to the next layer directly (pooling and flattening pass
// them through unchanged), so the chain is self-consistent by construction;
// observer boundaries are consulted at segment entries and after every
// conv/linear.
func buildSegments(units []quantUnit, qp []qparams, st *int8Stats) []segRunner {
	var segs []segRunner
	var curFloat []nn.Layer
	var curInt8 []nn.Int8Layer
	var entry, cur qparams
	flushFloat := func() {
		if len(curFloat) > 0 {
			segs = append(segs, floatSeg{nn.NewSequential("fallback", curFloat...)})
			curFloat = nil
		}
	}
	flushInt8 := func() {
		if len(curInt8) > 0 {
			segs = append(segs, int8Seg{in: entry, layers: curInt8})
			curInt8 = nil
		}
	}
	for i, u := range units {
		if u.kind == unitFallback {
			flushInt8()
			curFloat = append(curFloat, u.leaves...)
			continue
		}
		flushFloat()
		if len(curInt8) == 0 {
			entry = qp[i]
			cur = entry
		}
		var built nn.Int8Layer
		switch u.kind {
		case unitConv:
			built = buildInt8Conv(u, cur, qp[i+1])
			cur = qp[i+1]
		case unitLinear:
			built = buildInt8Linear(u, cur, qp[i+1])
			cur = qp[i+1]
		case unitPool:
			built = &nn.Int8MaxPool2D{K: u.pool.K}
		case unitFlatten:
			built = nn.Int8Flatten{}
		}
		curInt8 = append(curInt8, built)
		st.covered += len(u.leaves)
		st.names = append(st.names, fmt.Sprint(built))
	}
	flushInt8()
	flushFloat()
	return segs
}

// buildInt8Stages compiles the extract (and manifold) stages in int8 with
// per-layer float fallback. The LSH/flatten/projection tail keeps its float
// stages — the projection output is 1-bit already, so there is nothing left
// to quantize there.
func (e *Engine) buildInt8Stages(p *core.Pipeline, o *compileOptions) error {
	units := groupUnits(flattenChain(p.Extractor, nil))
	ne := len(units)
	if p.Manifold != nil {
		pool, fc := p.Manifold.InferLayers()
		if pool != nil {
			units = append(units, quantUnit{kind: unitPool, pool: pool, leaves: []nn.Layer{pool}})
		}
		units = append(units, quantUnit{kind: unitFlatten, leaves: []nn.Layer{nn.NewFlatten()}})
		units = append(units, quantUnit{kind: unitLinear, lin: fc, leaves: []nn.Layer{fc}})
	}
	calib := o.calib
	if calib == nil {
		calib = syntheticCalibration(e.inShape)
	} else if calib.Rank() != 4 || calib.Shape[0] < 1 || calib.Shape[1] != e.inShape[0] ||
		calib.Shape[2] != e.inShape[1] || calib.Shape[3] != e.inShape[2] {
		return fmt.Errorf("engine: calibration images %v, want [N %d %d %d]",
			calib.Shape, e.inShape[0], e.inShape[1], e.inShape[2])
	}
	qp, err := calibrate(units, calib)
	if err != nil {
		return err
	}
	var st int8Stats
	for _, u := range units {
		st.total += len(u.leaves)
	}
	segs := buildSegments(units[:ne], qp[:ne+1], &st)
	if o.fuse != fuseOff {
		fuseInt8Segments(segs, e.inShape, o.fuse == fuseForce)
	}
	e.stages = append(e.stages, int8Stage{name: "extract", segs: segs})
	switch {
	case p.Manifold != nil:
		e.stages = append(e.stages, int8Stage{name: "manifold", segs: buildSegments(units[ne:], qp[ne:], &st)})
	case p.LSH != nil:
		e.stages = append(e.stages, flattenStage{}, newProjectStage("lsh", p.LSH))
	default:
		e.stages = append(e.stages, flattenStage{})
	}
	e.int8Covered, e.int8Total, e.int8Names = st.covered, st.total, st.names
	return nil
}

// fuseInt8Segments rewrites fusible conv[+pool] runs inside each int8
// segment into tiled Int8FusedBlocks (bit-exact; see nn.FuseInt8), tracking
// the per-sample shape across segments. Tracking stops — leaving later
// segments unfused — once the shape leaves [C, H, W] territory, where no
// further convs can appear anyway.
func fuseInt8Segments(segs []segRunner, inShape [3]int, force bool) {
	shape := []int{inShape[0], inShape[1], inShape[2]}
	for i := range segs {
		if len(shape) != 3 {
			return
		}
		switch v := segs[i].(type) {
		case floatSeg:
			shape = v.s.OutShape(shape)
		case int8Seg:
			v.layers = nn.FuseInt8(v.layers, shape[0], shape[1], shape[2], force)
			segs[i] = v
			shape = nn.Int8ChainShape(v.layers, shape)
		default:
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Introspection and timing.

// Precision reports the numeric mode the engine was compiled with.
func (e *Engine) Precision() Precision { return e.precision }

// Int8Coverage reports how many of the quantizable-chain layers run in int8
// versus the chain's total layer count. Under Float32 both are zero.
func (e *Engine) Int8Coverage() (covered, total int) { return e.int8Covered, e.int8Total }

// Int8Layers describes the quantized layers, in execution order.
func (e *Engine) Int8Layers() []string { return append([]string(nil), e.int8Names...) }

// StageTime is one stage's measured wall time for a chunk. Stages that can
// attribute time internally (the extractor's layers and fused blocks, a
// quantized stage's segments) report the split in Sub.
type StageTime struct {
	Name    string
	Seconds float64
	Sub     []StageTime `json:",omitempty"`
}

// timedStage is implemented by stages that can break their Run time into
// sub-steps. runTimed must execute the exact Run schedule.
type timedStage interface {
	runTimed(x *tensor.Tensor, ar *tensor.Arena, sub *[]StageTime) *tensor.Tensor
}

func (s extractStage) runTimed(x *tensor.Tensor, ar *tensor.Arena, sub *[]StageTime) *tensor.Tensor {
	return s.ex.ForwardInferTimed(x, ar, func(name string, seconds float64) {
		*sub = append(*sub, StageTime{Name: name, Seconds: seconds})
	})
}

func (s int8Stage) runTimed(x *tensor.Tensor, ar *tensor.Arena, sub *[]StageTime) *tensor.Tensor {
	for _, sg := range s.segs {
		t0 := time.Now()
		x = sg.run(x, ar)
		d := time.Since(t0).Seconds()
		name := "float"
		if i8, ok := sg.(int8Seg); ok {
			name = "int8"
			if len(i8.layers) == 1 {
				name = fmt.Sprint(i8.layers[0])
			}
		}
		*sub = append(*sub, StageTime{Name: name, Seconds: d})
	}
	return x
}

// mergeMinSub folds one rep's sub-step times into the accumulated minimum,
// index-aligned (every rep runs the identical schedule).
func mergeMinSub(dst *[]StageTime, sub []StageTime, first bool) {
	if first || len(*dst) != len(sub) {
		*dst = sub
		return
	}
	for i := range sub {
		if sub[i].Seconds < (*dst)[i].Seconds {
			(*dst)[i].Seconds = sub[i].Seconds
		}
	}
}

// TimeStages runs up to one chunk of images through the stage chain reps
// times and reports each stage's minimum wall time, with the classifier as
// the final row — the per-stage probe the bench harness uses to compare
// precision modes.
func (e *Engine) TimeStages(images *tensor.Tensor, reps int) ([]StageTime, error) {
	if err := e.checkImages(images); err != nil {
		return nil, err
	}
	n := images.Shape[0]
	if n == 0 {
		return nil, fmt.Errorf("engine: TimeStages needs at least one image")
	}
	if n > e.chunk {
		n = e.chunk
	}
	if reps < 1 {
		reps = 1
	}
	out := make([]StageTime, len(e.stages)+1)
	preds := make([]int, n)
	ar := e.getArena()
	defer e.putArena(ar)
	for r := 0; r < reps; r++ {
		ar.Reset()
		x := ar.Alloc(n, e.inShape[0], e.inShape[1], e.inShape[2])
		copy(x.Data, images.Data[:n*e.sampleLen])
		for i, stg := range e.stages {
			var sub []StageTime
			t0 := time.Now()
			if ts, ok := stg.(timedStage); ok {
				x = ts.runTimed(x, ar, &sub)
			} else {
				x = stg.Run(x, ar)
			}
			d := time.Since(t0).Seconds()
			if r == 0 || d < out[i].Seconds {
				out[i].Name, out[i].Seconds = stg.Name(), d
			}
			mergeMinSub(&out[i].Sub, sub, r == 0)
		}
		t0 := time.Now()
		e.tail.run(x, preds, ar)
		last := len(e.stages)
		if d := time.Since(t0).Seconds(); r == 0 || d < out[last].Seconds {
			out[last] = StageTime{Name: e.tail.timeName(), Seconds: d}
		}
	}
	return out, nil
}
