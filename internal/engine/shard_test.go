package engine_test

import (
	"testing"

	"nshd/internal/core"
	"nshd/internal/engine"
)

// shardD is deliberately awkward: 10 GEMM blocks (2333 = 9·256 + 29), not
// divisible by 2, 3 or 8, ragged 29-column last block, D % 64 ≠ 0.
const shardD = 2333

// TestShardBounds pins the planner's contract: 256-aligned boundaries,
// contiguous tiling, balanced to within one block, errors on impossible
// splits.
func TestShardBounds(t *testing.T) {
	for _, of := range []int{1, 2, 3, 8, 10} {
		bounds, err := engine.ShardBounds(shardD, of)
		if err != nil {
			t.Fatalf("of=%d: %v", of, err)
		}
		if len(bounds) != of {
			t.Fatalf("of=%d: %d bounds", of, len(bounds))
		}
		cursor := 0
		for s, b := range bounds {
			if b[0] != cursor {
				t.Fatalf("of=%d shard %d: lo=%d, cursor=%d", of, s, b[0], cursor)
			}
			if b[0]%256 != 0 {
				t.Fatalf("of=%d shard %d: lo=%d not 256-aligned", of, s, b[0])
			}
			if b[1] <= b[0] {
				t.Fatalf("of=%d shard %d: empty [%d,%d)", of, s, b[0], b[1])
			}
			cursor = b[1]
		}
		if cursor != shardD {
			t.Fatalf("of=%d: tiling ends at %d", of, cursor)
		}
	}
	if _, err := engine.ShardBounds(70, 2); err == nil {
		t.Fatal("70 dims cannot split into 2 non-empty 256-blocks")
	}
	if _, err := engine.ShardBounds(shardD, 0); err == nil {
		t.Fatal("of=0 should error")
	}
	if _, err := engine.ShardBounds(shardD, 11); err == nil {
		t.Fatal("more shards than blocks should error")
	}
}

// TestShardedScoresBitExact is the tentpole property: for every tail mode
// (fused/staged/folded/remat) × kernel (packed/float) × shard count
// S ∈ {1, 2, 3, 8}, the merged shard partials reproduce the unsharded
// engine bit-for-bit — argmax AND scores — with the single-engine path
// (S=1) running through the very same partial-scorer code, and the shards'
// QueryHVs concatenating to the full engine's hypervectors.
func TestShardedScoresBitExact(t *testing.T) {
	modes := []struct {
		name string
		opts []engine.Option
	}{
		{"fused", nil},
		{"staged", []engine.Option{engine.WithStagedTail()}},
		{"folded", []engine.Option{engine.WithFoldedTail()}},
		{"remat", []engine.Option{engine.WithRemat()}},
	}
	kernels := []struct {
		name   string
		packed bool
	}{
		{"packed", true},
		{"float", false},
	}
	for _, kn := range kernels {
		p, test := buildPipeline(t, func(c *core.Config) {
			c.D = shardD
			c.PackedInference = kn.packed
		})
		n := test.Images.Shape[0]
		for _, mode := range modes {
			t.Run(mode.name+"/"+kn.name, func(t *testing.T) {
				full, err := engine.Compile(p, mode.opts...)
				if err != nil {
					t.Fatal(err)
				}
				wantPreds, err := full.Predict(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				fullHVs, err := full.QueryHVs(test.Images)
				if err != nil {
					t.Fatal(err)
				}
				k := full.Classes()

				// Reference scores: the full engine's own partials, merged.
				fullPart := full.NewPartials(0)
				if err := full.PartialInto(test.Images, fullPart); err != nil {
					t.Fatal(err)
				}
				if lo, hi := full.Shard(); lo != 0 || hi != shardD {
					t.Fatalf("full engine shard [%d,%d)", lo, hi)
				}
				wantScores := make([]float64, n*k)
				mergedPreds := make([]int, n)
				if err := engine.MergeScores(mergedPreds, wantScores, []*engine.PartialScores{fullPart}); err != nil {
					t.Fatal(err)
				}
				// S=1 through the partial path must reproduce Predict exactly.
				for i := range wantPreds {
					if mergedPreds[i] != wantPreds[i] {
						t.Fatalf("S=1 partial-path pred %d: %d != Predict's %d", i, mergedPreds[i], wantPreds[i])
					}
				}

				for _, S := range []int{2, 3, 8} {
					bounds, err := engine.ShardBounds(shardD, S)
					if err != nil {
						t.Fatal(err)
					}
					parts := make([]*engine.PartialScores, S)
					for s := 0; s < S; s++ {
						sh, err := engine.CompileShard(p, s, S, mode.opts...)
						if err != nil {
							t.Fatalf("S=%d shard %d: %v", S, s, err)
						}
						if lo, hi := sh.Shard(); lo != bounds[s][0] || hi != bounds[s][1] {
							t.Fatalf("S=%d shard %d: range [%d,%d), want %v", S, s, lo, hi, bounds[s])
						}
						if sh.ModelVersion() != full.ModelVersion() {
							t.Fatalf("S=%d shard %d: version %x != full %x", S, s, sh.ModelVersion(), full.ModelVersion())
						}
						ps := sh.NewPartials(0)
						if err := sh.PartialInto(test.Images, ps); err != nil {
							t.Fatal(err)
						}
						parts[s] = ps

						// Shard QueryHVs are the full engine's columns.
						hv, err := sh.QueryHVs(test.Images)
						if err != nil {
							t.Fatal(err)
						}
						lo, w := bounds[s][0], bounds[s][1]-bounds[s][0]
						for i := 0; i < n; i++ {
							for c := 0; c < w; c++ {
								if hv.Data[i*w+c] != fullHVs.Data[i*shardD+lo+c] {
									t.Fatalf("S=%d shard %d: QueryHVs differ at (%d,%d)", S, s, i, c)
								}
							}
						}
					}
					// Merge out of order on purpose: reduce must reorder.
					if S > 1 {
						parts[0], parts[S-1] = parts[S-1], parts[0]
					}
					gotScores := make([]float64, n*k)
					gotPreds := make([]int, n)
					if err := engine.MergeScores(gotPreds, gotScores, parts); err != nil {
						t.Fatal(err)
					}
					for i := range wantPreds {
						if gotPreds[i] != wantPreds[i] {
							t.Fatalf("S=%d: pred %d = %d, want %d", S, i, gotPreds[i], wantPreds[i])
						}
					}
					for i := range wantScores {
						if gotScores[i] != wantScores[i] {
							t.Fatalf("S=%d: score %d = %v, want %v (bit-exact reduce broken)", S, i, gotScores[i], wantScores[i])
						}
					}
				}
			})
		}
	}
}

// TestMergeScoresValidation: the reduce rejects inconsistent or incomplete
// partial sets instead of silently producing wrong scores.
func TestMergeScoresValidation(t *testing.T) {
	p, test := buildPipeline(t, func(c *core.Config) { c.D = shardD })
	n := test.Images.Shape[0]
	e0, err := engine.CompileShard(p, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := engine.CompileShard(p, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ps0 := e0.NewPartials(0)
	ps1 := e1.NewPartials(0)
	if err := e0.PartialInto(test.Images, ps0); err != nil {
		t.Fatal(err)
	}
	if err := e1.PartialInto(test.Images, ps1); err != nil {
		t.Fatal(err)
	}
	k := e0.Classes()
	scores := make([]float64, n*k)

	if err := engine.MergeScores(nil, scores, nil); err == nil {
		t.Fatal("empty partial set should error")
	}
	if err := engine.MergeScores(nil, scores, []*engine.PartialScores{ps0}); err == nil {
		t.Fatal("incomplete tiling should error")
	}
	if err := engine.MergeScores(nil, scores, []*engine.PartialScores{ps0, ps0}); err == nil {
		t.Fatal("overlapping tiling should error")
	}
	if err := engine.MergeScores(nil, scores[:1], []*engine.PartialScores{ps0, ps1}); err == nil {
		t.Fatal("short scores should error")
	}
	if err := engine.MergeScores(make([]int, 1), scores, []*engine.PartialScores{ps0, ps1}); err == nil {
		t.Fatal("short preds should error")
	}
	badN := *ps1
	badN.N = ps1.N - 1
	if err := engine.MergeScores(nil, scores, []*engine.PartialScores{ps0, &badN}); err == nil {
		t.Fatal("mismatched N should error")
	}
	if err := engine.MergeScores(make([]int, n), scores, []*engine.PartialScores{ps0, ps1}); err != nil {
		t.Fatalf("valid merge failed: %v", err)
	}
}

// TestModelVersionTracksContent: shards agree on the version; retraining
// changes it; tail mode does not.
func TestModelVersionTracksContent(t *testing.T) {
	p, _ := buildPipeline(t, func(c *core.Config) { c.D = shardD })
	a, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.Compile(p, engine.WithRemat())
	if err != nil {
		t.Fatal(err)
	}
	if a.ModelVersion() != b.ModelVersion() {
		t.Fatal("tail mode must not change the model version")
	}
	if a.ModelVersion() == 0 {
		t.Fatal("version should be a content hash, got 0")
	}
	p.HD.M.Data[0] += 1
	p.HD.Invalidate()
	c, err := engine.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.ModelVersion() == a.ModelVersion() {
		t.Fatal("retraining must change the model version")
	}
}

// TestCompileShardValidation: bad shard indices and oversized shard counts
// error cleanly.
func TestCompileShardValidation(t *testing.T) {
	p, _ := buildPipeline(t, func(c *core.Config) {})
	if _, err := engine.CompileShard(p, 0, 2); err == nil {
		t.Fatal("D=70 has one block; S=2 should error")
	}
	if _, err := engine.CompileShard(p, 2, 2); err == nil {
		t.Fatal("shard index out of range should error")
	}
	if _, err := engine.CompileShard(nil, 0, 1); err == nil {
		t.Fatal("nil pipeline should error")
	}
	e, err := engine.CompileShard(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := e.Shard(); lo != 0 || hi != 70 || e.FullDim() != 70 || e.Dim() != 70 {
		t.Fatalf("S=1 shard [%d,%d) fullD=%d d=%d", lo, hi, e.FullDim(), e.Dim())
	}
}
